/**
 * @file
 * ccbench: run the whole bench catalog in parallel and gate on the
 * golden baseline in one shot.
 *
 * Usage:
 *
 *     ccbench [-j N] [--inner-jobs N] [--bin-dir DIR] [--results DIR]
 *             [--baseline DIR] [--threshold FRAC] [--stats] [--list]
 *             [--no-compare] [--resume] [--filter REGEX] [BENCH...]
 *
 * Catalog selection: positional BENCH arguments are substring matches;
 * `--filter` takes an ECMAScript regex (partial match, repeatable).
 * Both may be combined — a bench runs when it passes both. A filtered
 * run appends to the completion journal instead of truncating it, so
 * `--resume` of the full catalog stays correct after a filtered run
 * (see tools/catalog_filter.hh).
 *
 * Every executable in the bench directory (default: the `bench/`
 * sibling of this binary's directory, i.e. `build/bench/`) is one unit
 * of work. ccbench fans the units out across a work-stealing thread
 * pool (`-j`, default: $CCACHE_JOBS or hardware threads), each bench
 * running as its own subprocess (posix_spawn, not system(3), so SIGINT
 * and SIGTERM reach ccbench itself) with
 *
 *   - CCACHE_RESULTS_DIR pointing at the shared results directory, so
 *     every bench writes `results/<bench>.json` exactly as a serial
 *     shell loop over build/bench would, and
 *   - CCACHE_JOBS set to `--inner-jobs` (default 1), so the per-bench
 *     sweep engines don't oversubscribe the machine while ccbench is
 *     already using every core across benches. `-j1 --inner-jobs N`
 *     inverts that: benches serial, each sweep parallel — both modes
 *     must produce byte-identical result files (DESIGN.md §8).
 *
 * Each bench's stdout/stderr is captured to `results/<bench>.log`.
 * After the barrier, every result file with a matching file in the
 * baseline directory (default `ci/baseline/`) is compared with the
 * shared result_compare.hh logic, and a wall-clock summary reports the
 * parallel makespan against the serial-equivalent (sum of per-bench)
 * time.
 *
 * Crash-safe recovery: each successful bench appends an `ok <name>`
 * line to `<results>/ccbench.journal`. On SIGINT/SIGTERM ccbench
 * drains gracefully — unstarted benches are skipped, already-running
 * ones finish and are journaled, comparisons are skipped, and the exit
 * status is 130. A follow-up `ccbench --resume` re-runs only the
 * benches without a journal entry (and whose result JSON exists);
 * because every bench rewrites its result file atomically and
 * deterministically, an interrupted-then-resumed catalog is
 * byte-identical to an uninterrupted run.
 *
 * Exit status: 0 all benches ran and no metric drifted, 1 when a bench
 * failed or a metric drifted, 2 on usage or I/O errors, 130 when
 * interrupted.
 */

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <cerrno>
#include <fcntl.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/json.hh"
#include "common/thread_pool.hh"
#include "catalog_filter.hh"
#include "result_compare.hh"

extern char **environ;

namespace {

namespace fs = std::filesystem;

/** Set by the SIGINT/SIGTERM handler; polled between bench launches. */
volatile std::sig_atomic_t g_stop = 0;

extern "C" void
onStopSignal(int)
{
    g_stop = 1;
}

struct Options
{
    unsigned jobs = ccache::ThreadPool::defaultWorkers();
    unsigned innerJobs = 1;
    std::string binDir;
    std::string resultsDir;
    std::string baselineDir = "ci/baseline";
    double threshold = 0.05;
    bool compareStats = false;
    bool listOnly = false;
    bool compare = true;
    bool resume = false;
    cctools::CatalogFilter filter;
};

struct BenchRun
{
    std::string name;
    fs::path binary;
    int exitCode = -1;
    double seconds = 0.0;
    bool cached = false;    ///< satisfied from the journal (--resume)
    bool skipped = false;   ///< never started (graceful drain)
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [-j N] [--inner-jobs N] [--bin-dir DIR] "
                 "[--results DIR]\n"
                 "       [--baseline DIR] [--threshold FRAC] [--stats] "
                 "[--list] [--no-compare]\n"
                 "       [--resume] [--filter REGEX] [BENCH...]\n",
                 argv0);
}

/** Default bench directory: `../bench` relative to this binary. */
std::string
defaultBinDir(const char *argv0)
{
    std::error_code ec;
    fs::path self = fs::canonical(argv0, ec);
    if (!ec) {
        fs::path sibling = self.parent_path().parent_path() / "bench";
        if (fs::is_directory(sibling, ec))
            return sibling.string();
    }
    return "build/bench";
}

/** Results directory: $CCACHE_RESULTS_DIR or ./results. */
std::string
defaultResultsDir()
{
    const char *env = std::getenv("CCACHE_RESULTS_DIR");
    return env && *env ? env : "results";
}

/** Every executable regular file in @p dir passing @p filter, sorted
 *  by name. */
std::vector<BenchRun>
discoverCatalog(const std::string &dir, const cctools::CatalogFilter &filter)
{
    std::vector<BenchRun> catalog;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file())
            continue;
        fs::perms p = entry.status().permissions();
        if ((p & (fs::perms::owner_exec | fs::perms::group_exec |
                  fs::perms::others_exec)) == fs::perms::none)
            continue;
        std::string name = entry.path().filename().string();
        if (!filter.matches(name))
            continue;
        catalog.push_back(BenchRun{name, entry.path()});
    }
    if (ec)
        std::fprintf(stderr, "ccbench: cannot read %s: %s\n",
                     dir.c_str(), ec.message().c_str());
    std::sort(catalog.begin(), catalog.end(),
              [](const BenchRun &a, const BenchRun &b) {
                  return a.name < b.name;
              });
    return catalog;
}

/**
 * One-line self-description of a bench: every catalog binary responds
 * to --describe by printing its registered description and exiting
 * (bench::maybeDescribe). Empty on any failure — the list then simply
 * shows a blank column for that binary.
 */
std::string
describeBench(const fs::path &binary)
{
    std::string cmd = binary.string() + " --describe 2>/dev/null";
    FILE *p = ::popen(cmd.c_str(), "r");
    if (!p)
        return "";
    char buf[256] = {};
    std::string line;
    if (std::fgets(buf, sizeof buf, p))
        line.assign(buf);
    ::pclose(p);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
        line.pop_back();
    return line;
}

/** Names journaled as complete in `<results>/ccbench.journal`. */
std::set<std::string>
readJournal(const std::string &path)
{
    std::set<std::string> done;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("ok ", 0) == 0)
            done.insert(line.substr(3));
    }
    return done;
}

/**
 * Run one bench as a subprocess, stdout+stderr captured to its log
 * file. Returns via run.exitCode: the child's exit status, 128+sig if
 * it died on a signal, or -1 if the spawn itself failed.
 */
void
runBench(BenchRun &run, const Options &opt)
{
    std::string log = opt.resultsDir + "/" + run.name + ".log";

    // Child environment: inherit ours, overriding the two knobs that
    // coordinate bench parallelism with ccbench's own fan-out.
    std::vector<std::string> env_strings;
    for (char **e = environ; *e; ++e) {
        if (!std::strncmp(*e, "CCACHE_JOBS=", 12) ||
            !std::strncmp(*e, "CCACHE_RESULTS_DIR=", 19))
            continue;
        env_strings.emplace_back(*e);
    }
    env_strings.push_back("CCACHE_JOBS=" + std::to_string(opt.innerJobs));
    env_strings.push_back("CCACHE_RESULTS_DIR=" + opt.resultsDir);
    std::vector<char *> envp;
    envp.reserve(env_strings.size() + 1);
    for (std::string &s : env_strings)
        envp.push_back(s.data());
    envp.push_back(nullptr);

    std::string bin = run.binary.string();
    char *child_argv[] = {bin.data(), nullptr};

    posix_spawn_file_actions_t fa;
    posix_spawn_file_actions_init(&fa);
    posix_spawn_file_actions_addopen(&fa, 1, log.c_str(),
                                     O_WRONLY | O_CREAT | O_TRUNC, 0644);
    posix_spawn_file_actions_adddup2(&fa, 1, 2);

    auto start = std::chrono::steady_clock::now();
    pid_t pid = -1;
    int rc = ::posix_spawn(&pid, bin.c_str(), &fa, nullptr, child_argv,
                           envp.data());
    posix_spawn_file_actions_destroy(&fa);
    if (rc != 0) {
        std::fprintf(stderr, "ccbench: cannot spawn %s: %s\n",
                     bin.c_str(), std::strerror(rc));
        run.exitCode = -1;
        return;
    }

    int status = 0;
    while (::waitpid(pid, &status, 0) < 0) {
        if (errno != EINTR) {   // EINTR: our own SIGINT/SIGTERM handler
            run.exitCode = -1;
            return;
        }
    }
    auto end = std::chrono::steady_clock::now();
    run.seconds = std::chrono::duration<double>(end - start).count();
    if (WIFEXITED(status))
        run.exitCode = WEXITSTATUS(status);
    else if (WIFSIGNALED(status))
        run.exitCode = 128 + WTERMSIG(status);
    else
        run.exitCode = -1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        auto needArg = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "ccbench: %s needs an argument\n",
                             flag);
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "-j") ||
            !std::strcmp(argv[i], "--jobs")) {
            long n = std::atol(needArg("-j"));
            opt.jobs = n >= 1 ? static_cast<unsigned>(n) : 1;
        } else if (!std::strncmp(argv[i], "-j", 2) &&
                   std::isdigit(static_cast<unsigned char>(argv[i][2]))) {
            long n = std::atol(argv[i] + 2);
            opt.jobs = n >= 1 ? static_cast<unsigned>(n) : 1;
        } else if (!std::strcmp(argv[i], "--inner-jobs")) {
            long n = std::atol(needArg("--inner-jobs"));
            opt.innerJobs = n >= 1 ? static_cast<unsigned>(n) : 1;
        } else if (!std::strcmp(argv[i], "--bin-dir")) {
            opt.binDir = needArg("--bin-dir");
        } else if (!std::strcmp(argv[i], "--results")) {
            opt.resultsDir = needArg("--results");
        } else if (!std::strcmp(argv[i], "--baseline")) {
            opt.baselineDir = needArg("--baseline");
        } else if (!std::strcmp(argv[i], "--threshold")) {
            opt.threshold = std::atof(needArg("--threshold"));
        } else if (!std::strcmp(argv[i], "--stats")) {
            opt.compareStats = true;
        } else if (!std::strcmp(argv[i], "--list")) {
            opt.listOnly = true;
        } else if (!std::strcmp(argv[i], "--no-compare")) {
            opt.compare = false;
        } else if (!std::strcmp(argv[i], "--resume")) {
            opt.resume = true;
        } else if (!std::strcmp(argv[i], "--filter")) {
            std::string error;
            if (!opt.filter.addRegex(needArg("--filter"), &error)) {
                std::fprintf(stderr, "ccbench: bad --filter regex: %s\n",
                             error.c_str());
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--help") ||
                   !std::strcmp(argv[i], "-h")) {
            usage(argv[0]);
            return 0;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "ccbench: unknown option %s\n", argv[i]);
            usage(argv[0]);
            return 2;
        } else {
            opt.filter.addSubstring(argv[i]);
        }
    }
    if (opt.binDir.empty())
        opt.binDir = defaultBinDir(argv[0]);
    if (opt.resultsDir.empty())
        opt.resultsDir = defaultResultsDir();

    std::vector<BenchRun> catalog =
        discoverCatalog(opt.binDir, opt.filter);
    if (catalog.empty()) {
        std::fprintf(stderr, "ccbench: no bench executables in %s\n",
                     opt.binDir.c_str());
        return 2;
    }
    if (opt.listOnly) {
        for (const BenchRun &b : catalog) {
            std::string what = describeBench(b.binary);
            if (what.empty())
                std::printf("%s\n", b.name.c_str());
            else
                std::printf("%-28s %s\n", b.name.c_str(), what.c_str());
        }
        return 0;
    }

    std::error_code ec;
    fs::create_directories(opt.resultsDir, ec);
    if (ec) {
        std::fprintf(stderr, "ccbench: cannot create %s: %s\n",
                     opt.resultsDir.c_str(), ec.message().c_str());
        return 2;
    }

    // Completion journal: an unrestricted fresh run truncates it;
    // --resume honours it; a filtered run appends so the records of
    // benches outside the filter survive (catalog_filter.hh).
    std::string journal_path = opt.resultsDir + "/ccbench.journal";
    std::size_t resumed = 0;
    if (opt.resume) {
        std::set<std::string> done = readJournal(journal_path);
        std::vector<std::string> names;
        names.reserve(catalog.size());
        for (const BenchRun &b : catalog)
            names.push_back(b.name);
        std::vector<bool> cached = cctools::planResume(
            names, done, [&](const std::string &name) {
                return fs::exists(opt.resultsDir + "/" + name + ".json");
            });
        for (std::size_t i = 0; i < catalog.size(); ++i) {
            if (cached[i]) {
                catalog[i].cached = true;
                catalog[i].exitCode = 0;
                ++resumed;
            }
        }
    }
    bool append = cctools::journalAppendMode(opt.resume,
                                             !opt.filter.empty());
    std::ofstream journal(journal_path,
                          append ? std::ios::app : std::ios::trunc);
    if (!journal) {
        std::fprintf(stderr, "ccbench: cannot open %s\n",
                     journal_path.c_str());
        return 2;
    }
    std::mutex journal_mutex;

    // Graceful drain on ^C / TERM: stop launching, let running benches
    // finish (they are separate processes writing atomically anyway),
    // journal what completed, and skip the baseline gate.
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onStopSignal;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);

    std::printf("ccbench: %zu benches, %u jobs (inner sweeps: %u), "
                "results -> %s\n",
                catalog.size(), opt.jobs, opt.innerJobs,
                opt.resultsDir.c_str());
    if (resumed)
        std::printf("ccbench: resuming, %zu bench(es) already complete "
                    "per %s\n",
                    resumed, journal_path.c_str());

    // Fan the catalog out. Each task writes only its own BenchRun slot;
    // the journal is the only shared mutable state and has its mutex.
    auto wall_start = std::chrono::steady_clock::now();
    {
        ccache::ThreadPool pool(opt.jobs <= 1 ? 0 : opt.jobs);
        pool.parallelFor(catalog.size(), [&](std::size_t i) {
            BenchRun &b = catalog[i];
            if (b.cached)
                return;
            if (g_stop) {
                b.skipped = true;
                return;
            }
            runBench(b, opt);
            if (b.exitCode == 0) {
                std::lock_guard<std::mutex> lock(journal_mutex);
                journal << "ok " << b.name << "\n";
                journal.flush();
            }
        });
    }
    auto wall_end = std::chrono::steady_clock::now();
    double wall =
        std::chrono::duration<double>(wall_end - wall_start).count();
    bool interrupted = g_stop != 0;

    int failures = 0;
    std::size_t skipped = 0;
    double serial_equiv = 0.0;
    for (const BenchRun &b : catalog) {
        serial_equiv += b.seconds;
        if (b.cached) {
            std::printf("cached   %-28s (journal)\n", b.name.c_str());
        } else if (b.skipped) {
            std::printf("skip     %-28s (interrupted before start)\n",
                        b.name.c_str());
            ++skipped;
        } else if (b.exitCode != 0) {
            // A bench killed by the same ^C that stopped ccbench is part
            // of the interruption, not a bench failure.
            if (interrupted && b.exitCode >= 128) {
                std::printf("int      %-28s (signal during drain)\n",
                            b.name.c_str());
                ++skipped;
            } else {
                std::printf("FAIL     %-28s exit %d (see %s/%s.log)\n",
                            b.name.c_str(), b.exitCode,
                            opt.resultsDir.c_str(), b.name.c_str());
                ++failures;
            }
        } else {
            std::printf("ok       %-28s %6.2fs\n", b.name.c_str(),
                        b.seconds);
        }
    }

    // Baseline gate: every result file with a committed golden twin.
    // Skipped entirely on interruption — a partial catalog must not be
    // judged against the full baseline set.
    int flagged = 0;
    int compared = 0;
    if (opt.compare && failures == 0 && !interrupted) {
        for (const BenchRun &b : catalog) {
            std::string base_path =
                opt.baselineDir + "/" + b.name + ".json";
            if (!fs::exists(base_path))
                continue;
            std::string cur_path =
                opt.resultsDir + "/" + b.name + ".json";
            ccache::Json base, cur;
            if (!cctools::loadResults(base_path, base) ||
                !cctools::loadResults(cur_path, cur)) {
                ++flagged;
                continue;
            }
            int n = cctools::compareResults(base, cur, opt.threshold,
                                            opt.compareStats);
            std::printf("%-8s %-28s vs %s (%d metric(s) beyond "
                        "%.1f%%)\n",
                        n ? "DRIFT" : "match", b.name.c_str(),
                        base_path.c_str(), n, 100.0 * opt.threshold);
            flagged += n;
            ++compared;
        }
        if (compared == 0)
            std::printf("note: no baselines found under %s\n",
                        opt.baselineDir.c_str());
    }

    std::printf("\n%zu benches in %.2fs wall (serial-equivalent "
                "%.2fs, %.2fx)\n",
                catalog.size(), wall, serial_equiv,
                wall > 0.0 ? serial_equiv / wall : 0.0);
    if (interrupted)
        std::printf("interrupted: %zu bench(es) not run; rerun with "
                    "--resume to finish the catalog\n",
                    skipped);
    if (failures)
        std::printf("%d bench(es) FAILED\n", failures);
    if (flagged)
        std::printf("%d metric(s) drifted beyond the baseline "
                    "threshold\n",
                    flagged);
    if (interrupted)
        return 130;
    return failures || flagged ? 1 : 0;
}
