/**
 * @file
 * Shared comparison logic for `ccache-bench-results` JSON files, used by
 * both `ccstat` (compare two explicit files) and `ccbench` (compare a
 * whole results directory against `ci/baseline/` after a catalog run).
 *
 * Drift is flagged in BOTH directions: the simulator is deterministic,
 * so an unexpected improvement is as suspicious as a regression.
 */

#ifndef CCACHE_TOOLS_RESULT_COMPARE_HH
#define CCACHE_TOOLS_RESULT_COMPARE_HH

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/json.hh"

namespace cctools {

/**
 * Load one results file and validate its schema marker. Returns false
 * (with a diagnostic on stderr) when the file is missing, unparseable
 * or not a `ccache-bench-results` document.
 */
inline bool
loadResults(const std::string &path, ccache::Json &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    out = ccache::Json::parse(buf.str(), &error);
    if (!error.empty()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
        return false;
    }
    const ccache::Json *schema = out.find("schema");
    if (!schema || schema->asString() != "ccache-bench-results") {
        std::fprintf(stderr, "%s is not a ccache-bench-results file\n",
                     path.c_str());
        return false;
    }
    return true;
}

/** Flatten one "metrics" object into name -> value. */
inline std::map<std::string, double>
numericMap(const ccache::Json *obj)
{
    std::map<std::string, double> out;
    if (!obj || !obj->isObject())
        return out;
    for (const auto &[name, value] : obj->asObject()) {
        if (value.isNumber())
            out[name] = value.asNumber();
    }
    return out;
}

/**
 * Recursively flatten a stats dump's numeric leaves into
 * "<prefix>.<name>" -> value (histogram buckets are skipped: their
 * per-bucket counts are noise for regression purposes, while count /
 * mean / min / max are kept).
 */
inline void
flattenStats(const ccache::Json &node, const std::string &prefix,
             std::map<std::string, double> &out)
{
    if (node.isNumber()) {
        out[prefix] = node.asNumber();
        return;
    }
    if (!node.isObject())
        return;
    for (const auto &[name, value] : node.asObject()) {
        if (name == "buckets" || name == "descriptions" ||
            name == "schema" || name == "version")
            continue;
        flattenStats(value, prefix.empty() ? name : prefix + "." + name,
                     out);
    }
}

/** Relative drift of b vs a, symmetric in sign, safe around zero. */
inline double
drift(double a, double b)
{
    if (a == b)
        return 0.0;
    double denom = std::max(std::fabs(a), std::fabs(b));
    return std::fabs(b - a) / denom;
}

/**
 * Compare two metric maps; print one line per divergence. Returns the
 * number of metrics beyond the threshold. New metrics (in @p cur only)
 * are informational, not failures.
 */
inline int
compareMaps(const std::map<std::string, double> &base,
            const std::map<std::string, double> &cur,
            const std::string &section, double threshold)
{
    int flagged = 0;
    for (const auto &[name, a] : base) {
        auto it = cur.find(name);
        if (it == cur.end()) {
            std::printf("MISSING  %s%s (baseline %.6g, absent now)\n",
                        section.c_str(), name.c_str(), a);
            ++flagged;
            continue;
        }
        double d = drift(a, it->second);
        if (d > threshold) {
            std::printf("DRIFT    %s%s: %.6g -> %.6g (%+.1f%%)\n",
                        section.c_str(), name.c_str(), a, it->second,
                        100.0 * (it->second - a) /
                            (a != 0.0 ? std::fabs(a) : 1.0));
            ++flagged;
        }
    }
    for (const auto &[name, b] : cur) {
        if (!base.count(name))
            std::printf("NEW      %s%s = %.6g (not in baseline)\n",
                        section.c_str(), name.c_str(), b);
    }
    return flagged;
}

/**
 * Copy of @p doc without the run-local "perf" section. Every byte-level
 * identity check (thread-count determinism, resume integrity) must
 * compare through this: the perf section measures the machine, not the
 * simulation, and legitimately differs between otherwise identical runs
 * (DESIGN.md §13).
 */
inline ccache::Json
stripPerf(const ccache::Json &doc)
{
    if (!doc.isObject())
        return doc;
    ccache::Json::Object out;
    for (const auto &[key, value] : doc.asObject()) {
        if (key != "perf")
            out.emplace(key, value);
    }
    return ccache::Json(std::move(out));
}

/**
 * Compare the "perf" sections of two result documents. Unlike metric
 * drift this is one-sided: only a slowdown beyond @p tolerance is
 * flagged (wall_clock_s up, or ops_per_sec down) — wall clock is noisy
 * and an improvement is never a failure. Baselines written before the
 * perf section existed (or with zero ops) pass trivially. Returns the
 * number of flagged regressions.
 */
inline int
comparePerf(const ccache::Json &base, const ccache::Json &cur,
            double tolerance)
{
    const ccache::Json *bp = base.find("perf");
    const ccache::Json *cp = cur.find("perf");
    if (!bp || !bp->isObject()) {
        std::printf("note: baseline has no perf section, skipping "
                    "perf comparison\n");
        return 0;
    }
    if (!cp || !cp->isObject()) {
        std::printf("MISSING  perf section (baseline has one)\n");
        return 1;
    }
    int flagged = 0;
    const ccache::Json *bw = bp->find("wall_clock_s");
    const ccache::Json *cw = cp->find("wall_clock_s");
    if (bw && cw && bw->isNumber() && cw->isNumber()) {
        double a = bw->asNumber(), b = cw->asNumber();
        if (b > a * (1.0 + tolerance)) {
            std::printf("PERF     wall_clock_s: %.3f -> %.3f "
                        "(%+.0f%%, tolerance %.0f%%)\n",
                        a, b, 100.0 * (b - a) / (a != 0.0 ? a : 1.0),
                        100.0 * tolerance);
            ++flagged;
        }
    }
    const ccache::Json *bo = bp->find("ops_per_sec");
    const ccache::Json *co = cp->find("ops_per_sec");
    if (bo && co && bo->isNumber() && co->isNumber()) {
        double a = bo->asNumber(), b = co->asNumber();
        if (a > 0.0 && b < a / (1.0 + tolerance)) {
            std::printf("PERF     ops_per_sec: %.4g -> %.4g "
                        "(%+.0f%%, tolerance %.0f%%)\n",
                        a, b, 100.0 * (b - a) / a, 100.0 * tolerance);
            ++flagged;
        }
    }
    return flagged;
}

/**
 * Compare two loaded result documents (metrics, and with @p with_stats
 * also every embedded stats dump). Returns the number of flagged
 * divergences; a schema-version difference prints a note only.
 */
inline int
compareResults(const ccache::Json &base, const ccache::Json &cur,
               double threshold, bool with_stats)
{
    const ccache::Json *bv = base.find("version");
    const ccache::Json *cv = cur.find("version");
    if (bv && cv && bv->asNumber() != cv->asNumber())
        std::printf("note: schema versions differ (baseline %d, "
                    "current %d)\n",
                    static_cast<int>(bv->asNumber()),
                    static_cast<int>(cv->asNumber()));

    int flagged = compareMaps(numericMap(base.find("metrics")),
                              numericMap(cur.find("metrics")), "",
                              threshold);
    if (with_stats) {
        std::map<std::string, double> bstats, cstats;
        if (const ccache::Json *s = base.find("stats"))
            flattenStats(*s, "stats", bstats);
        if (const ccache::Json *s = cur.find("stats"))
            flattenStats(*s, "stats", cstats);
        flagged += compareMaps(bstats, cstats, "", threshold);
    }
    return flagged;
}

} // namespace cctools

#endif // CCACHE_TOOLS_RESULT_COMPARE_HH
