/**
 * @file
 * cc_trace: sampled trace-driven simulation driver (DESIGN.md §16).
 *
 * Reads a sim/trace.hh text trace (a file, or stdin via `-`), slices
 * it into fixed-size intervals, clusters the intervals into phases
 * (seeded k-means over cache-system feature vectors), replays one
 * representative interval per phase with functional warm-up, and
 * reconstitutes whole-run statistics as the cluster-weight
 * combination. Optionally rewrites bulk memcpy/memcmp/memset loops
 * into CC instructions first (--convert), and checks the estimate
 * against a golden full replay (--golden).
 *
 * Usage:
 *
 *     cc_trace [options] <trace-file|->
 *       --interval N   records per interval          (default 1000)
 *       --clusters K   max phases                    (default 8)
 *       --warmup N     warm-up records per phase     (default: interval)
 *       --convert      run the CC-idiom converter pass
 *       --golden       full replay too; report per-metric error
 *       --json FILE    machine-readable summary (atomic write)
 *       --jobs N       replay workers                (default $CCACHE_JOBS)
 *       --seed S       clustering seed
 *       --quiet        suppress the per-phase table
 *
 * Determinism: stdout and the JSON summary contain no timestamps and
 * no machine-local data; representative replays fan out across
 * --jobs workers into disjoint slots, so output is byte-identical at
 * any thread count (DESIGN.md §8; CI holds CCACHE_JOBS=1/2/8 to it).
 *
 * Exit status: 0 on success, 1 when the trace yields no records or
 * the output file cannot be written, 2 on usage errors. Parse errors
 * on individual lines are reported to stderr and skipped.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/json.hh"
#include "common/thread_pool.hh"
#include "sample/idiom.hh"
#include "sample/sampled_runner.hh"
#include "sim/trace.hh"

// bench_util.hh is a bench-side header, but atomicWriteFile is exactly
// the crash-safe write the summary needs; include it rather than clone.
#include "bench/bench_util.hh"

using namespace ccache;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--interval N] [--clusters K] [--warmup N] "
        "[--convert]\n"
        "       [--golden] [--json FILE] [--jobs N] [--seed S] "
        "[--quiet] <trace|->\n",
        argv0);
}

ccache::Json
estimateJson(const sample::SampledEstimate &est)
{
    Json j = Json::object();
    j["reads"] = static_cast<double>(est.reads);
    j["writes"] = static_cast<double>(est.writes);
    j["cc_instructions"] = static_cast<double>(est.ccInstructions);
    j["l1_misses"] = est.l1Misses;
    j["mem_accesses"] = est.memAccesses;
    j["cc_block_ops"] = est.ccBlockOps;
    j["cycles"] = est.cycles;
    j["mem_miss_rate"] = est.memMissRate;
    j["l1_miss_rate"] = est.l1MissRate;
    j["cc_ops_per_kcycle"] = est.ccOpsPerKCycle;
    j["intervals_total"] = static_cast<double>(est.intervalsTotal);
    j["intervals_replayed"] = static_cast<double>(est.intervalsReplayed);
    j["replay_fraction"] = est.replayFraction();
    return j;
}

ccache::Json
goldenJson(const sim::TraceReplayResult &g)
{
    Json j = Json::object();
    j["reads"] = static_cast<double>(g.reads);
    j["writes"] = static_cast<double>(g.writes);
    j["cc_instructions"] = static_cast<double>(g.ccInstructions);
    j["l1_misses"] = static_cast<double>(g.l1Misses);
    j["mem_accesses"] = static_cast<double>(g.memAccesses);
    j["cc_block_ops"] = static_cast<double>(g.ccBlockOps);
    j["cycles"] = static_cast<double>(g.cycles);
    j["mem_miss_rate"] = g.memMissRate();
    j["cc_ops_per_kcycle"] = g.ccOpsPerKCycle();
    return j;
}

} // namespace

int
main(int argc, char **argv)
{
    sample::SampledRunParams params;
    params.warmupRecords = 0;
    bool warmupSet = false;
    sample::ConvertParams convertParams;
    bool convert = false;
    bool golden = false;
    bool quiet = false;
    std::string jsonPath;
    std::string tracePath;

    for (int i = 1; i < argc; ++i) {
        auto needArg = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "cc_trace: %s needs an argument\n",
                             flag);
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--interval")) {
            long n = std::atol(needArg("--interval"));
            if (n < 1) {
                std::fprintf(stderr, "cc_trace: bad --interval\n");
                return 2;
            }
            params.intervalRecords = static_cast<std::size_t>(n);
        } else if (!std::strcmp(argv[i], "--clusters")) {
            long n = std::atol(needArg("--clusters"));
            if (n < 1) {
                std::fprintf(stderr, "cc_trace: bad --clusters\n");
                return 2;
            }
            params.clusters = static_cast<std::size_t>(n);
        } else if (!std::strcmp(argv[i], "--warmup")) {
            params.warmupRecords = static_cast<std::size_t>(
                std::atol(needArg("--warmup")));
            warmupSet = true;
        } else if (!std::strcmp(argv[i], "--seed")) {
            params.seed = std::strtoull(needArg("--seed"), nullptr, 0);
        } else if (!std::strcmp(argv[i], "--jobs")) {
            params.jobs = static_cast<unsigned>(
                std::atol(needArg("--jobs")));
        } else if (!std::strcmp(argv[i], "--convert")) {
            convert = true;
        } else if (!std::strcmp(argv[i], "--golden")) {
            golden = true;
        } else if (!std::strcmp(argv[i], "--json")) {
            jsonPath = needArg("--json");
        } else if (!std::strcmp(argv[i], "--quiet")) {
            quiet = true;
        } else if (!std::strcmp(argv[i], "--help") ||
                   !std::strcmp(argv[i], "-h")) {
            usage(argv[0]);
            return 0;
        } else if (argv[i][0] == '-' && argv[i][1] != '\0') {
            std::fprintf(stderr, "cc_trace: unknown option %s\n",
                         argv[i]);
            usage(argv[0]);
            return 2;
        } else if (tracePath.empty()) {
            tracePath = argv[i];
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (tracePath.empty()) {
        usage(argv[0]);
        return 2;
    }
    if (!warmupSet)
        params.warmupRecords = params.intervalRecords;

    sim::ParsedTrace parsed = sim::parseTraceFile(tracePath);
    for (const auto &err : parsed.errors)
        std::fprintf(stderr, "cc_trace: line %zu: %s\n", err.lineNumber,
                     err.message.c_str());
    if (parsed.records.empty()) {
        std::fprintf(stderr, "cc_trace: no records in %s\n",
                     tracePath.c_str());
        return 1;
    }

    std::vector<sim::TraceRecord> records = std::move(parsed.records);
    sample::ConvertStats convStats;
    if (convert) {
        sample::ConvertResult conv =
            sample::convertIdioms(records, convertParams);
        convStats = conv.stats;
        records = std::move(conv.records);
        std::printf("convert: %llu -> %llu records (copy %llu blocks in "
                    "%llu runs, cmp %llu pairs in %llu runs, zero %llu "
                    "blocks in %llu runs)\n",
                    static_cast<unsigned long long>(convStats.recordsIn),
                    static_cast<unsigned long long>(convStats.recordsOut),
                    static_cast<unsigned long long>(convStats.copyBlocks),
                    static_cast<unsigned long long>(convStats.copyRuns),
                    static_cast<unsigned long long>(convStats.cmpBlocks),
                    static_cast<unsigned long long>(convStats.cmpRuns),
                    static_cast<unsigned long long>(convStats.zeroBlocks),
                    static_cast<unsigned long long>(convStats.zeroRuns));
    }

    sample::SampledRun run = sample::runSampled(records, params);
    const sample::SampledEstimate &est = run.estimate;

    std::printf("cc_trace: %llu records, %zu intervals of %zu, %zu "
                "phases (replayed %zu/%zu, %.1f%%)\n",
                static_cast<unsigned long long>(est.recordsTotal),
                est.intervalsTotal, params.intervalRecords,
                run.clustering.phases.size(), est.intervalsReplayed,
                est.intervalsTotal, 100.0 * est.replayFraction());

    if (!quiet) {
        std::printf("\n%-6s %9s %7s %6s %9s %9s %7s %7s %10s\n", "phase",
                    "intervals", "weight", "rep", "reads", "writes",
                    "ccops", "miss%", "ccops/kcyc");
        for (std::size_t p = 0; p < run.representatives.size(); ++p) {
            const sample::RepresentativeRun &rep = run.representatives[p];
            std::printf("%-6zu %9llu %7.4f %6zu %9llu %9llu %7llu "
                        "%6.2f%% %10.3f\n",
                        p,
                        static_cast<unsigned long long>(rep.intervalCount),
                        rep.weight, rep.interval,
                        static_cast<unsigned long long>(rep.metrics.reads),
                        static_cast<unsigned long long>(
                            rep.metrics.writes),
                        static_cast<unsigned long long>(
                            rep.metrics.ccInstructions),
                        100.0 * rep.metrics.memMissRate(),
                        rep.metrics.ccOpsPerKCycle());
        }
    }

    std::printf("\nestimate: reads %llu writes %llu ccops %llu "
                "mem-miss %.4f l1-miss %.4f ccops/kcyc %.3f cycles "
                "%.0f\n",
                static_cast<unsigned long long>(est.reads),
                static_cast<unsigned long long>(est.writes),
                static_cast<unsigned long long>(est.ccInstructions),
                est.memMissRate, est.l1MissRate, est.ccOpsPerKCycle,
                est.cycles);

    Json doc = Json::object();
    doc["schema"] = "ccache-trace-summary";
    doc["version"] = 1;
    doc["trace"] = tracePath == "-" ? "stdin" : tracePath;
    doc["interval_records"] = static_cast<double>(params.intervalRecords);
    doc["clusters"] = static_cast<double>(params.clusters);
    doc["warmup_records"] = static_cast<double>(params.warmupRecords);
    doc["parse_errors"] = static_cast<double>(parsed.errors.size());
    doc["estimate"] = estimateJson(est);
    if (convert) {
        Json c = Json::object();
        c["records_in"] = static_cast<double>(convStats.recordsIn);
        c["records_out"] = static_cast<double>(convStats.recordsOut);
        c["copy_runs"] = static_cast<double>(convStats.copyRuns);
        c["copy_blocks"] = static_cast<double>(convStats.copyBlocks);
        c["cmp_runs"] = static_cast<double>(convStats.cmpRuns);
        c["cmp_blocks"] = static_cast<double>(convStats.cmpBlocks);
        c["zero_runs"] = static_cast<double>(convStats.zeroRuns);
        c["zero_blocks"] = static_cast<double>(convStats.zeroBlocks);
        doc["convert"] = std::move(c);
    }

    if (golden) {
        sim::TraceReplayResult full = sample::runFull(records);
        sample::SampleError err = sample::compareWithGolden(est, full);
        std::printf("golden:   reads %llu writes %llu ccops %llu "
                    "mem-miss %.4f ccops/kcyc %.3f cycles %llu\n",
                    static_cast<unsigned long long>(full.reads),
                    static_cast<unsigned long long>(full.writes),
                    static_cast<unsigned long long>(full.ccInstructions),
                    full.memMissRate(), full.ccOpsPerKCycle(),
                    static_cast<unsigned long long>(full.cycles));
        std::printf("error:    mem-miss %.2f%% l1-miss %.2f%% "
                    "ccops/kcyc %.2f%% cycles %.2f%%\n",
                    100.0 * err.memMissRate, 100.0 * err.l1MissRate,
                    100.0 * err.ccOpsPerKCycle, 100.0 * err.cycles);
        doc["golden"] = goldenJson(full);
        Json e = Json::object();
        e["mem_miss_rate"] = err.memMissRate;
        e["l1_miss_rate"] = err.l1MissRate;
        e["cc_ops_per_kcycle"] = err.ccOpsPerKCycle;
        e["cycles"] = err.cycles;
        doc["errors"] = std::move(e);
    }

    if (!jsonPath.empty()) {
        if (!bench::atomicWriteFile(jsonPath, doc.dump(2) + "\n")) {
            std::fprintf(stderr, "cc_trace: cannot write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        std::printf("summary: %s\n", jsonPath.c_str());
    }
    return 0;
}
