/**
 * @file
 * cc_server: replay synthetic multi-tenant open-loop traffic through
 * the serving layer (DESIGN.md §11) and report tail latency.
 *
 * Usage:
 *
 *     cc_server [--tenants N] [--requests N] [--load RPKC]
 *               [--policy fifo|batch] [--seed HEX] [--scatter FRAC]
 *               [--queue-cap N] [--wave N] [--json PATH] [--stats]
 *               [--trace PATH]
 *               [--shards N] [--chaos SPEC] [--deadline CY]
 *               [--timeout CY] [--attempts N] [--hedge CY]
 *               [--verify-golden]
 *               [--zipf-keys N] [--fanout FRAC[:LEGS]] [--rebalance]
 *               [--global-queue N]
 *
 * Tenant 0 is a small-request interactive tenant with weight 4; the
 * remaining tenants are heavier background traffic (some scattered
 * operands, some multi-chunk cc_cmp requests). The run is simulated
 * time only and a pure function of its arguments: the same command
 * line always prints the same bytes (DESIGN.md §8).
 *
 * With `--shards N` (N >= 1) the run goes through the fault-tolerant
 * ShardRouter (DESIGN.md §12): tenants place onto N shards by
 * consistent hashing, and `--chaos` injects shard failures using the
 * "kind@start+duration:shard[*magnitude]" grammar (kinds: crash,
 * slow, partial; e.g. "crash@200000+150000:1"). `--deadline`,
 * `--timeout`, `--attempts` and `--hedge` tune the reliability
 * pipeline; `--verify-golden` checks every completed request against
 * a host-side reference model.
 *
 * Fleet-controller flags (sharded mode, DESIGN.md §15):
 * `--zipf-keys N` draws every request's content key from a Zipf(0.99)
 * space of N ranks (the key folds into the golden operand pattern);
 * `--fanout FRAC[:LEGS]` makes that fraction of background requests
 * span LEGS shards (default 2) behind a fan-in barrier;
 * `--rebalance` turns on the hot-spot detector and live tenant
 * migration; `--global-queue N` caps fleet-wide queued requests and
 * sheds lowest-QoS work at the budget.
 *
 * Output: a human summary on stdout, plus the report JSON (`--json -`
 * for stdout, or a file path). `--stats` embeds the stats registry
 * dump(s); `--trace` writes a Chrome trace of the waves (single-shard
 * mode only).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "serve/server.hh"
#include "serve/shard_router.hh"
#include "sim/system.hh"
#include "workload/traffic_gen.hh"

using namespace ccache;

namespace {

struct Options
{
    unsigned tenants = 2;
    std::size_t requests = 1000;
    double loadRpkc = 4.0;
    serve::ServePolicy policy = serve::ServePolicy::Batch;
    std::uint64_t seed = 0x5e47ed7aff1cULL;
    double scatter = 0.2;
    std::size_t queueCap = 256;
    unsigned waveSize = 16;
    std::string jsonPath;
    std::string tracePath;
    bool stats = false;

    /** Sharded mode (0 = classic single-server path). */
    unsigned shards = 0;
    std::string chaosSpec;
    Cycles deadline = 60000;
    Cycles timeout = 0;
    unsigned attempts = 3;
    Cycles hedge = 0;
    bool verifyGolden = false;

    /** Fleet controller (sharded mode, DESIGN.md §15). @{ */
    std::size_t zipfKeys = 0;
    double fanoutFraction = 0.0;
    unsigned fanoutLegs = 2;
    bool rebalance = false;
    std::size_t globalQueue = 0;
    /** @} */
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--tenants N] [--requests N] [--load RPKC]\n"
                 "       [--policy fifo|batch] [--seed HEX] "
                 "[--scatter FRAC]\n"
                 "       [--queue-cap N] [--wave N] [--json PATH|-] "
                 "[--stats] [--trace PATH]\n"
                 "       [--shards N] [--chaos SPEC] [--deadline CY] "
                 "[--timeout CY]\n"
                 "       [--attempts N] [--hedge CY] [--verify-golden]\n"
                 "       [--zipf-keys N] [--fanout FRAC[:LEGS]] "
                 "[--rebalance] [--global-queue N]\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        auto needArg = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "cc_server: %s needs an argument\n",
                             flag);
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--tenants")) {
            opt.tenants = static_cast<unsigned>(
                std::strtoul(needArg("--tenants"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--requests")) {
            opt.requests = std::strtoull(needArg("--requests"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--load")) {
            opt.loadRpkc = std::atof(needArg("--load"));
        } else if (!std::strcmp(argv[i], "--policy")) {
            if (!serve::parsePolicy(needArg("--policy"), &opt.policy)) {
                std::fprintf(stderr,
                             "cc_server: --policy must be fifo or batch\n");
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--seed")) {
            opt.seed = std::strtoull(needArg("--seed"), nullptr, 16);
        } else if (!std::strcmp(argv[i], "--scatter")) {
            opt.scatter = std::atof(needArg("--scatter"));
        } else if (!std::strcmp(argv[i], "--queue-cap")) {
            opt.queueCap =
                std::strtoull(needArg("--queue-cap"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--wave")) {
            opt.waveSize = static_cast<unsigned>(
                std::strtoul(needArg("--wave"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--json")) {
            opt.jsonPath = needArg("--json");
        } else if (!std::strcmp(argv[i], "--trace")) {
            opt.tracePath = needArg("--trace");
        } else if (!std::strcmp(argv[i], "--stats")) {
            opt.stats = true;
        } else if (!std::strcmp(argv[i], "--shards")) {
            opt.shards = static_cast<unsigned>(
                std::strtoul(needArg("--shards"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--chaos")) {
            opt.chaosSpec = needArg("--chaos");
        } else if (!std::strcmp(argv[i], "--deadline")) {
            opt.deadline = std::strtoull(needArg("--deadline"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--timeout")) {
            opt.timeout = std::strtoull(needArg("--timeout"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--attempts")) {
            opt.attempts = static_cast<unsigned>(
                std::strtoul(needArg("--attempts"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--hedge")) {
            opt.hedge = std::strtoull(needArg("--hedge"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--verify-golden")) {
            opt.verifyGolden = true;
        } else if (!std::strcmp(argv[i], "--zipf-keys")) {
            opt.zipfKeys =
                std::strtoull(needArg("--zipf-keys"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--fanout")) {
            const char *arg = needArg("--fanout");
            opt.fanoutFraction = std::atof(arg);
            if (const char *colon = std::strchr(arg, ':')) {
                opt.fanoutLegs = static_cast<unsigned>(
                    std::strtoul(colon + 1, nullptr, 10));
            }
            if (opt.fanoutFraction < 0.0 || opt.fanoutFraction > 1.0 ||
                opt.fanoutLegs < 2) {
                std::fprintf(stderr, "cc_server: --fanout wants "
                                     "FRAC in [0,1] and LEGS >= 2\n");
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--rebalance")) {
            opt.rebalance = true;
        } else if (!std::strcmp(argv[i], "--global-queue")) {
            opt.globalQueue =
                std::strtoull(needArg("--global-queue"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--help") ||
                   !std::strcmp(argv[i], "-h")) {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "cc_server: unknown option %s\n", argv[i]);
            usage(argv[0]);
            return 2;
        }
    }
    if (opt.tenants < 1 || opt.requests < 1 || opt.loadRpkc <= 0.0 ||
        opt.waveSize < 1 || opt.queueCap < 1) {
        std::fprintf(stderr, "cc_server: invalid parameters\n");
        return 2;
    }

    // Traffic: tenant 0 interactive, the rest background (fan-out, if
    // enabled, applies to the background tenants).
    workload::TrafficParams traffic;
    traffic.totalRequests = opt.requests;
    traffic.seed = opt.seed;
    traffic.zipfKeys = opt.zipfKeys;
    for (unsigned i = 0; i < opt.tenants; ++i) {
        workload::TenantTraffic t;
        t.name = "t" + std::to_string(i);
        if (i == 0 && opt.tenants > 1) {
            t.requestsPerKilocycle = 0.2 * opt.loadRpkc;
            t.minBytes = 256;
            t.maxBytes = 1024;
        } else {
            t.requestsPerKilocycle =
                opt.tenants > 1 ? 0.8 * opt.loadRpkc / (opt.tenants - 1)
                                : opt.loadRpkc;
            t.minBytes = 1024;
            t.maxBytes = 8192;
            t.weightCmp = 0.5;
            t.scatterFraction = opt.scatter;
            t.fanoutFraction = opt.fanoutFraction;
            t.fanoutLegs = opt.fanoutLegs;
        }
        traffic.tenants.push_back(std::move(t));
    }

    serve::ServerParams params;
    params.queue.capacity = opt.queueCap;
    params.sched.policy = opt.policy;
    params.sched.waveSize = opt.waveSize;
    params.tenants.clear();
    for (unsigned i = 0; i < opt.tenants; ++i) {
        serve::TenantQos q;
        q.name = "t" + std::to_string(i);
        q.weight = i == 0 ? 4 : 1;
        params.tenants.push_back(std::move(q));
    }

    if (opt.shards > 0) {
        // Sharded, fault-tolerant path (DESIGN.md §12).
        serve::ChaosSchedule chaos;
        if (!opt.chaosSpec.empty()) {
            std::string err;
            if (!serve::ChaosSchedule::parse(opt.chaosSpec, opt.shards,
                                             &chaos, &err)) {
                std::fprintf(stderr, "cc_server: bad --chaos: %s\n",
                             err.c_str());
                return 2;
            }
        }

        serve::RouterParams router;
        router.shards = opt.shards;
        router.admissionDeadline = opt.deadline;
        router.shardTimeout = opt.timeout;
        router.retry.maxAttempts = opt.attempts;
        router.retry.seed = opt.seed;
        router.hedgeAge = opt.hedge;
        router.verifyGolden = opt.verifyGolden;
        router.patternSeed = opt.seed;
        if (opt.rebalance)
            router.rebalancePeriod = 5000;
        router.globalQueueCap = opt.globalQueue;

        serve::ShardRouter fleet(sim::SystemConfig{}, params, router);
        serve::FleetReport report =
            fleet.run(generateTraffic(traffic), chaos);

        std::printf("cc_server: shards=%u tenants=%u load=%.2f rpkc "
                    "seed=%llx chaos=\"%s\"\n",
                    opt.shards, opt.tenants, opt.loadRpkc,
                    static_cast<unsigned long long>(opt.seed),
                    chaos.toSpec().c_str());
        std::printf("  offered %llu, served %llu, shed %llu "
                    "(availability %.4f) in %llu cycles\n",
                    static_cast<unsigned long long>(report.offered),
                    static_cast<unsigned long long>(report.served),
                    static_cast<unsigned long long>(report.shed),
                    report.availability,
                    static_cast<unsigned long long>(report.elapsed));
        std::printf("  retries %llu, reroutes %llu, hedges %llu "
                    "(wins %llu), breaker trips %llu\n",
                    static_cast<unsigned long long>(report.retries),
                    static_cast<unsigned long long>(report.reroutes),
                    static_cast<unsigned long long>(report.hedgesLaunched),
                    static_cast<unsigned long long>(report.hedgeWins),
                    static_cast<unsigned long long>(report.breakerTrips));
        if (report.fanoutParents != 0)
            std::printf("  fanout: %llu parents, %llu legs, %llu "
                        "partial\n",
                        static_cast<unsigned long long>(
                            report.fanoutParents),
                        static_cast<unsigned long long>(
                            report.fanoutLegs),
                        static_cast<unsigned long long>(
                            report.fanoutPartial));
        if (opt.rebalance)
            std::printf("  migrations %llu (dual-dispatch %llu, "
                        "transplants %llu)\n",
                        static_cast<unsigned long long>(
                            report.migrations),
                        static_cast<unsigned long long>(
                            report.migrationDualDispatch),
                        static_cast<unsigned long long>(
                            report.migrationTransplants));
        if (opt.globalQueue != 0)
            std::printf("  global budget: %llu evictions, %llu sheds\n",
                        static_cast<unsigned long long>(
                            report.globalEvictions),
                        static_cast<unsigned long long>(
                            report.globalSheds));
        if (opt.verifyGolden)
            std::printf("  golden: %llu checked, %llu mismatches\n",
                        static_cast<unsigned long long>(
                            report.goldenChecked),
                        static_cast<unsigned long long>(
                            report.goldenMismatch));
        for (const auto &s : report.shards)
            std::printf("  shard %u: served %6llu failed %4llu waves "
                        "%5llu down %llu cy service p50/p99 = "
                        "%llu/%llu cy\n",
                        s.index,
                        static_cast<unsigned long long>(s.served),
                        static_cast<unsigned long long>(s.failed),
                        static_cast<unsigned long long>(s.waves),
                        static_cast<unsigned long long>(s.downCycles),
                        static_cast<unsigned long long>(s.p50ServiceCycles),
                        static_cast<unsigned long long>(
                            s.p99ServiceCycles));
        for (const auto &t : report.tenants)
            std::printf("  %-8s served %6llu shed %4llu sojourn "
                        "p50/p99/p99.9 = %llu/%llu/%llu cy\n",
                        t.name.c_str(),
                        static_cast<unsigned long long>(t.served),
                        static_cast<unsigned long long>(t.shed),
                        static_cast<unsigned long long>(
                            t.p50SojournCycles),
                        static_cast<unsigned long long>(
                            t.p99SojournCycles),
                        static_cast<unsigned long long>(
                            t.p999SojournCycles));

        Json doc = report.toJson();
        if (opt.stats)
            doc["fleet_stats"] = fleet.fleetStats().dumpJson();
        if (!opt.jsonPath.empty()) {
            std::string text = doc.dump(2) + "\n";
            if (opt.jsonPath == "-") {
                std::fputs(text.c_str(), stdout);
            } else {
                std::ofstream out(opt.jsonPath,
                                  std::ios::binary | std::ios::trunc);
                out << text;
                if (!out) {
                    std::fprintf(stderr, "cc_server: cannot write %s\n",
                                 opt.jsonPath.c_str());
                    return 1;
                }
                std::printf("report: %s\n", opt.jsonPath.c_str());
            }
        }
        return report.goldenMismatch == 0 ? 0 : 1;
    }

    sim::System sys;
    if (!opt.tracePath.empty())
        sys.trace().enable();

    serve::CcServer server(sys, params);
    serve::ServeReport report =
        server.run(generateTraffic(traffic));

    std::printf("cc_server: policy=%s tenants=%u load=%.2f rpkc "
                "seed=%llx\n",
                serve::toString(opt.policy), opt.tenants, opt.loadRpkc,
                static_cast<unsigned long long>(opt.seed));
    std::printf("  offered %llu, admitted %llu, served %llu, rejected "
                "%llu in %llu cycles (%.2f req/Mcycle)\n",
                static_cast<unsigned long long>(report.offered),
                static_cast<unsigned long long>(report.admitted),
                static_cast<unsigned long long>(report.served),
                static_cast<unsigned long long>(report.rejected),
                static_cast<unsigned long long>(report.elapsed),
                report.throughputRpmc);
    for (const auto &t : report.tenants)
        std::printf("  %-8s served %6llu  queue p50/p99/p99.9 = "
                    "%llu/%llu/%llu cy  service p50/p99 = %llu/%llu cy\n",
                    t.name.c_str(),
                    static_cast<unsigned long long>(t.served),
                    static_cast<unsigned long long>(t.p50QueueCycles),
                    static_cast<unsigned long long>(t.p99QueueCycles),
                    static_cast<unsigned long long>(t.p999QueueCycles),
                    static_cast<unsigned long long>(t.p50ServiceCycles),
                    static_cast<unsigned long long>(t.p99ServiceCycles));

    Json doc = report.toJson();
    if (opt.stats)
        doc["stats"] = sys.stats().dumpJson();
    if (!opt.jsonPath.empty()) {
        std::string text = doc.dump(2) + "\n";
        if (opt.jsonPath == "-") {
            std::fputs(text.c_str(), stdout);
        } else {
            std::ofstream out(opt.jsonPath,
                              std::ios::binary | std::ios::trunc);
            out << text;
            if (!out) {
                std::fprintf(stderr, "cc_server: cannot write %s\n",
                             opt.jsonPath.c_str());
                return 1;
            }
            std::printf("report: %s\n", opt.jsonPath.c_str());
        }
    }
    if (!opt.tracePath.empty() &&
        !sys.trace().writeFile(opt.tracePath))
        return 1;

    return 0;
}
