/**
 * @file
 * cc_server: replay synthetic multi-tenant open-loop traffic through
 * the serving layer (DESIGN.md §11) and report tail latency.
 *
 * Usage:
 *
 *     cc_server [--tenants N] [--requests N] [--load RPKC]
 *               [--policy fifo|batch] [--seed HEX] [--scatter FRAC]
 *               [--queue-cap N] [--wave N] [--json PATH] [--stats]
 *               [--trace PATH]
 *
 * Tenant 0 is a small-request interactive tenant with weight 4; the
 * remaining tenants are heavier background traffic (some scattered
 * operands, some multi-chunk cc_cmp requests). The run is simulated
 * time only and a pure function of its arguments: the same command
 * line always prints the same bytes (DESIGN.md §8).
 *
 * Output: a human summary on stdout, plus the ServeReport JSON
 * (`--json -` for stdout, or a file path). `--stats` embeds the full
 * stats registry dump; `--trace` writes a Chrome trace of the waves.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "serve/server.hh"
#include "sim/system.hh"
#include "workload/traffic_gen.hh"

using namespace ccache;

namespace {

struct Options
{
    unsigned tenants = 2;
    std::size_t requests = 1000;
    double loadRpkc = 4.0;
    serve::ServePolicy policy = serve::ServePolicy::Batch;
    std::uint64_t seed = 0x5e47ed7aff1cULL;
    double scatter = 0.2;
    std::size_t queueCap = 256;
    unsigned waveSize = 16;
    std::string jsonPath;
    std::string tracePath;
    bool stats = false;
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--tenants N] [--requests N] [--load RPKC]\n"
                 "       [--policy fifo|batch] [--seed HEX] "
                 "[--scatter FRAC]\n"
                 "       [--queue-cap N] [--wave N] [--json PATH|-] "
                 "[--stats] [--trace PATH]\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        auto needArg = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "cc_server: %s needs an argument\n",
                             flag);
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--tenants")) {
            opt.tenants = static_cast<unsigned>(
                std::strtoul(needArg("--tenants"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--requests")) {
            opt.requests = std::strtoull(needArg("--requests"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--load")) {
            opt.loadRpkc = std::atof(needArg("--load"));
        } else if (!std::strcmp(argv[i], "--policy")) {
            if (!serve::parsePolicy(needArg("--policy"), &opt.policy)) {
                std::fprintf(stderr,
                             "cc_server: --policy must be fifo or batch\n");
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--seed")) {
            opt.seed = std::strtoull(needArg("--seed"), nullptr, 16);
        } else if (!std::strcmp(argv[i], "--scatter")) {
            opt.scatter = std::atof(needArg("--scatter"));
        } else if (!std::strcmp(argv[i], "--queue-cap")) {
            opt.queueCap =
                std::strtoull(needArg("--queue-cap"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--wave")) {
            opt.waveSize = static_cast<unsigned>(
                std::strtoul(needArg("--wave"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--json")) {
            opt.jsonPath = needArg("--json");
        } else if (!std::strcmp(argv[i], "--trace")) {
            opt.tracePath = needArg("--trace");
        } else if (!std::strcmp(argv[i], "--stats")) {
            opt.stats = true;
        } else if (!std::strcmp(argv[i], "--help") ||
                   !std::strcmp(argv[i], "-h")) {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "cc_server: unknown option %s\n", argv[i]);
            usage(argv[0]);
            return 2;
        }
    }
    if (opt.tenants < 1 || opt.requests < 1 || opt.loadRpkc <= 0.0 ||
        opt.waveSize < 1 || opt.queueCap < 1) {
        std::fprintf(stderr, "cc_server: invalid parameters\n");
        return 2;
    }

    // Traffic: tenant 0 interactive, the rest background.
    workload::TrafficParams traffic;
    traffic.totalRequests = opt.requests;
    traffic.seed = opt.seed;
    for (unsigned i = 0; i < opt.tenants; ++i) {
        workload::TenantTraffic t;
        t.name = "t" + std::to_string(i);
        if (i == 0 && opt.tenants > 1) {
            t.requestsPerKilocycle = 0.2 * opt.loadRpkc;
            t.minBytes = 256;
            t.maxBytes = 1024;
        } else {
            t.requestsPerKilocycle =
                opt.tenants > 1 ? 0.8 * opt.loadRpkc / (opt.tenants - 1)
                                : opt.loadRpkc;
            t.minBytes = 1024;
            t.maxBytes = 8192;
            t.weightCmp = 0.5;
            t.scatterFraction = opt.scatter;
        }
        traffic.tenants.push_back(std::move(t));
    }

    sim::System sys;
    if (!opt.tracePath.empty())
        sys.trace().enable();

    serve::ServerParams params;
    params.queue.capacity = opt.queueCap;
    params.sched.policy = opt.policy;
    params.sched.waveSize = opt.waveSize;
    params.tenants.clear();
    for (unsigned i = 0; i < opt.tenants; ++i) {
        serve::TenantQos q;
        q.name = "t" + std::to_string(i);
        q.weight = i == 0 ? 4 : 1;
        params.tenants.push_back(std::move(q));
    }

    serve::CcServer server(sys, params);
    serve::ServeReport report =
        server.run(generateTraffic(traffic));

    std::printf("cc_server: policy=%s tenants=%u load=%.2f rpkc "
                "seed=%llx\n",
                serve::toString(opt.policy), opt.tenants, opt.loadRpkc,
                static_cast<unsigned long long>(opt.seed));
    std::printf("  offered %llu, admitted %llu, served %llu, rejected "
                "%llu in %llu cycles (%.2f req/Mcycle)\n",
                static_cast<unsigned long long>(report.offered),
                static_cast<unsigned long long>(report.admitted),
                static_cast<unsigned long long>(report.served),
                static_cast<unsigned long long>(report.rejected),
                static_cast<unsigned long long>(report.elapsed),
                report.throughputRpmc);
    for (const auto &t : report.tenants)
        std::printf("  %-8s served %6llu  queue p50/p99/p99.9 = "
                    "%llu/%llu/%llu cy  service p50/p99 = %llu/%llu cy\n",
                    t.name.c_str(),
                    static_cast<unsigned long long>(t.served),
                    static_cast<unsigned long long>(t.p50QueueCycles),
                    static_cast<unsigned long long>(t.p99QueueCycles),
                    static_cast<unsigned long long>(t.p999QueueCycles),
                    static_cast<unsigned long long>(t.p50ServiceCycles),
                    static_cast<unsigned long long>(t.p99ServiceCycles));

    Json doc = report.toJson();
    if (opt.stats)
        doc["stats"] = sys.stats().dumpJson();
    if (!opt.jsonPath.empty()) {
        std::string text = doc.dump(2) + "\n";
        if (opt.jsonPath == "-") {
            std::fputs(text.c_str(), stdout);
        } else {
            std::ofstream out(opt.jsonPath,
                              std::ios::binary | std::ios::trunc);
            out << text;
            if (!out) {
                std::fprintf(stderr, "cc_server: cannot write %s\n",
                             opt.jsonPath.c_str());
                return 1;
            }
            std::printf("report: %s\n", opt.jsonPath.c_str());
        }
    }
    if (!opt.tracePath.empty() &&
        !sys.trace().writeFile(opt.tracePath))
        return 1;

    return 0;
}
