/**
 * @file
 * ccstat: compare two bench-result JSON files and flag regressions.
 *
 * Usage:
 *
 *     ccstat BASELINE.json CURRENT.json [--threshold FRAC] [--stats]
 *
 * Both inputs are `ccache-bench-results` files written by
 * bench::ResultsWriter (see bench/bench_util.hh and DESIGN.md §7). The
 * tool compares the "metrics" maps — with `--stats` also every embedded
 * stats dump — and prints one line per metric whose relative drift
 * exceeds the threshold (default 5%). Drift is flagged in BOTH
 * directions: the simulator is deterministic, so an unexpected
 * improvement is as suspicious as a regression.
 *
 * Exit status: 0 when everything is within the threshold, 1 when at
 * least one metric drifted, 2 on I/O, parse or schema errors — so CI
 * can gate merges on it directly.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/json.hh"

namespace {

using ccache::Json;

struct Options
{
    std::string baselinePath;
    std::string currentPath;
    double threshold = 0.05;
    bool compareStats = false;
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s BASELINE.json CURRENT.json "
                 "[--threshold FRAC] [--stats]\n",
                 argv0);
}

bool
loadResults(const std::string &path, Json &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "ccstat: cannot open %s\n", path.c_str());
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    out = Json::parse(buf.str(), &error);
    if (!error.empty()) {
        std::fprintf(stderr, "ccstat: %s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    const Json *schema = out.find("schema");
    if (!schema || schema->asString() != "ccache-bench-results") {
        std::fprintf(stderr,
                     "ccstat: %s is not a ccache-bench-results file\n",
                     path.c_str());
        return false;
    }
    return true;
}

/** Flatten one "metrics" object into name -> value. */
std::map<std::string, double>
numericMap(const Json *obj)
{
    std::map<std::string, double> out;
    if (!obj || !obj->isObject())
        return out;
    for (const auto &[name, value] : obj->asObject()) {
        if (value.isNumber())
            out[name] = value.asNumber();
    }
    return out;
}

/**
 * Recursively flatten a stats dump's numeric leaves into
 * "<prefix>.<name>" -> value (histogram buckets are skipped: their
 * per-bucket counts are noise for regression purposes, while count /
 * mean / min / max are kept).
 */
void
flattenStats(const Json &node, const std::string &prefix,
             std::map<std::string, double> &out)
{
    if (node.isNumber()) {
        out[prefix] = node.asNumber();
        return;
    }
    if (!node.isObject())
        return;
    for (const auto &[name, value] : node.asObject()) {
        if (name == "buckets" || name == "descriptions" ||
            name == "schema" || name == "version")
            continue;
        flattenStats(value, prefix.empty() ? name : prefix + "." + name,
                     out);
    }
}

/** Relative drift of b vs a, symmetric in sign, safe around zero. */
double
drift(double a, double b)
{
    if (a == b)
        return 0.0;
    double denom = std::max(std::fabs(a), std::fabs(b));
    return std::fabs(b - a) / denom;
}

/**
 * Compare two metric maps; print one line per divergence. Returns the
 * number of metrics beyond the threshold.
 */
int
compareMaps(const std::map<std::string, double> &base,
            const std::map<std::string, double> &cur,
            const std::string &section, double threshold)
{
    int flagged = 0;
    for (const auto &[name, a] : base) {
        auto it = cur.find(name);
        if (it == cur.end()) {
            std::printf("MISSING  %s%s (baseline %.6g, absent now)\n",
                        section.c_str(), name.c_str(), a);
            ++flagged;
            continue;
        }
        double d = drift(a, it->second);
        if (d > threshold) {
            std::printf("DRIFT    %s%s: %.6g -> %.6g (%+.1f%%)\n",
                        section.c_str(), name.c_str(), a, it->second,
                        100.0 * (it->second - a) /
                            (a != 0.0 ? std::fabs(a) : 1.0));
            ++flagged;
        }
    }
    for (const auto &[name, b] : cur) {
        if (!base.count(name)) {
            std::printf("NEW      %s%s = %.6g (not in baseline)\n",
                        section.c_str(), name.c_str(), b);
            // New metrics are informational, not failures.
        }
    }
    return flagged;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--threshold")) {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            opt.threshold = std::atof(argv[++i]);
        } else if (!std::strcmp(argv[i], "--stats")) {
            opt.compareStats = true;
        } else if (!std::strcmp(argv[i], "--help") ||
                   !std::strcmp(argv[i], "-h")) {
            usage(argv[0]);
            return 0;
        } else if (positional == 0) {
            opt.baselinePath = argv[i];
            ++positional;
        } else if (positional == 1) {
            opt.currentPath = argv[i];
            ++positional;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (positional != 2) {
        usage(argv[0]);
        return 2;
    }

    Json base, cur;
    if (!loadResults(opt.baselinePath, base) ||
        !loadResults(opt.currentPath, cur))
        return 2;

    const Json *bv = base.find("version");
    const Json *cv = cur.find("version");
    if (bv && cv && bv->asNumber() != cv->asNumber())
        std::printf("note: schema versions differ (baseline %d, "
                    "current %d)\n",
                    static_cast<int>(bv->asNumber()),
                    static_cast<int>(cv->asNumber()));

    int flagged = compareMaps(numericMap(base.find("metrics")),
                              numericMap(cur.find("metrics")), "",
                              opt.threshold);

    if (opt.compareStats) {
        std::map<std::string, double> bstats, cstats;
        if (const Json *s = base.find("stats"))
            flattenStats(*s, "stats", bstats);
        if (const Json *s = cur.find("stats"))
            flattenStats(*s, "stats", cstats);
        flagged += compareMaps(bstats, cstats, "", opt.threshold);
    }

    const Json *bb = base.find("bench");
    std::printf("%s: %d metric(s) beyond %.1f%% threshold\n",
                bb ? bb->asString().c_str() : "ccstat", flagged,
                100.0 * opt.threshold);
    return flagged ? 1 : 0;
}
