/**
 * @file
 * ccstat: compare two bench-result JSON files and flag regressions.
 *
 * Usage:
 *
 *     ccstat BASELINE.json CURRENT.json [--threshold FRAC] [--stats]
 *            [--perf] [--perf-threshold FRAC] [--identical]
 *
 * Both inputs are `ccache-bench-results` files written by
 * bench::ResultsWriter (see bench/bench_util.hh and DESIGN.md §7). The
 * tool compares the "metrics" maps — with `--stats` also every embedded
 * stats dump — and prints one line per metric whose relative drift
 * exceeds the threshold (default 5%). Drift is flagged in BOTH
 * directions: the simulator is deterministic, so an unexpected
 * improvement is as suspicious as a regression.
 *
 * Two perf-aware modes (DESIGN.md §13, README "Profiling & perf CI"):
 *
 *  - `--perf` additionally compares the run-local "perf" sections. This
 *    check is one-sided — only a slowdown beyond `--perf-threshold`
 *    (default 50%, generous because wall clock is noisy) fails.
 *  - `--identical` replaces the semantic comparison with a byte-level
 *    one that ignores the "perf" section: the documents must serialize
 *    identically after stripping it. This is what CI's thread-count and
 *    resume identity loops use instead of raw `cmp`.
 *
 * Exit status: 0 when everything is within the threshold, 1 when at
 * least one metric drifted, 2 on I/O, parse or schema errors — so CI
 * can gate merges on it directly. The comparison itself lives in
 * result_compare.hh, shared with the `ccbench` catalog driver.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/json.hh"
#include "result_compare.hh"

namespace {

using ccache::Json;

struct Options
{
    std::string baselinePath;
    std::string currentPath;
    double threshold = 0.05;
    double perfThreshold = 0.5;
    bool compareStats = false;
    bool comparePerf = false;
    bool identical = false;
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s BASELINE.json CURRENT.json "
                 "[--threshold FRAC] [--stats]\n"
                 "       [--perf] [--perf-threshold FRAC] "
                 "[--identical]\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--threshold")) {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            opt.threshold = std::atof(argv[++i]);
        } else if (!std::strcmp(argv[i], "--stats")) {
            opt.compareStats = true;
        } else if (!std::strcmp(argv[i], "--perf")) {
            opt.comparePerf = true;
        } else if (!std::strcmp(argv[i], "--perf-threshold")) {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            opt.perfThreshold = std::atof(argv[++i]);
        } else if (!std::strcmp(argv[i], "--identical")) {
            opt.identical = true;
        } else if (!std::strcmp(argv[i], "--help") ||
                   !std::strcmp(argv[i], "-h")) {
            usage(argv[0]);
            return 0;
        } else if (positional == 0) {
            opt.baselinePath = argv[i];
            ++positional;
        } else if (positional == 1) {
            opt.currentPath = argv[i];
            ++positional;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (positional != 2) {
        usage(argv[0]);
        return 2;
    }

    Json base, cur;
    if (!cctools::loadResults(opt.baselinePath, base) ||
        !cctools::loadResults(opt.currentPath, cur))
        return 2;

    const Json *bb = base.find("bench");
    const char *bench = bb ? bb->asString().c_str() : "ccstat";

    if (opt.identical) {
        // Byte-level identity modulo the run-local perf section.
        std::string a = cctools::stripPerf(base).dump(2);
        std::string b = cctools::stripPerf(cur).dump(2);
        if (a != b) {
            std::printf("%s: documents DIFFER (ignoring perf)\n", bench);
            return 1;
        }
        std::printf("%s: identical (ignoring perf)\n", bench);
        return 0;
    }

    int flagged = cctools::compareResults(base, cur, opt.threshold,
                                          opt.compareStats);
    std::printf("%s: %d metric(s) beyond %.1f%% threshold\n", bench,
                flagged, 100.0 * opt.threshold);

    if (opt.comparePerf) {
        int perf_flagged =
            cctools::comparePerf(base, cur, opt.perfThreshold);
        std::printf("%s: %d perf regression(s) beyond %.0f%% "
                    "tolerance\n",
                    bench, perf_flagged, 100.0 * opt.perfThreshold);
        flagged += perf_flagged;
    }
    return flagged ? 1 : 0;
}
