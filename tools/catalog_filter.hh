/**
 * @file
 * Catalog selection and resume planning for ccbench — factored out of
 * the driver so the behaviour is unit-testable without spawning
 * subprocesses.
 *
 * Two selection mechanisms compose (a bench runs when it passes both):
 *  - positional BENCH arguments: plain substring match, any-of;
 *  - --filter PATTERN flags: ECMAScript regex, partial match, any-of.
 *
 * Resume planning: a bench can be satisfied from the journal when it
 * has an `ok <name>` entry AND its result JSON still exists (the
 * journal alone is not proof — results directories get cleaned).
 *
 * Journal open mode: a run restricted to a subset of the catalog
 * (filtered or resumed) must APPEND to the journal; only an
 * unrestricted fresh run truncates it. Otherwise `ccbench --filter x`
 * would erase the completion records of every other bench and a later
 * `--resume` would needlessly re-run the whole catalog.
 */

#ifndef CCACHE_TOOLS_CATALOG_FILTER_HH
#define CCACHE_TOOLS_CATALOG_FILTER_HH

#include <regex>
#include <set>
#include <string>
#include <vector>

namespace cctools {

/** Bench-name selection: substrings (positional args) + regexes
 *  (--filter). An empty filter selects everything. */
class CatalogFilter
{
  public:
    void addSubstring(std::string s) { substrings_.push_back(std::move(s)); }

    /** Compile and add one regex; false (with @p error set) when the
     *  pattern does not parse. */
    bool addRegex(const std::string &pattern, std::string *error)
    {
        try {
            regexes_.emplace_back(pattern, std::regex::ECMAScript);
        } catch (const std::regex_error &e) {
            if (error)
                *error = e.what();
            return false;
        }
        return true;
    }

    bool empty() const { return substrings_.empty() && regexes_.empty(); }

    /** True when @p name passes the selection: it must match at least
     *  one substring (if any are given) and at least one regex (if any
     *  are given). */
    bool matches(const std::string &name) const
    {
        if (!substrings_.empty()) {
            bool any = false;
            for (const std::string &s : substrings_)
                any = any || name.find(s) != std::string::npos;
            if (!any)
                return false;
        }
        if (!regexes_.empty()) {
            bool any = false;
            for (const std::regex &re : regexes_)
                any = any || std::regex_search(name, re);
            if (!any)
                return false;
        }
        return true;
    }

  private:
    std::vector<std::string> substrings_;
    std::vector<std::regex> regexes_;
};

/** True when the journal must be opened in append mode: any run that
 *  does not cover the full catalog (resume, or a filtered subset) must
 *  preserve the completion records of the benches it is not running. */
inline bool
journalAppendMode(bool resume, bool filtered)
{
    return resume || filtered;
}

/**
 * Which of @p names are already satisfied: journaled as done AND their
 * result file still exists (per @p result_exists). Returns a parallel
 * bool vector.
 */
template <typename ResultExistsFn>
std::vector<bool>
planResume(const std::vector<std::string> &names,
           const std::set<std::string> &done,
           ResultExistsFn &&result_exists)
{
    std::vector<bool> cached(names.size(), false);
    for (std::size_t i = 0; i < names.size(); ++i)
        cached[i] = done.count(names[i]) != 0 && result_exists(names[i]);
    return cached;
}

} // namespace cctools

#endif // CCACHE_TOOLS_CATALOG_FILTER_HH
