/**
 * @file
 * Tests for the CC controller bookkeeping structures: instruction table,
 * operation table and key table (Section IV-D).
 */

#include <gtest/gtest.h>

#include "cc/instruction_table.hh"
#include "cc/key_table.hh"
#include "cc/operation_table.hh"

namespace ccache::cc {
namespace {

TEST(InstructionTable, AllocateUntilFull)
{
    InstructionTable table(2);
    auto instr = CcInstruction::copy(0x1000, 0x2000, 256);
    auto a = table.allocate(instr, 0, 4);
    auto b = table.allocate(instr, 1, 4);
    ASSERT_TRUE(a);
    ASSERT_TRUE(b);
    EXPECT_TRUE(table.full());
    EXPECT_FALSE(table.allocate(instr, 2, 4).has_value());
    table.release(*a);
    EXPECT_FALSE(table.full());
    EXPECT_TRUE(table.allocate(instr, 2, 4).has_value());
}

TEST(InstructionTable, OpGenerationAndCompletion)
{
    InstructionTable table;
    auto id = table.allocate(CcInstruction::copy(0, 0x2000, 192), 0, 3);
    ASSERT_TRUE(id);
    EXPECT_EQ(table.nextOp(*id), 0u);
    EXPECT_EQ(table.nextOp(*id), 1u);
    EXPECT_EQ(table.nextOp(*id), 2u);
    EXPECT_FALSE(table.nextOp(*id).has_value());

    EXPECT_FALSE(table.complete(*id));
    EXPECT_FALSE(table.complete(*id));
    EXPECT_TRUE(table.complete(*id));  // third completion retires
    EXPECT_TRUE(table.entry(*id).done());
}

TEST(InstructionTable, ResultAccumulation)
{
    InstructionTable table;
    auto id = table.allocate(CcInstruction::cmp(0x0, 0x1000, 128), 0, 2);
    ASSERT_TRUE(id);
    table.complete(*id, 0xab, 8);
    table.complete(*id, 0xcd, 8);
    EXPECT_EQ(table.entry(*id).result, 0xcdabu);
}

TEST(OperationTable, FetchLifecycle)
{
    OperationTable table(4);
    auto id = table.allocate(0, 0, {0x1000, 0x2000, 0x3000});
    ASSERT_TRUE(id);
    EXPECT_EQ(table.entry(*id).status, OpStatus::WaitingOperands);
    table.markFetched(*id, 0);
    table.markFetched(*id, 1);
    EXPECT_EQ(table.entry(*id).status, OpStatus::WaitingOperands);
    table.markFetched(*id, 2);
    EXPECT_EQ(table.entry(*id).status, OpStatus::Ready);
    table.markIssued(*id);
    table.markDone(*id);
    table.release(*id);
    EXPECT_EQ(table.occupancy(), 0u);
}

TEST(OperationTable, ForwardedRequestLosesOperand)
{
    OperationTable table(4);
    auto id = table.allocate(0, 0, {0x1000, 0x2000});
    table.markFetched(*id, 0);
    table.markFetched(*id, 1);
    EXPECT_EQ(table.entry(*id).status, OpStatus::Ready);
    // Section IV-E: a forwarded coherence request releases the lock; the
    // op drops back to waiting and re-fetches.
    table.markLost(*id, 1);
    EXPECT_EQ(table.entry(*id).status, OpStatus::WaitingOperands);
    EXPECT_FALSE(table.entry(*id).allFetched());
    table.markFetched(*id, 1);
    EXPECT_EQ(table.entry(*id).status, OpStatus::Ready);
}

TEST(OperationTable, CapacityBackPressure)
{
    OperationTable table(2);
    EXPECT_TRUE(table.allocate(0, 0, {0x0}).has_value());
    EXPECT_TRUE(table.allocate(0, 1, {0x40}).has_value());
    EXPECT_FALSE(table.allocate(0, 2, {0x80}).has_value());
}

TEST(KeyTable, TracksReplicationPerPartition)
{
    KeyTable keys;
    PartitionId p0{CacheLevel::L3, 0, 5};
    PartitionId p1{CacheLevel::L3, 0, 6};

    EXPECT_TRUE(keys.needsReplication(1, 0x1000, p0));
    // Same instruction + key + partition: already replicated.
    EXPECT_FALSE(keys.needsReplication(1, 0x1000, p0));
    // Different partition still needs it.
    EXPECT_TRUE(keys.needsReplication(1, 0x1000, p1));
    // Different instruction starts fresh.
    EXPECT_TRUE(keys.needsReplication(2, 0x1000, p0));
    EXPECT_EQ(keys.replications(), 3u);
}

TEST(KeyTable, ReleaseInstr)
{
    KeyTable keys;
    PartitionId p{CacheLevel::L1, 2, 1};
    keys.needsReplication(7, 0x40, p);
    EXPECT_EQ(keys.trackedInstructions(), 1u);
    keys.releaseInstr(7);
    EXPECT_EQ(keys.trackedInstructions(), 0u);
    EXPECT_TRUE(keys.needsReplication(7, 0x40, p));
}

} // namespace
} // namespace ccache::cc
