/**
 * @file
 * Controller edge cases: cross-slice operands (near-place fallback at
 * L3), RISC-fallback result correctness for CC-R, odd vector sizes
 * through the engines, and replicated-clmul bookkeeping.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cc/cc_controller.hh"
#include "common/rng.hh"
#include "sim/system.hh"

namespace ccache::cc {
namespace {

TEST(ControllerEdges, CrossSliceOperandsFallToNearPlace)
{
    energy::EnergyModel em;
    StatRegistry stats;
    cache::Hierarchy hier(cache::HierarchyParams{}, &em, &stats);
    CcController ctrl(hier, &em, &stats);

    // Same page offsets, but the pages are pinned to different NUCA
    // slices: the blocks cannot share bit-lines, so the op must execute
    // near-place (and still be correct).
    hier.mapPage(0x100000, 0);
    hier.mapPage(0x200000, 3);
    hier.mapPage(0x300000, 0);

    Block a, b;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        a[i] = static_cast<std::uint8_t>(i);
        b[i] = static_cast<std::uint8_t>(0x33 + i);
    }
    hier.memory().writeBlock(0x100000, a);
    hier.memory().writeBlock(0x200000, b);

    auto res = ctrl.execute(
        0, CcInstruction::logicalAnd(0x100000, 0x200000, 0x300000, 64));
    EXPECT_EQ(res.nearPlaceOps, 1u);
    EXPECT_EQ(res.inPlaceOps, 0u);

    Block expect;
    for (std::size_t i = 0; i < kBlockSize; ++i)
        expect[i] = a[i] & b[i];
    EXPECT_EQ(hier.debugRead(0x300000), expect);
}

TEST(ControllerEdges, RiscFallbackCmpMaskCorrect)
{
    energy::EnergyModel em;
    StatRegistry stats;
    cache::Hierarchy hier(cache::HierarchyParams{}, &em, &stats);
    CcControllerParams p;
    p.forceLevel = CacheLevel::L1;
    CcController ctrl(hier, &em, &stats, p);

    // Pin the operands' L1 set so staging fails and the cmp runs as
    // RISC loads + compares.
    const Addr a = 0x400000, b = 0x409040;
    for (unsigned i = 1; i <= 8; ++i) {
        Addr filler = a + i * 4096;
        hier.read(0, filler);
        ASSERT_TRUE(hier.l1(0).pin(filler));
    }

    Block da, db;
    for (std::size_t i = 0; i < kBlockSize; ++i)
        da[i] = db[i] = static_cast<std::uint8_t>(i * 5);
    db[16] ^= 0xff;  // word 2 differs
    hier.memory().writeBlock(a, da);
    hier.memory().writeBlock(b, db);

    auto res = ctrl.execute(0, CcInstruction::cmp(a, b, 64));
    EXPECT_TRUE(res.riscFallback);
    EXPECT_EQ(res.result & 0xff, 0xffu & ~(1u << 2));
}

TEST(ControllerEdges, ReplicatedClmulDisassemblesAndValidates)
{
    auto instr = CcInstruction::clmulReplicated(0x1000, 0x2000, 0x3000,
                                                4096, 256);
    EXPECT_TRUE(instr.src2Replicated);
    EXPECT_EQ(instr.clmulBitsPerBlock(), 2u);
    EXPECT_NO_THROW(instr.validate());
    // The replicated block and packed dest never span pages here.
    EXPECT_FALSE(instr.spansPage());
}

TEST(ControllerEdges, EngineHandlesNonChunkMultipleSizes)
{
    sim::System sys;
    const std::size_t n = 4096 + 512 + 64;  // not a chunk multiple
    std::vector<std::uint8_t> data(n);
    for (std::size_t i = 0; i < n; ++i)
        data[i] = static_cast<std::uint8_t>(i * 11);
    sys.load(0x500000, data.data(), n);

    sys.ccEngine().copy(0, 0x500000, 0x600000, n);
    EXPECT_EQ(sys.dump(0x600000, n), data);

    auto cmp = sys.ccEngine().compare(0, 0x500000, 0x600000, n);
    EXPECT_EQ(cmp.value, 1u);
}

TEST(ControllerEdges, StreamWithSingleInstructionMatchesExecute)
{
    sim::System a_sys, b_sys;
    std::vector<std::uint8_t> data(1024, 0x42);
    a_sys.load(0x100000, data.data(), data.size());
    b_sys.load(0x100000, data.data(), data.size());

    auto instr = CcInstruction::copy(0x100000, 0x200000, 1024);
    auto single = a_sys.cc().execute(0, instr);

    Cycles stream_total = 0;
    auto rs = b_sys.cc().executeStream(0, {instr}, &stream_total);
    ASSERT_EQ(rs.size(), 1u);
    EXPECT_EQ(rs[0].blockOps, single.blockOps);
    // The stream total and the single latency agree to within the
    // notification constant.
    EXPECT_NEAR(static_cast<double>(stream_total),
                static_cast<double>(single.latency), 16.0);
}

TEST(ControllerEdges, BuzOnColdDestinationSkipsMemoryFetch)
{
    sim::System sys;
    std::uint64_t before = sys.stats().value("hier.mem_reads");
    sys.cc().execute(0, CcInstruction::buz(0x700000, 4096));
    // The destination is fully overwritten: Figure 6's "need not be
    // fetched from memory" optimization.
    EXPECT_EQ(sys.stats().value("hier.mem_reads"), before);
    EXPECT_EQ(sys.dump(0x700000, 4096),
              std::vector<std::uint8_t>(4096, 0));
}

TEST(ControllerEdges, LockRetryCounterVisible)
{
    // Retries surface in stats when staging has to re-fetch.
    sim::System sys;
    auto &hier = sys.hierarchy();
    CcControllerParams p;
    p.forceLevel = CacheLevel::L1;
    CcController ctrl(hier, &sys.energy(), &sys.stats(), p);

    const Addr dest = 0x210000;
    for (unsigned i = 1; i <= 8; ++i) {
        Addr filler = dest + i * 4096;
        hier.read(0, filler);
        hier.l1(0).pin(filler);
    }
    ctrl.execute(0, CcInstruction::buz(dest, 64));
    EXPECT_GT(sys.stats().value("cc.lock_retries"), 0u);
    EXPECT_GT(sys.stats().value("cc.risc_fallbacks"), 0u);
}

} // namespace
} // namespace ccache::cc
