/**
 * @file
 * Parameterized sweeps over CC controller and geometry configurations:
 * functional correctness and the expected monotonic cost relations must
 * hold across the whole parameter space, not just the defaults.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "cache/hierarchy.hh"
#include "cc/cc_controller.hh"
#include "common/rng.hh"

namespace ccache::cc {
namespace {

/** (forced level, vector bytes, opcode selector) */
using SweepParam = std::tuple<CacheLevel, std::size_t, int>;

class ControllerSweep : public ::testing::TestWithParam<SweepParam>
{
  protected:
    ControllerSweep()
        : hier(cache::HierarchyParams{}, &em, &stats),
          ctrl(hier, &em, &stats)
    {
    }

    energy::EnergyModel em;
    StatRegistry stats;
    cache::Hierarchy hier;
    CcController ctrl;
};

TEST_P(ControllerSweep, FunctionalAcrossLevelsSizesAndOps)
{
    auto [level, size, op_sel] = GetParam();
    ctrl.mutableParams().forceLevel = level;

    Rng rng(static_cast<std::uint64_t>(size) * 31 + op_sel);
    std::vector<std::uint8_t> va(size), vb(size);
    for (std::size_t i = 0; i < size; ++i) {
        va[i] = static_cast<std::uint8_t>(rng.below(256));
        vb[i] = static_cast<std::uint8_t>(rng.below(256));
    }
    const Addr a = 0x100000, b = 0x110000, d = 0x120000;
    hier.memory().writeBytes(a, va.data(), size);
    hier.memory().writeBytes(b, vb.data(), size);

    CcInstruction instr = op_sel == 0
        ? CcInstruction::logicalAnd(a, b, d, size)
        : op_sel == 1 ? CcInstruction::logicalXor(a, b, d, size)
                      : CcInstruction::copy(a, d, size);
    auto res = ctrl.execute(0, instr);
    EXPECT_EQ(res.level, level);
    EXPECT_EQ(res.blockOps, size / kBlockSize);
    EXPECT_FALSE(res.riscFallback);

    for (std::size_t off = 0; off < size; off += kBlockSize) {
        Block got = hier.debugRead(d + off);
        for (std::size_t i = 0; i < kBlockSize; ++i) {
            std::uint8_t expect = op_sel == 0
                ? static_cast<std::uint8_t>(va[off + i] & vb[off + i])
                : op_sel == 1
                    ? static_cast<std::uint8_t>(va[off + i] ^ vb[off + i])
                    : va[off + i];
            ASSERT_EQ(got[i], expect)
                << "off " << off << " i " << i << " level "
                << toString(level);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    LevelsSizesOps, ControllerSweep,
    ::testing::Combine(
        ::testing::Values(CacheLevel::L1, CacheLevel::L2, CacheLevel::L3),
        ::testing::Values(std::size_t{64}, std::size_t{512},
                          std::size_t{4096}),
        ::testing::Values(0, 1, 2)),
    [](const auto &info) {
        std::string name = ccache::toString(std::get<0>(info.param));
        name += "_" + std::to_string(std::get<1>(info.param)) + "B_";
        int op = std::get<2>(info.param);
        name += op == 0 ? "and" : op == 1 ? "xor" : "copy";
        return name;
    });

/** In-place op latency must rise monotonically down the hierarchy. */
TEST(ControllerParams, LatencyMonotoneByLevel)
{
    CcControllerParams p;
    EXPECT_LT(p.inPlaceLatency(CacheLevel::L1),
              p.inPlaceLatency(CacheLevel::L2));
    EXPECT_LT(p.inPlaceLatency(CacheLevel::L2),
              p.inPlaceLatency(CacheLevel::L3));
    // Near-place always slower than in-place at the same level.
    for (CacheLevel l :
         {CacheLevel::L1, CacheLevel::L2, CacheLevel::L3}) {
        EXPECT_GT(p.nearPlace.latency(l), p.inPlaceLatency(l));
    }
}

/** Completion time must be monotonically non-increasing in the power
 *  cap and non-decreasing in vector size. */
class PowerCapSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PowerCapSweep, CapMonotonicity)
{
    unsigned cap = GetParam();

    auto run = [](unsigned c) {
        energy::EnergyModel em;
        StatRegistry stats;
        cache::Hierarchy hier(cache::HierarchyParams{}, &em, &stats);
        CcControllerParams params;
        params.maxActiveSubarrays = c;
        params.forceLevel = CacheLevel::L3;
        CcController ctrl(hier, &em, &stats, params);
        // Warm operands so only compute time is measured.
        for (Addr off = 0; off < 8192; off += kBlockSize) {
            hier.fetchToLevel(0, 0x100000 + off, CacheLevel::L3, false);
            hier.fetchToLevel(0, 0x110000 + off, CacheLevel::L3, true,
                              true);
        }
        return ctrl
            .execute(0, CcInstruction::copy(0x100000, 0x110000, 8192))
            .computeLatency;
    };

    Cycles with_cap = run(cap);
    Cycles doubled = run(cap * 2);
    EXPECT_GE(with_cap, doubled);
}

INSTANTIATE_TEST_SUITE_P(Caps, PowerCapSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

/** Larger vectors must never complete faster at the same level. */
class SizeSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SizeSweep, SizeMonotonicity)
{
    std::size_t size = GetParam();
    energy::EnergyModel em;
    StatRegistry stats;
    cache::Hierarchy hier(cache::HierarchyParams{}, &em, &stats);
    CcControllerParams params;
    params.forceLevel = CacheLevel::L3;
    CcController ctrl(hier, &em, &stats, params);

    auto warm_run = [&](std::size_t n) {
        for (Addr off = 0; off < n; off += kBlockSize) {
            hier.fetchToLevel(0, 0x100000 + off, CacheLevel::L3, false);
            hier.fetchToLevel(0, 0x180000 + off, CacheLevel::L3, true,
                              true);
        }
        return ctrl
            .execute(0, CcInstruction::copy(0x100000, 0x180000, n))
            .computeLatency;
    };

    EXPECT_LE(warm_run(size), warm_run(size * 2));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep,
                         ::testing::Values(std::size_t{64},
                                           std::size_t{256},
                                           std::size_t{1024},
                                           std::size_t{4096}));

} // namespace
} // namespace ccache::cc
