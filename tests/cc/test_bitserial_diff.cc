/**
 * @file
 * Differential battery for the bit-serial arithmetic class (cc_add /
 * cc_sub / cc_mul / cc_lt / cc_gt / cc_eq): every op runs through the
 * circuit-level sram::SubArray carry-latch path AND through the CC
 * controller over the real hierarchy, and is compared lane-for-lane
 * against an independent uint64_t/int64_t reference model at widths
 * 1..32, over seeded random vectors plus directed edge cases (carry
 * ripple, overflow wraparound, 0 / -1 / MSB-set operands). The
 * near-place-forced, ECC-active and fault-injected variants must stay
 * bit-identical to the reference: the fault ladder may change *where*
 * an op executes, never its result.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cache/hierarchy.hh"
#include "cc/bitserial.hh"
#include "cc/cc_controller.hh"
#include "common/rng.hh"
#include "sram/subarray.hh"

namespace ccache::cc {
namespace {

using Lanes = std::vector<std::uint64_t>;

constexpr std::size_t kLanes = 512;       // one 64-byte slice block
constexpr std::size_t kSliceBytes = 64;

std::uint64_t
widthMask(std::size_t w)
{
    return w == 64 ? ~0ULL : (1ULL << w) - 1;
}

/** Sign-extend the low @p w bits of @p v. */
std::int64_t
signExtend(std::uint64_t v, std::size_t w)
{
    std::uint64_t m = 1ULL << (w - 1);
    return static_cast<std::int64_t>(((v & widthMask(w)) ^ m)) -
        static_cast<std::int64_t>(m);
}

// ---------------------------------------------------------------------
// The reference model: plain uint64_t/int64_t lane loops, sharing no
// code with BitSerialCompute or the sub-array circuit.
// ---------------------------------------------------------------------

Lanes
refArith(CcOpcode op, const Lanes &a, const Lanes &b, std::size_t w)
{
    Lanes out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        std::uint64_t r = 0;
        switch (op) {
          case CcOpcode::Add: r = a[i] + b[i]; break;
          case CcOpcode::Sub: r = a[i] - b[i]; break;
          case CcOpcode::Mul: r = a[i] * b[i]; break;
          default: ADD_FAILURE() << "not an arith op"; break;
        }
        out[i] = r & widthMask(w);
    }
    return out;
}

/** One predicate lane (0/1) per input lane. */
Lanes
refCompare(CcOpcode op, const Lanes &a, const Lanes &b, std::size_t w,
           bool is_signed)
{
    Lanes out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        bool r = false;
        if (op == CcOpcode::Eq) {
            r = (a[i] & widthMask(w)) == (b[i] & widthMask(w));
        } else if (is_signed) {
            std::int64_t sa = signExtend(a[i], w);
            std::int64_t sb = signExtend(b[i], w);
            r = op == CcOpcode::Lt ? sa < sb : sa > sb;
        } else {
            std::uint64_t ua = a[i] & widthMask(w);
            std::uint64_t ub = b[i] & widthMask(w);
            r = op == CcOpcode::Lt ? ua < ub : ua > ub;
        }
        out[i] = r ? 1 : 0;
    }
    return out;
}

// ---------------------------------------------------------------------
// Lane vectors <-> bit-slice images.
// ---------------------------------------------------------------------

/** Slice image of @p vals: slice k at offset k * kSliceBytes. */
std::vector<std::uint8_t>
toSlices(const Lanes &vals, std::size_t w)
{
    std::vector<std::uint8_t> img(w * kSliceBytes, 0);
    for (std::size_t l = 0; l < vals.size(); ++l)
        for (std::size_t k = 0; k < w; ++k)
            if ((vals[l] >> k) & 1)
                img[k * kSliceBytes + l / 8] |=
                    static_cast<std::uint8_t>(1u << (l % 8));
    return img;
}

Lanes
fromSlices(const std::vector<std::uint8_t> &img, std::size_t w)
{
    Lanes vals(kLanes, 0);
    for (std::size_t l = 0; l < kLanes; ++l)
        for (std::size_t k = 0; k < w; ++k)
            if ((img[k * kSliceBytes + l / 8] >> (l % 8)) & 1)
                vals[l] |= std::uint64_t{1} << k;
    return vals;
}

Lanes
randomLanes(Rng &rng, std::size_t w)
{
    Lanes vals(kLanes);
    for (auto &v : vals)
        v = rng.next() & widthMask(w);
    return vals;
}

/** Directed operand pairs: carry ripple, wraparound, 0 / -1 / MSB-set. */
std::vector<std::pair<std::uint64_t, std::uint64_t>>
directedPairs(std::size_t w)
{
    std::uint64_t ones = widthMask(w);
    std::uint64_t msb = 1ULL << (w - 1);
    return {
        {0, 0},          {0, ones},      {ones, 1},    // full carry ripple
        {ones, ones},                                  // -1 * -1, overflow
        {msb, msb},      {msb, ones},    {msb, 1},     // MSB-set (signed min)
        {ones >> 1, 1},                                // max-positive + 1
        {1, ones >> 1},  {msb | 1, msb | 1},
    };
}

/** Lane vector cycling through the directed pairs. */
std::pair<Lanes, Lanes>
directedLanes(std::size_t w)
{
    auto pairs = directedPairs(w);
    Lanes a(kLanes), b(kLanes);
    for (std::size_t l = 0; l < kLanes; ++l) {
        a[l] = pairs[l % pairs.size()].first;
        b[l] = pairs[l % pairs.size()].second;
    }
    return {a, b};
}

const std::size_t kWidths[] = {1, 2, 3, 7, 8, 15, 16, 31, 32};

// ---------------------------------------------------------------------
// Layer 0: the software compute kernel vs the reference model.
// ---------------------------------------------------------------------

TEST(BitSerialKernel, ArithMatchesReferenceAtAllWidths)
{
    Rng rng(0xb17);
    for (std::size_t w : kWidths) {
        for (CcOpcode op :
             {CcOpcode::Add, CcOpcode::Sub, CcOpcode::Mul}) {
            Lanes a = randomLanes(rng, w);
            Lanes b = randomLanes(rng, w);
            auto [da, db] = directedLanes(w);
            // Mix directed pairs into the first half of the vector.
            for (std::size_t l = 0; l < kLanes / 2; ++l) {
                a[l] = da[l];
                b[l] = db[l];
            }
            auto sa = toSlices(a, w), sb = toSlices(b, w);
            std::vector<std::uint8_t> dst(w * kSliceBytes, 0xee);
            switch (op) {
              case CcOpcode::Add:
                BitSerialCompute::add(dst.data(), sa.data(), sb.data(),
                                      kSliceBytes, w);
                break;
              case CcOpcode::Sub:
                BitSerialCompute::sub(dst.data(), sa.data(), sb.data(),
                                      kSliceBytes, w);
                break;
              default:
                BitSerialCompute::mul(dst.data(), sa.data(), sb.data(),
                                      kSliceBytes, w);
                break;
            }
            EXPECT_EQ(fromSlices(dst, w), refArith(op, a, b, w))
                << toString(op) << " width " << w;
        }
    }
}

TEST(BitSerialKernel, CompareMatchesReferenceAtAllWidths)
{
    Rng rng(0xc03);
    for (std::size_t w : kWidths) {
        for (CcOpcode op :
             {CcOpcode::Lt, CcOpcode::Gt, CcOpcode::Eq}) {
            for (bool is_signed : {false, true}) {
                Lanes a = randomLanes(rng, w);
                Lanes b = randomLanes(rng, w);
                auto [da, db] = directedLanes(w);
                for (std::size_t l = 0; l < kLanes / 2; ++l) {
                    a[l] = da[l];
                    b[l] = db[l];
                }
                // Force exact ties into some lanes.
                for (std::size_t l = 0; l < kLanes; l += 7)
                    b[l] = a[l];
                auto sa = toSlices(a, w), sb = toSlices(b, w);
                std::vector<std::uint8_t> dst(kSliceBytes, 0xee);
                BitSerialCompute::compare(op, dst.data(), sa.data(),
                                          sb.data(), kSliceBytes, w,
                                          is_signed);
                EXPECT_EQ(fromSlices(dst, 1),
                          refCompare(op, a, b, w, is_signed))
                    << toString(op) << " width " << w << " signed "
                    << is_signed;
            }
        }
    }
}

TEST(BitSerialKernel, AddSubRoundTripAndAliasing)
{
    Rng rng(0xa11a5);
    for (std::size_t w : {8u, 32u}) {
        Lanes a = randomLanes(rng, w);
        Lanes b = randomLanes(rng, w);
        auto sa = toSlices(a, w), sb = toSlices(b, w);
        // dst aliases a: a += b, then a -= b restores the original.
        BitSerialCompute::add(sa.data(), sa.data(), sb.data(),
                              kSliceBytes, w);
        EXPECT_EQ(fromSlices(sa, w), refArith(CcOpcode::Add, a, b, w));
        BitSerialCompute::sub(sa.data(), sa.data(), sb.data(),
                              kSliceBytes, w);
        EXPECT_EQ(fromSlices(sa, w), a) << "width " << w;
    }
}

// ---------------------------------------------------------------------
// Layer 1: the sub-array carry-latch circuit vs the reference model.
// ---------------------------------------------------------------------

class BitSerialSubArray : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    BitSerialSubArray() : sa([] {
        sram::SubArrayParams p;
        p.rows = 128;
        p.cols = 512;  // one 64-byte block partition = 512 lanes
        return p;
    }())
    {
    }

    void
    writeOperand(const sram::BitSerialOperand &o, const Lanes &vals,
                 std::size_t w)
    {
        auto img = toSlices(vals, w);
        for (std::size_t k = 0; k < w; ++k) {
            Block blk{};
            std::copy_n(img.begin() + k * kSliceBytes, kSliceBytes,
                        blk.begin());
            sa.write({o.partition, o.row0 + k}, blk);
        }
    }

    Lanes
    readOperand(const sram::BitSerialOperand &o, std::size_t w)
    {
        std::vector<std::uint8_t> img(w * kSliceBytes, 0);
        for (std::size_t k = 0; k < w; ++k) {
            Block blk = sa.read({o.partition, o.row0 + k});
            std::copy_n(blk.begin(), kSliceBytes,
                        img.begin() + k * kSliceBytes);
        }
        return fromSlices(img, w);
    }

    sram::SubArray sa;
};

TEST_P(BitSerialSubArray, ArithMatchesReference)
{
    Rng rng(GetParam());
    for (std::size_t w : {1u, 5u, 8u, 16u, 32u}) {
        sram::BitSerialOperand a{0, 0}, b{0, 32}, dst{0, 64};
        Lanes va = randomLanes(rng, w);
        Lanes vb = randomLanes(rng, w);
        auto [da, db] = directedLanes(w);
        for (std::size_t l = 0; l < kLanes / 2; ++l) {
            va[l] = da[l];
            vb[l] = db[l];
        }
        writeOperand(a, va, w);
        writeOperand(b, vb, w);

        sa.opBitSerialAdd(a, b, dst, w);
        EXPECT_EQ(readOperand(dst, w),
                  refArith(CcOpcode::Add, va, vb, w)) << "width " << w;
        sa.opBitSerialSub(a, b, dst, w);
        EXPECT_EQ(readOperand(dst, w),
                  refArith(CcOpcode::Sub, va, vb, w)) << "width " << w;
        sa.opBitSerialMul(a, b, dst, w);
        EXPECT_EQ(readOperand(dst, w),
                  refArith(CcOpcode::Mul, va, vb, w)) << "width " << w;

        // Sources must be intact (bit-line ops sense, they don't write
        // the operand rows).
        EXPECT_EQ(readOperand(a, w), va);
        EXPECT_EQ(readOperand(b, w), vb);

        for (bool is_signed : {false, true}) {
            auto cmp = sa.opBitSerialCompare(a, b, w, is_signed);
            for (std::size_t l = 0; l < kLanes; ++l) {
                SCOPED_TRACE(l);
                auto lt = refCompare(CcOpcode::Lt, va, vb, w, is_signed);
                auto gt = refCompare(CcOpcode::Gt, va, vb, w, is_signed);
                auto eq = refCompare(CcOpcode::Eq, va, vb, w, is_signed);
                ASSERT_EQ(cmp.lt.get(l), lt[l] != 0);
                ASSERT_EQ(cmp.gt.get(l), gt[l] != 0);
                ASSERT_EQ(cmp.eq.get(l), eq[l] != 0);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(FixedSeeds, BitSerialSubArray,
                         ::testing::Values(11u, 29u, 0xfeedu));

// ---------------------------------------------------------------------
// Layer 2: the CC controller over the real hierarchy. Operands live in
// the transposed page-stride layout (slice k at base + k*kSliceStride).
// ---------------------------------------------------------------------

enum class Variant { InPlace, NearPlace, EccActive, Faulty };

class ControllerBitSerial : public ::testing::TestWithParam<Variant>
{
  protected:
    ControllerBitSerial()
        : hier(cache::HierarchyParams{}, &em, &stats),
          ctrl(hier, &em, &stats, makeParams(GetParam()))
    {
    }

    static CcControllerParams
    makeParams(Variant v)
    {
        CcControllerParams p;
        switch (v) {
          case Variant::InPlace:
            p.verifyCircuit = true;  // cross-check the carry-latch model
            break;
          case Variant::NearPlace:
            p.forceNearPlace = true;
            break;
          case Variant::EccActive:
            p.faults.enabled = true;
            p.faults.seed = 77;
            break;
          case Variant::Faulty:
            // Detected-fault soup: margin collapses on dual-row senses
            // plus SECDED-correctable/detectable transients. The ladder
            // must route around them (retry, near-place, risc) with the
            // results staying bit-exact.
            p.faults.enabled = true;
            p.faults.seed = 1234;
            p.faults.marginFailPerDualRowOp = 0.05;
            p.faults.transientPerBlockOp = 0.02;
            break;
        }
        return p;
    }

    void
    writeOperand(Addr base, const Lanes &vals, std::size_t w)
    {
        auto img = toSlices(vals, w);
        for (std::size_t k = 0; k < w; ++k)
            hier.memory().writeBytes(CcInstruction::sliceAddr(base, k),
                                     img.data() + k * kSliceBytes,
                                     kSliceBytes);
    }

    Lanes
    readOperand(Addr base, std::size_t w)
    {
        std::vector<std::uint8_t> img(w * kSliceBytes, 0);
        for (std::size_t k = 0; k < w; ++k) {
            Block blk =
                hier.debugRead(CcInstruction::sliceAddr(base, k));
            std::copy_n(blk.begin(), kSliceBytes,
                        img.begin() + k * kSliceBytes);
        }
        return fromSlices(img, w);
    }

    energy::EnergyModel em;
    StatRegistry stats;
    cache::Hierarchy hier;
    CcController ctrl;
};

TEST_P(ControllerBitSerial, ArithMatchesReferenceAcrossWidths)
{
    Rng rng(0xd1ff);
    std::size_t iteration = 0;
    for (std::size_t w : kWidths) {
        // Fresh page-aligned bases per width: memory writes do not
        // invalidate lines staged by earlier iterations.
        Addr base = 0x1000000 + 0x400000 * iteration++;
        Addr a = base, b = base + 0x100000, d = base + 0x200000;
        Lanes va = randomLanes(rng, w);
        Lanes vb = randomLanes(rng, w);
        auto [da, db] = directedLanes(w);
        for (std::size_t l = 0; l < kLanes / 2; ++l) {
            va[l] = da[l];
            vb[l] = db[l];
        }
        writeOperand(a, va, w);
        writeOperand(b, vb, w);

        auto run = [&](CcInstruction instr, CcOpcode op) {
            auto res = ctrl.execute(0, instr);
            if (GetParam() == Variant::NearPlace) {
                EXPECT_EQ(res.inPlaceOps, 0u);
                EXPECT_GT(res.nearPlaceOps, 0u);
            }
            EXPECT_EQ(readOperand(d, w), refArith(op, va, vb, w))
                << instr.toString();
        };

        run(CcInstruction::add(a, b, d, kSliceBytes, w), CcOpcode::Add);
        run(CcInstruction::sub(a, b, d, kSliceBytes, w), CcOpcode::Sub);
        run(CcInstruction::mul(a, b, d, kSliceBytes, w), CcOpcode::Mul);

        // Sources survive every op.
        EXPECT_EQ(readOperand(a, w), va);
        EXPECT_EQ(readOperand(b, w), vb);
    }
}

TEST_P(ControllerBitSerial, CompareMatchesReferenceAcrossWidths)
{
    Rng rng(0xcafe);
    std::size_t iteration = 0;
    for (std::size_t w : {1u, 4u, 8u, 16u, 32u}) {
        Addr base = 0x8000000 + 0x400000 * iteration++;
        Addr a = base, b = base + 0x100000, d = base + 0x200000;
        Lanes va = randomLanes(rng, w);
        Lanes vb = randomLanes(rng, w);
        for (std::size_t l = 0; l < kLanes; l += 5)
            vb[l] = va[l];  // planted ties
        writeOperand(a, va, w);
        writeOperand(b, vb, w);

        struct Case
        {
            CcInstruction instr;
            CcOpcode op;
            bool is_signed;
        };
        for (const Case &c : {
                 Case{CcInstruction::cmpLt(a, b, d, kSliceBytes, w,
                                           false),
                      CcOpcode::Lt, false},
                 Case{CcInstruction::cmpLt(a, b, d, kSliceBytes, w,
                                           true),
                      CcOpcode::Lt, true},
                 Case{CcInstruction::cmpGt(a, b, d, kSliceBytes, w,
                                           false),
                      CcOpcode::Gt, false},
                 Case{CcInstruction::cmpGt(a, b, d, kSliceBytes, w,
                                           true),
                      CcOpcode::Gt, true},
                 Case{CcInstruction::cmpEq(a, b, d, kSliceBytes, w),
                      CcOpcode::Eq, false},
             }) {
            ctrl.execute(0, c.instr);
            EXPECT_EQ(readOperand(d, 1),
                      refCompare(c.op, va, vb, w, c.is_signed))
                << c.instr.toString();
        }
    }
}

TEST_P(ControllerBitSerial, MultiGroupOperandsComputeEveryLaneGroup)
{
    // 4 blocks per slice row = 2048 lanes spread over 4 partitions.
    const std::size_t sb = 4 * kSliceBytes;
    const std::size_t w = 16;
    Rng rng(0x9009);
    Addr a = 0x20000000, b = 0x20100000, d = 0x20200000;

    std::vector<Lanes> va(4), vb(4);
    for (std::size_t g = 0; g < 4; ++g) {
        va[g] = randomLanes(rng, w);
        vb[g] = randomLanes(rng, w);
        auto ia = toSlices(va[g], w), ib = toSlices(vb[g], w);
        for (std::size_t k = 0; k < w; ++k) {
            Addr off = k * kSliceStride + g * kBlockSize;
            hier.memory().writeBytes(a + off, ia.data() + k * kSliceBytes,
                                     kSliceBytes);
            hier.memory().writeBytes(b + off, ib.data() + k * kSliceBytes,
                                     kSliceBytes);
        }
    }

    auto res = ctrl.execute(0, CcInstruction::add(a, b, d, sb, w));
    EXPECT_EQ(res.blockOps, 4 * BitSerialCompute::steps(CcOpcode::Add, w));
    for (std::size_t g = 0; g < 4; ++g) {
        std::vector<std::uint8_t> img(w * kSliceBytes, 0);
        for (std::size_t k = 0; k < w; ++k) {
            Block blk =
                hier.debugRead(d + k * kSliceStride + g * kBlockSize);
            std::copy_n(blk.begin(), kSliceBytes,
                        img.begin() + k * kSliceBytes);
        }
        EXPECT_EQ(fromSlices(img, w),
                  refArith(CcOpcode::Add, va[g], vb[g], w))
            << "group " << g;
    }
}

TEST_P(ControllerBitSerial, FaultLadderKeepsResultsExact)
{
    if (GetParam() != Variant::Faulty)
        GTEST_SKIP() << "only meaningful with nonzero fault rates";
    // Long stream of Muls (the op with the most dual-row senses) so the
    // margin-fail rate forces retries, near-place degrades and risc
    // recoveries; every single result must still be exact.
    Rng rng(0xfa17);
    const std::size_t w = 16;
    bool any_degrade = false;
    for (int trial = 0; trial < 6; ++trial) {
        Addr base = 0x40000000 + 0x400000 * trial;
        Addr a = base, b = base + 0x100000, d = base + 0x200000;
        Lanes va = randomLanes(rng, w);
        Lanes vb = randomLanes(rng, w);
        writeOperand(a, va, w);
        writeOperand(b, vb, w);
        auto res =
            ctrl.execute(0, CcInstruction::mul(a, b, d, kSliceBytes, w));
        any_degrade |= res.faultDegradedOps > 0 ||
            res.faultRiscRecoveries > 0 || res.faultRetries > 0;
        ASSERT_EQ(readOperand(d, w), refArith(CcOpcode::Mul, va, vb, w))
            << "trial " << trial;
    }
    // At these rates the ladder must have fired at least once; if not,
    // the test is vacuous and the rates need raising.
    EXPECT_TRUE(any_degrade);
}

INSTANTIATE_TEST_SUITE_P(Variants, ControllerBitSerial,
                         ::testing::Values(Variant::InPlace,
                                           Variant::NearPlace,
                                           Variant::EccActive,
                                           Variant::Faulty),
                         [](const auto &info) {
                             switch (info.param) {
                               case Variant::InPlace: return "InPlace";
                               case Variant::NearPlace: return "NearPlace";
                               case Variant::EccActive: return "EccActive";
                               case Variant::Faulty: return "Faulty";
                             }
                             return "Unknown";
                         });

// Cross-variant identity: the same bit-serial stream under every
// variant yields byte-identical memory images.
TEST(BitSerialCrossVariant, MemoryImagesBitIdentical)
{
    auto run_variant = [](Variant v) {
        energy::EnergyModel em;
        StatRegistry stats;
        cache::Hierarchy hier(cache::HierarchyParams{}, &em, &stats);
        CcControllerParams p;
        if (v == Variant::NearPlace)
            p.forceNearPlace = true;
        if (v == Variant::EccActive || v == Variant::Faulty) {
            p.faults.enabled = true;
            p.faults.seed = 99;
        }
        if (v == Variant::Faulty) {
            p.faults.marginFailPerDualRowOp = 0.1;
            p.faults.transientPerBlockOp = 0.05;
        }
        CcController ctrl(hier, &em, &stats, p);

        Rng rng(0x1d3a7);
        const std::size_t w = 8;
        Addr a = 0x1000000, b = 0x1100000, d = 0x1200000,
             e = 0x1300000;
        auto write = [&](Addr base, const Lanes &vals) {
            auto img = toSlices(vals, w);
            for (std::size_t k = 0; k < w; ++k)
                hier.memory().writeBytes(
                    CcInstruction::sliceAddr(base, k),
                    img.data() + k * kSliceBytes, kSliceBytes);
        };
        write(a, randomLanes(rng, w));
        write(b, randomLanes(rng, w));

        ctrl.execute(0, CcInstruction::mul(a, b, d, kSliceBytes, w));
        ctrl.execute(0, CcInstruction::add(d, a, e, kSliceBytes, w));
        ctrl.execute(0, CcInstruction::sub(e, b, e, kSliceBytes, w));
        ctrl.execute(0,
                     CcInstruction::cmpLt(e, a, d, kSliceBytes, w, true));

        std::vector<std::uint8_t> image;
        for (Addr base : {d, e})
            for (std::size_t k = 0; k < w; ++k) {
                Block blk =
                    hier.debugRead(CcInstruction::sliceAddr(base, k));
                image.insert(image.end(), blk.begin(), blk.end());
            }
        return image;
    };

    auto in_place = run_variant(Variant::InPlace);
    EXPECT_EQ(in_place, run_variant(Variant::NearPlace));
    EXPECT_EQ(in_place, run_variant(Variant::EccActive));
    EXPECT_EQ(in_place, run_variant(Variant::Faulty));
}

} // namespace
} // namespace ccache::cc
