/**
 * @file
 * Tests for the page-reuse predictor extension and its integration with
 * CC level selection.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cc/cc_controller.hh"
#include "cc/reuse_predictor.hh"

namespace ccache::cc {
namespace {

TEST(ReusePredictorTest, PredictsAfterThresholdTouches)
{
    ReusePredictor pred(16, 2);
    EXPECT_FALSE(pred.predictsReuse(0x1000));
    pred.touch(0x1000);
    EXPECT_FALSE(pred.predictsReuse(0x1000));  // one touch < threshold
    pred.touch(0x1040);  // same page
    EXPECT_TRUE(pred.predictsReuse(0x1800));   // any addr on the page
    EXPECT_FALSE(pred.predictsReuse(0x2000));  // other page untouched
}

TEST(ReusePredictorTest, LruEvictionBoundsTable)
{
    ReusePredictor pred(4, 1);
    for (Addr p = 0; p < 6; ++p)
        pred.touch(p * kPageSize);
    EXPECT_EQ(pred.trackedPages(), 4u);
    // The two oldest pages fell out.
    EXPECT_FALSE(pred.predictsReuse(0));
    EXPECT_FALSE(pred.predictsReuse(kPageSize));
    EXPECT_TRUE(pred.predictsReuse(5 * kPageSize));
}

TEST(ReusePredictorTest, TouchRefreshesLru)
{
    ReusePredictor pred(2, 1);
    pred.touch(0x1000);
    pred.touch(0x2000);
    pred.touch(0x1000);  // refresh page 1
    pred.touch(0x3000);  // evicts page 2, not page 1
    EXPECT_TRUE(pred.predictsReuse(0x1000));
    EXPECT_FALSE(pred.predictsReuse(0x2000));
}

TEST(ReusePredictorTest, RecommendHoistsOnlyFullyHotL3)
{
    ReusePredictor pred(16, 2);
    std::vector<Addr> ops = {0x1000, 0x2000};
    // Cold: stays at the policy level.
    EXPECT_EQ(pred.recommend(CacheLevel::L3, ops), CacheLevel::L3);
    pred.touch(0x1000);
    pred.touch(0x1000);
    pred.touch(0x2000);
    // One hot page is not enough.
    EXPECT_EQ(pred.recommend(CacheLevel::L3, ops), CacheLevel::L3);
    pred.touch(0x2000);
    EXPECT_EQ(pred.recommend(CacheLevel::L3, ops), CacheLevel::L2);
    // Higher policy levels are never demoted.
    EXPECT_EQ(pred.recommend(CacheLevel::L1, ops), CacheLevel::L1);
}

TEST(ReusePredictorTest, ControllerHoistsRepeatedOperands)
{
    energy::EnergyModel em;
    StatRegistry stats;
    cache::Hierarchy hier(cache::HierarchyParams{}, &em, &stats);
    CcControllerParams params;
    params.useReusePredictor = true;
    CcController ctrl(hier, &em, &stats, params);

    // Repeatedly XOR the same pair of pages: the first instructions run
    // at L3 (operands uncached), later ones get hoisted to L2.
    auto instr = CcInstruction::logicalXor(0x10000, 0x20000, 0x30000,
                                           4096);
    auto first = ctrl.execute(0, instr);
    EXPECT_EQ(first.level, CacheLevel::L3);
    ctrl.execute(0, instr);
    auto later = ctrl.execute(0, instr);
    EXPECT_EQ(later.level, CacheLevel::L2);
    EXPECT_GT(stats.value("cc.reuse_hoists"), 0u);
}

TEST(ReusePredictorTest, DisabledByDefault)
{
    energy::EnergyModel em;
    StatRegistry stats;
    cache::Hierarchy hier(cache::HierarchyParams{}, &em, &stats);
    CcController ctrl(hier, &em, &stats);

    auto instr = CcInstruction::logicalXor(0x10000, 0x20000, 0x30000,
                                           4096);
    for (int i = 0; i < 4; ++i)
        ctrl.execute(0, instr);
    EXPECT_EQ(stats.value("cc.reuse_hoists"), 0u);
}

} // namespace
} // namespace ccache::cc
