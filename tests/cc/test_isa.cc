/**
 * @file
 * Tests for the CC ISA: encodings, validation limits, page-span
 * detection and the exception handler's splitting (Table II, IV-A, IV-D).
 */

#include <gtest/gtest.h>

#include "cc/isa.hh"
#include "common/logging.hh"

namespace ccache::cc {
namespace {

TEST(CcIsa, BuildersEncodeOperands)
{
    auto c = CcInstruction::copy(0x1000, 0x2000, 256);
    EXPECT_EQ(c.op, CcOpcode::Copy);
    EXPECT_EQ(c.operandAddrs(), (std::vector<Addr>{0x1000, 0x2000}));
    EXPECT_EQ(c.writtenAddrs(), (std::vector<Addr>{0x2000}));

    auto z = CcInstruction::buz(0x3000, 128);
    EXPECT_EQ(z.operandAddrs(), (std::vector<Addr>{0x3000}));

    auto a = CcInstruction::logicalAnd(0x1000, 0x2000, 0x3000, 512);
    EXPECT_EQ(a.operandAddrs(),
              (std::vector<Addr>{0x1000, 0x2000, 0x3000}));

    auto s = CcInstruction::search(0x1000, 0x2000, 512);
    EXPECT_TRUE(s.writtenAddrs().empty());
}

TEST(CcIsa, CcRClassification)
{
    EXPECT_TRUE(isCcR(CcOpcode::Cmp));
    EXPECT_TRUE(isCcR(CcOpcode::Search));
    EXPECT_FALSE(isCcR(CcOpcode::Copy));
    EXPECT_FALSE(isCcR(CcOpcode::And));
    EXPECT_FALSE(isCcR(CcOpcode::Buz));
}

TEST(CcIsa, NumAddrOperands)
{
    EXPECT_EQ(numAddrOperands(CcOpcode::Buz), 1u);
    EXPECT_EQ(numAddrOperands(CcOpcode::Copy), 2u);
    EXPECT_EQ(numAddrOperands(CcOpcode::Not), 2u);
    EXPECT_EQ(numAddrOperands(CcOpcode::Xor), 3u);
    EXPECT_EQ(numAddrOperands(CcOpcode::Clmul), 3u);
}

TEST(CcIsa, ValidateAcceptsLimits)
{
    EXPECT_NO_THROW(
        CcInstruction::copy(0x1000, 0x2000, kMaxVectorBytes).validate());
    EXPECT_NO_THROW(
        CcInstruction::cmp(0x1000, 0x2000, kMaxCmpBytes).validate());
}

TEST(CcIsa, ValidateRejectsBadEncodings)
{
    EXPECT_THROW(CcInstruction::copy(0x1000, 0x2000, 0).validate(),
                 FatalError);
    EXPECT_THROW(
        CcInstruction::copy(0x1000, 0x2000, kMaxVectorBytes + 64)
            .validate(),
        FatalError);
    // cmp/search result must fit a 64-bit register.
    EXPECT_THROW(CcInstruction::cmp(0x1000, 0x2000, 1024).validate(),
                 FatalError);
    EXPECT_THROW(CcInstruction::search(0x1000, 0x2000, 1024).validate(),
                 FatalError);
    // Operands must be block-aligned.
    EXPECT_THROW(CcInstruction::copy(0x1001, 0x2000, 64).validate(),
                 FatalError);
    // clmul width restricted to 64/128/256.
    EXPECT_THROW(
        CcInstruction::clmul(0x1000, 0x2000, 0x3000, 64, 32).validate(),
        FatalError);
    // Sizes must be word multiples.
    EXPECT_THROW(CcInstruction::copy(0x1000, 0x2000, 60).validate(),
                 FatalError);
}

TEST(CcIsa, SpansPageDetection)
{
    // Entirely within one page.
    EXPECT_FALSE(CcInstruction::copy(0x1000, 0x2000, 4096).spansPage());
    // Source starts mid-page and runs over the boundary.
    EXPECT_TRUE(CcInstruction::copy(0x1800, 0x2800, 4096).spansPage());
    // Only one operand spanning still counts.
    EXPECT_TRUE(CcInstruction::copy(0x1000, 0x2f00, 512).spansPage());
}

TEST(CcIsa, SplitAtPageBoundaries)
{
    // 4 KB copy starting at +0x800: splits into 2 KB + 2 KB.
    auto instr = CcInstruction::copy(0x1800, 0x2800, 4096);
    auto pieces = instr.splitAtPageBoundaries();
    ASSERT_EQ(pieces.size(), 2u);
    EXPECT_EQ(pieces[0].src1, 0x1800u);
    EXPECT_EQ(pieces[0].size, 2048u);
    EXPECT_EQ(pieces[1].src1, 0x2000u);
    EXPECT_EQ(pieces[1].dest, 0x3000u);
    EXPECT_EQ(pieces[1].size, 2048u);
    for (const auto &p : pieces)
        EXPECT_FALSE(p.spansPage());
}

TEST(CcIsa, SplitMisalignedOperands)
{
    // Operands at different page offsets force finer splitting.
    auto instr = CcInstruction::logicalXor(0x1c00, 0x2800, 0x3c00, 4096);
    auto pieces = instr.splitAtPageBoundaries();
    std::size_t total = 0;
    for (const auto &p : pieces) {
        EXPECT_FALSE(p.spansPage());
        EXPECT_EQ(p.src1, instr.src1 + total);
        EXPECT_EQ(p.src2, instr.src2 + total);
        EXPECT_EQ(p.dest, instr.dest + total);
        total += p.size;
    }
    EXPECT_EQ(total, instr.size);
    EXPECT_GE(pieces.size(), 2u);
}

TEST(CcIsa, SearchKeyDoesNotAdvanceOnSplit)
{
    auto instr = CcInstruction::search(0xfc0, 0x2000, 512);
    ASSERT_TRUE(instr.spansPage());
    auto pieces = instr.splitAtPageBoundaries();
    ASSERT_EQ(pieces.size(), 2u);
    EXPECT_EQ(pieces[0].src2, 0x2000u);
    EXPECT_EQ(pieces[1].src2, 0x2000u);
    EXPECT_EQ(pieces[0].size, 64u);
    EXPECT_EQ(pieces[1].size, 448u);
}

TEST(CcIsa, Disassembly)
{
    auto instr = CcInstruction::logicalAnd(0x1000, 0x2000, 0x3000, 256);
    EXPECT_EQ(instr.toString(), "cc_and 0x1000 0x2000 0x3000 256");
    auto cl = CcInstruction::clmul(0x40, 0x80, 0xc0, 64, 128);
    EXPECT_EQ(cl.toString(), "cc_clmul128 0x40 0x80 0xc0 64");
}

} // namespace
} // namespace ccache::cc
