/**
 * @file
 * Tests for the CC ISA: encodings, validation limits, page-span
 * detection and the exception handler's splitting (Table II, IV-A, IV-D).
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cc/isa.hh"
#include "common/logging.hh"

namespace ccache::cc {
namespace {

TEST(CcIsa, BuildersEncodeOperands)
{
    auto c = CcInstruction::copy(0x1000, 0x2000, 256);
    EXPECT_EQ(c.op, CcOpcode::Copy);
    EXPECT_EQ(c.operandAddrs(), (std::vector<Addr>{0x1000, 0x2000}));
    EXPECT_EQ(c.writtenAddrs(), (std::vector<Addr>{0x2000}));

    auto z = CcInstruction::buz(0x3000, 128);
    EXPECT_EQ(z.operandAddrs(), (std::vector<Addr>{0x3000}));

    auto a = CcInstruction::logicalAnd(0x1000, 0x2000, 0x3000, 512);
    EXPECT_EQ(a.operandAddrs(),
              (std::vector<Addr>{0x1000, 0x2000, 0x3000}));

    auto s = CcInstruction::search(0x1000, 0x2000, 512);
    EXPECT_TRUE(s.writtenAddrs().empty());
}

TEST(CcIsa, CcRClassification)
{
    EXPECT_TRUE(isCcR(CcOpcode::Cmp));
    EXPECT_TRUE(isCcR(CcOpcode::Search));
    EXPECT_FALSE(isCcR(CcOpcode::Copy));
    EXPECT_FALSE(isCcR(CcOpcode::And));
    EXPECT_FALSE(isCcR(CcOpcode::Buz));
}

TEST(CcIsa, NumAddrOperands)
{
    EXPECT_EQ(numAddrOperands(CcOpcode::Buz), 1u);
    EXPECT_EQ(numAddrOperands(CcOpcode::Copy), 2u);
    EXPECT_EQ(numAddrOperands(CcOpcode::Not), 2u);
    EXPECT_EQ(numAddrOperands(CcOpcode::Xor), 3u);
    EXPECT_EQ(numAddrOperands(CcOpcode::Clmul), 3u);
}

TEST(CcIsa, ValidateAcceptsLimits)
{
    EXPECT_NO_THROW(
        CcInstruction::copy(0x1000, 0x2000, kMaxVectorBytes).validate());
    EXPECT_NO_THROW(
        CcInstruction::cmp(0x1000, 0x2000, kMaxCmpBytes).validate());
}

TEST(CcIsa, ValidateRejectsBadEncodings)
{
    EXPECT_THROW(CcInstruction::copy(0x1000, 0x2000, 0).validate(),
                 FatalError);
    EXPECT_THROW(
        CcInstruction::copy(0x1000, 0x2000, kMaxVectorBytes + 64)
            .validate(),
        FatalError);
    // cmp/search result must fit a 64-bit register.
    EXPECT_THROW(CcInstruction::cmp(0x1000, 0x2000, 1024).validate(),
                 FatalError);
    EXPECT_THROW(CcInstruction::search(0x1000, 0x2000, 1024).validate(),
                 FatalError);
    // Operands must be block-aligned.
    EXPECT_THROW(CcInstruction::copy(0x1001, 0x2000, 64).validate(),
                 FatalError);
    // clmul width restricted to 64/128/256.
    EXPECT_THROW(
        CcInstruction::clmul(0x1000, 0x2000, 0x3000, 64, 32).validate(),
        FatalError);
    // Sizes must be word multiples.
    EXPECT_THROW(CcInstruction::copy(0x1000, 0x2000, 60).validate(),
                 FatalError);
}

TEST(CcIsa, SpansPageDetection)
{
    // Entirely within one page.
    EXPECT_FALSE(CcInstruction::copy(0x1000, 0x2000, 4096).spansPage());
    // Source starts mid-page and runs over the boundary.
    EXPECT_TRUE(CcInstruction::copy(0x1800, 0x2800, 4096).spansPage());
    // Only one operand spanning still counts.
    EXPECT_TRUE(CcInstruction::copy(0x1000, 0x2f00, 512).spansPage());
}

TEST(CcIsa, SplitAtPageBoundaries)
{
    // 4 KB copy starting at +0x800: splits into 2 KB + 2 KB.
    auto instr = CcInstruction::copy(0x1800, 0x2800, 4096);
    auto pieces = instr.splitAtPageBoundaries();
    ASSERT_EQ(pieces.size(), 2u);
    EXPECT_EQ(pieces[0].src1, 0x1800u);
    EXPECT_EQ(pieces[0].size, 2048u);
    EXPECT_EQ(pieces[1].src1, 0x2000u);
    EXPECT_EQ(pieces[1].dest, 0x3000u);
    EXPECT_EQ(pieces[1].size, 2048u);
    for (const auto &p : pieces)
        EXPECT_FALSE(p.spansPage());
}

TEST(CcIsa, SplitMisalignedOperands)
{
    // Operands at different page offsets force finer splitting.
    auto instr = CcInstruction::logicalXor(0x1c00, 0x2800, 0x3c00, 4096);
    auto pieces = instr.splitAtPageBoundaries();
    std::size_t total = 0;
    for (const auto &p : pieces) {
        EXPECT_FALSE(p.spansPage());
        EXPECT_EQ(p.src1, instr.src1 + total);
        EXPECT_EQ(p.src2, instr.src2 + total);
        EXPECT_EQ(p.dest, instr.dest + total);
        total += p.size;
    }
    EXPECT_EQ(total, instr.size);
    EXPECT_GE(pieces.size(), 2u);
}

TEST(CcIsa, SearchKeyDoesNotAdvanceOnSplit)
{
    auto instr = CcInstruction::search(0xfc0, 0x2000, 512);
    ASSERT_TRUE(instr.spansPage());
    auto pieces = instr.splitAtPageBoundaries();
    ASSERT_EQ(pieces.size(), 2u);
    EXPECT_EQ(pieces[0].src2, 0x2000u);
    EXPECT_EQ(pieces[1].src2, 0x2000u);
    EXPECT_EQ(pieces[0].size, 64u);
    EXPECT_EQ(pieces[1].size, 448u);
}

TEST(CcIsa, Disassembly)
{
    auto instr = CcInstruction::logicalAnd(0x1000, 0x2000, 0x3000, 256);
    EXPECT_EQ(instr.toString(), "cc_and 0x1000 0x2000 0x3000 256");
    auto cl = CcInstruction::clmul(0x40, 0x80, 0xc0, 64, 128);
    EXPECT_EQ(cl.toString(), "cc_clmul128 0x40 0x80 0xc0 64");
}

// ---------------------------------------------------------------------
// Exhaustive metadata coverage: every enumerator must have explicit
// toString / numAddrOperands / isCcR / bit-serial classifications — a
// silent default or fallthrough for a newly added opcode fails here.
// ---------------------------------------------------------------------

TEST(CcIsaExhaustive, EveryOpcodeHasDistinctName)
{
    static_assert(kNumCcOpcodes == 15u,
                  "new opcode: extend kAllCcOpcodes and these tests");
    std::set<std::string> names;
    for (CcOpcode op : kAllCcOpcodes) {
        std::string name = toString(op);
        EXPECT_NE(name, "?") << static_cast<int>(op);
        EXPECT_EQ(name.rfind("cc_", 0), 0u) << name;
        names.insert(name);
    }
    EXPECT_EQ(names.size(), kNumCcOpcodes);
}

TEST(CcIsaExhaustive, NumAddrOperandsCoversEveryOpcode)
{
    for (CcOpcode op : kAllCcOpcodes) {
        unsigned n = numAddrOperands(op);
        EXPECT_GE(n, 1u) << toString(op);
        EXPECT_LE(n, 3u) << toString(op);
    }
    // Exact expectations, opcode by opcode.
    EXPECT_EQ(numAddrOperands(CcOpcode::Buz), 1u);
    EXPECT_EQ(numAddrOperands(CcOpcode::Copy), 2u);
    EXPECT_EQ(numAddrOperands(CcOpcode::Not), 2u);
    EXPECT_EQ(numAddrOperands(CcOpcode::Cmp), 2u);
    EXPECT_EQ(numAddrOperands(CcOpcode::Search), 2u);
    for (CcOpcode op : {CcOpcode::And, CcOpcode::Or, CcOpcode::Xor,
                        CcOpcode::Clmul, CcOpcode::Add, CcOpcode::Sub,
                        CcOpcode::Mul, CcOpcode::Lt, CcOpcode::Gt,
                        CcOpcode::Eq})
        EXPECT_EQ(numAddrOperands(op), 3u) << toString(op);
}

TEST(CcIsaExhaustive, CcRAndBitSerialPartitions)
{
    std::size_t ccr = 0, bitserial = 0, compares = 0;
    for (CcOpcode op : kAllCcOpcodes) {
        if (isCcR(op))
            ++ccr;
        if (isBitSerial(op))
            ++bitserial;
        if (isBitSerialCompare(op)) {
            ++compares;
            // Every compare is bit-serial; no op is both CC-R and
            // bit-serial (predicates write a destination slice).
            EXPECT_TRUE(isBitSerial(op)) << toString(op);
        }
        EXPECT_FALSE(isCcR(op) && isBitSerial(op)) << toString(op);
    }
    EXPECT_EQ(ccr, 2u);        // cmp, search
    EXPECT_EQ(bitserial, 6u);  // add, sub, mul, lt, gt, eq
    EXPECT_EQ(compares, 3u);   // lt, gt, eq
}

// ---------------------------------------------------------------------
// Bit-serial encodings: builders, slice addressing, validation.
// ---------------------------------------------------------------------

TEST(CcIsaBitSerial, BuildersEncodeOperandsAndWidth)
{
    Addr a = 0x100000, b = 0x200000, d = 0x300000;
    auto add = CcInstruction::add(a, b, d, 64, 8);
    EXPECT_EQ(add.op, CcOpcode::Add);
    EXPECT_EQ(add.laneBits, 8u);
    EXPECT_EQ(add.operandAddrs(), (std::vector<Addr>{a, b, d}));
    EXPECT_NO_THROW(add.validate());

    auto lt = CcInstruction::cmpLt(a, b, d, 64, 16, /*is_signed=*/true);
    EXPECT_EQ(lt.op, CcOpcode::Lt);
    EXPECT_TRUE(lt.isSigned);
    EXPECT_EQ(lt.sliceCount(d), 1u);   // predicate: one slice
    EXPECT_EQ(lt.sliceCount(a), 16u);  // source: full stack
    EXPECT_NO_THROW(lt.validate());

    auto mul = CcInstruction::mul(a, b, d, 64, 32);
    EXPECT_EQ(mul.sliceCount(d), 32u);
    EXPECT_EQ(CcInstruction::sliceAddr(d, 0), d);
    EXPECT_EQ(CcInstruction::sliceAddr(d, 5), d + 5 * kSliceStride);
}

TEST(CcIsaBitSerial, DisassemblyCarriesWidthAndSign)
{
    EXPECT_EQ(CcInstruction::add(0x1000, 0x2000, 0x3000, 64, 8)
                  .toString(),
              "cc_add8 0x1000 0x2000 0x3000 64");
    EXPECT_EQ(CcInstruction::cmpLt(0x1000, 0x2000, 0x3000, 64, 16, true)
                  .toString(),
              "cc_lt16s 0x1000 0x2000 0x3000 64");
    EXPECT_EQ(CcInstruction::cmpGt(0x1000, 0x2000, 0x3000, 64, 16,
                                   false)
                  .toString(),
              "cc_gt16u 0x1000 0x2000 0x3000 64");
    EXPECT_EQ(CcInstruction::cmpEq(0x1000, 0x2000, 0x3000, 64, 4)
                  .toString(),
              "cc_eq4 0x1000 0x2000 0x3000 64");
}

TEST(CcIsaBitSerial, ValidateRejectsBadEncodings)
{
    Addr a = 0x100000, b = 0x200000, d = 0x300000;
    // Lane width outside 1..32.
    EXPECT_THROW(CcInstruction::add(a, b, d, 64, 0).validate(),
                 FatalError);
    EXPECT_THROW(CcInstruction::add(a, b, d, 64, 33).validate(),
                 FatalError);
    // Slice rows must be whole blocks and fit the slice stride.
    EXPECT_THROW(CcInstruction::add(a, b, d, 60, 8).validate(),
                 FatalError);
    EXPECT_THROW(
        CcInstruction::add(a, b, d, kSliceStride + 64, 8).validate(),
        FatalError);
    // Operand bases must be slice-stride (page) aligned.
    EXPECT_THROW(CcInstruction::add(a + 64, b, d, 64, 8).validate(),
                 FatalError);
    // Mul destination stack must not overlap either source stack.
    EXPECT_THROW(CcInstruction::mul(a, b, a, 64, 8).validate(),
                 FatalError);
    EXPECT_THROW(
        CcInstruction::mul(a, b, b + 4 * kSliceStride, 64, 8).validate(),
        FatalError);
    // Add may alias (accumulate in place).
    EXPECT_NO_THROW(CcInstruction::add(a, b, a, 64, 8).validate());
}

TEST(CcIsaBitSerial, NeverSpansPagesAndNeverSplits)
{
    // The page-stride layout keeps every slice row inside one page, so
    // the page-split exception cannot fire for bit-serial ops.
    for (std::size_t w : {1u, 8u, 32u}) {
        auto instr = CcInstruction::add(0x100000, 0x200000, 0x300000,
                                        kSliceStride, w);
        EXPECT_FALSE(instr.spansPage()) << w;
    }
}

} // namespace
} // namespace ccache::cc
