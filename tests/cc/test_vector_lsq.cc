/**
 * @file
 * Tests for memory disambiguation with vector CC instructions
 * (Section IV-H): split LSQ, range checks, non-coalescing vector store
 * buffer, and cross-buffer same-location stalls.
 */

#include <gtest/gtest.h>

#include "cc/vector_lsq.hh"

namespace ccache::cc {
namespace {

TEST(VectorAccessTest, RangesPerOpcode)
{
    auto copy = VectorAccess::of(CcInstruction::copy(0x1000, 0x2000, 256));
    ASSERT_EQ(copy.reads.size(), 1u);
    ASSERT_EQ(copy.writes.size(), 1u);
    EXPECT_EQ(copy.reads[0].base, 0x1000u);
    EXPECT_EQ(copy.reads[0].len, 256u);
    EXPECT_EQ(copy.comparisons(), 2u);

    auto s = VectorAccess::of(CcInstruction::search(0x1000, 0x5000, 512));
    ASSERT_EQ(s.reads.size(), 2u);
    EXPECT_EQ(s.reads[1].len, kSearchKeyBytes);
    EXPECT_TRUE(s.writes.empty());

    auto x =
        VectorAccess::of(CcInstruction::logicalXor(0x0, 0x1000, 0x2000,
                                                   128));
    EXPECT_EQ(x.comparisons(), 3u);
}

TEST(AddrRangeTest, OverlapSemantics)
{
    AddrRange a{0x1000, 0x100};
    EXPECT_TRUE(a.overlaps({0x10ff, 1}));
    EXPECT_FALSE(a.overlaps({0x1100, 0x100}));
    EXPECT_TRUE(a.overlaps({0x0, 0x1001}));
    EXPECT_TRUE(a.contains(0x1000));
    EXPECT_FALSE(a.contains(0x1100));
}

TEST(VectorLsqTest, ScalarStoreCoalescing)
{
    VectorLsq lsq;
    auto a = lsq.insertScalarStore(0x1000);
    auto b = lsq.insertScalarStore(0x1004);  // same word: coalesces
    ASSERT_TRUE(a);
    ASSERT_TRUE(b);
    EXPECT_EQ(*a, *b);
    EXPECT_EQ(lsq.scalarStoresInFlight(), 1u);

    auto c = lsq.insertScalarStore(0x1008);  // different word
    ASSERT_TRUE(c);
    EXPECT_NE(*a, *c);
    EXPECT_EQ(lsq.scalarStoresInFlight(), 2u);
}

TEST(VectorLsqTest, VectorStoresNeverCoalesce)
{
    VectorLsq lsq;
    auto a = lsq.insertVector(CcInstruction::copy(0x1000, 0x2000, 64));
    auto b = lsq.insertVector(CcInstruction::copy(0x1000, 0x2000, 64));
    ASSERT_TRUE(a);
    ASSERT_TRUE(b);
    EXPECT_NE(*a, *b);
    EXPECT_EQ(lsq.vectorsInFlight(), 2u);
}

TEST(VectorLsqTest, ComparatorBudgetRejectsWideEntries)
{
    VectorLsqParams p;
    p.maxComparisonsPerEntry = 2;
    VectorLsq lsq(p);
    // xor needs 3 range comparators: rejected under a 2-comparator budget.
    EXPECT_FALSE(
        lsq.insertVector(CcInstruction::logicalXor(0x0, 0x1000, 0x2000, 64))
            .has_value());
    EXPECT_TRUE(
        lsq.insertVector(CcInstruction::copy(0x0, 0x1000, 64)).has_value());
}

TEST(VectorLsqTest, ScalarLoadBlockedByOverlappingVectorStore)
{
    VectorLsq lsq;
    lsq.insertVector(CcInstruction::copy(0x1000, 0x2000, 256));
    // No forwarding from vector stores: loads inside the written range
    // must wait.
    EXPECT_FALSE(lsq.scalarLoadMayExecute(0x2080));
    EXPECT_FALSE(lsq.scalarLoadMayExecute(0x20f8));
    // Loads from the read-only source or elsewhere proceed (RMO).
    EXPECT_TRUE(lsq.scalarLoadMayExecute(0x1000));
    EXPECT_TRUE(lsq.scalarLoadMayExecute(0x2100));
}

TEST(VectorLsqTest, CrossBufferStallScalarBehindVector)
{
    VectorLsq lsq;
    auto v = lsq.insertVector(CcInstruction::buz(0x3000, 128));
    ASSERT_TRUE(v);
    auto s = lsq.insertScalarStore(0x3040);  // same location
    ASSERT_TRUE(s);
    EXPECT_TRUE(lsq.isStalled(*s));
    EXPECT_EQ(lsq.crossBufferStalls(), 1u);

    // The stall bit resets when the predecessor completes.
    lsq.retireVector(*v);
    EXPECT_FALSE(lsq.isStalled(*s));
}

TEST(VectorLsqTest, CrossBufferStallVectorBehindScalar)
{
    VectorLsq lsq;
    auto s = lsq.insertScalarStore(0x4040);
    ASSERT_TRUE(s);
    auto v = lsq.insertVector(CcInstruction::buz(0x4000, 128));
    ASSERT_TRUE(v);
    EXPECT_TRUE(lsq.isStalled(*v));
    EXPECT_FALSE(lsq.vectorMayExecute(*v));
    lsq.retireScalarStore(*s);
    EXPECT_TRUE(lsq.vectorMayExecute(*v));
}

TEST(VectorLsqTest, CcRMayBypassDisjointStores)
{
    VectorLsq lsq;
    lsq.insertScalarStore(0x9000);
    auto cmp = lsq.insertVector(CcInstruction::cmp(0x1000, 0x2000, 256));
    ASSERT_TRUE(cmp);
    // RMO: CC-R executes out of order past disjoint stores.
    EXPECT_TRUE(lsq.vectorMayExecute(*cmp));
}

TEST(VectorLsqTest, CcRWaitsForOverlappingOlderStore)
{
    VectorLsq lsq;
    lsq.insertScalarStore(0x1040);
    auto cmp = lsq.insertVector(CcInstruction::cmp(0x1000, 0x2000, 256));
    ASSERT_TRUE(cmp);
    EXPECT_FALSE(lsq.vectorMayExecute(*cmp));
}

TEST(VectorLsqTest, VectorOrderingAgainstOlderVectorStore)
{
    VectorLsq lsq;
    auto older = lsq.insertVector(CcInstruction::copy(0x1000, 0x2000, 256));
    auto younger =
        lsq.insertVector(CcInstruction::cmp(0x2000, 0x5000, 256));
    ASSERT_TRUE(older);
    ASSERT_TRUE(younger);
    // The younger cmp reads what the older copy writes.
    EXPECT_FALSE(lsq.vectorMayExecute(*younger));
    lsq.retireVector(*older);
    EXPECT_TRUE(lsq.vectorMayExecute(*younger));
}

TEST(VectorLsqTest, FenceDrainsEverything)
{
    VectorLsq lsq;
    auto s = lsq.insertScalarStore(0x100);
    auto v = lsq.insertVector(CcInstruction::buz(0x5000, 64));
    EXPECT_FALSE(lsq.fenceMayCommit());
    lsq.retireScalarStore(*s);
    EXPECT_FALSE(lsq.fenceMayCommit());
    lsq.retireVector(*v);
    EXPECT_TRUE(lsq.fenceMayCommit());
}

TEST(VectorLsqTest, CapacityLimits)
{
    VectorLsqParams p;
    p.vectorEntries = 2;
    p.scalarStoreEntries = 2;
    VectorLsq lsq(p);
    EXPECT_TRUE(lsq.insertVector(CcInstruction::buz(0x0, 64)));
    EXPECT_TRUE(lsq.insertVector(CcInstruction::buz(0x1000, 64)));
    EXPECT_FALSE(lsq.insertVector(CcInstruction::buz(0x2000, 64)));
    EXPECT_TRUE(lsq.insertScalarStore(0x100));
    EXPECT_TRUE(lsq.insertScalarStore(0x200));
    EXPECT_FALSE(lsq.insertScalarStore(0x300));
}

} // namespace
} // namespace ccache::cc
