/**
 * @file
 * Tests for the SECDED ECC, the xor-linearity identity used by in-place
 * logical operations, and the scrubbing cost model (Section IV-I).
 */

#include <gtest/gtest.h>

#include "cc/ecc.hh"
#include "common/rng.hh"

namespace ccache::cc {
namespace {

TEST(Secded, CleanWordDecodesOk)
{
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        std::uint64_t data = rng.next();
        std::uint8_t check = Secded::encode(data);
        std::uint64_t copy = data;
        EXPECT_EQ(Secded::decode(copy, check), EccStatus::Ok);
        EXPECT_EQ(copy, data);
    }
}

TEST(Secded, CorrectsEverySingleDataBitFlip)
{
    Rng rng(2);
    for (int trial = 0; trial < 8; ++trial) {
        std::uint64_t data = rng.next();
        std::uint8_t check = Secded::encode(data);
        for (unsigned bit = 0; bit < 64; ++bit) {
            std::uint64_t corrupted = data ^ (std::uint64_t{1} << bit);
            EXPECT_EQ(Secded::decode(corrupted, check),
                      EccStatus::CorrectedSingleBit)
                << "bit " << bit;
            EXPECT_EQ(corrupted, data) << "bit " << bit;
        }
    }
}

TEST(Secded, CorrectsSingleCheckBitFlip)
{
    std::uint64_t data = 0x123456789abcdef0ULL;
    std::uint8_t check = Secded::encode(data);
    for (unsigned bit = 0; bit < 8; ++bit) {
        std::uint64_t copy = data;
        EXPECT_EQ(Secded::decode(copy, check ^ (1u << bit)),
                  EccStatus::CorrectedSingleBit)
            << "check bit " << bit;
        EXPECT_EQ(copy, data);
    }
}

TEST(Secded, DetectsDoubleBitFlips)
{
    Rng rng(3);
    for (int trial = 0; trial < 500; ++trial) {
        std::uint64_t data = rng.next();
        std::uint8_t check = Secded::encode(data);
        unsigned b1 = static_cast<unsigned>(rng.below(64));
        unsigned b2 = static_cast<unsigned>(rng.below(64));
        if (b1 == b2)
            continue;
        std::uint64_t corrupted =
            data ^ (std::uint64_t{1} << b1) ^ (std::uint64_t{1} << b2);
        EXPECT_EQ(Secded::decode(corrupted, check),
                  EccStatus::DetectedDoubleBit)
            << b1 << "," << b2;
    }
}

TEST(Secded, CorrectsAllSeventyTwoSingleBitFlips)
{
    // Exhaustive over the whole codeword: any one of the 64 data bits or
    // the 8 stored check bits flipped must come back corrected, with the
    // data intact.
    Rng rng(8);
    for (int trial = 0; trial < 16; ++trial) {
        std::uint64_t data = rng.next();
        std::uint8_t check = Secded::encode(data);
        for (unsigned bit = 0; bit < 72; ++bit) {
            std::uint64_t d = data;
            std::uint8_t c = check;
            if (bit < 64)
                d ^= std::uint64_t{1} << bit;
            else
                c ^= static_cast<std::uint8_t>(1u << (bit - 64));
            EXPECT_EQ(Secded::decode(d, c), EccStatus::CorrectedSingleBit)
                << "codeword bit " << bit;
            EXPECT_EQ(d, data) << "codeword bit " << bit;
        }
    }
}

TEST(Secded, DetectsDoubleBitFlipsAcrossFullCodeword)
{
    // Sampled double-bit errors over all 72 positions, including pairs
    // that span the data/check boundary and pairs inside the check byte.
    Rng rng(9);
    int tested = 0;
    while (tested < 2000) {
        std::uint64_t data = rng.next();
        std::uint8_t check = Secded::encode(data);
        unsigned b1 = static_cast<unsigned>(rng.below(72));
        unsigned b2 = static_cast<unsigned>(rng.below(72));
        if (b1 == b2)
            continue;
        std::uint64_t d = data;
        std::uint8_t c = check;
        for (unsigned bit : {b1, b2}) {
            if (bit < 64)
                d ^= std::uint64_t{1} << bit;
            else
                c ^= static_cast<std::uint8_t>(1u << (bit - 64));
        }
        EXPECT_EQ(Secded::decode(d, c), EccStatus::DetectedDoubleBit)
            << b1 << "," << b2;
        ++tested;
    }
}

TEST(Secded, XorIdentityHoldsForAllInputs)
{
    // ECC(A xor B) == ECC(A) xor ECC(B): the linearity the Section IV-I
    // ECC logic unit relies on to check in-place logical operations.
    Rng rng(4);
    for (int i = 0; i < 2000; ++i)
        EXPECT_TRUE(Secded::xorIdentityHolds(rng.next(), rng.next()));
}

TEST(BlockEccTest, EncodeCheckRoundTrip)
{
    Rng rng(5);
    Block b;
    for (auto &byte : b)
        byte = static_cast<std::uint8_t>(rng.below(256));
    BlockEcc ecc = encodeBlock(b);
    Block copy = b;
    EXPECT_EQ(checkBlock(copy, ecc), EccStatus::Ok);

    // Flip one bit in word 3: corrected.
    copy[25] ^= 0x10;
    EXPECT_EQ(checkBlock(copy, ecc), EccStatus::CorrectedSingleBit);
    EXPECT_EQ(copy, b);

    // Two flips within one word: detected, uncorrectable.
    copy[25] ^= 0x11;
    EXPECT_EQ(checkBlock(copy, ecc), EccStatus::DetectedDoubleBit);
}

TEST(BlockEccTest, CopyCarriesEccAndBuzInstallsZeroEcc)
{
    // Section IV-I: cc_copy copies the ECC verbatim; cc_buz installs the
    // ECC of the zero block.
    Rng rng(6);
    Block src;
    for (auto &byte : src)
        byte = static_cast<std::uint8_t>(rng.below(256));
    BlockEcc src_ecc = encodeBlock(src);

    Block dst = src;            // cc_copy moves data...
    BlockEcc dst_ecc = src_ecc; // ...and its ECC, no recompute needed
    EXPECT_EQ(checkBlock(dst, dst_ecc), EccStatus::Ok);

    Block zero = zeroBlock();
    EXPECT_EQ(checkBlock(zero, encodeBlock(zeroBlock())), EccStatus::Ok);
}

TEST(BlockEccTest, CmpEccMismatchDetectsInconsistency)
{
    Rng rng(7);
    Block a;
    for (auto &byte : a)
        byte = static_cast<std::uint8_t>(rng.below(256));
    Block b = a;
    BlockEcc ea = encodeBlock(a);
    BlockEcc eb = encodeBlock(b);

    // Consistent equal operands: no error.
    EXPECT_FALSE(cmpEccMismatch(a, ea, b, eb));

    // Data equal but ECC differs: error detected.
    BlockEcc eb_bad = eb;
    eb_bad[0] ^= 1;
    EXPECT_TRUE(cmpEccMismatch(a, ea, b, eb_bad));

    // Data differs and ECC differs consistently: not an error (a real
    // mismatch of values).
    Block c = a;
    c[0] ^= 0xff;
    EXPECT_FALSE(cmpEccMismatch(a, ea, c, encodeBlock(c)));

    // Data differs but ECC matches: error detected.
    EXPECT_TRUE(cmpEccMismatch(a, ea, c, ea));
}

TEST(BlockEccTest, RecomputeAfterInPlaceOpRoundTrips)
{
    // Section IV-I: an in-place op bypasses the ECC datapath, so the
    // result's code is recomputed afterwards. For xor the linear
    // identity lets the check unit derive it from the operand codes;
    // for and/or it must encode the result. Either way, a fresh check
    // against the recomputed code must round-trip and still correct a
    // later single-bit upset.
    Rng rng(10);
    for (int trial = 0; trial < 50; ++trial) {
        Block a;
        Block b;
        for (auto &byte : a)
            byte = static_cast<std::uint8_t>(rng.below(256));
        for (auto &byte : b)
            byte = static_cast<std::uint8_t>(rng.below(256));
        BlockEcc ea = encodeBlock(a);
        BlockEcc eb = encodeBlock(b);

        Block x;
        Block n;
        Block o;
        for (std::size_t i = 0; i < kBlockSize; ++i) {
            x[i] = a[i] ^ b[i];
            n[i] = a[i] & b[i];
            o[i] = a[i] | b[i];
        }

        // Xor result: code obtainable from the operand codes alone.
        BlockEcc ex = encodeBlock(x);
        for (std::size_t w = 0; w < kWordsPerBlock; ++w)
            EXPECT_EQ(ex[w], static_cast<std::uint8_t>(ea[w] ^ eb[w]));

        for (const Block &result : {x, n, o}) {
            BlockEcc ecc = encodeBlock(result);
            Block copy = result;
            EXPECT_EQ(checkBlock(copy, ecc), EccStatus::Ok);
            unsigned bit = static_cast<unsigned>(rng.below(512));
            copy[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
            EXPECT_EQ(checkBlock(copy, ecc),
                      EccStatus::CorrectedSingleBit);
            EXPECT_EQ(copy, result);
        }
    }
}

TEST(ScrubbingModelTest, OverheadIsLow)
{
    // Section IV-I argues scrubbing is attractive because soft errors are
    // rare (0.7-7/year): the cycle overhead must be far below 1%.
    ScrubbingModel m;
    EXPECT_LT(m.cycleOverhead(), 0.01);
    EXPECT_GT(m.cycleOverhead(), 0.0);
    // Errors striking within one scrub interval are vanishingly rare.
    EXPECT_LT(m.expectedErrorsPerInterval(), 1e-7);
}

TEST(ScrubbingModelTest, OverheadScalesWithInterval)
{
    ScrubbingModel fast;
    fast.intervalMs = 10.0;
    ScrubbingModel slow;
    slow.intervalMs = 1000.0;
    EXPECT_GT(fast.cycleOverhead(), slow.cycleOverhead());
    EXPECT_GT(slow.expectedErrorsPerInterval(),
              fast.expectedErrorsPerInterval());
}

} // namespace
} // namespace ccache::cc
