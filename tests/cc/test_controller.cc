/**
 * @file
 * Integration tests for the CC controller: functional correctness of
 * every Table II instruction through the real hierarchy, level selection,
 * operand locality / near-place fallback, key replication, scheduling
 * parallelism, page-split exceptions and RISC fallback.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cc/cc_controller.hh"
#include "cc/near_place_unit.hh"
#include "common/rng.hh"

namespace ccache::cc {
namespace {

class ControllerTest : public ::testing::Test
{
  protected:
    ControllerTest()
        : hier(cache::HierarchyParams{}, &em, &stats),
          ctrl(hier, &em, &stats, makeParams())
    {
    }

    static CcControllerParams
    makeParams()
    {
        CcControllerParams p;
        p.verifyCircuit = true;  // cross-check against the circuit model
        return p;
    }

    /** Load @p len random bytes at @p addr into memory. */
    std::vector<std::uint8_t>
    loadRandom(Addr addr, std::size_t len)
    {
        std::vector<std::uint8_t> data(len);
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.below(256));
        hier.memory().writeBytes(addr, data.data(), len);
        return data;
    }

    std::vector<std::uint8_t>
    dumpBytes(Addr addr, std::size_t len)
    {
        std::vector<std::uint8_t> out(len);
        for (std::size_t off = 0; off < len; off += kBlockSize) {
            Block b = hier.debugRead(addr + off);
            std::size_t n = std::min(kBlockSize, len - off);
            std::copy_n(b.begin(), n, out.begin() + off);
        }
        return out;
    }

    energy::EnergyModel em;
    StatRegistry stats;
    cache::Hierarchy hier;
    CcController ctrl;
    Rng rng{123};
};

TEST_F(ControllerTest, CopyMovesData)
{
    auto src = loadRandom(0x10000, 4096);
    auto res = ctrl.execute(0, CcInstruction::copy(0x10000, 0x20000, 4096));
    EXPECT_EQ(res.blockOps, 64u);
    EXPECT_EQ(res.inPlaceOps, 64u);
    EXPECT_EQ(res.nearPlaceOps, 0u);
    EXPECT_FALSE(res.riscFallback);
    EXPECT_EQ(dumpBytes(0x20000, 4096), src);
}

TEST_F(ControllerTest, BuzZeroes)
{
    loadRandom(0x30000, 1024);
    ctrl.execute(0, CcInstruction::buz(0x30000, 1024));
    EXPECT_EQ(dumpBytes(0x30000, 1024),
              std::vector<std::uint8_t>(1024, 0));
}

TEST_F(ControllerTest, LogicalOpsMatchReference)
{
    auto a = loadRandom(0x40000, 2048);
    auto b = loadRandom(0x50000, 2048);

    ctrl.execute(0, CcInstruction::logicalAnd(0x40000, 0x50000, 0x60000,
                                              2048));
    ctrl.execute(0, CcInstruction::logicalOr(0x40000, 0x50000, 0x68000,
                                             2048));
    ctrl.execute(0, CcInstruction::logicalXor(0x40000, 0x50000, 0x70000,
                                              2048));
    ctrl.execute(0, CcInstruction::logicalNot(0x40000, 0x78000, 2048));

    auto andv = dumpBytes(0x60000, 2048);
    auto orv = dumpBytes(0x68000, 2048);
    auto xorv = dumpBytes(0x70000, 2048);
    auto notv = dumpBytes(0x78000, 2048);
    for (std::size_t i = 0; i < 2048; ++i) {
        EXPECT_EQ(andv[i], a[i] & b[i]);
        EXPECT_EQ(orv[i], a[i] | b[i]);
        EXPECT_EQ(xorv[i], a[i] ^ b[i]);
        EXPECT_EQ(notv[i], static_cast<std::uint8_t>(~a[i]));
    }
    EXPECT_GT(stats.value("cc.circuit_verifications"), 0u);
}

TEST_F(ControllerTest, SourcesSurviveLogicalOps)
{
    auto a = loadRandom(0x40000, 512);
    auto b = loadRandom(0x50000, 512);
    ctrl.execute(0, CcInstruction::logicalAnd(0x40000, 0x50000, 0x60000,
                                              512));
    EXPECT_EQ(dumpBytes(0x40000, 512), a);
    EXPECT_EQ(dumpBytes(0x50000, 512), b);
}

TEST_F(ControllerTest, CmpProducesWordMask)
{
    auto a = loadRandom(0x80000, 512);
    auto b = a;
    // Perturb words 3 and 40.
    b[3 * 8] ^= 1;
    b[40 * 8 + 7] ^= 0x80;
    hier.memory().writeBytes(0x90000, b.data(), b.size());

    auto res = ctrl.execute(0, CcInstruction::cmp(0x80000, 0x90000, 512));
    std::uint64_t expect = ~((std::uint64_t{1} << 3) |
                             (std::uint64_t{1} << 40));
    EXPECT_EQ(res.result, expect);
}

TEST_F(ControllerTest, SearchFindsKeyAndReplicatesOncePerPartition)
{
    // Data: 8 blocks; key equals block 5.
    auto data = loadRandom(0xa0000, 512);
    std::vector<std::uint8_t> key(data.begin() + 5 * 64,
                                  data.begin() + 6 * 64);
    hier.memory().writeBytes(0xb0000, key.data(), key.size());

    auto res = ctrl.execute(0, CcInstruction::search(0xa0000, 0xb0000,
                                                     512));
    // Word-granular mask: block 5's eight words all match the key.
    std::uint64_t block5 = res.result >> (5 * 8) & 0xff;
    EXPECT_EQ(block5, 0xffu);
    EXPECT_GT(res.keyReplications, 0u);
    EXPECT_LE(res.keyReplications, 8u);

    // A second search with the same key in the same instruction would
    // reuse replicas; across instructions the table is cleared.
    EXPECT_EQ(ctrl.keyTable().trackedInstructions(), 0u);
}

TEST_F(ControllerTest, ClmulComputesCarrylessParities)
{
    auto a = loadRandom(0xc0000, 256);
    auto b = loadRandom(0xd0000, 256);
    ctrl.execute(0,
                 CcInstruction::clmul(0xc0000, 0xd0000, 0xe0000, 256, 64));
    auto out = dumpBytes(0xe0000, 256);
    for (std::size_t blk = 0; blk < 4; ++blk) {
        std::uint64_t packed = 0;
        std::memcpy(&packed, out.data() + blk * 64, 8);
        for (std::size_t w = 0; w < 8; ++w) {
            std::uint64_t wa = 0, wb = 0;
            std::memcpy(&wa, a.data() + blk * 64 + w * 8, 8);
            std::memcpy(&wb, b.data() + blk * 64 + w * 8, 8);
            bool parity = std::popcount(wa & wb) & 1;
            EXPECT_EQ((packed >> w) & 1, static_cast<std::uint64_t>(parity))
                << "block " << blk << " word " << w;
        }
    }
}

TEST_F(ControllerTest, LevelSelectionPrefersHighestResident)
{
    loadRandom(0xf0000, 512);
    loadRandom(0xf8000, 512);
    // Warm both operands into L1 (page-aligned offsets guarantee operand
    // locality at L1 too).
    for (Addr off = 0; off < 512; off += 64) {
        hier.read(0, 0xf0000 + off);
        hier.read(0, 0xf8000 + off);
    }
    auto res = ctrl.execute(0, CcInstruction::cmp(0xf0000, 0xf8000, 512));
    EXPECT_EQ(res.level, CacheLevel::L1);

    // Cold operands -> L3 (Section IV-E policy).
    auto res2 =
        ctrl.execute(0, CcInstruction::cmp(0x110000, 0x118000, 512));
    EXPECT_EQ(res2.level, CacheLevel::L3);
}

TEST_F(ControllerTest, ForceLevelOverrides)
{
    ctrl.mutableParams().forceLevel = CacheLevel::L2;
    loadRandom(0x120000, 1024);
    auto res =
        ctrl.execute(0, CcInstruction::copy(0x120000, 0x128000, 1024));
    EXPECT_EQ(res.level, CacheLevel::L2);
    EXPECT_TRUE(hier.l2(0).contains(0x120000));
    EXPECT_FALSE(hier.l1(0).contains(0x120000));
}

TEST_F(ControllerTest, PageMisalignedOperandsGoNearPlace)
{
    // Source and destination at different page offsets: no operand
    // locality; the controller must use the near-place unit and still be
    // functionally correct.
    auto src = loadRandom(0x130000, 1024);
    auto res =
        ctrl.execute(0, CcInstruction::copy(0x130000, 0x140800, 1024));
    EXPECT_EQ(res.nearPlaceOps, 16u);
    EXPECT_EQ(res.inPlaceOps, 0u);
    EXPECT_EQ(dumpBytes(0x140800, 1024), src);
}

TEST_F(ControllerTest, ForceNearPlace)
{
    ctrl.mutableParams().forceNearPlace = true;
    loadRandom(0x150000, 512);
    auto res =
        ctrl.execute(0, CcInstruction::copy(0x150000, 0x158000, 512));
    EXPECT_EQ(res.nearPlaceOps, 8u);
    EXPECT_EQ(res.inPlaceOps, 0u);
}

TEST_F(ControllerTest, InPlaceBeatsNearPlaceLatency)
{
    loadRandom(0x160000, 4096);
    loadRandom(0x170000, 4096);
    auto in_place =
        ctrl.execute(0, CcInstruction::copy(0x160000, 0x168000, 4096));

    CcControllerParams np = makeParams();
    np.forceNearPlace = true;
    CcController near_ctrl(hier, &em, &stats, np);
    auto near_place =
        near_ctrl.execute(0, CcInstruction::copy(0x170000, 0x178000,
                                                 4096));
    // Section IV-J: in-place parallelism dwarfs the single logic unit.
    EXPECT_LT(in_place.computeLatency, near_place.computeLatency);
    EXPECT_GE(static_cast<double>(near_place.computeLatency) /
                  static_cast<double>(in_place.computeLatency),
              4.0);
}

TEST_F(ControllerTest, ParallelismScalesWithPartitions)
{
    // 64 blocks spread over all 64 L3 partitions: completion must be far
    // below 64 serial op latencies.
    loadRandom(0x180000, 4096);
    auto res =
        ctrl.execute(0, CcInstruction::copy(0x180000, 0x188000, 4096));
    Cycles serial = 64 * ctrl.params().inPlaceOpLatency;
    EXPECT_LT(res.computeLatency, serial / 4);
    EXPECT_GT(res.fetchLatency, 0u);  // operands were cold
}

TEST_F(ControllerTest, PowerCapThrottlesParallelism)
{
    loadRandom(0x190000, 4096);
    auto wide =
        ctrl.execute(0, CcInstruction::copy(0x190000, 0x198000, 4096));

    CcControllerParams capped = makeParams();
    capped.maxActiveSubarrays = 4;
    CcController capped_ctrl(hier, &em, &stats, capped);
    auto narrow = capped_ctrl.execute(
        0, CcInstruction::copy(0x190000, 0x198000, 4096));
    EXPECT_GT(narrow.computeLatency, wide.computeLatency);
}

TEST_F(ControllerTest, PageSpanningRaisesSplitException)
{
    auto src = loadRandom(0x1a0800, 4096);
    auto res =
        ctrl.execute(0, CcInstruction::copy(0x1a0800, 0x1b0800, 4096));
    EXPECT_EQ(res.pageSplits, 2u);
    EXPECT_EQ(stats.value("cc.page_split_exceptions"), 1u);
    EXPECT_EQ(dumpBytes(0x1b0800, 4096), src);
}

TEST_F(ControllerTest, CmpAcrossPageSplitConcatenatesResult)
{
    auto a = loadRandom(0x1c0fc0, 512);  // spans a page boundary
    hier.memory().writeBytes(0x1d0fc0, a.data(), a.size());
    auto res = ctrl.execute(0, CcInstruction::cmp(0x1c0fc0, 0x1d0fc0, 512));
    EXPECT_EQ(res.result, ~std::uint64_t{0});
    EXPECT_EQ(res.pageSplits, 2u);
}

TEST_F(ControllerTest, DirtyPrivateDataReachesL3BeforeCompute)
{
    // Figure 6: operand B dirty in a private cache; the CC op at L3 must
    // see the fresh value.
    Block fresh;
    for (std::size_t i = 0; i < kBlockSize; ++i)
        fresh[i] = static_cast<std::uint8_t>(i ^ 0x5a);
    hier.write(0, 0x1e0000, &fresh);
    ASSERT_EQ(hier.l1(0).state(0x1e0000), cache::Mesi::Modified);

    ctrl.mutableParams().forceLevel = CacheLevel::L3;
    ctrl.execute(0, CcInstruction::copy(0x1e0000, 0x1f0000, 64));
    EXPECT_EQ(hier.debugRead(0x1f0000), fresh);
}

TEST_F(ControllerTest, CcWriteInvalidatesStaleCopiesEverywhere)
{
    // Core 1 caches the destination; a CC write at L3 must invalidate it.
    loadRandom(0x200000, 64);
    loadRandom(0x208000, 64);
    hier.read(1, 0x208000);
    ASSERT_TRUE(hier.l1(1).contains(0x208000));

    ctrl.mutableParams().forceLevel = CacheLevel::L3;
    ctrl.execute(0, CcInstruction::copy(0x200000, 0x208000, 64));
    EXPECT_FALSE(hier.l1(1).contains(0x208000));
    EXPECT_FALSE(hier.l2(1).contains(0x208000));
    // Core 1 re-reads and sees the copied data.
    Block out;
    hier.read(1, 0x208000, &out);
    EXPECT_EQ(out, hier.debugRead(0x200000));
}

TEST_F(ControllerTest, RiscFallbackWhenOperandsCannotBePinned)
{
    // Pin every way of the destination's L1 set with other lines, then
    // force an L1-level op: staging cannot pin, so after two retries the
    // controller falls back to RISC execution (Section IV-E).
    ctrl.mutableParams().forceLevel = CacheLevel::L1;
    Addr dest = 0x210000;
    for (unsigned i = 1; i <= 8; ++i) {
        Addr filler = dest + i * 4096;  // same L1 set
        hier.read(0, filler);
        ASSERT_TRUE(hier.l1(0).pin(filler));
    }
    auto src = loadRandom(0x219040, 64);  // different set for the source

    auto res = ctrl.execute(0, CcInstruction::copy(0x219040, dest, 64));
    EXPECT_TRUE(res.riscFallback);
    EXPECT_GT(stats.value("cc.risc_fallbacks"), 0u);
    // Functionally still correct.
    EXPECT_EQ(dumpBytes(dest, 64), src);
}

TEST_F(ControllerTest, StatsAccounting)
{
    loadRandom(0x220000, 1024);
    ctrl.execute(0, CcInstruction::copy(0x220000, 0x228000, 1024));
    EXPECT_EQ(stats.value("cc.instructions"), 1u);
    EXPECT_EQ(stats.value("cc.block_ops"), 16u);
    EXPECT_EQ(stats.value("cc.in_place_ops"), 16u);
    EXPECT_EQ(stats.value("cc.level_L3"), 1u);
}

TEST_F(ControllerTest, OperandsUnpinnedAfterCompletion)
{
    loadRandom(0x230000, 512);
    ctrl.execute(0, CcInstruction::copy(0x230000, 0x238000, 512));
    for (Addr off = 0; off < 512; off += 64) {
        unsigned slice = hier.sliceFor(0, 0x230000 + off);
        EXPECT_FALSE(hier.l3Slice(slice).isPinned(0x230000 + off));
        EXPECT_FALSE(hier.l3Slice(slice).isPinned(0x238000 + off));
    }
}

// Randomized functional soak across all opcodes and levels.
TEST_F(ControllerTest, RandomizedFunctionalSoak)
{
    for (int iter = 0; iter < 60; ++iter) {
        std::size_t blocks = 1 + rng.below(16);
        std::size_t size = blocks * kBlockSize;
        Addr base = 0x400000 + iter * 0x40000;
        Addr a = base, b = base + 0x10000, d = base + 0x20000;
        auto va = loadRandom(a, size);
        auto vb = loadRandom(b, size);

        switch (rng.below(5)) {
          case 0: {
            ctrl.execute(0, CcInstruction::logicalAnd(a, b, d, size));
            auto out = dumpBytes(d, size);
            for (std::size_t i = 0; i < size; ++i)
                ASSERT_EQ(out[i], va[i] & vb[i]);
            break;
          }
          case 1: {
            ctrl.execute(0, CcInstruction::logicalXor(a, b, d, size));
            auto out = dumpBytes(d, size);
            for (std::size_t i = 0; i < size; ++i)
                ASSERT_EQ(out[i], va[i] ^ vb[i]);
            break;
          }
          case 2: {
            ctrl.execute(0, CcInstruction::copy(a, d, size));
            ASSERT_EQ(dumpBytes(d, size), va);
            break;
          }
          case 3: {
            ctrl.execute(0, CcInstruction::buz(a, size));
            ASSERT_EQ(dumpBytes(a, size),
                      std::vector<std::uint8_t>(size, 0));
            break;
          }
          case 4: {
            std::size_t csize = std::min<std::size_t>(size, 512);
            auto res = ctrl.execute(0, CcInstruction::cmp(a, b, csize));
            for (std::size_t w = 0; w < csize / 8; ++w) {
                bool eq = std::equal(va.begin() + w * 8,
                                     va.begin() + (w + 1) * 8,
                                     vb.begin() + w * 8);
                ASSERT_EQ((res.result >> w) & 1,
                          static_cast<std::uint64_t>(eq));
            }
            break;
          }
        }
    }
}

} // namespace
} // namespace ccache::cc
