/**
 * @file
 * Property tests for the transposed (bit-slice) layout: the pure
 * transpose/untranspose codecs must round-trip byte-identically for
 * every (lanes x width) combination including ragged tails that only
 * part-fill the last slice block, and the TransposeManager path through
 * the simulated hierarchy must compose with the bit-serial ops —
 * transpose, compute, untranspose lands the value-correct packed
 * result. Broadcast must equal the transpose of an explicitly
 * replicated vector.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "cache/hierarchy.hh"
#include "cc/bitserial.hh"
#include "cc/cc_controller.hh"
#include "cc/transpose.hh"
#include "common/bit_util.hh"
#include "common/rng.hh"

namespace ccache::cc {
namespace {

using Bytes = std::vector<std::uint8_t>;

Bytes
randomPacked(Rng &rng, std::size_t lanes, std::size_t width)
{
    Bytes packed(divCeil(lanes * width, 8));
    for (auto &b : packed)
        b = static_cast<std::uint8_t>(rng.below(256));
    // Mask the padding bits of the final byte so the round-trip can be
    // compared byte-identically.
    std::size_t used = lanes * width % 8;
    if (used)
        packed.back() &= static_cast<std::uint8_t>((1u << used) - 1);
    return packed;
}

TEST(TransposeCodec, RoundTripsByteIdenticallyAcrossGeometries)
{
    Rng rng(0x7777);
    // Lane counts cover whole blocks (512, 1024), sub-block ragged
    // tails (1, 7, 100, 511) and block+tail (513, 777).
    for (std::size_t lanes : {1u, 7u, 100u, 511u, 512u, 513u, 777u,
                              1024u}) {
        for (std::size_t width : {1u, 2u, 8u, 13u, 32u}) {
            Bytes packed = randomPacked(rng, lanes, width);
            Bytes slices(sliceBytes(lanes) * width, 0xab);
            transposeBits(packed.data(), slices.data(), lanes, width);
            Bytes back(packed.size(), 0xcd);
            untransposeBits(slices.data(), back.data(), lanes, width);
            EXPECT_EQ(back, packed)
                << "lanes " << lanes << " width " << width;

            // Pad lanes of the ragged tail must be zero: they share the
            // slice rows with real lanes and feed the same bit-line ops.
            for (std::size_t k = 0; k < width; ++k)
                for (std::size_t l = lanes; l < sliceBytes(lanes) * 8;
                     ++l) {
                    bool bit = (slices[k * sliceBytes(lanes) + l / 8] >>
                                (l % 8)) &
                        1;
                    ASSERT_FALSE(bit) << "pad lane " << l << " slice "
                                      << k << " is set";
                }
        }
    }
}

TEST(TransposeCodec, SliceBitsMatchLaneValueBits)
{
    // Direct definition check on a tiny case: lane l's value bit k is
    // slice k's bit l.
    const std::size_t lanes = 4, width = 3;
    Bytes packed(divCeil(lanes * width, 8), 0);
    std::uint64_t vals[lanes] = {0b101, 0b010, 0b111, 0b000};
    for (std::size_t l = 0; l < lanes; ++l)
        for (std::size_t k = 0; k < width; ++k)
            if ((vals[l] >> k) & 1) {
                std::size_t bit = l * width + k;
                packed[bit / 8] |=
                    static_cast<std::uint8_t>(1u << (bit % 8));
            }
    Bytes slices(sliceBytes(lanes) * width, 0);
    transposeBits(packed.data(), slices.data(), lanes, width);
    for (std::size_t k = 0; k < width; ++k)
        for (std::size_t l = 0; l < lanes; ++l) {
            bool bit =
                (slices[k * sliceBytes(lanes) + l / 8] >> (l % 8)) & 1;
            EXPECT_EQ(bit, ((vals[l] >> k) & 1) != 0)
                << "slice " << k << " lane " << l;
        }
}

class TransposeHierarchy : public ::testing::Test
{
  protected:
    TransposeHierarchy()
        : hier(cache::HierarchyParams{}, &em, &stats),
          ctrl(hier, &em, &stats, CcControllerParams{}),
          trans(hier, &em, &stats)
    {
    }

    Bytes
    dump(Addr addr, std::size_t len)
    {
        Bytes out(len);
        for (std::size_t off = 0; off < len; off += kBlockSize) {
            Block b = hier.debugRead(addr + off);
            std::size_t n = std::min(kBlockSize, len - off);
            std::copy_n(b.begin(), n, out.begin() + off);
        }
        return out;
    }

    energy::EnergyModel em;
    StatRegistry stats;
    cache::Hierarchy hier;
    CcController ctrl;
    TransposeManager trans;
};

TEST_F(TransposeHierarchy, TransposeUntransposeRoundTripsThroughCaches)
{
    Rng rng(0x5151);
    const std::size_t lanes = 512, width = 32;
    Bytes packed = randomPacked(rng, lanes, width);
    hier.memory().writeBytes(0x1000000, packed.data(), packed.size());

    Cycles t = trans.transpose(0, 0x1000000, 0x2000000, lanes, width);
    Cycles u = trans.untranspose(0, 0x2000000, 0x3000000, lanes, width);
    EXPECT_GT(t, 0u);
    EXPECT_GT(u, 0u);
    EXPECT_EQ(dump(0x3000000, packed.size()), packed);
    EXPECT_EQ(trans.transposes(), 1u);
    EXPECT_EQ(trans.untransposes(), 1u);
    EXPECT_EQ(stats.value("cc.transposes"), 1u);
}

TEST_F(TransposeHierarchy, TransposeComputeUntransposeIsValueCorrect)
{
    // The end-to-end contract the GEMM app relies on: packed int32
    // vectors in, one cc_add over the transposed forms, packed int32
    // sum out.
    Rng rng(0x600d);
    const std::size_t lanes = 512, width = 32;
    std::vector<std::uint32_t> va(lanes), vb(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
        va[l] = static_cast<std::uint32_t>(rng.next());
        vb[l] = static_cast<std::uint32_t>(rng.next());
    }
    hier.memory().writeBytes(
        0x1000000, reinterpret_cast<const std::uint8_t *>(va.data()),
        4 * lanes);
    hier.memory().writeBytes(
        0x1100000, reinterpret_cast<const std::uint8_t *>(vb.data()),
        4 * lanes);

    trans.transpose(0, 0x1000000, 0x4000000, lanes, width);
    trans.transpose(0, 0x1100000, 0x4100000, lanes, width);
    ctrl.execute(0, CcInstruction::add(0x4000000, 0x4100000, 0x4200000,
                                       sliceBytes(lanes), width));
    trans.untranspose(0, 0x4200000, 0x1200000, lanes, width);

    Bytes out = dump(0x1200000, 4 * lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
        std::uint32_t got;
        std::memcpy(&got, out.data() + 4 * l, 4);
        ASSERT_EQ(got, va[l] + vb[l]) << "lane " << l;
    }
}

TEST_F(TransposeHierarchy, BroadcastEqualsTransposedReplication)
{
    const std::size_t lanes = 512, width = 32;
    const std::uint32_t value = 0xdeadbeef;
    std::vector<std::uint32_t> rep(lanes, value);
    hier.memory().writeBytes(
        0x1000000, reinterpret_cast<const std::uint8_t *>(rep.data()),
        4 * lanes);

    trans.transpose(0, 0x1000000, 0x5000000, lanes, width);
    trans.broadcast(0, value, 0x6000000, lanes, width);

    for (std::size_t k = 0; k < width; ++k)
        ASSERT_EQ(dump(CcInstruction::sliceAddr(0x6000000, k),
                       sliceBytes(lanes)),
                  dump(CcInstruction::sliceAddr(0x5000000, k),
                       sliceBytes(lanes)))
            << "slice " << k;
    EXPECT_EQ(trans.broadcasts(), 1u);
    EXPECT_EQ(stats.value("cc.broadcasts"), 1u);
}

TEST_F(TransposeHierarchy, RaggedLaneCountsRoundTripThroughHierarchy)
{
    Rng rng(0x0dd);
    for (std::size_t lanes : {60u, 512u + 37u}) {
        const std::size_t width = 9;
        Bytes packed = randomPacked(rng, lanes, width);
        Addr src = 0x9000000 + 0x1000000 * (lanes & 0xff);
        hier.memory().writeBytes(src, packed.data(), packed.size());
        trans.transpose(0, src, src + 0x100000, lanes, width);
        trans.untranspose(0, src + 0x100000, src + 0x400000, lanes,
                          width);
        EXPECT_EQ(dump(src + 0x400000, packed.size()), packed)
            << "lanes " << lanes;
    }
}

} // namespace
} // namespace ccache::cc
