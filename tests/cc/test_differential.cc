/**
 * @file
 * Differential golden-model tests: every CC ISA op (and / or / xor /
 * nor / not / copy / buz / cmp / search / clmul) is run through the
 * circuit-level bit-line sram::SubArray path AND through the CC
 * controller over the real hierarchy, and compared bit-exactly against
 * an independent plain scalar reference implementation over randomized
 * operands with fixed seeds. The ECC-active (fault ladder enabled at
 * zero rates) and near-place-forced variants must match the reference
 * and the in-place results bit-for-bit.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cache/hierarchy.hh"
#include "cc/cc_controller.hh"
#include "cc/ecc.hh"
#include "common/rng.hh"
#include "sram/subarray.hh"

namespace ccache::cc {
namespace {

// ---------------------------------------------------------------------
// The golden model: deliberately naive byte/bit loops, sharing no code
// with BlockCompute or the sub-array circuit semantics.
// ---------------------------------------------------------------------

using Bytes = std::vector<std::uint8_t>;

Bytes
refAnd(const Bytes &a, const Bytes &b)
{
    Bytes out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] & b[i];
    return out;
}

Bytes
refOr(const Bytes &a, const Bytes &b)
{
    Bytes out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] | b[i];
    return out;
}

Bytes
refXor(const Bytes &a, const Bytes &b)
{
    Bytes out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] ^ b[i];
    return out;
}

Bytes
refNor(const Bytes &a, const Bytes &b)
{
    Bytes out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = static_cast<std::uint8_t>(~(a[i] | b[i]));
    return out;
}

Bytes
refNot(const Bytes &a)
{
    Bytes out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = static_cast<std::uint8_t>(~a[i]);
    return out;
}

/** Bit i of the result: 64-bit words i of a and b are equal. */
std::uint64_t
refWordEqualMask(const Bytes &a, const Bytes &b)
{
    std::uint64_t mask = 0;
    for (std::size_t w = 0; w * 8 < a.size(); ++w) {
        bool eq = true;
        for (std::size_t byte = 0; byte < 8; ++byte)
            eq &= a[w * 8 + byte] == b[w * 8 + byte];
        if (eq)
            mask |= std::uint64_t{1} << w;
    }
    return mask;
}

/** Parity of popcount(a & b) per word of @p word_bits. */
std::vector<bool>
refClmulParities(const Bytes &a, const Bytes &b, std::size_t word_bits)
{
    std::vector<bool> out;
    for (std::size_t w = 0; w * word_bits < a.size() * 8; ++w) {
        unsigned ones = 0;
        for (std::size_t bit = 0; bit < word_bits; ++bit) {
            std::size_t idx = w * word_bits + bit;
            bool ba = (a[idx / 8] >> (idx % 8)) & 1;
            bool bb = (b[idx / 8] >> (idx % 8)) & 1;
            ones += (ba && bb) ? 1 : 0;
        }
        out.push_back((ones & 1) != 0);
    }
    return out;
}

Bytes
randomBytes(Rng &rng, std::size_t n)
{
    Bytes out(n);
    for (auto &b : out)
        b = static_cast<std::uint8_t>(rng.below(256));
    return out;
}

Block
toBlock(const Bytes &bytes)
{
    Block b{};
    std::copy_n(bytes.begin(), std::min(bytes.size(), kBlockSize),
                b.begin());
    return b;
}

Bytes
fromBlock(const Block &b)
{
    return Bytes(b.begin(), b.end());
}

// ---------------------------------------------------------------------
// Layer 1: the bit-line SubArray circuit path vs the golden model,
// randomized over many fixed seeds.
// ---------------------------------------------------------------------

class SubArrayDifferential : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    SubArrayDifferential() : sa(params()) {}

    static sram::SubArrayParams
    params()
    {
        sram::SubArrayParams p;
        p.rows = 16;
        p.cols = 1024;  // two 64-byte block partitions
        return p;
    }

    sram::SubArray sa;
};

TEST_P(SubArrayDifferential, AllOpsMatchGoldenModel)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 8; ++trial) {
        Bytes a = randomBytes(rng, kBlockSize);
        Bytes b = randomBytes(rng, kBlockSize);
        sa.write({0, 0}, toBlock(a));
        sa.write({0, 1}, toBlock(b));

        sa.opAnd({0, 0}, {0, 1}, {0, 2});
        EXPECT_EQ(fromBlock(sa.read({0, 2})), refAnd(a, b));
        sa.opOr({0, 0}, {0, 1}, {0, 3});
        EXPECT_EQ(fromBlock(sa.read({0, 3})), refOr(a, b));
        sa.opXor({0, 0}, {0, 1}, {0, 4});
        EXPECT_EQ(fromBlock(sa.read({0, 4})), refXor(a, b));
        sa.opNor({0, 0}, {0, 1}, {0, 5});
        EXPECT_EQ(fromBlock(sa.read({0, 5})), refNor(a, b));
        sa.opNot({0, 0}, {0, 6});
        EXPECT_EQ(fromBlock(sa.read({0, 6})), refNot(a));
        sa.opCopy({0, 0}, {0, 7});
        EXPECT_EQ(fromBlock(sa.read({0, 7})), a);
        sa.opBuz({0, 7});
        EXPECT_EQ(fromBlock(sa.read({0, 7})), Bytes(kBlockSize, 0));

        // Sources must be intact after every op (in-place ops sense,
        // they do not overwrite operands).
        EXPECT_EQ(fromBlock(sa.read({0, 0})), a);
        EXPECT_EQ(fromBlock(sa.read({0, 1})), b);
    }
}

TEST_P(SubArrayDifferential, CmpAndSearchMatchGoldenModel)
{
    Rng rng(GetParam() ^ 0xc3a5c3a5c3a5c3a5ULL);
    for (int trial = 0; trial < 8; ++trial) {
        Bytes a = randomBytes(rng, kBlockSize);
        Bytes b = a;
        // Perturb a random subset of words.
        unsigned flips = static_cast<unsigned>(rng.below(8));
        for (unsigned f = 0; f < flips; ++f) {
            std::size_t w = rng.below(kWordsPerBlock);
            b[w * 8 + rng.below(8)] ^= 1u << rng.below(8);
        }
        sa.write({0, 0}, toBlock(a));
        sa.write({0, 1}, toBlock(b));

        std::uint64_t expect = refWordEqualMask(a, b) &
            ((std::uint64_t{1} << kWordsPerBlock) - 1);
        auto cmp = sa.opCmp({0, 0}, {0, 1});
        EXPECT_EQ(cmp.wordEqualMask, expect);
        EXPECT_EQ(cmp.allEqual, a == b);

        // Search has identical compare semantics (key vs data block).
        auto search = sa.opSearch({0, 1}, {0, 0});
        EXPECT_EQ(search.wordEqualMask, expect);
        EXPECT_EQ(search.allEqual, a == b);
    }
}

TEST_P(SubArrayDifferential, ClmulMatchesGoldenModelAtAllWidths)
{
    Rng rng(GetParam() ^ 0x9e3779b97f4a7c15ULL);
    for (std::size_t word_bits : {64u, 128u, 256u}) {
        Bytes a = randomBytes(rng, kBlockSize);
        Bytes b = randomBytes(rng, kBlockSize);
        sa.write({0, 0}, toBlock(a));
        sa.write({0, 1}, toBlock(b));
        auto result = sa.opClmul({0, 0}, {0, 1}, word_bits);
        EXPECT_EQ(result.parities, refClmulParities(a, b, word_bits))
            << "width " << word_bits;
    }
}

TEST_P(SubArrayDifferential, EccSurvivesInPlaceOps)
{
    // The Section IV-I check: SECDED is linear, so the dst ECC of an
    // xor is the xor of the source ECCs, and a decode of the computed
    // result against that code reports no error.
    Rng rng(GetParam() ^ 0x5eedULL);
    Bytes a = randomBytes(rng, kBlockSize);
    Bytes b = randomBytes(rng, kBlockSize);
    BlockEcc ecc_a = encodeBlock(toBlock(a));
    BlockEcc ecc_b = encodeBlock(toBlock(b));

    sa.write({0, 0}, toBlock(a));
    sa.write({0, 1}, toBlock(b));
    sa.opXor({0, 0}, {0, 1}, {0, 2});
    Block result = sa.read({0, 2});

    BlockEcc ecc_xor;
    for (std::size_t w = 0; w < kWordsPerBlock; ++w)
        ecc_xor[w] = static_cast<std::uint8_t>(ecc_a[w] ^ ecc_b[w]);
    EXPECT_EQ(encodeBlock(result), ecc_xor);
    EXPECT_EQ(checkBlock(result, ecc_xor), EccStatus::Ok);
    EXPECT_EQ(fromBlock(result), refXor(a, b));
}

INSTANTIATE_TEST_SUITE_P(FixedSeeds, SubArrayDifferential,
                         ::testing::Values(1u, 2u, 3u, 17u, 123u,
                                           0xdeadbeefu));

// ---------------------------------------------------------------------
// Layer 2: the CC controller over the real hierarchy, in three
// variants — in-place (default), near-place-forced, and ECC-active
// (fault ladder enabled at zero injection rates). All three must match
// the golden model and each other bit-for-bit.
// ---------------------------------------------------------------------

enum class Variant { InPlace, NearPlace, EccActive };

class ControllerDifferential : public ::testing::TestWithParam<Variant>
{
  protected:
    ControllerDifferential()
        : hier(cache::HierarchyParams{}, &em, &stats),
          ctrl(hier, &em, &stats, makeParams(GetParam()))
    {
    }

    static CcControllerParams
    makeParams(Variant v)
    {
        CcControllerParams p;
        switch (v) {
          case Variant::InPlace:
            p.verifyCircuit = true;  // cross-check the circuit model too
            break;
          case Variant::NearPlace:
            p.forceNearPlace = true;
            break;
          case Variant::EccActive:
            // Fault ladder armed, zero rates: every sensed operand goes
            // through the injector and the ECC check unit, and the
            // results must stay bit-identical to a fault-free run.
            p.faults.enabled = true;
            p.faults.seed = 77;
            break;
        }
        return p;
    }

    Bytes
    load(Addr addr, const Bytes &data)
    {
        hier.memory().writeBytes(addr, data.data(), data.size());
        return data;
    }

    Bytes
    dump(Addr addr, std::size_t len)
    {
        Bytes out(len);
        for (std::size_t off = 0; off < len; off += kBlockSize) {
            Block b = hier.debugRead(addr + off);
            std::size_t n = std::min(kBlockSize, len - off);
            std::copy_n(b.begin(), n, out.begin() + off);
        }
        return out;
    }

    energy::EnergyModel em;
    StatRegistry stats;
    cache::Hierarchy hier;
    CcController ctrl;
};

TEST_P(ControllerDifferential, LogicalOpsMatchGoldenModel)
{
    Rng rng(2024);
    std::size_t iteration = 0;
    for (std::size_t size : {64u, 512u, 4096u}) {
        // Fresh addresses per iteration: memory writes do not invalidate
        // lines already staged into the hierarchy by earlier trials.
        Addr base = 0x10000 + 0x100000 * iteration++;
        Bytes a = load(base, randomBytes(rng, size));
        Bytes b = load(base + 0x20000, randomBytes(rng, size));

        auto run = [&](CcInstruction instr, Addr dst, const Bytes &want) {
            auto res = ctrl.execute(0, instr);
            EXPECT_FALSE(res.riscFallback);
            if (GetParam() == Variant::NearPlace) {
                EXPECT_EQ(res.inPlaceOps, 0u);
                EXPECT_GT(res.nearPlaceOps, 0u);
            }
            EXPECT_EQ(dump(dst, want.size()), want) << instr.toString();
        };

        run(CcInstruction::logicalAnd(base, base + 0x20000,
                                      base + 0x30000, size),
            base + 0x30000, refAnd(a, b));
        run(CcInstruction::logicalOr(base, base + 0x20000,
                                     base + 0x38000, size),
            base + 0x38000, refOr(a, b));
        run(CcInstruction::logicalXor(base, base + 0x20000,
                                      base + 0x40000, size),
            base + 0x40000, refXor(a, b));
        run(CcInstruction::logicalNot(base, base + 0x48000, size),
            base + 0x48000, refNot(a));
        run(CcInstruction::copy(base, base + 0x50000, size),
            base + 0x50000, a);

        auto res = ctrl.execute(0, CcInstruction::buz(base + 0x50000,
                                                      size));
        EXPECT_FALSE(res.riscFallback);
        EXPECT_EQ(dump(base + 0x50000, size), Bytes(size, 0));
    }
}

TEST_P(ControllerDifferential, CmpMatchesGoldenModel)
{
    Rng rng(4096);
    for (int trial = 0; trial < 4; ++trial) {
        const std::size_t size = 512;  // kMaxCmpBytes
        Bytes a = randomBytes(rng, size);
        Bytes b = a;
        unsigned flips = static_cast<unsigned>(rng.below(10));
        for (unsigned f = 0; f < flips; ++f)
            b[rng.below(size)] ^= 1u << rng.below(8);
        // Per-trial addresses: staged lines from earlier trials would
        // otherwise shadow the fresh memory contents.
        Addr base = 0x600000 + 0x100000 * trial;
        load(base, a);
        load(base + 0x40000, b);

        auto res = ctrl.execute(0, CcInstruction::cmp(base,
                                                      base + 0x40000,
                                                      size));
        EXPECT_EQ(res.result, refWordEqualMask(a, b)) << "trial " << trial;
    }
}

TEST_P(ControllerDifferential, SearchMatchesGoldenModel)
{
    Rng rng(8192);
    const std::size_t size = 512;  // 8 blocks
    Bytes data = randomBytes(rng, size);
    // Plant the key at blocks 2 and 6.
    Bytes key(data.begin() + 2 * kBlockSize,
              data.begin() + 3 * kBlockSize);
    std::copy(key.begin(), key.end(), data.begin() + 6 * kBlockSize);
    load(0x80000, data);
    load(0x90000, key);

    auto res = ctrl.execute(0, CcInstruction::search(0x80000, 0x90000,
                                                     size));
    // Word-granular reference: each data block vs the key.
    std::uint64_t expect = 0;
    for (std::size_t blk = 0; blk * kBlockSize < size; ++blk) {
        Bytes d(data.begin() + blk * kBlockSize,
                data.begin() + (blk + 1) * kBlockSize);
        expect |= refWordEqualMask(d, key) << (blk * kWordsPerBlock);
    }
    EXPECT_EQ(res.result, expect);
}

TEST_P(ControllerDifferential, ClmulMatchesGoldenModel)
{
    Rng rng(16384);
    const std::size_t size = 1024;
    Bytes a = load(0xa0000, randomBytes(rng, size));
    Bytes b = load(0xb0000, randomBytes(rng, size));

    std::size_t iteration = 0;
    for (std::size_t word_bits : {64u, 128u, 256u}) {
        Addr dst = 0xc0000 + 0x100000 * iteration++;
        auto res = ctrl.execute(
            0, CcInstruction::clmul(0xa0000, 0xb0000, dst, size,
                                    word_bits));
        EXPECT_FALSE(res.riscFallback);

        // Golden model: the plain (non-replicated) clmul writes one
        // dest block per source block, parities packed into the low
        // bits of the block's first 64-bit word, the rest zeroed.
        Bytes want(size, 0);
        for (std::size_t blk = 0; blk * kBlockSize < size; ++blk) {
            Bytes ba(a.begin() + blk * kBlockSize,
                     a.begin() + (blk + 1) * kBlockSize);
            Bytes bb(b.begin() + blk * kBlockSize,
                     b.begin() + (blk + 1) * kBlockSize);
            auto p = refClmulParities(ba, bb, word_bits);
            for (std::size_t i = 0; i < p.size(); ++i)
                if (p[i])
                    want[blk * kBlockSize + i / 8] |=
                        static_cast<std::uint8_t>(1u << (i % 8));
        }

        EXPECT_EQ(dump(dst, size), want) << "width " << word_bits;
    }
}

TEST_P(ControllerDifferential, EccActiveReportsNoFaultActivity)
{
    if (GetParam() != Variant::EccActive)
        GTEST_SKIP() << "only meaningful with the fault ladder armed";
    Rng rng(555);
    load(0xd0000, randomBytes(rng, 2048));
    load(0xe0000, randomBytes(rng, 2048));
    auto res = ctrl.execute(
        0, CcInstruction::logicalXor(0xd0000, 0xe0000, 0xf0000, 2048));
    // Zero rates: the check unit ran but found nothing to correct.
    EXPECT_EQ(res.faultRetries, 0u);
    EXPECT_EQ(res.faultDegradedOps, 0u);
    EXPECT_EQ(res.faultRiscRecoveries, 0u);
}

INSTANTIATE_TEST_SUITE_P(Variants, ControllerDifferential,
                         ::testing::Values(Variant::InPlace,
                                           Variant::NearPlace,
                                           Variant::EccActive),
                         [](const auto &info) {
                             switch (info.param) {
                               case Variant::InPlace: return "InPlace";
                               case Variant::NearPlace: return "NearPlace";
                               case Variant::EccActive: return "EccActive";
                             }
                             return "Unknown";
                         });

// The three variants must agree with each other, not only with the
// reference: run the same instruction stream under each and compare
// the resulting memory images byte-for-byte.
TEST(ControllerCrossVariant, MemoryImagesBitIdentical)
{
    auto run_variant = [](Variant v) {
        energy::EnergyModel em;
        StatRegistry stats;
        cache::Hierarchy hier(cache::HierarchyParams{}, &em, &stats);
        CcController ctrl(hier, &em, &stats,
                          [&] {
                              CcControllerParams p;
                              if (v == Variant::NearPlace)
                                  p.forceNearPlace = true;
                              if (v == Variant::EccActive) {
                                  p.faults.enabled = true;
                                  p.faults.seed = 99;
                              }
                              return p;
                          }());

        Rng rng(31337);
        Bytes a(4096), b(4096);
        for (auto &x : a)
            x = static_cast<std::uint8_t>(rng.below(256));
        for (auto &x : b)
            x = static_cast<std::uint8_t>(rng.below(256));
        hier.memory().writeBytes(0x10000, a.data(), a.size());
        hier.memory().writeBytes(0x20000, b.data(), b.size());

        ctrl.execute(0, CcInstruction::logicalAnd(0x10000, 0x20000,
                                                  0x30000, 4096));
        ctrl.execute(0, CcInstruction::logicalXor(0x30000, 0x20000,
                                                  0x40000, 4096));
        ctrl.execute(0, CcInstruction::copy(0x40000, 0x50000, 4096));
        ctrl.execute(0, CcInstruction::logicalNot(0x50000, 0x60000,
                                                  4096));

        Bytes image;
        for (Addr base : {0x30000u, 0x40000u, 0x50000u, 0x60000u})
            for (std::size_t off = 0; off < 4096; off += kBlockSize) {
                Block blk = hier.debugRead(base + off);
                image.insert(image.end(), blk.begin(), blk.end());
            }
        return image;
    };

    Bytes in_place = run_variant(Variant::InPlace);
    EXPECT_EQ(in_place, run_variant(Variant::NearPlace));
    EXPECT_EQ(in_place, run_variant(Variant::EccActive));
}

} // namespace
} // namespace ccache::cc
