/**
 * @file
 * Integration tests for the graceful-degradation ladder: ECC correction
 * in place, bounded retry on margin failures, degradation to the
 * near-place unit, discard-and-refill with RISC recompute, background
 * scrubbing -- plus the two global guarantees: fixed-seed determinism
 * and zero cost/behavior change with injection disabled.
 */

#include <gtest/gtest.h>

#include <functional>

#include "cache/hierarchy.hh"
#include "cc/cc_controller.hh"
#include "common/rng.hh"
#include "verify/coherence_checker.hh"

namespace ccache::cc {
namespace {

/** A self-contained simulation: hierarchy + energy + stats + controller. */
struct Sim
{
    explicit Sim(const CcControllerParams &params = CcControllerParams{})
        : hier(cache::HierarchyParams{}, &em, &stats),
          ctrl(hier, &em, &stats, params)
    {
    }

    std::vector<std::uint8_t>
    loadRandom(Addr addr, std::size_t len, std::uint64_t seed)
    {
        Rng rng(seed);
        std::vector<std::uint8_t> data(len);
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.below(256));
        hier.memory().writeBytes(addr, data.data(), len);
        return data;
    }

    std::vector<std::uint8_t>
    dumpBytes(Addr addr, std::size_t len)
    {
        std::vector<std::uint8_t> out(len);
        for (std::size_t off = 0; off < len; off += kBlockSize) {
            Block b = hier.debugRead(addr + off);
            std::size_t n = std::min(kBlockSize, len - off);
            std::copy_n(b.begin(), n, out.begin() + off);
        }
        return out;
    }

    energy::EnergyModel em;
    StatRegistry stats;
    cache::Hierarchy hier;
    CcController ctrl;
};

/** Reference AND of two byte vectors. */
std::vector<std::uint8_t>
refAnd(const std::vector<std::uint8_t> &a, const std::vector<std::uint8_t> &b)
{
    std::vector<std::uint8_t> out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] & b[i];
    return out;
}

constexpr std::size_t kLen = 2048;  // 32 blocks

TEST(FaultLadderTest, DisabledInjectionLeavesCostsUntouched)
{
    // A controller with the fault subsystem present-but-disabled must
    // behave bit-identically to the default configuration: same
    // latency, same energy, same stats -- the "zero cost when off"
    // guarantee.
    CcControllerParams with_faults;
    with_faults.faults.seed = 999;     // ignored while disabled
    with_faults.scrubBlocksPerInstr = 64;

    Sim def;
    Sim off(with_faults);

    for (Sim *s : {&def, &off}) {
        s->loadRandom(0x10000, kLen, 1);
        s->loadRandom(0x20000, kLen, 2);
    }
    auto ra = def.ctrl.execute(
        0, CcInstruction::logicalAnd(0x10000, 0x20000, 0x30000, kLen));
    auto rb = off.ctrl.execute(
        0, CcInstruction::logicalAnd(0x10000, 0x20000, 0x30000, kLen));

    EXPECT_EQ(ra.latency, rb.latency);
    EXPECT_EQ(ra.computeLatency, rb.computeLatency);
    EXPECT_EQ(rb.faultRetries, 0u);
    EXPECT_EQ(rb.faultDegradedOps, 0u);
    EXPECT_EQ(rb.faultRiscRecoveries, 0u);
    EXPECT_EQ(def.em.dynamic().dynamicTotal(),
              off.em.dynamic().dynamicTotal());
    EXPECT_EQ(off.stats.value("cc.fault.ecc_corrected"), 0u);
    EXPECT_EQ(off.stats.value("cc.fault.scrub_visits"), 0u);
    EXPECT_EQ(def.dumpBytes(0x30000, kLen), off.dumpBytes(0x30000, kLen));
}

TEST(FaultLadderTest, FixedSeedRunsAreIdentical)
{
    CcControllerParams p;
    p.faults.enabled = true;
    p.faults.seed = 1234;
    p.faults.transientPerBlockOp = 0.2;
    p.faults.doubleBitFraction = 0.3;
    p.faults.burstFraction = 0.05;
    p.faults.marginFailPerDualRowOp = 0.1;
    p.faults.stuckAtPerBlock = 0.02;
    p.faults.stuckAtDoubleFraction = 0.5;
    p.faults.backgroundUpsetPerInstr = 0.5;

    auto run = [&](Sim &sim) {
        sim.loadRandom(0x10000, kLen, 1);
        sim.loadRandom(0x20000, kLen, 2);
        CcExecResult agg;
        for (int i = 0; i < 4; ++i) {
            auto r = sim.ctrl.execute(
                0, CcInstruction::logicalAnd(0x10000, 0x20000, 0x30000,
                                             kLen));
            agg.latency += r.latency;
            agg.faultRetries += r.faultRetries;
            agg.faultDegradedOps += r.faultDegradedOps;
            agg.faultRiscRecoveries += r.faultRiscRecoveries;
        }
        return agg;
    };

    Sim a(p);
    Sim b(p);
    auto res_a = run(a);
    auto res_b = run(b);

    EXPECT_EQ(res_a.latency, res_b.latency);
    EXPECT_EQ(res_a.faultRetries, res_b.faultRetries);
    EXPECT_EQ(res_a.faultDegradedOps, res_b.faultDegradedOps);
    EXPECT_EQ(res_a.faultRiscRecoveries, res_b.faultRiscRecoveries);
    EXPECT_EQ(a.em.dynamic().dynamicTotal(), b.em.dynamic().dynamicTotal());
    for (const char *name :
         {"cc.fault.ecc_corrected", "cc.fault.ecc_uncorrectable",
          "cc.fault.retries", "cc.fault.margin_failures",
          "cc.fault.silent_corruptions", "cc.fault.scrub_visits"}) {
        EXPECT_EQ(a.stats.value(name), b.stats.value(name))
            << name;
    }
    EXPECT_EQ(a.dumpBytes(0x30000, kLen), b.dumpBytes(0x30000, kLen));
}

TEST(FaultLadderTest, SingleBitUpsetsAreCorrectedWithoutDegradation)
{
    CcControllerParams p;
    p.faults.enabled = true;
    p.faults.seed = 5;
    p.faults.transientPerBlockOp = 0.6;
    p.faults.doubleBitFraction = 0.0;  // singles only: SECDED territory
    p.faults.burstFraction = 0.0;

    Sim sim(p);
    auto a = sim.loadRandom(0x10000, kLen, 1);
    auto b = sim.loadRandom(0x20000, kLen, 2);
    auto res = sim.ctrl.execute(
        0, CcInstruction::logicalAnd(0x10000, 0x20000, 0x30000, kLen));

    EXPECT_FALSE(res.riscFallback);
    EXPECT_EQ(res.faultDegradedOps, 0u);
    EXPECT_EQ(res.faultRiscRecoveries, 0u);
    EXPECT_GT(sim.stats.value("cc.fault.ecc_corrected"), 0u);
    EXPECT_EQ(sim.stats.value("cc.fault.silent_corruptions"), 0u);
    // Every correction happened in place: the result is exact.
    EXPECT_EQ(sim.dumpBytes(0x30000, kLen), refAnd(a, b));
}

TEST(FaultLadderTest, DoubleBitUpsetsRetryAndStayCorrect)
{
    CcControllerParams p;
    p.faults.enabled = true;
    p.faults.seed = 6;
    p.faults.transientPerBlockOp = 0.5;
    p.faults.doubleBitFraction = 1.0;  // every upset is uncorrectable
    p.faults.burstFraction = 0.0;

    Sim sim(p);
    auto a = sim.loadRandom(0x10000, kLen, 1);
    auto b = sim.loadRandom(0x20000, kLen, 2);
    auto res = sim.ctrl.execute(
        0, CcInstruction::logicalAnd(0x10000, 0x20000, 0x30000, kLen));

    // Detected-uncorrectable transients burn retries; a transient does
    // not persist, so re-sensing recovers and nothing silently corrupts.
    EXPECT_GT(res.faultRetries, 0u);
    EXPECT_GT(sim.stats.value("cc.fault.ecc_uncorrectable"), 0u);
    EXPECT_EQ(sim.stats.value("cc.fault.silent_corruptions"), 0u);
    EXPECT_EQ(sim.dumpBytes(0x30000, kLen), refAnd(a, b));
}

TEST(FaultLadderTest, MarginFailuresDegradeToNearPlace)
{
    CcControllerParams p;
    p.faults.enabled = true;
    p.faults.seed = 7;
    p.faults.marginFailPerDualRowOp = 1.0;  // every dual-row op fails

    Sim sim(p);
    auto a = sim.loadRandom(0x10000, kLen, 1);
    auto b = sim.loadRandom(0x20000, kLen, 2);

    CcControllerParams clean;
    Sim base(clean);
    base.loadRandom(0x10000, kLen, 1);
    base.loadRandom(0x20000, kLen, 2);

    auto res = sim.ctrl.execute(
        0, CcInstruction::logicalAnd(0x10000, 0x20000, 0x30000, kLen));
    auto ref = base.ctrl.execute(
        0, CcInstruction::logicalAnd(0x10000, 0x20000, 0x30000, kLen));

    // Retries cannot fix a full-rate margin pathology: every block op
    // exhausts its budget and lands on the near-place unit, whose
    // single-row full-margin reads succeed.
    EXPECT_EQ(res.faultDegradedOps, res.blockOps);
    EXPECT_EQ(res.faultRetries, res.blockOps * p.maxFaultRetries);
    EXPECT_EQ(res.faultRiscRecoveries, 0u);
    EXPECT_GT(res.latency, ref.latency);
    EXPECT_EQ(sim.stats.value("cc.fault.margin_failures"),
              res.blockOps * (p.maxFaultRetries + 1));
    EXPECT_EQ(sim.dumpBytes(0x30000, kLen), refAnd(a, b));

    // Copy activates one row at a time: margin failures never apply.
    auto copy_res = sim.ctrl.execute(
        0, CcInstruction::copy(0x10000, 0x50000, kLen));
    EXPECT_EQ(copy_res.faultDegradedOps, 0u);
    EXPECT_EQ(copy_res.faultRetries, 0u);
    EXPECT_EQ(sim.dumpBytes(0x50000, kLen), a);
}

TEST(FaultLadderTest, StuckCellsFallThroughToRiscAndRemap)
{
    CcControllerParams p;
    p.faults.enabled = true;
    p.faults.seed = 8;
    p.faults.stuckAtPerBlock = 1.0;        // every line sits on bad cells
    p.faults.stuckAtDoubleFraction = 1.0;  // ... with two stuck bits

    Sim sim(p);
    auto a = sim.loadRandom(0x10000, kLen, 1);
    auto b = sim.loadRandom(0x20000, kLen, 2);
    auto res = sim.ctrl.execute(
        0, CcInstruction::logicalAnd(0x10000, 0x20000, 0x30000, kLen));

    // A two-bit defect survives retries AND the near-place re-read: the
    // only way out is the final rung -- discard, refill, recompute.
    EXPECT_EQ(res.faultRiscRecoveries, res.blockOps);
    EXPECT_EQ(res.faultDegradedOps, res.blockOps);
    EXPECT_EQ(sim.stats.value("cc.fault.risc_recoveries"),
              res.blockOps);
    EXPECT_EQ(sim.stats.value("cc.fault.silent_corruptions"), 0u);
    EXPECT_EQ(sim.dumpBytes(0x30000, kLen), refAnd(a, b));

    // The refill remapped the lines to healthy cells: a second pass
    // runs entirely on the fast path.
    auto again = sim.ctrl.execute(
        0, CcInstruction::logicalAnd(0x10000, 0x20000, 0x30000, kLen));
    EXPECT_EQ(again.faultRiscRecoveries, 0u);
    EXPECT_EQ(again.faultDegradedOps, 0u);
    EXPECT_EQ(sim.dumpBytes(0x30000, kLen), refAnd(a, b));
}

TEST(FaultLadderTest, BurstsAliasIntoSilentCorruption)
{
    CcControllerParams p;
    p.faults.enabled = true;
    p.faults.seed = 9;
    p.faults.transientPerBlockOp = 0.5;
    p.faults.doubleBitFraction = 0.0;
    p.faults.burstFraction = 1.0;  // every upset is a 3-bit burst

    Sim sim(p);
    sim.loadRandom(0x10000, kLen, 1);
    sim.loadRandom(0x20000, kLen, 2);
    sim.ctrl.execute(
        0, CcInstruction::logicalAnd(0x10000, 0x20000, 0x30000, kLen));

    // Odd-count bursts alias to single-bit syndromes: SECDED
    // "corrects" them into still-wrong data. This is the paper's
    // beyond-ECC exposure, and the ladder must at least account for it.
    EXPECT_GT(sim.stats.value("cc.fault.silent_corruptions"), 0u);
}

TEST(FaultLadderTest, ScrubberFindsLatentUpsets)
{
    CcControllerParams p;
    p.faults.enabled = true;
    p.faults.seed = 10;
    p.faults.backgroundUpsetPerInstr = 1.0;
    p.scrubBlocksPerInstr = 16;

    Sim sim(p);
    sim.loadRandom(0x10000, kLen, 1);
    sim.loadRandom(0x20000, kLen, 2);
    for (int i = 0; i < 32; ++i) {
        sim.ctrl.execute(
            0, CcInstruction::logicalAnd(0x10000, 0x20000, 0x30000,
                                         kLen));
    }

    EXPECT_GT(sim.stats.value("cc.fault.scrub_visits"), 0u);
    EXPECT_GT(sim.ctrl.faultInjector().backgroundUpsets(), 0u);
    // Latent errors were found and resolved by the scrubber or by the
    // access path's ECC check; they must not pile up unboundedly.
    std::uint64_t resolved =
        sim.stats.value("cc.fault.scrub_corrections") +
        sim.stats.value("cc.fault.scrub_refills") +
        sim.stats.value("cc.fault.ecc_corrected") +
        sim.stats.value("cc.fault.ecc_uncorrectable");
    EXPECT_GT(resolved, 0u);
    EXPECT_LT(sim.ctrl.faultInjector().latentCount(),
              sim.ctrl.faultInjector().backgroundUpsets());
}

TEST(FaultLadderTest, CoherenceCheckerGreenThroughEveryRung)
{
    // Every rung of the degradation ladder — ECC in-place correction,
    // retry, near-place fallback, RISC refill+remap, background scrub —
    // must leave the MESI state machine sound. The RISC rung is the
    // interesting one: it discards and refills lines mid-instruction,
    // which is exactly where a stale directory entry would slip in.
    struct Rung
    {
        const char *name;
        std::function<void(CcControllerParams &)> configure;
    };
    const Rung rungs[] = {
        {"ecc_correct",
         [](CcControllerParams &p) {
             p.faults.transientPerBlockOp = 0.6;
             p.faults.doubleBitFraction = 0.0;
             p.faults.burstFraction = 0.0;
         }},
        {"retry",
         [](CcControllerParams &p) {
             p.faults.transientPerBlockOp = 0.5;
             p.faults.doubleBitFraction = 1.0;
             p.faults.burstFraction = 0.0;
         }},
        {"near_place",
         [](CcControllerParams &p) {
             p.faults.marginFailPerDualRowOp = 1.0;
         }},
        {"risc_refill_remap",
         [](CcControllerParams &p) {
             p.faults.stuckAtPerBlock = 1.0;
             p.faults.stuckAtDoubleFraction = 1.0;
         }},
        {"scrub",
         [](CcControllerParams &p) {
             p.faults.backgroundUpsetPerInstr = 1.0;
             p.scrubBlocksPerInstr = 16;
         }},
    };

    for (const Rung &rung : rungs) {
        CcControllerParams p;
        p.faults.enabled = true;
        p.faults.seed = 21;
        rung.configure(p);

        Sim sim(p);
        verify::CoherenceCheckerParams cp;
        cp.auditInterval = 1;
        verify::CoherenceChecker checker(sim.hier, cp);
        sim.hier.setChecker(&checker);
        sim.ctrl.setChecker(&checker);

        auto a = sim.loadRandom(0x10000, kLen, 1);
        auto b = sim.loadRandom(0x20000, kLen, 2);
        for (int i = 0; i < 3; ++i) {
            EXPECT_NO_THROW(sim.ctrl.execute(
                0, CcInstruction::logicalAnd(0x10000, 0x20000, 0x30000,
                                             kLen)))
                << rung.name;
        }
        EXPECT_NO_THROW(sim.ctrl.execute(
            0, CcInstruction::copy(0x10000, 0x50000, kLen)))
            << rung.name;

        EXPECT_EQ(sim.dumpBytes(0x30000, kLen), refAnd(a, b))
            << rung.name;
        EXPECT_TRUE(checker.auditAll().empty()) << rung.name;
        EXPECT_GT(checker.checksRun(), 0u) << rung.name;
        EXPECT_NO_THROW(sim.hier.flushAll()) << rung.name;
    }
}

TEST(FaultLadderTest, CcRMaskSurvivesCorrectableFaults)
{
    CcControllerParams p;
    p.faults.enabled = true;
    p.faults.seed = 11;
    p.faults.transientPerBlockOp = 0.4;
    p.faults.doubleBitFraction = 0.0;
    p.faults.burstFraction = 0.0;

    constexpr std::size_t kCmpLen = 512;  // cmp result caps at 64 words
    Sim sim(p);
    auto data = sim.loadRandom(0x10000, kCmpLen, 1);
    sim.hier.memory().writeBytes(0x20000, data.data(), kCmpLen);  // equal
    auto res = sim.ctrl.execute(
        0, CcInstruction::cmp(0x10000, 0x20000, kCmpLen));

    // Correctable upsets must not leak into the comparison verdict.
    std::size_t words = kCmpLen / 8;
    std::uint64_t expect_mask = words >= 64
        ? ~std::uint64_t{0}
        : (std::uint64_t{1} << words) - 1;
    EXPECT_EQ(res.result, expect_mask);
    EXPECT_EQ(sim.stats.value("cc.fault.silent_corruptions"), 0u);
}

} // namespace
} // namespace ccache::cc
