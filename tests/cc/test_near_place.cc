/**
 * @file
 * Unit tests for the near-place logic unit and the shared BlockCompute
 * semantics, including the equivalence of BlockCompute with the
 * circuit-level sub-array for every operation (the bridge that justifies
 * the fast in-place functional path).
 */

#include <gtest/gtest.h>

#include "cc/near_place_unit.hh"
#include "common/rng.hh"
#include "sram/subarray.hh"

namespace ccache::cc {
namespace {

Block
randomBlock(Rng &rng)
{
    Block b;
    for (auto &byte : b)
        byte = static_cast<std::uint8_t>(rng.below(256));
    return b;
}

TEST(BlockComputeTest, MatchesCircuitModelForAllOps)
{
    // The controller's in-place fast path uses BlockCompute; prove it
    // equals the bit-line circuit semantics op by op.
    sram::SubArrayParams sp;
    sp.rows = 8;
    sp.cols = 512;
    sram::SubArray sa(sp);
    Rng rng(31);

    for (int iter = 0; iter < 25; ++iter) {
        Block a = randomBlock(rng), b = randomBlock(rng);
        sa.write({0, 0}, a);
        sa.write({0, 1}, b);

        sa.opAnd({0, 0}, {0, 1}, {0, 2});
        EXPECT_EQ(sa.read({0, 2}), BlockCompute::apply(CcOpcode::And, a, b));

        sa.opOr({0, 0}, {0, 1}, {0, 2});
        EXPECT_EQ(sa.read({0, 2}), BlockCompute::apply(CcOpcode::Or, a, b));

        sa.opXor({0, 0}, {0, 1}, {0, 2});
        EXPECT_EQ(sa.read({0, 2}), BlockCompute::apply(CcOpcode::Xor, a, b));

        sa.opNot({0, 0}, {0, 2});
        EXPECT_EQ(sa.read({0, 2}), BlockCompute::apply(CcOpcode::Not, a, b));

        sa.opCopy({0, 0}, {0, 2});
        EXPECT_EQ(sa.read({0, 2}),
                  BlockCompute::apply(CcOpcode::Copy, a, b));

        auto cmp = sa.opCmp({0, 0}, {0, 1});
        EXPECT_EQ(cmp.wordEqualMask & 0xff,
                  BlockCompute::wordEqualMask(a, b) & 0xff);

        for (std::size_t bits : {64u, 128u, 256u}) {
            auto cl = sa.opClmul({0, 0}, {0, 1}, bits);
            Block packed = BlockCompute::clmulPack(a, b, bits);
            std::uint64_t expect = blockWord(packed, 0);
            for (std::size_t i = 0; i < cl.parities.size(); ++i)
                EXPECT_EQ(cl.parities[i], ((expect >> i) & 1) != 0);
        }
    }
}

TEST(BlockComputeTest, WordEqualMaskEdges)
{
    Block a{}, b{};
    EXPECT_EQ(BlockCompute::wordEqualMask(a, b), 0xffu);
    setBlockWord(b, 0, 1);
    setBlockWord(b, 7, 1);
    EXPECT_EQ(BlockCompute::wordEqualMask(a, b), 0x7eu);
}

TEST(BlockComputeTest, BuzIgnoresInputs)
{
    Rng rng(4);
    Block a = randomBlock(rng);
    EXPECT_EQ(BlockCompute::apply(CcOpcode::Buz, a, a), zeroBlock());
}

class NearPlaceTest : public ::testing::Test
{
  protected:
    NearPlaceTest() : unit(NearPlaceParams{}, &em, &stats) {}
    energy::EnergyModel em;
    StatRegistry stats;
    NearPlaceUnit unit;
    Rng rng{77};
};

TEST_F(NearPlaceTest, ComputesRwResult)
{
    Block a = randomBlock(rng), b = randomBlock(rng);
    auto res = unit.execute(CcOpcode::Xor, CacheLevel::L3, a, b);
    EXPECT_EQ(res.result, BlockCompute::apply(CcOpcode::Xor, a, b));
    EXPECT_EQ(res.latency, unit.params().opLatency);
    EXPECT_EQ(unit.opsExecuted(), 1u);
    EXPECT_EQ(stats.value("cc.near_place_ops"), 1u);
}

TEST_F(NearPlaceTest, ComputesCmpMask)
{
    Block a = randomBlock(rng);
    Block b = a;
    b[9] ^= 1;  // word 1 differs
    auto res = unit.execute(CcOpcode::Cmp, CacheLevel::L2, a, b);
    EXPECT_EQ(res.wordEqualMask, 0xffu & ~(1u << 1));
    EXPECT_EQ(res.latency, unit.params().opLatencyL2);
}

TEST_F(NearPlaceTest, LatencyScalesByLevel)
{
    NearPlaceParams p;
    EXPECT_GT(p.latency(CacheLevel::L3), p.latency(CacheLevel::L2));
    EXPECT_GT(p.latency(CacheLevel::L2), p.latency(CacheLevel::L1));
}

TEST_F(NearPlaceTest, ChargesHtreeReadsAndWriteback)
{
    Block a = randomBlock(rng), b = randomBlock(rng);
    unit.execute(CcOpcode::And, CacheLevel::L3, a, b);
    const auto &p = em.params();
    // Two source reads cross the H-tree + one result write + logic.
    double expect = 2 * p.cacheOpEnergy(CacheLevel::L3,
                                        energy::CacheOp::Read) +
        p.cacheOpEnergy(CacheLevel::L3, energy::CacheOp::Write) +
        p.nearPlaceLogicPerBlock;
    EXPECT_DOUBLE_EQ(em.dynamic().dynamicTotal(), expect);
}

TEST_F(NearPlaceTest, CcRChargesNoWriteback)
{
    Block a = randomBlock(rng), b = randomBlock(rng);
    unit.execute(CcOpcode::Cmp, CacheLevel::L3, a, b);
    const auto &p = em.params();
    double expect = 2 * p.cacheOpEnergy(CacheLevel::L3,
                                        energy::CacheOp::Read) +
        p.nearPlaceLogicPerBlock;
    EXPECT_DOUBLE_EQ(em.dynamic().dynamicTotal(), expect);
}

TEST_F(NearPlaceTest, NearPlaceCostsMoreThanInPlacePerOp)
{
    // Section IV-J: near-place pays H-tree transfers that in-place
    // avoids; per-block energy must exceed the Table V in-place cost.
    Block a = randomBlock(rng), b = randomBlock(rng);
    unit.execute(CcOpcode::And, CacheLevel::L3, a, b);
    double near_place = em.dynamic().dynamicTotal();
    double in_place = em.params().cacheOpEnergy(CacheLevel::L3,
                                                energy::CacheOp::Logic);
    EXPECT_GT(near_place, 2.0 * in_place);
}

} // namespace
} // namespace ccache::cc
