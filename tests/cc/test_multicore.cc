/**
 * @file
 * Multi-core integration tests: Compute Cache operations interacting
 * with MESI coherence across cores (Section IV-F: CC must not introduce
 * new race conditions) and the DRF-style usage the consistency model
 * assumes (Section IV-G).
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cc/cc_controller.hh"
#include "cc/vector_lsq.hh"
#include "common/rng.hh"

namespace ccache::cc {
namespace {

class MultiCoreTest : public ::testing::Test
{
  protected:
    MultiCoreTest()
        : hier(cache::HierarchyParams{}, &em, &stats),
          ctrl(hier, &em, &stats)
    {
    }

    Block
    pattern(std::uint8_t seed)
    {
        Block b;
        for (std::size_t i = 0; i < kBlockSize; ++i)
            b[i] = static_cast<std::uint8_t>(seed + i * 3);
        return b;
    }

    energy::EnergyModel em;
    StatRegistry stats;
    cache::Hierarchy hier;
    CcController ctrl;
};

TEST_F(MultiCoreTest, ProducerCcConsumerLoad)
{
    // Core 0 produces with a CC copy; core 1 consumes with loads
    // (release/acquire around it in a DRF program). The consumer must
    // see the CC result.
    Block src = pattern(0x11);
    hier.write(0, 0x10000, &src);

    ctrl.execute(0, CcInstruction::copy(0x10000, 0x20000, 64));

    Block out;
    hier.read(1, 0x20000, &out);
    EXPECT_EQ(out, src);
}

TEST_F(MultiCoreTest, ScalarProducerCcConsumer)
{
    // Core 1 stores, core 0 then runs a CC cmp: the staging writebacks
    // (Figure 6) must make the fresh data visible to the in-place op.
    Block a = pattern(0x22);
    hier.write(1, 0x30000, &a);
    hier.write(1, 0x38000, &a);
    ASSERT_EQ(hier.l1(1).state(0x30000), cache::Mesi::Modified);

    auto res = ctrl.execute(0, CcInstruction::cmp(0x30000, 0x38000, 64));
    EXPECT_EQ(res.result & 0xff, 0xffu);

    Block b = pattern(0x23);
    hier.write(1, 0x38000, &b);
    res = ctrl.execute(0, CcInstruction::cmp(0x30000, 0x38000, 64));
    EXPECT_NE(res.result & 0xff, 0xffu);
}

TEST_F(MultiCoreTest, CcWriteInvalidatesRemoteReaders)
{
    Block a = pattern(0x44);
    hier.write(0, 0x40000, &a);
    // Cores 1..3 cache the destination.
    for (CoreId c = 1; c <= 3; ++c)
        hier.read(c, 0x48000);

    ctrl.execute(0, CcInstruction::copy(0x40000, 0x48000, 64));

    for (CoreId c = 1; c <= 3; ++c) {
        EXPECT_FALSE(hier.l1(c).contains(0x48000)) << "core " << c;
        Block out;
        hier.read(c, 0x48000, &out);
        EXPECT_EQ(out, a) << "core " << c;
    }
}

TEST_F(MultiCoreTest, DistinctCoresComputeOnDistinctData)
{
    // Two cores run CC ops on disjoint pages; results are independent
    // and both correct (the controller serves all cores).
    Block a0 = pattern(0x10), a1 = pattern(0x77);
    hier.write(0, 0x50000, &a0);
    hier.write(1, 0x60000, &a1);

    ctrl.execute(0, CcInstruction::logicalNot(0x50000, 0x58000, 64));
    ctrl.execute(1, CcInstruction::logicalNot(0x60000, 0x68000, 64));

    Block e0, e1;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        e0[i] = static_cast<std::uint8_t>(~a0[i]);
        e1[i] = static_cast<std::uint8_t>(~a1[i]);
    }
    EXPECT_EQ(hier.debugRead(0x58000), e0);
    EXPECT_EQ(hier.debugRead(0x68000), e1);
}

TEST_F(MultiCoreTest, SharedSourceStaysCoherentAcrossCcUsers)
{
    // Both cores use the same source operand for CC ops; the source must
    // remain readable and unmodified throughout.
    Block src = pattern(0x3c);
    hier.write(2, 0x70000, &src);

    ctrl.execute(0, CcInstruction::copy(0x70000, 0x78000, 64));
    ctrl.execute(1, CcInstruction::copy(0x70000, 0x79000, 64));

    EXPECT_EQ(hier.debugRead(0x70000), src);
    EXPECT_EQ(hier.debugRead(0x78000), src);
    EXPECT_EQ(hier.debugRead(0x79000), src);
}

TEST_F(MultiCoreTest, RandomizedMultiCoreCcSoak)
{
    // Cores interleave CC copies/xors and scalar accesses over a shared
    // pool; a flat reference model checks every read. Exercises staging
    // writebacks, invalidation, pinning and unpinning under contention.
    Rng rng(31337);
    std::vector<Addr> pool;
    for (unsigned i = 0; i < 16; ++i)
        pool.push_back(0x100000 + i * kPageSize);

    std::vector<Block> ref(pool.size(), zeroBlock());
    auto idx = [&](Addr a) {
        return (a - 0x100000) / kPageSize;
    };

    for (int iter = 0; iter < 1500; ++iter) {
        CoreId core = static_cast<CoreId>(rng.below(4));
        Addr a = pool[rng.below(pool.size())];
        Addr b = pool[rng.below(pool.size())];
        switch (rng.below(4)) {
          case 0: {
            Block data;
            for (auto &byte : data)
                byte = static_cast<std::uint8_t>(rng.below(256));
            hier.write(core, a, &data);
            ref[idx(a)] = data;
            break;
          }
          case 1: {
            Block out;
            hier.read(core, a, &out);
            ASSERT_EQ(out, ref[idx(a)]) << "iter " << iter;
            break;
          }
          case 2: {
            if (a == b)
                break;
            ctrl.execute(core, CcInstruction::copy(a, b, kBlockSize));
            ref[idx(b)] = ref[idx(a)];
            break;
          }
          case 3: {
            if (a == b)
                break;
            ctrl.execute(core,
                         CcInstruction::logicalXor(a, b, b, kBlockSize));
            for (std::size_t i = 0; i < kBlockSize; ++i)
                ref[idx(b)][i] =
                    static_cast<std::uint8_t>(ref[idx(a)][i] ^
                                              ref[idx(b)][i]);
            break;
          }
        }
    }

    for (std::size_t i = 0; i < pool.size(); ++i)
        ASSERT_EQ(hier.debugRead(pool[i]), ref[i]) << "page " << i;
}

TEST_F(MultiCoreTest, FenceSemanticsWithVectorLsq)
{
    // Section IV-G: a fence commits only after all pending scalar and
    // vector operations complete.
    VectorLsq lsq;
    auto s = lsq.insertScalarStore(0x100);
    auto v = lsq.insertVector(CcInstruction::buz(0x2000, 256));
    ASSERT_TRUE(s);
    ASSERT_TRUE(v);
    EXPECT_FALSE(lsq.fenceMayCommit());
    lsq.retireVector(*v);
    EXPECT_FALSE(lsq.fenceMayCommit());
    lsq.retireScalarStore(*s);
    EXPECT_TRUE(lsq.fenceMayCommit());
}

} // namespace
} // namespace ccache::cc
