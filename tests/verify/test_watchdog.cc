/**
 * @file
 * ProgressWatchdog tests: ceiling breaches must throw SimError with the
 * full structured diagnostic (offending transaction, counters, recent
 * events, provider context) instead of hanging or aborting; counters
 * must reset per transaction/instruction; and real seeded stalls — a
 * ring ceiling too low for a remote miss, a CC retry ladder pinned at
 * 100% margin failure — must be caught through the wired hooks.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cc/cc_controller.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/system.hh"
#include "verify/watchdog.hh"

namespace ccache::verify {
namespace {

TEST(Watchdog, RingCeilingFiresOnlyBeyondLimit)
{
    WatchdogParams p;
    p.maxRingMessagesPerTransaction = 2;
    ProgressWatchdog wd(p);

    wd.beginTransaction("read", 0x40);
    EXPECT_NO_THROW(wd.noteRingMessage(0, 1));
    EXPECT_NO_THROW(wd.noteRingMessage(1, 2));
    EXPECT_THROW(wd.noteRingMessage(2, 3), SimError);
    EXPECT_EQ(wd.stallsDetected(), 1u);
}

TEST(Watchdog, CountersResetPerTransactionAndInstruction)
{
    WatchdogParams p;
    p.maxRingMessagesPerTransaction = 2;
    p.maxDirectoryOpsPerTransaction = 2;
    p.maxRetriesPerInstruction = 2;
    ProgressWatchdog wd(p);

    // Staying at the ceiling across many transactions never fires: the
    // ceilings bound one transaction phase, not the whole run.
    for (int i = 0; i < 8; ++i) {
        wd.beginTransaction("write", 0x1000 + 64 * i);
        EXPECT_NO_THROW(wd.noteRingMessage(0, 1));
        EXPECT_NO_THROW(wd.noteRingMessage(1, 0));
        EXPECT_NO_THROW(wd.noteDirectoryOp("addSharer", 0x1000));
        EXPECT_NO_THROW(wd.noteDirectoryOp("setOwner", 0x1000));
    }
    for (int i = 0; i < 8; ++i) {
        wd.beginInstruction("cc_and");
        EXPECT_NO_THROW(wd.noteRetry("lock", 0x2000));
        EXPECT_NO_THROW(wd.noteRetry("sense", 0x2000));
    }
    EXPECT_EQ(wd.stallsDetected(), 0u);
}

TEST(Watchdog, DirectoryAndRetryCeilingsFire)
{
    WatchdogParams p;
    p.maxDirectoryOpsPerTransaction = 1;
    p.maxRetriesPerInstruction = 1;
    ProgressWatchdog wd(p);

    wd.beginTransaction("fetch", 0x80);
    wd.noteDirectoryOp("addSharer", 0x80);
    EXPECT_THROW(wd.noteDirectoryOp("removeSharer", 0x80), SimError);

    wd.beginInstruction("cc_copy");
    wd.noteRetry("sense", 0x80);
    EXPECT_THROW(wd.noteRetry("sense", 0x80), SimError);
    EXPECT_EQ(wd.stallsDetected(), 2u);
}

TEST(Watchdog, StallDiagnosticIsStructured)
{
    WatchdogParams p;
    p.maxRingMessagesPerTransaction = 1;
    p.recentEventCapacity = 4;
    ProgressWatchdog wd(p);
    wd.setContextProvider([]() {
        Json ctx = Json::object();
        ctx["pending"] = 7;
        return ctx;
    });

    wd.beginTransaction("read", 0xbeefc0);
    wd.noteRingMessage(0, 1);
    try {
        wd.noteRingMessage(1, 2);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("watchdog"),
                  std::string::npos);
        std::string perr;
        Json d = Json::parse(e.diagnostic(), &perr);
        ASSERT_TRUE(perr.empty()) << perr;
        EXPECT_EQ(d["stalled_bound"].asString(),
                  "ring_messages_per_transaction");
        EXPECT_EQ(d["transaction"]["kind"].asString(), "read");
        EXPECT_EQ(d["transaction"]["addr"].asString(), "0xbeefc0");
        EXPECT_GT(d["counters"]["ring_messages_in_transaction"]
                      .asNumber(),
                  1.0);
        EXPECT_GT(d["recent_events"].size(), 0u);
        EXPECT_EQ(d["context"]["pending"].asNumber(), 7.0);
    }
}

TEST(Watchdog, RecentEventWindowIsBounded)
{
    WatchdogParams p;
    p.recentEventCapacity = 3;
    ProgressWatchdog wd(p);
    for (int i = 0; i < 10; ++i)
        wd.beginTransaction("read", 0x40 * i);
    EXPECT_EQ(wd.diagnostic()["recent_events"].size(), 3u);
}

TEST(Watchdog, SeededRingStallCaughtThroughSystem)
{
    sim::SystemConfig cfg;
    cfg.verify.watchdog = true;
    // A remote L3 miss legally needs a handful of ring messages; a
    // ceiling of 1 turns that into a seeded "livelock".
    cfg.verify.watchdogParams.maxRingMessagesPerTransaction = 1;
    sim::System sys(cfg);
    ASSERT_NE(sys.watchdog(), nullptr);

    sys.hierarchy().mapPage(0x100000, 4);   // page homed away from core 0
    EXPECT_THROW(sys.hierarchy().read(0, 0x100000), SimError);
    EXPECT_EQ(sys.watchdog()->stallsDetected(), 1u);

    // The diagnostic snapshot names the transaction that stalled and
    // carries the System context provider's machine state.
    Json d = sys.watchdog()->diagnostic();
    EXPECT_EQ(d["transaction"]["kind"].asString(), "read");
    EXPECT_FALSE(d["context"]["directory_tracked_blocks"].isNull());
}

TEST(Watchdog, SeededRetryLadderStallCaughtThroughController)
{
    // Pin the fault injector at 100% margin failure: every dual-row op
    // walks the full retry ladder, overflowing a tiny retry ceiling.
    cc::CcControllerParams params;
    params.faults.enabled = true;
    params.faults.seed = 7;
    params.faults.marginFailPerDualRowOp = 1.0;

    energy::EnergyModel em;
    StatRegistry stats;
    cache::Hierarchy hier(cache::HierarchyParams{}, &em, &stats);
    cc::CcController ctrl(hier, &em, &stats, params);

    WatchdogParams wp;
    wp.maxRetriesPerInstruction = 4;
    ProgressWatchdog wd(wp);
    ctrl.setWatchdog(&wd);

    constexpr std::size_t kLen = 2048;
    Rng rng(1);
    std::vector<std::uint8_t> data(kLen);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    hier.memory().writeBytes(0x10000, data.data(), kLen);
    hier.memory().writeBytes(0x20000, data.data(), kLen);

    EXPECT_THROW(ctrl.execute(0, cc::CcInstruction::logicalAnd(
                                     0x10000, 0x20000, 0x30000, kLen)),
                 SimError);
    EXPECT_EQ(wd.stallsDetected(), 1u);

    // The same ladder under the default (generous) ceiling completes.
    energy::EnergyModel em2;
    StatRegistry stats2;
    cache::Hierarchy hier2(cache::HierarchyParams{}, &em2, &stats2);
    cc::CcController ctrl2(hier2, &em2, &stats2, params);
    ProgressWatchdog wd2;
    ctrl2.setWatchdog(&wd2);
    hier2.memory().writeBytes(0x10000, data.data(), kLen);
    hier2.memory().writeBytes(0x20000, data.data(), kLen);
    EXPECT_NO_THROW(ctrl2.execute(
        0, cc::CcInstruction::logicalAnd(0x10000, 0x20000, 0x30000,
                                         kLen)));
    EXPECT_EQ(wd2.stallsDetected(), 0u);
}

TEST(Watchdog, DefaultCeilingsStayQuietUnderNormalTraffic)
{
    sim::SystemConfig cfg;
    cfg.verify.watchdog = true;
    sim::System sys(cfg);

    constexpr std::size_t kLen = 1024;
    std::vector<std::uint8_t> a(kLen, 0xaa), b(kLen, 0x55);
    sys.load(0x10000, a.data(), kLen);
    sys.load(0x20000, b.data(), kLen);

    Block blk{};
    for (CoreId c = 0; c < sys.hierarchy().cores(); ++c) {
        sys.hierarchy().write(c, 0x40000, &blk);
        sys.hierarchy().read((c + 1) % sys.hierarchy().cores(), 0x40000);
    }
    sys.cc().execute(0, cc::CcInstruction::logicalAnd(0x10000, 0x20000,
                                                      0x30000, kLen));
    EXPECT_EQ(sys.watchdog()->stallsDetected(), 0u);
}

} // namespace
} // namespace ccache::verify
