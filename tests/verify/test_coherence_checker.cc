/**
 * @file
 * CoherenceChecker tests: clean traffic (including CC ops and flushes)
 * must audit green, and seeded protocol mutations — a forged second
 * writable copy, M+S coexistence, a desynced directory sharer bit, an
 * inclusion break — must each be detected and raised as SimError with
 * a structured diagnostic.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "cache/hierarchy.hh"
#include "cc/cc_controller.hh"
#include "common/logging.hh"
#include "sim/system.hh"
#include "verify/coherence_checker.hh"

namespace ccache::verify {
namespace {

/** Hierarchy + checker, auditing every transaction. */
struct Probe
{
    Probe() : hier(cache::HierarchyParams{}, &em, &stats)
    {
        CoherenceCheckerParams p;
        p.auditInterval = 1;
        checker = std::make_unique<CoherenceChecker>(hier, p);
        hier.setChecker(checker.get());
    }

    bool
    has(const std::vector<CoherenceViolation> &v, const char *invariant)
    {
        for (const auto &one : v)
            if (one.invariant == invariant)
                return true;
        return false;
    }

    energy::EnergyModel em;
    StatRegistry stats;
    cache::Hierarchy hier;
    std::unique_ptr<CoherenceChecker> checker;
};

constexpr Addr kA = 0x10000;
constexpr Addr kB = 0x20000;

TEST(CoherenceChecker, CleanSharingTrafficAuditsGreen)
{
    Probe p;
    Block data{};
    // Write/read sharing churn across all cores: M -> S downgrades,
    // invalidations on upgrade, evictions. Every transaction is audited
    // through the hierarchy hook (auditInterval = 1) and must not throw.
    for (unsigned round = 0; round < 4; ++round) {
        for (CoreId c = 0; c < p.hier.cores(); ++c) {
            p.hier.write(c, kA + 64 * round, &data);
            p.hier.read((c + 1) % p.hier.cores(), kA + 64 * round);
            p.hier.read((c + 3) % p.hier.cores(), kB + 64 * c);
        }
    }
    EXPECT_TRUE(p.checker->auditAll().empty());
    EXPECT_GT(p.checker->checksRun(), 0u);
    EXPECT_GT(p.checker->fullAudits(), 0u);
    EXPECT_NO_THROW(p.checker->checkNow());
}

TEST(CoherenceChecker, ForgedSecondWritableCopyDetected)
{
    Probe p;
    Block data{};
    p.hier.write(0, kA, &data);   // core 0 legitimately owns kA (M)

    // Mutation: forge a second Modified copy on core 1, bypassing the
    // coherence protocol entirely.
    p.hier.l2(1).fill(kA, data, cache::Mesi::Modified);
    p.hier.l1(1).fill(kA, data, cache::Mesi::Modified);

    auto v = p.checker->auditAddr(kA);
    EXPECT_TRUE(p.has(v, "swmr")) << "two writable cores must violate SWMR";
    EXPECT_THROW(p.checker->onTransaction(kA), SimError);
}

TEST(CoherenceChecker, WritableSharedCoexistenceDetected)
{
    Probe p;
    Block data{};
    p.hier.write(0, kA, &data);

    // Mutation: a stale Shared copy appears while core 0 still holds M
    // — as if an invalidation was dropped on the floor.
    p.hier.l2(1).fill(kA, data, cache::Mesi::Shared);

    auto v = p.checker->auditAddr(kA);
    EXPECT_TRUE(p.has(v, "swmr.m_plus_s"));
    EXPECT_THROW(p.checker->onTransaction(kA), SimError);
}

TEST(CoherenceChecker, DirectorySharerDesyncDetected)
{
    Probe p;
    p.hier.read(0, kA);   // core 0 holds a Shared/Exclusive copy
    auto home = p.hier.homeSliceIfMapped(kA);
    ASSERT_TRUE(home.has_value());

    // Mutation: the directory forgets core 0's copy while the cached
    // line survives — the presence vector is now under-approximating.
    p.hier.directory(*home).removeSharer(kA, 0);

    auto v = p.checker->auditAddr(kA);
    EXPECT_TRUE(p.has(v, "dir.missing_sharer"));
    EXPECT_THROW(p.checker->onTransaction(kA), SimError);
}

TEST(CoherenceChecker, InclusionBreakDetected)
{
    Probe p;
    p.hier.read(0, kA);   // fills L1 and L2 of core 0

    // Mutation: drop the L2 copy underneath a live L1 line.
    p.hier.l2(0).invalidate(kA);

    auto v = p.checker->auditAddr(kA);
    EXPECT_TRUE(p.has(v, "inclusion.l1_l2"));
    EXPECT_THROW(p.checker->onTransaction(kA), SimError);
}

TEST(CoherenceChecker, ViolationCarriesStructuredDiagnostic)
{
    Probe p;
    Block data{};
    p.hier.write(0, kA, &data);
    p.hier.l2(1).fill(kA, data, cache::Mesi::Modified);
    p.hier.l1(1).fill(kA, data, cache::Mesi::Modified);

    try {
        p.checker->onTransaction(kA);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("coherence violation"),
                  std::string::npos);
        std::string perr;
        Json d = Json::parse(e.diagnostic(), &perr);
        ASSERT_TRUE(perr.empty()) << perr;
        EXPECT_GT(d["coherence_violations"].asNumber(), 0.0);
        ASSERT_GT(d["violations"].size(), 0u);
        const Json &first = d["violations"].asArray().front();
        EXPECT_FALSE(first.find("invariant")->asString().empty());
        EXPECT_FALSE(first.find("detail")->asString().empty());
    }
}

TEST(CoherenceChecker, SampledFullAuditCatchesUntouchedAddress)
{
    // The forged violation sits at kA, but the next transaction touches
    // kB: only the sampled full audit can catch it.
    Probe p;
    Block data{};
    p.hier.write(0, kA, &data);
    p.hier.read(1, kB);
    p.hier.l2(1).fill(kA, data, cache::Mesi::Modified);

    EXPECT_THROW(p.hier.read(2, kB + 64), SimError);
}

TEST(CoherenceChecker, SystemWiringAuditsCcOpsAndFlush)
{
    sim::SystemConfig cfg;
    cfg.verify.coherenceChecker = true;
    cfg.verify.checker.auditInterval = 1;
    sim::System sys(cfg);
    ASSERT_NE(sys.coherenceChecker(), nullptr);

    constexpr std::size_t kLen = 1024;
    std::vector<std::uint8_t> a(kLen, 0x5a), b(kLen, 0x33);
    sys.load(0x10000, a.data(), kLen);
    sys.load(0x20000, b.data(), kLen);

    // CC op + ordinary traffic + flush, all under continuous audit.
    EXPECT_NO_THROW(sys.cc().execute(
        0, cc::CcInstruction::logicalAnd(0x10000, 0x20000, 0x30000,
                                         kLen)));
    Block blk{};
    EXPECT_NO_THROW(sys.hierarchy().write(1, 0x40000, &blk));
    EXPECT_NO_THROW(sys.hierarchy().read(2, 0x40000));
    EXPECT_NO_THROW(sys.hierarchy().flushAll());

    EXPECT_GT(sys.coherenceChecker()->checksRun(), 0u);

    Json report = sys.coherenceChecker()->overheadReport();
    EXPECT_GT(report["checks"].asNumber(), 0.0);
    EXPECT_GE(report["wall_seconds"].asNumber(), 0.0);
    EXPECT_GE(report["mean_us_per_check"].asNumber(), 0.0);
}

TEST(CoherenceChecker, EnvVarForcesCheckerOn)
{
    ::setenv("CCACHE_VERIFY_COHERENCE", "1", 1);
    sim::System forced;
    EXPECT_NE(forced.coherenceChecker(), nullptr);
    ::unsetenv("CCACHE_VERIFY_COHERENCE");

    sim::System plain;
    EXPECT_EQ(plain.coherenceChecker(), nullptr);
}

} // namespace
} // namespace ccache::verify
