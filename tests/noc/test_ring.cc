/**
 * @file
 * Unit tests for the ring interconnect model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "noc/ring.hh"

namespace ccache::noc {
namespace {

RingParams
noMinHops()
{
    RingParams p;
    p.minHops = 0;
    return p;
}

TEST(Ring, ShortestPathDistance)
{
    Ring ring(RingParams{}, nullptr, nullptr);
    EXPECT_EQ(ring.distance(0, 0), 0u);
    EXPECT_EQ(ring.distance(0, 1), 1u);
    EXPECT_EQ(ring.distance(0, 4), 4u);   // antipodal on 8 nodes
    EXPECT_EQ(ring.distance(0, 7), 1u);   // wraps the short way
    EXPECT_EQ(ring.distance(6, 1), 3u);
    EXPECT_EQ(ring.distance(3, 3), 0u);
}

TEST(Ring, LocalDeliveryIsFreeWithoutMinHops)
{
    Ring ring(noMinHops(), nullptr, nullptr);
    EXPECT_EQ(ring.send(2, 2, MsgClass::Data), 0u);
    EXPECT_EQ(ring.flitHops(), 0u);
}

TEST(Ring, LocalSliceStillCrossesRingInterface)
{
    // Default minHops = 1: even the core's local slice sits behind its
    // ring stop, so local L3 traffic pays one hop.
    Ring ring(RingParams{}, nullptr, nullptr);
    EXPECT_GT(ring.send(2, 2, MsgClass::Data), 0u);
}

TEST(Ring, LatencyIsHopsTimesLatencyPlusSerialization)
{
    RingParams p = noMinHops();  // hopLatency=3, linkBytes=32
    Ring ring(p, nullptr, nullptr);
    // Control: 8 bytes -> 1 cycle serialization.
    EXPECT_EQ(ring.send(0, 2, MsgClass::Control), 2u * 3u + 1u);
    // Data: 72 bytes -> ceil(72/32)=3 cycles serialization.
    EXPECT_EQ(ring.send(0, 1, MsgClass::Data), 3u + 3u);
}

TEST(Ring, ChargesEnergyPerFlitHop)
{
    energy::EnergyModel em;
    StatRegistry stats;
    Ring ring(noMinHops(), &em, &stats);
    ring.send(0, 2, MsgClass::Data);  // 72B = 9 flits, 2 hops
    double expected = em.params().nocPerFlitHop * 9 * 2;
    EXPECT_DOUBLE_EQ(em.dynamic().noc, expected);
    EXPECT_EQ(stats.value("noc.flit_hops"), 18u);
    EXPECT_EQ(ring.flitHops(), 18u);
}

TEST(Ring, MessageBytes)
{
    EXPECT_EQ(messageBytes(MsgClass::Control), 8u);
    EXPECT_EQ(messageBytes(MsgClass::Data), 72u);
}

TEST(Ring, RejectsEmptyRing)
{
    RingParams p;
    p.nodes = 0;
    EXPECT_THROW((void)Ring(p, nullptr, nullptr), FatalError);
}

} // namespace
} // namespace ccache::noc
