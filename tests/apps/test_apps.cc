/**
 * @file
 * Application-level integration tests: every re-designed application of
 * Section VI-B must be functionally identical across the Base, Base_32
 * and Compute Cache engines, and the CC versions must show the paper's
 * instruction-reduction and efficiency relations.
 */

#include <gtest/gtest.h>

#include "apps/bmm.hh"
#include "apps/checkpoint.hh"
#include "apps/dbbitmap.hh"
#include "apps/stringmatch.hh"
#include "apps/wordcount.hh"

namespace ccache::apps {
namespace {

TEST(WordCountApp, AllEnginesMatchReference)
{
    WordCountConfig cfg;
    cfg.corpusBytes = 24 * 1024;
    cfg.text.vocabulary = 800;
    WordCount app(cfg);
    std::uint64_t ref = WordCount::checksumOf(app.reference());

    for (Engine e : {Engine::Base, Engine::Base32, Engine::Cc}) {
        sim::System sys;
        auto res = app.run(sys, e);
        EXPECT_EQ(res.checksum, ref) << toString(e);
        EXPECT_GT(res.cycles, 0u);
    }
}

TEST(WordCountApp, CcReducesInstructionsSharply)
{
    // Section VI-E: the CAM reformulation removes the binary search's
    // bookkeeping (87% fewer instructions in the paper).
    WordCountConfig cfg;
    cfg.corpusBytes = 24 * 1024;
    cfg.text.vocabulary = 800;
    WordCount app(cfg);

    sim::System base_sys, cc_sys;
    auto base = app.run(base_sys, Engine::Base32);
    auto cc = app.run(cc_sys, Engine::Cc);
    EXPECT_LT(cc.instructions, base.instructions / 3);
}

TEST(StringMatchApp, EnginesAgreeAndCcSavesInstructions)
{
    StringMatchConfig cfg;
    cfg.textBytes = 16 * 1024;
    StringMatch app(cfg);

    sim::System base_sys, cc_sys;
    auto base = app.run(base_sys, Engine::Base32);
    auto cc = app.run(cc_sys, Engine::Cc);
    EXPECT_EQ(base.checksum, cc.checksum);
    // Paper: 32% instruction reduction for StringMatch.
    EXPECT_LT(cc.instructions, base.instructions);
    // Matches actually occurred (keys drawn from the vocabulary).
    std::uint64_t total = 0;
    for (auto m : app.referenceMatches())
        total += m;
    EXPECT_GT(total, 0u);
}

TEST(StringMatchApp, EncryptIsDeterministicAndSpreads)
{
    Block a = StringMatch::encrypt("hello");
    Block b = StringMatch::encrypt("hello");
    Block c = StringMatch::encrypt("hellp");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(DbBitmapApp, QueriesVerifiedOnAllEngines)
{
    DbBitmapConfig cfg;
    cfg.index.rows = 1 << 15;
    cfg.numQueries = 5;
    DbBitmap app(cfg);

    std::uint64_t checks[3];
    int i = 0;
    for (Engine e : {Engine::Base, Engine::Base32, Engine::Cc}) {
        sim::System sys;
        auto res = app.run(sys, e);  // asserts every query internally
        checks[i++] = res.checksum;
        EXPECT_GT(app.avgQueryCycles(), 0.0);
    }
    EXPECT_EQ(checks[0], checks[1]);
    EXPECT_EQ(checks[1], checks[2]);
}

TEST(DbBitmapApp, CcBeatsBaselineOnQueries)
{
    DbBitmapConfig cfg;
    cfg.index.rows = 1 << 16;
    cfg.numQueries = 4;
    DbBitmap app(cfg);

    sim::System base_sys, cc_sys;
    auto base = app.run(base_sys, Engine::Base32);
    auto cc = app.run(cc_sys, Engine::Cc);
    EXPECT_LT(cc.cycles, base.cycles);
    EXPECT_LT(cc.instructions, base.instructions);
}

TEST(DbBitmapApp, ParallelQueriesMatchSerialAndScale)
{
    DbBitmapConfig cfg;
    cfg.index.rows = 1 << 15;
    cfg.numQueries = 8;
    DbBitmap app(cfg);

    sim::System serial_sys, par_sys;
    auto serial = app.run(serial_sys, Engine::Cc);
    auto parallel = app.runParallel(par_sys, Engine::Cc, 4);

    // Same answers regardless of parallelization.
    EXPECT_EQ(serial.checksum, parallel.checksum);
    // Four cores over independent queries must beat one core clearly.
    EXPECT_LT(parallel.cycles * 2, serial.cycles);
}

TEST(BmmApp, ReferenceMultiplyProperties)
{
    // Identity: I x A == A.
    BitMatrix a(64), eye(64);
    Rng rng(5);
    for (std::size_t i = 0; i < 64; ++i) {
        eye.set(i, i, true);
        for (std::size_t j = 0; j < 64; ++j)
            a.set(i, j, rng.chance(0.5));
    }
    EXPECT_EQ(BitMatrix::multiply(eye, a), a);
    EXPECT_EQ(BitMatrix::multiply(a, eye), a);
    // Transpose involution.
    EXPECT_EQ(a.transposed().transposed(), a);
}

TEST(BmmApp, AllEnginesComputeTheProduct)
{
    BmmConfig cfg;
    cfg.n = 128;
    Bmm app(cfg);
    for (Engine e : {Engine::Base32, Engine::Cc}) {
        sim::System sys;
        auto res = app.run(sys, e);  // asserts result == expected
        EXPECT_GT(res.cycles, 0u);
        EXPECT_EQ(app.computed(), app.expected());
    }
}

TEST(BmmApp, CcCutsInstructionsByOrderOfMagnitude)
{
    // Paper: 98% instruction reduction for BMM.
    BmmConfig cfg;
    cfg.n = 128;
    Bmm app(cfg);
    sim::System base_sys, cc_sys;
    auto base = app.run(base_sys, Engine::Base32);
    auto cc = app.run(cc_sys, Engine::Cc);
    EXPECT_LT(cc.instructions, base.instructions / 10);
}

TEST(CheckpointApp, OverheadOrderingAcrossEngines)
{
    // Figure 10: Base > Base_32 >> CC for every benchmark.
    CheckpointConfig cfg;
    cfg.intervals = 8;
    Checkpoint ck(workload::SplashApp::Cholesky, cfg);

    double overhead[3];
    int i = 0;
    for (Engine e : {Engine::Base, Engine::Base32, Engine::Cc}) {
        sim::System sys;
        auto res = ck.run(sys, e);
        overhead[i++] = res.overheadPct();
        EXPECT_GT(res.pagesCopied, 0u);
    }
    EXPECT_GT(overhead[0], overhead[1]);
    EXPECT_GT(overhead[1], 2.0 * overhead[2]);
}

TEST(CheckpointApp, NoCheckpointingRunHasZeroOverheadCycles)
{
    CheckpointConfig cfg;
    cfg.intervals = 4;
    Checkpoint ck(workload::SplashApp::Fmm, cfg);
    sim::System sys;
    auto res = ck.run(sys, Engine::Base32, /*checkpointing=*/false);
    EXPECT_EQ(res.checkpointCycles, 0u);
    EXPECT_EQ(res.pagesCopied, 0u);
    EXPECT_DOUBLE_EQ(res.overheadPct(), 0.0);
}

TEST(CheckpointApp, CopiesAreVerifiedSpotChecks)
{
    // run() asserts shadow == source for every page; survival of the
    // run is the check, on the most write-heavy app.
    CheckpointConfig cfg;
    cfg.intervals = 6;
    Checkpoint ck(workload::SplashApp::Radix, cfg);
    sim::System sys;
    auto res = ck.run(sys, Engine::Cc);
    EXPECT_GT(res.pagesCopied, 0u);
}

} // namespace
} // namespace ccache::apps
