/**
 * @file
 * Quantized-GEMM application tests: the bit-serial CC engine must
 * reproduce the int8 x int8 -> int32 reference product bit-exactly on
 * every engine, and the neural_gemm sweep must be byte-identical at 1,
 * 2 and 8 worker threads (DESIGN.md §8).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/gemm.hh"
#include "bench/bench_util.hh"

namespace ccache::apps {
namespace {

QuantGemmConfig
smallConfig()
{
    QuantGemmConfig cfg;
    cfg.m = 2;
    cfg.k = 4;
    cfg.n = 512;
    return cfg;
}

TEST(QuantGemmApp, AllEnginesMatchReference)
{
    QuantGemm app(smallConfig());
    std::uint64_t checks[3];
    int i = 0;
    for (Engine e : {Engine::Base, Engine::Base32, Engine::Cc}) {
        sim::System sys;
        auto res = app.run(sys, e);  // asserts computed == expected
        checks[i++] = res.checksum;
        EXPECT_GT(res.cycles, 0u) << toString(e);
        EXPECT_EQ(app.computed(), app.expected()) << toString(e);
    }
    EXPECT_EQ(checks[0], checks[1]);
    EXPECT_EQ(checks[1], checks[2]);
}

TEST(QuantGemmApp, SignedOperandsExerciseWraparound)
{
    // A seed chosen so A and B contain negative values (they always do
    // at 256-way uniform draws); the mod-2^32 bit-serial accumulation
    // must equal the signed int32 reference for every element.
    QuantGemmConfig cfg = smallConfig();
    cfg.seed = 7;
    QuantGemm app(cfg);
    bool has_negative = false;
    for (std::int8_t v : app.a())
        has_negative |= v < 0;
    ASSERT_TRUE(has_negative);
    bool has_negative_out = false;
    for (std::int32_t v : app.expected())
        has_negative_out |= v < 0;
    ASSERT_TRUE(has_negative_out);

    sim::System sys;
    app.run(sys, Engine::Cc);
    EXPECT_EQ(app.computed(), app.expected());
}

TEST(QuantGemmApp, MultiGroupColumnsComputeCorrectly)
{
    QuantGemmConfig cfg = smallConfig();
    cfg.n = 1024;  // two 512-lane groups per slice row
    QuantGemm app(cfg);
    sim::System sys;
    auto res = app.run(sys, Engine::Cc);
    EXPECT_EQ(app.computed(), app.expected());
    EXPECT_GT(res.instructions, 0u);
}

TEST(QuantGemmApp, CcReducesInstructions)
{
    QuantGemmConfig cfg;  // default 4 x 16 x 512
    QuantGemm app(cfg);
    sim::System base_sys, cc_sys;
    auto base = app.run(base_sys, Engine::Base);
    auto cc = app.run(cc_sys, Engine::Cc);
    EXPECT_EQ(base.checksum, cc.checksum);
    // The bit-serial MAC replaces per-element core work with one
    // instruction stream per (i, kk) pair.
    EXPECT_LT(cc.instructions, base.instructions);
}

/** The neural_gemm sweep body, as the bench runs it (sans printing). */
std::string
runGemmSweepAt(unsigned jobs)
{
    bench::ResultsWriter results("neural_gemm_probe");
    bench::SweepRunner sweep(&results);
    std::vector<double> checksums(2);
    std::size_t i = 0;
    for (std::size_t n : {512u, 1024u}) {
        std::string key = "n" + std::to_string(n);
        std::size_t slot = i++;
        sweep.add(key, [&, key, slot, n](bench::SweepContext &ctx) {
            QuantGemmConfig cfg;
            cfg.m = 2;
            cfg.k = 4;
            cfg.n = n;
            cfg.seed = ctx.seed();
            QuantGemm app(cfg);
            AppRunResult base, cc;
            {
                sim::System sys;
                base = app.run(sys, Engine::Base32);
            }
            {
                sim::System sys;
                cc = app.run(sys, Engine::Cc);
            }
            checksums[slot] = static_cast<double>(cc.checksum);
            ctx.metric(key + ".speedup",
                       static_cast<double>(base.cycles) /
                           static_cast<double>(cc.cycles));
            ctx.metric(key + ".functional_match",
                       base.checksum == cc.checksum ? 1 : 0);
        });
    }
    sweep.run(jobs);
    EXPECT_EQ(sweep.errorCount(), 0u);
    return results.document().dump(2);
}

TEST(QuantGemmApp, SweepByteIdenticalAcrossThreadCounts)
{
    std::string serial = runGemmSweepAt(1);
    EXPECT_EQ(serial, runGemmSweepAt(2));
    EXPECT_EQ(serial, runGemmSweepAt(8));
}

} // namespace
} // namespace ccache::apps
