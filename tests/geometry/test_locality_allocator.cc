/**
 * @file
 * Tests for the locality-aware allocator extension: every allocation in
 * a group must be pairwise operand-local on every paper geometry.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "geometry/cache_geometry.hh"
#include "geometry/locality_allocator.hh"
#include "geometry/operand_locality.hh"

namespace ccache::geometry {
namespace {

TEST(LocalityAllocator, PlainAllocationsAreBlockAligned)
{
    LocalityAllocator alloc(0x100000, 1 << 20);
    Addr a = alloc.allocate(100);
    Addr b = alloc.allocate(64);
    EXPECT_EQ(a % kBlockSize, 0u);
    EXPECT_EQ(b % kBlockSize, 0u);
    EXPECT_GE(b, a + 128);  // 100 rounded up to 128
}

TEST(LocalityAllocator, GroupMembersSharePageOffset)
{
    LocalityAllocator alloc(0x200000, 4 << 20);
    Addr a = alloc.allocate(4096, /*group=*/1);
    alloc.allocate(777);  // unrelated allocation shifts the bump pointer
    Addr b = alloc.allocate(4096, 1);
    Addr c = alloc.allocate(64, 1);
    EXPECT_TRUE(pageAligned(a, b));
    EXPECT_TRUE(pageAligned(a, c));
    EXPECT_EQ(alloc.groupOffset(1), a & (kPageSize - 1));
}

TEST(LocalityAllocator, GroupsImplyOperandLocalityOnAllGeometries)
{
    LocalityAllocator alloc(0x400000, 16 << 20);
    std::vector<Addr> buffers;
    for (int i = 0; i < 6; ++i) {
        buffers.push_back(alloc.allocate(2048, 7));
        alloc.allocate(100 + 64 * i);  // interleave unrelated traffic
    }
    for (auto params :
         {CacheGeometryParams::l1d(), CacheGeometryParams::l2(),
          CacheGeometryParams::l3Slice()}) {
        CacheGeometry geom(params);
        EXPECT_TRUE(haveOperandLocality(geom, buffers));
    }
}

TEST(LocalityAllocator, IndependentGroupsGetIndependentOffsets)
{
    LocalityAllocator alloc(0x600000, 4 << 20);
    alloc.allocate(100);  // skew the pointer so offsets differ
    Addr a = alloc.allocate(64, 1);
    Addr b = alloc.allocate(64, 2);
    EXPECT_EQ(alloc.groupOffset(1), a & (kPageSize - 1));
    EXPECT_EQ(alloc.groupOffset(2), b & (kPageSize - 1));
    EXPECT_EQ(alloc.groupOffset(99), ~Addr{0});
}

TEST(LocalityAllocator, TracksPadding)
{
    LocalityAllocator alloc(0x800000, 4 << 20);
    alloc.allocate(4096, 3);    // defines offset
    alloc.allocate(64);          // moves pointer past the offset
    std::size_t before = alloc.padding();
    alloc.allocate(4096, 3);     // must skip to the next page's offset
    EXPECT_GT(alloc.padding(), before);
}

TEST(LocalityAllocator, ExhaustionIsFatal)
{
    LocalityAllocator alloc(0xa00000, kPageSize);
    alloc.allocate(2048);
    EXPECT_THROW(alloc.allocate(4096), FatalError);
}

TEST(LocalityAllocator, RejectsMisalignedBase)
{
    EXPECT_THROW((void)LocalityAllocator(0x1001, 1 << 20), FatalError);
    EXPECT_THROW((void)LocalityAllocator(0x1000, 100), FatalError);
}

TEST(LocalityAllocator, FreeCoalescesAndRecycles)
{
    LocalityAllocator alloc(0x100000, 1 << 20);
    Addr a = alloc.allocate(256);
    Addr b = alloc.allocate(256);
    Addr c = alloc.allocate(256);
    (void)c;
    alloc.free(a, 256);
    alloc.free(b, 256);   // adjacent: coalesces with [a, a+256)
    EXPECT_EQ(alloc.freeBytes(), 512u);
    // A 512-byte request only fits the free list if the ranges merged.
    Addr d = alloc.allocate(512);
    EXPECT_EQ(d, a);
    EXPECT_EQ(alloc.reuses(), 1u);
    EXPECT_EQ(alloc.freeBytes(), 0u);
}

TEST(LocalityAllocator, DoubleFreeIsFatal)
{
    LocalityAllocator alloc(0x100000, 1 << 20);
    Addr a = alloc.allocate(128);
    alloc.free(a, 128);
    EXPECT_THROW(alloc.free(a, 128), FatalError);
}

/** Serving-layer churn: request-rate allocate/free cycles must neither
 *  leak free-list bytes nor break the group page-offset contract. */
TEST(LocalityAllocator, ChurnPreservesGroupOffsetsAndBalance)
{
    LocalityAllocator alloc(0x400000, 8 << 20);
    // Pin down each group's offset first.
    Addr off[4];
    std::vector<std::pair<Addr, std::size_t>> warm;
    for (GroupId g = 0; g < 4; ++g) {
        warm.emplace_back(alloc.allocate(64, g), 64);
        off[g] = alloc.groupOffset(g);
    }
    std::size_t resting_free = alloc.freeBytes();
    for (int round = 0; round < 200; ++round) {
        GroupId g = static_cast<GroupId>(round % 4);
        std::size_t bytes = 64 + 64 * (round % 13);
        std::vector<std::pair<Addr, std::size_t>> live;
        for (int i = 0; i < 3; ++i) {
            Addr a = alloc.allocate(bytes, g);
            EXPECT_EQ(a & (kPageSize - 1), off[g]) << "round " << round;
            live.emplace_back(a, bytes);
        }
        // Free out of allocation order to fragment the list.
        alloc.free(live[1].first, live[1].second);
        alloc.free(live[0].first, live[0].second);
        alloc.free(live[2].first, live[2].second);
        EXPECT_GE(alloc.freeBytes(), resting_free);
    }
    EXPECT_GT(alloc.reuses(), 0u);
    for (auto &[a, n] : warm)
        alloc.free(a, n);
    // Everything ever handed out is back on the free list; only
    // alignment padding is unaccounted for. A drifting freeBytes_
    // (double-count or leak on coalesce) breaks this balance.
    EXPECT_EQ(alloc.freeBytes(), alloc.used() - alloc.padding());
}

/** Fragmentation: a free-list hole with the wrong page offset is
 *  skipped for a group allocation but still serves plain requests. */
TEST(LocalityAllocator, FragmentedHolesRespectGroupConstraint)
{
    LocalityAllocator alloc(0x600000, 4 << 20);
    Addr g0 = alloc.allocate(256, 0);          // defines offset for group 0
    alloc.allocate(64);                        // shift the bump pointer
    Addr stray = alloc.allocate(192);          // offset != group 0's
    ASSERT_NE(stray & (kPageSize - 1), alloc.groupOffset(0));
    alloc.free(stray, 192);
    // Group allocation must NOT take the misaligned hole.
    Addr g1 = alloc.allocate(192, 0);
    EXPECT_EQ(g1 & (kPageSize - 1), alloc.groupOffset(0));
    EXPECT_NE(g1, stray);
    // A plain allocation happily recycles it.
    Addr p = alloc.allocate(192);
    EXPECT_EQ(p, stray);
    (void)g0;
}

} // namespace
} // namespace ccache::geometry
