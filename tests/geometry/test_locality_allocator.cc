/**
 * @file
 * Tests for the locality-aware allocator extension: every allocation in
 * a group must be pairwise operand-local on every paper geometry.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "geometry/cache_geometry.hh"
#include "geometry/locality_allocator.hh"
#include "geometry/operand_locality.hh"

namespace ccache::geometry {
namespace {

TEST(LocalityAllocator, PlainAllocationsAreBlockAligned)
{
    LocalityAllocator alloc(0x100000, 1 << 20);
    Addr a = alloc.allocate(100);
    Addr b = alloc.allocate(64);
    EXPECT_EQ(a % kBlockSize, 0u);
    EXPECT_EQ(b % kBlockSize, 0u);
    EXPECT_GE(b, a + 128);  // 100 rounded up to 128
}

TEST(LocalityAllocator, GroupMembersSharePageOffset)
{
    LocalityAllocator alloc(0x200000, 4 << 20);
    Addr a = alloc.allocate(4096, /*group=*/1);
    alloc.allocate(777);  // unrelated allocation shifts the bump pointer
    Addr b = alloc.allocate(4096, 1);
    Addr c = alloc.allocate(64, 1);
    EXPECT_TRUE(pageAligned(a, b));
    EXPECT_TRUE(pageAligned(a, c));
    EXPECT_EQ(alloc.groupOffset(1), a & (kPageSize - 1));
}

TEST(LocalityAllocator, GroupsImplyOperandLocalityOnAllGeometries)
{
    LocalityAllocator alloc(0x400000, 16 << 20);
    std::vector<Addr> buffers;
    for (int i = 0; i < 6; ++i) {
        buffers.push_back(alloc.allocate(2048, 7));
        alloc.allocate(100 + 64 * i);  // interleave unrelated traffic
    }
    for (auto params :
         {CacheGeometryParams::l1d(), CacheGeometryParams::l2(),
          CacheGeometryParams::l3Slice()}) {
        CacheGeometry geom(params);
        EXPECT_TRUE(haveOperandLocality(geom, buffers));
    }
}

TEST(LocalityAllocator, IndependentGroupsGetIndependentOffsets)
{
    LocalityAllocator alloc(0x600000, 4 << 20);
    alloc.allocate(100);  // skew the pointer so offsets differ
    Addr a = alloc.allocate(64, 1);
    Addr b = alloc.allocate(64, 2);
    EXPECT_EQ(alloc.groupOffset(1), a & (kPageSize - 1));
    EXPECT_EQ(alloc.groupOffset(2), b & (kPageSize - 1));
    EXPECT_EQ(alloc.groupOffset(99), ~Addr{0});
}

TEST(LocalityAllocator, TracksPadding)
{
    LocalityAllocator alloc(0x800000, 4 << 20);
    alloc.allocate(4096, 3);    // defines offset
    alloc.allocate(64);          // moves pointer past the offset
    std::size_t before = alloc.padding();
    alloc.allocate(4096, 3);     // must skip to the next page's offset
    EXPECT_GT(alloc.padding(), before);
}

TEST(LocalityAllocator, ExhaustionIsFatal)
{
    LocalityAllocator alloc(0xa00000, kPageSize);
    alloc.allocate(2048);
    EXPECT_THROW(alloc.allocate(4096), FatalError);
}

TEST(LocalityAllocator, RejectsMisalignedBase)
{
    EXPECT_THROW((void)LocalityAllocator(0x1001, 1 << 20), FatalError);
    EXPECT_THROW((void)LocalityAllocator(0x1000, 100), FatalError);
}

} // namespace
} // namespace ccache::geometry
