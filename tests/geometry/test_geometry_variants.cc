/**
 * @file
 * Geometry variants beyond the paper's defaults: multi-block rows
 * (column-multiplexed sub-arrays, Section IV-C), non-standard cache
 * sizes, and the portability rule for recompiled alignment requirements.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "geometry/cache_geometry.hh"
#include "geometry/operand_locality.hh"
#include "sram/subarray.hh"

namespace ccache::geometry {
namespace {

CacheGeometryParams
twoBlocksPerRow()
{
    CacheGeometryParams p;
    p.name = "L2-wide";
    p.sizeBytes = 256 * 1024;
    p.ways = 8;
    p.banks = 8;
    p.blockPartitionsPerBank = 2;
    p.blocksPerRow = 2;  // 1024-bit rows: two partitions per sub-array
    return p;
}

TEST(GeometryVariants, MultiBlockRowsDeriveConsistently)
{
    CacheGeometry g(twoBlocksPerRow());
    // Two partitions share one sub-array: half the sub-arrays.
    EXPECT_EQ(g.subarraysPerBank(), 1u);
    EXPECT_EQ(g.subArrayParams().cols, 1024u);
    EXPECT_EQ(g.subArrayParams().blockPartitions(), 2u);
    // Locality constraint unchanged: 6 + 3 + 1 = 10 bits.
    EXPECT_EQ(g.minMatchBits(), 10u);
    EXPECT_TRUE(pageAlignmentSufficient(g));
}

TEST(GeometryVariants, MultiBlockRowPlacementUnique)
{
    CacheGeometry g(twoBlocksPerRow());
    std::vector<std::vector<bool>> used(
        g.totalBlockPartitions(),
        std::vector<bool>(g.rowsPerSubarray(), false));
    for (std::size_t set = 0; set < g.numSets(); ++set) {
        for (std::size_t way = 0; way < g.params().ways; ++way) {
            auto p = g.place(set, way);
            EXPECT_LT(p.partition, 2u);
            ASSERT_FALSE(used[p.globalPartition][p.row]);
            used[p.globalPartition][p.row] = true;
        }
    }
}

TEST(GeometryVariants, SubArrayComputesAcrossBothPartitions)
{
    // The sram sub-array honours multi-partition rows: in-place ops in
    // partition 1 must not disturb partition 0 of the same rows.
    CacheGeometry g(twoBlocksPerRow());
    sram::SubArray sa(g.subArrayParams());
    ASSERT_EQ(sa.partitions(), 2u);

    Rng rng(9);
    Block a0, a1, b0, b1;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        a0[i] = static_cast<std::uint8_t>(rng.below(256));
        a1[i] = static_cast<std::uint8_t>(rng.below(256));
        b0[i] = static_cast<std::uint8_t>(rng.below(256));
        b1[i] = static_cast<std::uint8_t>(rng.below(256));
    }
    sa.write({0, 0}, a0);
    sa.write({1, 0}, a1);
    sa.write({0, 1}, b0);
    sa.write({1, 1}, b1);

    sa.opXor({1, 0}, {1, 1}, {1, 2});
    Block expect;
    for (std::size_t i = 0; i < kBlockSize; ++i)
        expect[i] = a1[i] ^ b1[i];
    EXPECT_EQ(sa.read({1, 2}), expect);
    EXPECT_EQ(sa.read({0, 0}), a0);
    EXPECT_EQ(sa.read({0, 1}), b0);
}

TEST(GeometryVariants, SmallerAndLargerCaches)
{
    // 16 KB 4-way L1 variant.
    CacheGeometryParams small;
    small.name = "L1-16K";
    small.sizeBytes = 16 * 1024;
    small.ways = 4;
    small.banks = 2;
    small.blockPartitionsPerBank = 2;
    CacheGeometry gs(small);
    EXPECT_EQ(gs.minMatchBits(), 8u);
    EXPECT_TRUE(pageAlignmentSufficient(gs));

    // 4 MB slice: one more bank bit; still within the page rule.
    CacheGeometryParams big = CacheGeometryParams::l3Slice();
    big.sizeBytes = 4 * 1024 * 1024;
    big.banks = 32;
    CacheGeometry gb(big);
    EXPECT_EQ(gb.minMatchBits(), 13u);
    // 13 > 12: the page rule is NOT sufficient — exactly the
    // recompile-for-stricter-alignment case Section IV-C discusses.
    EXPECT_FALSE(pageAlignmentSufficient(gb));
}

TEST(GeometryVariants, PortabilityRule)
{
    // A binary compiled for 12-bit alignment is portable to any geometry
    // needing <= 12 matching bits (Section IV-C): alignment at 12 bits
    // implies alignment at any smaller requirement.
    Rng rng(77);
    CacheGeometry l1(CacheGeometryParams::l1d());
    CacheGeometry l2(CacheGeometryParams::l2());
    for (int i = 0; i < 500; ++i) {
        Addr offset = rng.below(kPageSize) & ~Addr{63};
        Addr a = rng.below(1u << 16) * kPageSize + offset;
        Addr b = rng.below(1u << 16) * kPageSize + offset;
        ASSERT_TRUE(haveOperandLocality(l1, a, b));
        ASSERT_TRUE(haveOperandLocality(l2, a, b));
    }
}

TEST(GeometryVariants, BlocksPerRowMustDividePartitions)
{
    CacheGeometryParams p = twoBlocksPerRow();
    p.blocksPerRow = 4;  // 4 does not divide 2 partitions per bank
    EXPECT_THROW((void)CacheGeometry(p), FatalError);
}

} // namespace
} // namespace ccache::geometry
