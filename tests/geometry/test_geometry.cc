/**
 * @file
 * Tests for cache geometry, address decoding (Figure 5) and the operand
 * locality guarantees of Section IV-C / Table III.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "geometry/cache_geometry.hh"
#include "geometry/operand_locality.hh"

namespace ccache::geometry {
namespace {

TEST(CacheGeometry, TableIIIMinMatchBits)
{
    // Table III: L1-D needs 8 matching bits, L2 10, L3-slice 12.
    EXPECT_EQ(CacheGeometry(CacheGeometryParams::l1d()).minMatchBits(), 8u);
    EXPECT_EQ(CacheGeometry(CacheGeometryParams::l2()).minMatchBits(), 10u);
    EXPECT_EQ(CacheGeometry(CacheGeometryParams::l3Slice()).minMatchBits(),
              12u);
}

TEST(CacheGeometry, L3SliceDerivedStructure)
{
    CacheGeometry g(CacheGeometryParams::l3Slice());
    EXPECT_EQ(g.numSets(), 2048u);
    EXPECT_EQ(g.numBlocks(), 32768u);
    // Section II-A: a 2 MB L3 slice has 64 sub-arrays over 16 banks.
    EXPECT_EQ(g.totalSubarrays(), 64u);
    EXPECT_EQ(g.subarraysPerBank(), 4u);
    // Section VI-C: the optimal L3 sub-array is 512 x 512 bits.
    EXPECT_EQ(g.rowsPerSubarray(), 512u);
    EXPECT_EQ(g.subArrayParams().cols, 512u);
    EXPECT_EQ(g.blocksPerPartition(), 512u);
}

TEST(CacheGeometry, L1DerivedStructure)
{
    CacheGeometry g(CacheGeometryParams::l1d());
    EXPECT_EQ(g.numSets(), 64u);
    EXPECT_EQ(g.totalSubarrays(), 4u);
    EXPECT_EQ(g.rowsPerSubarray(), 128u);
}

TEST(CacheGeometry, DecodeFieldsRecomposeAddress)
{
    CacheGeometry g(CacheGeometryParams::l3Slice());
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        Addr addr = rng.next() & ((Addr{1} << 40) - 1);
        auto f = g.decode(addr);
        EXPECT_LT(f.bank, 16u);
        EXPECT_LT(f.bp, 4u);
        EXPECT_LT(f.set, g.numSets());
        Addr rebuilt = (f.tag << (g.setIndexBits() + g.blockOffsetBits())) |
            (static_cast<Addr>(f.set) << g.blockOffsetBits()) |
            f.blockOffset;
        EXPECT_EQ(rebuilt, addr);
        // The bank/bp selectors are the low set-index bits (Figure 5(b)).
        EXPECT_EQ(f.bank, f.set & 0xf);
        EXPECT_EQ(f.bp, (f.set >> 4) & 0x3);
    }
}

TEST(CacheGeometry, AllWaysOfASetShareAPartition)
{
    // Design choice 1 (Section IV-C): operand locality must not depend on
    // which way the cache picks at fill time.
    for (auto params : {CacheGeometryParams::l1d(), CacheGeometryParams::l2(),
                        CacheGeometryParams::l3Slice()}) {
        CacheGeometry g(params);
        for (std::size_t set : {std::size_t{0}, g.numSets() / 2,
                                g.numSets() - 1}) {
            auto first = g.place(set, 0);
            for (std::size_t way = 1; way < params.ways; ++way) {
                auto p = g.place(set, way);
                EXPECT_EQ(p.globalPartition, first.globalPartition);
                EXPECT_EQ(p.bank, first.bank);
                EXPECT_EQ(p.subarray, first.subarray);
            }
        }
    }
}

TEST(CacheGeometry, DistinctBlocksGetDistinctRows)
{
    CacheGeometry g(CacheGeometryParams::l1d());
    // Within one partition, every (set, way) pair must get a unique row.
    std::vector<std::vector<bool>> used(
        g.totalBlockPartitions(),
        std::vector<bool>(g.rowsPerSubarray(), false));
    for (std::size_t set = 0; set < g.numSets(); ++set) {
        for (std::size_t way = 0; way < g.params().ways; ++way) {
            auto p = g.place(set, way);
            EXPECT_FALSE(used[p.globalPartition][p.row])
                << "collision at set " << set << " way " << way;
            used[p.globalPartition][p.row] = true;
        }
    }
}

TEST(OperandLocality, LowBitsMatch)
{
    EXPECT_TRUE(lowBitsMatch(0x1234, 0x5234, 12));
    EXPECT_FALSE(lowBitsMatch(0x1234, 0x1235, 12));
    EXPECT_TRUE(lowBitsMatch(0xabc, 0xdef, 0));
}

TEST(OperandLocality, PageAlignedRule)
{
    EXPECT_TRUE(pageAligned(0x10040, 0x7f040));
    EXPECT_FALSE(pageAligned(0x10040, 0x7f080));
}

TEST(OperandLocality, PageAlignmentSufficientForAllPaperCaches)
{
    EXPECT_TRUE(pageAlignmentSufficient(
        CacheGeometry(CacheGeometryParams::l1d())));
    EXPECT_TRUE(pageAlignmentSufficient(
        CacheGeometry(CacheGeometryParams::l2())));
    EXPECT_TRUE(pageAlignmentSufficient(
        CacheGeometry(CacheGeometryParams::l3Slice())));
}

/** Property: page alignment implies operand locality on every geometry
 *  whose minMatchBits <= 12 — the portability guarantee of Section IV-C. */
class LocalityProperty
    : public ::testing::TestWithParam<CacheGeometryParams>
{
};

TEST_P(LocalityProperty, PageAlignmentImpliesLocality)
{
    CacheGeometry g(GetParam());
    ASSERT_LE(g.minMatchBits(), kPageOffsetBits);
    Rng rng(17);
    for (int i = 0; i < 2000; ++i) {
        Addr offset = rng.below(kPageSize) & ~Addr{63};
        Addr a = rng.below(1u << 20) * kPageSize + offset;
        Addr b = rng.below(1u << 20) * kPageSize + offset;
        EXPECT_TRUE(pageAligned(a, b));
        EXPECT_TRUE(haveOperandLocality(g, a, b))
            << std::hex << "a=" << a << " b=" << b;
    }
}

TEST_P(LocalityProperty, MatchingMinBitsIsExactlySufficient)
{
    CacheGeometry g(GetParam());
    Rng rng(23);
    for (int i = 0; i < 2000; ++i) {
        Addr a = rng.next() & ((Addr{1} << 38) - 1);
        Addr b = rng.next() & ((Addr{1} << 38) - 1);
        bool match = lowBitsMatch(a, b, g.minMatchBits());
        EXPECT_EQ(match, haveOperandLocality(g, a, b))
            << std::hex << "a=" << a << " b=" << b;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperGeometries, LocalityProperty,
    ::testing::Values(CacheGeometryParams::l1d(), CacheGeometryParams::l2(),
                      CacheGeometryParams::l3Slice()),
    [](const auto &info) {
        std::string n = info.param.name;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(OperandLocality, VectorOverload)
{
    CacheGeometry g(CacheGeometryParams::l3Slice());
    std::vector<Addr> good = {0x10000, 0x20000, 0x30000};
    EXPECT_TRUE(haveOperandLocality(g, good));
    std::vector<Addr> bad = {0x10000, 0x20000, 0x30040};
    EXPECT_FALSE(haveOperandLocality(g, bad));
}

TEST(OperandLocality, AlignToOperand)
{
    Addr anchor = 0x12340;  // page offset 0x340
    Addr a1 = alignToOperand(anchor, 0x50000);
    EXPECT_EQ(a1 & (kPageSize - 1), 0x340u);
    EXPECT_GE(a1, 0x50000u);
    EXPECT_LT(a1, 0x50000u + 2 * kPageSize);
    EXPECT_TRUE(pageAligned(anchor, a1));

    // Hint already past the offset within its page: next page is used.
    Addr a2 = alignToOperand(anchor, 0x50800);
    EXPECT_EQ(a2, 0x51340u);
}

TEST(CacheGeometry, RejectsInvalidConfigs)
{
    CacheGeometryParams p = CacheGeometryParams::l1d();
    p.banks = 3;
    EXPECT_THROW((void)CacheGeometry(p), FatalError);

    p = CacheGeometryParams::l1d();
    p.sizeBytes = 1000;
    EXPECT_THROW((void)CacheGeometry(p), FatalError);

    p = CacheGeometryParams::l1d();
    p.banks = 64;
    p.blockPartitionsPerBank = 64; // needs more set bits than exist
    EXPECT_THROW((void)CacheGeometry(p), FatalError);
}

} // namespace
} // namespace ccache::geometry
