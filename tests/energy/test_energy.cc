/**
 * @file
 * Tests for the energy parameter tables (Tables I and V) and the
 * component-resolved energy accounting.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"

namespace ccache::energy {
namespace {

TEST(EnergyParams, TableVValuesTranscribed)
{
    EnergyParams p;
    // Spot-check the exact paper numbers.
    EXPECT_DOUBLE_EQ(p.cacheOpEnergy(CacheLevel::L3, CacheOp::Write),
                     2852.0);
    EXPECT_DOUBLE_EQ(p.cacheOpEnergy(CacheLevel::L3, CacheOp::Read),
                     2452.0);
    EXPECT_DOUBLE_EQ(p.cacheOpEnergy(CacheLevel::L3, CacheOp::Cmp), 840.0);
    EXPECT_DOUBLE_EQ(p.cacheOpEnergy(CacheLevel::L2, CacheOp::Search),
                     1396.0);
    EXPECT_DOUBLE_EQ(p.cacheOpEnergy(CacheLevel::L1, CacheOp::Logic),
                     387.0);
    EXPECT_DOUBLE_EQ(p.cacheOpEnergy(CacheLevel::L1, CacheOp::Copy),
                     324.0);
}

TEST(EnergyParams, PaperInternalConsistency)
{
    EnergyParams p;
    // read == Table I ic + access at every level.
    EXPECT_DOUBLE_EQ(p.cacheOpEnergy(CacheLevel::L1, CacheOp::Read),
                     p.l1Read.total());
    EXPECT_DOUBLE_EQ(p.cacheOpEnergy(CacheLevel::L2, CacheOp::Read),
                     p.l2Read.total());
    EXPECT_DOUBLE_EQ(p.cacheOpEnergy(CacheLevel::L3, CacheOp::Read),
                     p.l3Read.total());
    // search == cmp + write (the key write, Section VI-C).
    for (CacheLevel l :
         {CacheLevel::L1, CacheLevel::L2, CacheLevel::L3}) {
        EXPECT_DOUBLE_EQ(p.cacheOpEnergy(l, CacheOp::Search),
                         p.cacheOpEnergy(l, CacheOp::Cmp) +
                             p.cacheOpEnergy(l, CacheOp::Write));
    }
    // buz costed like copy; clmul like cmp.
    EXPECT_DOUBLE_EQ(p.cacheOpEnergy(CacheLevel::L3, CacheOp::Buz),
                     p.cacheOpEnergy(CacheLevel::L3, CacheOp::Copy));
    EXPECT_DOUBLE_EQ(p.cacheOpEnergy(CacheLevel::L3, CacheOp::Clmul),
                     p.cacheOpEnergy(CacheLevel::L3, CacheOp::Cmp));
}

TEST(EnergyParams, HtreeFractions)
{
    EnergyParams p;
    // Baseline accesses follow the Table I split (L3 ~81%).
    EXPECT_NEAR(p.htreeFraction(CacheLevel::L3, CacheOp::Read), 0.81,
                0.01);
    // In-place ops only pay command distribution (small fixed share).
    EXPECT_DOUBLE_EQ(p.htreeFraction(CacheLevel::L3, CacheOp::Logic),
                     0.10);
    EXPECT_DOUBLE_EQ(p.htreeFraction(CacheLevel::L1, CacheOp::Cmp), 0.10);
    // Search's fraction reflects only its embedded key write.
    double search = p.htreeFraction(CacheLevel::L3, CacheOp::Search);
    EXPECT_GT(search, 0.10);
    EXPECT_LT(search, p.htreeFraction(CacheLevel::L3, CacheOp::Write));
}

TEST(EnergyParams, CacheOpForMapsBitlineOps)
{
    EXPECT_EQ(cacheOpFor(sram::BitlineOp::And), CacheOp::Logic);
    EXPECT_EQ(cacheOpFor(sram::BitlineOp::Or), CacheOp::Logic);
    EXPECT_EQ(cacheOpFor(sram::BitlineOp::Copy), CacheOp::Copy);
    EXPECT_EQ(cacheOpFor(sram::BitlineOp::Search), CacheOp::Search);
    EXPECT_EQ(cacheOpFor(sram::BitlineOp::Clmul), CacheOp::Clmul);
    EXPECT_EQ(cacheOpFor(sram::BitlineOp::Read), CacheOp::Read);
}

TEST(EnergyModelTest, ChargeCacheOpSplitsComponents)
{
    EnergyModel em;
    em.chargeCacheOp(CacheLevel::L3, CacheOp::Read, 2);
    double total = em.dynamic().l3Access + em.dynamic().l3Ic;
    EXPECT_DOUBLE_EQ(total, 2 * 2452.0);
    // The split follows the Table I ratio.
    EXPECT_NEAR(em.dynamic().l3Ic / total, 0.81, 0.01);
    EXPECT_DOUBLE_EQ(em.dynamic().l1Access, 0.0);
}

TEST(EnergyModelTest, InstructionCharges)
{
    EnergyModel em;
    em.chargeInstructions(10);
    EXPECT_DOUBLE_EQ(em.dynamic().core, 10 * em.params().corePerInstr);
    em.chargeVectorInstructions(1);
    EXPECT_DOUBLE_EQ(em.dynamic().core,
                     10 * em.params().corePerInstr +
                         em.params().corePerInstr +
                         em.params().coreVectorExtra);
}

TEST(EnergyModelTest, NocChargePerFlitHop)
{
    EnergyModel em;
    em.chargeNoc(72, 3);  // 9 flits x 3 hops
    EXPECT_DOUBLE_EQ(em.dynamic().noc, 27 * em.params().nocPerFlitHop);
}

TEST(EnergyModelTest, BreakdownArithmetic)
{
    EnergyModel em;
    em.addCore(100.0);
    em.addCacheAccess(CacheLevel::L1, 10.0);
    em.addCacheAccess(CacheLevel::L2, 20.0);
    em.addCacheIc(CacheLevel::L3, 30.0);
    em.chargeNoc(8, 1);
    em.chargeDram(1);

    const auto &d = em.dynamic();
    EXPECT_DOUBLE_EQ(d.cacheAccess(), 30.0);
    EXPECT_DOUBLE_EQ(d.cacheIc(), 30.0);
    EXPECT_DOUBLE_EQ(d.dataMovement(),
                     60.0 + d.noc + em.params().dramPerBlock);
    EXPECT_DOUBLE_EQ(d.dynamicTotal(), 100.0 + d.dataMovement());
}

TEST(EnergyModelTest, BreakdownAccumulation)
{
    EnergyBreakdown a, b;
    a.core = 1;
    a.l1Access = 2;
    b.core = 10;
    b.noc = 5;
    a += b;
    EXPECT_DOUBLE_EQ(a.core, 11.0);
    EXPECT_DOUBLE_EQ(a.l1Access, 2.0);
    EXPECT_DOUBLE_EQ(a.noc, 5.0);
}

TEST(EnergyModelTest, StaticScalesWithTimeCoresAndShare)
{
    EnergyModel em;
    auto t1 = em.totals(2660000, 1, 1.0);  // 1 ms at 2.66 GHz
    EXPECT_NEAR(t1.coreStatic, em.params().coreStaticW * 1e-3 * 1e12,
                1e6);
    auto t8 = em.totals(2660000, 8, 1.0);
    EXPECT_NEAR(t8.coreStatic / t1.coreStatic, 8.0, 1e-9);
    auto half = em.totals(2660000, 1, 0.5);
    EXPECT_NEAR(half.uncoreStatic / t1.uncoreStatic, 0.5, 1e-9);
}

TEST(EnergyModelTest, ResetClearsDynamicOnly)
{
    EnergyModel em;
    em.addCore(50.0);
    em.reset();
    EXPECT_DOUBLE_EQ(em.dynamic().dynamicTotal(), 0.0);
    // Static is derived from elapsed time, unaffected by reset.
    EXPECT_GT(em.totals(1000, 1).coreStatic, 0.0);
}

TEST(EnergyModelTest, ReportListsComponents)
{
    EnergyModel em;
    em.addCore(123.0);
    std::string report = em.report();
    EXPECT_NE(report.find("core"), std::string::npos);
    EXPECT_NE(report.find("123"), std::string::npos);
    EXPECT_NE(report.find("dynamic-total"), std::string::npos);
}

} // namespace
} // namespace ccache::energy
