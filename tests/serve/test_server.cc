/**
 * @file
 * End-to-end server tests: determinism of the full report (the §8
 * contract at the serving layer), request building/chunking, buffer
 * recycling balance, and the JSON report shape.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "serve/server.hh"
#include "sim/system.hh"
#include "workload/traffic_gen.hh"

namespace ccache::serve {
namespace {

workload::TrafficParams
mixedTraffic(std::uint64_t seed)
{
    workload::TrafficParams traffic;
    traffic.totalRequests = 300;
    traffic.seed = seed;
    workload::TenantTraffic a;
    a.name = "alpha";
    a.requestsPerKilocycle = 8.0;
    a.minBytes = 256;
    a.maxBytes = 2048;
    a.weightCmp = 0.5;          // sizes > 512 B exercise chunking
    a.weightBuz = 0.5;
    a.weightNot = 0.5;
    workload::TenantTraffic b;
    b.name = "beta";
    b.requestsPerKilocycle = 8.0;
    b.minBytes = 1024;
    b.maxBytes = 16384;
    b.scatterFraction = 0.2;
    traffic.tenants = {a, b};
    return traffic;
}

ServerParams
twoTenantParams()
{
    ServerParams params;
    params.tenants = {TenantQos{"alpha", 2, 64}, TenantQos{"beta", 1, 64}};
    return params;
}

TEST(CcServer, ReportIsDeterministic)
{
    std::string dumps[2];
    for (std::string &out : dumps) {
        sim::System sys;
        CcServer server(sys, twoTenantParams());
        ServeReport report = server.run(generateTraffic(mixedTraffic(42)));
        out = report.toJson().dump(2);
    }
    EXPECT_EQ(dumps[0], dumps[1]);
    EXPECT_FALSE(dumps[0].empty());
}

TEST(CcServer, AccountingBalances)
{
    sim::System sys;
    CcServer server(sys, twoTenantParams());
    ServeReport report = server.run(generateTraffic(mixedTraffic(7)));
    EXPECT_EQ(report.offered, 300u);
    EXPECT_EQ(report.admitted + report.rejected, report.offered);
    EXPECT_EQ(report.served, report.admitted);   // run drains the queue
    std::uint64_t tenant_served = 0;
    for (const ServeReport::TenantSummary &t : report.tenants)
        tenant_served += t.served;
    EXPECT_EQ(tenant_served, report.served);
    EXPECT_GT(report.elapsed, 0u);
    EXPECT_GT(report.throughputRpmc, 0.0);
}

TEST(CcServer, RecyclesEveryOperandBuffer)
{
    sim::System sys;
    CcServer server(sys, twoTenantParams());
    server.run(generateTraffic(mixedTraffic(9)));
    geometry::LocalityAllocator &alloc = server.allocator();
    // Every buffer ever handed out came back: the free list holds all
    // non-padding bytes and churn was satisfied largely from reuse.
    EXPECT_EQ(alloc.freeBytes(), alloc.used() - alloc.padding());
    EXPECT_GT(alloc.reuses(), 0u);
}

TEST(CcServer, LatencyHistogramsPopulated)
{
    sim::System sys;
    CcServer server(sys, twoTenantParams());
    ServeReport report = server.run(generateTraffic(mixedTraffic(11)));
    const StatRegistry &reg = sys.stats();
    for (const char *tenant : {"alpha", "beta"}) {
        for (const char *metric :
             {"queue_cycles", "service_cycles", "sojourn_cycles"}) {
            const StatLogHistogram *h = reg.logHistogramAt(
                std::string("serve.") + tenant + "." + metric);
            ASSERT_NE(h, nullptr) << tenant << "." << metric;
            EXPECT_GT(h->count(), 0u) << tenant << "." << metric;
        }
    }
    for (const ServeReport::TenantSummary &t : report.tenants) {
        EXPECT_GE(t.p99QueueCycles, t.p50QueueCycles);
        EXPECT_GE(t.p999QueueCycles, t.p99QueueCycles);
        EXPECT_GE(t.p99ServiceCycles, t.p50ServiceCycles);
        EXPECT_GT(t.meanSojournCycles, 0.0);
    }
}

TEST(CcServer, ReportJsonShape)
{
    sim::System sys;
    CcServer server(sys, twoTenantParams());
    ServeReport report = server.run(generateTraffic(mixedTraffic(13)));
    Json doc = report.toJson();
    for (const char *key : {"offered", "admitted", "served", "rejected",
                            "elapsed_cycles", "throughput_rpmc"})
        EXPECT_TRUE(doc.find(key) != nullptr) << key;
    for (const char *tenant : {"alpha", "beta"}) {
        const Json *t = doc["tenants"].find(tenant);
        ASSERT_NE(t, nullptr) << tenant;
        EXPECT_TRUE(t->find("p99_queue_cycles") != nullptr);
        EXPECT_TRUE(t->find("mean_sojourn_cycles") != nullptr);
    }
    EXPECT_TRUE(doc.find("rejections") != nullptr);

    // Round-trips through the parser.
    std::string err;
    Json parsed = Json::parse(doc.dump(2), &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_TRUE(parsed.isObject());
}

TEST(CcServer, RejectsDuplicateTenantNames)
{
    sim::System sys;
    ServerParams params;
    params.tenants = {TenantQos{"same", 1, 8}, TenantQos{"same", 1, 8}};
    EXPECT_THROW((void)CcServer(sys, params), SimError);
}

} // namespace
} // namespace ccache::serve
