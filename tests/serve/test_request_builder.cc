/**
 * @file
 * Tests for the shared request builder: operand placement, heap
 * exhaustion degrading into a structured no_capacity rejection with
 * full rollback (DESIGN.md §12), and the CcServer-level regression —
 * an undersized heap sheds instead of killing the run.
 */

#include <gtest/gtest.h>

#include "geometry/locality_allocator.hh"
#include "serve/server.hh"
#include "sim/system.hh"
#include "workload/traffic_gen.hh"

namespace ccache::serve {
namespace {

workload::RequestSpec
makeSpec(cc::CcOpcode op, std::size_t bytes, Cycles arrival = 0)
{
    workload::RequestSpec spec;
    spec.arrival = arrival;
    spec.tenant = 0;
    spec.op = op;
    spec.bytes = bytes;
    return spec;
}

TEST(RequestBuilder, BuildsAndRecycles)
{
    sim::System sys;
    geometry::LocalityAllocator alloc(0x40000000, 1 << 20);
    RequestBuildParams params;

    RejectReason why = RejectReason::Malformed;
    std::optional<Request> req = buildRequest(
        sys, alloc, params, makeSpec(cc::CcOpcode::And, 4096), 1, &why);
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->buffers.size(), 3u); // src1, src2, dest
    std::size_t free_before = alloc.freeBytes();
    EXPECT_LT(free_before, static_cast<std::size_t>(1 << 20));

    recycleRequest(alloc, *req);
    EXPECT_GT(alloc.freeBytes(), free_before);
}

TEST(RequestBuilder, ChunksToIsaLimits)
{
    sim::System sys;
    geometry::LocalityAllocator alloc(0x40000000, 4 << 20);
    RequestBuildParams params;

    // 48 KB And = 3 chunks of the 16 KB vector limit.
    std::optional<Request> req =
        buildRequest(sys, alloc, params,
                     makeSpec(cc::CcOpcode::And, 3 * cc::kMaxVectorBytes),
                     2, nullptr);
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->chunks.size(), 2u); // head instr + 2 extra chunks

    // 2 KB Cmp = 4 chunks of the 512 B CC-R limit.
    std::optional<Request> cmp = buildRequest(
        sys, alloc, params, makeSpec(cc::CcOpcode::Cmp, 2048), 3, nullptr);
    ASSERT_TRUE(cmp.has_value());
    EXPECT_EQ(cmp->chunks.size(), 3u);
}

TEST(RequestBuilder, HeapExhaustionIsStructuredAndRollsBack)
{
    sim::System sys;
    geometry::LocalityAllocator alloc(0x40000000, 8192);
    RequestBuildParams params;
    std::size_t free_at_start = alloc.freeBytes();

    // Three 16 KB operands can never fit an 8 KB heap.
    RejectReason why = RejectReason::Malformed;
    std::optional<Request> req =
        buildRequest(sys, alloc, params,
                     makeSpec(cc::CcOpcode::And, cc::kMaxVectorBytes), 1,
                     &why);
    EXPECT_FALSE(req.has_value());
    EXPECT_EQ(why, RejectReason::NoCapacity);
    // Rollback is complete: the partial operand allocations were
    // returned, so a request that fits still succeeds.
    EXPECT_EQ(alloc.freeBytes(), free_at_start);
    std::optional<Request> small = buildRequest(
        sys, alloc, params, makeSpec(cc::CcOpcode::Buz, 1024), 2, nullptr);
    EXPECT_TRUE(small.has_value());
}

TEST(RequestBuilder, PatternFillIsShardIndependent)
{
    // The operand bytes are a pure function of (patternSeed, id): two
    // independent systems building the same request must agree on
    // every byte — the property hedged re-dispatch and golden
    // verification rest on.
    RequestBuildParams params;
    params.fillPattern = true;
    params.patternSeed = 0xfeedULL;

    auto build_and_dump = [&](std::uint64_t) {
        sim::System sys;
        geometry::LocalityAllocator alloc(0x40000000, 1 << 20);
        std::optional<Request> req = buildRequest(
            sys, alloc, params, makeSpec(cc::CcOpcode::Cmp, 512), 7,
            nullptr);
        EXPECT_TRUE(req.has_value());
        return sys.dump(req->instr.src1, 512);
    };
    EXPECT_EQ(build_and_dump(0), build_and_dump(1));
}

TEST(CcServer, UndersizedHeapShedsNoCapacity)
{
    // Regression: heap exhaustion at admission must degrade into a
    // structured no_capacity shed, not a FatalError mid-run.
    workload::TrafficParams traffic;
    traffic.totalRequests = 30;
    traffic.seed = 5;
    workload::TenantTraffic t;
    t.name = "tenant";
    t.requestsPerKilocycle = 1.0;
    t.minBytes = 16384;
    t.maxBytes = 16384;
    traffic.tenants.push_back(t);

    sim::System sys;
    ServerParams params;
    params.heapBytes = 8192;
    CcServer server(sys, params);
    ServeReport report = server.run(generateTraffic(traffic));

    EXPECT_EQ(report.served, 0u);
    EXPECT_EQ(report.rejected, report.offered);
    EXPECT_NE(report.rejections.dump().find("no_capacity"),
              std::string::npos);
}

} // namespace
} // namespace ccache::serve
