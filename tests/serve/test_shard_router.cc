/**
 * @file
 * Tests for the fault-tolerant shard router (DESIGN.md §12): ring
 * placement, run-to-run determinism under chaos, crash failover with
 * golden verification, the QoS brownout split, hedging, and request
 * conservation under randomized fault schedules.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "serve/shard_router.hh"
#include "workload/traffic_gen.hh"

namespace ccache::serve {
namespace {

constexpr unsigned kShards = 4;

ServerParams
makeServe(std::vector<unsigned> weights)
{
    ServerParams params;
    params.tenants.clear();
    for (std::size_t i = 0; i < weights.size(); ++i) {
        TenantQos q;
        q.name = "t" + std::to_string(i);
        q.weight = weights[i];
        params.tenants.push_back(std::move(q));
    }
    return params;
}

RouterParams
makeRouter()
{
    RouterParams router;
    router.shards = kShards;
    router.admissionDeadline = 60000;
    router.shardTimeout = 20000;
    router.verifyGolden = true;
    router.recordEvents = true;
    return router;
}

std::vector<workload::RequestSpec>
makeTraffic(unsigned tenants, std::size_t requests, std::uint64_t seed,
            std::size_t min_bytes = 256, std::size_t max_bytes = 4096)
{
    workload::TrafficParams traffic;
    traffic.totalRequests = requests;
    traffic.seed = seed;
    for (unsigned i = 0; i < tenants; ++i) {
        workload::TenantTraffic t;
        t.name = "t" + std::to_string(i);
        t.requestsPerKilocycle = 0.5;
        t.minBytes = min_bytes;
        t.maxBytes = max_bytes;
        if (i > 0)
            t.weightCmp = 0.4;
        traffic.tenants.push_back(std::move(t));
    }
    return generateTraffic(traffic);
}

ChaosSchedule
crashOf(unsigned shard, Cycles start, Cycles duration)
{
    ChaosSchedule chaos;
    ChaosEvent ev;
    ev.kind = ChaosKind::Crash;
    ev.shard = shard;
    ev.start = start;
    ev.duration = duration;
    chaos.events.push_back(ev);
    return chaos;
}

TEST(ShardRouter, RingCoversEveryShardPerTenant)
{
    ShardRouter fleet(sim::SystemConfig{}, makeServe({4, 2, 2, 1}),
                      makeRouter());
    for (TenantId t = 0; t < 4; ++t) {
        const std::vector<unsigned> &order = fleet.failoverOrder(t);
        ASSERT_EQ(order.size(), kShards);
        std::vector<bool> seen(kShards, false);
        for (unsigned s : order) {
            ASSERT_LT(s, kShards);
            EXPECT_FALSE(seen[s]) << "shard repeated in failover order";
            seen[s] = true;
        }
    }
}

TEST(ShardRouter, ChaosRunIsDeterministic)
{
    ChaosSchedule chaos;
    ASSERT_TRUE(ChaosSchedule::parse(
        "crash@20000+120000:1;slow@10000+300000:2*8", kShards, &chaos,
        nullptr));
    std::vector<workload::RequestSpec> specs = makeTraffic(3, 500, 99);

    auto once = [&]() {
        RouterParams router = makeRouter();
        router.hedgeAge = 2000;
        ShardRouter fleet(sim::SystemConfig{}, makeServe({4, 2, 2}),
                          router);
        FleetReport report = fleet.run(specs, chaos);
        return std::make_pair(report.toJson().dump(), fleet.eventLog());
    };
    auto [json_a, events_a] = once();
    auto [json_b, events_b] = once();
    EXPECT_EQ(json_a, json_b);
    EXPECT_EQ(events_a, events_b);
    EXPECT_FALSE(events_a.empty());
}

TEST(ShardRouter, CrashFailoverKeepsAvailability)
{
    // Kill the interactive tenant's home shard mid-run and recover it;
    // every tenant is reroute-eligible, so the outage must be absorbed.
    ShardRouter fleet(sim::SystemConfig{}, makeServe({4, 2, 2, 2}),
                      makeRouter());
    unsigned home = fleet.failoverOrder(0)[0];
    FleetReport report = fleet.run(makeTraffic(4, 800, 7),
                                   crashOf(home, 20000, 120000));

    EXPECT_EQ(report.served + report.shed, report.offered);
    EXPECT_GE(report.availability, 0.99);
    EXPECT_GT(report.reroutes, 0u);
    EXPECT_GE(report.breakerTrips, 1u);
    EXPECT_GT(report.goldenChecked, 0u);
    EXPECT_EQ(report.goldenMismatch, 0u);
    EXPECT_EQ(report.shards[home].downCycles, 120000u);
    // The crashed shard went dark but recovered: it must have served
    // traffic again after the window (its served count is well above
    // what the first 20k cycles alone could commit).
    EXPECT_GT(report.shards[home].served, 0u);
}

TEST(ShardRouter, BrownoutShedsLowestQosFirst)
{
    // t3 (weight 1 < brownoutWeightFloor) homed on the crashed shard
    // must shed; the weight-4 tenant rides the ring and loses nothing.
    ShardRouter fleet(sim::SystemConfig{}, makeServe({4, 2, 2, 1}),
                      makeRouter());
    unsigned home = fleet.failoverOrder(3)[0];
    FleetReport report = fleet.run(makeTraffic(4, 800, 11),
                                   crashOf(home, 20000, 160000));

    EXPECT_EQ(report.served + report.shed, report.offered);
    EXPECT_EQ(report.tenants[0].shed, 0u);
    EXPECT_GT(report.tenants[3].shed, 0u);
    EXPECT_EQ(report.goldenMismatch, 0u);
    // The sheds are structured records with the brownout reasons.
    std::string rej = report.rejections.dump();
    EXPECT_TRUE(rej.find("shard_down") != std::string::npos ||
                rej.find("breaker_open") != std::string::npos)
        << rej;
}

TEST(ShardRouter, HedgingLaunchesAndResolves)
{
    // A tight hedge age fires twins for requests that outlive it; the
    // accounting must balance and the run stays deterministic.
    std::vector<workload::RequestSpec> specs =
        makeTraffic(2, 400, 21, 2048, 16384);
    ChaosSchedule chaos;
    ASSERT_TRUE(ChaosSchedule::parse("slow@5000+400000:1*20", kShards,
                                     &chaos, nullptr));
    auto once = [&]() {
        RouterParams router = makeRouter();
        router.hedgeAge = 200;
        ShardRouter fleet(sim::SystemConfig{}, makeServe({4, 4}), router);
        return fleet.run(specs, chaos);
    };
    FleetReport report = once();
    EXPECT_GT(report.hedgesLaunched, 0u);
    EXPECT_EQ(report.served + report.shed, report.offered);
    EXPECT_EQ(report.goldenMismatch, 0u);
    EXPECT_LE(report.hedgeWins + report.hedgeCancelled +
                  report.hedgeWasted,
              2 * report.hedgesLaunched);

    FleetReport again = once();
    EXPECT_EQ(report.toJson().dump(), again.toJson().dump());
}

TEST(ShardRouter, RandomChaosConservesEveryRequest)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        ChaosSchedule chaos =
            ChaosSchedule::random(seed, kShards, 400000, 6);
        RouterParams router = makeRouter();
        router.hedgeAge = 1500;
        ShardRouter fleet(sim::SystemConfig{}, makeServe({4, 2, 1}),
                          router);
        FleetReport report = fleet.run(makeTraffic(3, 600, seed), chaos);
        EXPECT_EQ(report.served + report.shed, report.offered)
            << "seed " << seed;
        EXPECT_EQ(report.goldenMismatch, 0u) << "seed " << seed;
    }
}

TEST(ShardRouter, HeapExhaustionShedsAfterRetries)
{
    // A heap too small for any request degrades into structured sheds
    // (no_capacity placements -> retries -> retries_exhausted), never
    // a crash or a hang.
    ServerParams serve = makeServe({4});
    serve.heapBytes = 4096;
    RouterParams router = makeRouter();
    router.verifyGolden = false;
    ShardRouter fleet(sim::SystemConfig{}, serve, router);
    FleetReport report =
        fleet.run(makeTraffic(1, 40, 5, 16384, 16384), ChaosSchedule{});

    EXPECT_EQ(report.served, 0u);
    EXPECT_EQ(report.shed, report.offered);
    EXPECT_GT(report.retries, 0u);
    EXPECT_NE(report.rejections.dump().find("retries_exhausted"),
              std::string::npos);
}

TEST(ShardRouter, HalfOpenProbeRacingCrashNeverRecloses)
{
    // First crash trips the breaker; it half-opens mid-outage and
    // probe traffic resumes at recovery. A second crash then lands at
    // varying offsets around the probe window — including inside a
    // probe wave's execution. Chaos boundaries are processed before
    // wave completions at the same cycle, so a probe wave killed by
    // the crash must count as a failure: the breaker may never end the
    // run Closed while the second crash extends past the last commit.
    std::vector<workload::RequestSpec> specs = makeTraffic(2, 500, 77);
    std::uint64_t maxTrips = 0;
    for (Cycles offset = 0; offset <= 4000; offset += 500) {
        RouterParams router = makeRouter();
        ShardRouter fleet(sim::SystemConfig{}, makeServe({4, 4}), router);
        unsigned home = fleet.failoverOrder(0)[0];
        ChaosSchedule chaos;
        ChaosEvent first;
        first.kind = ChaosKind::Crash;
        first.shard = home;
        first.start = 30000;
        first.duration = 40000;   // > breaker cooloff: half-open mid-crash
        ChaosEvent second = first;
        second.start = 70000 + offset;   // around recovery + probes
        second.duration = 100'000'000;   // dark through end of run
        chaos.events = {first, second};
        FleetReport report = fleet.run(specs, chaos);

        EXPECT_EQ(report.served + report.shed, report.offered)
            << "offset " << offset;
        EXPECT_EQ(report.goldenMismatch, 0u) << "offset " << offset;
        const CircuitBreaker &breaker = fleet.shardBreaker(home);
        // At tiny offsets the heal window is too short for a probe to
        // complete, so the breaker may stay tripped-once; it must
        // never have recovered to Closed regardless.
        EXPECT_GE(breaker.trips(), 1u) << "offset " << offset;
        maxTrips = std::max(maxTrips, breaker.trips());
        EXPECT_NE(breaker.state(report.elapsed),
                  CircuitBreaker::State::Closed)
            << "offset " << offset;
    }
    // Some offset in the sweep leaves room for the probes to re-close
    // the breaker before the second crash re-trips it: the
    // close -> re-trip path must have been exercised.
    EXPECT_GE(maxTrips, 2u);
}

TEST(ShardRouter, RetriesAndHedgesComposeWithFanoutLegs)
{
    // Fan-out legs run the full reliability pipeline: under a slow
    // storm they time out, retry across shards and hedge like any
    // hi-QoS request, while the fan-in barrier keeps parent accounting
    // exact (each parent counted once, never double-served).
    workload::TrafficParams traffic;
    traffic.totalRequests = 400;
    traffic.seed = 83;
    workload::TenantTraffic t;
    t.name = "t0";
    t.requestsPerKilocycle = 0.5;
    t.minBytes = 4096;
    t.maxBytes = 32768;
    t.fanoutFraction = 0.6;
    t.fanoutLegs = 3;
    traffic.tenants = {t};
    std::vector<workload::RequestSpec> specs = generateTraffic(traffic);

    ChaosSchedule chaos;
    ASSERT_TRUE(ChaosSchedule::parse("slow@5000+500000:0*20;"
                                     "slow@5000+500000:1*20;"
                                     "slow@5000+500000:2*20;"
                                     "slow@5000+500000:3*20",
                                     kShards, &chaos, nullptr));
    auto once = [&]() {
        RouterParams router = makeRouter();
        router.shardTimeout = 800;
        router.hedgeAge = 400;
        ShardRouter fleet(sim::SystemConfig{}, makeServe({4}), router);
        return fleet.run(specs, chaos);
    };
    FleetReport report = once();
    EXPECT_EQ(report.served + report.shed, report.offered);
    EXPECT_GT(report.fanoutParents, 0u);
    EXPECT_GE(report.fanoutLegs, 2 * report.fanoutParents);
    EXPECT_GT(report.retries, 0u);
    EXPECT_GT(report.hedgesLaunched, 0u);
    EXPECT_EQ(report.goldenMismatch, 0u);

    FleetReport again = once();
    EXPECT_EQ(report.toJson().dump(), again.toJson().dump());
}

} // namespace
} // namespace ccache::serve
