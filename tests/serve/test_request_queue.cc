/**
 * @file
 * Tests for the serving layer's admission control: global capacity
 * backpressure, per-tenant isolation caps, ISA validation at the
 * admission point, and the structured shed-load JSON record.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "serve/request_queue.hh"

namespace ccache::serve {
namespace {

Request
makeRequest(RequestId id, TenantId tenant, Cycles arrival,
            std::size_t bytes = 256)
{
    Request req;
    req.id = id;
    req.tenant = tenant;
    req.arrival = arrival;
    req.bytes = bytes;
    req.instr = cc::CcInstruction::buz(0x40000000 + id * 0x10000, bytes);
    return req;
}

struct QueueFixture
{
    StatRegistry reg;
    QueueParams params;
    std::vector<TenantQos> tenants;
    std::unique_ptr<RequestQueue> queue;

    QueueFixture(std::size_t capacity, std::size_t t0_cap,
                 std::size_t t1_cap)
    {
        params.capacity = capacity;
        tenants = {TenantQos{"t0", 1, t0_cap}, TenantQos{"t1", 1, t1_cap}};
        queue = std::make_unique<RequestQueue>(params, tenants,
                                               reg.group("serve"));
    }
};

TEST(RequestQueue, GlobalCapacityBackpressure)
{
    QueueFixture f(/*capacity=*/4, /*t0=*/64, /*t1=*/64);
    for (RequestId i = 0; i < 4; ++i)
        EXPECT_FALSE(f.queue->offer(makeRequest(i, i % 2, i), i));
    auto reason = f.queue->offer(makeRequest(4, 0, 4), 4);
    ASSERT_TRUE(reason.has_value());
    EXPECT_EQ(*reason, RejectReason::QueueFull);
    EXPECT_EQ(f.queue->size(), 4u);
    EXPECT_EQ(f.queue->rejected(), 1u);
}

TEST(RequestQueue, PerTenantCapIsolates)
{
    QueueFixture f(/*capacity=*/64, /*t0=*/2, /*t1=*/64);
    EXPECT_FALSE(f.queue->offer(makeRequest(0, 0, 0), 0));
    EXPECT_FALSE(f.queue->offer(makeRequest(1, 0, 0), 0));
    auto reason = f.queue->offer(makeRequest(2, 0, 0), 0);
    ASSERT_TRUE(reason.has_value());
    EXPECT_EQ(*reason, RejectReason::TenantQueueFull);
    // The other tenant is unaffected by t0 hitting its cap.
    EXPECT_FALSE(f.queue->offer(makeRequest(3, 1, 0), 0));
    EXPECT_EQ(f.queue->pending(0).size(), 2u);
    EXPECT_EQ(f.queue->pending(1).size(), 1u);
}

TEST(RequestQueue, MalformedInstructionsRejectedAtAdmission)
{
    QueueFixture f(64, 64, 64);
    // cc_cmp beyond the 512-byte CC-R limit fails ISA validation.
    Request bad = makeRequest(0, 0, 0);
    bad.instr = cc::CcInstruction{};
    bad.instr.op = cc::CcOpcode::Cmp;
    bad.instr.src1 = 0x40000000;
    bad.instr.src2 = 0x40010000;
    bad.instr.size = 1024;
    auto reason = f.queue->offer(bad, 0);
    ASSERT_TRUE(reason.has_value());
    EXPECT_EQ(*reason, RejectReason::Malformed);

    // A malformed trailing chunk is caught too.
    Request chunked = makeRequest(1, 0, 0);
    chunked.chunks.push_back(bad.instr);
    reason = f.queue->offer(chunked, 0);
    ASSERT_TRUE(reason.has_value());
    EXPECT_EQ(*reason, RejectReason::Malformed);
    EXPECT_TRUE(f.queue->empty());
}

TEST(RequestQueue, OldestTracksAcrossTenants)
{
    QueueFixture f(64, 64, 64);
    EXPECT_FALSE(f.queue->offer(makeRequest(0, 1, 7), 7));
    EXPECT_FALSE(f.queue->offer(makeRequest(1, 0, 3), 7));
    Cycles arrival = 0;
    TenantId tenant = 99;
    ASSERT_TRUE(f.queue->oldest(&arrival, &tenant));
    EXPECT_EQ(arrival, 3u);
    EXPECT_EQ(tenant, 0u);
    Request popped = f.queue->pop(tenant);
    EXPECT_EQ(popped.id, 1u);
    ASSERT_TRUE(f.queue->oldest(&arrival, &tenant));
    EXPECT_EQ(tenant, 1u);
    f.queue->pop(tenant);
    EXPECT_FALSE(f.queue->oldest(&arrival, &tenant));
}

TEST(RequestQueue, RejectionsJsonIsStructured)
{
    QueueFixture f(/*capacity=*/2, /*t0=*/1, /*t1=*/64);
    EXPECT_FALSE(f.queue->offer(makeRequest(0, 0, 0), 0));
    EXPECT_TRUE(f.queue->offer(makeRequest(1, 0, 1), 1));   // tenant cap
    EXPECT_FALSE(f.queue->offer(makeRequest(2, 1, 2), 2));
    EXPECT_TRUE(f.queue->offer(makeRequest(3, 1, 3), 3));   // global cap

    Json doc = f.queue->rejectionsJson();
    EXPECT_EQ(doc["total"].asNumber(), 2.0);
    EXPECT_GT(doc["by_tenant"]["t0"]["tenant_queue_full"].asNumber(), 0.0);
    EXPECT_GT(doc["by_tenant"]["t1"]["queue_full"].asNumber(), 0.0);
    const Json::Array &samples = doc["samples"].asArray();
    ASSERT_EQ(samples.size(), 2u);
    for (const Json &s : samples) {
        EXPECT_TRUE(s.find("id") != nullptr);
        EXPECT_TRUE(s.find("tenant") != nullptr);
        EXPECT_TRUE(s.find("reason") != nullptr);
        EXPECT_TRUE(s.find("arrival") != nullptr);
    }

    // Counters land in the registry under the tenant's group.
    EXPECT_EQ(f.reg.value("serve.t0.rejected"), 1u);
    EXPECT_EQ(f.reg.value("serve.t1.rejected"), 1u);
    EXPECT_EQ(f.reg.value("serve.t0.admitted"), 1u);
}

} // namespace
} // namespace ccache::serve
