/**
 * @file
 * Scheduler-level acceptance tests for the serving layer (DESIGN.md
 * §11): the batch policy's throughput win over serial FIFO issue at
 * saturation, wave coalescing, and the QoS bound on a high-priority
 * tenant's tail queueing under an adversarial background tenant.
 */

#include <gtest/gtest.h>

#include "serve/server.hh"
#include "sim/system.hh"
#include "workload/traffic_gen.hh"

namespace ccache::serve {
namespace {

constexpr std::uint64_t kSeed = 0xacce55ed;

workload::TrafficParams
saturatingTraffic(unsigned tenants, std::size_t requests)
{
    workload::TrafficParams params;
    params.totalRequests = requests;
    params.seed = kSeed;
    for (unsigned i = 0; i < tenants; ++i) {
        workload::TenantTraffic t;
        t.name = "t" + std::to_string(i);
        t.requestsPerKilocycle = 64.0 / tenants;
        t.minBytes = 256;
        t.maxBytes = 1024;
        if (i != 0) {
            t.weightCmp = 0.5;
            t.scatterFraction = 0.05;
        }
        params.tenants.push_back(std::move(t));
    }
    return params;
}

ServeReport
runSaturated(sim::System &sys, unsigned tenants, ServePolicy policy)
{
    ServerParams params;
    params.sched.policy = policy;
    params.sched.waveSize = 32;
    params.sched.perTenantWaveCap = 16;
    params.allocGroups = 256;
    params.tenants.clear();
    for (unsigned i = 0; i < tenants; ++i)
        params.tenants.push_back(
            TenantQos{"t" + std::to_string(i), i == 0 ? 4u : 1u, 64});
    CcServer server(sys, params);
    return server.run(generateTraffic(saturatingTraffic(tenants, 800)));
}

/** The headline claim: at saturating load, wave batching delivers at
 *  least 2x the serial-issue FIFO baseline's throughput. */
TEST(BatchScheduler, BatchDoublesFifoThroughputAtSaturation)
{
    for (unsigned tenants : {2u, 4u}) {
        sim::System fifo_sys, batch_sys;
        ServeReport fifo =
            runSaturated(fifo_sys, tenants, ServePolicy::FifoSerial);
        ServeReport batch =
            runSaturated(batch_sys, tenants, ServePolicy::Batch);
        ASSERT_GT(fifo.throughputRpmc, 0.0);
        double speedup = batch.throughputRpmc / fifo.throughputRpmc;
        EXPECT_GE(speedup, 2.0)
            << "batch " << batch.throughputRpmc << " rpMc vs fifo "
            << fifo.throughputRpmc << " rpMc with " << tenants << " tenants";
        // Batching also sheds (rejects) less of the same offered load.
        EXPECT_LE(batch.rejected, fifo.rejected);
    }
}

TEST(BatchScheduler, WavesActuallyCoalesce)
{
    sim::System sys;
    ServeReport report = runSaturated(sys, 2, ServePolicy::Batch);
    const StatRegistry &reg = sys.stats();
    std::uint64_t waves = reg.value("serve.waves");
    ASSERT_GT(waves, 0u);
    // Mean occupancy well above one request per wave at saturation.
    EXPECT_GE(static_cast<double>(report.served) /
                  static_cast<double>(waves),
              4.0);
    // Multi-chunk (cmp > 512 B) requests rode in shared waves.
    EXPECT_GT(reg.value("serve.chunked_requests"), 0u);
}

TEST(BatchScheduler, FifoServesOneRequestPerWave)
{
    sim::System sys;
    ServeReport report = runSaturated(sys, 2, ServePolicy::FifoSerial);
    EXPECT_EQ(sys.stats().value("serve.waves"), report.served);
}

/** The QoS claim: an adversarial background tenant (10x the service
 *  capacity, oversized scattered requests) cannot push the
 *  high-priority tenant's p99 queueing past the starvation bound. */
TEST(BatchScheduler, HiPriorityTailBoundedUnderAdversarialLoad)
{
    workload::TrafficParams traffic;
    traffic.totalRequests = 500;
    traffic.seed = kSeed;
    workload::TenantTraffic hi;
    hi.name = "hi";
    hi.requestsPerKilocycle = 0.5;
    hi.minBytes = 256;
    hi.maxBytes = 1024;
    workload::TenantTraffic bg;
    bg.name = "bg";
    bg.requestsPerKilocycle = 40.0;
    bg.minBytes = 4096;
    bg.maxBytes = 16384;
    bg.weightCmp = 0.25;
    bg.scatterFraction = 0.3;
    traffic.tenants = {hi, bg};

    sim::System sys;
    ServerParams params;
    params.tenants = {TenantQos{"hi", 8, 64}, TenantQos{"bg", 1, 32}};
    CcServer server(sys, params);
    ServeReport report = server.run(generateTraffic(traffic));

    ASSERT_EQ(report.tenants.size(), 2u);
    const ServeReport::TenantSummary &hi_sum = report.tenants[0];
    const ServeReport::TenantSummary &bg_sum = report.tenants[1];
    EXPECT_GT(hi_sum.served, 0u);
    EXPECT_LE(hi_sum.p99QueueCycles, params.sched.starvationAgeCycles);
    // The background tenant absorbs the shed load, not the hi tenant.
    EXPECT_EQ(hi_sum.rejected, 0u);
    EXPECT_GT(report.rejected, 0u);
    EXPECT_GT(bg_sum.rejected, 0u);
    // Rejections surface as the structured JSON record.
    EXPECT_EQ(report.rejections["total"].asNumber(),
              static_cast<double>(report.rejected));
    EXPECT_GT(report.rejections["samples"].asArray().size(), 0u);
}

} // namespace
} // namespace ccache::serve
