/**
 * @file
 * Tests for the deterministic chaos harness: spec-string parsing and
 * round-tripping, strict validation, and the seeded random schedule
 * generator (DESIGN.md §12).
 */

#include <gtest/gtest.h>

#include "serve/chaos.hh"

namespace ccache::serve {
namespace {

TEST(ChaosSchedule, ParsesSingleCrash)
{
    ChaosSchedule sched;
    std::string err;
    ASSERT_TRUE(
        ChaosSchedule::parse("crash@20000+120000:1", 4, &sched, &err))
        << err;
    ASSERT_EQ(sched.events.size(), 1u);
    const ChaosEvent &ev = sched.events[0];
    EXPECT_EQ(ev.kind, ChaosKind::Crash);
    EXPECT_EQ(ev.shard, 1u);
    EXPECT_EQ(ev.start, 20000u);
    EXPECT_EQ(ev.duration, 120000u);
    EXPECT_EQ(ev.end(), 140000u);
}

TEST(ChaosSchedule, ParsesMagnitudeAndMultipleEvents)
{
    ChaosSchedule sched;
    std::string err;
    ASSERT_TRUE(ChaosSchedule::parse(
        "slow@100+200:2*8;partial@50+60:3*2.5;crash@10+20:0", 4, &sched,
        &err))
        << err;
    ASSERT_EQ(sched.events.size(), 3u);
    // canonicalize() sorts by start time.
    EXPECT_EQ(sched.events[0].kind, ChaosKind::Crash);
    EXPECT_EQ(sched.events[1].kind, ChaosKind::Partial);
    EXPECT_DOUBLE_EQ(sched.events[1].magnitude, 2.5);
    EXPECT_EQ(sched.events[2].kind, ChaosKind::Slow);
    EXPECT_DOUBLE_EQ(sched.events[2].magnitude, 8.0);
}

TEST(ChaosSchedule, SpecRoundTrips)
{
    const std::string spec = "crash@10+20:0;slow@100+200:2*8";
    ChaosSchedule sched;
    ASSERT_TRUE(ChaosSchedule::parse(spec, 4, &sched, nullptr));
    EXPECT_EQ(sched.toSpec(), spec);

    ChaosSchedule again;
    ASSERT_TRUE(ChaosSchedule::parse(sched.toSpec(), 4, &again, nullptr));
    EXPECT_EQ(again.toSpec(), sched.toSpec());
}

TEST(ChaosSchedule, EmptySpecIsEmptySchedule)
{
    ChaosSchedule sched;
    ASSERT_TRUE(ChaosSchedule::parse("", 4, &sched, nullptr));
    EXPECT_TRUE(sched.events.empty());
}

TEST(ChaosSchedule, RejectsMalformedSpecs)
{
    ChaosSchedule sched;
    std::string err;
    EXPECT_FALSE(ChaosSchedule::parse("meteor@0+10:0", 4, &sched, &err));
    EXPECT_NE(err.find("unknown chaos kind"), std::string::npos);
    EXPECT_FALSE(ChaosSchedule::parse("crash@0:1", 4, &sched, &err));
    EXPECT_FALSE(ChaosSchedule::parse("crash@x+10:1", 4, &sched, &err));
    EXPECT_FALSE(ChaosSchedule::parse("crash@0+0:1", 4, &sched, &err));
    EXPECT_NE(err.find("zero duration"), std::string::npos);
    EXPECT_FALSE(ChaosSchedule::parse("crash@0+10:9", 4, &sched, &err));
    EXPECT_NE(err.find("out of range"), std::string::npos);
    EXPECT_FALSE(ChaosSchedule::parse("slow@0+10:1*-3", 4, &sched, &err));
    EXPECT_NE(err.find("magnitude"), std::string::npos);
    EXPECT_FALSE(ChaosSchedule::parse("slow@0+10:1*", 4, &sched, &err));
}

TEST(ChaosSchedule, RandomIsSeedDeterministic)
{
    ChaosSchedule a = ChaosSchedule::random(7, 4, 1000000, 8);
    ChaosSchedule b = ChaosSchedule::random(7, 4, 1000000, 8);
    ASSERT_EQ(a.events.size(), 8u);
    EXPECT_EQ(a.toSpec(), b.toSpec());

    ChaosSchedule c = ChaosSchedule::random(8, 4, 1000000, 8);
    EXPECT_NE(a.toSpec(), c.toSpec());
}

TEST(ChaosSchedule, RandomSparesShardZeroAndBoundsWindows)
{
    ChaosSchedule sched = ChaosSchedule::random(123, 4, 500000, 32);
    ASSERT_EQ(sched.events.size(), 32u);
    for (const ChaosEvent &ev : sched.events) {
        EXPECT_GE(ev.shard, 1u);
        EXPECT_LT(ev.shard, 4u);
        EXPECT_LT(ev.start, 500000u);
        EXPECT_GT(ev.duration, 0u);
        EXPECT_GT(ev.magnitude, 0.0);
    }
}

TEST(ChaosSchedule, JsonCarriesMagnitudeOnlyForStorms)
{
    ChaosSchedule sched;
    ASSERT_TRUE(
        ChaosSchedule::parse("crash@0+10:1;slow@5+10:2*3", 4, &sched,
                             nullptr));
    std::string json = sched.toJson().dump();
    EXPECT_NE(json.find("\"slow\""), std::string::npos);
    EXPECT_NE(json.find("\"magnitude\""), std::string::npos);
    // The crash event has no magnitude key: exactly one in the dump.
    EXPECT_EQ(json.find("\"magnitude\""),
              json.rfind("\"magnitude\""));
}

} // namespace
} // namespace ccache::serve
