/**
 * @file
 * Tests for the fleet controller layered over the shard router
 * (DESIGN.md §15): the cross-shard fan-out/fan-in barrier and its
 * partial_result degradation, live tenant migration under hot-spot
 * surges (including a source-shard crash mid-handoff), and the
 * fleet-wide backpressure budget's QoS ordering.
 */

#include <gtest/gtest.h>

#include <string>

#include "serve/shard_router.hh"
#include "workload/traffic_gen.hh"

namespace ccache::serve {
namespace {

constexpr unsigned kShards = 4;

ServerParams
makeServe(std::vector<unsigned> weights)
{
    ServerParams params;
    params.tenants.clear();
    for (std::size_t i = 0; i < weights.size(); ++i) {
        TenantQos q;
        q.name = "t" + std::to_string(i);
        q.weight = weights[i];
        params.tenants.push_back(std::move(q));
    }
    return params;
}

RouterParams
makeRouter()
{
    RouterParams router;
    router.shards = kShards;
    router.admissionDeadline = 60000;
    router.shardTimeout = 20000;
    router.verifyGolden = true;
    router.recordEvents = true;
    return router;
}

struct TenantKnobs
{
    double rate = 0.5;
    double fanoutFraction = 0.0;
    unsigned fanoutLegs = 3;
    std::vector<workload::TenantTraffic::RatePhase> phases;
    std::size_t minBytes = 256;
    std::size_t maxBytes = 4096;
};

std::vector<workload::RequestSpec>
makeTraffic(const std::vector<TenantKnobs> &knobs, std::size_t requests,
            std::uint64_t seed)
{
    workload::TrafficParams traffic;
    traffic.totalRequests = requests;
    traffic.seed = seed;
    traffic.zipfKeys = 1 << 20;
    for (std::size_t i = 0; i < knobs.size(); ++i) {
        workload::TenantTraffic t;
        t.name = "t" + std::to_string(i);
        t.requestsPerKilocycle = knobs[i].rate;
        t.minBytes = knobs[i].minBytes;
        t.maxBytes = knobs[i].maxBytes;
        t.fanoutFraction = knobs[i].fanoutFraction;
        t.fanoutLegs = knobs[i].fanoutLegs;
        t.phases = knobs[i].phases;
        traffic.tenants.push_back(std::move(t));
    }
    return generateTraffic(traffic);
}

TEST(Fleet, FanoutBarrierCommitsWhenEveryLegVerifies)
{
    // Healthy fleet, every request fans out 3 ways: each parent counts
    // once, every leg golden-verifies, nothing degrades to partial.
    std::vector<workload::RequestSpec> specs =
        makeTraffic({{0.5, 1.0, 3, {}}}, 200, 31);
    ShardRouter fleet(sim::SystemConfig{}, makeServe({4}), makeRouter());
    FleetReport report = fleet.run(specs, ChaosSchedule{});

    EXPECT_EQ(report.offered, specs.size());
    EXPECT_EQ(report.served + report.shed, report.offered);
    EXPECT_EQ(report.fanoutParents, report.offered);
    EXPECT_EQ(report.fanoutLegs, 3 * report.fanoutParents);
    EXPECT_EQ(report.fanoutPartial, 0u);
    EXPECT_EQ(report.shed, 0u);
    EXPECT_GT(report.goldenChecked, 0u);
    EXPECT_EQ(report.goldenMismatch, 0u);
}

TEST(Fleet, FanoutLegsLandOnDistinctShards)
{
    // With 4 healthy shards and 3-way fan-out, legs spread along the
    // failover order: at least 3 shards must have served work from a
    // single-tenant all-fan-out stream.
    std::vector<workload::RequestSpec> specs =
        makeTraffic({{0.5, 1.0, 3, {}}}, 150, 33);
    ShardRouter fleet(sim::SystemConfig{}, makeServe({4}), makeRouter());
    FleetReport report = fleet.run(specs, ChaosSchedule{});
    unsigned active = 0;
    for (const FleetReport::ShardSummary &s : report.shards)
        if (s.served > 0)
            ++active;
    EXPECT_GE(active, 3u);
}

TEST(Fleet, FanoutDegradesToPartialResultOnTerminalLegFailure)
{
    // One dispatch attempt and a timeout below big requests' own
    // latency tail: a slice of legs fails terminally, and each such
    // parent must shed as a structured partial_result (never hang the
    // barrier).
    std::vector<workload::RequestSpec> specs =
        makeTraffic({{0.5, 1.0, 3, {}, 4096, 32768}}, 300, 35);
    RouterParams router = makeRouter();
    router.shardTimeout = 250;
    router.retry.maxAttempts = 1;
    ShardRouter fleet(sim::SystemConfig{}, makeServe({4}), router);
    // Storm a shard the legs actually land on: legs walk the tenant's
    // failover order, so order[1] always hosts the second leg.
    ChaosSchedule chaos;
    ChaosEvent ev;
    ev.kind = ChaosKind::Slow;
    ev.shard = fleet.failoverOrder(0)[1];
    ev.start = 2000;
    ev.duration = 600000;
    ev.magnitude = 100.0;
    chaos.events.push_back(ev);
    chaos.canonicalize();
    FleetReport report = fleet.run(specs, chaos);

    EXPECT_EQ(report.served + report.shed, report.offered);
    EXPECT_GT(report.fanoutPartial, 0u);
    EXPECT_EQ(report.goldenMismatch, 0u);
    EXPECT_NE(report.rejections.dump().find("partial_result"),
              std::string::npos);
}

TEST(Fleet, FanoutRunIsDeterministic)
{
    std::vector<workload::RequestSpec> specs =
        makeTraffic({{0.4, 0.5, 3, {}}, {0.4, 0.0, 2, {}}}, 300, 37);
    ChaosSchedule chaos;
    ASSERT_TRUE(ChaosSchedule::parse("crash@30000+80000:2", kShards,
                                     &chaos, nullptr));
    auto once = [&]() {
        RouterParams router = makeRouter();
        router.hedgeAge = 2000;
        ShardRouter fleet(sim::SystemConfig{}, makeServe({4, 2}), router);
        return fleet.run(specs, chaos).toJson().dump();
    };
    EXPECT_EQ(once(), once());
}

std::vector<TenantKnobs>
surgeKnobs(std::size_t tenants, std::size_t hot, double rate = 0.5)
{
    // The hot tenant's rate multiplies 6x over [40000, 260000).
    std::vector<TenantKnobs> knobs(tenants);
    for (TenantKnobs &k : knobs)
        k.rate = rate;
    knobs[hot].phases = {{40000, 6.0}, {260000, 1.0}};
    return knobs;
}

RouterParams
rebalancingRouter()
{
    RouterParams router = makeRouter();
    router.rebalancePeriod = 5000;
    router.hotspotRatio = 2.0;
    router.hotspotMinLoad = 3.0;
    router.migrationDrain = 20000;
    router.migrationCooldown = 60000;
    return router;
}

TEST(Fleet, HotspotSurgeTriggersMigrationWithoutDrops)
{
    // Heavy enough that the 6x surge saturates t1's home shard (the
    // detector needs a real queue), light enough that migration keeps
    // every request inside its deadline.
    std::vector<workload::RequestSpec> specs =
        makeTraffic(surgeKnobs(4, 1, 8.0), 4000, 41);
    ShardRouter fleet(sim::SystemConfig{}, makeServe({4, 2, 2, 1}),
                      rebalancingRouter());
    FleetReport report = fleet.run(specs, ChaosSchedule{});

    EXPECT_EQ(report.served + report.shed, report.offered);
    EXPECT_GE(report.migrations, 1u);
    EXPECT_EQ(report.goldenMismatch, 0u);
    EXPECT_GE(report.availability, 0.99);
    bool logged = false;
    for (const std::string &e : fleet.eventLog())
        logged = logged || e.find("migrate tenant=") != std::string::npos;
    EXPECT_TRUE(logged);
}

TEST(Fleet, QuietFleetNeverMigrates)
{
    // Balanced offered load far below the hot-spot floor: the detector
    // must stay quiet (hysteresis against flapping).
    std::vector<workload::RequestSpec> specs =
        makeTraffic(std::vector<TenantKnobs>(4), 600, 43);
    ShardRouter fleet(sim::SystemConfig{}, makeServe({4, 2, 2, 1}),
                      rebalancingRouter());
    FleetReport report = fleet.run(specs, ChaosSchedule{});
    EXPECT_EQ(report.migrations, 0u);
    EXPECT_EQ(report.served + report.shed, report.offered);
}

TEST(Fleet, MigrationSurvivesSourceShardCrash)
{
    // Crash the hot tenant's home shard in the middle of the surge —
    // right where the migration handoff lives. Every request must
    // still be accounted and verified; nothing drops mid-handoff.
    std::vector<workload::RequestSpec> specs =
        makeTraffic(surgeKnobs(4, 1, 8.0), 4000, 47);
    auto once = [&]() {
        ShardRouter fleet(sim::SystemConfig{}, makeServe({4, 2, 2, 1}),
                          rebalancingRouter());
        unsigned home = fleet.failoverOrder(1)[0];
        ChaosSchedule chaos;
        ChaosEvent ev;
        ev.kind = ChaosKind::Crash;
        ev.shard = home;
        ev.start = 50000;
        ev.duration = 60000;
        chaos.events.push_back(ev);
        return fleet.run(specs, chaos);
    };
    FleetReport report = once();
    EXPECT_EQ(report.served + report.shed, report.offered);
    EXPECT_EQ(report.goldenMismatch, 0u);
    EXPECT_GE(report.availability, 0.95);

    FleetReport again = once();
    EXPECT_EQ(report.toJson().dump(), again.toJson().dump());
}

TEST(Fleet, GlobalBackpressureShedsLowestQosFirst)
{
    // A tight fleet-wide budget under a hot surge: the weight-1 tenant
    // pays (evicted or refused at the door), the weight-4 tenant rides
    // through untouched even though the overload is not "its" shard.
    std::vector<workload::RequestSpec> specs =
        makeTraffic(surgeKnobs(4, 1, 8.0), 3000, 53);
    RouterParams router = makeRouter();
    router.globalQueueCap = 32;
    ShardRouter fleet(sim::SystemConfig{}, makeServe({4, 2, 2, 1}),
                      router);
    FleetReport report = fleet.run(specs, ChaosSchedule{});

    EXPECT_EQ(report.served + report.shed, report.offered);
    EXPECT_GT(report.globalEvictions + report.globalSheds, 0u);
    EXPECT_EQ(report.tenants[0].shed, 0u);
    EXPECT_GT(report.tenants[3].shed, 0u);
    EXPECT_NE(report.rejections.dump().find("global_queue_full"),
              std::string::npos);
}

TEST(Fleet, GlobalBackpressureOffByDefault)
{
    // Same overload without a cap: no global evictions, no global
    // sheds, and the run replays byte-identically (feature gating is
    // part of the §8 stream contract).
    std::vector<TenantKnobs> knobs = surgeKnobs(4, 1);
    for (TenantKnobs &k : knobs)
        k.rate = 1.0;
    std::vector<workload::RequestSpec> specs = makeTraffic(knobs, 800, 59);
    auto once = [&]() {
        ShardRouter fleet(sim::SystemConfig{}, makeServe({4, 2, 2, 1}),
                          makeRouter());
        return fleet.run(specs, ChaosSchedule{});
    };
    FleetReport report = once();
    EXPECT_EQ(report.globalEvictions, 0u);
    EXPECT_EQ(report.globalSheds, 0u);
    EXPECT_EQ(report.served + report.shed, report.offered);
    EXPECT_EQ(report.toJson().dump(), once().toJson().dump());
}

TEST(Fleet, PhaseAvailabilityPartitionsTheRun)
{
    // Phase windows partition offered/served/shed exactly; the phase
    // sums must reproduce the fleet totals.
    std::vector<workload::RequestSpec> specs =
        makeTraffic(surgeKnobs(3, 1), 800, 61);
    RouterParams router = rebalancingRouter();
    router.phaseBoundaries = {40000, 260000};
    ShardRouter fleet(sim::SystemConfig{}, makeServe({4, 2, 1}), router);
    FleetReport report = fleet.run(specs, ChaosSchedule{});

    ASSERT_EQ(report.phases.size(), 3u);
    std::uint64_t offered = 0, served = 0, shed = 0;
    for (const FleetReport::PhaseSummary &p : report.phases) {
        EXPECT_EQ(p.served + p.shed, p.offered);
        offered += p.offered;
        served += p.served;
        shed += p.shed;
    }
    EXPECT_EQ(offered, report.offered);
    EXPECT_EQ(served, report.served);
    EXPECT_EQ(shed, report.shed);
    // The surge lives in the middle window.
    EXPECT_GT(report.phases[1].offered, report.phases[0].offered);
}

} // namespace
} // namespace ccache::serve
