/**
 * @file
 * Tests for the reliability primitives of the sharded serving front
 * end: the deterministic retry-backoff schedule and the per-shard
 * circuit breaker state machine (DESIGN.md §12).
 */

#include <gtest/gtest.h>

#include "serve/reliability.hh"

namespace ccache::serve {
namespace {

TEST(BackoffPolicy, PureFunctionOfInputs)
{
    RetryParams params;
    params.seed = 42;
    BackoffPolicy a(params);
    BackoffPolicy b(params);
    for (RequestId id = 0; id < 64; ++id)
        for (unsigned attempt = 1; attempt <= 6; ++attempt)
            EXPECT_EQ(a.delay(id, attempt), b.delay(id, attempt));
}

TEST(BackoffPolicy, ExponentialWithinJitterBand)
{
    RetryParams params;
    params.backoffBase = 1000;
    params.backoffCap = 64000;
    params.jitterFraction = 0.5;
    BackoffPolicy policy(params);
    for (RequestId id = 0; id < 32; ++id) {
        for (unsigned attempt = 1; attempt <= 8; ++attempt) {
            Cycles nominal = std::min<Cycles>(
                params.backoffCap, params.backoffBase << (attempt - 1));
            Cycles d = policy.delay(id, attempt);
            EXPECT_GE(d, static_cast<Cycles>(nominal * 0.75) - 1)
                << "id " << id << " attempt " << attempt;
            EXPECT_LE(d, static_cast<Cycles>(nominal * 1.25) + 1)
                << "id " << id << " attempt " << attempt;
        }
    }
}

TEST(BackoffPolicy, SaturatesAtCapForHugeAttempts)
{
    RetryParams params;
    params.backoffBase = 1000;
    params.backoffCap = 8000;
    params.jitterFraction = 0.0;
    BackoffPolicy policy(params);
    // Attempt numbers past the shift width must not wrap around.
    EXPECT_EQ(policy.delay(7, 40), 8000u);
    EXPECT_EQ(policy.delay(7, 64), 8000u);
    EXPECT_EQ(policy.delay(7, 200), 8000u);
}

TEST(BackoffPolicy, JitterDecorrelatesRequests)
{
    RetryParams params;
    params.jitterFraction = 0.5;
    BackoffPolicy policy(params);
    // Not all first-retry delays may collide: the jitter hash must
    // spread distinct request ids across the band.
    bool differs = false;
    Cycles first = policy.delay(0, 1);
    for (RequestId id = 1; id < 16 && !differs; ++id)
        differs = policy.delay(id, 1) != first;
    EXPECT_TRUE(differs);
}

TEST(BackoffPolicy, NeverZero)
{
    RetryParams params;
    params.backoffBase = 1;
    params.backoffCap = 1;
    params.jitterFraction = 1.0;
    BackoffPolicy policy(params);
    for (RequestId id = 0; id < 64; ++id)
        EXPECT_GE(policy.delay(id, 1), 1u);
}

TEST(CircuitBreaker, TripsOnFailureStreak)
{
    BreakerParams params;
    params.failureThreshold = 3;
    CircuitBreaker breaker(params);

    EXPECT_EQ(breaker.state(0), CircuitBreaker::State::Closed);
    breaker.onFailure(10);
    breaker.onFailure(20);
    EXPECT_EQ(breaker.state(20), CircuitBreaker::State::Closed);
    // A success resets the streak.
    breaker.onSuccess(30);
    breaker.onFailure(40);
    breaker.onFailure(50);
    EXPECT_EQ(breaker.state(50), CircuitBreaker::State::Closed);
    breaker.onFailure(60);
    EXPECT_EQ(breaker.state(60), CircuitBreaker::State::Open);
    EXPECT_FALSE(breaker.allowDispatch(60));
    EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreaker, HalfOpensAfterCooloffAndCloses)
{
    BreakerParams params;
    params.failureThreshold = 1;
    params.openCooloff = 1000;
    params.probeSuccesses = 2;
    CircuitBreaker breaker(params);

    breaker.onFailure(100);
    EXPECT_EQ(breaker.state(100), CircuitBreaker::State::Open);
    EXPECT_EQ(breaker.halfOpenAt(), 1100u);
    EXPECT_FALSE(breaker.allowDispatch(1099));
    EXPECT_EQ(breaker.state(1100), CircuitBreaker::State::HalfOpen);
    EXPECT_TRUE(breaker.allowDispatch(1100));

    // One clean probe is not enough; the second closes it.
    breaker.onSuccess(1200);
    EXPECT_EQ(breaker.state(1200), CircuitBreaker::State::HalfOpen);
    breaker.onSuccess(1300);
    EXPECT_EQ(breaker.state(1300), CircuitBreaker::State::Closed);
}

TEST(CircuitBreaker, ProbeFailureReopens)
{
    BreakerParams params;
    params.failureThreshold = 1;
    params.openCooloff = 1000;
    CircuitBreaker breaker(params);

    breaker.onFailure(0);
    EXPECT_EQ(breaker.state(1000), CircuitBreaker::State::HalfOpen);
    breaker.onFailure(1100);
    EXPECT_EQ(breaker.state(1100), CircuitBreaker::State::Open);
    EXPECT_EQ(breaker.trips(), 2u);
    // The cooloff restarts from the re-trip.
    EXPECT_EQ(breaker.state(2050), CircuitBreaker::State::Open);
    EXPECT_EQ(breaker.state(2100), CircuitBreaker::State::HalfOpen);
}

TEST(CircuitBreaker, ForcedTripIgnoresThreshold)
{
    BreakerParams params;
    params.failureThreshold = 100;
    CircuitBreaker breaker(params);

    breaker.trip(500);
    EXPECT_EQ(breaker.state(500), CircuitBreaker::State::Open);
    EXPECT_EQ(breaker.trips(), 1u);
    EXPECT_EQ(breaker.halfOpenAt(), 500 + params.openCooloff);
}

} // namespace
} // namespace ccache::serve
