/**
 * @file
 * Unit tests for the BitVector reference implementation.
 */

#include <gtest/gtest.h>

#include "common/bitvector.hh"
#include "common/rng.hh"

namespace ccache {
namespace {

TEST(BitVector, ConstructsCleared)
{
    BitVector bv(130);
    EXPECT_EQ(bv.size(), 130u);
    EXPECT_EQ(bv.popcount(), 0u);
    EXPECT_TRUE(bv.none());
}

TEST(BitVector, SetGetRoundTrip)
{
    BitVector bv(100);
    bv.set(0, true);
    bv.set(63, true);
    bv.set(64, true);
    bv.set(99, true);
    EXPECT_TRUE(bv.get(0));
    EXPECT_TRUE(bv.get(63));
    EXPECT_TRUE(bv.get(64));
    EXPECT_TRUE(bv.get(99));
    EXPECT_FALSE(bv.get(1));
    EXPECT_EQ(bv.popcount(), 4u);
    bv.set(63, false);
    EXPECT_FALSE(bv.get(63));
    EXPECT_EQ(bv.popcount(), 3u);
}

TEST(BitVector, SetAllRespectsTailBits)
{
    BitVector bv(70);
    bv.setAll(true);
    EXPECT_EQ(bv.popcount(), 70u);
    // The tail bits beyond size must stay clear in the backing word.
    EXPECT_EQ(bv.words()[1] >> 6, 0u);
    bv.setAll(false);
    EXPECT_EQ(bv.popcount(), 0u);
}

TEST(BitVector, StringRoundTrip)
{
    const std::string s = "1011001110001111";
    BitVector bv = BitVector::fromString(s);
    EXPECT_EQ(bv.toString(), s);
    // MSB-first: character 0 of the string is the top bit.
    EXPECT_TRUE(bv.get(15));
    EXPECT_FALSE(bv.get(14));
}

TEST(BitVector, BytesRoundTrip)
{
    std::vector<std::uint8_t> bytes = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x5a};
    BitVector bv = BitVector::fromBytes(bytes.data(), bytes.size());
    EXPECT_EQ(bv.size(), 48u);
    EXPECT_EQ(bv.toBytes(), bytes);
    // Bit 0 is the LSB of byte 0.
    EXPECT_FALSE(bv.get(0));
    EXPECT_TRUE(bv.get(1));
}

TEST(BitVector, LogicalOps)
{
    BitVector a = BitVector::fromString("1100");
    BitVector b = BitVector::fromString("1010");
    EXPECT_EQ((a & b).toString(), "1000");
    EXPECT_EQ((a | b).toString(), "1110");
    EXPECT_EQ((a ^ b).toString(), "0110");
    EXPECT_EQ((~a).toString(), "0011");
}

TEST(BitVector, NotIsInvolution)
{
    Rng rng(7);
    BitVector bv(257);
    for (std::size_t i = 0; i < bv.size(); ++i)
        bv.set(i, rng.chance(0.5));
    EXPECT_EQ(~~bv, bv);
}

TEST(BitVector, DeMorgan)
{
    Rng rng(11);
    BitVector a(200), b(200);
    for (std::size_t i = 0; i < 200; ++i) {
        a.set(i, rng.chance(0.5));
        b.set(i, rng.chance(0.5));
    }
    EXPECT_EQ(~(a & b), (~a | ~b));
    EXPECT_EQ(~(a | b), (~a & ~b));
}

TEST(BitVector, FindFirstNext)
{
    BitVector bv(300);
    EXPECT_EQ(bv.findFirst(), 300u);
    bv.set(5, true);
    bv.set(64, true);
    bv.set(299, true);
    EXPECT_EQ(bv.findFirst(), 5u);
    EXPECT_EQ(bv.findNext(6), 64u);
    EXPECT_EQ(bv.findNext(65), 299u);
    EXPECT_EQ(bv.findNext(300), 300u);
}

TEST(BitVector, EqualityRequiresSameSize)
{
    BitVector a(10), b(11);
    EXPECT_FALSE(a == b);
}

TEST(BitVector, XorSelfIsZero)
{
    Rng rng(3);
    BitVector a(128);
    for (std::size_t i = 0; i < a.size(); ++i)
        a.set(i, rng.chance(0.3));
    BitVector z = a ^ a;
    EXPECT_TRUE(z.none());
}

} // namespace
} // namespace ccache
