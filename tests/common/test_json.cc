/**
 * @file
 * Tests for the minimal JSON value type: building, serializing,
 * parsing, round-tripping and parse-error reporting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/json.hh"

namespace ccache {
namespace {

TEST(Json, BuildsAndDumpsDeterministically)
{
    Json doc = Json::object();
    doc["zeta"] = 1;
    doc["alpha"] = "hello";
    doc["nested"]["flag"] = true;
    doc["list"].push(1);
    doc["list"].push(2.5);
    doc["list"].push(nullptr);

    // Objects are ordered maps: keys come out sorted, every time.
    EXPECT_EQ(doc.dump(),
              R"({"alpha":"hello","list":[1,2.5,null],)"
              R"("nested":{"flag":true},"zeta":1})");
}

TEST(Json, IntegralNumbersPrintWithoutFraction)
{
    Json doc = Json::object();
    doc["small"] = 42;
    doc["big"] = std::uint64_t{123456789012};
    doc["frac"] = 0.125;
    std::string out = doc.dump();
    EXPECT_NE(out.find("\"small\":42"), std::string::npos);
    EXPECT_NE(out.find("\"big\":123456789012"), std::string::npos);
    EXPECT_NE(out.find("\"frac\":0.125"), std::string::npos);
}

TEST(Json, NonFiniteNumbersSerializeAsNull)
{
    Json doc = Json::object();
    doc["nan"] = std::numeric_limits<double>::quiet_NaN();
    doc["inf"] = std::numeric_limits<double>::infinity();
    std::string out = doc.dump();
    EXPECT_NE(out.find("\"nan\":null"), std::string::npos);
    EXPECT_NE(out.find("\"inf\":null"), std::string::npos);
}

TEST(Json, RoundTripsThroughParse)
{
    Json doc = Json::object();
    doc["name"] = "trace \"quoted\"\n";
    doc["pi"] = 3.141592653589793;
    doc["neg"] = -17;
    doc["arr"].push("a");
    doc["arr"].push(Json::object());

    std::string text = doc.dump(2);
    std::string error;
    Json back = Json::parse(text, &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_EQ(back.dump(), doc.dump());
    EXPECT_EQ(back.find("name")->asString(), "trace \"quoted\"\n");
    EXPECT_DOUBLE_EQ(back.find("pi")->asNumber(), 3.141592653589793);
}

TEST(Json, ParsesEscapesAndUnicode)
{
    std::string error;
    Json v = Json::parse(R"({"s":"a\tbéc","u":"\u00e9"})", &error);
    ASSERT_TRUE(error.empty()) << error;
    // Raw UTF-8 passes through; \uXXXX escapes re-encode as UTF-8.
    EXPECT_EQ(v.find("s")->asString(), std::string("a\tb\xc3\xa9"
                                                   "c"));
    EXPECT_EQ(v.find("u")->asString(), std::string("\xc3\xa9"));
}

TEST(Json, ReportsParseErrorsWithPosition)
{
    std::string error;
    Json v = Json::parse("{\"a\": 1,\n  \"b\" 2}", &error);
    EXPECT_TRUE(v.isNull());
    EXPECT_FALSE(error.empty());
    EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(Json, RejectsTrailingGarbage)
{
    std::string error;
    Json v = Json::parse("{} extra", &error);
    EXPECT_TRUE(v.isNull());
    EXPECT_FALSE(error.empty());
}

TEST(Json, FindReturnsNullptrOnMiss)
{
    Json doc = Json::object();
    doc["present"] = 1;
    EXPECT_NE(doc.find("present"), nullptr);
    EXPECT_EQ(doc.find("absent"), nullptr);
    // find on a non-object is a miss, not a crash.
    Json num = 3;
    EXPECT_EQ(num.find("x"), nullptr);
}

} // namespace
} // namespace ccache
