/**
 * @file
 * Tests for the work-stealing ThreadPool behind the parallel sweep
 * engine: inline (0-worker) mode, completion of large uneven batches,
 * exception propagation, pool reuse across wait() barriers, and the
 * worker-count environment override.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"

namespace ccache {
namespace {

TEST(ThreadPool, InlineModeRunsOnSubmittingThread)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workers(), 0u);

    std::thread::id submitter = std::this_thread::get_id();
    std::thread::id ran_on;
    bool done = false;
    pool.submit([&] {
        ran_on = std::this_thread::get_id();
        done = true;
    });
    // Inline mode executes before submit() returns.
    EXPECT_TRUE(done);
    EXPECT_EQ(ran_on, submitter);
    pool.wait();
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);

    constexpr std::size_t kTasks = 2000;
    std::vector<std::atomic<int>> hits(kTasks);
    for (std::size_t i = 0; i < kTasks; ++i)
        pool.submit([&hits, i] { hits[i].fetch_add(1); });
    pool.wait();
    for (std::size_t i = 0; i < kTasks; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(ThreadPool, ParallelForCoversAllIndices)
{
    ThreadPool pool(3);
    std::vector<int> out(257, 0);
    pool.parallelFor(out.size(), [&](std::size_t i) {
        out[i] = static_cast<int>(i) + 1;
    });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) + 1);
}

TEST(ThreadPool, UnevenTasksLoadBalance)
{
    // A few long tasks mixed with many short ones: all must complete
    // (the stealing path, not timing, is what's asserted).
    ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 64; ++i) {
        pool.submit([&done, i] {
            if (i % 16 == 0)
                std::this_thread::sleep_for(std::chrono::milliseconds(5));
            done.fetch_add(1);
        });
    }
    pool.wait();
    EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, WaitRethrowsFirstTaskException)
{
    ThreadPool pool(2);
    std::atomic<int> completed{0};
    for (int i = 0; i < 32; ++i) {
        pool.submit([&completed, i] {
            if (i == 7)
                throw std::runtime_error("task 7 failed");
            completed.fetch_add(1);
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The remaining tasks still ran; the pool stays usable.
    EXPECT_EQ(completed.load(), 31);

    std::atomic<bool> again{false};
    pool.submit([&again] { again = true; });
    pool.wait();  // no stale exception resurfaces
    EXPECT_TRUE(again.load());
}

TEST(ThreadPool, InlineModePropagatesExceptionsImmediately)
{
    ThreadPool pool(0);
    EXPECT_THROW(pool.submit([] { throw std::runtime_error("boom"); }),
                 std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossWaitBarriers)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&count] { count.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(count.load(), (round + 1) * 10);
    }
}

TEST(ThreadPool, DefaultWorkersHonorsEnvironment)
{
    const char *saved = std::getenv("CCACHE_JOBS");
    std::string saved_value = saved ? saved : "";

    ::setenv("CCACHE_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultWorkers(), 3u);
    ::setenv("CCACHE_JOBS", "0", 1);  // invalid: falls back to hardware
    EXPECT_EQ(ThreadPool::defaultWorkers(), ThreadPool::hardwareWorkers());
    ::unsetenv("CCACHE_JOBS");
    EXPECT_EQ(ThreadPool::defaultWorkers(), ThreadPool::hardwareWorkers());

    if (saved)
        ::setenv("CCACHE_JOBS", saved_value.c_str(), 1);
}

TEST(ThreadPool, HardwareWorkersAtLeastOne)
{
    EXPECT_GE(ThreadPool::hardwareWorkers(), 1u);
}

TEST(ThreadPool, DestructorDrainsQueuedWork)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&done] { done.fetch_add(1); });
        // No wait(): the destructor must drain before joining.
    }
    EXPECT_EQ(done.load(), 50);
}

} // namespace
} // namespace ccache
