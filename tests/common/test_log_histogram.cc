/**
 * @file
 * Tests for the log-bucketed latency histogram (StatLogHistogram): the
 * HDR-style bucket geometry, the quantile error bound the serving
 * layer's tail-latency reporting relies on, merging, and the versioned
 * JSON export ("log_histograms" section, schema v2).
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "common/json.hh"
#include "common/stats.hh"

namespace ccache {
namespace {

TEST(StatLogHistogram, EmptyIsAllZero)
{
    StatLogHistogram h("lat");
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.quantile(0.99), 0u);
}

TEST(StatLogHistogram, TracksExactSummaryStats)
{
    StatLogHistogram h("lat");
    for (std::uint64_t v : {7u, 100u, 3u, 1000u})
        h.sample(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.min(), 3u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), (7.0 + 100.0 + 3.0 + 1000.0) / 4.0);
}

TEST(StatLogHistogram, BucketBoundsRoundTrip)
{
    StatLogHistogram h("lat");
    for (std::uint64_t v : {0u, 1u, 15u, 16u, 17u, 255u, 256u, 1000000u}) {
        std::size_t idx = h.bucketIndex(v);
        EXPECT_GE(v, h.bucketLowerBound(idx)) << "value " << v;
        EXPECT_LE(v, h.bucketUpperBound(idx)) << "value " << v;
    }
}

/** The documented resolution contract: with 16 sub-buckets per octave
 *  a bucket's relative width is at most 1/16 = 6.25%, so quantile()
 *  over-reports by at most that much. */
TEST(StatLogHistogram, QuantileErrorBounded)
{
    StatLogHistogram h("lat");
    for (std::uint64_t v = 1; v <= 100000; v += 7)
        h.sample(v);
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        // Exact quantile of the arithmetic ramp 1, 8, 15, ...
        std::uint64_t n = h.count();
        std::uint64_t rank =
            static_cast<std::uint64_t>(q * static_cast<double>(n) + 0.5);
        std::uint64_t exact = 1 + 7 * (rank ? rank - 1 : 0);
        std::uint64_t est = h.quantile(q);
        EXPECT_GE(est, exact * 15 / 16) << "q=" << q;
        EXPECT_LE(est, exact + exact / 16 + 1) << "q=" << q;
    }
    EXPECT_EQ(h.quantile(1.0), h.max());
}

TEST(StatLogHistogram, MergeRequiresMatchingResolution)
{
    StatLogHistogram a("a"), b("b");
    StatLogHistogram coarse("c", "", /*sub_bucket_bits=*/2);
    a.sample(10);
    b.sample(1000);
    EXPECT_FALSE(a.mergeFrom(coarse));
    EXPECT_TRUE(a.mergeFrom(b));
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.min(), 10u);
    EXPECT_EQ(a.max(), 1000u);
}

TEST(StatLogHistogram, ResetClears)
{
    StatLogHistogram h("lat");
    h.sample(42);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(StatRegistry, LogHistogramsRegisterAndExport)
{
    StatRegistry reg;
    StatLogHistogram &h =
        reg.group("serve").group("t0").logHistogram("queue_cycles",
                                                    "queue wait");
    for (std::uint64_t v = 1; v <= 64; ++v)
        h.sample(v);
    ASSERT_NE(reg.logHistogramAt("serve.t0.queue_cycles"), nullptr);
    EXPECT_EQ(reg.logHistogramAt("absent"), nullptr);

    Json doc = reg.dumpJson();
    EXPECT_EQ(doc["version"].asNumber(), kStatsSchemaVersion);
    EXPECT_EQ(kStatsSchemaVersion, 3);
    Json &lh = doc["log_histograms"]["serve.t0.queue_cycles"];
    EXPECT_EQ(lh["count"].asNumber(), 64.0);
    EXPECT_EQ(lh["min"].asNumber(), 1.0);
    EXPECT_EQ(lh["max"].asNumber(), 64.0);
}

} // namespace
} // namespace ccache
