/**
 * @file
 * Tests for the stats registry: hierarchical groups, histograms,
 * formulas and the versioned JSON export.
 */

#include <gtest/gtest.h>

#include "common/json.hh"
#include "common/stats.hh"

namespace ccache {
namespace {

TEST(StatGroup, QualifiesNamesHierarchically)
{
    StatRegistry reg;
    StatGroup l1 = reg.group("l1").group("0");
    StatCounter &reads = l1.counter("reads", "block reads");
    reads.inc();
    reads.inc();
    EXPECT_EQ(reg.value("l1.0.reads"), 2u);
    // Re-registering through a group returns the same counter.
    reg.group("l1.0").counter("reads").inc();
    EXPECT_EQ(reg.value("l1.0.reads"), 3u);
}

TEST(StatRegistry, HistogramSummarizes)
{
    StatRegistry reg;
    StatHistogram &h = reg.histogram("lat", 10.0, 4, "latency");
    for (double v : {1.0, 5.0, 15.0, 100.0})
        h.sample(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.mean(), (1.0 + 5.0 + 15.0 + 100.0) / 4.0);
    ASSERT_NE(reg.histogramAt("lat"), nullptr);
    EXPECT_EQ(reg.histogramAt("absent"), nullptr);
}

TEST(StatRegistry, FormulasEvaluateLazily)
{
    StatRegistry reg;
    StatCounter &hits = reg.counter("c.hits");
    StatCounter &misses = reg.counter("c.misses");
    reg.formula("c.hit_rate",
                [&] {
                    double total = static_cast<double>(hits.value()) +
                        static_cast<double>(misses.value());
                    return total == 0.0
                        ? 0.0
                        : static_cast<double>(hits.value()) / total;
                },
                "hit fraction");
    EXPECT_DOUBLE_EQ(reg.formulaValue("c.hit_rate"), 0.0);
    hits.inc();
    hits.inc();
    hits.inc();
    misses.inc();
    EXPECT_DOUBLE_EQ(reg.formulaValue("c.hit_rate"), 0.75);
}

TEST(StatRegistry, ResetClearsCountersAndHistograms)
{
    StatRegistry reg;
    reg.counter("n").inc();
    reg.accum("a").add(2.5);
    reg.histogram("h", 1.0, 4).sample(3.0);
    reg.resetAll();
    EXPECT_EQ(reg.value("n"), 0u);
    EXPECT_DOUBLE_EQ(reg.accumValue("a"), 0.0);
    EXPECT_EQ(reg.histogramAt("h")->count(), 0u);
}

TEST(StatRegistry, DumpJsonRoundTrips)
{
    StatRegistry reg;
    StatGroup g = reg.group("cache");
    g.counter("reads", "reads served").inc();
    g.accum("energy_pj").add(12.5);
    g.histogram("lat", 8.0, 8, "latency").sample(20.0);
    reg.formula("cache.read_share", [] { return 0.5; }, "share");

    Json doc = reg.dumpJson();
    std::string error;
    Json back = Json::parse(doc.dump(2), &error);
    ASSERT_TRUE(error.empty()) << error;

    EXPECT_EQ(back.find("schema")->asString(), "ccache-stats");
    EXPECT_EQ(static_cast<int>(back.find("version")->asNumber()),
              kStatsSchemaVersion);
    EXPECT_EQ(back.find("counters")->find("cache.reads")->asNumber(),
              1.0);
    EXPECT_DOUBLE_EQ(
        back.find("accums")->find("cache.energy_pj")->asNumber(), 12.5);
    EXPECT_DOUBLE_EQ(
        back.find("formulas")->find("cache.read_share")->asNumber(),
        0.5);
    const Json *hist = back.find("histograms")->find("cache.lat");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->find("count")->asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(hist->find("mean")->asNumber(), 20.0);
    EXPECT_EQ(back.find("descriptions")->find("cache.reads")->asString(),
              "reads served");
}

} // namespace
} // namespace ccache
