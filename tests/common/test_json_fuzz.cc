/**
 * @file
 * Fuzz-ish robustness tests for the JSON parser: a corpus of valid
 * documents is mutated under fixed seeds (truncation, byte flips,
 * insertions, invalid UTF-8), and hostile inputs (deep nesting, huge
 * numbers) are fed directly. The parser must never crash; it must
 * either return a value (consuming all input) or report an error with
 * an in-bounds line/column position. Crafted inputs additionally pin
 * the exact reported positions.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.hh"
#include "common/rng.hh"

namespace ccache {
namespace {

/** The corpus: shapes the simulator actually emits, plus edge cases. */
std::vector<std::string>
corpus()
{
    return {
        // A miniature ccache-bench-results document.
        R"({"schema": "ccache-bench-results", "version": 1,)"
        R"( "bench": "fig7", "config": {"operand_bytes": 4096},)"
        R"( "metrics": {"copy.speedup": 21.5, "neg": -3.25e-2},)"
        R"( "stats": {"cc": {"counters": {"cc.ops": 64}}}})",
        // Arrays, nulls, booleans, unicode escapes, empty containers.
        R"([1, 2.5, -3e8, true, false, null, "a\"b\\c\u00e9", [], {}])",
        R"({"nested": {"a": [{"b": [0, 1]}, {"c": {}}]}, "": 0})",
        "[0.0, 1e-300, 123456789012345678]",
        R"("just a string")",
        "42",
    };
}

/** Parse and sanity-check the outcome: value XOR positioned error. */
void
expectGraceful(const std::string &input)
{
    std::string error;
    Json v = Json::parse(input, &error);
    if (error.empty()) {
        // Accepted: dumping must not crash either.
        (void)v.dump();
        return;
    }
    // Rejected: the message must carry an in-bounds position.
    auto at = error.find(" at line ");
    ASSERT_NE(at, std::string::npos) << error << " for: " << input;
    std::size_t line = 0, col = 0;
    ASSERT_EQ(std::sscanf(error.c_str() + at, " at line %zu, column %zu",
                          &line, &col),
              2)
        << error;
    std::size_t lines = 1 + static_cast<std::size_t>(std::count(
        input.begin(), input.end(), '\n'));
    EXPECT_GE(line, 1u) << error;
    EXPECT_LE(line, lines) << error;
    EXPECT_GE(col, 1u) << error;
    EXPECT_LE(col, input.size() + 1) << error;
}

TEST(JsonFuzz, CorpusParsesClean)
{
    for (const std::string &doc : corpus()) {
        std::string error;
        Json::parse(doc, &error);
        EXPECT_TRUE(error.empty()) << doc << ": " << error;
    }
}

TEST(JsonFuzz, EveryTruncationIsGraceful)
{
    for (const std::string &doc : corpus())
        for (std::size_t len = 0; len < doc.size(); ++len)
            expectGraceful(doc.substr(0, len));
}

TEST(JsonFuzz, SeededByteFlipsAreGraceful)
{
    Rng rng(0xf022);
    for (const std::string &doc : corpus()) {
        for (int round = 0; round < 200; ++round) {
            std::string mutated = doc;
            unsigned flips = 1 + static_cast<unsigned>(rng.below(3));
            for (unsigned f = 0; f < flips; ++f) {
                std::size_t pos = rng.below(mutated.size());
                mutated[pos] = static_cast<char>(rng.below(256));
            }
            expectGraceful(mutated);
        }
    }
}

TEST(JsonFuzz, SeededInsertionsAndDeletionsAreGraceful)
{
    Rng rng(0xbeef);
    for (const std::string &doc : corpus()) {
        for (int round = 0; round < 100; ++round) {
            std::string mutated = doc;
            if (rng.below(2) == 0) {
                std::size_t pos = rng.below(mutated.size() + 1);
                mutated.insert(mutated.begin() + pos,
                               static_cast<char>(rng.below(256)));
            } else if (!mutated.empty()) {
                mutated.erase(mutated.begin() + rng.below(mutated.size()));
            }
            expectGraceful(mutated);
        }
    }
}

TEST(JsonFuzz, InvalidUtf8InsideStringsIsGraceful)
{
    Rng rng(0x07f8);
    for (int round = 0; round < 100; ++round) {
        // Stray continuation bytes, overlong-ish lead bytes, 0xFF.
        std::string s = "{\"k\": \"";
        unsigned n = 1 + static_cast<unsigned>(rng.below(8));
        for (unsigned i = 0; i < n; ++i) {
            static const unsigned char bad[] = {0x80, 0xbf, 0xc0, 0xe0,
                                                0xf8, 0xfe, 0xff};
            s += static_cast<char>(bad[rng.below(sizeof bad)]);
        }
        s += "\"}";
        expectGraceful(s);
    }
}

TEST(JsonFuzz, DeepNestingFailsInsteadOfOverflowingTheStack)
{
    // Well beyond the parser's depth bound; must error, not crash.
    for (const char *open : {"[", "{\"k\":"}) {
        std::string doc;
        for (int i = 0; i < 5000; ++i)
            doc += open;
        std::string error;
        Json::parse(doc, &error);
        EXPECT_NE(error.find("nesting too deep"), std::string::npos)
            << "opener " << open << ": " << error;
    }

    // At the bound itself parsing still succeeds.
    std::string ok;
    for (int i = 0; i < 255; ++i)
        ok += "[";
    ok += "1";
    for (int i = 0; i < 255; ++i)
        ok += "]";
    std::string error;
    Json::parse(ok, &error);
    EXPECT_TRUE(error.empty()) << error;
}

TEST(JsonFuzz, OverflowingNumbersAreGraceful)
{
    for (const char *doc : {"1e99999", "-1e99999", "1e-99999",
                            "123456789012345678901234567890123456789012",
                            "0.00000000000000000000000000000000000001"}) {
        std::string error;
        Json v = Json::parse(doc, &error);
        EXPECT_TRUE(error.empty()) << doc << ": " << error;
        (void)v.dump();  // non-finite values serialize as null
    }
}

TEST(JsonFuzz, ReportsExactErrorPositions)
{
    struct Case
    {
        const char *input;
        const char *message;
        std::size_t line;
        std::size_t column;
    };
    const std::vector<Case> cases = {
        // Truncated array: fail at end of input (after the space).
        {"[1, 2, ", "unexpected end of input", 1, 8},
        // Missing colon: fail lands on the value that follows the key.
        {"{\n  \"a\": 1,\n  \"b\" 2\n}", "expected ':' after object key",
         3, 7},
        // Bad keyword.
        {"[tru]", "unknown keyword", 1, 2},
        // Unterminated string runs to end of input.
        {"\"abc", "unterminated string", 1, 5},
        // Trailing garbage after a complete value.
        {"{} x", "trailing characters", 1, 4},
        // Bad \u escape: the position is just past the offending digit.
        {"\"\\uZZZZ\"", "bad hex digit", 1, 5},
    };
    for (const Case &c : cases) {
        std::string error;
        Json::parse(c.input, &error);
        ASSERT_FALSE(error.empty()) << c.input;
        EXPECT_NE(error.find(c.message), std::string::npos)
            << c.input << " -> " << error;
        std::string want = "at line " + std::to_string(c.line) +
            ", column " + std::to_string(c.column);
        EXPECT_NE(error.find(want), std::string::npos)
            << c.input << " -> " << error << " (wanted " << want << ")";
    }
}

} // namespace
} // namespace ccache
