/**
 * @file
 * Error-containment tests: panic/CC_ASSERT throw catchable SimError
 * (logging.hh taxonomy), CC_FATAL throws FatalError, the bench_util
 * hardening holds (plausible-or-"unknown" gitSha, atomic result
 * writes), and the sweep engine contains per-point failures as
 * structured "errors" entries without perturbing the surviving points'
 * bytes at any thread count.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "bench/bench_util.hh"
#include "common/logging.hh"

namespace {

namespace fs = std::filesystem;

using ccache::FatalError;
using ccache::SimError;

TEST(SimErrorTest, PanicThrowsCatchableSimError)
{
    ::unsetenv("CCACHE_PANIC_ABORT");
    try {
        CC_PANIC("seeded panic ", 42);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("panic: seeded panic 42"), std::string::npos);
        EXPECT_NE(what.find("test_sim_error.cc"), std::string::npos);
    }
}

TEST(SimErrorTest, AssertThrowsOnlyWhenFalse)
{
    ::unsetenv("CCACHE_PANIC_ABORT");
    EXPECT_NO_THROW(CC_ASSERT(1 + 1 == 2, "arithmetic works"));
    EXPECT_THROW(CC_ASSERT(false, "seeded assert"), SimError);
}

TEST(SimErrorTest, FatalThrowsFatalError)
{
    EXPECT_THROW(CC_FATAL("unusable config"), FatalError);
    // The taxonomy matters: config errors must NOT be catchable as the
    // simulator-bug type.
    try {
        CC_FATAL("unusable config");
    } catch (const SimError &) {
        FAIL() << "FatalError must not derive from SimError";
    } catch (const FatalError &) {
    }
}

TEST(SimErrorTest, CarriesOptionalDiagnostic)
{
    SimError plain("boom");
    EXPECT_TRUE(plain.diagnostic().empty());
    SimError rich("boom", "{\"k\": 1}");
    EXPECT_EQ(rich.diagnostic(), "{\"k\": 1}");
}

TEST(GitShaTest, PlausibilityFilter)
{
    EXPECT_TRUE(bench::plausibleGitSha("deadbeef"));
    EXPECT_TRUE(bench::plausibleGitSha("0123456789abcdef0123456789abcdef"
                                       "01234567"));
    EXPECT_FALSE(bench::plausibleGitSha(""));
    EXPECT_FALSE(bench::plausibleGitSha("abc"));            // too short
    EXPECT_FALSE(bench::plausibleGitSha("DEADBEEF"));       // uppercase
    EXPECT_FALSE(bench::plausibleGitSha("fatal: not a git repo"));
    EXPECT_FALSE(bench::plausibleGitSha("deadbeef\n"));
}

TEST(GitShaTest, NeverReturnsGarbage)
{
    std::string sha = bench::gitSha();
    EXPECT_TRUE(sha == "unknown" || bench::plausibleGitSha(sha)) << sha;
}

TEST(AtomicWriteFileTest, WritesAndLeavesNoTempResidue)
{
    fs::path dir = fs::temp_directory_path() / "ccache_atomic_write";
    fs::remove_all(dir);
    fs::create_directories(dir);
    fs::path target = dir / "out.json";

    ASSERT_TRUE(bench::atomicWriteFile(target.string(), "first\n"));
    ASSERT_TRUE(bench::atomicWriteFile(target.string(), "second\n"));

    std::ifstream in(target);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), "second\n");

    std::size_t entries = 0;
    for (const auto &e : fs::directory_iterator(dir)) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 1u) << "temp files must not survive";
    fs::remove_all(dir);
}

TEST(AtomicWriteFileTest, FailsCleanlyIntoMissingDirectory)
{
    fs::path missing =
        fs::temp_directory_path() / "ccache_no_such_dir" / "out.json";
    fs::remove_all(missing.parent_path());
    EXPECT_FALSE(bench::atomicWriteFile(missing.string(), "data"));
    EXPECT_FALSE(fs::exists(missing));
}

/** Sweep with one seeded failure among healthy points. */
void
buildSweep(bench::SweepRunner &sweep, const std::string &fail_kind)
{
    for (int p = 0; p < 4; ++p) {
        std::string key = "pt_" + std::to_string(p);
        sweep.add(key, [key, p, fail_kind](bench::SweepContext &ctx) {
            if (p == 2) {
                if (fail_kind == "sim_error")
                    throw SimError("seeded point failure",
                                   "{\"cause\": \"test\"}");
                if (fail_kind == "fatal_error")
                    throw FatalError("seeded fatal");
                if (fail_kind == "exception")
                    throw std::runtime_error("seeded exception");
            }
            ctx.metric(key + ".draw",
                       static_cast<double>(ctx.rng().below(1000)));
        });
    }
}

TEST(SweepContainment, FailedPointRecordsErrorOthersComplete)
{
    bench::ResultsWriter results("containment_probe");
    bench::SweepRunner sweep(&results);
    buildSweep(sweep, "sim_error");
    sweep.run(4);

    EXPECT_EQ(sweep.errorCount(), 1u);
    EXPECT_EQ(results.errorCount(), 1u);

    const ccache::Json &doc = results.document();
    const ccache::Json *errors = doc.find("errors");
    ASSERT_NE(errors, nullptr);
    ASSERT_EQ(errors->size(), 1u);
    const ccache::Json &e = errors->asArray().front();
    EXPECT_EQ(e.find("point")->asString(), "pt_2");
    EXPECT_EQ(e.find("kind")->asString(), "sim_error");
    EXPECT_EQ(e.find("message")->asString(), "seeded point failure");
    ASSERT_NE(e.find("diagnostic"), nullptr);
    EXPECT_EQ(e.find("diagnostic")->find("cause")->asString(), "test");

    // The three healthy points all contributed their metrics; the
    // failed one contributed nothing but the error record.
    const ccache::Json *metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_EQ(metrics->size(), 3u);
    EXPECT_EQ(metrics->find("pt_2.draw"), nullptr);
}

TEST(SweepContainment, KindsMapToExceptionTypes)
{
    for (const char *kind : {"fatal_error", "exception"}) {
        bench::ResultsWriter results("containment_kind_probe");
        bench::SweepRunner sweep(&results);
        buildSweep(sweep, kind);
        sweep.run(2);
        const ccache::Json *errors = results.document().find("errors");
        ASSERT_NE(errors, nullptr) << kind;
        EXPECT_EQ(errors->asArray().front().find("kind")->asString(),
                  kind);
    }
}

TEST(SweepContainment, ErrorFreeDocumentHasNoErrorsSection)
{
    // Baseline byte-compatibility: the "errors" key must not exist on
    // healthy runs.
    bench::ResultsWriter results("clean_probe");
    bench::SweepRunner sweep(&results);
    for (int p = 0; p < 3; ++p)
        sweep.add("pt_" + std::to_string(p),
                  [](bench::SweepContext &ctx) {
                      ctx.metric("x", 1.0);
                  });
    sweep.run(2);
    EXPECT_EQ(results.document().find("errors"), nullptr);
    EXPECT_EQ(sweep.errorCount(), 0u);
}

TEST(SweepContainment, DocumentByteIdenticalAcrossThreadCounts)
{
    auto run = [](unsigned jobs) {
        bench::ResultsWriter results("containment_det_probe");
        bench::SweepRunner sweep(&results);
        buildSweep(sweep, "sim_error");
        sweep.run(jobs);
        return results.document().dump(2);
    };
    std::string serial = run(1);
    EXPECT_EQ(serial, run(4));
    EXPECT_EQ(serial, run(8));
}

TEST(SweepContainment, FinishPropagatesContainedFailures)
{
    fs::path dir = fs::temp_directory_path() / "ccache_finish_probe";
    fs::remove_all(dir);
    ::setenv("CCACHE_RESULTS_DIR", dir.string().c_str(), 1);

    {
        bench::ResultsWriter results("finish_clean");
        bench::SweepRunner sweep(&results);
        sweep.add("pt", [](bench::SweepContext &ctx) {
            ctx.metric("pt.v", 1.0);
        });
        sweep.run(1);
        EXPECT_EQ(bench::finish(results, sweep), 0);
        EXPECT_EQ(bench::finish(results, sweep, /*ok=*/false), 1);
    }
    {
        bench::ResultsWriter results("finish_failing");
        bench::SweepRunner sweep(&results);
        buildSweep(sweep, "sim_error");
        sweep.run(1);
        EXPECT_EQ(bench::finish(results, sweep), 1);
        // The result file still landed, with the error section inside.
        std::ifstream in(dir / "finish_failing.json");
        ASSERT_TRUE(in.good());
        std::stringstream buf;
        buf << in.rdbuf();
        EXPECT_NE(buf.str().find("\"errors\""), std::string::npos);
    }

    ::unsetenv("CCACHE_RESULTS_DIR");
    fs::remove_all(dir);
}

} // namespace
