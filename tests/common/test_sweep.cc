/**
 * @file
 * Determinism tests for the parallel sweep engine (DESIGN.md §8): the
 * same sweep run at 1, 2 and 8 threads must produce byte-identical
 * merged outputs — the ResultsWriter document, the merged StatRegistry
 * dump, the merged EventTrace, and the `results/<bench>.json` files on
 * disk — plus unit coverage of the seed-derivation scheme.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/rng.hh"

namespace {

using ccache::deriveSeed;

TEST(DeriveSeed, PureFunctionOfBaseAndKey)
{
    EXPECT_EQ(deriveSeed(1, "alpha"), deriveSeed(1, "alpha"));
    EXPECT_NE(deriveSeed(1, "alpha"), deriveSeed(2, "alpha"));
    EXPECT_NE(deriveSeed(1, "alpha"), deriveSeed(1, "beta"));
    // Single-character differences must decorrelate.
    EXPECT_NE(deriveSeed(1, "rows_1"), deriveSeed(1, "rows_2"));
}

TEST(DeriveSeed, DistinctAcrossRealisticKeyGrid)
{
    std::set<std::uint64_t> seeds;
    for (int cap : {1, 2, 4, 8, 16, 32, 64, 128})
        for (const char *prefix : {"cap_", "rows_", "hit_"})
            seeds.insert(deriveSeed(bench::kSweepBaseSeed,
                                    prefix + std::to_string(cap)));
    EXPECT_EQ(seeds.size(), 24u);
}

TEST(SweepContext, RngStreamsAreIndependentPerLabel)
{
    bench::SweepContext ctx("point", 0, 42);
    ccache::Rng a1 = ctx.rngFor("stream_a");
    ccache::Rng b = ctx.rngFor("stream_b");
    // Drawing from b must not shift a second instance of a.
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 8; ++i)
        first.push_back(a1.next());
    for (int i = 0; i < 100; ++i)
        b.next();
    ccache::Rng a2 = ctx.rngFor("stream_a");
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(a2.next(), first[i]);
}

/**
 * A synthetic sweep exercising every merge surface: per-point RNG
 * draws, metrics, config entries, stats (counters, accumulators,
 * histograms), embedded stats dumps and trace events.
 */
struct SweepOutputs
{
    std::string document;
    std::string stats;
    std::string trace;
};

SweepOutputs
runSweepAt(unsigned jobs)
{
    bench::ResultsWriter results("determinism_probe");
    bench::SweepRunner sweep(&results);
    for (int p = 0; p < 12; ++p) {
        std::string key = "point_" + std::to_string(p);
        sweep.add(key, [key, p](bench::SweepContext &ctx) {
            double acc = 0.0;
            for (int i = 0; i < 100 + 13 * p; ++i)
                acc += static_cast<double>(ctx.rng().below(1000));
            ctx.metric(key + ".rng_sum", acc);
            ctx.config(key + ".iters", 100 + 13 * p);

            auto &c = ctx.stats().counter("probe.events",
                                          "synthetic event count");
            c.inc(static_cast<std::uint64_t>(p) + 1);
            auto &a = ctx.stats().accum("probe.weight",
                                        "synthetic fp accumulator");
            a.add(0.1 * p);
            auto &h = ctx.stats().histogram("probe.dist", 10.0, 8,
                                            "synthetic histogram");
            for (int i = 0; i < 20; ++i)
                h.sample(static_cast<double>(ctx.rng().below(80)));

            ctx.statsJson(key, ctx.stats().dumpJson());

            ctx.trace().enable();
            ctx.trace().complete(ccache::tracecat::kCc, key,
                                 /*track=*/0, /*start=*/10 * p, /*dur=*/5);
        });
    }
    sweep.run(jobs);
    SweepOutputs out;
    out.document = results.document().dump(2);
    out.stats = sweep.mergedStats().dumpJson().dump(2);
    out.trace = sweep.mergedTrace().toJson().dump(2);
    return out;
}

TEST(SweepDeterminism, MergedOutputsByteIdenticalAcrossThreadCounts)
{
    SweepOutputs serial = runSweepAt(1);
    for (unsigned jobs : {2u, 8u}) {
        SweepOutputs parallel = runSweepAt(jobs);
        EXPECT_EQ(serial.document, parallel.document)
            << "ResultsWriter document differs at " << jobs << " threads";
        EXPECT_EQ(serial.stats, parallel.stats)
            << "merged stats differ at " << jobs << " threads";
        EXPECT_EQ(serial.trace, parallel.trace)
            << "merged trace differs at " << jobs << " threads";
    }
}

TEST(SweepDeterminism, RepeatedParallelRunsIdentical)
{
    SweepOutputs a = runSweepAt(8);
    SweepOutputs b = runSweepAt(8);
    EXPECT_EQ(a.document, b.document);
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(a.trace, b.trace);
}

/** Read one file fully (binary). */
std::string
slurp(const std::filesystem::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(SweepDeterminism, ResultFilesOnDiskByteIdentical)
{
    namespace fs = std::filesystem;
    fs::path dir1 = fs::temp_directory_path() / "ccache_det_j1";
    fs::path dir8 = fs::temp_directory_path() / "ccache_det_j8";
    fs::remove_all(dir1);
    fs::remove_all(dir8);

    auto write_at = [](const fs::path &dir, unsigned jobs) {
        ::setenv("CCACHE_RESULTS_DIR", dir.string().c_str(), 1);
        bench::ResultsWriter results("determinism_file_probe");
        bench::SweepRunner sweep(&results);
        for (int p = 0; p < 6; ++p) {
            std::string key = "pt_" + std::to_string(p);
            sweep.add(key, [key](bench::SweepContext &ctx) {
                ctx.metric(key + ".draw",
                           static_cast<double>(ctx.rng().below(1 << 20)));
            });
        }
        sweep.run(jobs);
        return results.write();
    };

    std::string path1 = write_at(dir1, 1);
    std::string path8 = write_at(dir8, 8);
    ::unsetenv("CCACHE_RESULTS_DIR");
    ASSERT_FALSE(path1.empty());
    ASSERT_FALSE(path8.empty());

    // The run-local "perf" section is nondeterministic by design — it
    // measures this run's wall clock (DESIGN.md §13). It must be
    // present in every written file, and everything outside it must be
    // byte-identical across thread counts.
    auto strip_perf = [](const std::string &text) {
        std::string err;
        ccache::Json doc = ccache::Json::parse(text, &err);
        EXPECT_TRUE(err.empty()) << err;
        const ccache::Json *perf = doc.find("perf");
        EXPECT_TRUE(perf && perf->isObject());
        if (perf) {
            EXPECT_TRUE(perf->find("wall_clock_s"));
            EXPECT_TRUE(perf->find("ops_per_sec"));
            EXPECT_TRUE(perf->find("cc_block_ops"));
        }
        ccache::Json::Object out;
        for (const auto &[key, value] : doc.asObject()) {
            if (key != "perf")
                out.emplace(key, value);
        }
        return ccache::Json(std::move(out)).dump(2);
    };
    EXPECT_EQ(strip_perf(slurp(path1)), strip_perf(slurp(path8)));

    fs::remove_all(dir1);
    fs::remove_all(dir8);
}

TEST(SweepRunner, MergesStatsInPointOrder)
{
    // Floating-point accumulators are order-sensitive; the merge order
    // must be the definition order, not completion order.
    auto run = [](unsigned jobs) {
        bench::SweepRunner sweep(nullptr);
        for (int p = 0; p < 16; ++p) {
            sweep.add("p" + std::to_string(p),
                      [p](bench::SweepContext &ctx) {
                ctx.stats().accum("order.sensitive", "fp sum")
                    .add(1.0 / (3.0 + p));
            });
        }
        sweep.run(jobs);
        return sweep.mergedStats().dumpJson().dump();
    };
    EXPECT_EQ(run(1), run(8));
}

TEST(SweepRunner, SeedsIndependentOfThreadCount)
{
    auto seeds_at = [](unsigned jobs) {
        std::vector<std::uint64_t> seeds(8);
        bench::SweepRunner sweep(nullptr);
        for (int p = 0; p < 8; ++p) {
            sweep.add("seed_pt_" + std::to_string(p),
                      [&seeds, p](bench::SweepContext &ctx) {
                seeds[p] = ctx.seed();
            });
        }
        sweep.run(jobs);
        return seeds;
    };
    EXPECT_EQ(seeds_at(1), seeds_at(8));
}

} // namespace
