/**
 * @file
 * Unit tests for bit utilities, stats and logging behaviour.
 */

#include <gtest/gtest.h>

#include "common/bit_util.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace ccache {
namespace {

TEST(BitUtil, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_TRUE(isPowerOfTwo(std::uint64_t{1} << 63));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(65));
}

TEST(BitUtil, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(64), 6u);
    EXPECT_EQ(log2Exact(4096), 12u);
}

TEST(BitUtil, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(64), 6u);
    EXPECT_EQ(log2Ceil(65), 7u);
}

TEST(BitUtil, Bits)
{
    EXPECT_EQ(bits(0xdeadbeef, 0, 8), 0xefu);
    EXPECT_EQ(bits(0xdeadbeef, 8, 8), 0xbeu);
    EXPECT_EQ(bits(0xdeadbeef, 0, 0), 0u);
    EXPECT_EQ(bits(0xffffffffffffffffULL, 0, 64), 0xffffffffffffffffULL);
}

TEST(BitUtil, Alignment)
{
    EXPECT_EQ(alignDown(100, 64), 64u);
    EXPECT_EQ(alignUp(100, 64), 128u);
    EXPECT_EQ(alignUp(128, 64), 128u);
    EXPECT_TRUE(isAligned(4096, 4096));
    EXPECT_FALSE(isAligned(4097, 4096));
}

TEST(BitUtil, DivCeil)
{
    EXPECT_EQ(divCeil(0, 8), 0u);
    EXPECT_EQ(divCeil(1, 8), 1u);
    EXPECT_EQ(divCeil(8, 8), 1u);
    EXPECT_EQ(divCeil(9, 8), 2u);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(CC_FATAL("bad config value ", 42), FatalError);
}

TEST(Stats, CounterAndAccum)
{
    StatRegistry reg;
    reg.counter("l1.hits").inc();
    reg.counter("l1.hits").inc(4);
    reg.accum("energy.core").add(2.5);
    reg.accum("energy.core").add(0.5);
    EXPECT_EQ(reg.value("l1.hits"), 5u);
    EXPECT_DOUBLE_EQ(reg.accumValue("energy.core"), 3.0);
    EXPECT_EQ(reg.value("nonexistent"), 0u);
    reg.resetAll();
    EXPECT_EQ(reg.value("l1.hits"), 0u);
    EXPECT_DOUBLE_EQ(reg.accumValue("energy.core"), 0.0);
}

TEST(Stats, DumpContainsNames)
{
    StatRegistry reg;
    reg.counter("a.b").inc(7);
    reg.accum("c.d").add(1.5);
    std::string dump = reg.dump();
    EXPECT_NE(dump.find("a.b 7"), std::string::npos);
    EXPECT_NE(dump.find("c.d 1.5"), std::string::npos);
}

TEST(Stats, Histogram)
{
    StatHistogram h("lat", 10.0, 5);
    h.sample(5.0);
    h.sample(15.0);
    h.sample(100.0); // overflow bucket
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 40.0);
    EXPECT_DOUBLE_EQ(h.min(), 5.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets().back(), 1u);
}

} // namespace
} // namespace ccache
