/**
 * @file
 * Tests for the alias-table Zipf sampler: pmf correctness, empirical
 * frequency agreement, determinism of the draw stream, the exact
 * two-draw Rng budget the traffic generator relies on, and a
 * multi-million-rank build smoke (the fleet bench key space).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "workload/zipf.hh"

namespace ccache::workload {
namespace {

TEST(ZipfSampler, PmfSumsToOneAndIsMonotone)
{
    ZipfSampler z(1000, 0.99);
    double sum = 0.0;
    for (std::size_t r = 0; r < z.size(); ++r) {
        sum += z.pmf(r);
        if (r > 0) {
            EXPECT_LE(z.pmf(r), z.pmf(r - 1));
        }
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // Zipf shape: pmf(r) / pmf(2r+1) == ((2r+2)/(r+1))^s == 2^s.
    EXPECT_NEAR(z.pmf(0) / z.pmf(1), std::pow(2.0, 0.99), 1e-9);
}

TEST(ZipfSampler, UniformWhenExponentZero)
{
    ZipfSampler z(64, 0.0);
    for (std::size_t r = 0; r < z.size(); ++r)
        EXPECT_NEAR(z.pmf(r), 1.0 / 64.0, 1e-12);
}

TEST(ZipfSampler, EmpiricalFrequenciesMatchPmf)
{
    constexpr std::size_t kRanks = 50;
    constexpr std::size_t kDraws = 200000;
    ZipfSampler z(kRanks, 1.0);
    Rng rng(0xfeed);
    std::vector<std::size_t> counts(kRanks, 0);
    for (std::size_t i = 0; i < kDraws; ++i) {
        std::size_t r = z.sample(rng);
        ASSERT_LT(r, kRanks);
        ++counts[r];
    }
    // The alias method samples the pmf exactly; only sampling noise
    // separates empirical frequency from pmf. 3% absolute slack on the
    // head, looser on the tail where counts are small.
    for (std::size_t r = 0; r < 8; ++r) {
        double freq = static_cast<double>(counts[r]) / kDraws;
        EXPECT_NEAR(freq, z.pmf(r), 0.03) << "rank " << r;
    }
    EXPECT_GT(counts[0], counts[10]);
}

TEST(ZipfSampler, DeterministicStream)
{
    ZipfSampler z(4096, 0.99);
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(z.sample(a), z.sample(b));
}

TEST(ZipfSampler, DrawConsumesExactlyTwoRngValues)
{
    // traffic_gen's §8 stream contract counts on one below() + one
    // uniform() per key draw — two next() calls, no more, no fewer.
    ZipfSampler z(128, 0.99);
    Rng sampled(7), shadow(7);
    for (int i = 0; i < 100; ++i) {
        z.sample(sampled);
        shadow.next();
        shadow.next();
    }
    EXPECT_EQ(sampled.next(), shadow.next());
}

TEST(ZipfSampler, TableIsPureFunctionOfParameters)
{
    // Construction consumes no randomness: two independently built
    // samplers agree draw-for-draw under identical Rng streams.
    ZipfSampler x(999, 0.7);
    ZipfSampler y(999, 0.7);
    Rng a(3), b(3);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(x.sample(a), y.sample(b));
}

TEST(ZipfSampler, MultiMillionRankBuild)
{
    // The fleet bench draws keys from a 2M-rank space; the O(N) alias
    // build must handle it and the head must stay far hotter than the
    // tail.
    constexpr std::size_t kRanks = 2'000'000;
    ZipfSampler z(kRanks, 0.99);
    EXPECT_EQ(z.size(), kRanks);
    EXPECT_GT(z.pmf(0), 1000.0 * z.pmf(kRanks - 1));
    Rng rng(11);
    std::size_t head = 0;
    constexpr std::size_t kDraws = 20000;
    for (std::size_t i = 0; i < kDraws; ++i)
        if (z.sample(rng) < kRanks / 100)
            ++head;
    // With s = 0.99 the hottest 1% of ranks carries roughly half the
    // mass at this scale; loose lower bound to stay noise-proof.
    EXPECT_GT(head, kDraws / 4);
}

} // namespace
} // namespace ccache::workload
