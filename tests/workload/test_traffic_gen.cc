/**
 * @file
 * Tests for the multi-tenant Poisson traffic generator: determinism
 * (the serving §8 contract starts here), the (arrival, tenant) sort
 * order, size/op-mix plumbing and scatter marking.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/traffic_gen.hh"

namespace ccache::workload {
namespace {

TrafficParams
twoTenants()
{
    TrafficParams params;
    params.totalRequests = 500;
    params.seed = 0x1234;
    TenantTraffic a;
    a.name = "a";
    a.requestsPerKilocycle = 2.0;
    a.minBytes = 256;
    a.maxBytes = 1024;
    TenantTraffic b;
    b.name = "b";
    b.requestsPerKilocycle = 8.0;
    b.minBytes = 1024;
    b.maxBytes = 8192;
    b.scatterFraction = 1.0;
    params.tenants = {a, b};
    return params;
}

TEST(TrafficGen, DeterministicAndSorted)
{
    TrafficParams params = twoTenants();
    std::vector<RequestSpec> x = generateTraffic(params);
    std::vector<RequestSpec> y = generateTraffic(params);
    ASSERT_EQ(x.size(), params.totalRequests);
    ASSERT_EQ(y.size(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(x[i].arrival, y[i].arrival);
        EXPECT_EQ(x[i].tenant, y[i].tenant);
        EXPECT_EQ(x[i].op, y[i].op);
        EXPECT_EQ(x[i].bytes, y[i].bytes);
        EXPECT_EQ(x[i].scattered, y[i].scattered);
    }
    EXPECT_TRUE(std::is_sorted(x.begin(), x.end(),
                               [](const RequestSpec &l, const RequestSpec &r) {
                                   return l.arrival != r.arrival
                                              ? l.arrival < r.arrival
                                              : l.tenant < r.tenant;
                               }));
}

TEST(TrafficGen, SeedChangesTheStream)
{
    TrafficParams params = twoTenants();
    std::vector<RequestSpec> x = generateTraffic(params);
    params.seed ^= 1;
    std::vector<RequestSpec> y = generateTraffic(params);
    bool differs = false;
    for (std::size_t i = 0; i < x.size() && !differs; ++i)
        differs = x[i].arrival != y[i].arrival || x[i].bytes != y[i].bytes;
    EXPECT_TRUE(differs);
}

TEST(TrafficGen, SizesBlockRoundedWithinRange)
{
    std::vector<RequestSpec> specs = generateTraffic(twoTenants());
    for (const RequestSpec &s : specs) {
        EXPECT_EQ(s.bytes % 64, 0u);
        if (s.tenant == 0) {
            EXPECT_GE(s.bytes, 256u);
            EXPECT_LE(s.bytes, 1024u);
        } else {
            EXPECT_GE(s.bytes, 1024u);
            EXPECT_LE(s.bytes, 8192u);
        }
    }
}

TEST(TrafficGen, RateRatioApproximatelyHonored)
{
    std::vector<RequestSpec> specs = generateTraffic(twoTenants());
    std::size_t a = 0, b = 0;
    for (const RequestSpec &s : specs)
        (s.tenant == 0 ? a : b)++;
    // b offers 4x a's rate; the merged 500-request prefix should be
    // roughly 1:4 (loose bounds, it is a stochastic process).
    EXPECT_GT(b, 3 * a / 2);
    EXPECT_GT(a, 20u);
}

TEST(TrafficGen, ScatterFractionMarksRequests)
{
    std::vector<RequestSpec> specs = generateTraffic(twoTenants());
    for (const RequestSpec &s : specs) {
        if (s.tenant == 0)
            EXPECT_FALSE(s.scattered);   // fraction 0
        else
            EXPECT_TRUE(s.scattered);    // fraction 1
    }
}

TEST(TrafficGen, ZeroWeightOpsNeverOccur)
{
    TrafficParams params = twoTenants();
    for (TenantTraffic &t : params.tenants) {
        t.weightAnd = 0.0;
        t.weightOr = 0.0;
        t.weightXor = 0.0;
        t.weightCopy = 1.0;
        t.weightSearch = 0.0;
        t.weightCmp = 0.0;
    }
    for (const RequestSpec &s : generateTraffic(params))
        EXPECT_EQ(s.op, cc::CcOpcode::Copy);
}

TEST(TrafficGen, OversizedRequestsAreLegal)
{
    // Sizes beyond the ISA per-op limit are the server's problem (it
    // chunks them); the generator must pass them through untouched.
    TrafficParams params;
    params.totalRequests = 50;
    TenantTraffic t;
    t.requestsPerKilocycle = 1.0;
    t.minBytes = 4096;
    t.maxBytes = 4096;
    t.weightCmp = 1.0;
    t.weightAnd = t.weightOr = t.weightXor = 0.0;
    t.weightCopy = t.weightSearch = 0.0;
    params.tenants = {t};
    for (const RequestSpec &s : generateTraffic(params)) {
        EXPECT_EQ(s.op, cc::CcOpcode::Cmp);
        EXPECT_EQ(s.bytes, 4096u);   // > kMaxCmpBytes, not clamped
    }
}

TEST(TrafficGen, KeysZeroUnlessZipfEnabled)
{
    for (const RequestSpec &s : generateTraffic(twoTenants())) {
        EXPECT_EQ(s.key, 0u);
        EXPECT_EQ(s.fanout, 1u);
    }
}

TEST(TrafficGen, ZipfKeysInRangeAndSkewed)
{
    TrafficParams params = twoTenants();
    params.totalRequests = 2000;
    params.zipfKeys = 100000;
    params.keyExponent = 1.0;
    std::vector<RequestSpec> specs = generateTraffic(params);
    std::size_t hot = 0;
    for (const RequestSpec &s : specs) {
        EXPECT_GE(s.key, 1u);
        EXPECT_LE(s.key, params.zipfKeys);
        if (s.key <= params.zipfKeys / 100)
            ++hot;
    }
    // Zipf(1.0): the hottest 1% of keys draws far more than 1% of
    // traffic (~40% at this size); require a conservative quarter.
    EXPECT_GT(hot, specs.size() / 4);
}

TEST(TrafficGen, ZipfKeysPreserveArrivalStream)
{
    // Key draws ride after the per-request mix draws; arrivals, ops
    // and sizes must replay exactly what the keyless config produced.
    TrafficParams base = twoTenants();
    TrafficParams keyed = twoTenants();
    keyed.zipfKeys = 1 << 20;
    std::vector<RequestSpec> x = generateTraffic(base);
    std::vector<RequestSpec> y = generateTraffic(keyed);
    ASSERT_EQ(x.size(), y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(x[i].arrival, y[i].arrival);
        EXPECT_EQ(x[i].tenant, y[i].tenant);
        EXPECT_EQ(x[i].op, y[i].op);
        EXPECT_EQ(x[i].bytes, y[i].bytes);
    }
}

TEST(TrafficGen, RatePhasesShiftArrivalDensity)
{
    TrafficParams params;
    params.totalRequests = 600;
    params.seed = 99;
    TenantTraffic t;
    t.name = "surge";
    t.requestsPerKilocycle = 1.0;
    t.phases = {{50000, 8.0}, {100000, 1.0}};
    params.tenants = {t};
    std::vector<RequestSpec> specs = generateTraffic(params);
    std::size_t pre = 0, surge = 0;
    for (const RequestSpec &s : specs) {
        if (s.arrival < 50000)
            ++pre;
        else if (s.arrival < 100000)
            ++surge;
    }
    // Equal-length windows at 1x vs 8x rate: the surge window must
    // carry several times the pre-window count.
    EXPECT_GT(surge, 3 * pre);
    EXPECT_GT(pre, 10u);
}

TEST(TrafficGen, UnitMultiplierPhaseIsStreamInvisible)
{
    // A phase that does not change the rate must not change the draw
    // stream either: phase handling consumes no extra randomness.
    TrafficParams base = twoTenants();
    TrafficParams phased = twoTenants();
    for (TenantTraffic &t : phased.tenants)
        t.phases = {{40000, 1.0}};
    std::vector<RequestSpec> x = generateTraffic(base);
    std::vector<RequestSpec> y = generateTraffic(phased);
    ASSERT_EQ(x.size(), y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(x[i].arrival, y[i].arrival);
        EXPECT_EQ(x[i].bytes, y[i].bytes);
    }
}

TEST(TrafficGen, FanoutFractionMarksLegs)
{
    TrafficParams params = twoTenants();
    params.tenants[1].fanoutFraction = 1.0;
    params.tenants[1].fanoutLegs = 5;
    for (const RequestSpec &s : generateTraffic(params)) {
        if (s.tenant == 0)
            EXPECT_EQ(s.fanout, 1u);
        else
            EXPECT_EQ(s.fanout, 5u);
    }
}

TEST(TrafficGen, FanoutOnOneTenantDoesNotPerturbOthers)
{
    // Per-tenant RNG streams: enabling fan-out draws on tenant b must
    // leave tenant a's request sequence bit-identical.
    TrafficParams base = twoTenants();
    TrafficParams fan = twoTenants();
    fan.tenants[1].fanoutFraction = 0.5;
    std::vector<RequestSpec> x = generateTraffic(base);
    std::vector<RequestSpec> y = generateTraffic(fan);
    std::vector<RequestSpec> xa, ya;
    for (const RequestSpec &s : x)
        if (s.tenant == 0)
            xa.push_back(s);
    for (const RequestSpec &s : y)
        if (s.tenant == 0)
            ya.push_back(s);
    // The merged 500-request prefix can cut the per-tenant streams at
    // slightly different points; compare the common prefix.
    std::size_t n = std::min(xa.size(), ya.size());
    ASSERT_GT(n, 20u);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(xa[i].arrival, ya[i].arrival);
        EXPECT_EQ(xa[i].bytes, ya[i].bytes);
        EXPECT_EQ(xa[i].fanout, 1u);
    }
}

} // namespace
} // namespace ccache::workload
