/**
 * @file
 * Tests for the multi-tenant Poisson traffic generator: determinism
 * (the serving §8 contract starts here), the (arrival, tenant) sort
 * order, size/op-mix plumbing and scatter marking.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/traffic_gen.hh"

namespace ccache::workload {
namespace {

TrafficParams
twoTenants()
{
    TrafficParams params;
    params.totalRequests = 500;
    params.seed = 0x1234;
    TenantTraffic a;
    a.name = "a";
    a.requestsPerKilocycle = 2.0;
    a.minBytes = 256;
    a.maxBytes = 1024;
    TenantTraffic b;
    b.name = "b";
    b.requestsPerKilocycle = 8.0;
    b.minBytes = 1024;
    b.maxBytes = 8192;
    b.scatterFraction = 1.0;
    params.tenants = {a, b};
    return params;
}

TEST(TrafficGen, DeterministicAndSorted)
{
    TrafficParams params = twoTenants();
    std::vector<RequestSpec> x = generateTraffic(params);
    std::vector<RequestSpec> y = generateTraffic(params);
    ASSERT_EQ(x.size(), params.totalRequests);
    ASSERT_EQ(y.size(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(x[i].arrival, y[i].arrival);
        EXPECT_EQ(x[i].tenant, y[i].tenant);
        EXPECT_EQ(x[i].op, y[i].op);
        EXPECT_EQ(x[i].bytes, y[i].bytes);
        EXPECT_EQ(x[i].scattered, y[i].scattered);
    }
    EXPECT_TRUE(std::is_sorted(x.begin(), x.end(),
                               [](const RequestSpec &l, const RequestSpec &r) {
                                   return l.arrival != r.arrival
                                              ? l.arrival < r.arrival
                                              : l.tenant < r.tenant;
                               }));
}

TEST(TrafficGen, SeedChangesTheStream)
{
    TrafficParams params = twoTenants();
    std::vector<RequestSpec> x = generateTraffic(params);
    params.seed ^= 1;
    std::vector<RequestSpec> y = generateTraffic(params);
    bool differs = false;
    for (std::size_t i = 0; i < x.size() && !differs; ++i)
        differs = x[i].arrival != y[i].arrival || x[i].bytes != y[i].bytes;
    EXPECT_TRUE(differs);
}

TEST(TrafficGen, SizesBlockRoundedWithinRange)
{
    std::vector<RequestSpec> specs = generateTraffic(twoTenants());
    for (const RequestSpec &s : specs) {
        EXPECT_EQ(s.bytes % 64, 0u);
        if (s.tenant == 0) {
            EXPECT_GE(s.bytes, 256u);
            EXPECT_LE(s.bytes, 1024u);
        } else {
            EXPECT_GE(s.bytes, 1024u);
            EXPECT_LE(s.bytes, 8192u);
        }
    }
}

TEST(TrafficGen, RateRatioApproximatelyHonored)
{
    std::vector<RequestSpec> specs = generateTraffic(twoTenants());
    std::size_t a = 0, b = 0;
    for (const RequestSpec &s : specs)
        (s.tenant == 0 ? a : b)++;
    // b offers 4x a's rate; the merged 500-request prefix should be
    // roughly 1:4 (loose bounds, it is a stochastic process).
    EXPECT_GT(b, 3 * a / 2);
    EXPECT_GT(a, 20u);
}

TEST(TrafficGen, ScatterFractionMarksRequests)
{
    std::vector<RequestSpec> specs = generateTraffic(twoTenants());
    for (const RequestSpec &s : specs) {
        if (s.tenant == 0)
            EXPECT_FALSE(s.scattered);   // fraction 0
        else
            EXPECT_TRUE(s.scattered);    // fraction 1
    }
}

TEST(TrafficGen, ZeroWeightOpsNeverOccur)
{
    TrafficParams params = twoTenants();
    for (TenantTraffic &t : params.tenants) {
        t.weightAnd = 0.0;
        t.weightOr = 0.0;
        t.weightXor = 0.0;
        t.weightCopy = 1.0;
        t.weightSearch = 0.0;
        t.weightCmp = 0.0;
    }
    for (const RequestSpec &s : generateTraffic(params))
        EXPECT_EQ(s.op, cc::CcOpcode::Copy);
}

TEST(TrafficGen, OversizedRequestsAreLegal)
{
    // Sizes beyond the ISA per-op limit are the server's problem (it
    // chunks them); the generator must pass them through untouched.
    TrafficParams params;
    params.totalRequests = 50;
    TenantTraffic t;
    t.requestsPerKilocycle = 1.0;
    t.minBytes = 4096;
    t.maxBytes = 4096;
    t.weightCmp = 1.0;
    t.weightAnd = t.weightOr = t.weightXor = 0.0;
    t.weightCopy = t.weightSearch = 0.0;
    params.tenants = {t};
    for (const RequestSpec &s : generateTraffic(params)) {
        EXPECT_EQ(s.op, cc::CcOpcode::Cmp);
        EXPECT_EQ(s.bytes, 4096u);   // > kMaxCmpBytes, not clamped
    }
}

} // namespace
} // namespace ccache::workload
