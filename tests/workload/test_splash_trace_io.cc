/**
 * @file
 * Round-trip test: SplashTrace::writeTrace emits the sim/trace.hh text
 * format, and what comes back through the parser matches the counts
 * the generator reported.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace.hh"
#include "workload/splash_trace.hh"

namespace ccache::workload {
namespace {

TEST(SplashTraceIo, WriteTraceRoundTripsThroughParser)
{
    SplashTrace gen(SplashApp::Radix);
    std::ostringstream os;
    auto counts = gen.writeTrace(os, 5, 100000, 2);

    auto parsed = sim::parseTrace(os.str());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.records.size(), counts.reads + counts.writes);

    std::uint64_t reads = 0, writes = 0;
    for (const auto &rec : parsed.records) {
        if (rec.kind == sim::TraceRecord::Kind::Read)
            ++reads;
        else if (rec.kind == sim::TraceRecord::Kind::Write)
            ++writes;
        EXPECT_EQ(rec.core, 2u);
        EXPECT_EQ(rec.addr % kBlockSize, 0u) << "not block-aligned";
        EXPECT_GE(rec.addr, gen.heapBase());
    }
    EXPECT_EQ(reads, counts.reads);
    EXPECT_EQ(writes, counts.writes);
    EXPECT_GT(writes, 0u);
    EXPECT_GT(reads, writes);   // reads dominate every profile
}

TEST(SplashTraceIo, DeterministicPerAppAndSeed)
{
    std::ostringstream a, b;
    SplashTrace(SplashApp::Fmm).writeTrace(a, 3, 50000);
    SplashTrace(SplashApp::Fmm).writeTrace(b, 3, 50000);
    EXPECT_EQ(a.str(), b.str());

    std::ostringstream c;
    SplashTrace(SplashApp::Fmm, 0x10000000, 0xfeed).writeTrace(c, 3,
                                                               50000);
    EXPECT_NE(a.str(), c.str());
}

} // namespace
} // namespace ccache::workload
