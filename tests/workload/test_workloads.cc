/**
 * @file
 * Tests for the synthetic workload generators standing in for the
 * paper's proprietary inputs (text corpora, STAR bitmap index, SPLASH-2
 * traces).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/bitmap_gen.hh"
#include "workload/splash_trace.hh"
#include "workload/text_gen.hh"

namespace ccache::workload {
namespace {

TEST(TextGen, DeterministicForSameSeed)
{
    TextGenParams p;
    p.vocabulary = 100;
    TextGen a(p), b(p);
    EXPECT_EQ(a.corpus(1000), b.corpus(1000));
}

TEST(TextGen, VocabularyIsUniqueWords)
{
    TextGenParams p;
    p.vocabulary = 500;
    TextGen gen(p);
    std::set<std::string> seen;
    for (std::size_t i = 0; i < gen.vocabularySize(); ++i) {
        const auto &w = gen.word(i);
        EXPECT_GE(w.size(), p.minWordLen);
        EXPECT_LE(w.size(), p.maxWordLen);
        EXPECT_TRUE(seen.insert(w).second) << "duplicate " << w;
    }
}

TEST(TextGen, ZipfSkewTopWordDominates)
{
    TextGenParams p;
    p.vocabulary = 1000;
    TextGen gen(p);
    std::map<std::string, int> counts;
    for (int i = 0; i < 20000; ++i)
        ++counts[gen.nextWord()];
    // Rank-0 word should appear far more often than rank-100.
    int top = counts[gen.word(0)];
    int mid = counts[gen.word(100)];
    EXPECT_GT(top, 10 * std::max(1, mid));
}

TEST(TextGen, CorpusIsRequestedSize)
{
    TextGenParams p;
    p.vocabulary = 50;
    TextGen gen(p);
    EXPECT_EQ(gen.corpus(12345).size(), 12345u);
}

TEST(BitmapGen, EachRowSetsExactlyOneBin)
{
    BitmapGenParams p;
    p.rows = 4096;
    p.bins = 8;
    BitmapIndex index(p);
    BitVector acc(p.rows);
    std::size_t total = 0;
    for (std::size_t b = 0; b < index.bins(); ++b) {
        total += index.bin(b).popcount();
        acc |= index.bin(b);
    }
    EXPECT_EQ(total, p.rows);           // exactly one bin per row
    EXPECT_EQ(acc.popcount(), p.rows);  // no row unassigned
}

TEST(BitmapGen, SkewMakesEarlyBinsDenser)
{
    BitmapGenParams p;
    p.rows = 1 << 16;
    p.bins = 16;
    p.skew = 1.0;
    BitmapIndex index(p);
    EXPECT_GT(index.bin(0).popcount(), 2 * index.bin(15).popcount());
}

TEST(BitmapGen, ReferenceQueriesMatchManualEvaluation)
{
    BitmapGenParams p;
    p.rows = 2048;
    p.bins = 4;
    BitmapIndex index(p);
    BitVector manual = index.bin(1) | index.bin(2);
    EXPECT_EQ(index.rangeQueryReference(1, 2), manual);
    EXPECT_EQ(index.andReference(0, 0), index.bin(0));
    // Equality-encoded bins are disjoint: AND of two bins is empty.
    EXPECT_TRUE(index.andReference(0, 1).none());
}

TEST(BitmapGen, BinBytesWordPadded)
{
    BitmapGenParams p;
    p.rows = 100;
    p.bins = 2;
    BitmapIndex index(p);
    EXPECT_EQ(index.binBytes(), 16u);  // 100 bits -> 2 x 64-bit words
}

TEST(SplashTrace, AllAppsHaveProfiles)
{
    for (auto app : allSplashApps()) {
        SplashProfile prof = profileFor(app);
        EXPECT_GT(prof.residentPages, 0u);
        EXPECT_GT(prof.writeFraction, 0.0);
        EXPECT_LT(prof.writeFraction, 1.0);
        EXPECT_GT(prof.dirtyPagesPer100k, 0.0);
        EXPECT_NE(toString(app), std::string("?"));
    }
}

TEST(SplashTrace, RadixDirtiesMostPages)
{
    // The paper's Figure 10 shows radix with the worst checkpointing
    // overhead; our profiles must preserve that ordering.
    double radix = profileFor(SplashApp::Radix).dirtyPagesPer100k;
    for (auto app : allSplashApps()) {
        if (app != SplashApp::Radix)
            EXPECT_GT(radix, profileFor(app).dirtyPagesPer100k);
    }
    // raytrace is the tamest.
    double raytrace = profileFor(SplashApp::Raytrace).dirtyPagesPer100k;
    for (auto app : allSplashApps()) {
        if (app != SplashApp::Raytrace)
            EXPECT_LT(raytrace, profileFor(app).dirtyPagesPer100k);
    }
}

TEST(SplashTrace, IntervalsProduceCalibratedDirtyRate)
{
    SplashTrace trace(SplashApp::Radix);
    double mean = profileFor(SplashApp::Radix).dirtyPagesPer100k;
    std::size_t total = 0;
    const int intervals = 200;
    for (int i = 0; i < intervals; ++i)
        total += trace.nextInterval(100000).dirtiedPages.size();
    double measured = static_cast<double>(total) / intervals;
    EXPECT_GT(measured, 0.5 * mean);
    EXPECT_LT(measured, 1.5 * mean);
}

TEST(SplashTrace, PagesAreAlignedAndInHeap)
{
    SplashTrace trace(SplashApp::Fmm, 0x40000000);
    auto act = trace.nextInterval(500000);
    for (Addr p : act.dirtiedPages) {
        EXPECT_EQ(p % kPageSize, 0u);
        EXPECT_GE(p, 0x40000000u);
    }
    EXPECT_GT(act.memAccesses, 0u);
}

TEST(SplashTrace, DeterministicPerSeed)
{
    SplashTrace a(SplashApp::Barnes, 0x1000000, 7);
    SplashTrace b(SplashApp::Barnes, 0x1000000, 7);
    auto ia = a.nextInterval(100000);
    auto ib = b.nextInterval(100000);
    EXPECT_EQ(ia.dirtiedPages, ib.dirtiedPages);
}

} // namespace
} // namespace ccache::workload
