/**
 * @file
 * Unit tests for the sparse functional memory model.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/memory.hh"

namespace ccache::mem {
namespace {

TEST(Memory, UntouchedReadsZero)
{
    Memory m;
    EXPECT_EQ(m.readBlock(0x1000), zeroBlock());
    EXPECT_EQ(m.touchedPages(), 0u);
}

TEST(Memory, BlockRoundTrip)
{
    Memory m;
    Block b;
    for (std::size_t i = 0; i < kBlockSize; ++i)
        b[i] = static_cast<std::uint8_t>(i * 3);
    m.writeBlock(0x4000, b);
    EXPECT_EQ(m.readBlock(0x4000), b);
    EXPECT_EQ(m.touchedPages(), 1u);
}

TEST(Memory, BytesAcrossPageBoundary)
{
    Memory m;
    std::vector<std::uint8_t> data(100);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i);
    Addr addr = 2 * kPageSize - 50;  // straddles a page boundary
    m.writeBytes(addr, data.data(), data.size());
    std::vector<std::uint8_t> out(100, 0xff);
    m.readBytes(addr, out.data(), out.size());
    EXPECT_EQ(out, data);
    EXPECT_EQ(m.touchedPages(), 2u);
}

TEST(Memory, WordHelpers)
{
    Memory m;
    m.writeWord(0x100, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(m.readWord(0x100), 0xdeadbeefcafef00dULL);
}

TEST(Memory, AccessLatencyAndOccupancy)
{
    MemoryParams p;
    p.accessLatency = 120;
    p.blockOccupancy = 7;
    Memory m(p);
    // First access at t=0: pure latency.
    EXPECT_EQ(m.access(0), 120u);
    // Immediate second access queues behind the first transfer.
    EXPECT_EQ(m.access(0), 127u);
    // An access after the channel is free pays no queuing.
    EXPECT_EQ(m.access(1000), 120u);
}

TEST(Memory, CountsAccesses)
{
    Memory m;
    m.writeBlock(0, zeroBlock());
    m.readBlock(0);
    m.readBlock(64);
    EXPECT_EQ(m.writes(), 1u);
    EXPECT_EQ(m.reads(), 2u);
}

} // namespace
} // namespace ccache::mem
