/**
 * @file
 * Unit tests for the deterministic fault injector: determinism of the
 * seeded event stream, purity of the location-hashed stuck-at model,
 * the latent-error lifecycle driven by background upsets, and the
 * zero-cost guarantee of the disabled state.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "fault/fault_injector.hh"

namespace ccache::fault {
namespace {

FaultParams
activeParams()
{
    FaultParams p;
    p.enabled = true;
    p.seed = 42;
    p.transientPerBlockOp = 0.5;
    p.doubleBitFraction = 0.2;
    p.burstFraction = 0.1;
    p.stuckAtPerBlock = 0.3;
    p.stuckAtDoubleFraction = 0.5;
    p.marginFailPerDualRowOp = 0.25;
    p.backgroundUpsetPerInstr = 1.0;
    return p;
}

TEST(FaultInjectorTest, DisabledDrawsNothingAndKeepsNoState)
{
    FaultParams p = activeParams();
    p.enabled = false;
    FaultInjector inj(p);

    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(inj.drawOperandFault(7).none());
        EXPECT_FALSE(inj.drawMarginFailure(7));
        EXPECT_TRUE(inj.stuckAtFault(7, 0x1000).none());
        inj.noteResident(0x1000 + i * kBlockSize);
        inj.backgroundTick();
    }
    EXPECT_EQ(inj.transientsInjected(), 0u);
    EXPECT_EQ(inj.marginFailsInjected(), 0u);
    EXPECT_EQ(inj.backgroundUpsets(), 0u);
    EXPECT_EQ(inj.residentBlocks(), 0u);
    EXPECT_EQ(inj.latentCount(), 0u);
}

TEST(FaultInjectorTest, EventStreamIsDeterministicForFixedSeed)
{
    FaultInjector a(activeParams());
    FaultInjector b(activeParams());

    for (int i = 0; i < 500; ++i) {
        FaultEvent ea = a.drawOperandFault(i % 8);
        FaultEvent eb = b.drawOperandFault(i % 8);
        EXPECT_EQ(ea.kind, eb.kind);
        EXPECT_EQ(ea.nbits, eb.nbits);
        EXPECT_EQ(ea.bits, eb.bits);
        EXPECT_EQ(a.drawMarginFailure(i % 8), b.drawMarginFailure(i % 8));
    }
    EXPECT_EQ(a.transientsInjected(), b.transientsInjected());
    EXPECT_EQ(a.marginFailsInjected(), b.marginFailsInjected());
    EXPECT_GT(a.transientsInjected(), 0u);
    EXPECT_GT(a.marginFailsInjected(), 0u);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge)
{
    FaultParams p2 = activeParams();
    p2.seed = 43;
    FaultInjector a(activeParams());
    FaultInjector b(p2);

    bool diverged = false;
    for (int i = 0; i < 200 && !diverged; ++i) {
        FaultEvent ea = a.drawOperandFault(0);
        FaultEvent eb = b.drawOperandFault(0);
        diverged = ea.kind != eb.kind || ea.bits != eb.bits;
    }
    EXPECT_TRUE(diverged);
}

TEST(FaultInjectorTest, TransientKindsFollowConfiguredFractions)
{
    FaultParams p = activeParams();
    p.transientPerBlockOp = 1.0;
    FaultInjector inj(p);

    int singles = 0, doubles = 0, bursts = 0;
    for (int i = 0; i < 2000; ++i) {
        FaultEvent ev = inj.drawOperandFault(0);
        ASSERT_FALSE(ev.none());
        switch (ev.kind) {
          case FaultKind::TransientSingle:
            EXPECT_EQ(ev.nbits, 1u);
            ++singles;
            break;
          case FaultKind::TransientDouble: {
            EXPECT_EQ(ev.nbits, 2u);
            EXPECT_NE(ev.bits[0], ev.bits[1]);
            EXPECT_EQ(ev.bits[0] / 64, ev.bits[1] / 64);  // same word
            ++doubles;
            break;
          }
          case FaultKind::TransientBurst:
            EXPECT_EQ(ev.nbits, 3u);
            EXPECT_EQ(ev.bits[0] / 64, ev.bits[2] / 64);  // same word
            EXPECT_EQ(ev.bits[1], ev.bits[0] + 1);
            EXPECT_EQ(ev.bits[2], ev.bits[0] + 2);
            ++bursts;
            break;
          default:
            FAIL() << "unexpected kind";
        }
        for (unsigned j = 0; j < ev.nbits; ++j)
            EXPECT_LT(ev.bits[j], 8 * kBlockSize);
    }
    // 70% singles / 20% doubles / 10% bursts, with slack.
    EXPECT_NEAR(singles / 2000.0, 0.7, 0.05);
    EXPECT_NEAR(doubles / 2000.0, 0.2, 0.05);
    EXPECT_NEAR(bursts / 2000.0, 0.1, 0.05);
}

TEST(FaultInjectorTest, StuckAtIsPureAndClearedByRemap)
{
    FaultParams p = activeParams();
    p.stuckAtPerBlock = 1.0;
    FaultInjector inj(p);

    FaultEvent first = inj.stuckAtFault(3, 0x4000);
    ASSERT_EQ(first.kind, FaultKind::StuckAt);
    for (int i = 0; i < 10; ++i) {
        FaultEvent again = inj.stuckAtFault(3, 0x4000);
        EXPECT_EQ(again.nbits, first.nbits);
        EXPECT_EQ(again.bits, first.bits);
    }
    // Another location draws an independent defect pattern.
    FaultEvent other = inj.stuckAtFault(3, 0x8000);
    EXPECT_TRUE(other.bits != first.bits || other.nbits != first.nbits);

    // After discard-and-refill the line sits in fresh cells.
    inj.remap(0x4000);
    EXPECT_TRUE(inj.isRemapped(0x4000));
    EXPECT_TRUE(inj.stuckAtFault(3, 0x4000).none());
    EXPECT_FALSE(inj.stuckAtFault(3, 0x8000).none());
}

TEST(FaultInjectorTest, CorruptIsItsOwnInverse)
{
    FaultParams p = activeParams();
    p.transientPerBlockOp = 1.0;
    FaultInjector inj(p);

    Block blk{};
    for (std::size_t i = 0; i < kBlockSize; ++i)
        blk[i] = static_cast<std::uint8_t>(i * 37);
    const Block orig = blk;

    FaultEvent ev = inj.drawOperandFault(0);
    FaultInjector::corrupt(blk, ev);
    EXPECT_NE(blk, orig);
    FaultInjector::corrupt(blk, ev);
    EXPECT_EQ(blk, orig);
}

TEST(FaultInjectorTest, WeakSubarraysScaleRates)
{
    FaultParams p;
    p.enabled = true;
    p.seed = 7;
    p.weakSubarrayFraction = 0.25;
    p.weakSubarrayScale = 4.0;
    FaultInjector inj(p);

    int weak = 0;
    const int kArrays = 4000;
    for (int i = 0; i < kArrays; ++i) {
        double scale = inj.rateScale(i);
        EXPECT_TRUE(scale == 1.0 || scale == 4.0);
        if (scale == 4.0)
            ++weak;
        // The selection is a pure hash: stable across calls.
        EXPECT_EQ(inj.rateScale(i), scale);
    }
    EXPECT_NEAR(weak / static_cast<double>(kArrays), 0.25, 0.03);
}

TEST(FaultInjectorTest, BackgroundUpsetsAccumulateAndEscalate)
{
    FaultParams p;
    p.enabled = true;
    p.seed = 11;
    p.backgroundUpsetPerInstr = 1.0;
    FaultInjector inj(p);

    // No residents: ticks are no-ops.
    inj.backgroundTick();
    EXPECT_EQ(inj.backgroundUpsets(), 0u);

    inj.noteResident(0x1000);
    inj.noteResident(0x1000);  // duplicate collapses
    EXPECT_EQ(inj.residentBlocks(), 1u);

    inj.backgroundTick();
    EXPECT_EQ(inj.backgroundUpsets(), 1u);
    const FaultEvent *ev = inj.latentAt(0x1000);
    ASSERT_NE(ev, nullptr);
    EXPECT_EQ(ev->nbits, 1u);

    // Repeated strikes on the only resident block escalate within the
    // same word, up to a burst, modelling the scrub-interval exposure.
    for (int i = 0; i < 64; ++i)
        inj.backgroundTick();
    ev = inj.latentAt(0x1000);
    ASSERT_NE(ev, nullptr);
    EXPECT_GE(ev->nbits, 2u);
    EXPECT_LE(ev->nbits, 3u);
    for (unsigned i = 1; i < ev->nbits; ++i)
        EXPECT_EQ(ev->bits[i] / 64, ev->bits[0] / 64);

    inj.clearLatent(0x1000);
    EXPECT_EQ(inj.latentAt(0x1000), nullptr);
    EXPECT_EQ(inj.latentCount(), 0u);
}

TEST(FaultInjectorTest, ScrubberWalksResidentsRoundRobin)
{
    FaultParams p;
    p.enabled = true;
    p.seed = 13;
    p.backgroundUpsetPerInstr = 1.0;
    FaultInjector inj(p);

    for (int i = 0; i < 8; ++i)
        inj.noteResident(0x2000 + i * kBlockSize);
    inj.backgroundTick();  // plant one latent error somewhere
    ASSERT_EQ(inj.latentCount(), 1u);

    // A full sweep of 8 blocks (two visits of 4) must find the error.
    std::size_t visited = 0;
    auto hits = inj.scrubVisit(4, &visited);
    EXPECT_EQ(visited, 4u);
    auto hits2 = inj.scrubVisit(4, &visited);
    EXPECT_EQ(visited, 4u);
    EXPECT_EQ(hits.size() + hits2.size(), 1u);

    const auto &hit = hits.empty() ? hits2.front() : hits.front();
    EXPECT_NE(inj.latentAt(hit.addr), nullptr);
    EXPECT_EQ(hit.event.nbits, 1u);
}

TEST(FaultInjectorTest, ValidateRejectsBadRates)
{
    FaultParams p;
    p.transientPerBlockOp = 1.5;
    EXPECT_THROW(p.validate(), FatalError);

    FaultParams q;
    q.doubleBitFraction = 0.8;
    q.burstFraction = 0.5;  // fractions sum past 1
    EXPECT_THROW(q.validate(), FatalError);

    FaultParams r;
    r.weakSubarrayScale = -1.0;
    EXPECT_THROW(r.validate(), FatalError);
}

TEST(FaultInjectorTest, SubarrayIdsAreDistinctAcrossLevels)
{
    auto a = subarrayId(CacheLevel::L1, 0, 0);
    auto b = subarrayId(CacheLevel::L2, 0, 0);
    auto c = subarrayId(CacheLevel::L3, 0, 0);
    auto d = subarrayId(CacheLevel::L3, 1, 0);
    auto e = subarrayId(CacheLevel::L3, 0, 1);
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
    EXPECT_NE(c, d);
    EXPECT_NE(c, e);
    EXPECT_NE(d, e);
}

} // namespace
} // namespace ccache::fault
