/**
 * @file
 * Property tests for the sampled runner: over a sweep of generator
 * seeds, the reconstituted count metrics are EXACT (they come from the
 * profiling pass, not the sample) and the estimated miss rate stays
 * inside the bench's gate bound.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sample/sampled_runner.hh"

namespace ccache::sample {
namespace {

constexpr std::size_t kInterval = 250;
constexpr double kMissRateBound = 0.05;  ///< bench/sampled_trace gate

/** Small three-phase trace (stream / hot / cc), phase-aligned to the
 *  interval size, randomized per seed. */
std::vector<sim::TraceRecord>
makeTrace(std::uint64_t seed, std::size_t rounds = 8)
{
    Rng rng(seed);
    std::vector<sim::TraceRecord> out;
    std::uint64_t streamCursor = 0;
    auto mem = [&](sim::TraceRecord::Kind kind, CoreId core, Addr addr) {
        sim::TraceRecord rec;
        rec.kind = kind;
        rec.core = core;
        rec.addr = addr;
        out.push_back(rec);
    };
    for (std::size_t round = 0; round < rounds; ++round) {
        for (std::size_t i = 0; i < kInterval; ++i)
            mem(sim::TraceRecord::Kind::Read, 0,
                0x10000000 + (streamCursor++) * kBlockSize);
        for (std::size_t i = 0; i < kInterval; ++i)
            mem(rng.chance(0.3) ? sim::TraceRecord::Kind::Write
                                : sim::TraceRecord::Kind::Read,
                1, 0x20000000 + rng.below(64) * kBlockSize);
        for (std::size_t i = 0; i < kInterval; ++i) {
            sim::TraceRecord rec;
            rec.kind = sim::TraceRecord::Kind::CcOp;
            rec.core = 2;
            rec.instr = cc::CcInstruction::copy(
                0x30000000 + rng.below(64) * 1024,
                0x30000000 + (64 + rng.below(64)) * 1024, 1024);
            out.push_back(rec);
        }
    }
    return out;
}

SampledRunParams
testParams()
{
    SampledRunParams params;
    params.intervalRecords = kInterval;
    params.clusters = 4;
    // Warm-up must span a full phase round (3 intervals) so a
    // representative whose phase keeps state resident across rounds
    // (the hot loop) sees warmed L2/L3 the way the full run does.
    params.warmupRecords = 3 * kInterval;
    params.jobs = 1;
    return params;
}

TEST(SampledRunner, CountMetricsExactAcrossSeeds)
{
    for (std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
        auto records = makeTrace(seed);
        SampledRun run = runSampled(records, testParams());
        sim::TraceReplayResult golden = runFull(records);

        // The SimPoint property: counts come from profiling every
        // record, so they match the full run exactly, per seed.
        EXPECT_EQ(run.estimate.reads, golden.reads) << seed;
        EXPECT_EQ(run.estimate.writes, golden.writes) << seed;
        EXPECT_EQ(run.estimate.ccInstructions, golden.ccInstructions)
            << seed;
        EXPECT_EQ(run.estimate.recordsTotal, records.size()) << seed;
    }
}

TEST(SampledRunner, MissRateWithinGateBoundAcrossSeeds)
{
    for (std::uint64_t seed : {101u, 202u, 303u, 404u, 505u}) {
        auto records = makeTrace(seed);
        SampledRun run = runSampled(records, testParams());
        sim::TraceReplayResult golden = runFull(records);
        SampleError err = compareWithGolden(run.estimate, golden);
        EXPECT_LE(err.memMissRate, kMissRateBound) << "seed " << seed;
        // Far fewer intervals simulated than exist.
        EXPECT_LT(run.estimate.intervalsReplayed,
                  run.estimate.intervalsTotal);
    }
}

TEST(SampledRunner, DeterministicAcrossWorkerCounts)
{
    auto records = makeTrace(7);
    SampledRunParams p1 = testParams();
    SampledRunParams p8 = testParams();
    p8.jobs = 8;
    SampledRun a = runSampled(records, p1);
    SampledRun b = runSampled(records, p8);

    ASSERT_EQ(a.representatives.size(), b.representatives.size());
    for (std::size_t i = 0; i < a.representatives.size(); ++i) {
        EXPECT_EQ(a.representatives[i].interval,
                  b.representatives[i].interval);
        EXPECT_EQ(a.representatives[i].metrics.cycles,
                  b.representatives[i].metrics.cycles);
        EXPECT_EQ(a.representatives[i].metrics.l1Misses,
                  b.representatives[i].metrics.l1Misses);
        EXPECT_EQ(a.representatives[i].coreCycles,
                  b.representatives[i].coreCycles);
    }
    EXPECT_EQ(a.estimate.memMissRate, b.estimate.memMissRate);
    EXPECT_EQ(a.estimate.cycles, b.estimate.cycles);
}

TEST(SampledRunner, WarmupClampedAtTraceStart)
{
    auto records = makeTrace(9, 4);
    SampledRunParams params = testParams();
    params.warmupRecords = 100000;   // far more than any prefix
    SampledRun run = runSampled(records, params);
    for (const RepresentativeRun &rep : run.representatives) {
        // Warm-up never reaches before record 0.
        EXPECT_LE(rep.warmupUsed,
                  static_cast<std::size_t>(rep.interval) * kInterval);
    }
}

TEST(SampledRunner, EmptyTraceYieldsEmptyRun)
{
    SampledRun run = runSampled({}, testParams());
    EXPECT_TRUE(run.representatives.empty());
    EXPECT_EQ(run.estimate.recordsTotal, 0u);
    EXPECT_EQ(run.estimate.intervalsTotal, 0u);
}

} // namespace
} // namespace ccache::sample
