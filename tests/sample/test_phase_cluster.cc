/**
 * @file
 * Tests for the deterministic k-means phase clusterer.
 */

#include <gtest/gtest.h>

#include "sample/phase_cluster.hh"

namespace ccache::sample {
namespace {

/** A synthetic interval whose normalized() vector is dominated by its
 *  read/write mix — enough to build well-separated clusters. */
IntervalFeatures
interval(std::size_t index, std::uint64_t reads, std::uint64_t writes,
         std::uint64_t ccOps = 0)
{
    IntervalFeatures iv;
    iv.firstRecord = index * 100;
    iv.records = reads + writes + ccOps;
    iv.reads = reads;
    iv.writes = writes;
    iv.ccOps = ccOps;
    iv.ccBytes = ccOps * 1024;
    iv.workingSetPages = 1 + index % 3;
    return iv;
}

/** A/B/C pattern repeated: pure-read, pure-write, CC-heavy. */
std::vector<IntervalFeatures>
threePhaseTrace(std::size_t rounds)
{
    std::vector<IntervalFeatures> ivs;
    for (std::size_t r = 0; r < rounds; ++r) {
        ivs.push_back(interval(ivs.size(), 100, 0));
        ivs.push_back(interval(ivs.size(), 0, 100));
        ivs.push_back(interval(ivs.size(), 0, 0, 100));
    }
    return ivs;
}

TEST(PhaseCluster, SeparatesObviousPhases)
{
    auto ivs = threePhaseTrace(6);
    ClusterParams params;
    params.clusters = 3;
    auto out = clusterIntervals(ivs, params);

    ASSERT_EQ(out.phases.size(), 3u);
    ASSERT_EQ(out.assignment.size(), ivs.size());
    // Each phase owns exactly the 6 intervals of its behaviour, and
    // the A/B/C pattern means assignment repeats with period 3.
    for (const Phase &p : out.phases) {
        EXPECT_EQ(p.intervalCount, 6u);
        EXPECT_NEAR(p.weight, 6.0 / 18.0, 1e-12);
    }
    for (std::size_t i = 0; i < ivs.size(); ++i)
        EXPECT_EQ(out.assignment[i], out.assignment[i % 3]) << i;
    // Phase numbering is stable: phase 0 contains interval 0.
    EXPECT_EQ(out.assignment[0], 0u);
}

TEST(PhaseCluster, WeightsSumToOne)
{
    auto ivs = threePhaseTrace(5);
    ClusterParams params;
    params.clusters = 8;   // more clusters than behaviours
    auto out = clusterIntervals(ivs, params);
    double total = 0.0;
    std::uint64_t count = 0;
    for (const Phase &p : out.phases) {
        total += p.weight;
        count += p.intervalCount;
        EXPECT_LT(p.representative, ivs.size());
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_EQ(count, ivs.size());
}

TEST(PhaseCluster, DeterministicAcrossRepeatsAndSeedSensitive)
{
    auto ivs = threePhaseTrace(7);
    ClusterParams params;
    auto a = clusterIntervals(ivs, params);
    auto b = clusterIntervals(ivs, params);
    ASSERT_EQ(a.phases.size(), b.phases.size());
    EXPECT_EQ(a.assignment, b.assignment);
    for (std::size_t p = 0; p < a.phases.size(); ++p) {
        EXPECT_EQ(a.phases[p].representative,
                  b.phases[p].representative);
        EXPECT_EQ(a.phases[p].intervalCount, b.phases[p].intervalCount);
    }
    EXPECT_EQ(a.iterations, b.iterations);
}

TEST(PhaseCluster, MoreClustersThanIntervalsClamps)
{
    std::vector<IntervalFeatures> ivs = {interval(0, 10, 0),
                                         interval(1, 0, 10)};
    ClusterParams params;
    params.clusters = 16;
    auto out = clusterIntervals(ivs, params);
    EXPECT_LE(out.phases.size(), 2u);
    EXPECT_GE(out.phases.size(), 1u);
    std::uint64_t count = 0;
    for (const Phase &p : out.phases)
        count += p.intervalCount;
    EXPECT_EQ(count, 2u);
}

TEST(PhaseCluster, SingleClusterRepresentsEverything)
{
    auto ivs = threePhaseTrace(4);
    ClusterParams params;
    params.clusters = 1;
    auto out = clusterIntervals(ivs, params);
    ASSERT_EQ(out.phases.size(), 1u);
    EXPECT_EQ(out.phases[0].intervalCount, ivs.size());
    EXPECT_NEAR(out.phases[0].weight, 1.0, 1e-12);
    for (std::size_t a : out.assignment)
        EXPECT_EQ(a, 0u);
}

TEST(PhaseCluster, EmptyInputYieldsNoPhases)
{
    auto out = clusterIntervals({}, ClusterParams{});
    EXPECT_TRUE(out.phases.empty());
    EXPECT_TRUE(out.assignment.empty());
}

} // namespace
} // namespace ccache::sample
