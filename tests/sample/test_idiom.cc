/**
 * @file
 * Tests for the CC-idiom converter pass.
 */

#include <gtest/gtest.h>

#include "sample/idiom.hh"

namespace ccache::sample {
namespace {

using Kind = sim::TraceRecord::Kind;

sim::TraceRecord
rec(Kind kind, Addr addr, CoreId core = 0)
{
    sim::TraceRecord r;
    r.kind = kind;
    r.core = core;
    r.addr = addr;
    return r;
}

void
appendCopyRun(std::vector<sim::TraceRecord> &out, Addr src, Addr dst,
              std::size_t blocks, CoreId core = 0)
{
    for (std::size_t b = 0; b < blocks; ++b) {
        out.push_back(rec(Kind::Read, src + b * kBlockSize, core));
        out.push_back(rec(Kind::Write, dst + b * kBlockSize, core));
    }
}

TEST(IdiomConverter, RewritesCopyRun)
{
    std::vector<sim::TraceRecord> in;
    appendCopyRun(in, 0x10000, 0x20000, 8);
    auto out = convertIdioms(in);

    ASSERT_EQ(out.records.size(), 1u);
    const sim::TraceRecord &r = out.records[0];
    EXPECT_EQ(r.kind, Kind::CcOp);
    EXPECT_EQ(r.instr.op, cc::CcOpcode::Copy);
    EXPECT_EQ(r.instr.src1, 0x10000u);
    EXPECT_EQ(r.instr.dest, 0x20000u);
    EXPECT_EQ(r.instr.size, 8 * kBlockSize);
    EXPECT_EQ(out.stats.copyRuns, 1u);
    EXPECT_EQ(out.stats.copyBlocks, 8u);
    EXPECT_EQ(out.stats.recordsIn, 16u);
    EXPECT_EQ(out.stats.recordsOut, 1u);
}

TEST(IdiomConverter, RewritesZeroAndCmpRuns)
{
    std::vector<sim::TraceRecord> in;
    for (std::size_t b = 0; b < 6; ++b)
        in.push_back(rec(Kind::Write, 0x30000 + b * kBlockSize));
    for (std::size_t b = 0; b < 4; ++b) {
        in.push_back(rec(Kind::Read, 0x40000 + b * kBlockSize));
        in.push_back(rec(Kind::Read, 0x50000 + b * kBlockSize));
    }
    auto out = convertIdioms(in);

    ASSERT_EQ(out.records.size(), 2u);
    EXPECT_EQ(out.records[0].instr.op, cc::CcOpcode::Buz);
    EXPECT_EQ(out.records[0].instr.size, 6 * kBlockSize);
    EXPECT_EQ(out.records[1].instr.op, cc::CcOpcode::Cmp);
    EXPECT_EQ(out.records[1].instr.size, 4 * kBlockSize);
    EXPECT_EQ(out.stats.zeroBlocks, 6u);
    EXPECT_EQ(out.stats.cmpBlocks, 4u);
}

TEST(IdiomConverter, ShortRunsPassThroughRaw)
{
    std::vector<sim::TraceRecord> in;
    appendCopyRun(in, 0x10000, 0x20000, 3);   // below minRunBlocks = 4
    in.push_back(rec(Kind::Read, 0x90000));
    auto out = convertIdioms(in);
    EXPECT_EQ(out.records.size(), in.size());
    EXPECT_EQ(out.stats.copyRuns, 0u);
    EXPECT_EQ(out.stats.convertedRecords(), 0u);
}

TEST(IdiomConverter, InterleavedCoresDoNotBreakRuns)
{
    // Core 0 runs a memcpy while core 1 runs a memset, records
    // interleaved one-for-one; both must still convert.
    std::vector<sim::TraceRecord> a, b, in;
    appendCopyRun(a, 0x10000, 0x20000, 8, 0);
    for (std::size_t blk = 0; blk < 16; ++blk)
        b.push_back(rec(Kind::Write, 0x30000 + blk * kBlockSize, 1));
    for (std::size_t i = 0; i < a.size(); ++i) {
        in.push_back(a[i]);
        in.push_back(b[i]);
    }
    auto out = convertIdioms(in);

    EXPECT_EQ(out.stats.copyRuns, 1u);
    EXPECT_EQ(out.stats.copyBlocks, 8u);
    EXPECT_EQ(out.stats.zeroRuns, 1u);
    EXPECT_EQ(out.stats.zeroBlocks, 16u);
    ASSERT_EQ(out.records.size(), 2u);
}

TEST(IdiomConverter, LongRunsSplitAtIsaCaps)
{
    // 300 copied blocks = 19200 B > kMaxVectorBytes (16 KB): two
    // cc_copy chunks. 16 compared pairs = 1 KB > kMaxCmpBytes (512 B):
    // two cc_cmp chunks.
    std::vector<sim::TraceRecord> in;
    appendCopyRun(in, 0x100000, 0x200000, 300);
    for (std::size_t b = 0; b < 16; ++b) {
        in.push_back(rec(Kind::Read, 0x300000 + b * kBlockSize));
        in.push_back(rec(Kind::Read, 0x310000 + b * kBlockSize));
    }
    auto out = convertIdioms(in);

    ASSERT_EQ(out.records.size(), 4u);
    EXPECT_EQ(out.records[0].instr.size, cc::kMaxVectorBytes);
    EXPECT_EQ(out.records[1].instr.size,
              300 * kBlockSize - cc::kMaxVectorBytes);
    EXPECT_EQ(out.records[2].instr.size, cc::kMaxCmpBytes);
    EXPECT_EQ(out.records[3].instr.size,
              16 * kBlockSize - cc::kMaxCmpBytes);
    EXPECT_EQ(out.stats.copyBlocks, 300u);
    EXPECT_EQ(out.stats.cmpBlocks, 16u);
}

TEST(IdiomConverter, NonIdiomRecordsPassThroughInOrder)
{
    std::vector<sim::TraceRecord> in;
    in.push_back(rec(Kind::Read, 0x1000));
    sim::TraceRecord ccrec;
    ccrec.kind = Kind::CcOp;
    ccrec.instr = cc::CcInstruction::buz(0x10000, 1024);
    in.push_back(ccrec);
    in.push_back(rec(Kind::Write, 0x2040));
    in.push_back(rec(Kind::Read, 0x5000));
    auto out = convertIdioms(in);

    ASSERT_EQ(out.records.size(), 4u);
    EXPECT_EQ(out.records[0].addr, 0x1000u);
    EXPECT_EQ(out.records[1].kind, Kind::CcOp);
    EXPECT_EQ(out.records[2].addr, 0x2040u);
    EXPECT_EQ(out.records[3].addr, 0x5000u);
    EXPECT_EQ(out.stats.convertedRecords(), 0u);
}

TEST(IdiomConverter, MisalignedAddressesBreakRuns)
{
    // Same shape as a memset run but off block alignment: must pass
    // through raw rather than become an (invalid) cc_buz.
    std::vector<sim::TraceRecord> in;
    for (std::size_t b = 0; b < 8; ++b)
        in.push_back(rec(Kind::Write, 0x30004 + b * kBlockSize));
    auto out = convertIdioms(in);
    EXPECT_EQ(out.records.size(), in.size());
    EXPECT_EQ(out.stats.zeroRuns, 0u);
}

TEST(IdiomConverter, StrayRecordBetweenRunsKeepsBothRuns)
{
    std::vector<sim::TraceRecord> in;
    appendCopyRun(in, 0x10000, 0x20000, 8);
    in.push_back(rec(Kind::Write, 0x900000));   // lone scratch write
    appendCopyRun(in, 0x40000, 0x50000, 8);
    auto out = convertIdioms(in);

    EXPECT_EQ(out.stats.copyRuns, 2u);
    EXPECT_EQ(out.stats.copyBlocks, 16u);
    ASSERT_EQ(out.records.size(), 3u);
    EXPECT_EQ(out.records[1].kind, Kind::Write);
}

} // namespace
} // namespace ccache::sample
