/**
 * @file
 * Tests for the streaming interval profiler.
 */

#include <gtest/gtest.h>

#include "sample/interval_profiler.hh"

namespace ccache::sample {
namespace {

sim::TraceRecord
rec(sim::TraceRecord::Kind kind, Addr addr, CoreId core = 0)
{
    sim::TraceRecord r;
    r.kind = kind;
    r.core = core;
    r.addr = addr;
    return r;
}

sim::TraceRecord
ccRec(cc::CcInstruction instr, CoreId core = 0)
{
    sim::TraceRecord r;
    r.kind = sim::TraceRecord::Kind::CcOp;
    r.core = core;
    r.instr = instr;
    return r;
}

TEST(IntervalProfiler, SlicesAndCountsExactly)
{
    IntervalProfiler prof(4);
    for (int i = 0; i < 6; ++i)
        prof.observe(rec(sim::TraceRecord::Kind::Read,
                         0x1000 + static_cast<Addr>(i) * kBlockSize));
    for (int i = 0; i < 3; ++i)
        prof.observe(rec(sim::TraceRecord::Kind::Write, 0x2000));
    prof.observe(ccRec(cc::CcInstruction::buz(0x10000, 1024)));
    prof.finish();

    // 10 records at 4 per interval: 4 + 4 + a 2-record tail.
    ASSERT_EQ(prof.intervals().size(), 3u);
    EXPECT_EQ(prof.intervals()[0].records, 4u);
    EXPECT_EQ(prof.intervals()[0].firstRecord, 0u);
    EXPECT_EQ(prof.intervals()[1].firstRecord, 4u);
    EXPECT_EQ(prof.intervals()[2].records, 2u);

    EXPECT_EQ(prof.totals().records, 10u);
    EXPECT_EQ(prof.totals().reads, 6u);
    EXPECT_EQ(prof.totals().writes, 3u);
    EXPECT_EQ(prof.totals().ccOps, 1u);
    EXPECT_EQ(prof.totals().ccBytes, 1024u);

    // finish() is idempotent.
    prof.finish();
    EXPECT_EQ(prof.intervals().size(), 3u);
}

TEST(IntervalProfiler, WorkingSetCountsDistinctPages)
{
    IntervalProfiler prof(8);
    // Two accesses to page 0, three to page 1, one CC op touching two
    // operand pages (4 and 8).
    prof.observe(rec(sim::TraceRecord::Kind::Read, 0x0));
    prof.observe(rec(sim::TraceRecord::Kind::Write, 0x40));
    prof.observe(rec(sim::TraceRecord::Kind::Read, kPageSize));
    prof.observe(rec(sim::TraceRecord::Kind::Read, kPageSize + 0x80));
    prof.observe(rec(sim::TraceRecord::Kind::Read, kPageSize));
    prof.observe(ccRec(cc::CcInstruction::copy(4 * kPageSize,
                                               8 * kPageSize, 64)));
    prof.finish();
    ASSERT_EQ(prof.intervals().size(), 1u);
    EXPECT_EQ(prof.intervals()[0].workingSetPages, 4u);
}

TEST(IntervalProfiler, ReuseHistorySpansIntervals)
{
    IntervalProfiler prof(2);
    // Block A touched in interval 0, then again in interval 1: the
    // second touch is a reuse, not a cold touch, because the last-touch
    // map persists across the interval boundary.
    prof.observe(rec(sim::TraceRecord::Kind::Read, 0x1000));
    prof.observe(rec(sim::TraceRecord::Kind::Read, 0x2000));
    prof.observe(rec(sim::TraceRecord::Kind::Read, 0x1000));
    prof.observe(rec(sim::TraceRecord::Kind::Read, 0x3000));
    prof.finish();
    ASSERT_EQ(prof.intervals().size(), 2u);
    EXPECT_EQ(prof.intervals()[0].coldTouches, 2u);
    EXPECT_EQ(prof.intervals()[1].coldTouches, 1u);  // only 0x3000

    std::uint64_t reuses = 0;
    for (std::uint64_t n : prof.intervals()[1].reuseHist)
        reuses += n;
    EXPECT_EQ(reuses, 1u);  // the revisit of 0x1000
}

TEST(IntervalProfiler, NormalizedFeaturesBounded)
{
    IntervalProfiler prof(16);
    for (int i = 0; i < 8; ++i)
        prof.observe(rec(sim::TraceRecord::Kind::Read,
                         static_cast<Addr>(i) * kPageSize));
    for (int i = 0; i < 4; ++i)
        prof.observe(rec(sim::TraceRecord::Kind::Write, 0x9000));
    prof.observe(ccRec(cc::CcInstruction::buz(0x100000, 4096)));
    prof.finish();

    std::vector<double> f = prof.intervals()[0].normalized();
    ASSERT_FALSE(f.empty());
    for (double v : f) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
    // Read fraction leads the vector: 8 of 13 records.
    EXPECT_NEAR(f[0], 8.0 / 13.0, 1e-12);
}

TEST(IntervalProfiler, OneShotHelperMatchesStreaming)
{
    std::vector<sim::TraceRecord> records;
    for (int i = 0; i < 10; ++i)
        records.push_back(rec(sim::TraceRecord::Kind::Read,
                              static_cast<Addr>(i) * kBlockSize));
    auto oneShot = profileTrace(records, 3);

    IntervalProfiler prof(3);
    for (const auto &r : records)
        prof.observe(r);
    prof.finish();

    ASSERT_EQ(oneShot.size(), prof.intervals().size());
    for (std::size_t i = 0; i < oneShot.size(); ++i) {
        EXPECT_EQ(oneShot[i].records, prof.intervals()[i].records);
        EXPECT_EQ(oneShot[i].coldTouches,
                  prof.intervals()[i].coldTouches);
    }
}

} // namespace
} // namespace ccache::sample
