/**
 * @file
 * Tests for ccbench's catalog selection and resume planning
 * (tools/catalog_filter.hh): substring + regex composition, the
 * journal append-mode rule that keeps `--filter` and `--resume`
 * composable, and journal-vs-results resume planning.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "tools/catalog_filter.hh"

namespace {

using cctools::CatalogFilter;

TEST(CatalogFilter, EmptySelectsEverything)
{
    CatalogFilter f;
    EXPECT_TRUE(f.empty());
    EXPECT_TRUE(f.matches("anything_at_all"));
}

TEST(CatalogFilter, SubstringIsAnyOf)
{
    CatalogFilter f;
    f.addSubstring("fig7");
    f.addSubstring("serve");
    EXPECT_FALSE(f.empty());
    EXPECT_TRUE(f.matches("fig7_microbench"));
    EXPECT_TRUE(f.matches("serve_scheduler"));
    EXPECT_FALSE(f.matches("ablation_fault"));
}

TEST(CatalogFilter, RegexIsPartialMatch)
{
    CatalogFilter f;
    std::string err;
    ASSERT_TRUE(f.addRegex("^serve_", &err)) << err;
    EXPECT_TRUE(f.matches("serve_scheduler"));
    EXPECT_FALSE(f.matches("observe_serve"));   // anchored
}

TEST(CatalogFilter, SubstringAndRegexBothMustPass)
{
    CatalogFilter f;
    std::string err;
    f.addSubstring("sched");
    ASSERT_TRUE(f.addRegex("^serve", &err)) << err;
    EXPECT_TRUE(f.matches("serve_scheduler"));
    EXPECT_FALSE(f.matches("serve_latency"));   // regex ok, substring not
    EXPECT_FALSE(f.matches("noc_scheduler"));   // substring ok, regex not
}

TEST(CatalogFilter, BadRegexReportsError)
{
    CatalogFilter f;
    std::string err;
    EXPECT_FALSE(f.addRegex("*oops", &err));
    EXPECT_FALSE(err.empty());
    EXPECT_TRUE(f.empty());   // nothing was added
}

/** The rule that keeps --filter and --resume composable: any run not
 *  covering the full catalog must append to the journal, otherwise a
 *  filtered run would erase every other bench's completion record. */
TEST(JournalAppendMode, OnlyUnrestrictedFreshRunsTruncate)
{
    EXPECT_FALSE(cctools::journalAppendMode(false, false));
    EXPECT_TRUE(cctools::journalAppendMode(true, false));    // --resume
    EXPECT_TRUE(cctools::journalAppendMode(false, true));    // --filter
    EXPECT_TRUE(cctools::journalAppendMode(true, true));
}

TEST(PlanResume, RequiresJournalEntryAndResultFile)
{
    std::vector<std::string> names = {"a", "b", "c", "d"};
    std::set<std::string> done = {"a", "b", "d"};
    // "b" was journaled but its result file vanished (cleaned dir):
    // it must re-run, the journal alone is not proof.
    auto exists = [](const std::string &n) { return n != "b"; };
    std::vector<bool> cached = cctools::planResume(names, done, exists);
    ASSERT_EQ(cached.size(), 4u);
    EXPECT_TRUE(cached[0]);
    EXPECT_FALSE(cached[1]);
    EXPECT_FALSE(cached[2]);   // never ran
    EXPECT_TRUE(cached[3]);
}

/** Filtered-run resume: the plan for the filtered subset must not
 *  depend on unrelated catalog entries in the journal. */
TEST(PlanResume, FilteredSubsetIgnoresOtherJournalEntries)
{
    CatalogFilter f;
    std::string err;
    ASSERT_TRUE(f.addRegex("serve", &err)) << err;
    std::vector<std::string> catalog = {"fig7_microbench", "serve_scheduler",
                                        "ablation_fault"};
    std::vector<std::string> selected;
    for (const std::string &n : catalog)
        if (f.matches(n))
            selected.push_back(n);
    ASSERT_EQ(selected, std::vector<std::string>{"serve_scheduler"});

    std::set<std::string> done = {"fig7_microbench", "serve_scheduler"};
    auto exists = [](const std::string &) { return true; };
    std::vector<bool> cached = cctools::planResume(selected, done, exists);
    EXPECT_TRUE(cached[0]);   // satisfied; filtered resume runs nothing
}

} // namespace
