/**
 * @file
 * Unit tests for a single cache level: tags, LRU, fills/evictions,
 * pinning, and geometry-mapped placement.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "common/rng.hh"

namespace ccache::cache {
namespace {

CacheParams
tinyParams()
{
    CacheParams p;
    p.geometry = geometry::CacheGeometryParams::l1d();
    p.level = CacheLevel::L1;
    p.accessLatency = 5;
    return p;
}

Block
patternBlock(std::uint8_t seed)
{
    Block b;
    for (std::size_t i = 0; i < kBlockSize; ++i)
        b[i] = static_cast<std::uint8_t>(seed + i);
    return b;
}

class CacheTest : public ::testing::Test
{
  protected:
    CacheTest() : cache(tinyParams(), &em, &stats, "l1.0") {}
    energy::EnergyModel em;
    StatRegistry stats;
    Cache cache;
};

TEST_F(CacheTest, MissOnEmpty)
{
    Block out;
    EXPECT_FALSE(cache.contains(0x1000));
    EXPECT_FALSE(cache.read(0x1000, out));
    EXPECT_EQ(cache.state(0x1000), Mesi::Invalid);
}

TEST_F(CacheTest, FillThenHit)
{
    Block data = patternBlock(1);
    auto fill = cache.fill(0x1000, data, Mesi::Exclusive);
    ASSERT_TRUE(fill);
    EXPECT_FALSE(fill->evicted);
    EXPECT_TRUE(cache.contains(0x1000));
    EXPECT_EQ(cache.state(0x1000), Mesi::Exclusive);
    Block out;
    EXPECT_TRUE(cache.read(0x1000, out));
    EXPECT_EQ(out, data);
}

TEST_F(CacheTest, WriteMarksDirty)
{
    cache.fill(0x1000, patternBlock(1), Mesi::Exclusive);
    cache.write(0x1000, patternBlock(2));
    auto ev = cache.invalidate(0x1000);
    ASSERT_TRUE(ev);
    EXPECT_TRUE(ev->dirty);
    EXPECT_EQ(ev->data, patternBlock(2));
}

TEST_F(CacheTest, LruEviction)
{
    // The L1 has 8 ways; fill 9 blocks of the same set and check the
    // first-touched one is evicted.
    std::size_t set_stride = 64u << 8;  // same set every 2^8 blocks (6+1+1)
    // Same set: addresses differing only above the set index bits.
    // L1 geometry: 64 sets, so set repeats every 64*64 = 4096 bytes.
    Addr base = 0x100000;
    for (unsigned i = 0; i < 8; ++i) {
        auto fill = cache.fill(base + i * 4096, patternBlock(i),
                               Mesi::Shared);
        ASSERT_TRUE(fill);
        EXPECT_FALSE(fill->evicted) << i;
    }
    // Touch block 0 so block 1 becomes LRU.
    Block out;
    cache.read(base, out);
    auto fill = cache.fill(base + 8 * 4096, patternBlock(9), Mesi::Shared);
    ASSERT_TRUE(fill);
    ASSERT_TRUE(fill->evicted);
    EXPECT_EQ(fill->evicted->addr, base + 1 * 4096);
    (void)set_stride;
}

TEST_F(CacheTest, PinnedLinesAreNotVictims)
{
    Addr base = 0x100000;
    for (unsigned i = 0; i < 8; ++i)
        cache.fill(base + i * 4096, patternBlock(i), Mesi::Shared);
    // Pin the LRU line (block 0).
    EXPECT_TRUE(cache.pin(base));
    auto fill = cache.fill(base + 8 * 4096, patternBlock(9), Mesi::Shared);
    ASSERT_TRUE(fill);
    ASSERT_TRUE(fill->evicted);
    EXPECT_NE(fill->evicted->addr, base);  // pinned line survived
    EXPECT_TRUE(cache.isPinned(base));
    cache.unpin(base);
    EXPECT_FALSE(cache.isPinned(base));
}

TEST_F(CacheTest, AllPinnedBlocksFill)
{
    Addr base = 0x100000;
    for (unsigned i = 0; i < 8; ++i) {
        cache.fill(base + i * 4096, patternBlock(i), Mesi::Shared);
        cache.pin(base + i * 4096);
    }
    auto fill = cache.fill(base + 8 * 4096, patternBlock(9), Mesi::Shared);
    EXPECT_FALSE(fill.has_value());
    EXPECT_EQ(stats.value("l1.0.fill_blocked_pinned"), 1u);
}

TEST_F(CacheTest, RefillUpdatesInPlace)
{
    cache.fill(0x2000, patternBlock(3), Mesi::Shared);
    auto refill = cache.fill(0x2000, patternBlock(4), Mesi::Modified);
    ASSERT_TRUE(refill);
    EXPECT_FALSE(refill->evicted);
    EXPECT_EQ(*cache.peek(0x2000), patternBlock(4));
    EXPECT_EQ(cache.state(0x2000), Mesi::Modified);
    EXPECT_EQ(cache.validLines(), 1u);
}

TEST_F(CacheTest, PeekPokeBypassEnergy)
{
    cache.fill(0x3000, patternBlock(5), Mesi::Exclusive);
    double before = em.dynamic().dynamicTotal();
    ASSERT_NE(cache.peek(0x3000), nullptr);
    EXPECT_TRUE(cache.poke(0x3000, patternBlock(6)));
    EXPECT_DOUBLE_EQ(em.dynamic().dynamicTotal(), before);
    EXPECT_EQ(*cache.peek(0x3000), patternBlock(6));
}

TEST_F(CacheTest, EnergyChargedPerTableV)
{
    cache.fill(0x1000, patternBlock(1), Mesi::Exclusive);  // one write
    Block out;
    cache.read(0x1000, out);  // one read
    const auto &p = em.params();
    double expect =
        p.cacheOpEnergy(CacheLevel::L1, energy::CacheOp::Write) +
        p.cacheOpEnergy(CacheLevel::L1, energy::CacheOp::Read);
    EXPECT_DOUBLE_EQ(em.dynamic().l1Access + em.dynamic().l1Ic, expect);
}

TEST_F(CacheTest, MarkDirtyPromotesToModified)
{
    cache.fill(0x1000, patternBlock(1), Mesi::Exclusive);
    cache.markDirty(0x1000);
    EXPECT_EQ(cache.state(0x1000), Mesi::Modified);
    auto ev = cache.invalidate(0x1000);
    ASSERT_TRUE(ev);
    EXPECT_TRUE(ev->dirty);
}

TEST_F(CacheTest, PlaceOfResidentLine)
{
    cache.fill(0x1000, patternBlock(1), Mesi::Exclusive);
    auto place = cache.placeOf(0x1000);
    ASSERT_TRUE(place);
    auto expected = cache.geom().place(cache.geom().setIndex(0x1000), 0);
    EXPECT_EQ(*place, expected);
    EXPECT_FALSE(cache.placeOf(0x9999000).has_value());
}

TEST_F(CacheTest, ForEachLineAndAddrOf)
{
    cache.fill(0x1000, patternBlock(1), Mesi::Exclusive);
    cache.fill(0x2040, patternBlock(2), Mesi::Shared);
    cache.write(0x1000, patternBlock(7));
    std::vector<Addr> seen;
    cache.forEachLine([&](Addr addr, Mesi state, bool dirty,
                          const Block &data) {
        seen.push_back(addr);
        if (addr == 0x1000) {
            EXPECT_TRUE(dirty);
            EXPECT_EQ(data, patternBlock(7));
            EXPECT_EQ(state, Mesi::Exclusive);
        } else {
            EXPECT_EQ(addr, 0x2040u & ~Addr{63});
            EXPECT_FALSE(dirty);
        }
    });
    EXPECT_EQ(seen.size(), 2u);
}

TEST(TagArray, VictimPrefersInvalid)
{
    TagArray tags(4, 2);
    auto v = tags.victim(0);
    ASSERT_TRUE(v);
    tags.line(0, *v).state = Mesi::Shared;
    tags.line(0, *v).tag = 1;
    tags.touch(0, *v);
    auto v2 = tags.victim(0);
    ASSERT_TRUE(v2);
    EXPECT_NE(*v2, *v);
}

TEST(TagArray, AllPinnedNoVictim)
{
    TagArray tags(1, 2);
    for (std::size_t w = 0; w < 2; ++w) {
        tags.line(0, w).state = Mesi::Shared;
        tags.line(0, w).pinned = true;
    }
    EXPECT_FALSE(tags.victim(0).has_value());
}

} // namespace
} // namespace ccache::cache
