/**
 * @file
 * Edge-case tests for the hierarchy: L3 back-invalidation on eviction
 * (inclusion), write fallbacks under fully-pinned sets, dirty-data
 * survival through deep eviction chains, and NUCA slice behaviour.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "common/rng.hh"

namespace ccache::cache {
namespace {

Block
pat(std::uint8_t seed)
{
    Block b;
    for (std::size_t i = 0; i < kBlockSize; ++i)
        b[i] = static_cast<std::uint8_t>(seed * 7 + i);
    return b;
}

class HierarchyEdge : public ::testing::Test
{
  protected:
    HierarchyEdge() : hier(HierarchyParams{}, &em, &stats) {}
    energy::EnergyModel em;
    StatRegistry stats;
    Hierarchy hier;
};

TEST_F(HierarchyEdge, L3EvictionBackInvalidatesPrivateCopies)
{
    // Pin the page->slice mapping so all conflict addresses share slice 0.
    // L3 slice geometry: 2048 sets, 16 ways; same-set stride is
    // 2048 * 64 = 128 KB.
    const Addr base = 0x4000000;
    const Addr stride = 2048 * 64;
    for (unsigned i = 0; i <= 16; ++i)
        hier.mapPage(base + i * stride, 0);

    // Core 0 holds the first block dirty in its L1.
    Block d = pat(1);
    hier.write(0, base, &d);
    ASSERT_TRUE(hier.l1(0).contains(base));

    // Force 16 more blocks into the same L3 set from another core.
    for (unsigned i = 1; i <= 16; ++i)
        hier.read(1, base + i * stride);

    // Inclusion: once base fell out of L3 slice 0, core 0's copies are
    // gone too, and the dirty data reached memory.
    EXPECT_FALSE(hier.l3Slice(0).contains(base));
    EXPECT_FALSE(hier.l1(0).contains(base));
    EXPECT_FALSE(hier.l2(0).contains(base));
    EXPECT_EQ(hier.memory().readBlock(base), d);
    EXPECT_GE(stats.value("hier.l3_writebacks"), 1u);

    // And the data is still readable (from memory).
    Block out;
    auto res = hier.read(0, base, &out);
    EXPECT_EQ(out, d);
    EXPECT_EQ(res.servedBy, ServedBy::Memory);
}

TEST_F(HierarchyEdge, WriteCompletesAtL3WhenL1SetFullyPinned)
{
    const Addr target = 0x210000;
    for (unsigned i = 1; i <= 8; ++i) {
        Addr filler = target + i * 4096;  // same L1 set
        hier.read(0, filler);
        ASSERT_TRUE(hier.l1(0).pin(filler));
    }

    Block d = pat(9);
    hier.write(0, target, &d);
    EXPECT_EQ(hier.debugRead(target), d);
    // Visible to another core.
    Block out;
    hier.read(1, target, &out);
    EXPECT_EQ(out, d);
}

TEST_F(HierarchyEdge, DirtyDataSurvivesL1ThenL2EvictionChain)
{
    // Write a block, evict it from L1 (8 conflicts), then from L2
    // (L2 same-set stride is 512 * 64 = 32 KB, 8 ways).
    const Addr victim = 0x1000000;
    Block d = pat(5);
    hier.write(0, victim, &d);

    for (unsigned i = 1; i <= 8; ++i)
        hier.read(0, victim + i * 4096);  // L1 conflicts
    ASSERT_FALSE(hier.l1(0).contains(victim));
    ASSERT_TRUE(hier.l2(0).contains(victim));

    for (unsigned i = 1; i <= 8; ++i)
        hier.read(0, victim + i * 512 * 64);  // L2 conflicts
    // Regardless of where it ended up, the value must be preserved.
    EXPECT_EQ(hier.debugRead(victim), d);
    Block out;
    hier.read(2, victim, &out);
    EXPECT_EQ(out, d);
}

TEST_F(HierarchyEdge, ExplicitPageMappingControlsSlice)
{
    hier.mapPage(0x7000000, 5);
    EXPECT_EQ(hier.sliceFor(0, 0x7000000), 5u);
    EXPECT_EQ(hier.sliceFor(0, 0x7000FC0), 5u);  // same page
    hier.read(3, 0x7000000);
    EXPECT_TRUE(hier.l3Slice(5).contains(0x7000000));
    EXPECT_FALSE(hier.l3Slice(3).contains(0x7000000));
}

TEST_F(HierarchyEdge, UpgradeFromSharedInvalidatesPeersExactlyOnce)
{
    const Addr addr = 0x800000;
    hier.read(0, addr);
    hier.read(1, addr);
    hier.read(2, addr);
    std::uint64_t before = stats.value("hier.sharer_invalidations");
    Block d = pat(3);
    hier.write(1, addr, &d);
    EXPECT_EQ(stats.value("hier.sharer_invalidations") - before, 2u);
    // Second write by the same core is silent (already M).
    hier.write(1, addr, &d);
    EXPECT_EQ(stats.value("hier.sharer_invalidations") - before, 2u);
}

TEST_F(HierarchyEdge, ReadSharedThenWriteEachCoreRoundRobin)
{
    const Addr addr = 0x900000;
    Rng rng(5);
    Block last = zeroBlock();
    for (int round = 0; round < 12; ++round) {
        CoreId writer = static_cast<CoreId>(round % 4);
        // Everyone reads first (builds a full sharer set).
        for (CoreId c = 0; c < 4; ++c) {
            Block out;
            hier.read(c, addr, &out);
            ASSERT_EQ(out, last) << "round " << round << " core " << c;
        }
        Block d;
        for (auto &byte : d)
            byte = static_cast<std::uint8_t>(rng.below(256));
        hier.write(writer, addr, &d);
        last = d;
    }
}

TEST_F(HierarchyEdge, ForOverwriteAllocatesZeroFilledLine)
{
    hier.fetchToLevel(0, 0xb00000, CacheLevel::L3, true, true);
    unsigned slice = hier.sliceFor(0, 0xb00000);
    ASSERT_TRUE(hier.l3Slice(slice).contains(0xb00000));
    EXPECT_EQ(*hier.l3Slice(slice).peek(0xb00000), zeroBlock());
    EXPECT_EQ(stats.value("hier.mem_reads"), 0u);
}

TEST_F(HierarchyEdge, RepeatedFetchToLevelIsIdempotentAndCheap)
{
    hier.fetchToLevel(0, 0xc00000, CacheLevel::L3, false);
    Cycles second = hier.fetchToLevel(0, 0xc00000, CacheLevel::L3, false);
    // Fast path: already resident, nothing to recall.
    EXPECT_EQ(second, 0u);
    Cycles third = hier.fetchToLevel(0, 0xc00000, CacheLevel::L2, false);
    Cycles fourth = hier.fetchToLevel(0, 0xc00000, CacheLevel::L2, false);
    EXPECT_GT(third, 0u);
    EXPECT_EQ(fourth, 0u);
}

} // namespace
} // namespace ccache::cache
