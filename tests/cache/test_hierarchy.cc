/**
 * @file
 * Integration tests for the coherent 3-level hierarchy: MESI transitions,
 * inclusion, writebacks, NUCA slice mapping, CC operand staging, and a
 * randomized coherence soak test against a flat reference memory.
 */

#include <gtest/gtest.h>

#include <map>

#include "cache/hierarchy.hh"
#include "common/rng.hh"

namespace ccache::cache {
namespace {

Block
patternBlock(std::uint8_t seed)
{
    Block b;
    for (std::size_t i = 0; i < kBlockSize; ++i)
        b[i] = static_cast<std::uint8_t>(seed ^ (i * 7));
    return b;
}

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest() : hier(HierarchyParams{}, &em, &stats) {}
    energy::EnergyModel em;
    StatRegistry stats;
    Hierarchy hier;
};

TEST_F(HierarchyTest, ColdReadComesFromMemory)
{
    Block out;
    auto res = hier.read(0, 0x10000, &out);
    EXPECT_EQ(res.servedBy, ServedBy::Memory);
    EXPECT_EQ(out, zeroBlock());
    // Latency includes at least L1 + L2 + L3 + DRAM.
    EXPECT_GT(res.latency, 120u);
    EXPECT_EQ(stats.value("hier.l1_misses"), 1u);
    EXPECT_EQ(stats.value("hier.mem_reads"), 1u);
}

TEST_F(HierarchyTest, SecondReadHitsL1)
{
    hier.read(0, 0x10000);
    auto res = hier.read(0, 0x10000);
    EXPECT_EQ(res.servedBy, ServedBy::L1);
    EXPECT_EQ(res.latency, 5u);
    EXPECT_EQ(stats.value("hier.l1_hits"), 1u);
}

TEST_F(HierarchyTest, WriteThenReadReturnsData)
{
    Block data = patternBlock(0x42);
    hier.write(0, 0x20000, &data);
    Block out;
    hier.read(0, 0x20000, &out);
    EXPECT_EQ(out, data);
    EXPECT_EQ(hier.l1(0).state(0x20000), Mesi::Modified);
}

TEST_F(HierarchyTest, InclusionL1InL2InL3)
{
    hier.read(0, 0x30000);
    Addr blk = 0x30000;
    EXPECT_TRUE(hier.l1(0).contains(blk));
    EXPECT_TRUE(hier.l2(0).contains(blk));
    unsigned slice = hier.sliceFor(0, blk);
    EXPECT_TRUE(hier.l3Slice(slice).contains(blk));
}

TEST_F(HierarchyTest, FirstTouchBindsPageToLocalSlice)
{
    EXPECT_EQ(hier.sliceFor(3, 0x40000), 3u);
    // The binding is sticky even when another core touches it later.
    EXPECT_EQ(hier.sliceFor(5, 0x40000), 3u);
    // Explicit mapping overrides.
    hier.mapPage(0x50000, 6);
    EXPECT_EQ(hier.sliceFor(0, 0x50000), 6u);
}

TEST_F(HierarchyTest, ExclusiveGrantWhenSoleSharer)
{
    hier.read(0, 0x60000);
    EXPECT_EQ(hier.l1(0).state(0x60000), Mesi::Exclusive);
}

TEST_F(HierarchyTest, SharedGrantWhenOthersHoldCopy)
{
    hier.read(0, 0x60000);
    hier.read(1, 0x60000);
    EXPECT_EQ(hier.l1(1).state(0x60000), Mesi::Shared);
    // The original exclusive owner was downgraded.
    EXPECT_EQ(hier.l1(0).state(0x60000), Mesi::Shared);
}

TEST_F(HierarchyTest, ReadAfterRemoteWriteSeesNewData)
{
    Block d1 = patternBlock(1);
    hier.write(0, 0x70000, &d1);
    EXPECT_EQ(hier.l1(0).state(0x70000), Mesi::Modified);

    Block out;
    auto res = hier.read(1, 0x70000, &out);
    EXPECT_EQ(out, d1);
    EXPECT_EQ(res.servedBy, ServedBy::L3);
    // Owner was downgraded and its dirty data recalled into L3.
    EXPECT_EQ(hier.l1(0).state(0x70000), Mesi::Shared);
    EXPECT_EQ(stats.value("hier.owner_writebacks"), 1u);
}

TEST_F(HierarchyTest, WriteInvalidatesSharers)
{
    hier.read(0, 0x80000);
    hier.read(1, 0x80000);
    Block d2 = patternBlock(2);
    hier.write(2, 0x80000, &d2);
    EXPECT_EQ(hier.l1(0).state(0x80000), Mesi::Invalid);
    EXPECT_EQ(hier.l1(1).state(0x80000), Mesi::Invalid);
    EXPECT_EQ(hier.l1(2).state(0x80000), Mesi::Modified);
    EXPECT_GE(stats.value("hier.sharer_invalidations"), 2u);

    Block out;
    hier.read(0, 0x80000, &out);
    EXPECT_EQ(out, d2);
}

TEST_F(HierarchyTest, L1EvictionWritesBackToL2)
{
    // Fill 9 blocks mapping to the same L1 set; L1 has 8 ways.
    Addr base = 0x100000;
    Block d = patternBlock(9);
    hier.write(0, base, &d);
    for (unsigned i = 1; i <= 8; ++i)
        hier.read(0, base + i * 4096);
    // base evicted from L1 but L2 (512 sets) still holds the dirty data.
    EXPECT_FALSE(hier.l1(0).contains(base));
    ASSERT_TRUE(hier.l2(0).contains(base));
    EXPECT_EQ(*hier.l2(0).peek(base), d);
}

TEST_F(HierarchyTest, DebugReadSeesNewestCopy)
{
    Block d = patternBlock(0x77);
    hier.write(0, 0x90000, &d);
    EXPECT_EQ(hier.debugRead(0x90000), d);
    // Memory still has the stale copy.
    EXPECT_EQ(hier.memory().readBlock(0x90000), zeroBlock());
}

TEST_F(HierarchyTest, FlushAllDrainsDirtyData)
{
    Block d = patternBlock(0x31);
    hier.write(0, 0xa0000, &d);
    hier.flushAll();
    EXPECT_FALSE(hier.l1(0).contains(0xa0000));
    EXPECT_FALSE(hier.l2(0).contains(0xa0000));
    EXPECT_EQ(hier.memory().readBlock(0xa0000), d);
    EXPECT_EQ(hier.debugRead(0xa0000), d);
}

TEST_F(HierarchyTest, FetchToL3WritesBackDirtyPrivateCopies)
{
    // Figure 6 scenario: B dirty in L2 (here: L1) must reach L3 before
    // the CC op runs there.
    Block d = patternBlock(0x55);
    hier.write(0, 0xb0000, &d);
    unsigned slice = hier.sliceFor(0, 0xb0000);

    Cycles lat = hier.fetchToLevel(0, 0xb0000, CacheLevel::L3,
                                   /*exclusive=*/false);
    EXPECT_GT(lat, 0u);
    EXPECT_EQ(*hier.l3Slice(slice).peek(0xb0000), d);
    // Non-exclusive staging leaves the private copy (now clean/shared).
    EXPECT_NE(hier.l1(0).state(0xb0000), Mesi::Modified);
}

TEST_F(HierarchyTest, FetchToL3ExclusiveInvalidatesPrivateCopies)
{
    Block d = patternBlock(0x66);
    hier.write(0, 0xc0000, &d);
    hier.read(1, 0xc0000);

    hier.fetchToLevel(0, 0xc0000, CacheLevel::L3, /*exclusive=*/true);
    EXPECT_FALSE(hier.l1(0).contains(0xc0000));
    EXPECT_FALSE(hier.l2(0).contains(0xc0000));
    EXPECT_FALSE(hier.l1(1).contains(0xc0000));
    unsigned slice = hier.sliceFor(0, 0xc0000);
    EXPECT_EQ(*hier.l3Slice(slice).peek(0xc0000), d);
}

TEST_F(HierarchyTest, FetchToL3ForOverwriteSkipsMemory)
{
    std::uint64_t before = stats.value("hier.mem_reads");
    hier.fetchToLevel(0, 0xd0000, CacheLevel::L3, /*exclusive=*/true,
                      /*for_overwrite=*/true);
    EXPECT_EQ(stats.value("hier.mem_reads"), before);
    EXPECT_EQ(stats.value("hier.alloc_no_fetch"), 1u);
    unsigned slice = hier.sliceFor(0, 0xd0000);
    EXPECT_TRUE(hier.l3Slice(slice).contains(0xd0000));
}

TEST_F(HierarchyTest, FetchToL2StagesWithoutL1Fill)
{
    hier.fetchToLevel(0, 0xe0000, CacheLevel::L2, /*exclusive=*/false);
    EXPECT_TRUE(hier.l2(0).contains(0xe0000));
    EXPECT_FALSE(hier.l1(0).contains(0xe0000));
}

TEST_F(HierarchyTest, ChooseLevelPolicy)
{
    // Operand A in L1, operand B uncached -> L3 (Section IV-E).
    hier.read(0, 0xf0000);
    EXPECT_EQ(hier.chooseLevel(0, {0xf0000, 0xf8000}), CacheLevel::L3);
    hier.read(0, 0xf8000);
    EXPECT_EQ(hier.chooseLevel(0, {0xf0000, 0xf8000}), CacheLevel::L1);
    // Present only in L2 + L3 after L2 staging.
    hier.fetchToLevel(0, 0x101000, CacheLevel::L2, false);
    EXPECT_EQ(hier.chooseLevel(0, {0xf0000, 0x101000}), CacheLevel::L2);
}

TEST_F(HierarchyTest, ByteGranularAccess)
{
    const char msg[] = "compute caches in place";
    hier.storeBytes(0, 0x12345, msg, sizeof(msg));
    char out[sizeof(msg)] = {};
    hier.loadBytes(1, 0x12345, out, sizeof(msg));
    EXPECT_STREQ(out, msg);
}

TEST_F(HierarchyTest, LatenciesAreOrderedByLevel)
{
    hier.read(0, 0x200000);                    // memory
    auto l1 = hier.read(0, 0x200000).latency;  // L1 hit

    hier.read(1, 0x201000);
    // Evict from L1 only: read 8 more conflicting blocks.
    for (unsigned i = 1; i <= 8; ++i)
        hier.read(1, 0x201000 + i * 4096);
    auto l2 = hier.read(1, 0x201000).latency;  // L2 hit

    Block dummy;
    hier.fetchToLevel(2, 0x202000, CacheLevel::L3, false);
    auto l3 = hier.read(2, 0x202000, &dummy).latency;  // L3 hit

    auto mem = hier.read(3, 0x900000).latency;  // cold miss

    EXPECT_LT(l1, l2);
    EXPECT_LT(l2, l3);
    EXPECT_LT(l3, mem);
}

// ---------------------------------------------------------------------
// Randomized coherence soak: many cores hammer a small address pool; the
// hierarchy's observable values must always match a flat reference model.
// ---------------------------------------------------------------------

TEST(HierarchySoak, MatchesFlatReferenceModel)
{
    energy::EnergyModel em;
    StatRegistry stats;
    HierarchyParams params;
    Hierarchy hier(params, &em, &stats);
    Rng rng(2024);

    // Small pool with deliberate set conflicts to force evictions.
    std::vector<Addr> pool;
    for (unsigned i = 0; i < 64; ++i)
        pool.push_back(0x300000 + i * 4096);  // same L1 set
    for (unsigned i = 0; i < 64; ++i)
        pool.push_back(0x300000 + i * 64);    // dense run

    std::map<Addr, Block> ref;
    for (int iter = 0; iter < 20000; ++iter) {
        CoreId core = static_cast<CoreId>(rng.below(params.cores));
        Addr addr = pool[rng.below(pool.size())];
        if (rng.chance(0.45)) {
            Block data;
            for (auto &byte : data)
                byte = static_cast<std::uint8_t>(rng.below(256));
            hier.write(core, addr, &data);
            ref[addr] = data;
        } else {
            Block out;
            hier.read(core, addr, &out);
            auto it = ref.find(addr);
            Block expect = it == ref.end() ? zeroBlock() : it->second;
            ASSERT_EQ(out, expect)
                << "iter " << iter << " core " << core << " addr 0x"
                << std::hex << addr;
        }
    }

    // After draining, memory must hold exactly the reference contents.
    hier.flushAll();
    for (const auto &[addr, data] : ref)
        ASSERT_EQ(hier.memory().readBlock(addr), data);
}

TEST(HierarchySoak, CoherenceWithCcStagingInterleaved)
{
    energy::EnergyModel em;
    StatRegistry stats;
    HierarchyParams params;
    Hierarchy hier(params, &em, &stats);
    Rng rng(777);

    std::vector<Addr> pool;
    for (unsigned i = 0; i < 32; ++i)
        pool.push_back(0x500000 + i * 4096);

    std::map<Addr, Block> ref;
    for (int iter = 0; iter < 5000; ++iter) {
        CoreId core = static_cast<CoreId>(rng.below(params.cores));
        Addr addr = pool[rng.below(pool.size())];
        double dice = rng.uniform();
        if (dice < 0.3) {
            Block data;
            for (auto &byte : data)
                byte = static_cast<std::uint8_t>(rng.below(256));
            hier.write(core, addr, &data);
            ref[addr] = data;
        } else if (dice < 0.6) {
            Block out;
            hier.read(core, addr, &out);
            auto it = ref.find(addr);
            ASSERT_EQ(out, it == ref.end() ? zeroBlock() : it->second);
        } else if (dice < 0.8) {
            hier.fetchToLevel(core, addr, CacheLevel::L3,
                              rng.chance(0.5));
            ASSERT_EQ(hier.debugRead(addr),
                      ref.count(addr) ? ref[addr] : zeroBlock());
        } else {
            hier.fetchToLevel(core, addr, CacheLevel::L2, false);
        }
    }
}

} // namespace
} // namespace ccache::cache
