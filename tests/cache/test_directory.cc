/**
 * @file
 * Unit tests for the MESI coherence directory.
 */

#include <gtest/gtest.h>

#include "cache/directory.hh"
#include "common/logging.hh"

namespace ccache::cache {
namespace {

TEST(DirectoryTest, EmptyEntryForUntracked)
{
    Directory dir(8);
    DirEntry e = dir.entry(0x1000);
    EXPECT_EQ(e.sharers, 0u);
    EXPECT_FALSE(e.owner.has_value());
    EXPECT_FALSE(e.hasSharers());
    EXPECT_EQ(dir.trackedBlocks(), 0u);
}

TEST(DirectoryTest, AddSharers)
{
    Directory dir(8);
    dir.addSharer(0x1000, 2);
    dir.addSharer(0x1000, 5);
    DirEntry e = dir.entry(0x1000);
    EXPECT_EQ(e.sharers, (1u << 2) | (1u << 5));
    EXPECT_FALSE(e.owner.has_value());
}

TEST(DirectoryTest, SetOwnerClearsOtherSharers)
{
    Directory dir(8);
    dir.addSharer(0x1000, 1);
    dir.addSharer(0x1000, 2);
    dir.setOwner(0x1000, 3);
    DirEntry e = dir.entry(0x1000);
    EXPECT_EQ(e.sharers, 1u << 3);
    ASSERT_TRUE(e.owner.has_value());
    EXPECT_EQ(*e.owner, 3u);
}

TEST(DirectoryTest, AddSharerDowngradesForeignOwner)
{
    Directory dir(8);
    dir.setOwner(0x2000, 4);
    dir.addSharer(0x2000, 6);
    DirEntry e = dir.entry(0x2000);
    // The former owner remains a sharer, but exclusivity is gone.
    EXPECT_FALSE(e.owner.has_value());
    EXPECT_EQ(e.sharers, (1u << 4) | (1u << 6));
}

TEST(DirectoryTest, DowngradeOwnerKeepsSharerBit)
{
    Directory dir(8);
    dir.setOwner(0x3000, 2);
    dir.downgradeOwner(0x3000);
    DirEntry e = dir.entry(0x3000);
    EXPECT_FALSE(e.owner.has_value());
    EXPECT_EQ(e.sharers, 1u << 2);
}

TEST(DirectoryTest, RemoveSharerDropsEntryWhenEmpty)
{
    Directory dir(8);
    dir.addSharer(0x4000, 0);
    dir.addSharer(0x4000, 1);
    dir.removeSharer(0x4000, 0);
    EXPECT_EQ(dir.entry(0x4000).sharers, 1u << 1);
    dir.removeSharer(0x4000, 1);
    EXPECT_EQ(dir.trackedBlocks(), 0u);
}

TEST(DirectoryTest, RemoveOwnerClearsOwnership)
{
    Directory dir(8);
    dir.setOwner(0x5000, 7);
    dir.removeSharer(0x5000, 7);
    EXPECT_FALSE(dir.entry(0x5000).owner.has_value());
}

TEST(DirectoryTest, SharersExcept)
{
    Directory dir(8);
    dir.addSharer(0x6000, 0);
    dir.addSharer(0x6000, 3);
    dir.addSharer(0x6000, 7);
    EXPECT_EQ(dir.sharersExcept(0x6000, 3), (1u << 0) | (1u << 7));
    EXPECT_EQ(dir.sharersExcept(0x6000, 1),
              (1u << 0) | (1u << 3) | (1u << 7));
    EXPECT_EQ(dir.sharersExcept(0x9999, 0), 0u);
}

TEST(DirectoryTest, ClearDropsAllState)
{
    Directory dir(8);
    dir.setOwner(0x7000, 1);
    dir.clear(0x7000);
    EXPECT_EQ(dir.entry(0x7000).sharers, 0u);
    EXPECT_EQ(dir.trackedBlocks(), 0u);
}

TEST(DirectoryTest, RejectsTooManyCores)
{
    EXPECT_THROW((void)Directory(0), FatalError);
    EXPECT_THROW((void)Directory(33), FatalError);
    EXPECT_NO_THROW((void)Directory(32));
}

} // namespace
} // namespace ccache::cache
