/**
 * @file
 * Unit tests for the sense-amplifier models and the XOR-reduction tree.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sram/sense_amp.hh"
#include "sram/xor_reduction_tree.hh"

namespace ccache::sram {
namespace {

BitlineLevels
levelsFor(const std::vector<double> &bl, const std::vector<double> &blb)
{
    BitlineLevels l;
    l.bl = bl;
    l.blb = blb;
    return l;
}

TEST(SenseAmp, DifferentialReadsStoredBit)
{
    SenseAmpArray amps(2);
    // Column 0 stores '1' (BL high, BLB low); column 1 stores '0'.
    auto levels = levelsFor({1.0, 0.4}, {0.4, 1.0});
    BitVector out = amps.senseDifferential(levels);
    EXPECT_TRUE(out.get(0));
    EXPECT_FALSE(out.get(1));
}

TEST(SenseAmp, SingleEndedAgainstVref)
{
    SenseAmpArray amps(3, 0.5);
    auto levels = levelsFor({1.0, 0.4, 0.6}, {0.0, 0.9, 0.2});
    BitVector bl = amps.senseBL(levels);
    EXPECT_TRUE(bl.get(0));
    EXPECT_FALSE(bl.get(1));
    EXPECT_TRUE(bl.get(2));
    BitVector blb = amps.senseBLB(levels);
    EXPECT_FALSE(blb.get(0));
    EXPECT_TRUE(blb.get(1));
    EXPECT_FALSE(blb.get(2));
}

TEST(SenseAmp, MarginIsWorstCaseDistanceToVref)
{
    SenseAmpArray amps(4, 0.5);
    EXPECT_DOUBLE_EQ(amps.senseMargin({1.0, 0.0, 0.62, 0.45}), 0.05);
    EXPECT_DOUBLE_EQ(amps.senseMargin({1.0}), 0.5);
}

TEST(SenseAmp, MonteCarloFailureRateBehaviour)
{
    Rng rng(3);
    // Huge margin, tiny sigma: no failures.
    EXPECT_DOUBLE_EQ(
        SenseAmpArray::monteCarloFailureRate(0.4, 0.01, 50000, rng), 0.0);
    // Margin equal to sigma: ~32% of Gaussian mass beyond 1 sigma.
    double fail =
        SenseAmpArray::monteCarloFailureRate(0.05, 0.05, 200000, rng);
    EXPECT_NEAR(fail, 0.317, 0.01);
}

TEST(SenseAmp, RejectsBadConfig)
{
    EXPECT_THROW((void)SenseAmpArray(0), FatalError);
    EXPECT_THROW((void)SenseAmpArray(8, 1.5), FatalError);
}

TEST(XorTree, ReduceAllParity)
{
    XorReductionTree tree(512);
    BitVector bits(512);
    EXPECT_FALSE(tree.reduceAll(bits));
    bits.set(13, true);
    EXPECT_TRUE(tree.reduceAll(bits));
    bits.set(400, true);
    EXPECT_FALSE(tree.reduceAll(bits));
}

TEST(XorTree, ReduceWordsMatchesPopcountParity)
{
    XorReductionTree tree(512);
    Rng rng(17);
    BitVector bits(512);
    for (std::size_t i = 0; i < 512; ++i)
        bits.set(i, rng.chance(0.5));

    for (std::size_t width : {64u, 128u, 256u}) {
        auto parities = tree.reduceWords(bits, width);
        ASSERT_EQ(parities.size(), 512 / width);
        for (std::size_t w = 0; w < parities.size(); ++w) {
            unsigned ones = 0;
            for (std::size_t b = 0; b < width; ++b)
                ones += bits.get(w * width + b) ? 1 : 0;
            EXPECT_EQ(parities[w], (ones & 1) != 0);
        }
    }
}

TEST(XorTree, DepthIsLogarithmic)
{
    EXPECT_EQ(XorReductionTree::depth(64), 6u);
    EXPECT_EQ(XorReductionTree::depth(128), 7u);
    EXPECT_EQ(XorReductionTree::depth(256), 8u);
}

TEST(XorTree, LinearityProperty)
{
    // XOR reduction is linear: reduce(a ^ b) == reduce(a) ^ reduce(b).
    XorReductionTree tree(512);
    Rng rng(23);
    for (int iter = 0; iter < 50; ++iter) {
        BitVector a(512), b(512);
        for (std::size_t i = 0; i < 512; ++i) {
            a.set(i, rng.chance(0.5));
            b.set(i, rng.chance(0.5));
        }
        EXPECT_EQ(tree.reduceAll(a ^ b),
                  tree.reduceAll(a) ^ tree.reduceAll(b));
    }
}

} // namespace
} // namespace ccache::sram
