/**
 * @file
 * Scalar-vs-vectorized differential tests for the bit-line hot path
 * (DESIGN.md §13): every CC op is run once through the per-bit analog
 * scalar path (SubArray::forceScalarBitline(true)) and once through the
 * word-at-a-time vectorized path, over identical inputs, and the two
 * must agree bit-for-bit — functional results, compare masks, op
 * costs, margin outcomes, and (critically) seeded fault injection,
 * whose RNG draw order the vectorized path must preserve exactly.
 *
 * Also covers the word-boundary edge cases the packed-row
 * representation introduces: row widths that are not a multiple of 64
 * bits (tail-word masking in the BitcellArray senses) and cmp/search
 * operand differences that straddle 64-bit word boundaries.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cache/hierarchy.hh"
#include "cc/cc_controller.hh"
#include "common/rng.hh"
#include "sram/bitcell_array.hh"
#include "sram/subarray.hh"

namespace ccache::sram {
namespace {

using Bytes = std::vector<std::uint8_t>;

/** RAII scope forcing one bit-line path; restores the env gate. */
struct BitlinePath
{
    explicit BitlinePath(bool scalar)
    {
        SubArray::forceScalarBitline(scalar);
    }
    ~BitlinePath() { SubArray::forceScalarBitline(std::nullopt); }
};

Block
randomBlock(Rng &rng)
{
    Block b;
    for (auto &byte : b)
        byte = static_cast<std::uint8_t>(rng.below(256));
    return b;
}

SubArrayParams
smallParams()
{
    SubArrayParams p;
    p.rows = 16;
    p.cols = 1024;  // two block partitions
    return p;
}

/** Everything observable from one op sequence over one sub-array. */
struct OpTrace
{
    std::vector<Bytes> reads;
    std::vector<std::uint64_t> masks;
    std::vector<bool> allEqual;
    std::vector<Cycles> delays;
    std::vector<bool> marginFails;

    bool operator==(const OpTrace &) const = default;
};

/**
 * Run the full op catalog (and/or/xor/nor/not/copy/buz/cmp/search/
 * clmul) on a fresh sub-array under the selected path and record every
 * observable output. @p fp, when enabled, attaches a seeded fault
 * injector — the fault stream is part of the observable behaviour.
 */
OpTrace
runCatalog(bool scalar, std::uint64_t seed, const fault::FaultParams &fp)
{
    BitlinePath path(scalar);
    SubArray sa(smallParams());
    fault::FaultInjector inj(fp);
    if (fp.enabled)
        sa.attachFaults(&inj, /*base_id=*/7);

    Rng rng(seed);
    OpTrace t;
    auto note_read = [&](const BlockLoc &loc) {
        Block b = sa.read(loc);
        t.reads.emplace_back(b.begin(), b.end());
        t.marginFails.push_back(sa.lastMarginFailed());
    };

    for (int trial = 0; trial < 6; ++trial) {
        sa.write({0, 0}, randomBlock(rng));
        sa.write({0, 1}, randomBlock(rng));

        OpCost c;
        c = sa.opAnd({0, 0}, {0, 1}, {0, 2});
        t.delays.push_back(c.delay);
        note_read({0, 2});
        c = sa.opOr({0, 0}, {0, 1}, {0, 3});
        t.delays.push_back(c.delay);
        note_read({0, 3});
        c = sa.opXor({0, 0}, {0, 1}, {0, 4});
        t.delays.push_back(c.delay);
        note_read({0, 4});
        c = sa.opNor({0, 0}, {0, 1}, {0, 5});
        t.delays.push_back(c.delay);
        note_read({0, 5});
        c = sa.opNot({0, 0}, {0, 6});
        t.delays.push_back(c.delay);
        note_read({0, 6});
        c = sa.opCopy({0, 1}, {0, 7});
        t.delays.push_back(c.delay);
        note_read({0, 7});
        c = sa.opBuz({0, 7});
        t.delays.push_back(c.delay);
        note_read({0, 7});

        CmpResult cmp = sa.opCmp({0, 0}, {0, 1});
        t.masks.push_back(cmp.wordEqualMask);
        t.allEqual.push_back(cmp.allEqual);
        CmpResult srch = sa.opSearch({0, 1}, {0, 0});
        t.masks.push_back(srch.wordEqualMask);
        t.allEqual.push_back(srch.allEqual);

        ClmulResult cl = sa.opClmul({0, 0}, {0, 1}, 128);
        for (bool p : cl.parities)
            t.allEqual.push_back(p);

        // Sources must survive unchanged under both paths.
        note_read({0, 0});
        note_read({0, 1});
    }
    return t;
}

/**
 * Same contract for the bit-serial arithmetic class: the carry-latch
 * sequences (add/sub/mul/compare) under the scalar per-bit path and the
 * word-at-a-time path must agree on results, costs, compare masks and
 * the seeded fault stream.
 */
OpTrace
runBitSerialCatalog(bool scalar, std::uint64_t seed,
                    const fault::FaultParams &fp)
{
    BitlinePath path(scalar);
    SubArrayParams sp = smallParams();
    sp.rows = 128;  // three 32-slice operand stacks
    SubArray sa(sp);
    fault::FaultInjector inj(fp);
    if (fp.enabled)
        sa.attachFaults(&inj, /*base_id=*/13);

    Rng rng(seed);
    OpTrace t;
    auto note_read = [&](const BlockLoc &loc) {
        Block b = sa.read(loc);
        t.reads.emplace_back(b.begin(), b.end());
        t.marginFails.push_back(sa.lastMarginFailed());
    };

    for (std::size_t w : {1u, 8u, 17u, 32u}) {
        BitSerialOperand a{0, 0}, b{0, 32}, dst{0, 64};
        for (std::size_t k = 0; k < w; ++k) {
            sa.write({a.partition, a.row0 + k}, randomBlock(rng));
            sa.write({b.partition, b.row0 + k}, randomBlock(rng));
        }

        OpCost c = sa.opBitSerialAdd(a, b, dst, w);
        t.delays.push_back(c.delay);
        for (std::size_t k = 0; k < w; ++k)
            note_read({dst.partition, dst.row0 + k});
        c = sa.opBitSerialSub(a, b, dst, w);
        t.delays.push_back(c.delay);
        for (std::size_t k = 0; k < w; ++k)
            note_read({dst.partition, dst.row0 + k});
        c = sa.opBitSerialMul(a, b, dst, w);
        t.delays.push_back(c.delay);
        for (std::size_t k = 0; k < w; ++k)
            note_read({dst.partition, dst.row0 + k});

        for (bool is_signed : {false, true}) {
            BitSerialCmpResult cmp =
                sa.opBitSerialCompare(a, b, w, is_signed);
            t.reads.push_back(cmp.lt.toBytes());
            t.reads.push_back(cmp.gt.toBytes());
            t.reads.push_back(cmp.eq.toBytes());
            t.delays.push_back(cmp.cost.delay);
        }

        // Sources must survive under both paths.
        for (std::size_t k = 0; k < w; ++k) {
            note_read({a.partition, a.row0 + k});
            note_read({b.partition, b.row0 + k});
        }
    }
    return t;
}

class ScalarVectorized : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ScalarVectorized, FaultFreeCatalogBitIdentical)
{
    fault::FaultParams off;
    EXPECT_EQ(runCatalog(/*scalar=*/true, GetParam(), off),
              runCatalog(/*scalar=*/false, GetParam(), off));
}

TEST_P(ScalarVectorized, SeededFaultRunsBitIdentical)
{
    // Aggressive rates so every rung of the ladder draws: the
    // vectorized path must consume the injector's RNG in exactly the
    // per-bit path's order, or the streams diverge within a few ops.
    fault::FaultParams fp;
    fp.enabled = true;
    fp.seed = GetParam() * 2654435761u + 17;
    fp.transientPerBlockOp = 0.3;
    fp.doubleBitFraction = 0.25;
    fp.burstFraction = 0.1;
    fp.stuckAtPerBlock = 0.2;
    fp.stuckAtDoubleFraction = 0.2;
    fp.marginFailPerDualRowOp = 0.3;
    EXPECT_EQ(runCatalog(/*scalar=*/true, GetParam(), fp),
              runCatalog(/*scalar=*/false, GetParam(), fp));
}

TEST_P(ScalarVectorized, RawMultiRowDisturbBitIdentical)
{
    // Weak underdrive + many active rows exercises the read-disturb
    // collapse, whose whole-row corruption the vectorized path applies
    // word-at-a-time.
    auto run = [&](bool scalar) {
        BitlinePath path(scalar);
        SubArrayParams p = smallParams();
        p.wordlineUnderdrive = 0.95;   // above the disturb threshold
        SubArray sa(p);
        Rng rng(GetParam() ^ 0xd15707bULL);
        for (std::size_t r = 0; r < 8; ++r)
            sa.write({0, r}, randomBlock(rng));

        SubArray::RawSense s = sa.rawActivate({0, 1, 2, 3});
        std::vector<Bytes> out;
        out.push_back(s.andResult.toBytes());
        out.push_back(s.norResult.toBytes());
        for (std::size_t r = 0; r < 8; ++r) {
            Block b = sa.read({0, r});
            out.emplace_back(b.begin(), b.end());
        }
        return out;
    };
    EXPECT_EQ(run(true), run(false));
}

TEST_P(ScalarVectorized, BitSerialCatalogBitIdentical)
{
    fault::FaultParams off;
    EXPECT_EQ(runBitSerialCatalog(/*scalar=*/true, GetParam(), off),
              runBitSerialCatalog(/*scalar=*/false, GetParam(), off));
}

TEST_P(ScalarVectorized, BitSerialSeededFaultRunsBitIdentical)
{
    fault::FaultParams fp;
    fp.enabled = true;
    fp.seed = GetParam() * 2654435761u + 23;
    fp.transientPerBlockOp = 0.2;
    fp.doubleBitFraction = 0.25;
    fp.stuckAtPerBlock = 0.1;
    fp.marginFailPerDualRowOp = 0.2;
    EXPECT_EQ(runBitSerialCatalog(/*scalar=*/true, GetParam(), fp),
              runBitSerialCatalog(/*scalar=*/false, GetParam(), fp));
}

INSTANTIATE_TEST_SUITE_P(FixedSeeds, ScalarVectorized,
                         ::testing::Values(1u, 7u, 42u, 0xfeedu));

// ---------------------------------------------------------------------
// Word-boundary edges.
// ---------------------------------------------------------------------

TEST(ScalarVectorizedEdges, RowWidthNotMultipleOf64)
{
    // A 100-column array leaves 36 dead bits in the tail word; the
    // vectorized senses must mask them exactly like the per-column
    // scan, under both clean and disturbing activations.
    BitcellArray arr(/*rows=*/4, /*cols=*/100);
    Rng rng(99);
    for (std::size_t r = 0; r < 4; ++r) {
        BitVector row(100);
        for (std::size_t c = 0; c < 100; ++c)
            row.set(c, rng.below(2) != 0);
        arr.writeRow(r, row);
    }

    for (double underdrive : {0.7, 0.95}) {
        BitcellArray a = arr, b = arr;

        BitlineLevels lv = a.activate({0, 1}, underdrive);
        ASSERT_EQ(lv.bl.size(), 100u);
        BitcellArray::DigitalSense ds =
            b.activateWords({0, 1}, underdrive, /*track_margin=*/true);

        double margin = 1.0;
        for (std::size_t c = 0; c < 100; ++c) {
            EXPECT_EQ(ds.andBits.get(c), lv.bl[c] > 0.5) << "col " << c;
            EXPECT_EQ(ds.norBits.get(c), lv.blb[c] > 0.5) << "col " << c;
            margin = std::min({margin, std::abs(lv.bl[c] - 0.5),
                               std::abs(lv.blb[c] - 0.5)});
        }
        EXPECT_DOUBLE_EQ(ds.margin, margin);

        // Disturb corruption (if any) must land identically.
        for (std::size_t r = 0; r < 4; ++r)
            EXPECT_EQ(a.readRow(r).toBytes(), b.readRow(r).toBytes())
                << "row " << r << " underdrive " << underdrive;
    }
}

TEST(ScalarVectorizedEdges, CmpDifferenceStraddlingWordBoundary)
{
    // Operands equal everywhere except a 16-bit difference spanning
    // bytes 7..8 — the boundary between packed words 0 and 1. Word 0
    // and word 1 must BOTH report unequal, under both paths.
    auto run = [&](bool scalar) {
        BitlinePath path(scalar);
        SubArray sa(smallParams());
        Rng rng(1234);
        Block a = randomBlock(rng);
        Block b = a;
        b[7] ^= 0x80;
        b[8] ^= 0x01;
        sa.write({0, 0}, a);
        sa.write({0, 1}, b);
        return sa.opCmp({0, 0}, {0, 1});
    };
    CmpResult s = run(true), v = run(false);
    EXPECT_EQ(s.wordEqualMask, v.wordEqualMask);
    EXPECT_EQ(s.allEqual, v.allEqual);
    EXPECT_FALSE(v.allEqual);
    EXPECT_EQ(v.wordEqualMask & 0x3u, 0u);          // words 0,1 unequal
    EXPECT_EQ(v.wordEqualMask >> 2,
              (~std::uint64_t{0} >> 2) & 0x3f);     // words 2..7 equal
}

TEST(ScalarVectorizedEdges, SearchKeyMatchOnEveryWordOffset)
{
    // The key equals the data in exactly one 64-bit word per trial,
    // sweeping all eight word positions: each packed-mask bit position
    // must fire under both paths.
    for (std::size_t w = 0; w < kWordsPerBlock; ++w) {
        auto run = [&](bool scalar) {
            BitlinePath path(scalar);
            SubArray sa(smallParams());
            Rng rng(4321 + w);
            Block data = randomBlock(rng);
            Block key = randomBlock(rng);
            std::copy_n(data.begin() + w * 8, 8, key.begin() + w * 8);
            sa.write({0, 0}, key);
            sa.write({0, 1}, data);
            return sa.opSearch({0, 0}, {0, 1});
        };
        CmpResult s = run(true), v = run(false);
        EXPECT_EQ(s.wordEqualMask, v.wordEqualMask) << "word " << w;
        EXPECT_EQ(v.wordEqualMask, std::uint64_t{1} << w);
    }
}

// ---------------------------------------------------------------------
// End-to-end: the CC controller over the real hierarchy, fault ladder
// armed at aggressive seeded rates, must produce byte-identical memory
// images and identical fault accounting under either bit-line path.
// ---------------------------------------------------------------------

TEST(ScalarVectorizedController, FaultLadderRunBitIdentical)
{
    struct Outcome
    {
        Bytes image;
        std::uint64_t retries = 0, degraded = 0, recovered = 0;
        std::vector<std::uint64_t> results;

        bool operator==(const Outcome &) const = default;
    };

    auto run = [](bool scalar) {
        BitlinePath path(scalar);
        energy::EnergyModel em;
        StatRegistry stats;
        cache::Hierarchy hier(cache::HierarchyParams{}, &em, &stats);
        cc::CcControllerParams cp;
        cp.faults.enabled = true;
        cp.faults.seed = 4242;
        cp.faults.transientPerBlockOp = 0.05;
        cp.faults.doubleBitFraction = 0.2;
        cp.faults.stuckAtPerBlock = 0.02;
        cp.faults.marginFailPerDualRowOp = 0.05;
        cc::CcController ctrl(hier, &em, &stats, cp);

        Rng rng(2718);
        Bytes a(2048), b(2048);
        for (auto &x : a)
            x = static_cast<std::uint8_t>(rng.below(256));
        for (auto &x : b)
            x = static_cast<std::uint8_t>(rng.below(256));
        hier.memory().writeBytes(0x10000, a.data(), a.size());
        hier.memory().writeBytes(0x20000, b.data(), b.size());

        Outcome out;
        auto exec = [&](const cc::CcInstruction &in) {
            auto res = ctrl.execute(0, in);
            out.retries += res.faultRetries;
            out.degraded += res.faultDegradedOps;
            out.recovered += res.faultRiscRecoveries;
            out.results.push_back(res.result);
        };
        exec(cc::CcInstruction::logicalAnd(0x10000, 0x20000, 0x30000,
                                           2048));
        exec(cc::CcInstruction::logicalXor(0x30000, 0x20000, 0x40000,
                                           2048));
        exec(cc::CcInstruction::logicalNot(0x40000, 0x50000, 2048));
        exec(cc::CcInstruction::copy(0x50000, 0x60000, 2048));
        exec(cc::CcInstruction::cmp(0x30000, 0x40000, 512));
        exec(cc::CcInstruction::search(0x10000, 0x20000, 512));
        exec(cc::CcInstruction::buz(0x60000, 2048));

        for (Addr base : {0x30000u, 0x40000u, 0x50000u, 0x60000u})
            for (std::size_t off = 0; off < 2048; off += kBlockSize) {
                Block blk = hier.debugRead(base + off);
                out.image.insert(out.image.end(), blk.begin(), blk.end());
            }
        return out;
    };

    EXPECT_EQ(run(true), run(false));
}

} // namespace
} // namespace ccache::sram
