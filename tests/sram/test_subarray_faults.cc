/**
 * @file
 * Circuit-level fault-injection hooks: margin failures fire only on
 * dual-row activations, stuck-at defects are deterministic per cell
 * location, and transient upsets corrupt single-row senses.
 */

#include <gtest/gtest.h>

#include <bit>

#include "common/rng.hh"
#include "fault/fault_injector.hh"
#include "sram/subarray.hh"

namespace ccache::sram {
namespace {

SubArrayParams
smallParams()
{
    SubArrayParams p;
    p.rows = 16;
    p.cols = 1024;  // two partitions
    return p;
}

Block
randomBlock(Rng &rng)
{
    Block b;
    for (auto &byte : b)
        byte = static_cast<std::uint8_t>(rng.below(256));
    return b;
}

/** Number of differing bits between two blocks. */
unsigned
bitDiff(const Block &a, const Block &b)
{
    unsigned diff = 0;
    for (std::size_t i = 0; i < kBlockSize; ++i)
        diff += static_cast<unsigned>(std::popcount(
            static_cast<unsigned>(a[i] ^ b[i])));
    return diff;
}

TEST(SubArrayFaults, UnattachedAndDisabledInjectorsAreInert)
{
    SubArray sa(smallParams());
    Rng rng(1);
    Block data = randomBlock(rng);
    sa.write({0, 0}, data);
    EXPECT_EQ(sa.read({0, 0}), data);
    EXPECT_FALSE(sa.lastMarginFailed());
    EXPECT_TRUE(sa.lastSenseFault().none());

    fault::FaultParams fp;  // enabled = false
    fp.transientPerBlockOp = 1.0;
    fp.enabled = false;
    fault::FaultInjector inj(fp);
    sa.attachFaults(&inj, 17);
    EXPECT_EQ(sa.read({0, 0}), data);
    EXPECT_TRUE(sa.lastSenseFault().none());
}

TEST(SubArrayFaults, MarginFailureOnlyOnDualRowActivation)
{
    fault::FaultParams fp;
    fp.enabled = true;
    fp.seed = 3;
    fp.marginFailPerDualRowOp = 1.0;
    fault::FaultInjector inj(fp);

    SubArray sa(smallParams());
    sa.attachFaults(&inj, 5);

    Rng rng(2);
    Block a = randomBlock(rng);
    Block b = randomBlock(rng);
    sa.write({0, 0}, a);
    sa.write({0, 1}, b);

    // Single-row read: full margin, no failure possible.
    EXPECT_EQ(sa.read({0, 0}), a);
    EXPECT_FALSE(sa.lastMarginFailed());

    // Dual-row AND: the margin failure corrupts exactly one column of
    // the sensed result.
    sa.opAnd({0, 0}, {0, 1}, {0, 2});
    EXPECT_TRUE(sa.lastMarginFailed());
    Block expect{};
    for (std::size_t i = 0; i < kBlockSize; ++i)
        expect[i] = a[i] & b[i];
    EXPECT_EQ(bitDiff(sa.read({0, 2}), expect), 1u);

    // The sources were not disturbed.
    EXPECT_EQ(sa.read({0, 0}), a);
    EXPECT_EQ(sa.read({0, 1}), b);
}

TEST(SubArrayFaults, StuckAtDefectIsStablePerLocation)
{
    fault::FaultParams fp;
    fp.enabled = true;
    fp.seed = 4;
    fp.stuckAtPerBlock = 1.0;
    fault::FaultInjector inj(fp);

    SubArray sa(smallParams());
    sa.attachFaults(&inj, 9);

    Rng rng(3);
    Block data = randomBlock(rng);
    sa.write({1, 4}, data);

    Block first = sa.read({1, 4});
    EXPECT_EQ(bitDiff(first, data), 1u);
    EXPECT_EQ(sa.lastSenseFault().kind, fault::FaultKind::StuckAt);
    // The defect is tied to the cells, not to a draw: every read of the
    // same location sees the same flip.
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(sa.read({1, 4}), first);
}

TEST(SubArrayFaults, TransientUpsetsCorruptSenses)
{
    fault::FaultParams fp;
    fp.enabled = true;
    fp.seed = 5;
    fp.transientPerBlockOp = 1.0;
    fp.doubleBitFraction = 0.0;
    fp.burstFraction = 0.0;
    fault::FaultInjector inj(fp);

    SubArray sa(smallParams());
    sa.attachFaults(&inj, 2);

    Rng rng(4);
    Block data = randomBlock(rng);
    sa.write({0, 3}, data);

    // Every sense suffers a fresh single-bit upset; the stored cells
    // keep the true data.
    for (int i = 0; i < 5; ++i) {
        Block seen = sa.read({0, 3});
        EXPECT_EQ(bitDiff(seen, data), 1u);
        EXPECT_EQ(sa.lastSenseFault().kind,
                  fault::FaultKind::TransientSingle);
    }
}

} // namespace
} // namespace ccache::sram
