/**
 * @file
 * Unit + property tests for the compute-capable SRAM sub-array: every
 * bit-line operation is checked against a reference software
 * implementation on randomized block contents.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sram/subarray.hh"

namespace ccache::sram {
namespace {

SubArrayParams
smallParams()
{
    SubArrayParams p;
    p.rows = 16;
    p.cols = 1024;  // two 64-byte blocks per row -> two partitions
    return p;
}

Block
randomBlock(Rng &rng)
{
    Block b;
    for (auto &byte : b)
        byte = static_cast<std::uint8_t>(rng.below(256));
    return b;
}

class SubArrayTest : public ::testing::Test
{
  protected:
    SubArrayTest() : sa(smallParams()) {}
    SubArray sa;
    Rng rng{42};
};

TEST_F(SubArrayTest, GeometryDerivation)
{
    EXPECT_EQ(sa.partitions(), 2u);
    EXPECT_EQ(sa.rowsPerPartition(), 16u);
    EXPECT_EQ(sa.params().capacityBytes(), 16u * 1024u / 8u);
}

TEST_F(SubArrayTest, ReadWriteRoundTrip)
{
    for (std::size_t p = 0; p < sa.partitions(); ++p) {
        for (std::size_t r = 0; r < 4; ++r) {
            Block data = randomBlock(rng);
            sa.write({p, r}, data);
            EXPECT_EQ(sa.read({p, r}), data);
        }
    }
}

TEST_F(SubArrayTest, WriteDoesNotDisturbNeighbourPartition)
{
    Block a = randomBlock(rng);
    Block b = randomBlock(rng);
    sa.write({0, 3}, a);
    sa.write({1, 3}, b);  // same row, other partition
    EXPECT_EQ(sa.read({0, 3}), a);
    EXPECT_EQ(sa.read({1, 3}), b);
}

TEST_F(SubArrayTest, AndMatchesReference)
{
    for (int iter = 0; iter < 20; ++iter) {
        Block a = randomBlock(rng), b = randomBlock(rng);
        sa.write({0, 0}, a);
        sa.write({0, 1}, b);
        sa.opAnd({0, 0}, {0, 1}, {0, 2});
        Block expect;
        for (std::size_t i = 0; i < kBlockSize; ++i)
            expect[i] = a[i] & b[i];
        EXPECT_EQ(sa.read({0, 2}), expect);
        // Sources must be unmodified (non-destructive compute).
        EXPECT_EQ(sa.read({0, 0}), a);
        EXPECT_EQ(sa.read({0, 1}), b);
    }
}

TEST_F(SubArrayTest, OrMatchesReference)
{
    for (int iter = 0; iter < 20; ++iter) {
        Block a = randomBlock(rng), b = randomBlock(rng);
        sa.write({1, 0}, a);
        sa.write({1, 1}, b);
        sa.opOr({1, 0}, {1, 1}, {1, 2});
        Block expect;
        for (std::size_t i = 0; i < kBlockSize; ++i)
            expect[i] = a[i] | b[i];
        EXPECT_EQ(sa.read({1, 2}), expect);
    }
}

TEST_F(SubArrayTest, XorMatchesReference)
{
    for (int iter = 0; iter < 20; ++iter) {
        Block a = randomBlock(rng), b = randomBlock(rng);
        sa.write({0, 4}, a);
        sa.write({0, 5}, b);
        sa.opXor({0, 4}, {0, 5}, {0, 6});
        Block expect;
        for (std::size_t i = 0; i < kBlockSize; ++i)
            expect[i] = a[i] ^ b[i];
        EXPECT_EQ(sa.read({0, 6}), expect);
    }
}

TEST_F(SubArrayTest, NorMatchesReference)
{
    Block a = randomBlock(rng), b = randomBlock(rng);
    sa.write({0, 0}, a);
    sa.write({0, 1}, b);
    sa.opNor({0, 0}, {0, 1}, {0, 2});
    Block expect;
    for (std::size_t i = 0; i < kBlockSize; ++i)
        expect[i] = static_cast<std::uint8_t>(~(a[i] | b[i]));
    EXPECT_EQ(sa.read({0, 2}), expect);
}

TEST_F(SubArrayTest, NotMatchesReference)
{
    Block a = randomBlock(rng);
    sa.write({0, 7}, a);
    sa.opNot({0, 7}, {0, 8});
    Block expect;
    for (std::size_t i = 0; i < kBlockSize; ++i)
        expect[i] = static_cast<std::uint8_t>(~a[i]);
    EXPECT_EQ(sa.read({0, 8}), expect);
    EXPECT_EQ(sa.read({0, 7}), a);
}

TEST_F(SubArrayTest, CopyAndBuz)
{
    Block a = randomBlock(rng);
    sa.write({1, 2}, a);
    sa.opCopy({1, 2}, {1, 9});
    EXPECT_EQ(sa.read({1, 9}), a);
    EXPECT_EQ(sa.read({1, 2}), a);
    sa.opBuz({1, 9});
    EXPECT_EQ(sa.read({1, 9}), zeroBlock());
}

TEST_F(SubArrayTest, CmpDetectsWordDifferences)
{
    Block a = randomBlock(rng);
    Block b = a;
    // Flip one bit in words 1 and 6.
    b[8] ^= 0x01;
    b[48] ^= 0x80;
    sa.write({0, 0}, a);
    sa.write({0, 1}, b);
    auto result = sa.opCmp({0, 0}, {0, 1});
    EXPECT_FALSE(result.allEqual);
    // Words 1 and 6 differ, others equal.
    EXPECT_EQ(result.wordEqualMask, 0xffu & ~((1u << 1) | (1u << 6)));
}

TEST_F(SubArrayTest, CmpEqualBlocks)
{
    Block a = randomBlock(rng);
    sa.write({0, 0}, a);
    sa.write({0, 1}, a);
    auto result = sa.opCmp({0, 0}, {0, 1});
    EXPECT_TRUE(result.allEqual);
    EXPECT_EQ(result.wordEqualMask, 0xffu);
}

TEST_F(SubArrayTest, SearchMatchesCmp)
{
    Block key = randomBlock(rng);
    Block data = key;
    data[0] ^= 0xff;
    sa.write({0, 0}, key);
    sa.write({0, 1}, data);
    auto result = sa.opSearch({0, 0}, {0, 1});
    EXPECT_FALSE(result.allEqual);
    EXPECT_EQ(result.wordEqualMask & 1u, 0u);
    EXPECT_EQ(sa.opCount(BitlineOp::Search), 1u);
    EXPECT_EQ(sa.opCount(BitlineOp::Cmp), 0u);
}

TEST_F(SubArrayTest, ClmulMatchesReference)
{
    for (std::size_t word_bits : {64u, 128u, 256u}) {
        Block a = randomBlock(rng), b = randomBlock(rng);
        sa.write({0, 0}, a);
        sa.write({0, 1}, b);
        auto result = sa.opClmul({0, 0}, {0, 1}, word_bits);
        ASSERT_EQ(result.parities.size(), 8 * kBlockSize / word_bits);
        // Reference: parity of AND per word.
        for (std::size_t w = 0; w < result.parities.size(); ++w) {
            unsigned ones = 0;
            for (std::size_t bit = 0; bit < word_bits; ++bit) {
                std::size_t idx = w * word_bits + bit;
                bool ba = (a[idx / 8] >> (idx % 8)) & 1;
                bool bb = (b[idx / 8] >> (idx % 8)) & 1;
                ones += (ba && bb) ? 1 : 0;
            }
            EXPECT_EQ(result.parities[w], (ones & 1) != 0)
                << "word " << w << " width " << word_bits;
        }
    }
}

TEST_F(SubArrayTest, DelayFactorsPerPaper)
{
    const auto &p = sa.params();
    // Section VI-C: and/or/xor 3x a sub-array access, others 2x.
    EXPECT_EQ(p.opDelay(BitlineOp::Read), p.accessDelay);
    EXPECT_EQ(p.opDelay(BitlineOp::And), 3 * p.accessDelay);
    EXPECT_EQ(p.opDelay(BitlineOp::Xor), 3 * p.accessDelay);
    EXPECT_EQ(p.opDelay(BitlineOp::Copy), 2 * p.accessDelay);
    EXPECT_EQ(p.opDelay(BitlineOp::Cmp), 2 * p.accessDelay);
    EXPECT_EQ(p.opDelay(BitlineOp::Search), 2 * p.accessDelay);
}

TEST_F(SubArrayTest, EnergyFactorsPerPaper)
{
    const auto &p = sa.params();
    // Section VI-C: cmp/search/clmul 1.5x, copy/buz/not 2x, logic 2.5x.
    EXPECT_DOUBLE_EQ(p.opEnergy(BitlineOp::Cmp), 1.5 * p.accessEnergy);
    EXPECT_DOUBLE_EQ(p.opEnergy(BitlineOp::Clmul), 1.5 * p.accessEnergy);
    EXPECT_DOUBLE_EQ(p.opEnergy(BitlineOp::Copy), 2.0 * p.accessEnergy);
    EXPECT_DOUBLE_EQ(p.opEnergy(BitlineOp::Buz), 2.0 * p.accessEnergy);
    EXPECT_DOUBLE_EQ(p.opEnergy(BitlineOp::And), 2.5 * p.accessEnergy);
    EXPECT_DOUBLE_EQ(p.opEnergy(BitlineOp::Xor), 2.5 * p.accessEnergy);
}

TEST_F(SubArrayTest, OpCostReported)
{
    Block a = randomBlock(rng);
    sa.write({0, 0}, a);
    sa.write({0, 1}, a);
    auto cost = sa.opAnd({0, 0}, {0, 1}, {0, 2});
    EXPECT_EQ(cost.delay, sa.params().opDelay(BitlineOp::And));
    EXPECT_DOUBLE_EQ(cost.energy, sa.params().opEnergy(BitlineOp::And));
}

TEST_F(SubArrayTest, OpCountsTracked)
{
    Block a = randomBlock(rng);
    sa.write({0, 0}, a);
    sa.write({0, 1}, a);
    sa.opAnd({0, 0}, {0, 1}, {0, 2});
    sa.opAnd({0, 0}, {0, 1}, {0, 3});
    sa.opCopy({0, 0}, {0, 4});
    EXPECT_EQ(sa.opCount(BitlineOp::Write), 2u);
    EXPECT_EQ(sa.opCount(BitlineOp::And), 2u);
    EXPECT_EQ(sa.opCount(BitlineOp::Copy), 1u);
}

TEST(SubArrayParams, ValidateRejectsBadConfigs)
{
    SubArrayParams p;
    p.rows = 0;
    EXPECT_THROW(p.validate(), FatalError);

    p = SubArrayParams{};
    p.cols = 100;  // not a power of two / not whole blocks
    EXPECT_THROW(p.validate(), FatalError);

    p = SubArrayParams{};
    p.wordlineUnderdrive = 1.5;
    EXPECT_THROW(p.validate(), FatalError);
}

// ---------------------------------------------------------------------
// Robustness: multi-row activation and the read-disturb failure mode.
// ---------------------------------------------------------------------

TEST(SubArrayRobustness, SafeMultiRowActivationPreservesData)
{
    SubArrayParams p;
    p.rows = 128;
    p.cols = 512;
    SubArray sa(p);
    Rng rng(1);

    std::vector<Block> blocks;
    for (std::size_t r = 0; r < 64; ++r) {
        Block b = randomBlock(rng);
        blocks.push_back(b);
        sa.write({0, r}, b);
    }

    // Activate the maximum demonstrated-safe 64 word-lines at once.
    std::vector<std::size_t> rows(64);
    for (std::size_t r = 0; r < 64; ++r)
        rows[r] = r;
    auto sense = sa.rawActivate(rows);

    // AND of all 64 rows on BL, NOR on BLB.
    for (std::size_t c = 0; c < 64; ++c) {
        bool all_ones = true, all_zeros = true;
        for (std::size_t r = 0; r < 64; ++r) {
            bool bit = (blocks[r][c / 8] >> (c % 8)) & 1;
            all_ones &= bit;
            all_zeros &= !bit;
        }
        EXPECT_EQ(sense.andResult.get(c), all_ones);
        EXPECT_EQ(sense.norResult.get(c), all_zeros);
    }

    // No corruption: every row reads back intact.
    for (std::size_t r = 0; r < 64; ++r)
        EXPECT_EQ(sa.read({0, r}), blocks[r]) << "row " << r;
}

TEST(SubArrayRobustness, ExcessiveActivationCorrupts)
{
    SubArrayParams p;
    p.rows = 128;
    p.cols = 512;
    p.maxSafeActiveRows = 4;
    SubArray sa(p);

    // Rows of alternating ones and zeros guarantee discharged bit-lines.
    Block ones;
    ones.fill(0xff);
    for (std::size_t r = 0; r < 8; ++r)
        sa.write({0, r}, r % 2 ? ones : zeroBlock());

    std::vector<std::size_t> rows = {0, 1, 2, 3, 4, 5, 6, 7};
    sa.rawActivate(rows);

    // Beyond maxSafeActiveRows the '1' cells on discharged columns flip.
    EXPECT_NE(sa.read({0, 1}), ones);
}

TEST(SubArrayRobustness, SenseMarginSupportsSixSigma)
{
    SubArrayParams p;
    p.rows = 16;
    p.cols = 512;
    SubArray sa(p);
    Block a, b;
    a.fill(0xaa);
    b.fill(0x55);
    sa.write({0, 0}, a);
    sa.write({0, 1}, b);
    auto sense = sa.rawActivate({0, 1});

    // With pull strength 0.6 and Vref 0.5, the worst-case margin is 0.1
    // VDD; a 15 mV-sigma amplifier offset (0.015 VDD) gives > 6 sigma.
    EXPECT_GE(sense.margin, 0.1 - 1e-9);
    Rng rng(99);
    double fail = SenseAmpArray::monteCarloFailureRate(
        sense.margin, 0.015, 200000, rng);
    EXPECT_EQ(fail, 0.0);
}

} // namespace
} // namespace ccache::sram
