/**
 * @file
 * Parameterized sweep: the compute sub-array must be functionally
 * correct for every geometry the caches derive (L1 128x512,
 * L2 256x512, L3 512x512) and for multi-partition rows.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "geometry/cache_geometry.hh"
#include "sram/subarray.hh"

namespace ccache::sram {
namespace {

struct SweepCase
{
    const char *name;
    std::size_t rows;
    std::size_t cols;
};

class SubArraySweep : public ::testing::TestWithParam<SweepCase>
{
};

TEST_P(SubArraySweep, AllOpsCorrectOnThisGeometry)
{
    auto [name, rows, cols] = GetParam();
    SubArrayParams p;
    p.rows = rows;
    p.cols = cols;
    SubArray sa(p);
    Rng rng(rows * 31 + cols);

    for (std::size_t part = 0; part < sa.partitions(); ++part) {
        Block a, b;
        for (std::size_t i = 0; i < kBlockSize; ++i) {
            a[i] = static_cast<std::uint8_t>(rng.below(256));
            b[i] = static_cast<std::uint8_t>(rng.below(256));
        }
        std::size_t r0 = rng.below(rows);
        std::size_t r1 = (r0 + 1 + rng.below(rows - 1)) % rows;
        std::size_t rd = (r1 + 1 + rng.below(rows - 1)) % rows;
        if (rd == r0)
            rd = (rd + 1) % rows;
        ASSERT_NE(r0, r1);

        sa.write({part, r0}, a);
        sa.write({part, r1}, b);

        sa.opAnd({part, r0}, {part, r1}, {part, rd});
        Block expect;
        for (std::size_t i = 0; i < kBlockSize; ++i)
            expect[i] = a[i] & b[i];
        EXPECT_EQ(sa.read({part, rd}), expect) << name;

        sa.opXor({part, r0}, {part, r1}, {part, rd});
        for (std::size_t i = 0; i < kBlockSize; ++i)
            expect[i] = a[i] ^ b[i];
        EXPECT_EQ(sa.read({part, rd}), expect) << name;

        sa.opCopy({part, r0}, {part, rd});
        EXPECT_EQ(sa.read({part, rd}), a) << name;

        auto cmp = sa.opCmp({part, r0}, {part, r1});
        EXPECT_EQ(cmp.allEqual, a == b) << name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    PaperGeometries, SubArraySweep,
    ::testing::Values(SweepCase{"L1", 128, 512},
                      SweepCase{"L2", 256, 512},
                      SweepCase{"L3", 512, 512},
                      SweepCase{"wide2", 64, 1024},
                      SweepCase{"wide4", 32, 2048}),
    [](const auto &info) { return std::string(info.param.name); });

TEST(SubArraySweep, GeometryDerivedParamsMatchSubArray)
{
    // The cache geometry's derived sub-array params build working
    // sub-arrays for all three paper caches.
    for (auto params : {geometry::CacheGeometryParams::l1d(),
                        geometry::CacheGeometryParams::l2(),
                        geometry::CacheGeometryParams::l3Slice()}) {
        geometry::CacheGeometry geom(params);
        SubArray sa(geom.subArrayParams());
        EXPECT_EQ(sa.rowsPerPartition(), geom.rowsPerSubarray());
        EXPECT_EQ(sa.partitions(), geom.subArrayParams().blockPartitions());
        // One quick functional round trip.
        Block b;
        b.fill(0xa5);
        sa.write({0, 0}, b);
        EXPECT_EQ(sa.read({0, 0}), b);
    }
}

} // namespace
} // namespace ccache::sram
