/**
 * @file
 * Reproduction-shape regression tests: lock in the qualitative results
 * of the paper's evaluation so a refactor cannot silently break the
 * reproduction. Bands are deliberately loose — they encode "who wins by
 * roughly what factor", not exact cycle counts.
 */

#include <gtest/gtest.h>

#include "apps/checkpoint.hh"
#include "sim/system.hh"

namespace ccache {
namespace {

using sim::BulkKernel;
using sim::KernelResult;
using sim::System;

struct MicroResult
{
    double speedup;
    double energySaving;  // fraction of Base_32 dynamic energy removed
};

MicroResult
runMicro(BulkKernel kernel)
{
    const std::size_t n = 4096;
    const Addr a = 0x100000, b = 0x110000, d = 0x120000, k = 0x130000;

    auto prepare = [&](System &sys) {
        std::vector<std::uint8_t> da(n), db(n);
        for (std::size_t i = 0; i < n; ++i) {
            da[i] = static_cast<std::uint8_t>(i * 3 + 1);
            db[i] = static_cast<std::uint8_t>(i * 7 + 5);
        }
        sys.load(a, da.data(), n);
        sys.load(b, db.data(), n);
        sys.load(k, da.data(), 64);
        for (Addr addr : {a, b, d})
            sys.warm(CacheLevel::L3, 0, addr, n);
        sys.warm(CacheLevel::L3, 0, k, 64);
        sys.resetMetrics();
    };

    System base_sys, cc_sys;
    prepare(base_sys);
    prepare(cc_sys);
    Addr second = kernel == BulkKernel::Search ? k : b;

    KernelResult base = base_sys.simd32().run(kernel, 0, a, second, d, n);
    double base_dyn = base_sys.energy().dynamic().dynamicTotal();

    cc_sys.cc().mutableParams().forceLevel = CacheLevel::L3;
    KernelResult cc = cc_sys.ccEngine().run(kernel, 0, a, second, d, n);
    double cc_dyn = cc_sys.energy().dynamic().dynamicTotal();

    return {static_cast<double>(base.cycles) /
                static_cast<double>(cc.cycles),
            1.0 - cc_dyn / base_dyn};
}

TEST(ReproductionShapes, Figure7SpeedupBands)
{
    // Paper: 54x average; we lock each kernel into a generous band that
    // preserves the ordering (logical/copy > compare > search) and the
    // order of magnitude.
    double copy = runMicro(BulkKernel::Copy).speedup;
    double compare = runMicro(BulkKernel::Compare).speedup;
    double search = runMicro(BulkKernel::Search).speedup;
    double logical = runMicro(BulkKernel::LogicalOr).speedup;

    EXPECT_GE(copy, 20.0);
    EXPECT_GE(compare, 12.0);
    EXPECT_GE(search, 5.0);
    EXPECT_GE(logical, 30.0);
    EXPECT_GE(logical, copy * 0.9);  // logical is the top kernel
    EXPECT_LT(search, compare);      // key replication taxes search
}

TEST(ReproductionShapes, Figure7EnergySavingBands)
{
    // Paper: 90/89/71/92% dynamic-energy savings.
    EXPECT_GE(runMicro(BulkKernel::Copy).energySaving, 0.85);
    EXPECT_GE(runMicro(BulkKernel::Compare).energySaving, 0.85);
    EXPECT_GE(runMicro(BulkKernel::Search).energySaving, 0.70);
    EXPECT_GE(runMicro(BulkKernel::LogicalOr).energySaving, 0.85);
}

TEST(ReproductionShapes, Figure8NearPlaceOrdering)
{
    // In-place must beat near-place by a wide margin on throughput
    // (paper: 16x), and near-place must still beat Base_32.
    const std::size_t n = 4096;
    const Addr a = 0x100000, d = 0x120000;

    auto run = [&](bool near_place, bool cc) {
        System sys;
        std::vector<std::uint8_t> data(n, 0x21);
        sys.load(a, data.data(), n);
        sys.warm(CacheLevel::L3, 0, a, n);
        sys.warm(CacheLevel::L3, 0, d, n);
        sys.resetMetrics();
        if (!cc)
            return sys.simd32().copy(0, a, d, n).cycles;
        sys.cc().mutableParams().forceLevel = CacheLevel::L3;
        sys.cc().mutableParams().forceNearPlace = near_place;
        return sys.ccEngine().copy(0, a, d, n).cycles;
    };

    Cycles in_place = run(false, true);
    Cycles near_place = run(true, true);
    Cycles base = run(false, false);

    EXPECT_GE(static_cast<double>(near_place) /
                  static_cast<double>(in_place),
              8.0);
    EXPECT_LT(near_place, base);  // near-place still beats Base_32
}

TEST(ReproductionShapes, Figure10CheckpointBands)
{
    // Paper: worst-case Base ~68%, CC an order of magnitude below
    // Base_32 everywhere.
    apps::CheckpointConfig cfg;
    cfg.intervals = 20;
    for (auto app :
         {workload::SplashApp::Radix, workload::SplashApp::Raytrace}) {
        double overhead[3];
        int m = 0;
        for (apps::Engine e : {apps::Engine::Base, apps::Engine::Base32,
                               apps::Engine::Cc}) {
            sim::System sys;
            apps::Checkpoint ck(app, cfg);
            overhead[m++] = ck.run(sys, e).overheadPct();
        }
        EXPECT_GT(overhead[0], overhead[1]) << toString(app);
        EXPECT_GT(overhead[1], 4.0 * overhead[2]) << toString(app);
    }

    // radix is the worst case and lands near the paper's 68%.
    sim::System sys;
    apps::Checkpoint radix(workload::SplashApp::Radix, cfg);
    double worst = radix.run(sys, apps::Engine::Base).overheadPct();
    EXPECT_GT(worst, 40.0);
    EXPECT_LT(worst, 100.0);
}

TEST(ReproductionShapes, Figure3ScalarProportions)
{
    // Paper: ~3/4 instruction processing, ~1/4 data movement.
    System sys;
    const std::size_t n = 4096;
    std::vector<std::uint8_t> data(n, 0x3c);
    sys.load(0x100000, data.data(), n);
    sys.load(0x110000, data.data(), n);
    sys.warm(CacheLevel::L3, 0, 0x100000, n);
    sys.warm(CacheLevel::L3, 0, 0x110000, n);
    sys.resetMetrics();
    sys.scalar().compare(0, 0x100000, 0x110000, n);

    const auto &dyn = sys.energy().dynamic();
    double core_share = dyn.core / dyn.dynamicTotal();
    EXPECT_GT(core_share, 0.60);
    EXPECT_LT(core_share, 0.85);
}

} // namespace
} // namespace ccache
