/**
 * @file
 * Tests for the trace parser and replayer.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "sim/trace.hh"

namespace ccache::sim {
namespace {

TEST(TraceParser, ParsesAllRecordKinds)
{
    auto parsed = parseTrace(std::string(R"(
# comment and blank lines ignored

R 0 0x1000
W 3 4096
CC 1 cc_copy 0x2000 0x3000 512
CC 0 cc_cmp 0x2000 0x3000 128
CC 2 cc_and 0x1000 0x2000 0x3000 256
CC 0 cc_clmul128 0x1000 0x2000 0x3000 64
CC 1 cc_search 0x4000 0x5000 512   # trailing comment
)"));
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(parsed.records.size(), 7u);
    EXPECT_EQ(parsed.records[0].kind, TraceRecord::Kind::Read);
    EXPECT_EQ(parsed.records[0].addr, 0x1000u);
    EXPECT_EQ(parsed.records[1].kind, TraceRecord::Kind::Write);
    EXPECT_EQ(parsed.records[1].core, 3u);
    EXPECT_EQ(parsed.records[2].instr.op, cc::CcOpcode::Copy);
    EXPECT_EQ(parsed.records[3].instr.op, cc::CcOpcode::Cmp);
    EXPECT_EQ(parsed.records[4].instr.op, cc::CcOpcode::And);
    EXPECT_EQ(parsed.records[5].instr.clmulWordBits, 128u);
    EXPECT_EQ(parsed.records[6].instr.op, cc::CcOpcode::Search);
}

TEST(TraceParser, ReportsMalformedLinesWithoutAborting)
{
    auto parsed = parseTrace(std::string(R"(
R 0 0x1000
X 0 0x1000
R zero 0x1000
CC 0 cc_frobnicate 0x0 64
CC 0 cc_copy 0x1 0x2000 64
W 1 0x2000
)"));
    // Two good records survive; four problems reported.
    EXPECT_EQ(parsed.records.size(), 2u);
    ASSERT_EQ(parsed.errors.size(), 4u);
    EXPECT_NE(parsed.errors[0].message.find("unknown record"),
              std::string::npos);
    EXPECT_NE(parsed.errors[2].message.find("unknown mnemonic"),
              std::string::npos);
    // The cc_copy with a misaligned operand fails ISA validation.
    EXPECT_NE(parsed.errors[3].message.find("aligned"),
              std::string::npos);
}

TEST(TraceParser, OperandCountChecked)
{
    auto parsed =
        parseTrace(std::string("CC 0 cc_and 0x1000 0x2000 256\n"));
    ASSERT_EQ(parsed.errors.size(), 1u);
    EXPECT_NE(parsed.errors[0].message.find("expects"),
              std::string::npos);
}

TEST(TraceParser, BadHexOperandReported)
{
    auto parsed = parseTrace(std::string(R"(
R 0 0xZZ12
CC 0 cc_copy 0x10g0 0x2000 64
W 0 0x--
)"));
    EXPECT_TRUE(parsed.records.empty());
    ASSERT_EQ(parsed.errors.size(), 3u);
    // The offending line and its number come back for diagnostics.
    EXPECT_EQ(parsed.errors[0].lineNumber, 2u);
    EXPECT_NE(parsed.errors[0].line.find("0xZZ12"), std::string::npos);
    EXPECT_NE(parsed.errors[0].message.find("bad"), std::string::npos);
}

TEST(TraceParser, TruncatedCcRecordReported)
{
    // CC records cut short at every possible point: no mnemonic, no
    // operands, missing size.
    auto parsed = parseTrace(std::string(R"(
CC 0
CC 0 cc_copy
CC 0 cc_copy 0x1000
CC 0 cc_xor 0x1000 0x2000 0x3000
)"));
    EXPECT_TRUE(parsed.records.empty());
    ASSERT_EQ(parsed.errors.size(), 4u);
    for (const auto &err : parsed.errors)
        EXPECT_FALSE(err.message.empty());
}

TEST(TraceParser, OversizedLineSkippedAndReported)
{
    // A line longer than kMaxTraceLineBytes is skipped (without ever
    // buffering it whole) and reported; surrounding records survive.
    std::string text = "R 0 0x1000\n";
    text += "W 0 0x2000" + std::string(2 * kMaxTraceLineBytes, ' ') +
        "junk\n";
    text += "W 0 0x3000\n";
    auto parsed = parseTrace(text);

    ASSERT_EQ(parsed.records.size(), 2u);
    EXPECT_EQ(parsed.records[0].addr, 0x1000u);
    EXPECT_EQ(parsed.records[1].addr, 0x3000u);
    ASSERT_EQ(parsed.errors.size(), 1u);
    EXPECT_EQ(parsed.errors[0].lineNumber, 2u);
    EXPECT_NE(parsed.errors[0].message.find("oversized"),
              std::string::npos);
    // The diagnostic keeps only an excerpt, never the whole line.
    EXPECT_LT(parsed.errors[0].line.size(), 128u);
}

TEST(TraceParser, LineExactlyAtLimitParses)
{
    // Pad a valid record with trailing spaces to exactly the limit
    // (content chars, newline excluded): still parsed, no error.
    std::string record = "R 0 0x4000";
    std::string text = record +
        std::string(kMaxTraceLineBytes - record.size(), ' ') + "\n";
    ASSERT_EQ(text.size(), kMaxTraceLineBytes + 1);
    auto parsed = parseTrace(text);
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(parsed.records.size(), 1u);
    EXPECT_EQ(parsed.records[0].addr, 0x4000u);
}

TEST(TraceParser, ConsecutiveOversizedLinesEachReported)
{
    std::string big(kMaxTraceLineBytes + 10, 'x');
    std::string text = big + "\n" + big + "\nR 0 0x1000\n";
    auto parsed = parseTrace(text);
    ASSERT_EQ(parsed.records.size(), 1u);
    ASSERT_EQ(parsed.errors.size(), 2u);
    EXPECT_EQ(parsed.errors[0].lineNumber, 1u);
    EXPECT_EQ(parsed.errors[1].lineNumber, 2u);
}

TEST(TraceParser, FileRoundTripAndMissingFile)
{
    namespace fs = std::filesystem;
    fs::path path =
        fs::temp_directory_path() / "ccache_trace_parse_test.trace";
    {
        std::ofstream out(path);
        out << "# file round trip\nR 0 0x1000\nCC 1 cc_buz 0x2000 "
               "128\n";
    }
    auto parsed = parseTraceFile(path.string());
    EXPECT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.records.size(), 2u);
    fs::remove(path);

    auto missing = parseTraceFile(path.string());
    EXPECT_TRUE(missing.records.empty());
    ASSERT_EQ(missing.errors.size(), 1u);
    EXPECT_EQ(missing.errors[0].lineNumber, 0u);
    EXPECT_NE(missing.errors[0].message.find("cannot open"),
              std::string::npos);
}

TEST(TraceReplay, FunctionalAndCounted)
{
    System sys;
    std::vector<std::uint8_t> data(4096);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i);
    sys.load(0x10000, data.data(), data.size());

    auto parsed = parseTrace(std::string(R"(
R 0 0x10000
CC 0 cc_copy 0x10000 0x20000 4096
CC 0 cc_cmp 0x10000 0x20000 512
W 1 0x30000
)"));
    ASSERT_TRUE(parsed.ok());

    auto result = replayTrace(sys, parsed);
    EXPECT_EQ(result.reads, 1u);
    EXPECT_EQ(result.writes, 1u);
    EXPECT_EQ(result.ccInstructions, 2u);
    EXPECT_GT(result.cycles, 0u);
    // The cmp compared identical data: all 64 word bits set.
    EXPECT_EQ(result.resultChecksum, ~std::uint64_t{0});
    // And the copy actually happened.
    EXPECT_EQ(sys.dump(0x20000, 4096), data);
}

TEST(TraceReplay, PerCoreClocksMakeMakespan)
{
    System sys;
    auto parsed = parseTrace(std::string(R"(
CC 0 cc_buz 0x10000 16384
R 5 0x90000
)"));
    ASSERT_TRUE(parsed.ok());
    auto result = replayTrace(sys, parsed);
    // Core 0's big CC op dominates core 5's single read.
    EXPECT_EQ(result.cycles, sys.coreCycles(0));
    EXPECT_GT(sys.coreCycles(0), sys.coreCycles(5));
}

TEST(TraceReplay, ReportContainsKeyLines)
{
    System sys;
    auto parsed = parseTrace(std::string("R 0 0x1000\n"));
    auto result = replayTrace(sys, parsed);
    std::string report = formatReport(sys, result);
    EXPECT_NE(report.find("reads            1"), std::string::npos);
    EXPECT_NE(report.find("dynamic-total"), std::string::npos);
    EXPECT_NE(report.find("hier.l1_misses"), std::string::npos);
}

} // namespace
} // namespace ccache::sim
