/**
 * @file
 * Unit tests for the analytical core cost model.
 */

#include <gtest/gtest.h>

#include "sim/core_model.hh"

namespace ccache::sim {
namespace {

TEST(CoreCostModel, IssueBoundKernel)
{
    CoreParams p;
    p.issueWidth = 4;
    CoreCostModel m(p);
    m.addInstrs(400);
    EXPECT_EQ(m.cycles(), 100u);
    EXPECT_EQ(m.instructions(), 400u);
}

TEST(CoreCostModel, HitStreamBoundByMemIssueWidth)
{
    CoreParams p;
    p.memIssueWidth = 2;
    CoreCostModel m(p);
    for (int i = 0; i < 200; ++i)
        m.addMemAccess(5);  // L1 hits
    EXPECT_EQ(m.cycles(), 100u);
}

TEST(CoreCostModel, MissesOverlapUpToMshrs)
{
    CoreParams p;
    p.mshrs = 4;
    CoreCostModel m(p);
    for (int i = 0; i < 8; ++i)
        m.addMemAccess(100);
    // 8 x 100 cycles of miss latency, 4 deep -> 200 cycles.
    EXPECT_EQ(m.cycles(), 200u);
}

TEST(CoreCostModel, SingleMissIsNotOverOverlapped)
{
    CoreParams p;
    p.mshrs = 8;
    CoreCostModel m(p);
    m.addMemAccess(120);
    // One miss cannot take less than its own latency.
    EXPECT_EQ(m.cycles(), 120u);
}

TEST(CoreCostModel, DependentAccessesSerialize)
{
    CoreParams p;
    p.mshrs = 8;
    CoreCostModel m(p);
    for (int i = 0; i < 10; ++i)
        m.addDependentMemAccess(50);
    // A dependent chain gets no MLP at all.
    EXPECT_GE(m.cycles(), 500u);
}

TEST(CoreCostModel, BranchMispredictionsAddSerialLatency)
{
    CoreParams p;
    p.branchMispredictPenalty = 20;
    CoreCostModel m(p);
    m.addBranches(100, 0.5);
    // 50 mispredictions x 20 cycles.
    EXPECT_GE(m.cycles(), 1000u);
    m.reset();
    m.addBranches(100, 0.0);
    EXPECT_LT(m.cycles(), 100u);
}

TEST(CoreCostModel, MaxOfIssueAndMemoryBound)
{
    CoreCostModel m;
    m.addInstrs(4000);   // 1000 cycles issue-bound
    m.addMemAccess(100); // small memory component
    EXPECT_GE(m.cycles(), 1000u);
    m.reset();
    EXPECT_EQ(m.cycles(), 1u);
}

} // namespace
} // namespace ccache::sim
