/**
 * @file
 * Tests for the event-trace sink: disabled-by-default behavior, track
 * cursors, Chrome trace-event JSON output, and the guarantee that
 * enabling tracing does not perturb simulation statistics.
 */

#include <gtest/gtest.h>

#include "common/event_trace.hh"
#include "common/json.hh"
#include "sim/system.hh"

namespace ccache {
namespace {

TEST(EventTrace, DisabledSinkRecordsNothing)
{
    EventTrace trace;
    EXPECT_FALSE(trace.enabled());
    trace.complete(tracecat::kCc, "cc_copy", 0, 0, 10);
    trace.instant(tracecat::kFault, "fault.retry", EventTrace::kGlobalTrack,
                  5);
    EXPECT_EQ(trace.size(), 0u);
}

TEST(EventTrace, TrackCursorsSerializeOverlappingEvents)
{
    EventTrace trace;
    trace.enable();
    // Two events claiming the same start cycle on one track lay
    // end-to-end; a third on another track is independent.
    trace.complete(tracecat::kCc, "a", 0, 100, 10);
    trace.complete(tracecat::kCc, "b", 0, 100, 10);
    trace.complete(tracecat::kNoc, "c", 1, 100, 10);
    ASSERT_EQ(trace.size(), 3u);

    Json doc;
    std::string error;
    doc = Json::parse(trace.dumpChromeJson(), &error);
    ASSERT_TRUE(error.empty()) << error;
    const Json *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);

    std::uint64_t ts_a = 0, ts_b = 0, ts_c = 0;
    for (const Json &e : events->asArray()) {
        const Json *name = e.find("name");
        if (!name || !e.find("ts"))
            continue;
        if (name->asString() == "a")
            ts_a = static_cast<std::uint64_t>(e.find("ts")->asNumber());
        if (name->asString() == "b")
            ts_b = static_cast<std::uint64_t>(e.find("ts")->asNumber());
        if (name->asString() == "c")
            ts_c = static_cast<std::uint64_t>(e.find("ts")->asNumber());
    }
    EXPECT_EQ(ts_a, 100u);
    EXPECT_EQ(ts_b, 110u);  // pushed past 'a' by the track cursor
    EXPECT_EQ(ts_c, 100u);  // different track, unaffected
}

TEST(EventTrace, ChromeJsonCarriesMetadataAndCategories)
{
    EventTrace trace;
    trace.enable();
    Json args = Json::object();
    args["addr"] = "0x1000";
    trace.complete(tracecat::kCache, "read.l2", 2, 0, 5, args);
    trace.instant(tracecat::kFault, "fault.retry",
                  EventTrace::kGlobalTrack, 3);

    std::string error;
    Json doc = Json::parse(trace.dumpChromeJson(), &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_EQ(doc.find("displayTimeUnit")->asString(), "ns");

    bool saw_meta = false, saw_cache = false, saw_fault = false;
    for (const Json &e : doc.find("traceEvents")->asArray()) {
        const Json *ph = e.find("ph");
        if (ph && ph->asString() == "M")
            saw_meta = true;
        const Json *cat = e.find("cat");
        if (cat && cat->asString() == tracecat::kCache) {
            saw_cache = true;
            EXPECT_EQ(e.find("args")->find("addr")->asString(), "0x1000");
        }
        if (cat && cat->asString() == tracecat::kFault)
            saw_fault = true;
    }
    EXPECT_TRUE(saw_meta);
    EXPECT_TRUE(saw_cache);
    EXPECT_TRUE(saw_fault);
}

/** Drive one CC kernel; optionally with the trace sink enabled. */
std::string
runAndDumpStats(bool traced, std::string *chrome_out = nullptr)
{
    sim::System sys;
    const std::size_t n = 1024;
    std::vector<std::uint8_t> data(n, 0x5a);
    sys.load(0x100000, data.data(), n);
    sys.warm(CacheLevel::L3, 0, 0x100000, n);
    sys.warm(CacheLevel::L3, 0, 0x200000, n);
    sys.resetMetrics();
    if (traced)
        sys.trace().enable();

    sys.cc().mutableParams().forceLevel = CacheLevel::L3;
    auto r = sys.ccEngine().copy(0, 0x100000, 0x200000, n);
    sys.advance(0, r.cycles);

    if (chrome_out)
        *chrome_out = sys.trace().dumpChromeJson();
    return sys.stats().dump();
}

TEST(EventTraceSystem, TracingDoesNotPerturbStats)
{
    std::string untraced = runAndDumpStats(false);
    std::string chrome;
    std::string traced = runAndDumpStats(true, &chrome);
    // Bit-identical stats dump with and without the sink enabled.
    EXPECT_EQ(untraced, traced);

    // And the traced run actually produced a loadable Chrome trace.
    std::string error;
    Json doc = Json::parse(chrome, &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_GT(doc.find("traceEvents")->asArray().size(), 0u);
}

TEST(EventTraceSystem, DisabledRunEmitsNoEvents)
{
    sim::System sys;
    const std::size_t n = 512;
    std::vector<std::uint8_t> data(n, 0x11);
    sys.load(0x100000, data.data(), n);
    sys.warm(CacheLevel::L3, 0, 0x100000, n);
    sys.resetMetrics();
    sys.cc().mutableParams().forceLevel = CacheLevel::L3;
    sys.ccEngine().copy(0, 0x100000, 0x200000, n);
    EXPECT_EQ(sys.trace().size(), 0u);
}

TEST(EventTraceSystem, ResetMetricsClearsTrace)
{
    sim::System sys;
    sys.trace().enable();
    const std::size_t n = 512;
    std::vector<std::uint8_t> data(n, 0x11);
    sys.load(0x100000, data.data(), n);
    sys.warm(CacheLevel::L3, 0, 0x100000, n);
    sys.warm(CacheLevel::L3, 0, 0x200000, n);
    sys.cc().mutableParams().forceLevel = CacheLevel::L3;
    sys.ccEngine().copy(0, 0x100000, 0x200000, n);
    ASSERT_GT(sys.trace().size(), 0u);
    sys.resetMetrics();
    EXPECT_EQ(sys.trace().size(), 0u);
    EXPECT_TRUE(sys.trace().enabled());  // enable survives a reset
}

} // namespace
} // namespace ccache
