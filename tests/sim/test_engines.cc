/**
 * @file
 * Tests for the execution engines: functional equivalence of the scalar,
 * SIMD and Compute Cache engines on the four bulk kernels, and the
 * ordering relations the paper's Figure 7 relies on.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sim/system.hh"

namespace ccache::sim {
namespace {

class EngineTest : public ::testing::Test
{
  protected:
    static constexpr std::size_t kN = 4096;
    static constexpr Addr kA = 0x100000;
    static constexpr Addr kB = 0x110000;
    static constexpr Addr kD = 0x120000;
    static constexpr Addr kKey = 0x130000;

    EngineTest()
    {
        Rng rng(99);
        da.resize(kN);
        db.resize(kN);
        for (std::size_t i = 0; i < kN; ++i) {
            da[i] = static_cast<std::uint8_t>(rng.below(256));
            db[i] = static_cast<std::uint8_t>(rng.below(256));
        }
        // Plant the key as block 7 of the data.
        key.assign(da.begin() + 7 * 64, da.begin() + 8 * 64);
        sys.load(kA, da.data(), kN);
        sys.load(kB, db.data(), kN);
        sys.load(kKey, key.data(), key.size());
    }

    void
    warmL3()
    {
        // Start from a clean hierarchy so earlier kernels' L1-hot copies
        // do not flatter the baseline.
        sys.hierarchy().flushAll();
        for (Addr a : {kA, kB, kD})
            sys.warm(CacheLevel::L3, 0, a, kN);
        sys.warm(CacheLevel::L3, 0, kKey, 64);
        sys.resetMetrics();
    }

    System sys;
    std::vector<std::uint8_t> da, db, key;
};

TEST_F(EngineTest, CopyFunctionalAllEngines)
{
    sys.scalar().copy(0, kA, kD, kN);
    EXPECT_EQ(sys.dump(kD, kN), da);

    sys.simd32().copy(0, kA, kD + 0x10000, kN);
    EXPECT_EQ(sys.dump(kD + 0x10000, kN), da);

    sys.cc().mutableParams().forceLevel = CacheLevel::L3;
    sys.ccEngine().copy(0, kA, kD + 0x20000, kN);
    EXPECT_EQ(sys.dump(kD + 0x20000, kN), da);
}

TEST_F(EngineTest, CompareFunctionalAllEngines)
{
    EXPECT_EQ(sys.scalar().compare(0, kA, kB, kN).value, 0u);
    EXPECT_EQ(sys.simd32().compare(0, kA, kB, kN).value, 0u);
    EXPECT_EQ(sys.ccEngine().compare(0, kA, kB, kN).value, 0u);

    sys.load(kB, da.data(), kN);  // now equal
    EXPECT_EQ(sys.scalar().compare(0, kA, kB, kN).value, 1u);
    EXPECT_EQ(sys.simd32().compare(0, kA, kB, kN).value, 1u);
    EXPECT_EQ(sys.ccEngine().compare(0, kA, kB, kN).value, 1u);
}

TEST_F(EngineTest, SearchFindsPlantedKey)
{
    auto scalar = sys.scalar().search(0, kA, kKey, kN);
    auto simd = sys.simd32().search(0, kA, kKey, kN);
    auto cc = sys.ccEngine().search(0, kA, kKey, kN);
    EXPECT_GE(scalar.value, 1u);
    EXPECT_EQ(scalar.value, simd.value);
    EXPECT_EQ(scalar.value, cc.value);
}

TEST_F(EngineTest, LogicalOrFunctional)
{
    sys.simd32().logicalOr(0, kA, kB, kD, kN);
    auto out = sys.dump(kD, kN);
    for (std::size_t i = 0; i < kN; ++i)
        ASSERT_EQ(out[i], da[i] | db[i]);

    sys.ccEngine().logicalOr(0, kA, kB, kD + 0x10000, kN);
    out = sys.dump(kD + 0x10000, kN);
    for (std::size_t i = 0; i < kN; ++i)
        ASSERT_EQ(out[i], da[i] | db[i]);
}

TEST_F(EngineTest, LogicalAndFunctional)
{
    sys.simd32().logicalAnd(0, kA, kB, kD, kN);
    auto out = sys.dump(kD, kN);
    for (std::size_t i = 0; i < kN; ++i)
        ASSERT_EQ(out[i], da[i] & db[i]);
}

TEST_F(EngineTest, CcBuzZeroes)
{
    sys.ccEngine().buz(0, kA, kN);
    EXPECT_EQ(sys.dump(kA, kN), std::vector<std::uint8_t>(kN, 0));
}

TEST_F(EngineTest, SimdBeatsScalar)
{
    warmL3();
    auto scalar = sys.scalar().copy(0, kA, kD, kN);
    sys.resetMetrics();
    auto simd = sys.simd32().copy(0, kA, kD, kN);
    EXPECT_LT(simd.cycles, scalar.cycles);
    EXPECT_LT(simd.instructions, scalar.instructions);
}

TEST_F(EngineTest, CcBeatsSimdWithOperandsInL3)
{
    // The Figure 7a relation: CC_L3 far outruns Base_32 on every kernel.
    sys.cc().mutableParams().forceLevel = CacheLevel::L3;
    for (auto kernel : {BulkKernel::Copy, BulkKernel::Compare,
                        BulkKernel::Search, BulkKernel::LogicalOr}) {
        warmL3();
        Addr b = kernel == BulkKernel::Search ? kKey : kB;
        auto base = sys.simd32().run(kernel, 0, kA, b, kD, kN);
        warmL3();
        auto cc = sys.ccEngine().run(kernel, 0, kA, b, kD, kN);
        EXPECT_GE(static_cast<double>(base.cycles) /
                      static_cast<double>(cc.cycles),
                  4.0)
            << toString(kernel);
    }
}

TEST_F(EngineTest, CcDynamicEnergyFarBelowBaseline)
{
    // The Figure 7b relation: ~9x average dynamic-energy saving.
    sys.cc().mutableParams().forceLevel = CacheLevel::L3;
    warmL3();
    sys.simd32().copy(0, kA, kD, kN);
    double base = sys.energy().dynamic().dynamicTotal();
    warmL3();
    sys.ccEngine().copy(0, kA, kD, kN);
    double cc = sys.energy().dynamic().dynamicTotal();
    EXPECT_GE(base / cc, 5.0);
}

TEST_F(EngineTest, KernelResultThroughputMetric)
{
    KernelResult r;
    r.cycles = 2660;  // 1 us at 2.66 GHz
    r.blockOps = 64;
    EXPECT_NEAR(r.blockOpsPerSecond(), 64e6, 1e3);
}

TEST(SystemTest, WarmPlacesDataAtLevel)
{
    System sys;
    std::vector<std::uint8_t> data(1024, 0xab);
    sys.load(0x40000, data.data(), data.size());
    sys.warm(CacheLevel::L3, 0, 0x40000, 1024);
    unsigned slice = sys.hierarchy().sliceFor(0, 0x40000);
    EXPECT_TRUE(sys.hierarchy().l3Slice(slice).contains(0x40000));
    EXPECT_FALSE(sys.hierarchy().l1(0).contains(0x40000));

    sys.warm(CacheLevel::L1, 0, 0x40000, 1024);
    EXPECT_TRUE(sys.hierarchy().l1(0).contains(0x40000));
}

TEST(SystemTest, ClocksAndTotals)
{
    System sys;
    sys.advance(0, 1000);
    sys.advance(1, 2500);
    EXPECT_EQ(sys.coreCycles(0), 1000u);
    EXPECT_EQ(sys.elapsed(), 2500u);
    auto totals = sys.totals();
    EXPECT_GT(totals.coreStatic, 0.0);
    EXPECT_GT(totals.uncoreStatic, 0.0);
    sys.resetMetrics();
    EXPECT_EQ(sys.elapsed(), 0u);
}

TEST(SystemTest, DumpRoundTrip)
{
    System sys;
    std::vector<std::uint8_t> data(100);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 3);
    sys.load(0x51234, data.data(), data.size());
    EXPECT_EQ(sys.dump(0x51234, 100), data);
}

} // namespace
} // namespace ccache::sim
