/**
 * @file
 * Database query example: bitmap-index range query evaluated with
 * in-place cc_or operations — the paper's DB-BitMap workload in ~50
 * lines of application code.
 *
 * Run: ./build/examples/example_database_query
 */

#include <cstdio>

#include "sim/system.hh"
#include "workload/bitmap_gen.hh"

using namespace ccache;

int
main()
{
    sim::System sys;

    // A small synthetic bitmap index: 64K rows, 16 value bins.
    workload::BitmapGenParams params;
    params.rows = 1 << 16;
    params.bins = 16;
    workload::BitmapIndex index(params);

    // Bins at page-aligned addresses: operand locality is automatic.
    const Addr bins = 0x100000, result = 0x400000;
    std::size_t bin_bytes = index.binBytes();
    std::size_t stride = (bin_bytes + kPageSize - 1) / kPageSize *
        kPageSize;
    for (std::size_t b = 0; b < index.bins(); ++b) {
        auto bytes = index.bin(b).toBytes();
        bytes.resize(bin_bytes, 0);
        sys.load(bins + b * stride, bytes.data(), bytes.size());
    }

    // Query: SELECT rows WHERE value IN bins [3, 7] -- an OR reduction.
    std::printf("range query over bins 3..7 (%zu KB per bin)\n",
                bin_bytes / 1024);

    auto copy = sys.ccEngine().copy(0, bins + 3 * stride, result,
                                    bin_bytes);
    Cycles cycles = copy.cycles;
    for (std::size_t b = 4; b <= 7; ++b) {
        auto r = sys.ccEngine().logicalOr(0, result, bins + b * stride,
                                          result, bin_bytes);
        cycles += r.cycles;
    }

    // Check against the host-side reference evaluation.
    auto expect = index.rangeQueryReference(3, 7);
    auto got_bytes = sys.dump(result, bin_bytes);
    BitVector got = BitVector::fromBytes(got_bytes.data(),
                                         got_bytes.size());
    auto eb = expect.toBytes();
    eb.resize(bin_bytes, 0);
    bool ok = got == BitVector::fromBytes(eb.data(), eb.size());

    std::printf("  matched rows : %zu of %zu\n", got.popcount(),
                index.rows());
    std::printf("  cycles       : %llu\n",
                static_cast<unsigned long long>(cycles));
    std::printf("  in-place ops : %llu\n",
                static_cast<unsigned long long>(
                    sys.stats().value("cc.in_place_ops")));
    std::printf("  result       : %s\n", ok ? "verified" : "WRONG");
    return ok ? 0 : 1;
}
