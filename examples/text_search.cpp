/**
 * @file
 * Text search example: use cc_search as a CAM to find a 64-byte record
 * in a large in-cache table — the access pattern behind the paper's
 * WordCount dictionary and StringMatch key scans.
 *
 * Run: ./build/examples/example_text_search
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/system.hh"

using namespace ccache;

namespace {

/** Pad a string into one 64-byte CAM record. */
Block
record(const std::string &text)
{
    Block b{};
    std::memcpy(b.data(), text.data(),
                std::min(text.size(), kBlockSize - 1));
    return b;
}

} // namespace

int
main()
{
    sim::System sys;

    // A table of 64 records (4 KB), e.g. a dictionary shard.
    const char *animals[] = {"capuchin", "heron", "wolf", "gibbon",
                             "lynx", "osprey", "tapir", "vole"};
    const Addr table = 0x40000;
    std::vector<std::string> rows;
    for (int i = 0; i < 64; ++i) {
        rows.push_back(std::string(animals[i % 8]) + "-" +
                       std::to_string(i));
        Block r = record(rows.back());
        sys.load(table + i * kBlockSize, r.data(), kBlockSize);
    }

    // The key we search for (same page offset as any block: trivially
    // operand-local, and replicated by the controller's key table).
    const Addr key_addr = 0x50000;
    Block key = record("tapir-38");
    sys.load(key_addr, key.data(), kBlockSize);

    // Issue the searches: 512 bytes (8 records) per cc_search, streamed.
    std::vector<cc::CcInstruction> searches;
    for (Addr off = 0; off < 64 * kBlockSize; off += cc::kMaxCmpBytes)
        searches.push_back(cc::CcInstruction::search(
            table + off, key_addr, cc::kMaxCmpBytes));

    Cycles latency = 0;
    auto results = sys.cc().executeStream(0, searches, &latency);

    // Decode the word-granular masks: a record matches when all eight
    // of its word-equality bits are set.
    int found = -1;
    for (std::size_t si = 0; si < results.size(); ++si) {
        for (std::size_t blk = 0; blk < 8; ++blk) {
            if (((results[si].result >> (blk * 8)) & 0xff) == 0xff)
                found = static_cast<int>(si * 8 + blk);
        }
    }

    std::printf("searched %zu records with %zu cc_search instructions in "
                "%llu cycles\n",
                rows.size(), searches.size(),
                static_cast<unsigned long long>(latency));
    if (found >= 0)
        std::printf("key found at record %d: '%s'\n", found,
                    rows[found].c_str());
    else
        std::printf("key not found\n");

    std::printf("key replications recorded: %llu (once per block "
                "partition)\n",
                static_cast<unsigned long long>(
                    sys.stats().value("cc.key_replications")));
    return found == 38 ? 0 : 1;
}
