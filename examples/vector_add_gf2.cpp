/**
 * @file
 * GF(2) vector accumulation with the locality-aware allocator: shows how
 * an application obtains operand-local buffers without knowing anything
 * about the cache geometry, then streams cc_xor reductions over them.
 *
 * Run: ./build/examples/example_vector_add_gf2
 */

#include <cstdio>
#include <vector>

#include "geometry/locality_allocator.hh"
#include "sim/system.hh"

using namespace ccache;

int
main()
{
    sim::System sys;

    // All operands of the reduction are allocated in one locality group:
    // the allocator guarantees matching page offsets, which guarantees
    // in-place operand locality at every cache level (Table III).
    geometry::LocalityAllocator alloc(0x1000000, 64 << 20);
    const geometry::GroupId group = 1;

    const std::size_t n = 8192;  // 8 KB vectors
    const int vectors = 6;
    std::vector<Addr> srcs;
    for (int v = 0; v < vectors; ++v) {
        Addr a = alloc.allocate(n, group);
        std::vector<std::uint8_t> data(n);
        for (std::size_t i = 0; i < n; ++i)
            data[i] = static_cast<std::uint8_t>((v + 1) * (i + 3));
        sys.load(a, data.data(), n);
        srcs.push_back(a);
        // Unrelated allocations interleave freely.
        alloc.allocate(100 + 64 * v);
    }
    Addr acc = alloc.allocate(n, group);

    // acc = srcs[0]; acc ^= srcs[1..]: one copy plus a stream of xors.
    auto copy = sys.ccEngine().copy(0, srcs[0], acc, n);
    Cycles cycles = copy.cycles;
    std::size_t near_place = 0;
    for (int v = 1; v < vectors; ++v) {
        auto r = sys.cc().execute(
            0, cc::CcInstruction::logicalXor(acc, srcs[v], acc, n));
        cycles += r.latency;
        near_place += r.nearPlaceOps;
    }

    // Verify against a host-side reduction.
    std::vector<std::uint8_t> expect(n, 0);
    for (int v = 0; v < vectors; ++v)
        for (std::size_t i = 0; i < n; ++i)
            expect[i] ^= static_cast<std::uint8_t>((v + 1) * (i + 3));
    bool ok = sys.dump(acc, n) == expect;

    std::printf("GF(2) accumulation of %d x %zu KB vectors\n", vectors,
                n / 1024);
    std::printf("  allocator padding : %zu bytes (cost of locality)\n",
                alloc.padding());
    std::printf("  cycles            : %llu\n",
                static_cast<unsigned long long>(cycles));
    std::printf("  near-place ops    : %zu (0 = perfect locality)\n",
                near_place);
    std::printf("  result            : %s\n", ok ? "verified" : "WRONG");
    return ok && near_place == 0 ? 0 : 1;
}
