/**
 * @file
 * Quickstart: build the default Compute Cache system, run one in-place
 * vector operation, and inspect latency / energy / placement.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/example_quickstart
 */

#include <cstdio>
#include <vector>

#include "sim/system.hh"

using namespace ccache;

int
main()
{
    // 1. Assemble the Table IV machine: 8 cores, 32 KB L1 / 256 KB L2 /
    //    8 x 2 MB L3 slices on a ring, MESI directory coherence, and a
    //    Compute Cache controller at every level.
    sim::System sys;

    // 2. Put two page-aligned 4 KB vectors into simulated memory.
    //    Page alignment (same page offset) is the ONLY placement rule
    //    software must follow for in-place operand locality.
    const Addr a = 0x10000, b = 0x20000, dst = 0x30000;
    std::vector<std::uint8_t> va(4096), vb(4096);
    for (std::size_t i = 0; i < va.size(); ++i) {
        va[i] = static_cast<std::uint8_t>(i);
        vb[i] = static_cast<std::uint8_t>(0xf0 ^ i);
    }
    sys.load(a, va.data(), va.size());
    sys.load(b, vb.data(), vb.size());

    // 3. Issue one cc_xor over the whole 4 KB (Table II ISA).
    auto result = sys.cc().execute(
        0, cc::CcInstruction::logicalXor(a, b, dst, 4096));

    std::printf("cc_xor over 4 KB:\n");
    std::printf("  level           : %s\n", toString(result.level));
    std::printf("  block ops       : %zu (%zu in-place, %zu near-place)\n",
                result.blockOps, result.inPlaceOps, result.nearPlaceOps);
    std::printf("  latency         : %llu cycles (%llu fetch, %llu "
                "compute)\n",
                static_cast<unsigned long long>(result.latency),
                static_cast<unsigned long long>(result.fetchLatency),
                static_cast<unsigned long long>(result.computeLatency));

    // 4. The data really moved: read it back through the hierarchy.
    auto out = sys.dump(dst, 4096);
    bool ok = true;
    for (std::size_t i = 0; i < out.size(); ++i)
        ok &= out[i] == (va[i] ^ vb[i]);
    std::printf("  result          : %s\n", ok ? "correct" : "WRONG");

    // 5. Energy accounting comes for free.
    const auto &dyn = sys.energy().dynamic();
    std::printf("  dynamic energy  : %.1f nJ (core %.1f, cache %.1f, "
                "noc %.1f)\n",
                dyn.dynamicTotal() / 1e3, dyn.core / 1e3,
                (dyn.cacheAccess() + dyn.cacheIc()) / 1e3, dyn.noc / 1e3);

    // 6. Compare with the SIMD baseline doing the same work.
    sys.resetMetrics();
    auto base = sys.simd32().logicalOr(0, a, b, dst, 4096);
    std::printf("\nBase_32 logical op over the same 4 KB: %llu cycles, "
                "%.1f nJ dynamic\n",
                static_cast<unsigned long long>(base.cycles),
                sys.energy().dynamic().dynamicTotal() / 1e3);
    std::printf("Compute Cache advantage: %.1fx faster\n",
                static_cast<double>(base.cycles) /
                    static_cast<double>(result.latency));
    return ok ? 0 : 1;
}
