/**
 * @file
 * Trace player: replay a memory + Compute Cache trace on the simulated
 * machine and print a gem5-style report.
 *
 * Usage:
 *   ./build/examples/example_trace_player [trace-file]
 *
 * Without an argument, a built-in demo trace runs: two cores stream
 * reads/writes while issuing CC copies and a cc_cmp whose mask lands in
 * the report checksum.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "sim/trace.hh"

using namespace ccache;
using namespace ccache::sim;

namespace {

const char *kDemoTrace = R"(# demo trace: two cores, mixed scalar + CC
W 0 0x10000
W 0 0x10040
R 1 0x20000
CC 0 cc_copy 0x10000 0x30000 4096
CC 1 cc_buz 0x40000 2048
R 0 0x30000
CC 0 cc_cmp 0x10000 0x30000 512
CC 1 cc_xor 0x20000 0x40000 0x50000 2048
W 1 0x50040
)";

} // namespace

int
main(int argc, char **argv)
{
    ParsedTrace trace;
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        trace = parseTrace(in);
    } else {
        std::printf("(no trace given; running the built-in demo)\n\n%s\n",
                    kDemoTrace);
        trace = parseTrace(std::string(kDemoTrace));
    }

    for (const auto &err : trace.errors) {
        std::fprintf(stderr, "line %zu: %s\n    %s\n", err.lineNumber,
                     err.message.c_str(), err.line.c_str());
    }
    if (trace.records.empty()) {
        std::fprintf(stderr, "nothing to replay\n");
        return 1;
    }

    System sys;
    auto result = replayTrace(sys, trace);
    std::printf("%s", formatReport(sys, result).c_str());
    return trace.ok() ? 0 : 2;
}
