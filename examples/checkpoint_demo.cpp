/**
 * @file
 * Checkpointing example: copy-on-write page checkpointing with cc_copy,
 * showing why page-aligned copies get perfect operand locality and how
 * the overhead compares across engines (the paper's Figure 10 story).
 *
 * Run: ./build/examples/example_checkpoint_demo
 */

#include <cstdio>

#include "apps/checkpoint.hh"

using namespace ccache;
using namespace ccache::apps;

int
main()
{
    CheckpointConfig cfg;
    cfg.intervals = 12;

    std::printf("copy-on-write checkpointing, radix-sort-like workload, "
                "%zu intervals of %llu instructions\n\n",
                cfg.intervals,
                static_cast<unsigned long long>(
                    cfg.intervalInstructions));

    std::printf("%-9s %14s %16s %12s %10s\n", "engine", "app cycles",
                "chkpt cycles", "pages", "overhead");
    for (Engine engine : {Engine::Base, Engine::Base32, Engine::Cc}) {
        sim::System sys;
        Checkpoint ck(workload::SplashApp::Radix, cfg);
        auto res = ck.run(sys, engine);
        std::printf("%-9s %14llu %16llu %12llu %9.1f%%\n",
                    toString(engine),
                    static_cast<unsigned long long>(res.baseCycles),
                    static_cast<unsigned long long>(res.checkpointCycles),
                    static_cast<unsigned long long>(res.pagesCopied),
                    res.overheadPct());
    }

    std::printf("\nEvery checkpoint copy is page-to-page, so source and "
                "shadow share\n");
    std::printf("their page offset: the Compute Cache runs every copy "
                "in-place in L3\n");
    std::printf("and the processor never touches the data (Section "
                "VI-E).\n");
    return 0;
}
