file(REMOVE_RECURSE
  "CMakeFiles/example_trace_player.dir/trace_player.cpp.o"
  "CMakeFiles/example_trace_player.dir/trace_player.cpp.o.d"
  "example_trace_player"
  "example_trace_player.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_trace_player.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
