# Empty dependencies file for example_trace_player.
# This may be replaced when dependencies are built.
