# Empty compiler generated dependencies file for example_database_query.
# This may be replaced when dependencies are built.
