file(REMOVE_RECURSE
  "CMakeFiles/example_database_query.dir/database_query.cpp.o"
  "CMakeFiles/example_database_query.dir/database_query.cpp.o.d"
  "example_database_query"
  "example_database_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_database_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
