file(REMOVE_RECURSE
  "CMakeFiles/example_vector_add_gf2.dir/vector_add_gf2.cpp.o"
  "CMakeFiles/example_vector_add_gf2.dir/vector_add_gf2.cpp.o.d"
  "example_vector_add_gf2"
  "example_vector_add_gf2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_vector_add_gf2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
