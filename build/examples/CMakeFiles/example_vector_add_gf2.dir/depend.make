# Empty dependencies file for example_vector_add_gf2.
# This may be replaced when dependencies are built.
