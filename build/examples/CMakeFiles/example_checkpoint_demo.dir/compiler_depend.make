# Empty compiler generated dependencies file for example_checkpoint_demo.
# This may be replaced when dependencies are built.
