file(REMOVE_RECURSE
  "CMakeFiles/example_checkpoint_demo.dir/checkpoint_demo.cpp.o"
  "CMakeFiles/example_checkpoint_demo.dir/checkpoint_demo.cpp.o.d"
  "example_checkpoint_demo"
  "example_checkpoint_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_checkpoint_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
