# Empty compiler generated dependencies file for ccache.
# This may be replaced when dependencies are built.
