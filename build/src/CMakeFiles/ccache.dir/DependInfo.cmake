
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bmm.cc" "src/CMakeFiles/ccache.dir/apps/bmm.cc.o" "gcc" "src/CMakeFiles/ccache.dir/apps/bmm.cc.o.d"
  "/root/repo/src/apps/checkpoint.cc" "src/CMakeFiles/ccache.dir/apps/checkpoint.cc.o" "gcc" "src/CMakeFiles/ccache.dir/apps/checkpoint.cc.o.d"
  "/root/repo/src/apps/dbbitmap.cc" "src/CMakeFiles/ccache.dir/apps/dbbitmap.cc.o" "gcc" "src/CMakeFiles/ccache.dir/apps/dbbitmap.cc.o.d"
  "/root/repo/src/apps/stringmatch.cc" "src/CMakeFiles/ccache.dir/apps/stringmatch.cc.o" "gcc" "src/CMakeFiles/ccache.dir/apps/stringmatch.cc.o.d"
  "/root/repo/src/apps/wordcount.cc" "src/CMakeFiles/ccache.dir/apps/wordcount.cc.o" "gcc" "src/CMakeFiles/ccache.dir/apps/wordcount.cc.o.d"
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/ccache.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/ccache.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/directory.cc" "src/CMakeFiles/ccache.dir/cache/directory.cc.o" "gcc" "src/CMakeFiles/ccache.dir/cache/directory.cc.o.d"
  "/root/repo/src/cache/hierarchy.cc" "src/CMakeFiles/ccache.dir/cache/hierarchy.cc.o" "gcc" "src/CMakeFiles/ccache.dir/cache/hierarchy.cc.o.d"
  "/root/repo/src/cache/tag_array.cc" "src/CMakeFiles/ccache.dir/cache/tag_array.cc.o" "gcc" "src/CMakeFiles/ccache.dir/cache/tag_array.cc.o.d"
  "/root/repo/src/cc/cc_controller.cc" "src/CMakeFiles/ccache.dir/cc/cc_controller.cc.o" "gcc" "src/CMakeFiles/ccache.dir/cc/cc_controller.cc.o.d"
  "/root/repo/src/cc/ecc.cc" "src/CMakeFiles/ccache.dir/cc/ecc.cc.o" "gcc" "src/CMakeFiles/ccache.dir/cc/ecc.cc.o.d"
  "/root/repo/src/cc/instruction_table.cc" "src/CMakeFiles/ccache.dir/cc/instruction_table.cc.o" "gcc" "src/CMakeFiles/ccache.dir/cc/instruction_table.cc.o.d"
  "/root/repo/src/cc/isa.cc" "src/CMakeFiles/ccache.dir/cc/isa.cc.o" "gcc" "src/CMakeFiles/ccache.dir/cc/isa.cc.o.d"
  "/root/repo/src/cc/key_table.cc" "src/CMakeFiles/ccache.dir/cc/key_table.cc.o" "gcc" "src/CMakeFiles/ccache.dir/cc/key_table.cc.o.d"
  "/root/repo/src/cc/near_place_unit.cc" "src/CMakeFiles/ccache.dir/cc/near_place_unit.cc.o" "gcc" "src/CMakeFiles/ccache.dir/cc/near_place_unit.cc.o.d"
  "/root/repo/src/cc/operation_table.cc" "src/CMakeFiles/ccache.dir/cc/operation_table.cc.o" "gcc" "src/CMakeFiles/ccache.dir/cc/operation_table.cc.o.d"
  "/root/repo/src/cc/reuse_predictor.cc" "src/CMakeFiles/ccache.dir/cc/reuse_predictor.cc.o" "gcc" "src/CMakeFiles/ccache.dir/cc/reuse_predictor.cc.o.d"
  "/root/repo/src/cc/vector_lsq.cc" "src/CMakeFiles/ccache.dir/cc/vector_lsq.cc.o" "gcc" "src/CMakeFiles/ccache.dir/cc/vector_lsq.cc.o.d"
  "/root/repo/src/common/bitvector.cc" "src/CMakeFiles/ccache.dir/common/bitvector.cc.o" "gcc" "src/CMakeFiles/ccache.dir/common/bitvector.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/ccache.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/ccache.dir/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/ccache.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/ccache.dir/common/stats.cc.o.d"
  "/root/repo/src/energy/energy_model.cc" "src/CMakeFiles/ccache.dir/energy/energy_model.cc.o" "gcc" "src/CMakeFiles/ccache.dir/energy/energy_model.cc.o.d"
  "/root/repo/src/energy/energy_params.cc" "src/CMakeFiles/ccache.dir/energy/energy_params.cc.o" "gcc" "src/CMakeFiles/ccache.dir/energy/energy_params.cc.o.d"
  "/root/repo/src/geometry/cache_geometry.cc" "src/CMakeFiles/ccache.dir/geometry/cache_geometry.cc.o" "gcc" "src/CMakeFiles/ccache.dir/geometry/cache_geometry.cc.o.d"
  "/root/repo/src/geometry/locality_allocator.cc" "src/CMakeFiles/ccache.dir/geometry/locality_allocator.cc.o" "gcc" "src/CMakeFiles/ccache.dir/geometry/locality_allocator.cc.o.d"
  "/root/repo/src/geometry/operand_locality.cc" "src/CMakeFiles/ccache.dir/geometry/operand_locality.cc.o" "gcc" "src/CMakeFiles/ccache.dir/geometry/operand_locality.cc.o.d"
  "/root/repo/src/mem/memory.cc" "src/CMakeFiles/ccache.dir/mem/memory.cc.o" "gcc" "src/CMakeFiles/ccache.dir/mem/memory.cc.o.d"
  "/root/repo/src/noc/ring.cc" "src/CMakeFiles/ccache.dir/noc/ring.cc.o" "gcc" "src/CMakeFiles/ccache.dir/noc/ring.cc.o.d"
  "/root/repo/src/sim/bulk_ops.cc" "src/CMakeFiles/ccache.dir/sim/bulk_ops.cc.o" "gcc" "src/CMakeFiles/ccache.dir/sim/bulk_ops.cc.o.d"
  "/root/repo/src/sim/core_model.cc" "src/CMakeFiles/ccache.dir/sim/core_model.cc.o" "gcc" "src/CMakeFiles/ccache.dir/sim/core_model.cc.o.d"
  "/root/repo/src/sim/engines.cc" "src/CMakeFiles/ccache.dir/sim/engines.cc.o" "gcc" "src/CMakeFiles/ccache.dir/sim/engines.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/ccache.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/ccache.dir/sim/system.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/ccache.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/ccache.dir/sim/trace.cc.o.d"
  "/root/repo/src/sram/bitcell_array.cc" "src/CMakeFiles/ccache.dir/sram/bitcell_array.cc.o" "gcc" "src/CMakeFiles/ccache.dir/sram/bitcell_array.cc.o.d"
  "/root/repo/src/sram/sense_amp.cc" "src/CMakeFiles/ccache.dir/sram/sense_amp.cc.o" "gcc" "src/CMakeFiles/ccache.dir/sram/sense_amp.cc.o.d"
  "/root/repo/src/sram/subarray.cc" "src/CMakeFiles/ccache.dir/sram/subarray.cc.o" "gcc" "src/CMakeFiles/ccache.dir/sram/subarray.cc.o.d"
  "/root/repo/src/sram/subarray_params.cc" "src/CMakeFiles/ccache.dir/sram/subarray_params.cc.o" "gcc" "src/CMakeFiles/ccache.dir/sram/subarray_params.cc.o.d"
  "/root/repo/src/sram/xor_reduction_tree.cc" "src/CMakeFiles/ccache.dir/sram/xor_reduction_tree.cc.o" "gcc" "src/CMakeFiles/ccache.dir/sram/xor_reduction_tree.cc.o.d"
  "/root/repo/src/workload/bitmap_gen.cc" "src/CMakeFiles/ccache.dir/workload/bitmap_gen.cc.o" "gcc" "src/CMakeFiles/ccache.dir/workload/bitmap_gen.cc.o.d"
  "/root/repo/src/workload/splash_trace.cc" "src/CMakeFiles/ccache.dir/workload/splash_trace.cc.o" "gcc" "src/CMakeFiles/ccache.dir/workload/splash_trace.cc.o.d"
  "/root/repo/src/workload/text_gen.cc" "src/CMakeFiles/ccache.dir/workload/text_gen.cc.o" "gcc" "src/CMakeFiles/ccache.dir/workload/text_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
