file(REMOVE_RECURSE
  "libccache.a"
)
