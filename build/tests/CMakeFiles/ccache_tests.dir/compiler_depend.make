# Empty compiler generated dependencies file for ccache_tests.
# This may be replaced when dependencies are built.
