
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/test_apps.cc" "tests/CMakeFiles/ccache_tests.dir/apps/test_apps.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/apps/test_apps.cc.o.d"
  "/root/repo/tests/cache/test_cache.cc" "tests/CMakeFiles/ccache_tests.dir/cache/test_cache.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/cache/test_cache.cc.o.d"
  "/root/repo/tests/cache/test_directory.cc" "tests/CMakeFiles/ccache_tests.dir/cache/test_directory.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/cache/test_directory.cc.o.d"
  "/root/repo/tests/cache/test_hierarchy.cc" "tests/CMakeFiles/ccache_tests.dir/cache/test_hierarchy.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/cache/test_hierarchy.cc.o.d"
  "/root/repo/tests/cache/test_hierarchy_edges.cc" "tests/CMakeFiles/ccache_tests.dir/cache/test_hierarchy_edges.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/cache/test_hierarchy_edges.cc.o.d"
  "/root/repo/tests/cc/test_controller.cc" "tests/CMakeFiles/ccache_tests.dir/cc/test_controller.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/cc/test_controller.cc.o.d"
  "/root/repo/tests/cc/test_controller_edges.cc" "tests/CMakeFiles/ccache_tests.dir/cc/test_controller_edges.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/cc/test_controller_edges.cc.o.d"
  "/root/repo/tests/cc/test_controller_sweeps.cc" "tests/CMakeFiles/ccache_tests.dir/cc/test_controller_sweeps.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/cc/test_controller_sweeps.cc.o.d"
  "/root/repo/tests/cc/test_ecc.cc" "tests/CMakeFiles/ccache_tests.dir/cc/test_ecc.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/cc/test_ecc.cc.o.d"
  "/root/repo/tests/cc/test_isa.cc" "tests/CMakeFiles/ccache_tests.dir/cc/test_isa.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/cc/test_isa.cc.o.d"
  "/root/repo/tests/cc/test_multicore.cc" "tests/CMakeFiles/ccache_tests.dir/cc/test_multicore.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/cc/test_multicore.cc.o.d"
  "/root/repo/tests/cc/test_near_place.cc" "tests/CMakeFiles/ccache_tests.dir/cc/test_near_place.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/cc/test_near_place.cc.o.d"
  "/root/repo/tests/cc/test_reuse_predictor.cc" "tests/CMakeFiles/ccache_tests.dir/cc/test_reuse_predictor.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/cc/test_reuse_predictor.cc.o.d"
  "/root/repo/tests/cc/test_tables.cc" "tests/CMakeFiles/ccache_tests.dir/cc/test_tables.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/cc/test_tables.cc.o.d"
  "/root/repo/tests/cc/test_vector_lsq.cc" "tests/CMakeFiles/ccache_tests.dir/cc/test_vector_lsq.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/cc/test_vector_lsq.cc.o.d"
  "/root/repo/tests/common/test_bit_util.cc" "tests/CMakeFiles/ccache_tests.dir/common/test_bit_util.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/common/test_bit_util.cc.o.d"
  "/root/repo/tests/common/test_bitvector.cc" "tests/CMakeFiles/ccache_tests.dir/common/test_bitvector.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/common/test_bitvector.cc.o.d"
  "/root/repo/tests/energy/test_energy.cc" "tests/CMakeFiles/ccache_tests.dir/energy/test_energy.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/energy/test_energy.cc.o.d"
  "/root/repo/tests/geometry/test_geometry.cc" "tests/CMakeFiles/ccache_tests.dir/geometry/test_geometry.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/geometry/test_geometry.cc.o.d"
  "/root/repo/tests/geometry/test_geometry_variants.cc" "tests/CMakeFiles/ccache_tests.dir/geometry/test_geometry_variants.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/geometry/test_geometry_variants.cc.o.d"
  "/root/repo/tests/geometry/test_locality_allocator.cc" "tests/CMakeFiles/ccache_tests.dir/geometry/test_locality_allocator.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/geometry/test_locality_allocator.cc.o.d"
  "/root/repo/tests/integration/test_reproduction_shapes.cc" "tests/CMakeFiles/ccache_tests.dir/integration/test_reproduction_shapes.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/integration/test_reproduction_shapes.cc.o.d"
  "/root/repo/tests/mem/test_memory.cc" "tests/CMakeFiles/ccache_tests.dir/mem/test_memory.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/mem/test_memory.cc.o.d"
  "/root/repo/tests/noc/test_ring.cc" "tests/CMakeFiles/ccache_tests.dir/noc/test_ring.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/noc/test_ring.cc.o.d"
  "/root/repo/tests/sim/test_core_model.cc" "tests/CMakeFiles/ccache_tests.dir/sim/test_core_model.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/sim/test_core_model.cc.o.d"
  "/root/repo/tests/sim/test_engines.cc" "tests/CMakeFiles/ccache_tests.dir/sim/test_engines.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/sim/test_engines.cc.o.d"
  "/root/repo/tests/sim/test_trace.cc" "tests/CMakeFiles/ccache_tests.dir/sim/test_trace.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/sim/test_trace.cc.o.d"
  "/root/repo/tests/sram/test_sense_amp.cc" "tests/CMakeFiles/ccache_tests.dir/sram/test_sense_amp.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/sram/test_sense_amp.cc.o.d"
  "/root/repo/tests/sram/test_subarray.cc" "tests/CMakeFiles/ccache_tests.dir/sram/test_subarray.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/sram/test_subarray.cc.o.d"
  "/root/repo/tests/sram/test_subarray_sweep.cc" "tests/CMakeFiles/ccache_tests.dir/sram/test_subarray_sweep.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/sram/test_subarray_sweep.cc.o.d"
  "/root/repo/tests/workload/test_workloads.cc" "tests/CMakeFiles/ccache_tests.dir/workload/test_workloads.cc.o" "gcc" "tests/CMakeFiles/ccache_tests.dir/workload/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ccache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
