# Empty compiler generated dependencies file for table3_operand_locality.
# This may be replaced when dependencies are built.
