file(REMOVE_RECURSE
  "CMakeFiles/table3_operand_locality.dir/table3_operand_locality.cc.o"
  "CMakeFiles/table3_operand_locality.dir/table3_operand_locality.cc.o.d"
  "table3_operand_locality"
  "table3_operand_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_operand_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
