# Empty dependencies file for fig8_inplace_vs_nearplace.
# This may be replaced when dependencies are built.
