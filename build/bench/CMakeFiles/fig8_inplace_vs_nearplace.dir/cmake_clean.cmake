file(REMOVE_RECURSE
  "CMakeFiles/fig8_inplace_vs_nearplace.dir/fig8_inplace_vs_nearplace.cc.o"
  "CMakeFiles/fig8_inplace_vs_nearplace.dir/fig8_inplace_vs_nearplace.cc.o.d"
  "fig8_inplace_vs_nearplace"
  "fig8_inplace_vs_nearplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_inplace_vs_nearplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
