# Empty compiler generated dependencies file for ablation_tagdata.
# This may be replaced when dependencies are built.
