file(REMOVE_RECURSE
  "CMakeFiles/ablation_tagdata.dir/ablation_tagdata.cc.o"
  "CMakeFiles/ablation_tagdata.dir/ablation_tagdata.cc.o.d"
  "ablation_tagdata"
  "ablation_tagdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tagdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
