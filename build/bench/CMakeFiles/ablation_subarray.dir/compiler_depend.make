# Empty compiler generated dependencies file for ablation_subarray.
# This may be replaced when dependencies are built.
