file(REMOVE_RECURSE
  "CMakeFiles/ablation_subarray.dir/ablation_subarray.cc.o"
  "CMakeFiles/ablation_subarray.dir/ablation_subarray.cc.o.d"
  "ablation_subarray"
  "ablation_subarray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_subarray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
