file(REMOVE_RECURSE
  "CMakeFiles/table5_cc_op_energy.dir/table5_cc_op_energy.cc.o"
  "CMakeFiles/table5_cc_op_energy.dir/table5_cc_op_energy.cc.o.d"
  "table5_cc_op_energy"
  "table5_cc_op_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_cc_op_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
