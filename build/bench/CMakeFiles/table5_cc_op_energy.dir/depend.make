# Empty dependencies file for table5_cc_op_energy.
# This may be replaced when dependencies are built.
