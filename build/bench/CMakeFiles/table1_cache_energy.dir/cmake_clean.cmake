file(REMOVE_RECURSE
  "CMakeFiles/table1_cache_energy.dir/table1_cache_energy.cc.o"
  "CMakeFiles/table1_cache_energy.dir/table1_cache_energy.cc.o.d"
  "table1_cache_energy"
  "table1_cache_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cache_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
