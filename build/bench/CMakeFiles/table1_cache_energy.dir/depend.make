# Empty dependencies file for table1_cache_energy.
# This may be replaced when dependencies are built.
