# Empty dependencies file for fig10_checkpoint_overhead.
# This may be replaced when dependencies are built.
