file(REMOVE_RECURSE
  "CMakeFiles/table4_simulator_params.dir/table4_simulator_params.cc.o"
  "CMakeFiles/table4_simulator_params.dir/table4_simulator_params.cc.o.d"
  "table4_simulator_params"
  "table4_simulator_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_simulator_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
