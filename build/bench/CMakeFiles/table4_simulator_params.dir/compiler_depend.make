# Empty compiler generated dependencies file for table4_simulator_params.
# This may be replaced when dependencies are built.
