# Empty compiler generated dependencies file for ablation_power_cap.
# This may be replaced when dependencies are built.
