file(REMOVE_RECURSE
  "CMakeFiles/ablation_power_cap.dir/ablation_power_cap.cc.o"
  "CMakeFiles/ablation_power_cap.dir/ablation_power_cap.cc.o.d"
  "ablation_power_cap"
  "ablation_power_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_power_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
