# Empty compiler generated dependencies file for fig8_cache_levels.
# This may be replaced when dependencies are built.
