file(REMOVE_RECURSE
  "CMakeFiles/fig8_cache_levels.dir/fig8_cache_levels.cc.o"
  "CMakeFiles/fig8_cache_levels.dir/fig8_cache_levels.cc.o.d"
  "fig8_cache_levels"
  "fig8_cache_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_cache_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
