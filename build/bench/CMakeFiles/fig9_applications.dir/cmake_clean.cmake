file(REMOVE_RECURSE
  "CMakeFiles/fig9_applications.dir/fig9_applications.cc.o"
  "CMakeFiles/fig9_applications.dir/fig9_applications.cc.o.d"
  "fig9_applications"
  "fig9_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
