# Empty dependencies file for fig9_applications.
# This may be replaced when dependencies are built.
