file(REMOVE_RECURSE
  "CMakeFiles/fig7_microbench.dir/fig7_microbench.cc.o"
  "CMakeFiles/fig7_microbench.dir/fig7_microbench.cc.o.d"
  "fig7_microbench"
  "fig7_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
