# Empty dependencies file for fig7_microbench.
# This may be replaced when dependencies are built.
