file(REMOVE_RECURSE
  "CMakeFiles/fig3_energy_proportions.dir/fig3_energy_proportions.cc.o"
  "CMakeFiles/fig3_energy_proportions.dir/fig3_energy_proportions.cc.o.d"
  "fig3_energy_proportions"
  "fig3_energy_proportions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_energy_proportions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
