# Empty dependencies file for fig3_energy_proportions.
# This may be replaced when dependencies are built.
