file(REMOVE_RECURSE
  "CMakeFiles/ablation_multicore.dir/ablation_multicore.cc.o"
  "CMakeFiles/ablation_multicore.dir/ablation_multicore.cc.o.d"
  "ablation_multicore"
  "ablation_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
