/**
 * @file
 * Reproduces Figure 8(b): dynamic-energy savings of Compute Caches when
 * the operands live at different cache levels. Each bar is the
 * difference between the Base_32 run and the CC run with operands staged
 * at L1 / L2 / L3 respectively.
 */

#include "bench_util.hh"
#include "sim/system.hh"

using namespace ccache;
using namespace ccache::sim;

namespace {

constexpr std::size_t kN = 4096;
constexpr Addr kA = 0x100000;
constexpr Addr kB = 0x110000;
constexpr Addr kD = 0x120000;
constexpr Addr kKey = 0x130000;

double
runOnce(BulkKernel kernel, CacheLevel level, bool use_cc)
{
    System sys;
    std::vector<std::uint8_t> da(kN), db(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        da[i] = static_cast<std::uint8_t>(i * 5 + 3);
        db[i] = static_cast<std::uint8_t>(i * 9 + 11);
    }
    std::vector<std::uint8_t> key(da.begin(), da.begin() + 64);
    sys.load(kA, da.data(), kN);
    sys.load(kB, db.data(), kN);
    sys.load(kKey, key.data(), key.size());
    for (Addr a : {kA, kB, kD})
        sys.warm(level, 0, a, kN);
    sys.warm(level, 0, kKey, 64);
    sys.resetMetrics();

    Addr b = kernel == BulkKernel::Search ? kKey : kB;
    if (use_cc) {
        sys.cc().mutableParams().forceLevel = level;
        sys.ccEngine().run(kernel, 0, kA, b, kD, kN);
    } else {
        sys.simd32().run(kernel, 0, kA, b, kD, kN);
    }
    return sys.energy().dynamic().dynamicTotal();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Figure 8b: CC savings with operands at L1/L2/L3");
    bench::header("Figure 8b: dynamic-energy savings per cache level, "
                  "4 KB operands");

    bench::ResultsWriter results("fig8_cache_levels");
    results.config("operand_bytes", kN);

    std::printf("%-9s %12s %14s %14s %10s\n", "kernel", "level",
                "Base_32 (nJ)", "CC (nJ)", "saving");
    bench::rule();

    const BulkKernel kernels[] = {BulkKernel::Copy, BulkKernel::Compare,
                                  BulkKernel::Search,
                                  BulkKernel::LogicalOr};
    const CacheLevel levels[] = {CacheLevel::L3, CacheLevel::L2,
                                 CacheLevel::L1};

    // One sweep point per (kernel, level) pair, Base_32 + CC run inside.
    struct Row
    {
        double base, cc;
    };
    std::vector<Row> rows(12);
    bench::SweepRunner sweep(&results);
    for (std::size_t i = 0; i < 12; ++i) {
        BulkKernel k = kernels[i / 3];
        CacheLevel level = levels[i % 3];
        std::string key = std::string(toString(k)) + "." + toString(level);
        sweep.add(key, [&, i, k, level, key](bench::SweepContext &ctx) {
            rows[i] = {runOnce(k, level, false), runOnce(k, level, true)};
            ctx.metric(key + ".base32_dynamic_nj", rows[i].base / 1e3);
            ctx.metric(key + ".cc_dynamic_nj", rows[i].cc / 1e3);
            ctx.metric(key + ".saving_fraction",
                       1.0 - rows[i].cc / rows[i].base);
        });
    }
    sweep.run();

    for (std::size_t i = 0; i < 12; ++i)
        std::printf("%-9s %12s %14.0f %14.0f %9.0f%%\n",
                    toString(kernels[i / 3]), toString(levels[i % 3]),
                    rows[i].base / 1e3, rows[i].cc / 1e3,
                    100.0 * (1.0 - rows[i].cc / rows[i].base));

    bench::rule();
    bench::note("Paper: absolute savings are largest at L3, but CC at L1 "
                "and L2");
    bench::note("still saves (95% at L1, 34% at L2 relative to their "
                "Base_32).");
    return bench::finish(results, sweep);
}
