/**
 * @file
 * Reproduces Figure 11: total energy of checkpointing for six SPLASH-2
 * workloads: no checkpointing, scalar Base, Base_32 SIMD, and CC_L3,
 * split into core/uncore static/dynamic.
 */

#include "apps/checkpoint.hh"
#include "bench_util.hh"

using namespace ccache;
using namespace ccache::apps;

int
main()
{
    bench::header("Figure 11: checkpointing total energy (uJ)");

    CheckpointConfig cfg;
    cfg.intervals = 40;

    std::printf("%-11s %-9s %10s %12s %10s %12s %10s\n", "benchmark",
                "config", "core-dyn", "uncore-dyn", "core-st",
                "uncore-st", "total");
    bench::rule();

    bench::ResultsWriter results("fig11_checkpoint_energy");
    results.config("intervals", cfg.intervals);

    const char *labels[] = {"no_chkpt", "Base", "Base_32", "CC_L3"};
    const char *keys[] = {"no_chkpt", "base", "base32", "cc_l3"};

    for (auto app : workload::allSplashApps()) {
        for (int mode = 0; mode < 4; ++mode) {
            sim::System sys;
            Checkpoint ck(app, cfg);
            Engine engine = mode <= 1 ? Engine::Base
                : mode == 2 ? Engine::Base32
                            : Engine::Cc;
            auto res = ck.run(sys, engine, /*checkpointing=*/mode != 0);
            const auto &t = res.app.totals;
            std::printf("%-11s %-9s %10.1f %12.1f %10.1f %12.1f %10.1f\n",
                        mode == 0 ? workload::toString(app) : "",
                        labels[mode], t.coreDynamic / 1e6,
                        t.uncoreDynamic / 1e6, t.coreStatic / 1e6,
                        t.uncoreStatic / 1e6, t.total() / 1e6);
            results.metric(std::string(workload::toString(app)) + "." +
                               keys[mode] + ".total_uj",
                           t.total() / 1e6);
        }
    }
    results.write();

    bench::rule();
    bench::note("Paper: checkpointing energy overhead nearly disappears "
                "with CC;");
    bench::note("the CC_L3 bars sit just above no_chkpt while Base/Base_32"
                " add");
    bench::note("visible core-dynamic and uncore energy.");
    return 0;
}
