/**
 * @file
 * Reproduces Figure 11: total energy of checkpointing for six SPLASH-2
 * workloads: no checkpointing, scalar Base, Base_32 SIMD, and CC_L3,
 * split into core/uncore static/dynamic.
 */

#include "apps/checkpoint.hh"
#include "bench_util.hh"

using namespace ccache;
using namespace ccache::apps;

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Figure 11: checkpointing total energy");
    bench::header("Figure 11: checkpointing total energy (uJ)");

    CheckpointConfig cfg;
    cfg.intervals = 40;

    std::printf("%-11s %-9s %10s %12s %10s %12s %10s\n", "benchmark",
                "config", "core-dyn", "uncore-dyn", "core-st",
                "uncore-st", "total");
    bench::rule();

    bench::ResultsWriter results("fig11_checkpoint_energy");
    results.config("intervals", cfg.intervals);

    const char *labels[] = {"no_chkpt", "Base", "Base_32", "CC_L3"};
    const char *keys[] = {"no_chkpt", "base", "base32", "cc_l3"};

    // One sweep point per (workload, mode) pair.
    auto apps = workload::allSplashApps();
    std::vector<energy::EnergyTotals> totals(apps.size() * 4);
    bench::SweepRunner sweep(&results);
    for (std::size_t a = 0; a < apps.size(); ++a) {
        for (int mode = 0; mode < 4; ++mode) {
            auto app = apps[a];
            std::size_t slot = a * 4 + static_cast<std::size_t>(mode);
            std::string key = std::string(workload::toString(app)) + "." +
                keys[mode];
            sweep.add(key, [&, app, mode, slot,
                            key](bench::SweepContext &ctx) {
                sim::System sys;
                Checkpoint ck(app, cfg);
                Engine engine = mode <= 1 ? Engine::Base
                    : mode == 2 ? Engine::Base32
                                : Engine::Cc;
                auto res =
                    ck.run(sys, engine, /*checkpointing=*/mode != 0);
                totals[slot] = res.app.totals;
                ctx.metric(key + ".total_uj",
                           totals[slot].total() / 1e6);
            });
        }
    }
    sweep.run();

    for (std::size_t a = 0; a < apps.size(); ++a) {
        for (int mode = 0; mode < 4; ++mode) {
            const auto &t = totals[a * 4 + static_cast<std::size_t>(mode)];
            std::printf("%-11s %-9s %10.1f %12.1f %10.1f %12.1f %10.1f\n",
                        mode == 0 ? workload::toString(apps[a]) : "",
                        labels[mode], t.coreDynamic / 1e6,
                        t.uncoreDynamic / 1e6, t.coreStatic / 1e6,
                        t.uncoreStatic / 1e6, t.total() / 1e6);
        }
    }

    bench::rule();
    bench::note("Paper: checkpointing energy overhead nearly disappears "
                "with CC;");
    bench::note("the CC_L3 bars sit just above no_chkpt while Base/Base_32"
                " add");
    bench::note("visible core-dynamic and uncore energy.");
    return bench::finish(results, sweep);
}
