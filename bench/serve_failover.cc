/**
 * @file
 * Fault-tolerant serving sweep (DESIGN.md §12): a 4-shard fleet under
 * deterministic chaos — shard crash + recovery, margin-fail (slow) and
 * stuck-at (partial) storms — with golden verification on every commit.
 *
 * Gated claims (bench::finish ok flag):
 *
 *  1. Failover holds availability: with one shard killed and recovered
 *     mid-run, completion availability stays >= 0.99 (retries +
 *     ring reroute + hedging absorb the outage) — reported and gated
 *     per phase (pre-kill / outage / recovery, classified by offered
 *     arrival), not as one aggregate that could hide an outage hole.
 *  2. Correctness under chaos: golden mismatches == 0 in every
 *     scenario — a degraded fleet may be slow, never wrong.
 *  3. QoS-aware brownout: when a shard is dark, the high-QoS tenant
 *     sheds nothing (it reroutes) while the low-QoS tenant homed there
 *     takes all the sheds.
 *  4. Tail containment: the interactive tenant's p99.9 sojourn stays
 *     below the admission deadline in every scenario.
 *
 * Every scenario is an independent simulated-time run seeded from its
 * key, so the result file is byte-identical at any thread count (§8).
 */

#include <string>
#include <vector>

#include "bench_util.hh"
#include "serve/shard_router.hh"
#include "sim/system.hh"
#include "workload/traffic_gen.hh"

namespace {

using namespace ccache;

constexpr unsigned kShards = 4;
constexpr unsigned kTenants = 4;
constexpr std::size_t kRequests = 1600;
constexpr double kLoadRpkc = 2.0;
constexpr Cycles kDeadline = 60000;

struct Scenario
{
    std::string key;
    serve::FleetReport report;
    std::vector<unsigned> homeShard; ///< per-tenant home (ring order[0])
    std::vector<std::string> phaseNames; ///< labels for report.phases
};

workload::TrafficParams
makeTraffic(std::uint64_t seed)
{
    workload::TrafficParams traffic;
    traffic.totalRequests = kRequests;
    traffic.seed = seed;
    for (unsigned i = 0; i < kTenants; ++i) {
        workload::TenantTraffic t;
        t.name = "t" + std::to_string(i);
        if (i == 0) {
            t.requestsPerKilocycle = 0.25 * kLoadRpkc;
            t.minBytes = 256;
            t.maxBytes = 1024;
        } else {
            t.requestsPerKilocycle = 0.75 * kLoadRpkc / (kTenants - 1);
            t.minBytes = 1024;
            t.maxBytes = 8192;
            t.weightCmp = 0.5;
        }
        traffic.tenants.push_back(std::move(t));
    }
    return traffic;
}

serve::ServerParams
makeServe(const std::vector<unsigned> &weights)
{
    serve::ServerParams params;
    params.tenants.clear(); // drop the default singleton tenant
    for (unsigned i = 0; i < kTenants; ++i) {
        serve::TenantQos q;
        q.name = "t" + std::to_string(i);
        q.weight = weights[i];
        params.tenants.push_back(std::move(q));
    }
    return params;
}

serve::RouterParams
makeRouter(std::uint64_t seed)
{
    serve::RouterParams router;
    router.shards = kShards;
    router.admissionDeadline = kDeadline;
    router.shardTimeout = 20000;
    router.retry.seed = seed;
    router.hedgeAge = 2500;
    router.verifyGolden = true;
    router.patternSeed = seed;
    return router;
}

/** Run one scenario; @p chaosFor builds the schedule once the router
 *  (and thus every tenant's ring placement) is known. Scenarios with
 *  chaos report availability per phase (slot.phaseNames, split at
 *  @p phaseBounds) instead of one aggregate. */
template <typename ChaosFor>
void
runScenario(Scenario &slot, const std::vector<unsigned> &weights,
            std::uint64_t seed, const std::vector<Cycles> &phaseBounds,
            ChaosFor &&chaosFor)
{
    serve::RouterParams router = makeRouter(seed);
    router.phaseBoundaries = phaseBounds;
    serve::ShardRouter fleet(sim::SystemConfig{}, makeServe(weights),
                             router);
    for (unsigned i = 0; i < kTenants; ++i)
        slot.homeShard.push_back(fleet.failoverOrder(i)[0]);
    serve::ChaosSchedule chaos = chaosFor(slot.homeShard);
    slot.report = fleet.run(generateTraffic(makeTraffic(seed)), chaos);
}

serve::ChaosEvent
event(serve::ChaosKind kind, unsigned shard, Cycles start, Cycles duration,
      double magnitude = 4.0)
{
    serve::ChaosEvent ev;
    ev.kind = kind;
    ev.shard = shard;
    ev.start = start;
    ev.duration = duration;
    ev.magnitude = magnitude;
    return ev;
}

void
emitMetrics(bench::SweepContext &ctx, const Scenario &slot)
{
    const serve::FleetReport &r = slot.report;
    ctx.metric(slot.key + ".availability", r.availability);
    ctx.metric(slot.key + ".served", static_cast<double>(r.served));
    ctx.metric(slot.key + ".shed", static_cast<double>(r.shed));
    ctx.metric(slot.key + ".retries", static_cast<double>(r.retries));
    ctx.metric(slot.key + ".reroutes", static_cast<double>(r.reroutes));
    ctx.metric(slot.key + ".hedges",
               static_cast<double>(r.hedgesLaunched));
    ctx.metric(slot.key + ".hedge_wins",
               static_cast<double>(r.hedgeWins));
    ctx.metric(slot.key + ".breaker_trips",
               static_cast<double>(r.breakerTrips));
    ctx.metric(slot.key + ".golden_mismatch",
               static_cast<double>(r.goldenMismatch));
    ctx.metric(slot.key + ".hi.p999_sojourn_cycles",
               static_cast<double>(r.tenants[0].p999SojournCycles));
    for (std::size_t p = 0; p < slot.phaseNames.size(); ++p) {
        ctx.metric(slot.key + ".phase." + slot.phaseNames[p] +
                       ".availability",
                   r.phases[p].availability);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Sharded serving: availability through shard kill+recovery");
    bench::header("Fault-tolerant serving: 4-shard fleet under chaos");
    bench::note("all scenarios golden-verified; availability counts only "
                "bit-exact completions");

    bench::ResultsWriter results("serve_failover");
    bench::SweepRunner sweep(&results);

    Scenario baseline{"baseline", {}, {}, {}};
    sweep.add(baseline.key, [&baseline](bench::SweepContext &ctx) {
        runScenario(baseline, {4, 2, 2, 2}, ctx.seed(), {},
                    [](const std::vector<unsigned> &) {
                        return serve::ChaosSchedule{};
                    });
        emitMetrics(ctx, baseline);
    });

    // One shard killed at 20k and recovered at 140k — the interactive
    // tenant's own home shard, the worst case for its tail.
    Scenario crash{"crash", {}, {}, {"pre_kill", "outage", "recovery"}};
    sweep.add(crash.key, [&crash](bench::SweepContext &ctx) {
        runScenario(crash, {4, 2, 2, 2}, ctx.seed(), {20000, 140000},
                    [](const std::vector<unsigned> &home) {
                        serve::ChaosSchedule chaos;
                        chaos.events.push_back(event(
                            serve::ChaosKind::Crash, home[0], 20000,
                            120000));
                        chaos.canonicalize();
                        return chaos;
                    });
        emitMetrics(ctx, crash);
    });

    // Margin-fail storm: every dual-row op re-executes often — the
    // shard stays correct but slow; hedging shields the hi tenant.
    Scenario slow{"slow", {}, {}, {"pre_storm", "storm", "post_storm"}};
    sweep.add(slow.key, [&slow](bench::SweepContext &ctx) {
        runScenario(slow, {4, 2, 2, 2}, ctx.seed(), {10000, 410000},
                    [](const std::vector<unsigned> &home) {
                        serve::ChaosSchedule chaos;
                        chaos.events.push_back(
                            event(serve::ChaosKind::Slow, home[0], 10000,
                                  400000, 20.0));
                        chaos.canonicalize();
                        return chaos;
                    });
        emitMetrics(ctx, slow);
    });

    // Stuck-at storm: sub-array bit damage the remapper absorbs.
    Scenario partial{"partial", {}, {},
                     {"pre_storm", "storm", "post_storm"}};
    sweep.add(partial.key, [&partial](bench::SweepContext &ctx) {
        runScenario(partial, {4, 2, 2, 2}, ctx.seed(), {10000, 410000},
                    [](const std::vector<unsigned> &home) {
                        serve::ChaosSchedule chaos;
                        chaos.events.push_back(
                            event(serve::ChaosKind::Partial, home[0],
                                  10000, 400000, 6.0));
                        chaos.canonicalize();
                        return chaos;
                    });
        emitMetrics(ctx, partial);
    });

    // Compound fault: crash one shard while another is in a storm.
    Scenario compound{"crash_slow", {}, {},
                      {"pre_kill", "outage", "recovery"}};
    sweep.add(compound.key, [&compound](bench::SweepContext &ctx) {
        runScenario(
            compound, {4, 2, 2, 2}, ctx.seed(), {20000, 140000},
            [](const std::vector<unsigned> &home) {
                serve::ChaosSchedule chaos;
                chaos.events.push_back(event(serve::ChaosKind::Crash,
                                             home[0], 20000, 120000));
                unsigned other = home[1] != home[0] ? home[1]
                                                    : (home[0] + 1) % kShards;
                chaos.events.push_back(event(serve::ChaosKind::Slow,
                                             other, 10000, 300000, 6.0));
                chaos.canonicalize();
                return chaos;
            });
        emitMetrics(ctx, compound);
    });

    // Brownout QoS split: t3 (weight 1) homed on the crashed shard by
    // construction — crash *t3's* home; t0 reroutes, t3 sheds.
    Scenario brownout{"brownout", {}, {},
                      {"pre_kill", "outage", "recovery"}};
    sweep.add(brownout.key, [&brownout](bench::SweepContext &ctx) {
        runScenario(brownout, {4, 2, 2, 1}, ctx.seed(), {20000, 180000},
                    [](const std::vector<unsigned> &home) {
                        serve::ChaosSchedule chaos;
                        chaos.events.push_back(event(
                            serve::ChaosKind::Crash, home[3], 20000,
                            160000));
                        chaos.canonicalize();
                        return chaos;
                    });
        emitMetrics(ctx, brownout);
    });

    sweep.run();

    bench::rule();
    std::printf("%-12s %12s %8s %8s %8s %8s %8s %10s %14s\n", "scenario",
                "avail", "served", "shed", "retries", "reroute", "hedges",
                "golden!=", "hi p99.9 (cy)");
    bench::rule();
    bool ok = true;
    const Scenario *all[] = {&baseline, &crash,    &slow,
                             &partial,  &compound, &brownout};
    for (const Scenario *s : all) {
        const serve::FleetReport &r = s->report;
        std::printf("%-12s %12.4f %8llu %8llu %8llu %8llu %8llu %10llu "
                    "%14llu\n",
                    s->key.c_str(), r.availability,
                    static_cast<unsigned long long>(r.served),
                    static_cast<unsigned long long>(r.shed),
                    static_cast<unsigned long long>(r.retries),
                    static_cast<unsigned long long>(r.reroutes),
                    static_cast<unsigned long long>(r.hedgesLaunched),
                    static_cast<unsigned long long>(r.goldenMismatch),
                    static_cast<unsigned long long>(
                        r.tenants[0].p999SojournCycles));

        // Claim 2: never wrong, in any scenario.
        if (r.goldenMismatch != 0) {
            std::fprintf(stderr, "FAIL: %llu golden mismatches in %s\n",
                         static_cast<unsigned long long>(r.goldenMismatch),
                         s->key.c_str());
            ok = false;
        }
        // Conservation: every offered request accounted exactly once.
        if (r.served + r.shed != r.offered) {
            std::fprintf(stderr, "FAIL: %s leaks requests "
                                 "(served+shed != offered)\n",
                         s->key.c_str());
            ok = false;
        }
        // Claim 4: interactive tail below the admission deadline.
        if (r.tenants[0].p999SojournCycles > kDeadline) {
            std::fprintf(stderr,
                         "FAIL: hi-QoS p99.9 sojourn %llu exceeds the "
                         "%llu-cycle deadline in %s\n",
                         static_cast<unsigned long long>(
                             r.tenants[0].p999SojournCycles),
                         static_cast<unsigned long long>(kDeadline),
                         s->key.c_str());
            ok = false;
        }
    }

    // Per-phase availability: the aggregate can hide an outage hole,
    // so report (and gate) each window separately.
    bench::rule();
    std::printf("%-12s %-10s %12s %8s %8s %8s\n", "scenario", "phase",
                "avail", "offered", "served", "shed");
    for (const Scenario *s : all) {
        for (std::size_t p = 0; p < s->phaseNames.size(); ++p) {
            const serve::FleetReport::PhaseSummary &ph =
                s->report.phases[p];
            std::printf("%-12s %-10s %12.4f %8llu %8llu %8llu\n",
                        s->key.c_str(), s->phaseNames[p].c_str(),
                        ph.availability,
                        static_cast<unsigned long long>(ph.offered),
                        static_cast<unsigned long long>(ph.served),
                        static_cast<unsigned long long>(ph.shed));
        }
    }

    // Claim 1: one shard killed + recovered keeps availability >= 0.99
    // in EVERY phase — pre-kill, through the outage, and in recovery.
    if (baseline.report.availability < 1.0) {
        std::fprintf(stderr, "FAIL: baseline shed traffic with no chaos\n");
        ok = false;
    }
    for (std::size_t p = 0; p < crash.phaseNames.size(); ++p) {
        if (crash.report.phases[p].availability < 0.99) {
            std::fprintf(
                stderr,
                "FAIL: crash %s-phase availability %.4f < 0.99\n",
                crash.phaseNames[p].c_str(),
                crash.report.phases[p].availability);
            ok = false;
        }
    }

    // Claim 3: brownout sheds strictly by QoS — the hi tenant loses
    // nothing while the weight-1 tenant homed on the dead shard sheds.
    const serve::FleetReport &bo = brownout.report;
    bench::rule();
    std::printf("brownout: t0 shed %llu (home shard %u), t3 shed %llu "
                "(home shard %u, crashed)\n",
                static_cast<unsigned long long>(bo.tenants[0].shed),
                brownout.homeShard[0],
                static_cast<unsigned long long>(bo.tenants[3].shed),
                brownout.homeShard[3]);
    if (bo.tenants[0].shed != 0) {
        std::fprintf(stderr, "FAIL: brownout shed hi-QoS traffic\n");
        ok = false;
    }
    if (bo.tenants[3].shed == 0) {
        std::fprintf(stderr, "FAIL: brownout shed no lo-QoS traffic — "
                             "QoS split untested\n");
        ok = false;
    }

    return bench::finish(results, sweep, ok);
}
