/**
 * @file
 * Ablation: the two ECC alternatives of Section IV-I for in-place
 * logical operations.
 *
 *  1. XOR-check unit: read out xor(A,B) and xor(ECC_A, ECC_B) and check
 *     ECC(A^B) == ECC(A)^ECC(B) at the controller — extra transfers per
 *     operation, zero residual risk.
 *  2. Cache scrubbing: periodic background check — near-zero overhead,
 *     bounded exposure window.
 */

#include "bench_util.hh"
#include "cc/ecc.hh"
#include "common/rng.hh"
#include "energy/energy_params.hh"

using namespace ccache;
using namespace ccache::cc;

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Section IV-I: XOR-check unit vs scrubbing ECC ablation");
    bench::header("Ablation: ECC strategies for in-place logical ops "
                  "(Section IV-I)");

    bench::ResultsWriter results("ablation_ecc");
    constexpr std::size_t trials = 100000;
    results.config("trials", static_cast<double>(trials));

    std::size_t holds = 0;
    double xor_extra = 0.0, logic = 0.0;
    const double intervals_ms[] = {10.0, 100.0, 1000.0};
    double scrub_overhead[3] = {}, scrub_errors[3] = {};

    bench::SweepRunner sweep(&results);

    // Alternative 1: the xor-identity is exact for the linear SECDED
    // code; verify over a large random sample (the point's own derived
    // RNG stream) and cost the extra transfers.
    sweep.add("xor_identity", [&](bench::SweepContext &ctx) {
        for (std::size_t i = 0; i < trials; ++i)
            holds += Secded::xorIdentityHolds(ctx.rng().next(),
                                              ctx.rng().next()) ? 1 : 0;
        ctx.metric("xor_identity.holds_fraction",
                   static_cast<double>(holds) /
                       static_cast<double>(trials));
    });
    sweep.add("xor_check", [&](bench::SweepContext &ctx) {
        energy::EnergyParams ep;
        xor_extra =
            ep.cacheOpEnergy(CacheLevel::L3, energy::CacheOp::Read) +
            ep.cacheOpEnergy(CacheLevel::L3, energy::CacheOp::Write) * 0.2;
        logic = ep.cacheOpEnergy(CacheLevel::L3, energy::CacheOp::Logic);
        ctx.metric("xor_check.extra_pj", xor_extra);
        ctx.metric("xor_check.overhead_fraction", xor_extra / logic);
    });
    // Alternative 2: scrubbing, one point per interval.
    for (int s = 0; s < 3; ++s) {
        double interval_ms = intervals_ms[s];
        std::string key = "scrub_" + std::to_string(
            static_cast<int>(interval_ms)) + "ms";
        sweep.add(key, [&, s, interval_ms,
                        key](bench::SweepContext &ctx) {
            ScrubbingModel m;
            m.intervalMs = interval_ms;
            scrub_overhead[s] = m.cycleOverhead();
            scrub_errors[s] = m.expectedErrorsPerInterval();
            ctx.metric(key + ".cycle_overhead", scrub_overhead[s]);
            ctx.metric(key + ".expected_errors", scrub_errors[s]);
        });
    }
    sweep.run();

    std::printf("xor-identity ECC(A^B) == ECC(A)^ECC(B): %zu/%zu random "
                "word pairs\n",
                holds, trials);
    std::printf("XOR-check unit: ~%.0f pJ extra per 64-byte logical op "
                "(op itself: %.0f pJ)\n",
                xor_extra, logic);
    std::printf("  -> %.0f%% energy overhead on every in-place logical "
                "operation\n\n",
                100.0 * xor_extra / logic);
    std::printf("%-14s %16s %24s\n", "interval", "cycle overhead",
                "expected errors/interval");
    bench::rule();
    for (int s = 0; s < 3; ++s)
        std::printf("%10.0f ms %15.4f%% %24.2e\n", intervals_ms[s],
                    100.0 * scrub_overhead[s], scrub_errors[s]);

    bench::rule();
    bench::note("With 0.7-7 soft errors/year, scrubbing at 100 ms costs");
    bench::note("<0.01% of cycles with ~1e-9 expected errors per window —");
    bench::note("the paper's preferred alternative. The XOR-check unit");
    bench::note("doubles logical-op energy but leaves zero exposure.");
    return bench::finish(results, sweep);
}
