/**
 * @file
 * Reproduces Table III: cache geometry and the minimum number of low
 * address bits that must match for operand locality. The values are
 * DERIVED from the operand-locality-aware geometry (Section IV-C), not
 * transcribed, and checked against the page-alignment sufficiency rule.
 */

#include "bench_util.hh"
#include "geometry/cache_geometry.hh"
#include "geometry/operand_locality.hh"

using namespace ccache;
using namespace ccache::geometry;

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Table III: geometry-derived operand-locality constraint");
    bench::header("Table III: Cache geometry and operand locality "
                  "constraint");

    std::printf("%-10s %6s %4s %11s %22s %12s\n", "Cache", "Banks", "BP",
                "Block size", "Min. address bits match",
                "<=12 (page)?");
    bench::rule();

    bench::ResultsWriter results("table3_operand_locality");
    const CacheGeometryParams level_params[] = {
        CacheGeometryParams::l1d(), CacheGeometryParams::l2(),
        CacheGeometryParams::l3Slice()};

    // One sweep point per cache level.
    bench::SweepRunner sweep(&results);
    for (const auto &params : level_params) {
        sweep.add(params.name, [&params](bench::SweepContext &ctx) {
            CacheGeometry geom(params);
            ctx.metric(params.name + ".min_match_bits",
                       geom.minMatchBits());
            ctx.metric(params.name + ".page_alignment_sufficient",
                       pageAlignmentSufficient(geom) ? 1 : 0);
        });
    }
    sweep.run();

    for (const auto &params : level_params) {
        CacheGeometry geom(params);
        std::printf("%-10s %6zu %4zu %11zu %22u %12s\n",
                    params.name.c_str(), params.banks,
                    params.blockPartitionsPerBank, kBlockSize,
                    geom.minMatchBits(),
                    pageAlignmentSufficient(geom) ? "yes" : "NO");
    }

    bench::rule();
    bench::note("Paper: L1-D 2/2/64/8, L2 8/2/64/10, L3-slice 16/4/64/12.");
    bench::note("Page-aligned operands (12 matching bits) satisfy operand");
    bench::note("locality at every level, so software never needs the "
                "cache geometry.");

    // Derived physical structure, for the record.
    bench::rule();
    for (const auto &params :
         {CacheGeometryParams::l1d(), CacheGeometryParams::l2(),
          CacheGeometryParams::l3Slice()}) {
        CacheGeometry geom(params);
        std::printf("%-10s: %3zu sub-arrays of %zu x %zu bits, "
                    "%zu blocks per partition\n",
                    params.name.c_str(), geom.totalSubarrays(),
                    geom.rowsPerSubarray(), geom.subArrayParams().cols,
                    geom.blocksPerPartition());
    }
    return bench::finish(results, sweep);
}
