/**
 * @file
 * Ablation: multi-core Compute Cache scaling. Each core streams in-place
 * copies over its own NUCA slice (pages first-touch to the local slice);
 * aggregate throughput should scale with core count because every slice
 * computes independently — the "caches as very large vector units"
 * claim at chip scope.
 */

#include "apps/dbbitmap.hh"
#include "bench_util.hh"
#include "sim/system.hh"

using namespace ccache;
using namespace ccache::sim;

namespace {

double
runCores(unsigned cores)
{
    System sys;
    const std::size_t n = 16384;

    std::vector<std::uint8_t> data(n, 0x3d);
    double total_blocks = 0.0;
    Cycles makespan = 0;

    for (unsigned c = 0; c < cores; ++c) {
        // Per-core working set: first touch binds it to the local slice.
        Addr src = 0x10000000 + c * 0x1000000;
        Addr dst = src + 0x100000;
        sys.load(src, data.data(), n);
        sys.warm(CacheLevel::L3, c, src, n);
        sys.warm(CacheLevel::L3, c, dst, n);
    }
    sys.resetMetrics();
    sys.cc().mutableParams().forceLevel = CacheLevel::L3;

    for (unsigned c = 0; c < cores; ++c) {
        Addr src = 0x10000000 + c * 0x1000000;
        Addr dst = src + 0x100000;
        auto r = sys.ccEngine().copy(c, src, dst, n);
        total_blocks += static_cast<double>(r.blockOps);
        // Cores run concurrently on disjoint slices; the makespan is the
        // slowest core (each slice has its own command bus + partitions).
        makespan = std::max(makespan, r.cycles);
    }

    return total_blocks / cyclesToSeconds(makespan) / 1e9;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Multi-core CC scaling over NUCA slices");
    bench::header("Ablation: multi-core CC scaling (16 KB in-place copy "
                  "per core, local slices)");

    std::printf("%8s %22s %10s\n", "cores", "aggregate Gblk-ops/s",
                "scaling");
    bench::rule();

    bench::ResultsWriter results("ablation_multicore");
    const unsigned core_counts[] = {1u, 2u, 4u, 8u};

    // One sweep point per core count, for both studies. Scaling ratios
    // are computed after the barrier from the 1-core points.
    double copy_thpt[4] = {};
    Cycles db_cycles[4] = {};
    bench::SweepRunner sweep(&results);
    for (int s = 0; s < 4; ++s) {
        unsigned cores = core_counts[s];
        sweep.add("copy_" + std::to_string(cores) + "core",
                  [&, s, cores](bench::SweepContext &) {
                      copy_thpt[s] = runCores(cores);
                  });
    }
    for (int s = 0; s < 4; ++s) {
        unsigned cores = core_counts[s];
        sweep.add("dbbitmap_" + std::to_string(cores) + "core",
                  [&, s, cores](bench::SweepContext &) {
                      using namespace ccache::apps;
                      DbBitmapConfig cfg;
                      cfg.index.rows = 1 << 17;
                      cfg.numQueries = 16;
                      DbBitmap app(cfg);
                      sim::System sys;
                      db_cycles[s] =
                          app.runParallel(sys, Engine::Cc, cores).cycles;
                  });
    }
    sweep.run();

    double base = copy_thpt[0];
    for (int s = 0; s < 4; ++s) {
        unsigned cores = core_counts[s];
        double thpt = copy_thpt[s];
        std::printf("%8u %22.2f %9.2fx\n", cores, thpt, thpt / base);
        std::string key = "copy_" + std::to_string(cores) + "core";
        results.metric(key + ".gblockops", thpt);
        results.metric(key + ".scaling", thpt / base);
    }

    bench::rule();
    bench::note("Every L3 slice is an independent compute array with its "
                "own");
    bench::note("command bus and partitions, so throughput scales with "
                "the number");
    bench::note("of slices put to work — a 16 MB L3 acts as 512 parallel "
                "sub-arrays.");

    bench::header("Parallel DB-BitMap query processing (CC, queries "
                  "round-robin over cores)");
    std::printf("%8s %16s %10s\n", "cores", "makespan (cyc)", "scaling");
    bench::rule();
    {
        Cycles base_cycles = db_cycles[0];
        for (int s = 0; s < 4; ++s) {
            unsigned cores = core_counts[s];
            std::printf("%8u %16llu %9.2fx\n", cores,
                        static_cast<unsigned long long>(db_cycles[s]),
                        static_cast<double>(base_cycles) /
                            static_cast<double>(db_cycles[s]));
            std::string key = "dbbitmap_" + std::to_string(cores) +
                "core";
            results.metric(key + ".makespan_cycles",
                           static_cast<double>(db_cycles[s]));
            results.metric(key + ".scaling",
                           static_cast<double>(base_cycles) /
                               static_cast<double>(db_cycles[s]));
        }
    }
    bench::note("Independent queries over the shared read-only index "
                "parallelize");
    bench::note("across cores and slices with no coherence traffic on "
                "the bins.");
    return bench::finish(results, sweep);
}
