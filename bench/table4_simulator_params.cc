/**
 * @file
 * Reproduces Table IV: the simulated machine's parameters, printed from
 * the live default configuration so documentation can never drift from
 * the code.
 */

#include "bench_util.hh"
#include "sim/system.hh"

using namespace ccache;
using namespace ccache::sim;

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Table IV: the simulated machine, from live config");
    bench::header("Table IV: simulator parameters (live configuration)");

    SystemConfig cfg;
    const auto &h = cfg.hierarchy;

    bench::ResultsWriter results("table4_simulator_params");
    results.config("cores", h.cores);
    results.config("core_freq_ghz", kCoreFreqHz / 1e9);

    // A single sweep point: this bench only snapshots the live default
    // configuration, but it rides the same engine as every other bench.
    bench::SweepRunner sweep(&results);
    sweep.add("defaults", [&h](bench::SweepContext &ctx) {
        ctx.metric("l1.size_kb",
                   static_cast<double>(h.l1.geometry.sizeBytes) / 1024);
        ctx.metric("l2.size_kb",
                   static_cast<double>(h.l2.geometry.sizeBytes) / 1024);
        ctx.metric("l3.slice_size_mb",
                   static_cast<double>(h.l3.geometry.sizeBytes) /
                       (1024 * 1024));
        ctx.metric("l1.access_cycles",
                   static_cast<double>(h.l1.accessLatency));
        ctx.metric("l2.access_cycles",
                   static_cast<double>(h.l2.accessLatency));
        ctx.metric("l3.access_cycles",
                   static_cast<double>(h.l3.accessLatency));
        ctx.metric("ring.hop_cycles",
                   static_cast<double>(h.ring.hopLatency));
        ctx.metric("memory.access_cycles",
                   static_cast<double>(h.memory.accessLatency));
    });
    sweep.run();

    std::printf("Configuration   %u-core CMP\n", h.cores);
    std::printf("Processor       %.2f GHz out-of-order core, issue %u, "
                "%u-deep MLP\n",
                kCoreFreqHz / 1e9, cfg.core.issueWidth, cfg.core.mshrs);

    auto cache_row = [](const char *name,
                        const geometry::CacheGeometryParams &g,
                        Cycles lat, const char *extra) {
        std::printf("%-15s %zu KB, %zu-way, %llu cycle access%s\n", name,
                    g.sizeBytes / 1024, g.ways,
                    static_cast<unsigned long long>(lat), extra);
    };
    cache_row("L1-D Cache", h.l1.geometry, h.l1.accessLatency, "");
    cache_row("L2 Cache", h.l2.geometry, h.l2.accessLatency,
              ", inclusive, private");
    std::printf("L3 Cache        inclusive, shared, %u NUCA slices, "
                "%zu MB each, %zu-way, %llu cycle + %llu queuing\n",
                h.ring.nodes, h.l3.geometry.sizeBytes / (1024 * 1024),
                h.l3.geometry.ways,
                static_cast<unsigned long long>(h.l3.accessLatency),
                static_cast<unsigned long long>(h.l3QueueDelay));
    std::printf("Interconnect    ring, %llu cycle hop latency, %u-bit "
                "link width\n",
                static_cast<unsigned long long>(h.ring.hopLatency),
                h.ring.linkBytes * 8);
    std::printf("Coherence       directory based, MESI\n");
    std::printf("Memory          %llu cycle latency\n",
                static_cast<unsigned long long>(
                    h.memory.accessLatency));

    bench::rule();
    std::printf("Compute Cache   in-place op %llu/%llu/%llu cycles "
                "(L1/L2/L3), near-place %llu/%llu/%llu\n",
                static_cast<unsigned long long>(
                    cfg.cc.inPlaceLatency(CacheLevel::L1)),
                static_cast<unsigned long long>(
                    cfg.cc.inPlaceLatency(CacheLevel::L2)),
                static_cast<unsigned long long>(
                    cfg.cc.inPlaceLatency(CacheLevel::L3)),
                static_cast<unsigned long long>(
                    cfg.cc.nearPlace.latency(CacheLevel::L1)),
                static_cast<unsigned long long>(
                    cfg.cc.nearPlace.latency(CacheLevel::L2)),
                static_cast<unsigned long long>(
                    cfg.cc.nearPlace.latency(CacheLevel::L3)));
    std::printf("                instruction table %zu entries, operation "
                "table %zu, power cap %u sub-arrays\n",
                cfg.cc.instrTableEntries, cfg.cc.opTableEntries,
                cfg.cc.maxActiveSubarrays);

    bench::rule();
    bench::note("Paper Table IV: 2.66 GHz OoO, 32 KB 8-way L1-D (5 cyc),");
    bench::note("256 KB 8-way private L2 (11 cyc), 8 x 2 MB 16-way NUCA "
                "L3 (11 cyc");
    bench::note("+ queuing), 3-cycle-hop 256-bit ring, directory MESI, "
                "120-cycle memory.");
    return bench::finish(results, sweep);
}
