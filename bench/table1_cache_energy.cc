/**
 * @file
 * Reproduces Table I: cache energy per read access, split into the
 * in-cache H-tree interconnect ("cache-ic") and the bit-array access
 * ("cache-access") components, for L1-D / L2 / L3-slice.
 */

#include "bench_util.hh"
#include "energy/energy_params.hh"

using namespace ccache;
using namespace ccache::energy;

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Table I: per-access read energy split (H-tree vs bit-array)");
    bench::header("Table I: Cache energy per read access");
    EnergyParams params;

    std::printf("%-10s %15s %15s %10s\n", "Cache", "cache-ic (h-tree)",
                "cache-access", "ic share");
    bench::rule();

    struct Row
    {
        const char *name;
        CacheReadSplit split;
    } rows[] = {
        {"L1-D", params.l1Read},
        {"L2", params.l2Read},
        {"L3-slice", params.l3Read},
    };

    bench::ResultsWriter results("table1_cache_energy");
    const char *keys[] = {"l1d", "l2", "l3_slice"};

    // One sweep point per cache level.
    bench::SweepRunner sweep(&results);
    for (int r = 0; r < 3; ++r) {
        sweep.add(keys[r], [&, r](bench::SweepContext &ctx) {
            const auto &row = rows[r];
            std::string key = keys[r];
            ctx.metric(key + ".htree_pj", row.split.htree);
            ctx.metric(key + ".access_pj", row.split.access);
            ctx.metric(key + ".htree_fraction",
                       row.split.htree / row.split.total());
        });
    }
    sweep.run();

    for (const auto &row : rows)
        std::printf("%-10s %12.0f pJ %12.0f pJ %9.0f%%\n", row.name,
                    row.split.htree, row.split.access,
                    100.0 * row.split.htree / row.split.total());

    bench::rule();
    bench::note("Paper: L1-D 179/116, L2 675/127, L3-slice 1985/467 pJ;");
    bench::note("the H-tree consumes ~80% of an L3-slice read "
                "(Section III).");
    return bench::finish(results, sweep);
}
