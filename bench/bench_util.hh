/**
 * @file
 * Shared table-printing helpers for the experiment benches. Each bench
 * binary regenerates one table or figure of the paper and prints the
 * corresponding rows/series plus the paper's reference values.
 */

#ifndef CCACHE_BENCH_BENCH_UTIL_HH
#define CCACHE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

namespace bench {

inline void
header(const std::string &title)
{
    std::printf("\n================================================="
                "=====================\n%s\n"
                "================================================="
                "=====================\n",
                title.c_str());
}

inline void
note(const std::string &text)
{
    std::printf("%s\n", text.c_str());
}

inline void
rule()
{
    std::printf("----------------------------------------------------"
                "------------------\n");
}

} // namespace bench

#endif // CCACHE_BENCH_BENCH_UTIL_HH
