/**
 * @file
 * Shared experiment-bench runner utilities.
 *
 * Every bench binary regenerates one table or figure of the paper. Two
 * output surfaces are produced per run:
 *
 *  - the historical human-readable tables on stdout (header/rule/note),
 *    still what EXPERIMENTS.md quotes; and
 *  - a machine-comparable JSON result file, written by ResultsWriter to
 *    `results/<bench>.json` (override the directory with
 *    $CCACHE_RESULTS_DIR). The file carries a schema version, the git
 *    revision, the bench's key metrics and optional full stats dumps,
 *    so runs are diffable across commits with `tools/ccstat`.
 *
 * Result-file schema (version kBenchResultsVersion; see DESIGN.md §7):
 *
 *     { "schema": "ccache-bench-results", "version": 2,
 *       "bench": "<name>", "git_sha": "<sha or unknown>",
 *       "config": { "<key>": <value>, ... },
 *       "metrics": { "<metric>": <number>, ... },
 *       "stats": { "<label>": <StatRegistry::dumpJson()>, ... },
 *       "perf": { "wall_clock_s": <number>, "cc_block_ops": <number>,
 *                 "ops_per_sec": <number> } }
 *
 * The "perf" section is the one intentionally nondeterministic part of
 * the file: it measures this run on this machine (DESIGN.md §13). It is
 * composed only at write() time and never enters document(), so the
 * determinism tests and the thread-count identity checks compare
 * documents without it; byte-level comparisons of written files must
 * strip it first (`ccstat --identical` does).
 *
 * Benches define their measurement grid as SweepRunner points (one per
 * independent (bench, config) simulation) and print their tables after
 * the sweep barrier, so the whole grid fans out across cores while the
 * stdout tables and the JSON result file stay byte-identical at any
 * thread count (DESIGN.md §8).
 */

#ifndef CCACHE_BENCH_BENCH_UTIL_HH
#define CCACHE_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/event_trace.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/perf_counters.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"

namespace bench {

/** Version of the bench-results JSON schema (see file header).
 *  v2 added the run-local "perf" section. */
inline constexpr int kBenchResultsVersion = 2;

/**
 * Bench self-description: every bench registers a one-line description
 * at the top of main() via maybeDescribe(argc, argv, "..."). Invoked
 * with --describe, the bench prints that line and exits instead of
 * running — `ccbench --list` queries the catalog this way, so the list
 * column can never drift from the binaries.
 */
inline void
maybeDescribe(int argc, char **argv, const char *description)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--describe") == 0) {
            std::printf("%s\n", description);
            std::exit(0);
        }
    }
}

inline void
header(const std::string &title)
{
    std::printf("\n================================================="
                "=====================\n%s\n"
                "================================================="
                "=====================\n",
                title.c_str());
}

inline void
note(const std::string &text)
{
    std::printf("%s\n", text.c_str());
}

inline void
rule()
{
    std::printf("----------------------------------------------------"
                "------------------\n");
}

/** Directory for result files: $CCACHE_RESULTS_DIR or ./results. */
inline std::string
resultsDir()
{
    const char *env = std::getenv("CCACHE_RESULTS_DIR");
    return env && *env ? env : "results";
}

/** True iff @p sha looks like a short-or-full git object name. */
inline bool
plausibleGitSha(const std::string &sha)
{
    if (sha.size() < 4 || sha.size() > 40)
        return false;
    for (char c : sha) {
        bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
        if (!hex)
            return false;
    }
    return true;
}

/**
 * Current git revision (short), or "unknown". Every failure mode of the
 * probe — popen failure, non-git checkout, git missing, a non-zero exit,
 * shell noise on stdout — yields exactly "unknown" so garbage can never
 * reach a committed result file.
 */
inline std::string
gitSha()
{
    std::string sha;
#if defined(__unix__) || defined(__APPLE__)
    FILE *p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
    if (!p)
        return "unknown";
    char buf[64] = {};
    if (std::fgets(buf, sizeof buf, p))
        sha.assign(buf);
    int status = ::pclose(p);
    while (!sha.empty() &&
           (sha.back() == '\n' || sha.back() == '\r' || sha.back() == ' '))
        sha.pop_back();
    if (status != 0 || !plausibleGitSha(sha))
        return "unknown";
#else
    sha = "unknown";
#endif
    return sha.empty() ? "unknown" : sha;
}

/**
 * Crash-safe file write: the content lands in `<path>.tmp.<pid>` first
 * and is atomically renamed over @p path only after every stream
 * operation (open, write, flush, close) reported success. A reader —
 * including `ccbench --resume` after a SIGKILL — therefore sees either
 * the complete old file or the complete new file, never a torn one.
 */
inline bool
atomicWriteFile(const std::string &path, const std::string &content)
{
    namespace fs = std::filesystem;
#if defined(__unix__) || defined(__APPLE__)
    std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
#else
    std::string tmp = path + ".tmp";
#endif
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out << content;
        out.flush();
        if (!out) {
            out.close();
            std::error_code ec;
            fs::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        std::error_code rm;
        fs::remove(tmp, rm);
        return false;
    }
    return true;
}

/**
 * Accumulates one bench run's machine-readable output and writes the
 * schema-versioned JSON result file. Typical use:
 *
 *     bench::ResultsWriter results("fig7_microbench");
 *     results.config("operand_bytes", 4096);
 *     results.metric("copy.speedup", speedup);
 *     results.stats("cc_copy", sys.stats());
 *     results.write();   // -> results/fig7_microbench.json
 */
class ResultsWriter
{
  public:
    explicit ResultsWriter(std::string bench_name)
        : name_(std::move(bench_name))
    {
        doc_["schema"] = "ccache-bench-results";
        doc_["version"] = kBenchResultsVersion;
        doc_["bench"] = name_;
        doc_["git_sha"] = gitSha();
        doc_["config"] = ccache::Json::object();
        doc_["metrics"] = ccache::Json::object();
        doc_["stats"] = ccache::Json::object();
    }

    /** Record one configuration fact (what was run). */
    void config(const std::string &key, ccache::Json value)
    {
        doc_["config"][key] = std::move(value);
    }

    /** Record one headline number (what came out). Metric names follow
     *  the stats convention: `<series>.<quantity>`, e.g. "copy.speedup". */
    void metric(const std::string &name, double value)
    {
        doc_["metrics"][name] = value;
    }

    /** Embed a full stats dump under @p label (one per configuration). */
    void stats(const std::string &label, const ccache::StatRegistry &reg)
    {
        doc_["stats"][label] = reg.dumpJson();
    }

    /** Same, for a dump captured earlier (registry no longer alive). */
    void statsJson(const std::string &label, ccache::Json dump)
    {
        doc_["stats"][label] = std::move(dump);
    }

    /** Attach an arbitrary extra section (e.g. trace-file pointers). */
    void extra(const std::string &key, ccache::Json value)
    {
        doc_[key] = std::move(value);
    }

    /**
     * Record one contained per-point failure. The "errors" section is
     * created on first use only, so error-free documents stay
     * byte-identical to the committed baselines. Entry shape:
     *
     *     { "point": "<sweep key>", "kind": "sim_error" | "fatal_error"
     *       | "exception", "message": "<what()>",
     *       "diagnostic": <JSON, when the SimError carried one> }
     */
    void error(const std::string &point, const std::string &kind,
               const std::string &message,
               const ccache::Json *diagnostic = nullptr)
    {
        ccache::Json e = ccache::Json::object();
        e["point"] = point;
        e["kind"] = kind;
        e["message"] = message;
        if (diagnostic && !diagnostic->isNull())
            e["diagnostic"] = *diagnostic;
        doc_["errors"].push(std::move(e));
        ++errorCount_;
    }

    /** Contained failures recorded so far (non-zero => bench exits 1). */
    std::size_t errorCount() const { return errorCount_; }

    const std::string &name() const { return name_; }

    /** The accumulated result document (determinism tests compare its
     *  serialized form across thread counts). Deliberately excludes the
     *  "perf" section, which is nondeterministic by design. */
    const ccache::Json &document() const { return doc_; }

    /**
     * This run's measured throughput: wall-clock since this writer was
     * constructed, the CC block ops the process executed in that window,
     * and their quotient. Nondeterministic on purpose — this is the
     * number the perf CI gate tracks (DESIGN.md §13).
     */
    ccache::Json perfSection() const
    {
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
        std::uint64_t ops = ccache::perf::ccBlockOps() - startOps_;
        ccache::Json p = ccache::Json::object();
        p["wall_clock_s"] = wall;
        p["cc_block_ops"] = ops;
        p["ops_per_sec"] =
            wall > 0.0 ? static_cast<double>(ops) / wall : 0.0;
        return p;
    }

    /**
     * Write `<resultsDir()>/<bench>.json` (directory created on demand)
     * via temp-file + atomic rename with checked stream state, and
     * print where it landed. The perf section is composed here, on the
     * deterministic document. Returns the path, empty on failure — the
     * caller must propagate that as a non-zero exit (bench::finish
     * does).
     */
    std::string write()
    {
        namespace fs = std::filesystem;
        std::error_code ec;
        fs::create_directories(resultsDir(), ec);
        std::string path = resultsDir() + "/" + name_ + ".json";
        ccache::Json doc = doc_;
        doc["perf"] = perfSection();
        if (!atomicWriteFile(path, doc.dump(2) + "\n")) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return "";
        }
        std::printf("\nresults: %s\n", path.c_str());
        return path;
    }

  private:
    std::string name_;
    ccache::Json doc_;
    std::size_t errorCount_ = 0;
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
    std::uint64_t startOps_ = ccache::perf::ccBlockOps();
};

/** Default base seed of a bench sweep (see SweepContext::seed()). */
inline constexpr std::uint64_t kSweepBaseSeed = 0x5eedcac8e5ULL;

/**
 * Execution context of one sweep point. Everything a point touches is
 * owned here — RNG, stat registry, trace sink, recorded metrics — so
 * points share no mutable state and may run on any thread in any order.
 *
 * The RNG seed is derived as hash(base_seed, point key), never from a
 * global or from scheduling, so a point's random stream is a pure
 * function of its identity (DESIGN.md §8).
 */
class SweepContext
{
  public:
    SweepContext(std::string key, std::size_t index,
                 std::uint64_t base_seed)
        : key_(std::move(key)), index_(index),
          seed_(ccache::deriveSeed(base_seed, key_)), rng_(seed_)
    {
    }

    const std::string &key() const { return key_; }
    std::size_t index() const { return index_; }

    /** This point's derived seed: hash(base_seed, key). */
    std::uint64_t seed() const { return seed_; }

    /** This point's private RNG, seeded with seed(). */
    ccache::Rng &rng() { return rng_; }

    /** An independent named sub-stream, e.g. rngFor("monte_carlo"):
     *  adding draws to one stream never shifts another. */
    ccache::Rng rngFor(std::string_view label) const
    {
        return ccache::Rng(ccache::deriveSeed(seed_, label));
    }

    /** Point-local stat registry; merged (in point order) into
     *  SweepRunner::mergedStats() at the barrier. */
    ccache::StatRegistry &stats() { return stats_; }

    /** Point-local trace sink (disabled unless the point enables it);
     *  merged in point order into SweepRunner::mergedTrace(). */
    ccache::EventTrace &trace() { return trace_; }

    /** Record one headline number into the bench's ResultsWriter
     *  (applied at the barrier, in point order). */
    void metric(std::string name, double value)
    {
        metrics_.emplace_back(std::move(name), value);
    }

    /** Record one configuration fact into the ResultsWriter. */
    void config(std::string key, ccache::Json value)
    {
        configs_.emplace_back(std::move(key), std::move(value));
    }

    /** Embed a full stats dump under @p label in the ResultsWriter. */
    void statsJson(std::string label, ccache::Json dump)
    {
        statsDumps_.emplace_back(std::move(label), std::move(dump));
    }

  private:
    friend class SweepRunner;

    std::string key_;
    std::size_t index_;
    std::uint64_t seed_;
    ccache::Rng rng_;
    ccache::StatRegistry stats_;
    ccache::EventTrace trace_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<std::pair<std::string, ccache::Json>> configs_;
    std::vector<std::pair<std::string, ccache::Json>> statsDumps_;
};

/**
 * The parallel sweep engine: fans a bench's independent (config) points
 * out across a work-stealing thread pool and merges their outputs at
 * the barrier, in point-definition order, so every output surface —
 * ResultsWriter document, merged stats, merged trace, anything the
 * points stored into caller-owned slots — is bit-identical to a serial
 * run regardless of thread count or scheduling (DESIGN.md §8).
 *
 *     bench::ResultsWriter results("fig8_cache_levels");
 *     bench::SweepRunner sweep(&results);
 *     std::vector<Outcome> out(12);
 *     for (...each config...)
 *         sweep.add(key, [&, i](bench::SweepContext &ctx) {
 *             out[i] = runOnce(...);          // into a disjoint slot
 *             ctx.metric(key + ".saving", out[i].saving);
 *         });
 *     sweep.run();           // $CCACHE_JOBS workers (1 = inline)
 *     ...print tables from out[]...
 */
class SweepRunner
{
  public:
    using PointFn = std::function<void(SweepContext &)>;

    explicit SweepRunner(ResultsWriter *results = nullptr,
                         std::uint64_t base_seed = kSweepBaseSeed)
        : results_(results), baseSeed_(base_seed)
    {
    }

    /** Define one point. @p key names it uniquely within the sweep: it
     *  is the metric prefix by convention and the RNG shard key. */
    void add(std::string key, PointFn fn)
    {
        CC_ASSERT(!ran_, "SweepRunner::add after run");
        Point p;
        p.key = std::move(key);
        p.fn = std::move(fn);
        points_.push_back(std::move(p));
    }

    std::size_t size() const { return points_.size(); }

    /** Number of sweep workers: $CCACHE_JOBS or hardware threads. */
    static unsigned defaultJobs()
    {
        return ccache::ThreadPool::defaultWorkers();
    }

    /** Run every point across @p jobs workers (1 = inline serial run,
     *  the determinism reference), then merge at the barrier. */
    void run(unsigned jobs = defaultJobs())
    {
        ccache::ThreadPool pool(jobs <= 1 ? 0 : jobs);
        runOn(pool);
    }

    /** Same, on a caller-provided pool. */
    void runOn(ccache::ThreadPool &pool)
    {
        CC_ASSERT(!ran_, "SweepRunner::run called twice");
        ran_ = true;
        // Contexts are created up front so index/seed assignment cannot
        // depend on execution order.
        for (std::size_t i = 0; i < points_.size(); ++i)
            points_[i].ctx = std::make_unique<SweepContext>(
                points_[i].key, i, baseSeed_);
        // Failures are contained per point, INSIDE the task: the pool
        // must never see an exception (it would rethrow at the barrier
        // and discard the surviving points). A failed point contributes
        // only its structured error record at the merge; whether other
        // points ran before or after it cannot change their bytes
        // (DESIGN.md §8 survives error containment).
        pool.parallelFor(points_.size(), [this](std::size_t i) {
            Point &p = points_[i];
            try {
                p.fn(*p.ctx);
            } catch (const ccache::SimError &e) {
                p.errorKind = "sim_error";
                p.errorMessage = e.what();
                if (!e.diagnostic().empty()) {
                    std::string perr;
                    p.errorDiagnostic =
                        ccache::Json::parse(e.diagnostic(), &perr);
                }
            } catch (const ccache::FatalError &e) {
                p.errorKind = "fatal_error";
                p.errorMessage = e.what();
            } catch (const std::exception &e) {
                p.errorKind = "exception";
                p.errorMessage = e.what();
            }
        });
        merge();
    }

    /** Points that failed (their error records are in the
     *  ResultsWriter's "errors" section after the barrier). */
    std::size_t errorCount() const { return errors_; }

    /** Every point's stats, merged in point order at the barrier. */
    const ccache::StatRegistry &mergedStats() const { return mergedStats_; }

    /** Every point's trace events, merged in point order. */
    const ccache::EventTrace &mergedTrace() const { return mergedTrace_; }

  private:
    struct Point
    {
        std::string key;
        PointFn fn;
        std::unique_ptr<SweepContext> ctx;
        std::string errorKind;      ///< empty = the point succeeded
        std::string errorMessage;
        ccache::Json errorDiagnostic;
    };

    void merge()
    {
        for (Point &p : points_) {
            if (!p.errorKind.empty()) {
                // A failed point may hold partial metrics/stats from
                // before the throw; contributing any of them would make
                // the output depend on where exactly it died. Only the
                // error record survives.
                ++errors_;
                std::fprintf(stderr,
                             "sweep point '%s' FAILED (%s): %s\n",
                             p.key.c_str(), p.errorKind.c_str(),
                             p.errorMessage.c_str());
                if (results_)
                    results_->error(p.key, p.errorKind, p.errorMessage,
                                    &p.errorDiagnostic);
                continue;
            }
            SweepContext &ctx = *p.ctx;
            if (results_) {
                for (auto &[key, value] : ctx.configs_)
                    results_->config(key, std::move(value));
                for (auto &[name, value] : ctx.metrics_)
                    results_->metric(name, value);
                for (auto &[label, dump] : ctx.statsDumps_)
                    results_->statsJson(label, std::move(dump));
            }
            mergedStats_.mergeFrom(ctx.stats_);
            mergedTrace_.mergeFrom(ctx.trace_);
        }
    }

    std::vector<Point> points_;
    ResultsWriter *results_;
    std::uint64_t baseSeed_;
    bool ran_ = false;
    std::size_t errors_ = 0;
    ccache::StatRegistry mergedStats_;
    ccache::EventTrace mergedTrace_;
};

/**
 * Standard bench epilogue: write the result file and derive the process
 * exit code. Returns non-zero when the write failed, when any sweep
 * point was contained as an error, or when the bench's own sanity check
 * (@p ok) failed — so ccbench and CI see every degraded run.
 */
inline int
finish(ResultsWriter &results, const SweepRunner &sweep, bool ok = true)
{
    bool wrote = !results.write().empty();
    if (sweep.errorCount() > 0)
        std::fprintf(stderr, "%s: %zu sweep point(s) failed\n",
                     results.name().c_str(), sweep.errorCount());
    return wrote && ok && sweep.errorCount() == 0 ? 0 : 1;
}

} // namespace bench

#endif // CCACHE_BENCH_BENCH_UTIL_HH
