/**
 * @file
 * Shared experiment-bench runner utilities.
 *
 * Every bench binary regenerates one table or figure of the paper. Two
 * output surfaces are produced per run:
 *
 *  - the historical human-readable tables on stdout (header/rule/note),
 *    still what EXPERIMENTS.md quotes; and
 *  - a machine-comparable JSON result file, written by ResultsWriter to
 *    `results/<bench>.json` (override the directory with
 *    $CCACHE_RESULTS_DIR). The file carries a schema version, the git
 *    revision, the bench's key metrics and optional full stats dumps,
 *    so runs are diffable across commits with `tools/ccstat`.
 *
 * Result-file schema (version kBenchResultsVersion; see DESIGN.md §7):
 *
 *     { "schema": "ccache-bench-results", "version": 1,
 *       "bench": "<name>", "git_sha": "<sha or unknown>",
 *       "config": { "<key>": <value>, ... },
 *       "metrics": { "<metric>": <number>, ... },
 *       "stats": { "<label>": <StatRegistry::dumpJson()>, ... } }
 */

#ifndef CCACHE_BENCH_BENCH_UTIL_HH
#define CCACHE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/json.hh"
#include "common/stats.hh"

namespace bench {

/** Version of the bench-results JSON schema (see file header). */
inline constexpr int kBenchResultsVersion = 1;

inline void
header(const std::string &title)
{
    std::printf("\n================================================="
                "=====================\n%s\n"
                "================================================="
                "=====================\n",
                title.c_str());
}

inline void
note(const std::string &text)
{
    std::printf("%s\n", text.c_str());
}

inline void
rule()
{
    std::printf("----------------------------------------------------"
                "------------------\n");
}

/** Directory for result files: $CCACHE_RESULTS_DIR or ./results. */
inline std::string
resultsDir()
{
    const char *env = std::getenv("CCACHE_RESULTS_DIR");
    return env && *env ? env : "results";
}

/** Current git revision (short), or "unknown" outside a work tree. */
inline std::string
gitSha()
{
    std::string sha = "unknown";
#if defined(__unix__) || defined(__APPLE__)
    if (FILE *p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
        char buf[64] = {};
        if (std::fgets(buf, sizeof buf, p)) {
            sha.assign(buf);
            while (!sha.empty() && (sha.back() == '\n' || sha.back() == ' '))
                sha.pop_back();
        }
        ::pclose(p);
        if (sha.empty())
            sha = "unknown";
    }
#endif
    return sha;
}

/**
 * Accumulates one bench run's machine-readable output and writes the
 * schema-versioned JSON result file. Typical use:
 *
 *     bench::ResultsWriter results("fig7_microbench");
 *     results.config("operand_bytes", 4096);
 *     results.metric("copy.speedup", speedup);
 *     results.stats("cc_copy", sys.stats());
 *     results.write();   // -> results/fig7_microbench.json
 */
class ResultsWriter
{
  public:
    explicit ResultsWriter(std::string bench_name)
        : name_(std::move(bench_name))
    {
        doc_["schema"] = "ccache-bench-results";
        doc_["version"] = kBenchResultsVersion;
        doc_["bench"] = name_;
        doc_["git_sha"] = gitSha();
        doc_["config"] = ccache::Json::object();
        doc_["metrics"] = ccache::Json::object();
        doc_["stats"] = ccache::Json::object();
    }

    /** Record one configuration fact (what was run). */
    void config(const std::string &key, ccache::Json value)
    {
        doc_["config"][key] = std::move(value);
    }

    /** Record one headline number (what came out). Metric names follow
     *  the stats convention: `<series>.<quantity>`, e.g. "copy.speedup". */
    void metric(const std::string &name, double value)
    {
        doc_["metrics"][name] = value;
    }

    /** Embed a full stats dump under @p label (one per configuration). */
    void stats(const std::string &label, const ccache::StatRegistry &reg)
    {
        doc_["stats"][label] = reg.dumpJson();
    }

    /** Same, for a dump captured earlier (registry no longer alive). */
    void statsJson(const std::string &label, ccache::Json dump)
    {
        doc_["stats"][label] = std::move(dump);
    }

    /** Attach an arbitrary extra section (e.g. trace-file pointers). */
    void extra(const std::string &key, ccache::Json value)
    {
        doc_[key] = std::move(value);
    }

    /**
     * Write `<resultsDir()>/<bench>.json` (directory created on demand)
     * and print where it landed. Returns the path, empty on failure.
     */
    std::string write()
    {
        namespace fs = std::filesystem;
        std::error_code ec;
        fs::create_directories(resultsDir(), ec);
        std::string path = resultsDir() + "/" + name_ + ".json";
        std::ofstream out(path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return "";
        }
        out << doc_.dump(2) << "\n";
        std::printf("\nresults: %s\n", path.c_str());
        return path;
    }

  private:
    std::string name_;
    ccache::Json doc_;
};

} // namespace bench

#endif // CCACHE_BENCH_BENCH_UTIL_HH
