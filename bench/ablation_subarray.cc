/**
 * @file
 * Ablation: circuit-level robustness of multi-row activation. Sweeps the
 * number of simultaneously activated word-lines and reports the
 * worst-case sense margin, the Monte-Carlo failure probability at a
 * realistic sense-amplifier offset, and whether stored data survives —
 * reproducing the Jeloka et al. 64-row safety claim the paper builds on.
 */

#include "bench_util.hh"
#include "common/rng.hh"
#include "sram/subarray.hh"

using namespace ccache;
using namespace ccache::sram;

int
main()
{
    bench::header("Ablation: multi-row activation robustness "
                  "(Section II-B)");

    SubArrayParams params;
    params.rows = 128;
    params.cols = 512;

    bench::ResultsWriter results("ablation_subarray");
    results.config("rows", params.rows);
    results.config("cols", params.cols);

    std::printf("%8s %14s %16s %14s\n", "rows", "sense margin",
                "MC fail rate", "data intact");
    bench::rule();

    for (unsigned nrows : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        SubArray sa(params);
        Rng rng(7 + nrows);

        // Worst-case-ish contents: random rows.
        std::vector<Block> originals;
        for (unsigned r = 0; r < nrows; ++r) {
            Block b;
            for (auto &byte : b)
                byte = static_cast<std::uint8_t>(rng.below(256));
            originals.push_back(b);
            sa.write({0, r}, b);
        }

        std::vector<std::size_t> rows(nrows);
        for (unsigned r = 0; r < nrows; ++r)
            rows[r] = r;
        auto sense = sa.rawActivate(rows);

        bool intact = true;
        for (unsigned r = 0; r < nrows; ++r)
            intact &= sa.read({0, r}) == originals[r];

        Rng mc(99);
        double fail = SenseAmpArray::monteCarloFailureRate(
            sense.margin, 0.015, 100000, mc);

        std::printf("%8u %13.3f %16.2e %14s\n", nrows, sense.margin,
                    fail, intact ? "yes" : "CORRUPTED");
        std::string key = "rows_" + std::to_string(nrows);
        results.metric(key + ".sense_margin", sense.margin);
        results.metric(key + ".mc_fail_rate", fail);
        results.metric(key + ".data_intact", intact ? 1 : 0);
    }
    results.write();

    bench::rule();
    bench::note("With word-line underdrive, up to 64 simultaneously "
                "active rows");
    bench::note("read back intact (matching the fabricated-chip result); "
                "the sense");
    bench::note("margin at a 1.5% VDD amplifier sigma gives a ~0 "
                "Monte-Carlo");
    bench::note("failure rate, consistent with the six-sigma claim.");
    return 0;
}
