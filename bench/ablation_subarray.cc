/**
 * @file
 * Ablation: circuit-level robustness of multi-row activation. Sweeps the
 * number of simultaneously activated word-lines and reports the
 * worst-case sense margin, the Monte-Carlo failure probability at a
 * realistic sense-amplifier offset, and whether stored data survives —
 * reproducing the Jeloka et al. 64-row safety claim the paper builds on.
 */

#include "bench_util.hh"
#include "common/rng.hh"
#include "sram/subarray.hh"

using namespace ccache;
using namespace ccache::sram;

namespace {

struct RowResult
{
    double margin = 0.0;
    double failRate = 0.0;
    bool intact = false;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Section II-B: multi-row activation robustness sweep");
    bench::header("Ablation: multi-row activation robustness "
                  "(Section II-B)");

    SubArrayParams params;
    params.rows = 128;
    params.cols = 512;

    bench::ResultsWriter results("ablation_subarray");
    results.config("rows", params.rows);
    results.config("cols", params.cols);

    const std::vector<unsigned> row_counts{1, 2, 4, 8, 16, 32, 64};

    // One sweep point per activation width; each owns its sub-array and
    // draws from its shard RNG, so the points fan out across cores.
    std::vector<RowResult> out(row_counts.size());
    bench::SweepRunner sweep(&results);
    for (std::size_t i = 0; i < row_counts.size(); ++i) {
        unsigned nrows = row_counts[i];
        sweep.add("rows_" + std::to_string(nrows),
                  [&, i, nrows](bench::SweepContext &ctx) {
            SubArray sa(params);

            // Worst-case-ish contents: random rows.
            std::vector<Block> originals;
            for (unsigned r = 0; r < nrows; ++r) {
                Block b;
                for (auto &byte : b)
                    byte = static_cast<std::uint8_t>(ctx.rng().below(256));
                originals.push_back(b);
                sa.write({0, r}, b);
            }

            std::vector<std::size_t> rows(nrows);
            for (unsigned r = 0; r < nrows; ++r)
                rows[r] = r;
            auto sense = sa.rawActivate(rows);

            bool intact = true;
            for (unsigned r = 0; r < nrows; ++r)
                intact &= sa.read({0, r}) == originals[r];

            Rng mc = ctx.rngFor("monte_carlo");
            double fail = SenseAmpArray::monteCarloFailureRate(
                sense.margin, 0.015, 100000, mc);

            out[i] = RowResult{sense.margin, fail, intact};
            ctx.metric(ctx.key() + ".sense_margin", sense.margin);
            ctx.metric(ctx.key() + ".mc_fail_rate", fail);
            ctx.metric(ctx.key() + ".data_intact", intact ? 1 : 0);
        });
    }
    sweep.run();

    std::printf("%8s %14s %16s %14s\n", "rows", "sense margin",
                "MC fail rate", "data intact");
    bench::rule();
    for (std::size_t i = 0; i < row_counts.size(); ++i)
        std::printf("%8u %13.3f %16.2e %14s\n", row_counts[i],
                    out[i].margin, out[i].failRate,
                    out[i].intact ? "yes" : "CORRUPTED");

    bench::rule();
    bench::note("With word-line underdrive, up to 64 simultaneously "
                "active rows");
    bench::note("read back intact (matching the fabricated-chip result); "
                "the sense");
    bench::note("margin at a 1.5% VDD amplifier sigma gives a ~0 "
                "Monte-Carlo");
    bench::note("failure rate, consistent with the six-sigma claim.");
    return bench::finish(results, sweep);
}
