/**
 * @file
 * Reproduces Figure 10: in-memory copy-on-write checkpointing overhead
 * for six SPLASH-2 workloads (100k-instruction intervals), comparing the
 * scalar Base, the Base_32 SIMD baseline, and CC_L3.
 */

#include "apps/checkpoint.hh"
#include "bench_util.hh"

using namespace ccache;
using namespace ccache::apps;

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Figure 10: checkpointing performance overhead");
    bench::header("Figure 10: checkpointing performance overhead (%)");

    CheckpointConfig cfg;
    cfg.intervals = 40;

    bench::ResultsWriter results("fig10_checkpoint_overhead");
    results.config("intervals", cfg.intervals);

    std::printf("%-11s %9s %9s %9s\n", "benchmark", "Base", "Base_32",
                "CC_L3");
    bench::rule();

    const char *engines[] = {"base", "base32", "cc_l3"};
    const Engine engine_ids[] = {Engine::Base, Engine::Base32, Engine::Cc};
    auto apps = workload::allSplashApps();

    // One sweep point per (workload, engine) pair.
    std::vector<double> overhead(apps.size() * 3);
    bench::SweepRunner sweep(&results);
    for (std::size_t a = 0; a < apps.size(); ++a) {
        for (int m = 0; m < 3; ++m) {
            auto app = apps[a];
            Engine e = engine_ids[m];
            std::size_t slot = a * 3 + static_cast<std::size_t>(m);
            std::string key = std::string(workload::toString(app)) + "." +
                engines[m];
            sweep.add(key,
                      [&, app, e, slot, key](bench::SweepContext &ctx) {
                          sim::System sys;
                          Checkpoint ck(app, cfg);
                          auto res = ck.run(sys, e);
                          overhead[slot] = res.overheadPct();
                          ctx.metric(key + ".overhead_pct",
                                     overhead[slot]);
                      });
        }
    }
    sweep.run();

    double sum[3] = {0, 0, 0};
    for (std::size_t a = 0; a < apps.size(); ++a) {
        for (int m = 0; m < 3; ++m)
            sum[m] += overhead[a * 3 + static_cast<std::size_t>(m)];
        std::printf("%-11s %8.1f%% %8.1f%% %8.1f%%\n",
                    workload::toString(apps[a]), overhead[a * 3],
                    overhead[a * 3 + 1], overhead[a * 3 + 2]);
    }

    bench::rule();
    std::printf("%-11s %8.1f%% %8.1f%% %8.1f%%\n", "average",
                sum[0] / apps.size(), sum[1] / apps.size(),
                sum[2] / apps.size());
    for (int m = 0; m < 3; ++m)
        results.metric(std::string("average.") + engines[m] +
                           ".overhead_pct",
                       sum[m] / apps.size());
    bench::note("");
    bench::note("Paper: up to 68% without SIMD, 30% average with Base_32,");
    bench::note("and a mere 6% with Compute Caches (perfect operand");
    bench::note("locality: checkpoint copies are page-aligned).");
    return bench::finish(results, sweep);
}
