/**
 * @file
 * Reproduces Figure 10: in-memory copy-on-write checkpointing overhead
 * for six SPLASH-2 workloads (100k-instruction intervals), comparing the
 * scalar Base, the Base_32 SIMD baseline, and CC_L3.
 */

#include "apps/checkpoint.hh"
#include "bench_util.hh"

using namespace ccache;
using namespace ccache::apps;

int
main()
{
    bench::header("Figure 10: checkpointing performance overhead (%)");

    CheckpointConfig cfg;
    cfg.intervals = 40;

    bench::ResultsWriter results("fig10_checkpoint_overhead");
    results.config("intervals", cfg.intervals);

    std::printf("%-11s %9s %9s %9s\n", "benchmark", "Base", "Base_32",
                "CC_L3");
    bench::rule();

    const char *engines[] = {"base", "base32", "cc_l3"};
    double sum[3] = {0, 0, 0};
    auto apps = workload::allSplashApps();
    for (auto app : apps) {
        double overhead[3];
        int m = 0;
        for (Engine e : {Engine::Base, Engine::Base32, Engine::Cc}) {
            sim::System sys;
            Checkpoint ck(app, cfg);
            auto res = ck.run(sys, e);
            overhead[m] = res.overheadPct();
            sum[m] += overhead[m];
            results.metric(std::string(workload::toString(app)) + "." +
                               engines[m] + ".overhead_pct",
                           overhead[m]);
            ++m;
        }
        std::printf("%-11s %8.1f%% %8.1f%% %8.1f%%\n",
                    workload::toString(app), overhead[0], overhead[1],
                    overhead[2]);
    }

    bench::rule();
    std::printf("%-11s %8.1f%% %8.1f%% %8.1f%%\n", "average",
                sum[0] / apps.size(), sum[1] / apps.size(),
                sum[2] / apps.size());
    for (int m = 0; m < 3; ++m)
        results.metric(std::string("average.") + engines[m] +
                           ".overhead_pct",
                       sum[m] / apps.size());
    results.write();
    bench::note("");
    bench::note("Paper: up to 68% without SIMD, 30% average with Base_32,");
    bench::note("and a mere 6% with Compute Caches (perfect operand");
    bench::note("locality: checkpoint copies are page-aligned).");
    return 0;
}
