/**
 * @file
 * Serving-layer scheduler sweep (DESIGN.md §11): offered load x tenant
 * count x scheduling policy, on synthetic multi-tenant Poisson traffic.
 *
 * Two claims are gated here (bench::finish ok flag):
 *
 *  1. Batching pays: at saturating load the Batch policy's throughput
 *     is at least 2x the FifoSerial serial-issue baseline — the wave
 *     coalescing recovers the paper's §IV-E sub-array concurrency.
 *  2. QoS holds: with an adversarial background tenant flooding the
 *     queue, the high-priority tenant's p99 queueing latency stays
 *     bounded (DRR weights + pending caps + starvation guard).
 *
 * Every sweep point is an independent simulated-time run seeded from
 * its key, so the result file is byte-identical at any thread count
 * and under interrupted+resumed ccbench runs (§8).
 */

#include <string>
#include <vector>

#include "bench_util.hh"
#include "serve/server.hh"
#include "sim/system.hh"
#include "workload/traffic_gen.hh"

namespace {

using namespace ccache;

struct PointOutcome
{
    std::string key;
    serve::ServeReport report;
};

/** Tenant traffic mix: tenant 0 is the small-request interactive
 *  tenant; the rest are heavier background tenants with some
 *  scattered and multi-chunk (cmp > 512 B) requests. */
workload::TrafficParams
makeTraffic(unsigned tenants, double load_rpkc, std::size_t requests,
            std::uint64_t seed)
{
    workload::TrafficParams params;
    params.totalRequests = requests;
    params.seed = seed;
    for (unsigned i = 0; i < tenants; ++i) {
        workload::TenantTraffic t;
        t.name = "t" + std::to_string(i);
        if (i == 0) {
            t.requestsPerKilocycle = 0.2 * load_rpkc;
            t.minBytes = 256;
            t.maxBytes = 1024;
        } else {
            t.requestsPerKilocycle = 0.8 * load_rpkc / (tenants - 1);
            t.minBytes = 256;
            t.maxBytes = 1024;
            t.weightCmp = 0.5;        // sizes > 512 B chunk (multi-slot)
            t.scatterFraction = 0.05; // exercises the near-place fallback
        }
        params.tenants.push_back(std::move(t));
    }
    if (tenants == 1)
        params.tenants[0].requestsPerKilocycle = load_rpkc;
    return params;
}

std::vector<serve::TenantQos>
makeQos(unsigned tenants)
{
    std::vector<serve::TenantQos> qos;
    for (unsigned i = 0; i < tenants; ++i) {
        serve::TenantQos t;
        t.name = "t" + std::to_string(i);
        t.weight = i == 0 ? 4 : 1;
        t.maxPending = i == 0 ? 64 : 48;
        qos.push_back(std::move(t));
    }
    return qos;
}

serve::ServeReport
runPoint(unsigned tenants, double load_rpkc, serve::ServePolicy policy,
         std::size_t requests, std::uint64_t seed)
{
    sim::System sys;
    serve::ServerParams params;
    params.sched.policy = policy;
    params.allocGroups = 256;
    params.sched.waveSize = 32;
    params.sched.perTenantWaveCap = 16;
    params.tenants = makeQos(tenants);
    serve::CcServer server(sys, params);
    return server.run(
        generateTraffic(makeTraffic(tenants, load_rpkc, requests, seed)));
}

} // namespace

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Multi-tenant DRR batch scheduler vs FIFO at saturation");
    bench::header("Serving-layer scheduler: load x tenants x policy");
    bench::note("open-loop Poisson traffic; throughput in requests per "
                "million cycles (rpMc)");

    const unsigned kTenantCounts[] = {2, 4};
    const double kLoads[] = {1.0, 4.0, 64.0};   // requests / kilocycle
    const serve::ServePolicy kPolicies[] = {serve::ServePolicy::FifoSerial,
                                            serve::ServePolicy::Batch};
    constexpr std::size_t kRequests = 1200;

    bench::ResultsWriter results("serve_scheduler");
    bench::SweepRunner sweep(&results);

    std::vector<PointOutcome> grid;
    for (unsigned tenants : kTenantCounts)
        for (double load : kLoads)
            for (serve::ServePolicy policy : kPolicies)
                grid.push_back(
                    {"t" + std::to_string(tenants) + ".load" +
                         std::to_string(static_cast<int>(load)) + "." +
                         serve::toString(policy),
                     {}});

    std::size_t g = 0;
    for (unsigned tenants : kTenantCounts) {
        for (double load : kLoads) {
            for (serve::ServePolicy policy : kPolicies) {
                PointOutcome &slot = grid[g++];
                sweep.add(slot.key, [&slot, tenants, load,
                                     policy](bench::SweepContext &ctx) {
                    slot.report = runPoint(tenants, load, policy,
                                           kRequests, ctx.seed());
                    const serve::ServeReport &r = slot.report;
                    ctx.config(slot.key + ".tenants", tenants);
                    ctx.config(slot.key + ".load_rpkc", load);
                    ctx.metric(slot.key + ".throughput_rpmc",
                               r.throughputRpmc);
                    ctx.metric(slot.key + ".served",
                               static_cast<double>(r.served));
                    ctx.metric(slot.key + ".rejected",
                               static_cast<double>(r.rejected));
                    ctx.metric(slot.key + ".hi.p99_queue_cycles",
                               static_cast<double>(
                                   r.tenants[0].p99QueueCycles));
                });
            }
        }
    }

    // Adversarial QoS point: a low-rate high-priority tenant against a
    // background tenant offering ~10x the service capacity.
    PointOutcome qos{"qos.adversarial", {}};
    sweep.add(qos.key, [&qos](bench::SweepContext &ctx) {
        workload::TrafficParams traffic;
        traffic.totalRequests = 600;
        traffic.seed = ctx.seed();
        workload::TenantTraffic hi;
        hi.name = "hi";
        hi.requestsPerKilocycle = 0.5;
        hi.minBytes = 256;
        hi.maxBytes = 1024;
        workload::TenantTraffic bg;
        bg.name = "bg";
        bg.requestsPerKilocycle = 40.0;
        bg.minBytes = 4096;
        bg.maxBytes = 16384;
        bg.weightCmp = 0.25;
        bg.scatterFraction = 0.3;
        traffic.tenants = {hi, bg};

        sim::System sys;
        serve::ServerParams params;
        params.tenants = {serve::TenantQos{"hi", 8, 64},
                          serve::TenantQos{"bg", 1, 32}};
        serve::CcServer server(sys, params);
        qos.report = server.run(generateTraffic(traffic));

        const serve::ServeReport &r = qos.report;
        ctx.metric("qos.hi.p99_queue_cycles",
                   static_cast<double>(r.tenants[0].p99QueueCycles));
        ctx.metric("qos.hi.p999_queue_cycles",
                   static_cast<double>(r.tenants[0].p999QueueCycles));
        ctx.metric("qos.bg.p99_queue_cycles",
                   static_cast<double>(r.tenants[1].p99QueueCycles));
        ctx.metric("qos.rejected", static_cast<double>(r.rejected));
        ctx.metric("qos.throughput_rpmc", r.throughputRpmc);
        ctx.statsJson("qos.adversarial", sys.stats().dumpJson());
    });

    sweep.run();

    // Tables + claim gates (after the barrier; pure readback).
    bench::rule();
    std::printf("%-24s %12s %10s %10s %16s\n", "point", "thr (rpMc)",
                "served", "rejected", "hi p99 queue");
    bench::rule();
    bool ok = true;
    for (std::size_t i = 0; i < grid.size(); i += 2) {
        const serve::ServeReport &fifo = grid[i].report;
        const serve::ServeReport &batch = grid[i + 1].report;
        for (const PointOutcome *p : {&grid[i], &grid[i + 1]})
            std::printf("%-24s %12.2f %10llu %10llu %16llu\n",
                        p->key.c_str(), p->report.throughputRpmc,
                        static_cast<unsigned long long>(p->report.served),
                        static_cast<unsigned long long>(p->report.rejected),
                        static_cast<unsigned long long>(
                            p->report.tenants[0].p99QueueCycles));
        // Claim 1 at the saturating load only (load16 points).
        if (grid[i].key.find(".load64.") != std::string::npos) {
            double speedup = fifo.throughputRpmc > 0.0
                                 ? batch.throughputRpmc / fifo.throughputRpmc
                                 : 0.0;
            std::printf("%-24s %12.2fx\n",
                        (grid[i].key.substr(0, grid[i].key.find(".load")) +
                         ".batch_speedup")
                            .c_str(),
                        speedup);
            if (speedup < 2.0) {
                std::fprintf(stderr,
                             "FAIL: batch speedup %.2fx < 2x at "
                             "saturation (%s)\n",
                             speedup, grid[i].key.c_str());
                ok = false;
            }
        }
    }

    bench::rule();
    std::printf("qos.adversarial: hi p99 queue %llu cycles, bg p99 queue "
                "%llu cycles, %llu rejected\n",
                static_cast<unsigned long long>(
                    qos.report.tenants[0].p99QueueCycles),
                static_cast<unsigned long long>(
                    qos.report.tenants[1].p99QueueCycles),
                static_cast<unsigned long long>(qos.report.rejected));
    // Claim 2: the hi tenant's tail queueing stays below the starvation
    // guard's age bound even while the bg tenant saturates the queue.
    if (qos.report.tenants[0].p99QueueCycles >
        serve::SchedulerParams{}.starvationAgeCycles) {
        std::fprintf(stderr,
                     "FAIL: hi-tenant p99 queueing %llu exceeds the "
                     "starvation bound\n",
                     static_cast<unsigned long long>(
                         qos.report.tenants[0].p99QueueCycles));
        ok = false;
    }
    if (qos.report.rejected == 0) {
        std::fprintf(stderr, "FAIL: adversarial load shed nothing — "
                             "admission control untested\n");
        ok = false;
    }

    return bench::finish(results, sweep, ok);
}
