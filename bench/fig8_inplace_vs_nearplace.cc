/**
 * @file
 * Reproduces Figure 8(a): total energy of in-place vs near-place Compute
 * Caches for 4 KB operands, plus the throughput comparison Section IV-J
 * quotes (in-place ~3.6x total energy and ~16x throughput advantage).
 */

#include <cmath>

#include "bench_util.hh"
#include "sim/system.hh"

using namespace ccache;
using namespace ccache::sim;

namespace {

constexpr std::size_t kN = 4096;
constexpr Addr kA = 0x100000;
constexpr Addr kB = 0x110000;
constexpr Addr kD = 0x120000;
constexpr Addr kKey = 0x130000;

struct Run
{
    KernelResult kernel;
    energy::EnergyTotals totals;
};

Run
runKernel(BulkKernel kernel, bool near_place)
{
    System sys;
    std::vector<std::uint8_t> da(kN), db(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        da[i] = static_cast<std::uint8_t>(i * 3 + 7);
        db[i] = static_cast<std::uint8_t>(i * 11 + 1);
    }
    std::vector<std::uint8_t> key(da.begin(), da.begin() + 64);
    sys.load(kA, da.data(), kN);
    sys.load(kB, db.data(), kN);
    sys.load(kKey, key.data(), key.size());
    for (Addr a : {kA, kB, kD})
        sys.warm(CacheLevel::L3, 0, a, kN);
    sys.warm(CacheLevel::L3, 0, kKey, 64);
    sys.resetMetrics();

    sys.cc().mutableParams().forceLevel = CacheLevel::L3;
    sys.cc().mutableParams().forceNearPlace = near_place;

    Addr b = kernel == BulkKernel::Search ? kKey : kB;
    Run run;
    run.kernel = sys.ccEngine().run(kernel, 0, kA, b, kD, kN);
    sys.advance(0, run.kernel.cycles);
    run.totals = sys.totals();
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Figure 8a: in-place vs near-place energy & throughput");
    bench::header("Figure 8a: in-place vs near-place Compute Cache, "
                  "4 KB operands");

    bench::ResultsWriter results("fig8_inplace_vs_nearplace");
    results.config("operand_bytes", kN);
    results.config("cc_level", "L3");

    std::printf("%-9s %16s %16s %13s %13s\n", "kernel",
                "in-place E (nJ)", "near-place E (nJ)", "E ratio",
                "thpt ratio");
    bench::rule();

    const BulkKernel kernels[] = {BulkKernel::Copy, BulkKernel::Compare,
                                  BulkKernel::Search,
                                  BulkKernel::LogicalOr};

    // One sweep point per kernel, running the in-place/near-place pair.
    std::vector<Run> in_runs(4), near_runs(4);
    bench::SweepRunner sweep(&results);
    for (std::size_t i = 0; i < 4; ++i) {
        BulkKernel k = kernels[i];
        sweep.add(toString(k), [&, i, k](bench::SweepContext &ctx) {
            in_runs[i] = runKernel(k, false);
            near_runs[i] = runKernel(k, true);
            double e_ratio =
                near_runs[i].totals.total() / in_runs[i].totals.total();
            double t_ratio = in_runs[i].kernel.blockOpsPerSecond() /
                near_runs[i].kernel.blockOpsPerSecond();
            std::string key = toString(k);
            ctx.metric(key + ".inplace_total_nj",
                       in_runs[i].totals.total() / 1e3);
            ctx.metric(key + ".nearplace_total_nj",
                       near_runs[i].totals.total() / 1e3);
            ctx.metric(key + ".energy_ratio", e_ratio);
            ctx.metric(key + ".throughput_ratio", t_ratio);
        });
    }
    sweep.run();

    double e_product = 1.0, t_product = 1.0;
    for (std::size_t i = 0; i < 4; ++i) {
        const Run &in_place = in_runs[i];
        const Run &near_place = near_runs[i];
        double e_ratio =
            near_place.totals.total() / in_place.totals.total();
        double t_ratio = in_place.kernel.blockOpsPerSecond() /
            near_place.kernel.blockOpsPerSecond();
        e_product *= e_ratio;
        t_product *= t_ratio;
        std::printf("%-9s %16.0f %16.0f %12.1fx %12.1fx\n",
                    toString(kernels[i]), in_place.totals.total() / 1e3,
                    near_place.totals.total() / 1e3, e_ratio, t_ratio);
    }

    bench::rule();
    std::printf("geomean: energy advantage %.1fx, throughput advantage "
                "%.1fx\n",
                std::pow(e_product, 0.25), std::pow(t_product, 0.25));
    results.metric("geomean.energy_ratio", std::pow(e_product, 0.25));
    results.metric("geomean.throughput_ratio", std::pow(t_product, 0.25));
    bench::note("Paper (Section VI-D): in-place gives 3.6x total energy "
                "and 16x");
    bench::note("throughput over near-place for 4 KB operands; near-place "
                "still");
    bench::note("beats the conventional baseline.");
    return bench::finish(results, sweep);
}
