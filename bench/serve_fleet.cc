/**
 * @file
 * Fleet-scale serving sweep (DESIGN.md §15): a 4-shard fleet under
 * Zipfian hot-spot traffic over a multi-million-key space, exercising
 * the fleet controller — cross-shard fan-out/fan-in, live tenant
 * migration, and global backpressure — with golden verification on
 * every commit.
 *
 * Gated claims (bench::finish ok flag):
 *
 *  1. Availability holds fleet-wide: every scenario (hot-spot surge,
 *     hot-shard kill during the surge, fan-out under chaos) keeps
 *     completion availability >= 0.99 in every phase (classified by
 *     offered arrival).
 *  2. Correctness: golden mismatches == 0 everywhere — Zipf-keyed
 *     operands, migrated requests, transplants, and fan-out legs are
 *     all verified bit-for-bit against the host reference.
 *  3. Migration is live: the hot-spot scenario performs at least one
 *     migration, and the interactive tenant's p99.9 sojourn stays
 *     under the admission deadline while it happens.
 *  4. Backpressure is QoS-ordered: at the fleet budget, the weight-1
 *     tenant takes every global_queue_full shed; the hi-QoS tenant
 *     takes none.
 *  5. Conservation: served + shed == offered in every scenario (fan-out
 *     parents count once; legs roll up through the fan-in barrier).
 *
 * Every scenario is an independent simulated-time run seeded from its
 * key, so the result file is byte-identical at any thread count (§8).
 */

#include <string>
#include <vector>

#include "bench_util.hh"
#include "serve/shard_router.hh"
#include "sim/system.hh"
#include "workload/traffic_gen.hh"

namespace {

using namespace ccache;

constexpr unsigned kShards = 4;
constexpr unsigned kTenants = 4;
constexpr std::size_t kRequests = 7200;
constexpr double kLoadRpkc = 24.0;   ///< aggregate; ~6 rpkc per shard
constexpr Cycles kDeadline = 60000;
constexpr std::size_t kKeySpace = 2'000'000;   ///< Zipf ranks

/** Hot-spot surge window: t1's arrival rate multiplies 3x here, which
 *  saturates its home shard — the signal the detector migrates on. */
constexpr Cycles kSurgeStart = 30000;
constexpr Cycles kSurgeEnd = 130000;

struct Scenario
{
    std::string key;
    serve::FleetReport report;
    std::vector<unsigned> homeShard;
    std::vector<std::string> phaseNames;
    /** Availability floor, aggregate and per phase. The backpressure
     *  scenario is deliberately overloaded past the fleet budget —
     *  shedding is its correct behaviour, so its floor is lower. */
    double minAvailability = 0.99;
};

/** Zipf-keyed multi-tenant traffic; @p surgeTenant (if >= 0) gets a
 *  3x arrival surge over [kSurgeStart, kSurgeEnd) — the hot-spot
 *  signal. @p loadScale scales every tenant's rate (fan-out legs
 *  multiply dispatch work, so that scenario runs lighter). */
workload::TrafficParams
makeTraffic(std::uint64_t seed, int surgeTenant, double fanoutFraction,
            double loadScale)
{
    workload::TrafficParams traffic;
    traffic.totalRequests = kRequests;
    traffic.seed = seed;
    traffic.zipfKeys = kKeySpace;
    traffic.keyExponent = 0.99;
    for (unsigned i = 0; i < kTenants; ++i) {
        workload::TenantTraffic t;
        t.name = "t" + std::to_string(i);
        if (i == 0) {
            t.requestsPerKilocycle = 0.25 * kLoadRpkc * loadScale;
            t.minBytes = 256;
            t.maxBytes = 1024;
        } else {
            t.requestsPerKilocycle =
                0.75 * kLoadRpkc * loadScale / (kTenants - 1);
            t.minBytes = 1024;
            t.maxBytes = 8192;
            t.weightCmp = 0.5;
        }
        if (static_cast<int>(i) == surgeTenant) {
            t.phases.push_back({kSurgeStart, 3.0});
            t.phases.push_back({kSurgeEnd, 1.0});
        }
        t.fanoutFraction = fanoutFraction;
        t.fanoutLegs = 3;
        traffic.tenants.push_back(std::move(t));
    }
    return traffic;
}

serve::ServerParams
makeServe(const std::vector<unsigned> &weights)
{
    serve::ServerParams params;
    params.tenants.clear();
    for (unsigned i = 0; i < kTenants; ++i) {
        serve::TenantQos q;
        q.name = "t" + std::to_string(i);
        q.weight = weights[i];
        params.tenants.push_back(std::move(q));
    }
    return params;
}

serve::RouterParams
makeRouter(std::uint64_t seed, bool rebalance, std::size_t globalCap,
           const std::vector<Cycles> &phaseBounds)
{
    serve::RouterParams router;
    router.shards = kShards;
    router.admissionDeadline = kDeadline;
    router.shardTimeout = 20000;
    router.retry.seed = seed;
    router.hedgeAge = 2500;
    router.verifyGolden = true;
    router.patternSeed = seed;
    router.phaseBoundaries = phaseBounds;
    if (rebalance) {
        router.rebalancePeriod = 5000;
        router.hotspotRatio = 3.0;
        router.hotspotMinLoad = 12.0;
        router.migrationDrain = 20000;
        router.migrationCooldown = 60000;
    }
    router.globalQueueCap = globalCap;
    return router;
}

template <typename ChaosFor>
void
runScenario(Scenario &slot, const std::vector<unsigned> &weights,
            std::uint64_t seed, int surgeTenant, double fanoutFraction,
            double loadScale, bool rebalance, std::size_t globalCap,
            const std::vector<Cycles> &phaseBounds, ChaosFor &&chaosFor)
{
    serve::ShardRouter fleet(
        sim::SystemConfig{}, makeServe(weights),
        makeRouter(seed, rebalance, globalCap, phaseBounds));
    for (unsigned i = 0; i < kTenants; ++i)
        slot.homeShard.push_back(fleet.failoverOrder(i)[0]);
    serve::ChaosSchedule chaos = chaosFor(slot.homeShard);
    slot.report = fleet.run(generateTraffic(makeTraffic(
                                seed, surgeTenant, fanoutFraction,
                                loadScale)),
                            chaos);
}

serve::ChaosEvent
event(serve::ChaosKind kind, unsigned shard, Cycles start,
      Cycles duration, double magnitude = 4.0)
{
    serve::ChaosEvent ev;
    ev.kind = kind;
    ev.shard = shard;
    ev.start = start;
    ev.duration = duration;
    ev.magnitude = magnitude;
    return ev;
}

void
emitMetrics(bench::SweepContext &ctx, const Scenario &slot)
{
    const serve::FleetReport &r = slot.report;
    ctx.metric(slot.key + ".availability", r.availability);
    ctx.metric(slot.key + ".served", static_cast<double>(r.served));
    ctx.metric(slot.key + ".shed", static_cast<double>(r.shed));
    ctx.metric(slot.key + ".golden_mismatch",
               static_cast<double>(r.goldenMismatch));
    ctx.metric(slot.key + ".migrations",
               static_cast<double>(r.migrations));
    ctx.metric(slot.key + ".dual_dispatch",
               static_cast<double>(r.migrationDualDispatch));
    ctx.metric(slot.key + ".transplants",
               static_cast<double>(r.migrationTransplants));
    ctx.metric(slot.key + ".fanout_parents",
               static_cast<double>(r.fanoutParents));
    ctx.metric(slot.key + ".fanout_partial",
               static_cast<double>(r.fanoutPartial));
    ctx.metric(slot.key + ".global_evictions",
               static_cast<double>(r.globalEvictions));
    ctx.metric(slot.key + ".global_sheds",
               static_cast<double>(r.globalSheds));
    ctx.metric(slot.key + ".hi.p999_sojourn_cycles",
               static_cast<double>(r.tenants[0].p999SojournCycles));
    for (std::size_t p = 0; p < slot.phaseNames.size(); ++p) {
        ctx.metric(slot.key + ".phase." + slot.phaseNames[p] +
                       ".availability",
                   r.phases[p].availability);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Fleet controller: fan-out, migration, global backpressure");
    bench::header(
        "Fleet controller: Zipf hot-spot traffic over a 4-shard fleet");
    bench::note("2M-key Zipf(0.99) space; every commit golden-verified; "
                "fan-out, migration and backpressure active");

    bench::ResultsWriter results("serve_fleet");
    bench::SweepRunner sweep(&results);

    // Zipf-keyed steady state: no chaos, no surge — the controller
    // must not misfire (no spurious migrations or sheds).
    Scenario zipf{"zipf_baseline", {}, {}, {}};
    sweep.add(zipf.key, [&zipf](bench::SweepContext &ctx) {
        runScenario(zipf, {4, 2, 2, 1}, ctx.seed(), -1, 0.0, 1.0, true,
                    0, {}, [](const std::vector<unsigned> &) {
                        return serve::ChaosSchedule{};
                    });
        emitMetrics(ctx, zipf);
    });

    // Hot-spot surge onto t1: the detector must migrate the tenant off
    // its saturated home and the hi-QoS tail must stay bounded.
    Scenario hotspot{"hotspot_migrate", {}, {},
                     {"pre_surge", "surge", "post_surge"}};
    sweep.add(hotspot.key, [&hotspot](bench::SweepContext &ctx) {
        runScenario(hotspot, {4, 2, 2, 1}, ctx.seed(), 1, 0.0, 1.0,
                    true, 0, {kSurgeStart, kSurgeEnd},
                    [](const std::vector<unsigned> &) {
                        return serve::ChaosSchedule{};
                    });
        emitMetrics(ctx, hotspot);
    });

    // Kill the surging tenant's home shard in the middle of the surge:
    // migration + failover + dual dispatch must hold availability
    // through the compound event. Runs at 0.9x load: the outage folds
    // four shards' worth of traffic onto three, and the survivors need
    // that headroom to absorb the rerouted surge within the deadline.
    Scenario kill{"kill_hotspot_recover", {}, {},
                  {"pre_kill", "outage", "recovery"}};
    sweep.add(kill.key, [&kill](bench::SweepContext &ctx) {
        runScenario(kill, {4, 2, 2, 1}, ctx.seed(), 1, 0.0, 0.9, true,
                    0, {60000, 105000},
                    [](const std::vector<unsigned> &home) {
                        serve::ChaosSchedule chaos;
                        chaos.events.push_back(
                            event(serve::ChaosKind::Crash, home[1],
                                  60000, 45000));
                        chaos.canonicalize();
                        return chaos;
                    });
        emitMetrics(ctx, kill);
    });

    // Fan-out under chaos: 20% of requests span 3 shards; a slow storm
    // hits one leg's shard. Legs retry/hedge independently; the barrier
    // must never commit a partial answer as a success.
    Scenario fanout{"fanout_chaos", {}, {},
                    {"pre_storm", "storm", "post_storm"}};
    sweep.add(fanout.key, [&fanout](bench::SweepContext &ctx) {
        runScenario(fanout, {4, 2, 2, 2}, ctx.seed(), -1, 0.2, 0.5,
                    false, 0, {10000, 110000},
                    [](const std::vector<unsigned> &home) {
                        serve::ChaosSchedule chaos;
                        chaos.events.push_back(
                            event(serve::ChaosKind::Slow, home[0], 10000,
                                  100000, 12.0));
                        chaos.canonicalize();
                        return chaos;
                    });
        emitMetrics(ctx, fanout);
    });

    // Global backpressure: a tight fleet-wide budget under the surge.
    // The weight-1 tenant absorbs every budget shed; hi-QoS loses none.
    Scenario budget{"global_backpressure", {}, {}, {}, 0.80};
    sweep.add(budget.key, [&budget](bench::SweepContext &ctx) {
        runScenario(budget, {4, 2, 2, 1}, ctx.seed(), 1, 0.0, 1.0,
                    false, 48, {},
                    [](const std::vector<unsigned> &) {
                        return serve::ChaosSchedule{};
                    });
        emitMetrics(ctx, budget);
    });

    sweep.run();

    bench::rule();
    std::printf("%-20s %12s %8s %8s %6s %6s %6s %6s %8s %14s\n",
                "scenario", "avail", "served", "shed", "migr", "dual",
                "fan", "part", "golden!=", "hi p99.9 (cy)");
    bench::rule();
    bool ok = true;
    const Scenario *all[] = {&zipf, &hotspot, &kill, &fanout, &budget};
    for (const Scenario *s : all) {
        const serve::FleetReport &r = s->report;
        std::printf("%-20s %12.4f %8llu %8llu %6llu %6llu %6llu %6llu "
                    "%8llu %14llu\n",
                    s->key.c_str(), r.availability,
                    static_cast<unsigned long long>(r.served),
                    static_cast<unsigned long long>(r.shed),
                    static_cast<unsigned long long>(r.migrations),
                    static_cast<unsigned long long>(
                        r.migrationDualDispatch),
                    static_cast<unsigned long long>(r.fanoutParents),
                    static_cast<unsigned long long>(r.fanoutPartial),
                    static_cast<unsigned long long>(r.goldenMismatch),
                    static_cast<unsigned long long>(
                        r.tenants[0].p999SojournCycles));

        // Claim 2: never wrong, in any scenario.
        if (r.goldenMismatch != 0) {
            std::fprintf(stderr, "FAIL: %llu golden mismatches in %s\n",
                         static_cast<unsigned long long>(
                             r.goldenMismatch),
                         s->key.c_str());
            ok = false;
        }
        // Claim 5: conservation, with fan-out parents counted once.
        if (r.served + r.shed != r.offered) {
            std::fprintf(stderr,
                         "FAIL: %s leaks requests "
                         "(served+shed != offered)\n",
                         s->key.c_str());
            ok = false;
        }
        // Claim 1: availability holds aggregate and per phase.
        if (r.availability < s->minAvailability) {
            std::fprintf(stderr, "FAIL: %s availability %.4f < %.2f\n",
                         s->key.c_str(), r.availability,
                         s->minAvailability);
            ok = false;
        }
        for (std::size_t p = 0; p < s->phaseNames.size(); ++p) {
            if (r.phases[p].availability < s->minAvailability) {
                std::fprintf(
                    stderr,
                    "FAIL: %s %s-phase availability %.4f < %.2f\n",
                    s->key.c_str(), s->phaseNames[p].c_str(),
                    r.phases[p].availability, s->minAvailability);
                ok = false;
            }
        }
    }

    bench::rule();
    std::printf("%-20s %-10s %12s %8s %8s %8s\n", "scenario", "phase",
                "avail", "offered", "served", "shed");
    for (const Scenario *s : all) {
        for (std::size_t p = 0; p < s->phaseNames.size(); ++p) {
            const serve::FleetReport::PhaseSummary &ph =
                s->report.phases[p];
            std::printf("%-20s %-10s %12.4f %8llu %8llu %8llu\n",
                        s->key.c_str(), s->phaseNames[p].c_str(),
                        ph.availability,
                        static_cast<unsigned long long>(ph.offered),
                        static_cast<unsigned long long>(ph.served),
                        static_cast<unsigned long long>(ph.shed));
        }
    }

    // Claim 3: the hot spot actually migrates, the controller does not
    // misfire at steady state, and the hi-QoS tail stays bounded
    // through the move.
    if (zipf.report.migrations != 0) {
        std::fprintf(stderr,
                     "FAIL: steady state triggered %llu migrations\n",
                     static_cast<unsigned long long>(
                         zipf.report.migrations));
        ok = false;
    }
    if (hotspot.report.migrations == 0) {
        std::fprintf(stderr,
                     "FAIL: hot-spot surge never migrated the tenant\n");
        ok = false;
    }
    if (hotspot.report.tenants[0].p999SojournCycles > kDeadline) {
        std::fprintf(stderr,
                     "FAIL: hi-QoS p99.9 sojourn %llu exceeds the "
                     "%llu-cycle deadline during migration\n",
                     static_cast<unsigned long long>(
                         hotspot.report.tenants[0].p999SojournCycles),
                     static_cast<unsigned long long>(kDeadline));
        ok = false;
    }

    // Fan-out must actually exercise the barrier.
    if (fanout.report.fanoutParents == 0) {
        std::fprintf(stderr, "FAIL: fanout scenario launched no "
                             "multi-shard requests\n");
        ok = false;
    }

    // Claim 4: budget sheds are strictly QoS-ordered.
    const serve::FleetReport &bu = budget.report;
    if (bu.globalEvictions + bu.globalSheds == 0) {
        std::fprintf(stderr, "FAIL: budget scenario never hit the "
                             "fleet-wide cap\n");
        ok = false;
    }
    if (bu.tenants[0].shed != 0) {
        std::fprintf(stderr,
                     "FAIL: backpressure shed hi-QoS traffic\n");
        ok = false;
    }
    if (bu.tenants[3].shed == 0) {
        std::fprintf(stderr, "FAIL: backpressure shed nothing from the "
                             "weight-1 tenant — QoS ordering untested\n");
        ok = false;
    }

    return bench::finish(results, sweep, ok);
}
