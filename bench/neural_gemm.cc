/**
 * @file
 * Bit-serial quantized GEMM throughput (the Neural Cache workload,
 * arXiv 1805.03718) on the Compute Cache arithmetic ISA.
 *
 * For each problem size the int8 x int8 -> int32 product runs on the
 * scalar core, the Base_32 SIMD core and the bit-serial CC engine; the
 * table reports speedup, energy ratio and the headline MACs/cycle,
 * which is also gated against the analytical core model: with G lane
 * groups of 512 lanes each and S bit-line steps per issued instruction
 * sequence, the array cannot exceed lanes-issued-per-step, and a
 * simulation below a small fraction of that bound means the in-place
 * path silently degraded (wrong partition mapping, near-place fallback).
 */

#include <cmath>

#include "apps/gemm.hh"
#include "bench_util.hh"
#include "cc/bitserial.hh"

using namespace ccache;
using namespace ccache::apps;

namespace {

struct GemmOutcome
{
    std::string name;
    double speedupBase = 0.0;    ///< CC vs scalar core
    double speedupBase32 = 0.0;  ///< CC vs Base_32 SIMD
    double energyRatio = 0.0;
    double macsPerCycle = 0.0;
    double analyticBound = 0.0;  ///< MACs/cycle of the pure step model
    double boundFraction = 0.0;  ///< macsPerCycle / analyticBound
    bool functional = false;
};

GemmOutcome
runPoint(const std::string &name, const QuantGemmConfig &cfg)
{
    QuantGemm app(cfg);
    AppRunResult base, base32, cc;
    {
        sim::System sys;
        base = app.run(sys, Engine::Base);
    }
    {
        sim::System sys;
        base32 = app.run(sys, Engine::Base32);
    }
    {
        sim::System sys;
        cc = app.run(sys, Engine::Cc);
    }

    GemmOutcome out;
    out.name = name;
    out.speedupBase = static_cast<double>(base.cycles) /
        static_cast<double>(cc.cycles);
    out.speedupBase32 = static_cast<double>(base32.cycles) /
        static_cast<double>(cc.cycles);
    out.energyRatio = base32.totals.total() / cc.totals.total();
    out.functional =
        base.checksum == cc.checksum && base32.checksum == cc.checksum;

    double macs =
        static_cast<double>(cfg.m) * cfg.k * cfg.n;
    out.macsPerCycle = macs / static_cast<double>(cc.cycles);

    // Analytical core model: the MAC chain for one output row costs
    // k cc_mul sequences plus (k-1) cc_add sequences of bit-line steps;
    // every step computes one bit for all n lanes at once. At one step
    // per cycle the array therefore cannot beat macs / (m * steps).
    constexpr std::size_t w = QuantGemmConfig::kAccBits;
    double steps_per_row = static_cast<double>(
        cfg.k * cc::BitSerialCompute::steps(cc::CcOpcode::Mul, w) +
        (cfg.k - 1) * cc::BitSerialCompute::steps(cc::CcOpcode::Add, w));
    out.analyticBound = macs / (static_cast<double>(cfg.m) * steps_per_row);
    out.boundFraction = out.macsPerCycle / out.analyticBound;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Bit-serial int8 GEMM (Neural Cache MACs) vs scalar/SIMD");
    bench::header("Neural GEMM: bit-serial int8 MAC throughput "
                  "(CC vs Base / Base_32)");

    bench::ResultsWriter results("neural_gemm");
    results.config("weights", "int8");
    results.config("accumulator_bits",
                   static_cast<double>(QuantGemmConfig::kAccBits));

    std::vector<GemmOutcome> outcomes(2);
    bench::SweepRunner sweep(&results);
    sweep.add("n512", [&](bench::SweepContext &ctx) {
        QuantGemmConfig cfg;  // 4 x 16 x 512, one lane group
        cfg.seed = ctx.seed();
        outcomes[0] = runPoint("n512", cfg);
    });
    sweep.add("n1024", [&](bench::SweepContext &ctx) {
        QuantGemmConfig cfg;
        cfg.n = 1024;         // two lane groups per slice row
        cfg.seed = ctx.seed();
        outcomes[1] = runPoint("n1024", cfg);
    });
    sweep.run();

    std::printf("%-8s %10s %12s %13s %11s %10s %10s\n", "size",
                "vs Base", "vs Base_32", "energy ratio", "MACs/cyc",
                "bound", "functional");
    bench::rule();
    bool ok = sweep.errorCount() == 0;
    for (const auto &o : outcomes) {
        if (o.name.empty())
            continue;
        std::printf("%-8s %9.2fx %11.2fx %12.2fx %11.4f %10.4f %10s\n",
                    o.name.c_str(), o.speedupBase, o.speedupBase32,
                    o.energyRatio, o.macsPerCycle, o.analyticBound,
                    o.functional ? "match" : "MISMATCH");
        results.metric(o.name + ".speedup_vs_base", o.speedupBase);
        results.metric(o.name + ".speedup_vs_base32", o.speedupBase32);
        results.metric(o.name + ".energy_ratio", o.energyRatio);
        results.metric(o.name + ".macs_per_cycle", o.macsPerCycle);
        results.metric(o.name + ".analytic_bound_macs_per_cycle",
                       o.analyticBound);
        results.metric(o.name + ".bound_fraction", o.boundFraction);
        results.metric(o.name + ".functional_match", o.functional ? 1 : 0);

        // Throughput gate against the analytical model: staying under
        // the bound proves the cycle model charges every bit-line step;
        // falling below 1% of it means the in-place path degraded.
        if (!o.functional)
            ok = false;
        if (o.boundFraction > 1.0 || o.boundFraction < 0.01) {
            std::fprintf(stderr,
                         "%s: MACs/cycle %.4f outside (1%%, 100%%] of "
                         "the analytical bound %.4f\n",
                         o.name.c_str(), o.macsPerCycle,
                         o.analyticBound);
            ok = false;
        }
    }
    bench::rule();
    bench::note("");
    bench::note("Bound: one bit-line step per cycle over the cc_mul / "
                "cc_add step counts;");
    bench::note("the simulated throughput includes transpose, broadcast "
                "and stream overheads.");
    return bench::finish(results, sweep, ok);
}
