/**
 * @file
 * Ablation: fault rate vs slowdown, energy and silent-corruption rate
 * for the bit-line compute fault model and its degradation ladder
 * (transient upsets + margin failures on dual-row activations, SECDED
 * check -> bounded retry -> near-place degrade -> discard/refill+RISC).
 *
 * Every configuration runs twice with the same derived seed; the table
 * is only printed when both runs agree bit-for-bit, which doubles as
 * the determinism check the fault subsystem guarantees.
 */

#include <cstdlib>
#include <vector>

#include "bench_util.hh"
#include "cache/hierarchy.hh"
#include "cc/cc_controller.hh"
#include "common/rng.hh"

using namespace ccache;
using namespace ccache::cc;

namespace {

constexpr std::size_t kLen = 4096;  // 64 blocks per instruction
constexpr int kInstrs = 24;

struct RunResult
{
    Cycles latency = 0;
    double energy_pj = 0.0;
    std::uint64_t corrected = 0;
    std::uint64_t retries = 0;
    std::uint64_t degraded = 0;
    std::uint64_t risc = 0;
    std::uint64_t silent = 0;
    std::uint64_t scrubbed = 0;

    bool operator==(const RunResult &) const = default;
};

RunResult
runWorkload(const fault::FaultParams &fp)
{
    energy::EnergyModel em;
    StatRegistry stats;
    cache::Hierarchy hier(cache::HierarchyParams{}, &em, &stats);

    CcControllerParams cp;
    cp.faults = fp;
    CcController ctrl(hier, &em, &stats, cp);

    Rng rng(99);
    std::vector<std::uint8_t> bytes(kLen);
    for (auto &b : bytes)
        b = static_cast<std::uint8_t>(rng.below(256));
    hier.memory().writeBytes(0x100000, bytes.data(), kLen);
    for (auto &b : bytes)
        b = static_cast<std::uint8_t>(rng.below(256));
    hier.memory().writeBytes(0x200000, bytes.data(), kLen);

    RunResult res;
    for (int i = 0; i < kInstrs; ++i) {
        CcInstruction instr = (i % 3 == 0)
            ? CcInstruction::logicalXor(0x100000, 0x200000, 0x300000, kLen)
            : (i % 3 == 1)
                ? CcInstruction::logicalAnd(0x100000, 0x200000, 0x300000,
                                            kLen)
                : CcInstruction::copy(0x100000, 0x400000, kLen);
        auto r = ctrl.execute(0, instr);
        res.latency += r.latency;
        res.retries += r.faultRetries;
        res.degraded += r.faultDegradedOps;
        res.risc += r.faultRiscRecoveries;
    }
    res.energy_pj = em.dynamic().dynamicTotal();
    res.corrected = stats.value("cc.fault.ecc_corrected");
    res.silent = stats.value("cc.fault.silent_corruptions");
    res.scrubbed = stats.value("cc.fault.scrub_corrections") +
        stats.value("cc.fault.scrub_refills");
    return res;
}

struct Row
{
    double rate = 0.0;
    RunResult run;
    bool deterministic = true;
};

void
printRow(const Row &row, const RunResult &base)
{
    const RunResult &a = row.run;
    std::printf("%-11.0e %8.3fx %8.3fx %10llu %8llu %8llu %6llu "
                "%7llu %7llu\n",
                row.rate,
                static_cast<double>(a.latency) /
                    static_cast<double>(base.latency),
                a.energy_pj / base.energy_pj,
                static_cast<unsigned long long>(a.corrected),
                static_cast<unsigned long long>(a.retries),
                static_cast<unsigned long long>(a.degraded),
                static_cast<unsigned long long>(a.risc),
                static_cast<unsigned long long>(a.silent),
                static_cast<unsigned long long>(a.scrubbed));
}

} // namespace

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Fault-injection ladder: rate vs slowdown/energy/corruption");
    bench::header("Ablation: fault rate vs slowdown / energy / silent "
                  "corruption (degradation ladder)");

    bench::ResultsWriter results("ablation_fault");
    results.config("instructions", kInstrs);
    results.config("operand_bytes", kLen);

    const double transient_rates[] = {1e-4, 1e-3, 1e-2, 5e-2, 2e-1};
    const double stuck_rates[] = {1e-3, 1e-2, 1e-1};

    // One sweep point per fault configuration. Each point's injector
    // seed is its derived shard seed, and each point runs its workload
    // twice to assert the injector's determinism.
    RunResult base;
    Row transient[5], stuck[3];
    bench::SweepRunner sweep(&results);
    sweep.add("disabled", [&](bench::SweepContext &) {
        base = runWorkload(fault::FaultParams{});
    });
    for (int i = 0; i < 5; ++i) {
        double rate = transient_rates[i];
        char key[48];
        std::snprintf(key, sizeof key, "transient_%.0e", rate);
        sweep.add(key, [&, i, rate](bench::SweepContext &ctx) {
            // Transient-dominated: mostly correctable singles, a tail
            // of uncorrectable doubles and aliasing bursts; margin
            // failures scale along at a tenth of the transient rate.
            fault::FaultParams fp;
            fp.enabled = true;
            fp.seed = ctx.seed();
            fp.transientPerBlockOp = rate;
            fp.doubleBitFraction = 0.10;
            fp.burstFraction = 0.02;
            fp.marginFailPerDualRowOp = rate / 10.0;
            fp.backgroundUpsetPerInstr = rate;
            fp.weakSubarrayFraction = 0.05;
            fp.weakSubarrayScale = 4.0;

            transient[i].rate = rate;
            transient[i].run = runWorkload(fp);
            transient[i].deterministic = runWorkload(fp) ==
                transient[i].run;
        });
    }
    for (int i = 0; i < 3; ++i) {
        double rate = stuck_rates[i];
        char key[48];
        std::snprintf(key, sizeof key, "stuck_%.0e", rate);
        sweep.add(key, [&, i, rate](bench::SweepContext &ctx) {
            // Defect-dominated: stuck cells persist across retries, so
            // they exercise the lower rungs -- near-place re-reads
            // correct single-stuck lines, and double-stuck lines fall
            // through to discard/refill+RISC.
            fault::FaultParams fp;
            fp.enabled = true;
            fp.seed = ctx.seed();
            fp.stuckAtPerBlock = rate;
            fp.stuckAtDoubleFraction = 0.3;

            stuck[i].rate = rate;
            stuck[i].run = runWorkload(fp);
            stuck[i].deterministic = runWorkload(fp) == stuck[i].run;
        });
    }
    sweep.run();

    for (const Row &row : transient) {
        if (!row.deterministic) {
            std::fprintf(stderr,
                         "FAIL: two fixed-seed runs diverged at rate "
                         "%.1e\n", row.rate);
            return EXIT_FAILURE;
        }
    }
    for (const Row &row : stuck) {
        if (!row.deterministic) {
            std::fprintf(stderr,
                         "FAIL: two fixed-seed runs diverged at defect "
                         "rate %.1e\n", row.rate);
            return EXIT_FAILURE;
        }
    }

    auto record = [&results, &base](const std::string &key,
                                    const RunResult &a) {
        results.metric(key + ".slowdown",
                       static_cast<double>(a.latency) /
                           static_cast<double>(base.latency));
        results.metric(key + ".energy_ratio",
                       a.energy_pj / base.energy_pj);
        results.metric(key + ".retries", static_cast<double>(a.retries));
        results.metric(key + ".degraded",
                       static_cast<double>(a.degraded));
        results.metric(key + ".risc_recoveries",
                       static_cast<double>(a.risc));
        results.metric(key + ".silent_corruptions",
                       static_cast<double>(a.silent));
    };

    std::printf("workload: %d instructions x %zu bytes (xor/and/copy "
                "mix), per-point derived seed\n"
                "ladder: SECDED check -> retry x2 -> near-place -> "
                "discard+refill+RISC\n\n",
                kInstrs, kLen);
    std::printf("%-11s %9s %9s %10s %8s %8s %6s %7s %7s\n", "fault rate",
                "slowdown", "energy", "corrected", "retries", "degraded",
                "RISC", "silent", "scrub");
    bench::rule();
    std::printf("%-11s %8.3fx %8.3fx %10s %8s %8s %6s %7s %7s\n",
                "disabled", 1.0, 1.0, "-", "-", "-", "-", "-", "-");
    for (const Row &row : transient) {
        printRow(row, base);
        char key[48];
        std::snprintf(key, sizeof key, "transient_%.0e", row.rate);
        record(key, row.run);
    }

    std::printf("\nstuck-at cells (30%% of defective lines have two "
                "stuck bits):\n");
    std::printf("%-11s %9s %9s %10s %8s %8s %6s %7s %7s\n", "defect rate",
                "slowdown", "energy", "corrected", "retries", "degraded",
                "RISC", "silent", "scrub");
    bench::rule();
    for (const Row &row : stuck) {
        printRow(row, base);
        char key[48];
        std::snprintf(key, sizeof key, "stuck_%.0e", row.rate);
        record(key, row.run);
    }

    bench::rule();
    bench::note("slowdown/energy are relative to the injection-disabled");
    bench::note("run. 'silent' counts burst miscorrections that evade");
    bench::note("SECDED (the Section IV-I exposure); at rates where only");
    bench::note("singles/doubles strike it stays zero. Identical numbers");
    bench::note("across the two fixed-seed runs per row (checked above)");
    bench::note("demonstrate the injector's determinism.");
    return bench::finish(results, sweep);
}
