/**
 * @file
 * Ablation: fault rate vs slowdown, energy and silent-corruption rate
 * for the bit-line compute fault model and its degradation ladder
 * (transient upsets + margin failures on dual-row activations, SECDED
 * check -> bounded retry -> near-place degrade -> discard/refill+RISC).
 *
 * Every configuration runs twice with the same seed; the table is only
 * printed when both runs agree bit-for-bit, which doubles as the
 * determinism check the fault subsystem guarantees.
 */

#include <cstdlib>
#include <vector>

#include "bench_util.hh"
#include "cache/hierarchy.hh"
#include "cc/cc_controller.hh"
#include "common/rng.hh"

using namespace ccache;
using namespace ccache::cc;

namespace {

constexpr std::size_t kLen = 4096;  // 64 blocks per instruction
constexpr int kInstrs = 24;

struct RunResult
{
    Cycles latency = 0;
    double energy_pj = 0.0;
    std::uint64_t corrected = 0;
    std::uint64_t retries = 0;
    std::uint64_t degraded = 0;
    std::uint64_t risc = 0;
    std::uint64_t silent = 0;
    std::uint64_t scrubbed = 0;

    bool operator==(const RunResult &) const = default;
};

RunResult
runWorkload(const fault::FaultParams &fp)
{
    energy::EnergyModel em;
    StatRegistry stats;
    cache::Hierarchy hier(cache::HierarchyParams{}, &em, &stats);

    CcControllerParams cp;
    cp.faults = fp;
    CcController ctrl(hier, &em, &stats, cp);

    Rng rng(99);
    std::vector<std::uint8_t> bytes(kLen);
    for (auto &b : bytes)
        b = static_cast<std::uint8_t>(rng.below(256));
    hier.memory().writeBytes(0x100000, bytes.data(), kLen);
    for (auto &b : bytes)
        b = static_cast<std::uint8_t>(rng.below(256));
    hier.memory().writeBytes(0x200000, bytes.data(), kLen);

    RunResult res;
    for (int i = 0; i < kInstrs; ++i) {
        CcInstruction instr = (i % 3 == 0)
            ? CcInstruction::logicalXor(0x100000, 0x200000, 0x300000, kLen)
            : (i % 3 == 1)
                ? CcInstruction::logicalAnd(0x100000, 0x200000, 0x300000,
                                            kLen)
                : CcInstruction::copy(0x100000, 0x400000, kLen);
        auto r = ctrl.execute(0, instr);
        res.latency += r.latency;
        res.retries += r.faultRetries;
        res.degraded += r.faultDegradedOps;
        res.risc += r.faultRiscRecoveries;
    }
    res.energy_pj = em.dynamic().dynamicTotal();
    res.corrected = stats.value("cc.fault.ecc_corrected");
    res.silent = stats.value("cc.fault.silent_corruptions");
    res.scrubbed = stats.value("cc.fault.scrub_corrections") +
        stats.value("cc.fault.scrub_refills");
    return res;
}

} // namespace

int
main()
{
    bench::header("Ablation: fault rate vs slowdown / energy / silent "
                  "corruption (degradation ladder)");

    RunResult base = runWorkload(fault::FaultParams{});

    bench::ResultsWriter results("ablation_fault");
    results.config("instructions", kInstrs);
    results.config("operand_bytes", kLen);
    auto record = [&results](const std::string &key, const RunResult &a,
                             const RunResult &base) {
        results.metric(key + ".slowdown",
                       static_cast<double>(a.latency) /
                           static_cast<double>(base.latency));
        results.metric(key + ".energy_ratio",
                       a.energy_pj / base.energy_pj);
        results.metric(key + ".retries", static_cast<double>(a.retries));
        results.metric(key + ".degraded",
                       static_cast<double>(a.degraded));
        results.metric(key + ".risc_recoveries",
                       static_cast<double>(a.risc));
        results.metric(key + ".silent_corruptions",
                       static_cast<double>(a.silent));
    };

    std::printf("workload: %d instructions x %zu bytes (xor/and/copy "
                "mix), seed fixed\n"
                "ladder: SECDED check -> retry x2 -> near-place -> "
                "discard+refill+RISC\n\n",
                kInstrs, kLen);
    std::printf("%-11s %9s %9s %10s %8s %8s %6s %7s %7s\n", "fault rate",
                "slowdown", "energy", "corrected", "retries", "degraded",
                "RISC", "silent", "scrub");
    bench::rule();
    std::printf("%-11s %8.3fx %8.3fx %10s %8s %8s %6s %7s %7s\n",
                "disabled", 1.0, 1.0, "-", "-", "-", "-", "-", "-");

    // Transient-dominated sweep: mostly correctable singles, a tail of
    // uncorrectable doubles and aliasing bursts; margin failures scale
    // along at a tenth of the transient rate.
    for (double rate : {1e-4, 1e-3, 1e-2, 5e-2, 2e-1}) {
        fault::FaultParams fp;
        fp.enabled = true;
        fp.seed = 31337;
        fp.transientPerBlockOp = rate;
        fp.doubleBitFraction = 0.10;
        fp.burstFraction = 0.02;
        fp.marginFailPerDualRowOp = rate / 10.0;
        fp.backgroundUpsetPerInstr = rate;
        fp.weakSubarrayFraction = 0.05;
        fp.weakSubarrayScale = 4.0;

        RunResult a = runWorkload(fp);
        RunResult b = runWorkload(fp);
        if (!(a == b)) {
            std::fprintf(stderr,
                         "FAIL: two fixed-seed runs diverged at rate "
                         "%.1e\n", rate);
            return EXIT_FAILURE;
        }

        std::printf("%-11.0e %8.3fx %8.3fx %10llu %8llu %8llu %6llu "
                    "%7llu %7llu\n",
                    rate,
                    static_cast<double>(a.latency) /
                        static_cast<double>(base.latency),
                    a.energy_pj / base.energy_pj,
                    static_cast<unsigned long long>(a.corrected),
                    static_cast<unsigned long long>(a.retries),
                    static_cast<unsigned long long>(a.degraded),
                    static_cast<unsigned long long>(a.risc),
                    static_cast<unsigned long long>(a.silent),
                    static_cast<unsigned long long>(a.scrubbed));
        char key[48];
        std::snprintf(key, sizeof key, "transient_%.0e", rate);
        record(key, a, base);
    }

    // Defect-dominated sweep: stuck cells persist across retries, so
    // they exercise the lower rungs -- near-place re-reads correct the
    // single-stuck lines, and double-stuck lines fall through to
    // discard/refill+RISC (after which the remap keeps them healthy).
    std::printf("\nstuck-at cells (30%% of defective lines have two "
                "stuck bits):\n");
    std::printf("%-11s %9s %9s %10s %8s %8s %6s %7s %7s\n", "defect rate",
                "slowdown", "energy", "corrected", "retries", "degraded",
                "RISC", "silent", "scrub");
    bench::rule();
    for (double rate : {1e-3, 1e-2, 1e-1}) {
        fault::FaultParams fp;
        fp.enabled = true;
        fp.seed = 31337;
        fp.stuckAtPerBlock = rate;
        fp.stuckAtDoubleFraction = 0.3;

        RunResult a = runWorkload(fp);
        RunResult b = runWorkload(fp);
        if (!(a == b)) {
            std::fprintf(stderr,
                         "FAIL: two fixed-seed runs diverged at defect "
                         "rate %.1e\n", rate);
            return EXIT_FAILURE;
        }

        std::printf("%-11.0e %8.3fx %8.3fx %10llu %8llu %8llu %6llu "
                    "%7llu %7llu\n",
                    rate,
                    static_cast<double>(a.latency) /
                        static_cast<double>(base.latency),
                    a.energy_pj / base.energy_pj,
                    static_cast<unsigned long long>(a.corrected),
                    static_cast<unsigned long long>(a.retries),
                    static_cast<unsigned long long>(a.degraded),
                    static_cast<unsigned long long>(a.risc),
                    static_cast<unsigned long long>(a.silent),
                    static_cast<unsigned long long>(a.scrubbed));
        char key[48];
        std::snprintf(key, sizeof key, "stuck_%.0e", rate);
        record(key, a, base);
    }
    results.write();

    bench::rule();
    bench::note("slowdown/energy are relative to the injection-disabled");
    bench::note("run. 'silent' counts burst miscorrections that evade");
    bench::note("SECDED (the Section IV-I exposure); at rates where only");
    bench::note("singles/doubles strike it stays zero. Identical numbers");
    bench::note("across the two fixed-seed runs per row (checked above)");
    bench::note("demonstrate the injector's determinism.");
    return 0;
}
