/**
 * @file
 * Ablation: sensitivity to operand locality. Sweeps the fraction of
 * operations whose destination is page-misaligned (breaking in-place
 * locality) and reports cycles and energy as work shifts from the
 * bit-lines to the near-place logic unit — quantifying how much of the
 * Compute Cache win the Section IV-C software contract protects.
 */

#include "bench_util.hh"
#include "sim/system.hh"

using namespace ccache;
using namespace ccache::sim;

namespace {

struct Outcome
{
    Cycles cycles;
    double dyn_nj;
    std::size_t near_ops;
};

Outcome
runMix(int misaligned_of_8)
{
    System sys;
    const std::size_t n = 4096;
    std::vector<std::uint8_t> data(n, 0x6b);

    auto dst_of = [&](int i) {
        // Misaligned destinations sit half a page off.
        return 0x2000000 + i * 0x20000 +
            (i < misaligned_of_8 ? 0x800 : 0);
    };

    for (int i = 0; i < 8; ++i) {
        Addr src = 0x1000000 + i * 0x20000;
        sys.load(src, data.data(), n);
        sys.warm(CacheLevel::L3, 0, src, n);
        sys.warm(CacheLevel::L3, 0, dst_of(i), n);
    }
    sys.resetMetrics();
    sys.cc().mutableParams().forceLevel = CacheLevel::L3;

    Outcome out{0, 0.0, 0};
    for (int i = 0; i < 8; ++i) {
        Addr src = 0x1000000 + i * 0x20000;
        auto r = sys.cc().execute(
            0, cc::CcInstruction::copy(src, dst_of(i), n));
        out.cycles += r.latency;
        out.near_ops += r.nearPlaceOps;
    }
    out.dyn_nj = sys.energy().dynamic().dynamicTotal() / 1e3;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Section IV-C: operand-misalignment sensitivity sweep");
    bench::header("Ablation: operand-locality sensitivity "
                  "(8 x 4 KB copies)");

    std::printf("%18s %10s %14s %14s\n", "misaligned share", "cycles",
                "dynamic (nJ)", "near-place ops");
    bench::rule();

    bench::ResultsWriter results("ablation_locality");
    const int shares[] = {0, 2, 4, 6, 8};

    // One sweep point per misalignment share; the fully-aligned and
    // fully-misaligned ratios reuse the first and last points' runs.
    Outcome outcomes[5];
    bench::SweepRunner sweep(&results);
    for (int s = 0; s < 5; ++s) {
        int mis = shares[s];
        std::string key =
            "misaligned_" + std::to_string(mis * 100 / 8) + "pct";
        sweep.add(key, [&, s, mis, key](bench::SweepContext &ctx) {
            outcomes[s] = runMix(mis);
            ctx.metric(key + ".cycles",
                       static_cast<double>(outcomes[s].cycles));
            ctx.metric(key + ".dynamic_nj", outcomes[s].dyn_nj);
            ctx.metric(key + ".near_place_ops",
                       static_cast<double>(outcomes[s].near_ops));
        });
    }
    sweep.run();

    for (int s = 0; s < 5; ++s)
        std::printf("%17d%% %10llu %14.0f %14zu\n", shares[s] * 100 / 8,
                    static_cast<unsigned long long>(outcomes[s].cycles),
                    outcomes[s].dyn_nj, outcomes[s].near_ops);

    const Outcome &aligned = outcomes[0];
    const Outcome &broken = outcomes[4];
    bench::rule();
    std::printf("fully misaligned costs %.1fx the cycles and %.1fx the "
                "dynamic energy\n",
                static_cast<double>(broken.cycles) /
                    static_cast<double>(aligned.cycles),
                broken.dyn_nj / aligned.dyn_nj);
    results.metric("fully_misaligned.cycle_ratio",
                   static_cast<double>(broken.cycles) /
                       static_cast<double>(aligned.cycles));
    results.metric("fully_misaligned.energy_ratio",
                   broken.dyn_nj / aligned.dyn_nj);
    bench::note("Page alignment is cheap for software (Section IV-C) and");
    bench::note("protects the entire in-place advantage; every misaligned");
    bench::note("operation falls back to the serialized near-place unit.");
    return bench::finish(results, sweep);
}
