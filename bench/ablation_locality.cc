/**
 * @file
 * Ablation: sensitivity to operand locality. Sweeps the fraction of
 * operations whose destination is page-misaligned (breaking in-place
 * locality) and reports cycles and energy as work shifts from the
 * bit-lines to the near-place logic unit — quantifying how much of the
 * Compute Cache win the Section IV-C software contract protects.
 */

#include "bench_util.hh"
#include "sim/system.hh"

using namespace ccache;
using namespace ccache::sim;

namespace {

struct Outcome
{
    Cycles cycles;
    double dyn_nj;
    std::size_t near_ops;
};

Outcome
runMix(int misaligned_of_8)
{
    System sys;
    const std::size_t n = 4096;
    std::vector<std::uint8_t> data(n, 0x6b);

    auto dst_of = [&](int i) {
        // Misaligned destinations sit half a page off.
        return 0x2000000 + i * 0x20000 +
            (i < misaligned_of_8 ? 0x800 : 0);
    };

    for (int i = 0; i < 8; ++i) {
        Addr src = 0x1000000 + i * 0x20000;
        sys.load(src, data.data(), n);
        sys.warm(CacheLevel::L3, 0, src, n);
        sys.warm(CacheLevel::L3, 0, dst_of(i), n);
    }
    sys.resetMetrics();
    sys.cc().mutableParams().forceLevel = CacheLevel::L3;

    Outcome out{0, 0.0, 0};
    for (int i = 0; i < 8; ++i) {
        Addr src = 0x1000000 + i * 0x20000;
        auto r = sys.cc().execute(
            0, cc::CcInstruction::copy(src, dst_of(i), n));
        out.cycles += r.latency;
        out.near_ops += r.nearPlaceOps;
    }
    out.dyn_nj = sys.energy().dynamic().dynamicTotal() / 1e3;
    return out;
}

} // namespace

int
main()
{
    bench::header("Ablation: operand-locality sensitivity "
                  "(8 x 4 KB copies)");

    std::printf("%18s %10s %14s %14s\n", "misaligned share", "cycles",
                "dynamic (nJ)", "near-place ops");
    bench::rule();

    bench::ResultsWriter results("ablation_locality");
    Outcome aligned = runMix(0);
    for (int mis : {0, 2, 4, 6, 8}) {
        Outcome o = runMix(mis);
        std::printf("%17d%% %10llu %14.0f %14zu\n", mis * 100 / 8,
                    static_cast<unsigned long long>(o.cycles), o.dyn_nj,
                    o.near_ops);
        std::string key =
            "misaligned_" + std::to_string(mis * 100 / 8) + "pct";
        results.metric(key + ".cycles", static_cast<double>(o.cycles));
        results.metric(key + ".dynamic_nj", o.dyn_nj);
        results.metric(key + ".near_place_ops",
                       static_cast<double>(o.near_ops));
    }

    Outcome broken = runMix(8);
    bench::rule();
    std::printf("fully misaligned costs %.1fx the cycles and %.1fx the "
                "dynamic energy\n",
                static_cast<double>(broken.cycles) /
                    static_cast<double>(aligned.cycles),
                broken.dyn_nj / aligned.dyn_nj);
    results.metric("fully_misaligned.cycle_ratio",
                   static_cast<double>(broken.cycles) /
                       static_cast<double>(aligned.cycles));
    results.metric("fully_misaligned.energy_ratio",
                   broken.dyn_nj / aligned.dyn_nj);
    results.write();
    bench::note("Page alignment is cheap for software (Section IV-C) and");
    bench::note("protects the entire in-place advantage; every misaligned");
    bench::note("operation falls back to the serialized near-place unit.");
    return 0;
}
