/**
 * @file
 * Ablation: the Section IV-C trade-off. Mapping all ways of a set to one
 * block partition rules out parallel tag-data access in L1, which would
 * have saved latency on hits but costs 4.7x read energy. This bench
 * quantifies both sides over a sweep of L1 hit rates.
 */

#include "bench_util.hh"
#include "energy/energy_params.hh"

using namespace ccache;

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Section IV-C: serial vs parallel tag-data access");
    bench::header("Ablation: serial vs parallel tag-data access in L1 "
                  "(Section IV-C)");

    energy::EnergyParams ep;
    double serial_read =
        ep.cacheOpEnergy(CacheLevel::L1, energy::CacheOp::Read);
    double parallel_read = serial_read * ep.parallelTagDataFactor;

    // Parallel access reads all 8 ways with the tag match; serial access
    // reads one way after it. The paper quotes 2.5% average speedup for
    // parallel access (SPLASH-2) against 4.7x read energy.
    std::printf("serial tag-data L1 read : %7.0f pJ\n", serial_read);
    std::printf("parallel tag-data read  : %7.0f pJ (%.1fx)\n",
                parallel_read, ep.parallelTagDataFactor);
    std::printf("paper performance cost of serial access: ~2.5%%\n\n");

    bench::ResultsWriter results("ablation_tagdata");
    results.metric("l1.serial_read_pj", serial_read);
    results.metric("l1.parallel_read_pj", parallel_read);
    results.metric("l1.parallel_factor", ep.parallelTagDataFactor);

    // One sweep point per hit rate; the model is closed-form, so this
    // mainly keeps the bench on the same runner as every other grid.
    const std::vector<double> hit_rates{0.3, 0.5, 0.7, 0.9, 0.95, 0.99};
    std::vector<std::pair<double, double>> pj(hit_rates.size());
    bench::SweepRunner sweep(&results);
    for (std::size_t i = 0; i < hit_rates.size(); ++i) {
        double hit = hit_rates[i];
        std::string key = "hit_" +
            std::to_string(static_cast<int>(hit * 100.0)) + "pct";
        sweep.add(key, [&, i, hit](bench::SweepContext &ctx) {
            // Misses pay the tag probe either way; the data-array read
            // burns the extra energy only when data is actually read.
            double serial = hit * serial_read + (1.0 - hit) * 40.0;
            double parallel = hit * parallel_read +
                (1.0 - hit) * parallel_read;  // reads ways regardless
            pj[i] = {serial, parallel};
            ctx.metric(ctx.key() + ".serial_pj_per_access", serial);
            ctx.metric(ctx.key() + ".parallel_pj_per_access", parallel);
        });
    }
    sweep.run();

    std::printf("%-12s %20s %20s\n", "L1 hit rate", "serial (pJ/access)",
                "parallel (pJ/access)");
    bench::rule();
    for (std::size_t i = 0; i < hit_rates.size(); ++i)
        std::printf("%10.0f%% %20.0f %20.0f\n", hit_rates[i] * 100.0,
                    pj[i].first, pj[i].second);

    bench::rule();
    bench::note("Parallel tag-data access burns the full multi-way read "
                "even on");
    bench::note("misses; the 2.5% latency win never recovers the 4.7x "
                "energy, so");
    bench::note("giving it up to get way-invariant operand locality is "
                "a clear win.");
    return bench::finish(results, sweep);
}
