/**
 * @file
 * Ablation: the Section IV-D peak-power cap. Sweeps the maximum number
 * of simultaneously active sub-arrays and reports the completion time of
 * a 16 KB in-place copy at L3, showing where throughput saturates (once
 * the cap exceeds the number of block partitions touched) and how much
 * concurrency can be traded away for peak-power headroom.
 */

#include "bench_util.hh"
#include "sim/system.hh"

using namespace ccache;
using namespace ccache::sim;

namespace {

Cycles
runWithCap(unsigned cap)
{
    SystemConfig cfg;
    cfg.cc.maxActiveSubarrays = cap;
    System sys(cfg);

    const std::size_t n = 16384;
    std::vector<std::uint8_t> data(n, 0x5a);
    sys.load(0x100000, data.data(), n);
    sys.warm(CacheLevel::L3, 0, 0x100000, n);
    sys.warm(CacheLevel::L3, 0, 0x200000, n);
    sys.resetMetrics();
    sys.cc().mutableParams().forceLevel = CacheLevel::L3;

    auto r = sys.ccEngine().copy(0, 0x100000, 0x200000, n);
    return r.cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Section IV-D: active-sub-array power cap sweep");
    bench::header("Ablation: peak-power cap (max active sub-arrays) vs "
                  "16 KB in-place copy");

    bench::ResultsWriter results("ablation_power_cap");
    results.config("copy_bytes", 16384);

    // Each cap is an independent simulation; the uncapped reference is
    // just another sweep point, and the ratios are formed at the
    // barrier once every point has landed in its slot.
    const std::vector<unsigned> caps{1, 2, 4, 8, 16, 32, 64, 128, 0};
    std::vector<Cycles> cycles(caps.size(), 0);
    bench::SweepRunner sweep(&results);
    for (std::size_t i = 0; i < caps.size(); ++i) {
        unsigned cap = caps[i];
        std::string key = cap == 0 ? "cap_none"
                                   : "cap_" + std::to_string(cap);
        sweep.add(key, [&cycles, i, cap](bench::SweepContext &) {
            cycles[i] = runWithCap(cap);
        });
    }
    sweep.run();

    Cycles uncapped = cycles.back();  // the cap == 0 point

    std::printf("%10s %12s %14s\n", "cap", "cycles", "vs uncapped");
    bench::rule();
    for (std::size_t i = 0; i < caps.size(); ++i) {
        unsigned cap = caps[i];
        Cycles c = cycles[i];
        double slowdown = static_cast<double>(c) /
            static_cast<double>(uncapped);
        std::printf("%10s %12llu %13.2fx\n",
                    cap == 0 ? "none" : std::to_string(cap).c_str(),
                    static_cast<unsigned long long>(c), slowdown);
        std::string key = cap == 0 ? "cap_none"
                                   : "cap_" + std::to_string(cap);
        results.metric(key + ".cycles", static_cast<double>(c));
        results.metric(key + ".slowdown_vs_uncapped", slowdown);
    }

    bench::rule();
    bench::note("The shared command bus already serializes issue, so the "
                "cap is free");
    bench::note("once it covers the bus-limited concurrency (~16 here); "
                "below that,");
    bench::note("throughput degrades linearly as peak power is traded "
                "away.");
    return bench::finish(results, sweep);
}
