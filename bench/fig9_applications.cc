/**
 * @file
 * Reproduces Figure 9: application-level speedup (b) and total-energy
 * savings (a) of Compute Caches over the Base_32 SIMD baseline for BMM,
 * WordCount, StringMatch and DB-BitMap.
 */

#include <cmath>

#include "apps/bmm.hh"
#include "apps/dbbitmap.hh"
#include "apps/stringmatch.hh"
#include "apps/wordcount.hh"
#include "bench_util.hh"

using namespace ccache;
using namespace ccache::apps;

namespace {

struct AppOutcome
{
    const char *name;
    double speedup;
    double energyRatio;
    double instrReduction;
    bool functional;
};

template <typename App>
AppOutcome
runApp(const char *name, App &app, double paper_speedup)
{
    AppRunResult base, cc;
    {
        sim::System sys;
        base = app.run(sys, Engine::Base32);
    }
    {
        sim::System sys;
        cc = app.run(sys, Engine::Cc);
    }
    AppOutcome out;
    out.name = name;
    out.speedup = static_cast<double>(base.cycles) /
        static_cast<double>(cc.cycles);
    out.energyRatio = base.totals.total() / cc.totals.total();
    out.instrReduction = 100.0 *
        (1.0 - static_cast<double>(cc.instructions) /
             static_cast<double>(base.instructions));
    out.functional = base.checksum == cc.checksum;
    (void)paper_speedup;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Figure 9: application speedup & energy (BMM, WordCount, ...)");
    bench::header("Figure 9: application speedup and total-energy savings"
                  " (CC vs Base_32)");

    bench::ResultsWriter results("fig9_applications");
    results.config("baseline", "Base_32");

    // One sweep point per application; each constructs its own app and
    // runs the Base_32 / CC pair.
    std::vector<AppOutcome> outcomes(4);
    bench::SweepRunner sweep(&results);
    sweep.add("BMM", [&](bench::SweepContext &) {
        BmmConfig cfg;  // 256 x 256 bit matrices per Section VI-B
        Bmm app(cfg);
        outcomes[0] = runApp("BMM", app, 3.2);
    });
    sweep.add("WordCount", [&](bench::SweepContext &) {
        WordCountConfig cfg;
        cfg.corpusBytes = 256 * 1024;
        cfg.text.vocabulary = 8000;  // ~large dictionary, L3-resident
        WordCount app(cfg);
        outcomes[1] = runApp("WordCount", app, 2.0);
    });
    sweep.add("StringMatch", [&](bench::SweepContext &) {
        StringMatchConfig cfg;
        cfg.textBytes = 64 * 1024;
        StringMatch app(cfg);
        outcomes[2] = runApp("StringMatch", app, 1.5);
    });
    sweep.add("DB-BitMap", [&](bench::SweepContext &) {
        DbBitmapConfig cfg;  // 256 KB bins per Section VI-B
        cfg.numQueries = 8;
        DbBitmap app(cfg);
        outcomes[3] = runApp("DB-BitMap", app, 1.6);
    });
    sweep.run();

    std::printf("%-12s %9s %14s %12s %11s\n", "application", "speedup",
                "energy ratio", "instr red.", "functional");
    bench::rule();
    double s_prod = 1.0, e_prod = 1.0;
    for (const auto &o : outcomes) {
        s_prod *= o.speedup;
        e_prod *= o.energyRatio;
        std::printf("%-12s %8.2fx %13.2fx %11.0f%% %11s\n", o.name,
                    o.speedup, o.energyRatio, o.instrReduction,
                    o.functional ? "match" : "MISMATCH");
        std::string key = o.name;
        results.metric(key + ".speedup", o.speedup);
        results.metric(key + ".energy_ratio", o.energyRatio);
        results.metric(key + ".instr_reduction_pct", o.instrReduction);
        results.metric(key + ".functional_match", o.functional ? 1 : 0);
    }
    bench::rule();
    std::printf("%-12s %8.2fx %13.2fx\n", "geomean",
                std::pow(s_prod, 1.0 / outcomes.size()),
                std::pow(e_prod, 1.0 / outcomes.size()));
    results.metric("geomean.speedup",
                   std::pow(s_prod, 1.0 / outcomes.size()));
    results.metric("geomean.energy_ratio",
                   std::pow(e_prod, 1.0 / outcomes.size()));

    bench::note("");
    bench::note("Paper (Figure 9): BMM 3.2x, WordCount 2.0x, StringMatch "
                "1.5x,");
    bench::note("DB-BitMap 1.6x speedup; average 2.7x energy saving; "
                "instruction");
    bench::note("reductions 98% / 87% / 32% / 43%.");
    return bench::finish(results, sweep);
}
