/**
 * @file
 * Reproduces Figure 7: the microbenchmark study of Section VI-D on 4 KB
 * operands resident in L3.
 *
 *  (a) throughput (64-byte block operations per second),
 *  (b) dynamic energy broken into core / cache-access / cache-ic / noc,
 *  (c) total energy split into static and dynamic, core and uncore.
 */

#include <cmath>

#include "bench_util.hh"
#include "sim/system.hh"

using namespace ccache;
using namespace ccache::sim;

namespace {

constexpr std::size_t kN = 4096;
constexpr Addr kA = 0x100000;
constexpr Addr kB = 0x110000;
constexpr Addr kD = 0x120000;
constexpr Addr kKey = 0x130000;

struct Run
{
    KernelResult kernel;
    energy::EnergyBreakdown dyn;
    energy::EnergyTotals totals;
};

/**
 * Run one kernel on Base_32 or CC_L3. @p stats_out, when non-null,
 * receives the run's full stats dump (for the JSON result file);
 * @p trace_path, when non-null, enables the event-trace sink for the
 * run and writes a Chrome trace-event file there.
 */
Run
runKernel(BulkKernel kernel, bool use_cc, Json *stats_out = nullptr,
          const char *trace_path = nullptr)
{
    System sys;
    std::vector<std::uint8_t> da(kN), db(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        da[i] = static_cast<std::uint8_t>(i * 7 + 1);
        db[i] = static_cast<std::uint8_t>(i * 13 + 5);
    }
    std::vector<std::uint8_t> key(da.begin() + 448, da.begin() + 512);
    sys.load(kA, da.data(), kN);
    sys.load(kB, db.data(), kN);
    sys.load(kKey, key.data(), key.size());

    for (Addr a : {kA, kB, kD})
        sys.warm(CacheLevel::L3, 0, a, kN);
    sys.warm(CacheLevel::L3, 0, kKey, 64);
    sys.resetMetrics();
    if (trace_path)
        sys.trace().enable();

    Addr b = kernel == BulkKernel::Search ? kKey : kB;
    Run run;
    if (use_cc) {
        sys.cc().mutableParams().forceLevel = CacheLevel::L3;
        run.kernel = sys.ccEngine().run(kernel, 0, kA, b, kD, kN);
    } else {
        run.kernel = sys.simd32().run(kernel, 0, kA, b, kD, kN);
    }
    sys.advance(0, run.kernel.cycles);
    run.dyn = sys.energy().dynamic();
    run.totals = sys.totals();
    if (stats_out)
        *stats_out = sys.stats().dumpJson();
    if (trace_path)
        sys.trace().writeFile(trace_path);
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Figure 7: throughput + energy of the four CC kernels");
    const BulkKernel kernels[] = {BulkKernel::Copy, BulkKernel::Compare,
                                  BulkKernel::Search,
                                  BulkKernel::LogicalOr};

    bench::ResultsWriter results("fig7_microbench");
    results.config("operand_bytes", kN);
    results.config("cc_level", "L3");
    results.config("baseline", "Base_32");

    // One sweep point per kernel: each runs the Base_32 / CC_L3 pair
    // into its own slot, and all tables print after the barrier.
    std::vector<Run> base_runs(4), cc_runs(4);
    bench::SweepRunner sweep(&results);
    for (std::size_t i = 0; i < 4; ++i) {
        BulkKernel k = kernels[i];
        sweep.add(toString(k), [&, i, k](bench::SweepContext &ctx) {
            Json cc_stats;
            base_runs[i] = runKernel(k, false);
            cc_runs[i] = runKernel(k, true, &cc_stats);
            ctx.statsJson(std::string("cc_") + toString(k),
                          std::move(cc_stats));
            double speedup = base_runs[i].kernel.blockOpsPerSecond() == 0.0
                ? 0.0
                : cc_runs[i].kernel.blockOpsPerSecond() /
                    base_runs[i].kernel.blockOpsPerSecond();
            std::string key = toString(k);
            ctx.metric(key + ".base32_mblockops",
                       base_runs[i].kernel.blockOpsPerSecond() / 1e6);
            ctx.metric(key + ".cc_mblockops",
                       cc_runs[i].kernel.blockOpsPerSecond() / 1e6);
            ctx.metric(key + ".speedup", speedup);
        });
    }
    sweep.run();

    bench::header("Figure 7a: throughput, 4 KB operands in L3 "
                  "(Mblock-ops/s)");
    std::printf("%-9s %14s %14s %10s\n", "kernel", "Base_32", "CC_L3",
                "speedup");
    bench::rule();
    double ratio_product = 1.0;
    for (std::size_t i = 0; i < 4; ++i) {
        const Run &base = base_runs[i];
        const Run &cc = cc_runs[i];
        double speedup = base.kernel.blockOpsPerSecond() == 0.0
            ? 0.0
            : cc.kernel.blockOpsPerSecond() /
                base.kernel.blockOpsPerSecond();
        ratio_product *= speedup;
        std::printf("%-9s %14.0f %14.0f %9.1fx\n", toString(kernels[i]),
                    base.kernel.blockOpsPerSecond() / 1e6,
                    cc.kernel.blockOpsPerSecond() / 1e6, speedup);
    }
    std::printf("%-9s %39.1fx (paper: 54x)\n", "geomean",
                std::pow(ratio_product, 0.25));
    results.metric("geomean.speedup", std::pow(ratio_product, 0.25));

    bench::header("Figure 7b: dynamic energy (nJ), by component");
    std::printf("%-9s %-8s %9s %13s %10s %8s %9s %9s\n", "kernel", "cfg",
                "core", "cache-access", "cache-ic", "noc", "total",
                "saving");
    bench::rule();
    for (std::size_t i = 0; i < 4; ++i) {
        const auto &b = base_runs[i].dyn;
        const auto &c = cc_runs[i].dyn;
        std::printf("%-9s %-8s %9.0f %13.0f %10.0f %8.0f %9.0f\n",
                    toString(kernels[i]), "Base_32", b.core / 1e3,
                    b.cacheAccess() / 1e3, b.cacheIc() / 1e3, b.noc / 1e3,
                    b.dynamicTotal() / 1e3);
        std::printf("%-9s %-8s %9.0f %13.0f %10.0f %8.0f %9.0f %8.0f%%\n",
                    "", "CC_L3", c.core / 1e3, c.cacheAccess() / 1e3,
                    c.cacheIc() / 1e3, c.noc / 1e3, c.dynamicTotal() / 1e3,
                    100.0 * (1.0 - c.dynamicTotal() / b.dynamicTotal()));
    }
    bench::note("Paper savings: copy 90%, compare 89%, search 71%, "
                "logical 92%.");

    bench::header("Figure 7c: total energy (nJ), static + dynamic");
    std::printf("%-9s %-8s %11s %13s %11s %13s %9s\n", "kernel", "cfg",
                "core-dyn", "uncore-dyn", "core-st", "uncore-st",
                "total");
    bench::rule();
    for (std::size_t i = 0; i < 4; ++i) {
        for (int m = 0; m < 2; ++m) {
            const auto &t = m == 0 ? base_runs[i].totals
                                   : cc_runs[i].totals;
            std::printf("%-9s %-8s %11.0f %13.0f %11.0f %13.0f %9.0f\n",
                        m == 0 ? toString(kernels[i]) : "",
                        m == 0 ? "Base_32" : "CC_L3", t.coreDynamic / 1e3,
                        t.uncoreDynamic / 1e3, t.coreStatic / 1e3,
                        t.uncoreStatic / 1e3, t.total() / 1e3);
        }
    }
    bench::note("Paper: 91% average total-energy saving across the four "
                "kernels.");

    for (std::size_t i = 0; i < 4; ++i) {
        std::string key = toString(kernels[i]);
        results.metric(key + ".base32_dynamic_nj",
                       base_runs[i].dyn.dynamicTotal() / 1e3);
        results.metric(key + ".cc_dynamic_nj",
                       cc_runs[i].dyn.dynamicTotal() / 1e3);
        results.metric(key + ".dynamic_saving_fraction",
                       1.0 - cc_runs[i].dyn.dynamicTotal() /
                           base_runs[i].dyn.dynamicTotal());
        results.metric(key + ".base32_total_nj",
                       base_runs[i].totals.total() / 1e3);
        results.metric(key + ".cc_total_nj",
                       cc_runs[i].totals.total() / 1e3);
        results.metric(key + ".total_saving_fraction",
                       1.0 - cc_runs[i].totals.total() /
                           base_runs[i].totals.total());
    }

    // One extra traced CC copy run: the Chrome trace-event timeline that
    // EXPERIMENTS.md loads into Perfetto.
    std::error_code ec;
    std::filesystem::create_directories(bench::resultsDir(), ec);
    std::string trace_path =
        bench::resultsDir() + "/fig7_microbench.trace.json";
    runKernel(BulkKernel::Copy, true, nullptr, trace_path.c_str());
    std::printf("trace:   %s (load in https://ui.perfetto.dev)\n",
                trace_path.c_str());
    // Recorded relative to the results directory so two runs into
    // different directories stay byte-identical (DESIGN.md §8).
    results.extra("trace_file", "fig7_microbench.trace.json");

    return bench::finish(results, sweep);
}
