/**
 * @file
 * Reproduces Figure 7: the microbenchmark study of Section VI-D on 4 KB
 * operands resident in L3.
 *
 *  (a) throughput (64-byte block operations per second),
 *  (b) dynamic energy broken into core / cache-access / cache-ic / noc,
 *  (c) total energy split into static and dynamic, core and uncore.
 */

#include <cmath>

#include "bench_util.hh"
#include "sim/system.hh"

using namespace ccache;
using namespace ccache::sim;

namespace {

constexpr std::size_t kN = 4096;
constexpr Addr kA = 0x100000;
constexpr Addr kB = 0x110000;
constexpr Addr kD = 0x120000;
constexpr Addr kKey = 0x130000;

struct Run
{
    KernelResult kernel;
    energy::EnergyBreakdown dyn;
    energy::EnergyTotals totals;
};

Run
runKernel(BulkKernel kernel, bool use_cc)
{
    System sys;
    std::vector<std::uint8_t> da(kN), db(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        da[i] = static_cast<std::uint8_t>(i * 7 + 1);
        db[i] = static_cast<std::uint8_t>(i * 13 + 5);
    }
    std::vector<std::uint8_t> key(da.begin() + 448, da.begin() + 512);
    sys.load(kA, da.data(), kN);
    sys.load(kB, db.data(), kN);
    sys.load(kKey, key.data(), key.size());

    for (Addr a : {kA, kB, kD})
        sys.warm(CacheLevel::L3, 0, a, kN);
    sys.warm(CacheLevel::L3, 0, kKey, 64);
    sys.resetMetrics();

    Addr b = kernel == BulkKernel::Search ? kKey : kB;
    Run run;
    if (use_cc) {
        sys.cc().mutableParams().forceLevel = CacheLevel::L3;
        run.kernel = sys.ccEngine().run(kernel, 0, kA, b, kD, kN);
    } else {
        run.kernel = sys.simd32().run(kernel, 0, kA, b, kD, kN);
    }
    sys.advance(0, run.kernel.cycles);
    run.dyn = sys.energy().dynamic();
    run.totals = sys.totals();
    return run;
}

} // namespace

int
main()
{
    const BulkKernel kernels[] = {BulkKernel::Copy, BulkKernel::Compare,
                                  BulkKernel::Search,
                                  BulkKernel::LogicalOr};

    bench::header("Figure 7a: throughput, 4 KB operands in L3 "
                  "(Mblock-ops/s)");
    std::printf("%-9s %14s %14s %10s\n", "kernel", "Base_32", "CC_L3",
                "speedup");
    bench::rule();
    double ratio_product = 1.0;
    std::vector<Run> base_runs, cc_runs;
    for (BulkKernel k : kernels) {
        Run base = runKernel(k, false);
        Run cc = runKernel(k, true);
        base_runs.push_back(base);
        cc_runs.push_back(cc);
        double speedup = base.kernel.blockOpsPerSecond() == 0.0
            ? 0.0
            : cc.kernel.blockOpsPerSecond() /
                base.kernel.blockOpsPerSecond();
        ratio_product *= speedup;
        std::printf("%-9s %14.0f %14.0f %9.1fx\n", toString(k),
                    base.kernel.blockOpsPerSecond() / 1e6,
                    cc.kernel.blockOpsPerSecond() / 1e6, speedup);
    }
    std::printf("%-9s %39.1fx (paper: 54x)\n", "geomean",
                std::pow(ratio_product, 0.25));

    bench::header("Figure 7b: dynamic energy (nJ), by component");
    std::printf("%-9s %-8s %9s %13s %10s %8s %9s %9s\n", "kernel", "cfg",
                "core", "cache-access", "cache-ic", "noc", "total",
                "saving");
    bench::rule();
    for (std::size_t i = 0; i < 4; ++i) {
        const auto &b = base_runs[i].dyn;
        const auto &c = cc_runs[i].dyn;
        std::printf("%-9s %-8s %9.0f %13.0f %10.0f %8.0f %9.0f\n",
                    toString(kernels[i]), "Base_32", b.core / 1e3,
                    b.cacheAccess() / 1e3, b.cacheIc() / 1e3, b.noc / 1e3,
                    b.dynamicTotal() / 1e3);
        std::printf("%-9s %-8s %9.0f %13.0f %10.0f %8.0f %9.0f %8.0f%%\n",
                    "", "CC_L3", c.core / 1e3, c.cacheAccess() / 1e3,
                    c.cacheIc() / 1e3, c.noc / 1e3, c.dynamicTotal() / 1e3,
                    100.0 * (1.0 - c.dynamicTotal() / b.dynamicTotal()));
    }
    bench::note("Paper savings: copy 90%, compare 89%, search 71%, "
                "logical 92%.");

    bench::header("Figure 7c: total energy (nJ), static + dynamic");
    std::printf("%-9s %-8s %11s %13s %11s %13s %9s\n", "kernel", "cfg",
                "core-dyn", "uncore-dyn", "core-st", "uncore-st",
                "total");
    bench::rule();
    for (std::size_t i = 0; i < 4; ++i) {
        for (int m = 0; m < 2; ++m) {
            const auto &t = m == 0 ? base_runs[i].totals
                                   : cc_runs[i].totals;
            std::printf("%-9s %-8s %11.0f %13.0f %11.0f %13.0f %9.0f\n",
                        m == 0 ? toString(kernels[i]) : "",
                        m == 0 ? "Base_32" : "CC_L3", t.coreDynamic / 1e3,
                        t.uncoreDynamic / 1e3, t.coreStatic / 1e3,
                        t.uncoreStatic / 1e3, t.total() / 1e3);
        }
    }
    bench::note("Paper: 91% average total-energy saving across the four "
                "kernels.");
    return 0;
}
