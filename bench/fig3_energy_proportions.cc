/**
 * @file
 * Reproduces Figure 3 (top): proportion of energy spent on instruction
 * processing (core) vs data movement for a bulk comparison over 4 KB
 * operands, on a scalar core, a 32-byte SIMD core and Compute Caches.
 *
 * The paper's narrative: on the scalar core <1% of the energy is ALU
 * work, ~3/4 is instruction processing and ~1/4 data movement; SIMD
 * shrinks the instruction share but not the movement; Compute Caches
 * eliminate both.
 */

#include "bench_util.hh"
#include "sim/system.hh"

using namespace ccache;
using namespace ccache::sim;

namespace {

constexpr std::size_t kN = 4096;
constexpr Addr kA = 0x100000;
constexpr Addr kB = 0x110000;

struct Proportions
{
    double core;
    double movement;
    double total_nj;
};

Proportions
runCompare(int mode)
{
    System sys;
    std::vector<std::uint8_t> data(kN, 0x3c);
    sys.load(kA, data.data(), kN);
    sys.load(kB, data.data(), kN);
    sys.warm(CacheLevel::L3, 0, kA, kN);
    sys.warm(CacheLevel::L3, 0, kB, kN);
    sys.resetMetrics();

    switch (mode) {
      case 0:
        sys.scalar().compare(0, kA, kB, kN);
        break;
      case 1:
        sys.simd32().compare(0, kA, kB, kN);
        break;
      default:
        sys.cc().mutableParams().forceLevel = CacheLevel::L3;
        sys.ccEngine().compare(0, kA, kB, kN);
        break;
    }

    const auto &dyn = sys.energy().dynamic();
    Proportions p;
    p.total_nj = dyn.dynamicTotal() / 1e3;
    p.core = dyn.core / dyn.dynamicTotal();
    p.movement = dyn.dataMovement() / dyn.dynamicTotal();
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Figure 3: instruction-processing vs data-movement energy");
    bench::header("Figure 3: energy proportions, bulk compare of 4 KB "
                  "operands");

    bench::ResultsWriter results("fig3_energy_proportions");
    results.config("operand_bytes", kN);
    results.config("kernel", "compare");

    const char *names[] = {"Scalar core", "SIMD core (Base_32)",
                           "Compute Cache"};
    const char *keys[] = {"scalar", "simd32", "cc_l3"};
    std::printf("%-22s %12s %12s %14s\n", "configuration", "core %",
                "movement %", "total (nJ)");
    bench::rule();

    // One sweep point per engine configuration.
    Proportions props[3];
    bench::SweepRunner sweep(&results);
    for (int mode = 0; mode < 3; ++mode) {
        sweep.add(keys[mode], [&, mode](bench::SweepContext &ctx) {
            props[mode] = runCompare(mode);
            std::string key = keys[mode];
            ctx.metric(key + ".core_fraction", props[mode].core);
            ctx.metric(key + ".movement_fraction", props[mode].movement);
            ctx.metric(key + ".dynamic_total_nj", props[mode].total_nj);
        });
    }
    sweep.run();

    double scalar_total = props[0].total_nj;
    for (int mode = 0; mode < 3; ++mode) {
        const Proportions &p = props[mode];
        std::printf("%-22s %11.1f%% %11.1f%% %14.1f\n", names[mode],
                    100.0 * p.core, 100.0 * p.movement, p.total_nj);
        if (mode == 2) {
            std::printf("%-22s %37.1fx vs scalar\n", "  total reduction",
                        scalar_total / p.total_nj);
            results.metric("cc_l3.reduction_vs_scalar",
                           scalar_total / p.total_nj);
        }
    }

    bench::rule();
    bench::note("Paper: scalar ~3/4 instruction processing + ~1/4 data");
    bench::note("movement (<1% ALU); SIMD cuts the instruction share; CC");
    bench::note("reduces instruction processing by an order of magnitude");
    bench::note("and eliminates the data movement.");
    return bench::finish(results, sweep);
}
