/**
 * @file
 * Reproduces Table V: cache energy (pJ) per 64-byte cache block for every
 * operation at every level, and cross-checks the paper's internal
 * consistency relations (read = Table I ic+access; search = cmp + write).
 */

#include <cmath>

#include "bench_util.hh"
#include "energy/energy_params.hh"

using namespace ccache;
using namespace ccache::energy;

int
main(int argc, char **argv)
{
    bench::maybeDescribe(argc, argv,
                         "Table V: per-block energy for every op at every level");
    bench::header("Table V: Cache energy (pJ) per 64-byte cache block");
    EnergyParams params;

    const CacheOp ops[] = {CacheOp::Write, CacheOp::Read, CacheOp::Cmp,
                           CacheOp::Copy, CacheOp::Search, CacheOp::Not,
                           CacheOp::Logic};

    std::printf("%-6s", "cache");
    for (CacheOp op : ops)
        std::printf("%9s", toString(op));
    std::printf("\n");
    bench::rule();

    bench::ResultsWriter results("table5_cc_op_energy");
    const CacheLevel levels[] = {CacheLevel::L3, CacheLevel::L2,
                                 CacheLevel::L1};

    // One sweep point per cache level.
    bench::SweepRunner sweep(&results);
    for (CacheLevel level : levels) {
        sweep.add(toString(level), [&, level](bench::SweepContext &ctx) {
            for (CacheOp op : ops)
                ctx.metric(std::string(toString(level)) + "." +
                               toString(op) + ".pj",
                           params.cacheOpEnergy(level, op));
        });
    }
    sweep.run();

    for (CacheLevel level : levels) {
        std::printf("%-6s", toString(level));
        for (CacheOp op : ops)
            std::printf("%9.0f", params.cacheOpEnergy(level, op));
        std::printf("\n");
    }

    bench::rule();
    bench::note("Consistency checks (paper-internal relations):");

    bool ok = true;
    struct Pair
    {
        CacheLevel level;
        CacheReadSplit split;
    } reads[] = {{CacheLevel::L1, params.l1Read},
                 {CacheLevel::L2, params.l2Read},
                 {CacheLevel::L3, params.l3Read}};
    for (const auto &[level, split] : reads) {
        double table5 = params.cacheOpEnergy(level, CacheOp::Read);
        bool match = std::abs(table5 - split.total()) < 1.0;
        ok &= match;
        std::printf("  %s read %4.0f == Table I ic+access %4.0f : %s\n",
                    toString(level), table5, split.total(),
                    match ? "ok" : "MISMATCH");
    }
    for (CacheLevel level :
         {CacheLevel::L1, CacheLevel::L2, CacheLevel::L3}) {
        double search = params.cacheOpEnergy(level, CacheOp::Search);
        double sum = params.cacheOpEnergy(level, CacheOp::Cmp) +
            params.cacheOpEnergy(level, CacheOp::Write);
        bool match = std::abs(search - sum) < 1.0;
        ok &= match;
        std::printf("  %s search %4.0f == cmp + write %4.0f : %s\n",
                    toString(level), search, sum,
                    match ? "ok" : "MISMATCH");
    }
    results.metric("consistency.ok", ok ? 1 : 0);
    return bench::finish(results, sweep, ok);
}
