/**
 * @file
 * Sampled trace frontend gate (DESIGN.md §16): a seeded synthetic
 * multi-phase trace is replayed twice — once in full (the golden run)
 * and once through the sampled pipeline (interval profiling -> phase
 * clustering -> representative replay with warm-up) — and the
 * reconstituted estimate must land inside the declared error bound
 * while simulating at most a tenth of the intervals.
 *
 * The trace interleaves four repeating behaviours, one interval each
 * per round, on distinct cores:
 *
 *   stream  sequential reads marching through fresh memory (all-cold)
 *   hot     read/write loop over a 4 KB working set (all-warm)
 *   cc      Compute Cache ops (cc_copy / cc_buz / cc_cmp) on a fixed
 *           buffer
 *   idiom   raw memcpy / memset / memcmp block loops — converter fodder
 *
 * Gates (each recorded as a metric, any failure exits non-zero):
 *
 *   - replay fraction <= kMaxReplayFraction (0.10)
 *   - |sampled - golden| / golden for the memory miss rate and the
 *     CC-op throughput <= kErrorBound
 *   - the sampled run is byte-identical at 1, 2 and 8 replay workers
 *   - the idiom converter rewrites >= kMinDetection (0.95) of the
 *     planted idiom blocks
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "sample/idiom.hh"
#include "sample/sampled_runner.hh"
#include "sim/trace.hh"

using namespace ccache;

namespace {

constexpr std::size_t kIntervalRecords = 1000;
constexpr std::size_t kRounds = 24;          ///< x4 phases = 96 intervals
constexpr double kMaxReplayFraction = 0.10;
constexpr double kErrorBound = 0.05;
constexpr double kMinDetection = 0.95;

/** Planted idiom ground truth, in converter accounting units (cc_cmp
 *  counts block PAIRS). */
struct Planted
{
    std::uint64_t copyBlocks = 0;
    std::uint64_t cmpPairs = 0;
    std::uint64_t zeroBlocks = 0;

    std::uint64_t total() const
    {
        return copyBlocks + cmpPairs + zeroBlocks;
    }
};

/** Deterministic multi-phase trace generator. Every phase emits
 *  exactly kIntervalRecords records, so intervals align with phase
 *  boundaries and the clusterer sees clean repetition. */
class TraceGen
{
  public:
    explicit TraceGen(std::uint64_t seed) : rng_(seed) {}

    std::vector<sim::TraceRecord> generate(Planted &planted)
    {
        std::vector<sim::TraceRecord> out;
        out.reserve(kRounds * 4 * kIntervalRecords);
        for (std::size_t round = 0; round < kRounds; ++round) {
            stream(out);
            hot(out);
            cc(out);
            idiom(out, planted);
        }
        return out;
    }

  private:
    static sim::TraceRecord mem(sim::TraceRecord::Kind kind, CoreId core,
                                Addr addr)
    {
        sim::TraceRecord rec;
        rec.kind = kind;
        rec.core = core;
        rec.addr = addr;
        return rec;
    }

    static sim::TraceRecord ccRec(CoreId core, cc::CcInstruction instr)
    {
        sim::TraceRecord rec;
        rec.kind = sim::TraceRecord::Kind::CcOp;
        rec.core = core;
        rec.instr = instr;
        return rec;
    }

    /** Sequential reads through never-revisited memory: every access
     *  is cold, so the interval's behaviour does not depend on what
     *  ran before it. */
    void stream(std::vector<sim::TraceRecord> &out)
    {
        for (std::size_t i = 0; i < kIntervalRecords; ++i) {
            out.push_back(mem(sim::TraceRecord::Kind::Read, 0,
                              0x10000000 + streamCursor_ * kBlockSize));
            ++streamCursor_;
        }
    }

    /** Read/write loop over 64 blocks (4 KB): at most 64 of the 1000
     *  accesses can be cold, so the interval is warm regardless of its
     *  predecessor. */
    void hot(std::vector<sim::TraceRecord> &out)
    {
        constexpr Addr base = 0x20000000;
        for (std::size_t i = 0; i < kIntervalRecords; ++i) {
            Addr addr = base + rng_.below(64) * kBlockSize;
            auto kind = rng_.chance(0.3) ? sim::TraceRecord::Kind::Write
                                         : sim::TraceRecord::Kind::Read;
            out.push_back(mem(kind, 1, addr));
        }
    }

    /** Compute Cache ops over a fixed 256 KB buffer. */
    void cc(std::vector<sim::TraceRecord> &out)
    {
        constexpr Addr base = 0x30000000;
        constexpr std::size_t slots = 128;       ///< 1 KB-aligned slots
        for (std::size_t i = 0; i < kIntervalRecords; ++i) {
            Addr a = base + (ccCursor_ % slots) * 1024;
            Addr b = base + ((ccCursor_ + slots / 2) % slots) * 1024;
            cc::CcInstruction instr;
            switch (ccCursor_ % 3) {
              case 0: instr = cc::CcInstruction::copy(a, b, 1024); break;
              case 1: instr = cc::CcInstruction::buz(a, 1024); break;
              default: instr = cc::CcInstruction::cmp(a, b, 512); break;
            }
            out.push_back(ccRec(2, instr));
            ++ccCursor_;
        }
    }

    /** Raw block loops the converter should rewrite. Runs march
     *  through fresh memory (predecessor-independent, like stream) and
     *  are separated by single scratch writes at a 2-block stride so
     *  the separators never chain into a run of their own. */
    void idiom(std::vector<sim::TraceRecord> &out, Planted &planted)
    {
        using Kind = sim::TraceRecord::Kind;
        constexpr CoreId core = 3;
        const std::size_t target = out.size() + kIntervalRecords;

        auto separator = [&] {
            out.push_back(mem(Kind::Write, core,
                              0x70000000 +
                                  scratchCursor_ * 2 * kBlockSize));
            ++scratchCursor_;
        };

        while (out.size() < target) {
            std::size_t room = target - out.size();
            std::size_t type = idiomCursor_ % 3;
            Addr src = 0x40000000 + idiomCursor_ * 0x4000;
            Addr dst = 0x50000000 + idiomCursor_ * 0x4000;
            if (type == 0 && room >= 65) {
                // memcpy: 32 blocks, R src / W dst interleaved.
                separator();
                for (std::size_t b = 0; b < 32; ++b) {
                    out.push_back(mem(Kind::Read, core,
                                      src + b * kBlockSize));
                    out.push_back(mem(Kind::Write, core,
                                      dst + b * kBlockSize));
                }
                planted.copyBlocks += 32;
            } else if (type == 1 && room >= 33) {
                // memset: 32 consecutive block writes.
                separator();
                for (std::size_t b = 0; b < 32; ++b)
                    out.push_back(mem(Kind::Write, core,
                                      src + b * kBlockSize));
                planted.zeroBlocks += 32;
            } else if (type == 2 && room >= 17) {
                // memcmp: 8 block pairs, R src / R dst interleaved
                // (8 pairs = 512 B, one full cc_cmp).
                separator();
                for (std::size_t b = 0; b < 8; ++b) {
                    out.push_back(mem(Kind::Read, core,
                                      src + b * kBlockSize));
                    out.push_back(mem(Kind::Read, core,
                                      dst + b * kBlockSize));
                }
                planted.cmpPairs += 8;
            } else {
                // Tail too small for this run type: pad with
                // non-chaining scratch writes.
                separator();
                continue;
            }
            ++idiomCursor_;
        }
    }

    Rng rng_;
    std::uint64_t streamCursor_ = 0;
    std::uint64_t ccCursor_ = 0;
    std::uint64_t idiomCursor_ = 0;
    std::uint64_t scratchCursor_ = 0;
};

/** Serialize a sampled run to a canonical string; byte-equality across
 *  worker counts is the determinism gate. */
std::string
digest(const sample::SampledRun &run)
{
    char buf[256];
    std::string d;
    const sample::SampledEstimate &e = run.estimate;
    std::snprintf(buf, sizeof buf,
                  "est %llu %llu %llu %.17g %.17g %.17g %.17g %zu %zu\n",
                  static_cast<unsigned long long>(e.reads),
                  static_cast<unsigned long long>(e.writes),
                  static_cast<unsigned long long>(e.ccInstructions),
                  e.l1Misses, e.memAccesses, e.ccBlockOps, e.cycles,
                  e.intervalsTotal, e.intervalsReplayed);
    d += buf;
    for (const sample::RepresentativeRun &rep : run.representatives) {
        std::snprintf(
            buf, sizeof buf,
            "rep %zu %llu %.17g %zu %llu %llu %llu %llu %llu %llu %llu\n",
            rep.interval,
            static_cast<unsigned long long>(rep.intervalCount), rep.weight,
            rep.warmupUsed,
            static_cast<unsigned long long>(rep.metrics.reads),
            static_cast<unsigned long long>(rep.metrics.writes),
            static_cast<unsigned long long>(rep.metrics.ccInstructions),
            static_cast<unsigned long long>(rep.metrics.l1Misses),
            static_cast<unsigned long long>(rep.metrics.memAccesses),
            static_cast<unsigned long long>(rep.metrics.ccBlockOps),
            static_cast<unsigned long long>(rep.metrics.cycles));
        d += buf;
    }
    return d;
}

double
relError(double est, double golden)
{
    if (golden == 0.0)
        return est == 0.0 ? 0.0 : 1.0;
    double e = (est - golden) / golden;
    return e < 0 ? -e : e;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::maybeDescribe(
        argc, argv,
        "Sampled trace frontend: phase clustering vs full-run golden");
    bench::header("Sampled trace frontend: estimate vs full-run golden");

    bench::ResultsWriter results("sampled_trace");
    results.config("interval_records", kIntervalRecords);
    results.config("rounds", kRounds);
    results.config("error_bound", kErrorBound);
    results.config("max_replay_fraction", kMaxReplayFraction);
    results.config("min_detection", kMinDetection);

    Planted planted;
    std::vector<sim::TraceRecord> records =
        TraceGen(0xc011ec7ed).generate(planted);

    sample::SampledRunParams params;
    params.intervalRecords = kIntervalRecords;
    params.clusters = 8;
    // Warm-up spans a full phase round so representatives of phases
    // that keep state resident across rounds see warmed caches.
    params.warmupRecords = 4 * kIntervalRecords;

    sim::TraceReplayResult golden;
    const unsigned jobsSweep[] = {1, 2, 8};
    sample::SampledRun sampled[3];
    sample::ConvertStats conv;

    bench::SweepRunner sweep(&results);
    sweep.add("golden", [&](bench::SweepContext &ctx) {
        golden = sample::runFull(records);
        ctx.metric("golden.mem_miss_rate", golden.memMissRate());
        ctx.metric("golden.cc_ops_per_kcycle", golden.ccOpsPerKCycle());
        ctx.metric("golden.cycles",
                   static_cast<double>(golden.cycles));
    });
    for (std::size_t j = 0; j < 3; ++j) {
        std::string key = "sampled.j" + std::to_string(jobsSweep[j]);
        sweep.add(key, [&, j, key](bench::SweepContext &ctx) {
            sample::SampledRunParams p = params;
            p.jobs = jobsSweep[j];
            sampled[j] = sample::runSampled(records, p);
            if (j == 0) {
                const sample::SampledEstimate &e = sampled[j].estimate;
                ctx.metric("sampled.mem_miss_rate", e.memMissRate);
                ctx.metric("sampled.cc_ops_per_kcycle", e.ccOpsPerKCycle);
                ctx.metric("sampled.replay_fraction", e.replayFraction());
                ctx.metric("sampled.phases",
                           static_cast<double>(
                               sampled[j].representatives.size()));
            }
        });
    }
    sweep.add("convert", [&](bench::SweepContext &ctx) {
        sample::ConvertResult res = sample::convertIdioms(records);
        conv = res.stats;
        std::uint64_t converted =
            conv.copyBlocks + conv.cmpBlocks + conv.zeroBlocks;
        ctx.metric("convert.planted_blocks",
                   static_cast<double>(planted.total()));
        ctx.metric("convert.converted_blocks",
                   static_cast<double>(converted));
        ctx.metric("convert.detection",
                   planted.total()
                       ? static_cast<double>(converted) /
                           static_cast<double>(planted.total())
                       : 0.0);
    });
    sweep.run();

    const sample::SampledEstimate &est = sampled[0].estimate;
    double missErr = relError(est.memMissRate, golden.memMissRate());
    double ccErr =
        relError(est.ccOpsPerKCycle, golden.ccOpsPerKCycle());
    double cycErr = relError(est.cycles,
                             static_cast<double>(golden.cycles));
    bool identical = digest(sampled[0]) == digest(sampled[1]) &&
        digest(sampled[0]) == digest(sampled[2]);
    std::uint64_t converted =
        conv.copyBlocks + conv.cmpBlocks + conv.zeroBlocks;
    double detection = planted.total()
        ? static_cast<double>(converted) /
            static_cast<double>(planted.total())
        : 0.0;

    std::printf("%-22s %12s %12s %9s\n", "metric", "golden", "sampled",
                "rel.err");
    bench::rule();
    std::printf("%-22s %12.5f %12.5f %8.2f%%\n", "mem_miss_rate",
                golden.memMissRate(), est.memMissRate, 100.0 * missErr);
    std::printf("%-22s %12.3f %12.3f %8.2f%%\n", "cc_ops_per_kcycle",
                golden.ccOpsPerKCycle(), est.ccOpsPerKCycle,
                100.0 * ccErr);
    std::printf("%-22s %12llu %12.0f %8.2f%%\n", "cycles",
                static_cast<unsigned long long>(golden.cycles),
                est.cycles, 100.0 * cycErr);
    bench::rule();
    std::printf("replayed %zu/%zu intervals (%.1f%%), warm-up %zu "
                "records per phase\n",
                est.intervalsReplayed, est.intervalsTotal,
                100.0 * est.replayFraction(), params.warmupRecords);
    std::printf("idiom converter: %llu/%llu planted blocks rewritten "
                "(%.1f%%)\n",
                static_cast<unsigned long long>(converted),
                static_cast<unsigned long long>(planted.total()),
                100.0 * detection);
    std::printf("determinism (1/2/8 workers): %s\n",
                identical ? "byte-identical" : "DIVERGED");

    results.metric("error.mem_miss_rate", missErr);
    results.metric("error.cc_ops_per_kcycle", ccErr);
    results.metric("error.cycles", cycErr);
    results.metric("determinism.identical", identical ? 1.0 : 0.0);

    bool ok = true;
    auto gate = [&](bool pass, const char *what) {
        if (!pass) {
            std::fprintf(stderr, "sampled_trace: GATE FAILED: %s\n",
                         what);
            ok = false;
        }
    };
    gate(est.replayFraction() <= kMaxReplayFraction,
         "replay fraction above bound");
    gate(missErr <= kErrorBound, "mem miss-rate error above bound");
    gate(ccErr <= kErrorBound, "cc-op throughput error above bound");
    gate(identical, "sampled run not byte-identical across workers");
    gate(detection >= kMinDetection, "idiom detection below bound");

    bench::note("");
    bench::note("Gate: <=10% of intervals replayed; miss-rate and CC-op");
    bench::note("throughput within the declared bound of the golden");
    bench::note("full run; byte-identical at 1/2/8 workers; >=95% of");
    bench::note("planted memcpy/memcmp/memset blocks rewritten.");
    return bench::finish(results, sweep, ok);
}
