/**
 * @file
 * One cache level: geometry-mapped tags + data with access timing/energy.
 *
 * The data array is organized per the operand-locality-aware geometry of
 * Section IV-C: CacheGeometry::place() tells the CC controller which bank,
 * sub-array and block partition any resident line occupies, which drives
 * both the legality of in-place operations and the parallelism schedule.
 */

#ifndef CCACHE_CACHE_CACHE_HH
#define CCACHE_CACHE_CACHE_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/tag_array.hh"
#include "common/block.hh"
#include "common/stats.hh"
#include "energy/energy_model.hh"
#include "geometry/cache_geometry.hh"

namespace ccache::cache {

/** Configuration of one cache level. */
struct CacheParams
{
    geometry::CacheGeometryParams geometry;
    CacheLevel level = CacheLevel::L1;
    Cycles accessLatency = 5;   ///< Table IV: L1 5, L2 11, L3 11 + queue
};

/** A line evicted to make room for a fill. */
struct Eviction
{
    Addr addr;
    Block data;
    bool dirty;
    Mesi state;
};

/** Outcome of a fill. */
struct FillResult
{
    std::size_t way;
    std::optional<Eviction> evicted;
};

/** One cache (an L1-D, an L2, or one L3 slice). */
class Cache
{
  public:
    Cache(const CacheParams &params, energy::EnergyModel *energy,
          StatRegistry *stats, std::string stat_prefix);

    const CacheParams &params() const { return params_; }
    const geometry::CacheGeometry &geom() const { return geom_; }
    CacheLevel level() const { return params_.level; }
    Cycles latency() const { return params_.accessLatency; }

    /** Tag probe without LRU update or energy charge. */
    bool contains(Addr addr) const;

    /** State of @p addr, Invalid if absent. */
    Mesi state(Addr addr) const;

    /** Set the MESI state of a resident line. */
    void setState(Addr addr, Mesi state);

    /**
     * Read a resident block. Charges read energy, updates LRU.
     * Returns false on miss.
     */
    bool read(Addr addr, Block &out);

    /**
     * Write a resident block (marks it dirty/Modified is left to the
     * caller's coherence logic; this only moves data). Charges write
     * energy, updates LRU. Returns false on miss.
     */
    bool write(Addr addr, const Block &data, bool set_dirty = true);

    /**
     * Insert @p addr with @p data in state @p state, evicting if needed.
     * Returns nullopt if no victim is available (all ways pinned).
     * Charges a write access.
     */
    std::optional<FillResult> fill(Addr addr, const Block &data, Mesi state);

    /**
     * Remove @p addr; returns its data and dirtiness so the caller can
     * write it back. Returns nullopt if not present.
     */
    std::optional<Eviction> invalidate(Addr addr);

    /** Operand pinning for the CC controller (Section IV-E). @{ */
    bool pin(Addr addr);
    void unpin(Addr addr);
    bool isPinned(Addr addr) const;
    /** Promote a line to MRU so it survives until its operation issues. */
    void promoteMRU(Addr addr);
    /** @} */

    /** Mark a resident line dirty (after an in-place CC write). */
    void markDirty(Addr addr);

    /** True iff @p addr is resident and holds dirty data. */
    bool isDirty(Addr addr) const;

    /** Clear the dirty flag after the data has been written back. */
    void clearDirty(Addr addr);

    /**
     * Data access for in-place compute: read/write the resident block
     * WITHOUT charging the baseline access energy — the CC controller
     * charges the Table V in-place cost instead. @{
     */
    const Block *peek(Addr addr) const;
    bool poke(Addr addr, const Block &data);
    /** @} */

    /** Data of a resident DIRTY line, nullptr otherwise: one address
     *  decode where isDirty() + peek() would pay two. This is the
     *  Hierarchy::debugRead hot path (golden verification reads every
     *  block of every request). */
    const Block *dirtyPeek(Addr addr) const;

    /** Physical placement of a resident line, for the CC scheduler. */
    std::optional<geometry::BlockPlace> placeOf(Addr addr) const;

    /** Occupancy for stats. */
    std::size_t validLines() const { return tags_.validLines(); }

    /** Visit every valid line (for flushes and integrity checks). */
    void forEachLine(
        const std::function<void(Addr, Mesi, bool, const Block &)> &fn)
        const;

    /** Reconstruct the block address of a resident (set, way). */
    Addr addrOf(std::size_t set, std::size_t way) const;

  private:
    std::size_t dataIndex(std::size_t set, std::size_t way) const
    {
        return set * params_.geometry.ways + way;
    }

    /** A resident line located by one address decode. */
    struct Located
    {
        std::size_t set;
        std::size_t way;
    };

    /** Locate a resident line with a single geometry decode; every public
     *  entry point reuses the returned set instead of re-decoding. */
    std::optional<Located> locate(Addr addr) const
    {
        auto f = geom_.decode(addr);
        Lookup l = tags_.lookup(f.set, f.tag);
        if (!l.hit)
            return std::nullopt;
        return Located{f.set, l.way};
    }

    void chargeRead();
    void chargeWrite();

    CacheParams params_;
    geometry::CacheGeometry geom_;
    TagArray tags_;
    /** Block storage, deliberately NOT zero-initialized: a data slot is
     *  meaningful only while its tag line is valid, and every path that
     *  validates a line (fill) writes the slot in the same call — so
     *  the constructor skips zeroing megabytes per cache. Restart-heavy
     *  harnesses construct hundreds of caches (DESIGN.md §13). */
    std::unique_ptr<Block[]> data_;
    energy::EnergyModel *energy_;
    /** Counters pre-registered under the cache's stat prefix (StatGroup
     *  registration), so the hot paths increment through stable pointers
     *  instead of re-building dotted names per access. Null without a
     *  registry. @{ */
    StatCounter *readsStat_ = nullptr;
    StatCounter *writesStat_ = nullptr;
    StatCounter *fillsStat_ = nullptr;
    StatCounter *evictionsStat_ = nullptr;
    StatCounter *invalidationsStat_ = nullptr;
    StatCounter *fillBlockedStat_ = nullptr;
    /** @} */
};

} // namespace ccache::cache

#endif // CCACHE_CACHE_CACHE_HH
