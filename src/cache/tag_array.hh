/**
 * @file
 * Set-associative tag array with true-LRU replacement and line pinning.
 *
 * Pinning implements the CC controller's operand locking (Section IV-E):
 * while a Compute Cache operation waits for its remaining operands, the
 * already-fetched ones are pinned (and promoted to MRU) so they cannot be
 * evicted; a forwarded coherence request still releases the pin to avoid
 * deadlock, which the controller handles by re-fetching.
 */

#ifndef CCACHE_CACHE_TAG_ARRAY_HH
#define CCACHE_CACHE_TAG_ARRAY_HH

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <type_traits>

#include "cache/mesi.hh"
#include "common/types.hh"

namespace ccache::cache {

/** Metadata of one cache line. */
struct Line
{
    Addr tag = 0;
    Mesi state = Mesi::Invalid;
    bool dirty = false;
    bool pinned = false;
    std::uint64_t lastUse = 0;

    bool valid() const { return cache::valid(state); }
};

/** Result of a tag lookup. */
struct Lookup
{
    bool hit = false;
    std::size_t way = 0;
};

/** Tags for a sets x ways cache. */
class TagArray
{
  public:
    TagArray(std::size_t sets, std::size_t ways);

    std::size_t sets() const { return sets_; }
    std::size_t ways() const { return ways_; }

    /** Find @p tag in @p set. Does not touch LRU state. Inline: this is
     *  the single hottest function of the MESI hierarchy. */
    Lookup lookup(std::size_t set, Addr tag) const
    {
        const Line *base = &lines_[set * ways_];
        for (std::size_t w = 0; w < ways_; ++w) {
            const Line &l = base[w];
            if (l.valid() && l.tag == tag)
                return {true, w};
        }
        return {false, 0};
    }

    /** Mark (set, way) most-recently-used. */
    void touch(std::size_t set, std::size_t way)
    {
        lines_[index(set, way)].lastUse = ++useClock_;
    }

    /**
     * Choose a victim way in @p set: an invalid way if present, else the
     * LRU unpinned way. Returns nullopt if every way is pinned.
     */
    std::optional<std::size_t> victim(std::size_t set) const;

    Line &line(std::size_t set, std::size_t way)
    {
        return lines_[index(set, way)];
    }
    const Line &line(std::size_t set, std::size_t way) const
    {
        return lines_[index(set, way)];
    }

    /** Count of valid lines (for occupancy stats). */
    std::size_t validLines() const;

  private:
    std::size_t index(std::size_t set, std::size_t way) const
    {
        return set * ways_ + way;
    }

    /** An all-Invalid tag array is exactly the all-zero object
     *  representation of its lines, so the backing store comes from
     *  calloc: the kernel's lazily-zeroed pages make constructing a
     *  cache O(touched sets) instead of O(capacity) — bench sweeps and
     *  the serving benches construct hundreds of full hierarchies, and
     *  short-lived ones never touch most sets (DESIGN.md §13). */
    struct FreeDeleter
    {
        void operator()(Line *p) const { std::free(p); }
    };
    static_assert(std::is_trivially_copyable_v<Line> &&
                      static_cast<int>(Mesi::Invalid) == 0,
                  "Line must be zero-initializable via calloc");

    std::size_t sets_;
    std::size_t ways_;
    std::unique_ptr<Line[], FreeDeleter> lines_;
    std::uint64_t useClock_ = 0;
};

} // namespace ccache::cache

#endif // CCACHE_CACHE_TAG_ARRAY_HH
