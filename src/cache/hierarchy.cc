#include "cache/hierarchy.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/bit_util.hh"
#include "common/logging.hh"
#include "verify/coherence_checker.hh"
#include "verify/watchdog.hh"

namespace ccache::cache {

const char *
toString(ServedBy s)
{
    switch (s) {
      case ServedBy::L1: return "L1";
      case ServedBy::L2: return "L2";
      case ServedBy::L3: return "L3";
      case ServedBy::Memory: return "Memory";
    }
    return "?";
}

Hierarchy::Hierarchy(const HierarchyParams &params,
                     energy::EnergyModel *energy, StatRegistry *stats)
    : params_(params), energy_(energy), stats_(stats),
      memory_(params.memory), ring_(params.ring, energy, stats)
{
    if (params_.cores == 0)
        CC_FATAL("hierarchy needs at least one core");
    if (params_.cores > params_.ring.nodes)
        CC_FATAL("more cores (", params_.cores, ") than ring stops (",
                 params_.ring.nodes, ")");

    for (unsigned c = 0; c < params_.cores; ++c) {
        l1_.push_back(std::make_unique<Cache>(
            params_.l1, energy, stats, "l1." + std::to_string(c)));
        l2_.push_back(std::make_unique<Cache>(
            params_.l2, energy, stats, "l2." + std::to_string(c)));
    }
    for (unsigned s = 0; s < params_.ring.nodes; ++s) {
        l3_.push_back(std::make_unique<Cache>(
            params_.l3, energy, stats, "l3." + std::to_string(s)));
        dir_.push_back(std::make_unique<Directory>(params_.cores));
    }

    if (stats_) {
        // Derived hit ratios, evaluated at dump time from the counters.
        auto ratio = [stats = stats_](const char *hits, const char *misses) {
            return [stats, hits, misses]() {
                double h = static_cast<double>(stats->value(hits));
                double m = static_cast<double>(stats->value(misses));
                return h + m == 0.0 ? 0.0 : h / (h + m);
            };
        };
        StatGroup g = stats_->group("hier");
        g.formula("l1_hit_rate",
                  ratio("hier.l1_hits", "hier.l1_misses"),
                  "fraction of L1 lookups served by L1");
        g.formula("l2_hit_rate",
                  ratio("hier.l2_hits", "hier.l2_misses"),
                  "fraction of L2 lookups served by L2");
        g.formula("l3_hit_rate",
                  ratio("hier.l3_hits", "hier.l3_misses"),
                  "fraction of L3 lookups served by L3");

        l1HitsStat_ = &g.counter("l1_hits");
        l1MissesStat_ = &g.counter("l1_misses");
        l2HitsStat_ = &g.counter("l2_hits");
        l2MissesStat_ = &g.counter("l2_misses");
        l3HitsStat_ = &g.counter("l3_hits");
        l3MissesStat_ = &g.counter("l3_misses");
        memReadsStat_ = &g.counter("mem_reads");
        allocNoFetchStat_ = &g.counter("alloc_no_fetch");
        l2WritebacksStat_ = &g.counter("l2_writebacks");
        l3WritebacksStat_ = &g.counter("l3_writebacks");
        ownerWritebacksStat_ = &g.counter("owner_writebacks");
        sharerInvalidationsStat_ = &g.counter("sharer_invalidations");
        upgradesStat_ = &g.counter("upgrades");
        l1WriteHitsStat_ = &g.counter("l1_write_hits");
    }
}

void
Hierarchy::traceAccess(const char *name, CoreId core, Addr addr,
                       const AccessResult &res)
{
    if (!trace_ || !trace_->enabled())
        return;
    Json args = Json::object();
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(addr));
    args["addr"] = buf;
    args["served_by"] = toString(res.servedBy);
    int track = static_cast<int>(core);
    trace_->complete(tracecat::kCache, name, track, trace_->now(track),
                     res.latency, std::move(args));
}

void
Hierarchy::mapPage(Addr addr, unsigned slice)
{
    // Caller-supplied placement: reachable from any bench config, so a
    // bad slice is a configuration error, not a simulator bug.
    if (slice >= l3_.size())
        CC_FATAL("mapPage slice ", slice, " out of range (", l3_.size(),
                 " slices)");
    pageSlice_[alignDown(addr, kPageSize)] = slice;
    lastPage_ = ~Addr{0};   // drop the sliceFor memo: it may now be stale
}

std::optional<unsigned>
Hierarchy::homeSliceIfMapped(Addr addr) const
{
    Addr page = alignDown(addr, kPageSize);
    if (page == lastPage_)
        return lastSlice_;
    auto it = pageSlice_.find(page);
    if (it == pageSlice_.end())
        return std::nullopt;
    lastPage_ = page;
    lastSlice_ = it->second;
    return it->second;
}

void
Hierarchy::setWatchdog(verify::ProgressWatchdog *watchdog)
{
    watchdog_ = watchdog;
    ring_.setWatchdog(watchdog);
    for (auto &dir : dir_)
        dir->setWatchdog(watchdog);
}

unsigned
Hierarchy::sliceFor(CoreId core, Addr addr)
{
    Addr page = alignDown(addr, kPageSize);
    if (page == lastPage_)
        return lastSlice_;
    auto it = pageSlice_.find(page);
    if (it != pageSlice_.end()) {
        lastPage_ = page;
        lastSlice_ = it->second;
        return it->second;
    }
    // First touch: the page lands on the accessing core's local slice
    // (Section IV-C assumption).
    unsigned slice = stopOf(core);
    pageSlice_.emplace(page, slice);
    lastPage_ = page;
    lastSlice_ = slice;
    return slice;
}

void
Hierarchy::l1Writeback(CoreId core, const Eviction &victim)
{
    if (!victim.dirty)
        return;
    // Inclusion: L2 must hold the line; it now owns the modified data.
    bool ok = l2(core).write(victim.addr, victim.data);
    CC_ASSERT(ok, "L1 victim 0x", std::hex, victim.addr,
              " absent from inclusive L2");
    l2(core).setState(victim.addr, Mesi::Modified);
}

Cycles
Hierarchy::l2Eviction(CoreId core, const Eviction &victim)
{
    Cycles latency = 0;

    // Inclusion: drop the L1 copy; its data is at least as new as L2's.
    Block data = victim.data;
    bool dirty = victim.dirty;
    if (auto l1ev = l1(core).invalidate(victim.addr)) {
        if (l1ev->dirty) {
            data = l1ev->data;
            dirty = true;
        }
    }

    unsigned slice = sliceFor(core, victim.addr);
    if (dirty) {
        latency += ring_.send(stopOf(core), slice, noc::MsgClass::Data);
        bool ok = l3Slice(slice).write(victim.addr, data);
        CC_ASSERT(ok, "L2 victim 0x", std::hex, victim.addr,
                  " absent from inclusive L3");
        if (stats_)
            l2WritebacksStat_->inc();
    } else {
        // Presence notification so the directory stays precise.
        latency += ring_.send(stopOf(core), slice, noc::MsgClass::Control);
    }
    directory(slice).removeSharer(victim.addr, core);
    return latency;
}

void
Hierarchy::l3Eviction(unsigned slice, const Eviction &victim)
{
    Block data = victim.data;
    bool dirty = victim.dirty;

    // Inclusive LLC: every private copy must be recalled.
    DirEntry e = directory(slice).entry(victim.addr);
    for (unsigned c = 0; c < params_.cores; ++c) {
        if (!(e.sharers & (1u << c)))
            continue;
        if (auto ev1 = l1(c).invalidate(victim.addr)) {
            if (ev1->dirty) {
                data = ev1->data;
                dirty = true;
            }
        }
        if (auto ev2 = l2(c).invalidate(victim.addr)) {
            if (ev2->dirty && !dirty) {
                data = ev2->data;
                dirty = true;
            }
        }
        ring_.send(slice, stopOf(c), noc::MsgClass::Control);
    }
    directory(slice).clear(victim.addr);

    if (dirty) {
        memory_.writeBlock(victim.addr, data);
        if (energy_)
            energy_->chargeDram();
        if (stats_)
            l3WritebacksStat_->inc();
    }
}

Cycles
Hierarchy::recallFromOwner(CoreId requester, CoreId owner, Addr addr,
                           unsigned slice, bool invalidate_owner)
{
    Cycles latency = ring_.send(slice, stopOf(owner),
                                noc::MsgClass::Control);

    Block newest{};
    bool have = false;
    bool dirty = false;

    if (invalidate_owner) {
        if (auto ev1 = l1(owner).invalidate(addr)) {
            newest = ev1->data;
            have = true;
            dirty = ev1->dirty;
        }
        if (auto ev2 = l2(owner).invalidate(addr)) {
            if (!have || (!dirty && ev2->dirty)) {
                newest = ev2->data;
                have = true;
                dirty = dirty || ev2->dirty;
            }
        }
        directory(slice).removeSharer(addr, owner);
    } else {
        // Downgrade to Shared, pulling the newest data.
        if (const Block *d = l1(owner).peek(addr)) {
            newest = *d;
            have = true;
            dirty = l1(owner).isDirty(addr) ||
                l1(owner).state(addr) == Mesi::Modified;
            l1(owner).setState(addr, Mesi::Shared);
        }
        if (!have) {
            if (const Block *d = l2(owner).peek(addr)) {
                newest = *d;
                have = true;
                dirty = l2(owner).isDirty(addr) ||
                    l2(owner).state(addr) == Mesi::Modified;
            }
        }
        if (l2(owner).contains(addr))
            l2(owner).setState(addr, Mesi::Shared);
        // The written-back data is clean-shared from here on.
        l1(owner).clearDirty(addr);
        l2(owner).clearDirty(addr);
        directory(slice).downgradeOwner(addr);
    }

    if (have) {
        latency += ring_.send(stopOf(owner), slice, noc::MsgClass::Data);
        if (dirty) {
            bool ok = l3Slice(slice).write(addr, newest);
            CC_ASSERT(ok, "recalled line 0x", std::hex, addr,
                      " absent from inclusive L3");
            if (stats_)
                ownerWritebacksStat_->inc();
        }
    }

    (void)requester;
    return latency;
}

Cycles
Hierarchy::invalidateSharers(Addr addr, unsigned slice, CoreId keeper)
{
    Cycles latency = 0;
    std::uint32_t sharers = directory(slice).sharersExcept(addr, keeper);
    for (unsigned c = 0; c < params_.cores; ++c) {
        if (!(sharers & (1u << c)))
            continue;
        latency = std::max(
            latency, ring_.send(slice, stopOf(c), noc::MsgClass::Control));

        Block newest{};
        bool dirty = false;
        if (auto ev1 = l1(c).invalidate(addr)) {
            newest = ev1->data;
            dirty = ev1->dirty;
        }
        if (auto ev2 = l2(c).invalidate(addr)) {
            if (!dirty && ev2->dirty) {
                newest = ev2->data;
                dirty = true;
            } else if (ev2->dirty) {
                // L1 copy was newer; keep it.
            }
        }
        if (dirty) {
            bool ok = l3Slice(slice).write(addr, newest);
            CC_ASSERT(ok, "invalidated dirty line 0x", std::hex, addr,
                      " absent from inclusive L3");
        }
        directory(slice).removeSharer(addr, c);
        if (stats_)
            sharerInvalidationsStat_->inc();
    }
    return latency;
}

Cycles
Hierarchy::fillUpward(CoreId core, Addr addr, const Block &data, Mesi state,
                      CacheLevel fill_to)
{
    Cycles latency = 0;
    if (fill_to == CacheLevel::L3)
        return latency;

    // A set full of pinned CC operands cannot accept the fill; the access
    // is then served without allocating (Section IV-E back-pressure).
    auto fill2 = l2(core).fill(addr, data, state);
    if (!fill2)
        return latency;
    if (fill2->evicted)
        latency += l2Eviction(core, *fill2->evicted);
    directory(sliceFor(core, addr)).addSharer(addr, core);

    if (fill_to == CacheLevel::L2)
        return latency;

    auto fill1 = l1(core).fill(addr, data, state);
    if (!fill1)
        return latency;
    if (fill1->evicted)
        l1Writeback(core, *fill1->evicted);
    return latency;
}

Cycles
Hierarchy::ensureInL3(unsigned slice, Addr addr, bool for_overwrite)
{
    if (l3Slice(slice).contains(addr))
        return 0;

    Cycles latency = 0;
    Block data{};
    if (for_overwrite) {
        // Figure 6 step 4 note: a destination that will be fully
        // overwritten is allocated without a memory read.
        if (stats_)
            allocNoFetchStat_->inc();
    } else {
        data = memory_.readBlock(addr);
        latency += params_.memory.accessLatency;
        if (energy_)
            energy_->chargeDram();
        if (stats_)
            memReadsStat_->inc();
    }

    auto fill = l3Slice(slice).fill(addr, data, Mesi::Exclusive);
    // A workload can legally pin every way of a set with CC operands
    // (extreme but valid config), so exhaustion is fatal, not a panic.
    if (!fill)
        CC_FATAL("L3 slice ", slice, " fill blocked at 0x", std::hex, addr,
                 std::dec, ": every way of the set is pinned by CC operands");
    if (fill->evicted)
        l3Eviction(slice, *fill->evicted);
    return latency;
}

AccessResult
Hierarchy::read(CoreId core, Addr addr, Block *out, CacheLevel fill_to)
{
    if (watchdog_)
        watchdog_->beginTransaction("read", addr);
    AccessResult res = readImpl(core, addr, out, fill_to);
    if (checker_)
        checker_->onTransaction(addr);
    return res;
}

AccessResult
Hierarchy::write(CoreId core, Addr addr, const Block *data,
                 CacheLevel fill_to)
{
    if (watchdog_)
        watchdog_->beginTransaction("write", addr);
    AccessResult res = writeImpl(core, addr, data, fill_to);
    if (checker_)
        checker_->onTransaction(addr);
    return res;
}

Cycles
Hierarchy::fetchToLevel(CoreId core, Addr addr, CacheLevel level,
                        bool exclusive, bool for_overwrite)
{
    if (watchdog_)
        watchdog_->beginTransaction("fetch", addr);
    Cycles latency =
        fetchToLevelImpl(core, addr, level, exclusive, for_overwrite);
    if (checker_)
        checker_->onTransaction(addr);
    return latency;
}

AccessResult
Hierarchy::readImpl(CoreId core, Addr addr, Block *out, CacheLevel fill_to)
{
    addr = alignDown(addr, kBlockSize);
    AccessResult res;
    Block data;

    // L1.
    if (fill_to == CacheLevel::L1 && l1(core).read(addr, data)) {
        res.latency = l1(core).latency();
        res.servedBy = ServedBy::L1;
        if (stats_)
            l1HitsStat_->inc();
        if (out)
            *out = data;
        return res;
    }
    res.latency += l1(core).latency();
    if (stats_)
        l1MissesStat_->inc();

    // L2.
    if (l2(core).read(addr, data)) {
        res.latency += l2(core).latency();
        res.servedBy = ServedBy::L2;
        if (stats_)
            l2HitsStat_->inc();
        if (fill_to == CacheLevel::L1) {
            // A set full of pinned CC operands refuses the fill; the
            // access is served from L2 without allocating.
            auto fill1 = l1(core).fill(addr, data, l2(core).state(addr));
            if (fill1 && fill1->evicted)
                l1Writeback(core, *fill1->evicted);
        }
        if (out)
            *out = data;
        traceAccess("read.l2", core, addr, res);
        return res;
    }
    res.latency += l2(core).latency();
    if (stats_)
        l2MissesStat_->inc();

    // L3 home slice.
    unsigned slice = sliceFor(core, addr);
    res.latency += ring_.send(stopOf(core), slice, noc::MsgClass::Control);
    res.latency += params_.l3.accessLatency + params_.l3QueueDelay;

    if (l3Slice(slice).contains(addr)) {
        res.servedBy = ServedBy::L3;
        if (stats_)
            l3HitsStat_->inc();
        DirEntry e = directory(slice).entry(addr);
        if (e.owner && *e.owner != core)
            res.latency += recallFromOwner(core, *e.owner, addr, slice,
                                           /*invalidate_owner=*/false);
    } else {
        res.servedBy = ServedBy::Memory;
        if (stats_)
            l3MissesStat_->inc();
        res.latency += ensureInL3(slice, addr, /*for_overwrite=*/false);
    }

    bool read_ok = l3Slice(slice).read(addr, data);
    CC_ASSERT(read_ok, "L3 read failed after ensure at 0x", std::hex, addr);

    // Grant: Exclusive if no other private copy, else Shared. The
    // exclusive owner is recorded so later readers trigger a downgrade.
    Mesi grant = directory(slice).sharersExcept(addr, core) == 0
        ? Mesi::Exclusive
        : Mesi::Shared;
    if (grant == Mesi::Exclusive) {
        directory(slice).setOwner(addr, core);
    } else {
        // Downgrade any remaining exclusive holder before sharing.
        DirEntry e = directory(slice).entry(addr);
        if (e.owner && *e.owner != core) {
            res.latency += recallFromOwner(core, *e.owner, addr, slice,
                                           false);
            // The former owner keeps a Shared copy; reflect that here.
            Cache &oL1 = l1(*e.owner);
            if (oL1.contains(addr))
                oL1.setState(addr, Mesi::Shared);
        }
        directory(slice).addSharer(addr, core);
    }

    res.latency += ring_.send(slice, stopOf(core), noc::MsgClass::Data);
    res.latency += fillUpward(core, addr, data, grant, fill_to);
    if (out)
        *out = data;
    traceAccess(res.servedBy == ServedBy::Memory ? "read.mem" : "read.l3",
                core, addr, res);
    return res;
}

AccessResult
Hierarchy::writeImpl(CoreId core, Addr addr, const Block *data,
                     CacheLevel fill_to)
{
    addr = alignDown(addr, kBlockSize);
    AccessResult res;

    // Fast path: writable copy in L1.
    if (fill_to == CacheLevel::L1 && writable(l1(core).state(addr))) {
        Block merged = data ? *data : *l1(core).peek(addr);
        l1(core).write(addr, merged);
        l1(core).setState(addr, Mesi::Modified);
        // Keep the inclusive L2 image fresh (dirtiness stays in L1): a
        // stale-but-valid L2 copy would serve old data after the L1 line
        // is downgraded and silently dropped.
        if (l2(core).contains(addr)) {
            l2(core).poke(addr, merged);
            l2(core).setState(addr, Mesi::Modified);
        }
        res.latency = l1(core).latency();
        res.servedBy = ServedBy::L1;
        if (stats_)
            l1WriteHitsStat_->inc();
        return res;
    }

    // Need ownership: read the current data (which may already traverse
    // the hierarchy), then upgrade.
    Block current;
    res = read(core, addr, &current, fill_to);

    unsigned slice = sliceFor(core, addr);
    Cache &target = fill_to == CacheLevel::L1 ? l1(core)
        : fill_to == CacheLevel::L2 ? l2(core)
                                    : l3Slice(slice);

    if (!writable(target.state(addr))) {
        // Upgrade request to the home slice: invalidate other sharers.
        res.latency +=
            ring_.send(stopOf(core), slice, noc::MsgClass::Control);
        res.latency += invalidateSharers(addr, slice, core);
        if (stats_)
            upgradesStat_->inc();
    } else {
        // Exclusive grant may still leave stale sharers in the directory
        // if another core raced; directory invariants keep this empty.
        res.latency += invalidateSharers(addr, slice, core);
    }

    Block merged = data ? *data : current;
    if (!target.write(addr, merged)) {
        // The fill was blocked by a set full of pinned CC operands; the
        // store completes at the home slice instead, and any private
        // copies of the requester are dropped so nothing stale remains.
        l1(core).invalidate(addr);
        l2(core).invalidate(addr);
        bool ok = l3Slice(slice).write(addr, merged);
        CC_ASSERT(ok, "inclusive L3 lost line 0x", std::hex, addr);
        directory(slice).clear(addr);
        return res;
    }
    target.setState(addr, Mesi::Modified);
    if (fill_to == CacheLevel::L1 && l2(core).contains(addr)) {
        l2(core).poke(addr, merged);
        l2(core).setState(addr, Mesi::Modified);
    }

    if (fill_to == CacheLevel::L3) {
        // Dropping the directory entry while a requester-side copy
        // survives would orphan that copy (no later invalidation could
        // reach it); the L3 line just written holds the newest data, so
        // the private copies can simply be discarded.
        l1(core).invalidate(addr);
        l2(core).invalidate(addr);
        directory(slice).clear(addr);
    } else {
        directory(slice).setOwner(addr, core);
    }
    return res;
}

Cycles
Hierarchy::loadBytes(CoreId core, Addr addr, void *out, std::size_t len)
{
    Cycles total = 0;
    auto *dst = static_cast<std::uint8_t *>(out);
    while (len > 0) {
        Addr base = alignDown(addr, kBlockSize);
        std::size_t off = addr - base;
        std::size_t chunk = std::min(len, kBlockSize - off);
        Block b;
        total += read(core, base, &b).latency;
        if (dst) {
            std::memcpy(dst, b.data() + off, chunk);
            dst += chunk;
        }
        addr += chunk;
        len -= chunk;
    }
    return total;
}

Cycles
Hierarchy::storeBytes(CoreId core, Addr addr, const void *data,
                      std::size_t len)
{
    Cycles total = 0;
    auto *src = static_cast<const std::uint8_t *>(data);
    while (len > 0) {
        Addr base = alignDown(addr, kBlockSize);
        std::size_t off = addr - base;
        std::size_t chunk = std::min(len, kBlockSize - off);

        if (off == 0 && chunk == kBlockSize) {
            Block b;
            if (src)
                std::memcpy(b.data(), src, kBlockSize);
            total += write(core, base, src ? &b : nullptr).latency;
        } else {
            // Partial-line store: read-for-ownership then merge.
            Block current;
            total += read(core, base, &current).latency;
            if (src)
                std::memcpy(current.data() + off, src, chunk);
            total += write(core, base, &current).latency;
        }
        if (src)
            src += chunk;
        addr += chunk;
        len -= chunk;
    }
    return total;
}

Cycles
Hierarchy::fetchToLevelImpl(CoreId core, Addr addr, CacheLevel level,
                            bool exclusive, bool for_overwrite)
{
    addr = alignDown(addr, kBlockSize);

    if (level != CacheLevel::L3) {
        // Fast path: operand already staged with sufficient permission.
        // The residence check is part of the CC command issue; in-place
        // compute senses the bit-cells directly, so no extra port access
        // is charged.
        Cache &target = level == CacheLevel::L1 ? l1(core) : l2(core);
        if (target.contains(addr) &&
            (!exclusive || writable(target.state(addr)))) {
            target.promoteMRU(addr);
            return 0;
        }

        // Otherwise the staging reuses the normal transaction machinery.
        AccessResult res = exclusive
            ? write(core, addr, nullptr, level)
            : read(core, addr, nullptr, level);
        return res.latency;
    }

    // L3 staging (Figure 6): higher-level dirty copies are written back
    // using the existing writeback mechanism; exclusivity for CC writes
    // invalidates all private copies.
    unsigned slice = sliceFor(core, addr);

    // Fast path: already resident with nothing to recall or invalidate.
    // The per-block residence check is part of the CC command issue the
    // controller models, so it costs no separate hierarchy transaction.
    if (l3Slice(slice).contains(addr)) {
        DirEntry quick = directory(slice).entry(addr);
        bool needs_action = false;
        for (unsigned c = 0; c < params_.cores && !needs_action; ++c) {
            if (!(quick.sharers & (1u << c)))
                continue;
            if (exclusive) {
                needs_action = true;
            } else {
                needs_action = l1(c).isDirty(addr) || l2(c).isDirty(addr);
            }
        }
        if (!needs_action)
            return 0;
    }

    Cycles latency =
        ring_.send(stopOf(core), slice, noc::MsgClass::Control);

    DirEntry e = directory(slice).entry(addr);
    for (unsigned c = 0; c < params_.cores; ++c) {
        if (!(e.sharers & (1u << c)))
            continue;
        if (exclusive) {
            latency += recallFromOwner(core, c, addr, slice,
                                       /*invalidate_owner=*/true);
        } else {
            if (l1(c).isDirty(addr) || l2(c).isDirty(addr))
                latency += recallFromOwner(core, c, addr, slice, false);
        }
    }

    latency += ensureInL3(slice, addr, for_overwrite);
    latency += params_.l3.accessLatency + params_.l3QueueDelay;
    return latency;
}

Cache &
Hierarchy::cacheAt(CacheLevel level, CoreId core, Addr addr)
{
    switch (level) {
      case CacheLevel::L1:
        return l1(core);
      case CacheLevel::L2:
        return l2(core);
      case CacheLevel::L3:
        return l3Slice(sliceFor(core, addr));
    }
    CC_PANIC("bad level");
}

CacheLevel
Hierarchy::chooseLevel(CoreId core, const std::vector<Addr> &operands)
{
    // Section IV-E: compute at the highest level where ALL operands are
    // present; if any operand is uncached, compute at L3. No L3 probe is
    // needed: L3 is the unconditional fallback, and the probe's only
    // side effect — sliceFor's first-touch page pinning — is reproduced
    // exactly by ensureInL3 with the same core whenever the op actually
    // computes at L3 (an operand resident in L1/L2 had its page pinned
    // by the fill that brought it there). This runs once per block
    // operand per instruction, so it early-exits as soon as both
    // candidate levels are ruled out.
    bool all_l1 = true, all_l2 = true;
    for (Addr a : operands) {
        Addr blk = alignDown(a, kBlockSize);
        if (all_l1)
            all_l1 = l1(core).contains(blk);
        if (all_l2)
            all_l2 = l2(core).contains(blk);
        if (!all_l1 && !all_l2)
            return CacheLevel::L3;
    }
    if (all_l1)
        return CacheLevel::L1;
    if (all_l2)
        return CacheLevel::L2;
    return CacheLevel::L3;
}

Block
Hierarchy::debugRead(Addr addr)
{
    addr = alignDown(addr, kBlockSize);
    // Private copies can exist only for cores whose sharer bit is set in
    // the home slice's directory, and only for mapped pages (the
    // inclusion and dir.missing_sharer invariants the coherence checker
    // audits, DESIGN.md §9) — so walk the directory instead of probing
    // every core's L1 and L2. Core order is preserved, so the answer is
    // bit-identical to the exhaustive scan.
    if (auto home = homeSliceIfMapped(addr)) {
        DirEntry e = dir_[*home]->entry(addr);
        for (unsigned c = 0; c < params_.cores && e.sharers != 0; ++c) {
            if (!(e.sharers & (1u << c)))
                continue;
            if (const Block *d = l1(c).dirtyPeek(addr))
                return *d;
            if (const Block *d = l2(c).dirtyPeek(addr))
                return *d;
        }
        // L3 residency is possible only at the home slice: every fill
        // goes through ensureInL3 with a sliceFor-derived target, and
        // sliceFor pins the page mapping on first touch (mapPage is
        // pre-access test setup only). L3 data is newest unless a
        // private M copy exists (checked above); L3-dirty beats memory.
        if (const Block *d = l3_[*home]->peek(addr))
            return *d;
    }
    // Unmapped page: never filled anywhere (the coherence checker's
    // "unmapped implies no valid copies" invariant, DESIGN.md §9).
    return memory_.readBlock(addr);
}

void
Hierarchy::debugWrite(Addr addr, const Block &data)
{
    addr = alignDown(addr, kBlockSize);
    memory_.writeBlock(addr, data);
    // Same directory walk as debugRead: only sharer-listed cores can
    // hold private copies, so the old poke-every-cache broadcast (24
    // probes per block on the System::load workload-setup hot path)
    // reduces to the tracked copies plus the slices.
    if (auto home = homeSliceIfMapped(addr)) {
        DirEntry e = dir_[*home]->entry(addr);
        for (unsigned c = 0; c < params_.cores && e.sharers != 0; ++c) {
            if (!(e.sharers & (1u << c)))
                continue;
            l1(c).poke(addr, data);
            l2(c).poke(addr, data);
        }
        // Only the home slice can hold the line (see debugRead); an
        // unmapped page has no cached copies to update at all.
        l3_[*home]->poke(addr, data);
    }
}

void
Hierarchy::flushAll()
{
    // Gather dirty data lowest level first so the copy closest to a core
    // (the newest under single-owner MESI) overwrites staler ones.
    std::unordered_map<Addr, Block> newest;
    auto gather = [&](Cache &cache) {
        cache.forEachLine([&](Addr addr, Mesi, bool dirty,
                              const Block &data) {
            if (dirty)
                newest[addr] = data;
        });
    };
    for (auto &slice : l3_)
        gather(*slice);
    for (unsigned c = 0; c < params_.cores; ++c)
        gather(l2(c));
    for (unsigned c = 0; c < params_.cores; ++c)
        gather(l1(c));

    for (const auto &[addr, data] : newest)
        memory_.writeBlock(addr, data);

    auto clear = [&](Cache &cache) {
        std::vector<Addr> all;
        cache.forEachLine([&](Addr addr, Mesi, bool, const Block &) {
            all.push_back(addr);
        });
        for (Addr addr : all)
            cache.invalidate(addr);
    };
    for (unsigned c = 0; c < params_.cores; ++c) {
        clear(l1(c));
        clear(l2(c));
    }
    for (unsigned s = 0; s < l3_.size(); ++s) {
        std::vector<Addr> tracked;
        l3Slice(s).forEachLine([&](Addr addr, Mesi, bool, const Block &) {
            tracked.push_back(addr);
        });
        clear(l3Slice(s));
        for (Addr addr : tracked)
            directory(s).clear(addr);
    }

    // A flush must leave nothing behind: private lines, slices and
    // directories are all empty, which the full audit confirms.
    if (checker_)
        checker_->checkNow();
}

} // namespace ccache::cache
