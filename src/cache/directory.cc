#include "cache/directory.hh"

#include "common/logging.hh"
#include "verify/watchdog.hh"

namespace ccache::cache {

Directory::Directory(unsigned cores) : cores_(cores)
{
    if (cores == 0 || cores > 32)
        CC_FATAL("directory supports 1-32 cores, got ", cores);
}

DirEntry
Directory::entry(Addr addr) const
{
    auto it = entries_.find(addr);
    return it == entries_.end() ? DirEntry{} : it->second;
}

void
Directory::addSharer(Addr addr, CoreId core)
{
    CC_ASSERT(core < cores_, "core ", core, " out of range");
    if (watchdog_)
        watchdog_->noteDirectoryOp("addSharer", addr);
    DirEntry &e = entries_[addr];
    e.sharers |= (1u << core);
    if (e.owner && *e.owner != core)
        e.owner.reset();
}

void
Directory::setOwner(Addr addr, CoreId core)
{
    CC_ASSERT(core < cores_, "core ", core, " out of range");
    if (watchdog_)
        watchdog_->noteDirectoryOp("setOwner", addr);
    DirEntry &e = entries_[addr];
    e.sharers = (1u << core);
    e.owner = core;
}

void
Directory::downgradeOwner(Addr addr)
{
    if (watchdog_)
        watchdog_->noteDirectoryOp("downgradeOwner", addr);
    auto it = entries_.find(addr);
    if (it != entries_.end())
        it->second.owner.reset();
}

void
Directory::removeSharer(Addr addr, CoreId core)
{
    if (watchdog_)
        watchdog_->noteDirectoryOp("removeSharer", addr);
    auto it = entries_.find(addr);
    if (it == entries_.end())
        return;
    it->second.sharers &= ~(1u << core);
    if (it->second.owner == core)
        it->second.owner.reset();
    if (!it->second.hasSharers())
        entries_.erase(it);
}

void
Directory::clear(Addr addr)
{
    if (watchdog_)
        watchdog_->noteDirectoryOp("clear", addr);
    entries_.erase(addr);
}

std::uint32_t
Directory::sharersExcept(Addr addr, CoreId except) const
{
    return entry(addr).sharers & ~(1u << except);
}

} // namespace ccache::cache
