#include "cache/directory.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "verify/watchdog.hh"

namespace ccache::cache {

Directory::Directory(unsigned cores) : cores_(cores)
{
    if (cores == 0 || cores > 32)
        CC_FATAL("directory supports 1-32 cores, got ", cores);
}

std::size_t
Directory::findSlot(Addr addr) const
{
    if (slots_.empty())
        return 0;
    std::size_t mask = slots_.size() - 1;
    std::size_t i = mix64(addr) & mask;
    while (slots_[i].used) {
        if (slots_[i].key == addr)
            return i;
        i = (i + 1) & mask;
    }
    return slots_.size();
}

DirEntry &
Directory::findOrInsert(Addr addr)
{
    if (slots_.empty())
        slots_.resize(256);
    else if (live_ * 4 >= slots_.size() * 3)
        grow();
    std::size_t mask = slots_.size() - 1;
    std::size_t i = mix64(addr) & mask;
    while (slots_[i].used) {
        if (slots_[i].key == addr)
            return slots_[i].val;
        i = (i + 1) & mask;
    }
    slots_[i].key = addr;
    slots_[i].val = DirEntry{};
    slots_[i].used = true;
    ++live_;
    return slots_[i].val;
}

void
Directory::eraseSlot(std::size_t hole)
{
    std::size_t mask = slots_.size() - 1;
    std::size_t next = (hole + 1) & mask;
    // Backward-shift deletion: pull each displaced successor into the
    // hole iff the hole lies within its cyclic probe range, so every
    // surviving entry stays reachable from its home slot.
    while (slots_[next].used) {
        std::size_t home = mix64(slots_[next].key) & mask;
        if (((next - home) & mask) >= ((next - hole) & mask)) {
            slots_[hole] = slots_[next];
            hole = next;
        }
        next = (next + 1) & mask;
    }
    slots_[hole] = Slot{};
    --live_;
}

void
Directory::grow()
{
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    std::size_t mask = slots_.size() - 1;
    for (const Slot &s : old) {
        if (!s.used)
            continue;
        std::size_t i = mix64(s.key) & mask;
        while (slots_[i].used)
            i = (i + 1) & mask;
        slots_[i] = s;
    }
}

DirEntry
Directory::entry(Addr addr) const
{
    std::size_t i = findSlot(addr);
    return i == slots_.size() || !slots_[i].used ? DirEntry{}
                                                 : slots_[i].val;
}

void
Directory::addSharer(Addr addr, CoreId core)
{
    CC_ASSERT(core < cores_, "core ", core, " out of range");
    if (watchdog_)
        watchdog_->noteDirectoryOp("addSharer", addr);
    DirEntry &e = findOrInsert(addr);
    e.sharers |= (1u << core);
    if (e.owner && *e.owner != core)
        e.owner.reset();
}

void
Directory::setOwner(Addr addr, CoreId core)
{
    CC_ASSERT(core < cores_, "core ", core, " out of range");
    if (watchdog_)
        watchdog_->noteDirectoryOp("setOwner", addr);
    DirEntry &e = findOrInsert(addr);
    e.sharers = (1u << core);
    e.owner = core;
}

void
Directory::downgradeOwner(Addr addr)
{
    if (watchdog_)
        watchdog_->noteDirectoryOp("downgradeOwner", addr);
    std::size_t i = findSlot(addr);
    if (i != slots_.size() && slots_[i].used)
        slots_[i].val.owner.reset();
}

void
Directory::removeSharer(Addr addr, CoreId core)
{
    if (watchdog_)
        watchdog_->noteDirectoryOp("removeSharer", addr);
    std::size_t i = findSlot(addr);
    if (i == slots_.size() || !slots_[i].used)
        return;
    DirEntry &e = slots_[i].val;
    e.sharers &= ~(1u << core);
    if (e.owner == core)
        e.owner.reset();
    if (!e.hasSharers())
        eraseSlot(i);
}

void
Directory::clear(Addr addr)
{
    if (watchdog_)
        watchdog_->noteDirectoryOp("clear", addr);
    std::size_t i = findSlot(addr);
    if (i != slots_.size() && slots_[i].used)
        eraseSlot(i);
}

std::uint32_t
Directory::sharersExcept(Addr addr, CoreId except) const
{
    return entry(addr).sharers & ~(1u << except);
}

} // namespace ccache::cache
