/**
 * @file
 * MESI coherence states (Table IV: directory-based MESI).
 */

#ifndef CCACHE_CACHE_MESI_HH
#define CCACHE_CACHE_MESI_HH

namespace ccache::cache {

/** Classic MESI line states. */
enum class Mesi { Invalid, Shared, Exclusive, Modified };

inline const char *
toString(Mesi state)
{
    switch (state) {
      case Mesi::Invalid: return "I";
      case Mesi::Shared: return "S";
      case Mesi::Exclusive: return "E";
      case Mesi::Modified: return "M";
    }
    return "?";
}

/** True if the state grants write permission without a coherence action. */
inline bool
writable(Mesi state)
{
    return state == Mesi::Exclusive || state == Mesi::Modified;
}

/** True if the line holds valid data. */
inline bool
valid(Mesi state)
{
    return state != Mesi::Invalid;
}

} // namespace ccache::cache

#endif // CCACHE_CACHE_MESI_HH
