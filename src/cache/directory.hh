/**
 * @file
 * Directory for MESI coherence, co-located with each L3 slice (Table IV).
 *
 * Tracks which cores hold a block in their private L1/L2 caches and which
 * (if any) owns it exclusively. The hierarchy consults the directory to
 * forward requests, invalidate sharers and downgrade owners.
 */

#ifndef CCACHE_CACHE_DIRECTORY_HH
#define CCACHE_CACHE_DIRECTORY_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace ccache::verify {
class ProgressWatchdog;
} // namespace ccache::verify

namespace ccache::cache {

/** Directory entry: presence vector plus exclusive owner. */
struct DirEntry
{
    std::uint32_t sharers = 0;           ///< bit per core
    std::optional<CoreId> owner;         ///< core holding E/M

    bool hasSharers() const { return sharers != 0; }
};

/** Per-slice coherence directory. */
class Directory
{
  public:
    explicit Directory(unsigned cores);

    unsigned cores() const { return cores_; }

    /** Entry for @p addr (empty if untracked). */
    DirEntry entry(Addr addr) const;

    /** Record that @p core obtained a shared copy. */
    void addSharer(Addr addr, CoreId core);

    /** Record that @p core obtained the exclusive copy; clears sharers. */
    void setOwner(Addr addr, CoreId core);

    /** Downgrade the owner (E/M -> S); keeps it as a sharer. */
    void downgradeOwner(Addr addr);

    /** Remove @p core's copy. */
    void removeSharer(Addr addr, CoreId core);

    /** Drop all presence info for @p addr (L3 eviction). */
    void clear(Addr addr);

    /** Cores (other than @p except) that must be invalidated for an
     *  exclusive request. */
    std::uint32_t sharersExcept(Addr addr, CoreId except) const;

    std::size_t trackedBlocks() const { return live_; }

    /** Visit every tracked block (coherence audits, diagnostics).
     *  Iteration order is unspecified; order-sensitive callers sort. */
    void forEachEntry(
        const std::function<void(Addr, const DirEntry &)> &fn) const
    {
        for (const Slot &s : slots_) {
            if (s.used)
                fn(s.key, s.val);
        }
    }

    /** Count every mutation against @p watchdog's per-transaction
     *  directory-op ceiling (nullptr detaches). */
    void setWatchdog(verify::ProgressWatchdog *watchdog)
    {
        watchdog_ = watchdog;
    }

  private:
    /** The directory is on the hit path of every L3-level coherence
     *  action, so entries live in a linear-probing open-addressing
     *  table (power-of-two capacity, mix64 hash) rather than a node
     *  heap. Erases use backward-shift deletion to keep probe chains
     *  intact without tombstones (DESIGN.md §13). */
    struct Slot
    {
        Addr key = 0;
        DirEntry val;
        bool used = false;
    };

    /** Index of @p addr's slot, or slots_.size() if untracked. */
    std::size_t findSlot(Addr addr) const;

    /** Entry for @p addr, inserting an empty one if untracked. */
    DirEntry &findOrInsert(Addr addr);

    /** Remove the entry in slot @p hole (backward-shift deletion). */
    void eraseSlot(std::size_t hole);

    void grow();

    unsigned cores_;
    std::vector<Slot> slots_;
    std::size_t live_ = 0;
    verify::ProgressWatchdog *watchdog_ = nullptr;
};

} // namespace ccache::cache

#endif // CCACHE_CACHE_DIRECTORY_HH
