/**
 * @file
 * Directory for MESI coherence, co-located with each L3 slice (Table IV).
 *
 * Tracks which cores hold a block in their private L1/L2 caches and which
 * (if any) owns it exclusively. The hierarchy consults the directory to
 * forward requests, invalidate sharers and downgrade owners.
 */

#ifndef CCACHE_CACHE_DIRECTORY_HH
#define CCACHE_CACHE_DIRECTORY_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "common/types.hh"

namespace ccache::verify {
class ProgressWatchdog;
} // namespace ccache::verify

namespace ccache::cache {

/** Directory entry: presence vector plus exclusive owner. */
struct DirEntry
{
    std::uint32_t sharers = 0;           ///< bit per core
    std::optional<CoreId> owner;         ///< core holding E/M

    bool hasSharers() const { return sharers != 0; }
};

/** Per-slice coherence directory. */
class Directory
{
  public:
    explicit Directory(unsigned cores);

    unsigned cores() const { return cores_; }

    /** Entry for @p addr (empty if untracked). */
    DirEntry entry(Addr addr) const;

    /** Record that @p core obtained a shared copy. */
    void addSharer(Addr addr, CoreId core);

    /** Record that @p core obtained the exclusive copy; clears sharers. */
    void setOwner(Addr addr, CoreId core);

    /** Downgrade the owner (E/M -> S); keeps it as a sharer. */
    void downgradeOwner(Addr addr);

    /** Remove @p core's copy. */
    void removeSharer(Addr addr, CoreId core);

    /** Drop all presence info for @p addr (L3 eviction). */
    void clear(Addr addr);

    /** Cores (other than @p except) that must be invalidated for an
     *  exclusive request. */
    std::uint32_t sharersExcept(Addr addr, CoreId except) const;

    std::size_t trackedBlocks() const { return entries_.size(); }

    /** Visit every tracked block (coherence audits, diagnostics).
     *  Iteration order is unspecified; order-sensitive callers sort. */
    void forEachEntry(
        const std::function<void(Addr, const DirEntry &)> &fn) const
    {
        for (const auto &[addr, entry] : entries_)
            fn(addr, entry);
    }

    /** Count every mutation against @p watchdog's per-transaction
     *  directory-op ceiling (nullptr detaches). */
    void setWatchdog(verify::ProgressWatchdog *watchdog)
    {
        watchdog_ = watchdog;
    }

  private:
    unsigned cores_;
    std::unordered_map<Addr, DirEntry> entries_;
    verify::ProgressWatchdog *watchdog_ = nullptr;
};

} // namespace ccache::cache

#endif // CCACHE_CACHE_DIRECTORY_HH
