#include "cache/cache.hh"

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::cache {

Cache::Cache(const CacheParams &params, energy::EnergyModel *energy,
             StatRegistry *stats, std::string stat_prefix)
    : params_(params), geom_(params.geometry),
      tags_(geom_.numSets(), params.geometry.ways),
      data_(geom_.numSets() * params.geometry.ways, Block{}),
      energy_(energy)
{
    if (stats) {
        StatGroup g = stats->group(stat_prefix);
        readsStat_ = &g.counter("reads", "block reads served");
        writesStat_ = &g.counter("writes", "block writes absorbed");
        fillsStat_ = &g.counter("fills", "lines allocated");
        evictionsStat_ = &g.counter("evictions", "lines evicted");
        invalidationsStat_ =
            &g.counter("invalidations", "coherence invalidations");
        fillBlockedStat_ = &g.counter(
            "fill_blocked_pinned", "fills refused by a fully pinned set");
    }
}

std::optional<std::size_t>
Cache::findWay(Addr addr) const
{
    auto f = geom_.decode(addr);
    Lookup l = tags_.lookup(f.set, f.tag);
    if (!l.hit)
        return std::nullopt;
    return l.way;
}

bool
Cache::contains(Addr addr) const
{
    return findWay(addr).has_value();
}

Mesi
Cache::state(Addr addr) const
{
    auto way = findWay(addr);
    if (!way)
        return Mesi::Invalid;
    return tags_.line(geom_.setIndex(addr), *way).state;
}

void
Cache::setState(Addr addr, Mesi state)
{
    auto way = findWay(addr);
    CC_ASSERT(way, "setState on absent line 0x", std::hex, addr);
    tags_.line(geom_.setIndex(addr), *way).state = state;
}

void
Cache::chargeRead()
{
    if (energy_)
        energy_->chargeCacheOp(params_.level, energy::CacheOp::Read);
    if (readsStat_)
        readsStat_->inc();
}

void
Cache::chargeWrite()
{
    if (energy_)
        energy_->chargeCacheOp(params_.level, energy::CacheOp::Write);
    if (writesStat_)
        writesStat_->inc();
}

bool
Cache::read(Addr addr, Block &out)
{
    auto way = findWay(addr);
    if (!way)
        return false;
    std::size_t set = geom_.setIndex(addr);
    tags_.touch(set, *way);
    out = data_[dataIndex(set, *way)];
    chargeRead();
    return true;
}

bool
Cache::write(Addr addr, const Block &data, bool set_dirty)
{
    auto way = findWay(addr);
    if (!way)
        return false;
    std::size_t set = geom_.setIndex(addr);
    tags_.touch(set, *way);
    data_[dataIndex(set, *way)] = data;
    if (set_dirty)
        tags_.line(set, *way).dirty = true;
    chargeWrite();
    return true;
}

std::optional<FillResult>
Cache::fill(Addr addr, const Block &data, Mesi state)
{
    CC_ASSERT(isAligned(addr, kBlockSize), "fill of unaligned 0x", std::hex,
              addr);
    auto f = geom_.decode(addr);

    // Refill of a line that is already resident just updates it.
    if (auto way = findWay(addr)) {
        tags_.touch(f.set, *way);
        Line &l = tags_.line(f.set, *way);
        l.state = state;
        data_[dataIndex(f.set, *way)] = data;
        chargeWrite();
        return FillResult{*way, std::nullopt};
    }

    auto victim_way = tags_.victim(f.set);
    if (!victim_way) {
        if (fillBlockedStat_)
            fillBlockedStat_->inc();
        return std::nullopt;
    }

    FillResult result{*victim_way, std::nullopt};
    Line &line = tags_.line(f.set, *victim_way);
    if (line.valid()) {
        Eviction ev;
        ev.addr = ((line.tag << geom_.setIndexBits()) | f.set)
            << geom_.blockOffsetBits();
        ev.data = data_[dataIndex(f.set, *victim_way)];
        ev.dirty = line.dirty;
        ev.state = line.state;
        result.evicted = ev;
        if (evictionsStat_)
            evictionsStat_->inc();
    }

    line.tag = f.tag;
    line.state = state;
    line.dirty = false;
    line.pinned = false;
    tags_.touch(f.set, *victim_way);
    data_[dataIndex(f.set, *victim_way)] = data;
    chargeWrite();
    if (fillsStat_)
        fillsStat_->inc();
    return result;
}

std::optional<Eviction>
Cache::invalidate(Addr addr)
{
    auto way = findWay(addr);
    if (!way)
        return std::nullopt;
    std::size_t set = geom_.setIndex(addr);
    Line &line = tags_.line(set, *way);
    Eviction ev;
    ev.addr = addr;
    ev.data = data_[dataIndex(set, *way)];
    ev.dirty = line.dirty;
    ev.state = line.state;
    line.state = Mesi::Invalid;
    line.dirty = false;
    line.pinned = false;
    if (invalidationsStat_)
        invalidationsStat_->inc();
    return ev;
}

bool
Cache::pin(Addr addr)
{
    auto way = findWay(addr);
    if (!way)
        return false;
    tags_.line(geom_.setIndex(addr), *way).pinned = true;
    return true;
}

void
Cache::unpin(Addr addr)
{
    auto way = findWay(addr);
    if (way)
        tags_.line(geom_.setIndex(addr), *way).pinned = false;
}

bool
Cache::isPinned(Addr addr) const
{
    auto way = findWay(addr);
    return way && tags_.line(geom_.setIndex(addr), *way).pinned;
}

void
Cache::promoteMRU(Addr addr)
{
    auto way = findWay(addr);
    if (way)
        tags_.touch(geom_.setIndex(addr), *way);
}

void
Cache::markDirty(Addr addr)
{
    auto way = findWay(addr);
    CC_ASSERT(way, "markDirty on absent line 0x", std::hex, addr);
    std::size_t set = geom_.setIndex(addr);
    tags_.line(set, *way).dirty = true;
    tags_.line(set, *way).state = Mesi::Modified;
}

bool
Cache::isDirty(Addr addr) const
{
    auto way = findWay(addr);
    return way && tags_.line(geom_.setIndex(addr), *way).dirty;
}

void
Cache::clearDirty(Addr addr)
{
    auto way = findWay(addr);
    if (way)
        tags_.line(geom_.setIndex(addr), *way).dirty = false;
}

const Block *
Cache::peek(Addr addr) const
{
    auto way = findWay(addr);
    if (!way)
        return nullptr;
    return &data_[dataIndex(geom_.setIndex(addr), *way)];
}

bool
Cache::poke(Addr addr, const Block &data)
{
    auto way = findWay(addr);
    if (!way)
        return false;
    data_[dataIndex(geom_.setIndex(addr), *way)] = data;
    return true;
}

Addr
Cache::addrOf(std::size_t set, std::size_t way) const
{
    const Line &l = tags_.line(set, way);
    return ((l.tag << geom_.setIndexBits()) | set)
        << geom_.blockOffsetBits();
}

void
Cache::forEachLine(
    const std::function<void(Addr, Mesi, bool, const Block &)> &fn) const
{
    for (std::size_t set = 0; set < geom_.numSets(); ++set) {
        for (std::size_t way = 0; way < params_.geometry.ways; ++way) {
            const Line &l = tags_.line(set, way);
            if (!l.valid())
                continue;
            fn(addrOf(set, way), l.state, l.dirty,
               data_[dataIndex(set, way)]);
        }
    }
}

std::optional<geometry::BlockPlace>
Cache::placeOf(Addr addr) const
{
    auto way = findWay(addr);
    if (!way)
        return std::nullopt;
    return geom_.place(geom_.setIndex(addr), *way);
}

} // namespace ccache::cache
