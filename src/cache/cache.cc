#include "cache/cache.hh"

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::cache {

Cache::Cache(const CacheParams &params, energy::EnergyModel *energy,
             StatRegistry *stats, std::string stat_prefix)
    : params_(params), geom_(params.geometry),
      tags_(geom_.numSets(), params.geometry.ways),
      data_(std::make_unique_for_overwrite<Block[]>(
          geom_.numSets() * params.geometry.ways)),
      energy_(energy)
{
    if (stats) {
        StatGroup g = stats->group(stat_prefix);
        readsStat_ = &g.counter("reads", "block reads served");
        writesStat_ = &g.counter("writes", "block writes absorbed");
        fillsStat_ = &g.counter("fills", "lines allocated");
        evictionsStat_ = &g.counter("evictions", "lines evicted");
        invalidationsStat_ =
            &g.counter("invalidations", "coherence invalidations");
        fillBlockedStat_ = &g.counter(
            "fill_blocked_pinned", "fills refused by a fully pinned set");
    }
}

bool
Cache::contains(Addr addr) const
{
    return locate(addr).has_value();
}

Mesi
Cache::state(Addr addr) const
{
    auto loc = locate(addr);
    if (!loc)
        return Mesi::Invalid;
    return tags_.line(loc->set, loc->way).state;
}

void
Cache::setState(Addr addr, Mesi state)
{
    auto loc = locate(addr);
    CC_ASSERT(loc, "setState on absent line 0x", std::hex, addr);
    tags_.line(loc->set, loc->way).state = state;
}

void
Cache::chargeRead()
{
    if (energy_)
        energy_->chargeCacheOp(params_.level, energy::CacheOp::Read);
    if (readsStat_)
        readsStat_->inc();
}

void
Cache::chargeWrite()
{
    if (energy_)
        energy_->chargeCacheOp(params_.level, energy::CacheOp::Write);
    if (writesStat_)
        writesStat_->inc();
}

bool
Cache::read(Addr addr, Block &out)
{
    auto loc = locate(addr);
    if (!loc)
        return false;
    tags_.touch(loc->set, loc->way);
    out = data_[dataIndex(loc->set, loc->way)];
    chargeRead();
    return true;
}

bool
Cache::write(Addr addr, const Block &data, bool set_dirty)
{
    auto loc = locate(addr);
    if (!loc)
        return false;
    tags_.touch(loc->set, loc->way);
    data_[dataIndex(loc->set, loc->way)] = data;
    if (set_dirty)
        tags_.line(loc->set, loc->way).dirty = true;
    chargeWrite();
    return true;
}

std::optional<FillResult>
Cache::fill(Addr addr, const Block &data, Mesi state)
{
    CC_ASSERT(isAligned(addr, kBlockSize), "fill of unaligned 0x", std::hex,
              addr);
    auto f = geom_.decode(addr);

    // Refill of a line that is already resident just updates it.
    if (Lookup l = tags_.lookup(f.set, f.tag); l.hit) {
        tags_.touch(f.set, l.way);
        tags_.line(f.set, l.way).state = state;
        data_[dataIndex(f.set, l.way)] = data;
        chargeWrite();
        return FillResult{l.way, std::nullopt};
    }

    auto victim_way = tags_.victim(f.set);
    if (!victim_way) {
        if (fillBlockedStat_)
            fillBlockedStat_->inc();
        return std::nullopt;
    }

    FillResult result{*victim_way, std::nullopt};
    Line &line = tags_.line(f.set, *victim_way);
    if (line.valid()) {
        Eviction ev;
        ev.addr = ((line.tag << geom_.setIndexBits()) | f.set)
            << geom_.blockOffsetBits();
        ev.data = data_[dataIndex(f.set, *victim_way)];
        ev.dirty = line.dirty;
        ev.state = line.state;
        result.evicted = ev;
        if (evictionsStat_)
            evictionsStat_->inc();
    }

    line.tag = f.tag;
    line.state = state;
    line.dirty = false;
    line.pinned = false;
    tags_.touch(f.set, *victim_way);
    data_[dataIndex(f.set, *victim_way)] = data;
    chargeWrite();
    if (fillsStat_)
        fillsStat_->inc();
    return result;
}

std::optional<Eviction>
Cache::invalidate(Addr addr)
{
    auto loc = locate(addr);
    if (!loc)
        return std::nullopt;
    Line &line = tags_.line(loc->set, loc->way);
    Eviction ev;
    ev.addr = addr;
    ev.data = data_[dataIndex(loc->set, loc->way)];
    ev.dirty = line.dirty;
    ev.state = line.state;
    line.state = Mesi::Invalid;
    line.dirty = false;
    line.pinned = false;
    if (invalidationsStat_)
        invalidationsStat_->inc();
    return ev;
}

bool
Cache::pin(Addr addr)
{
    auto loc = locate(addr);
    if (!loc)
        return false;
    tags_.line(loc->set, loc->way).pinned = true;
    return true;
}

void
Cache::unpin(Addr addr)
{
    if (auto loc = locate(addr))
        tags_.line(loc->set, loc->way).pinned = false;
}

bool
Cache::isPinned(Addr addr) const
{
    auto loc = locate(addr);
    return loc && tags_.line(loc->set, loc->way).pinned;
}

void
Cache::promoteMRU(Addr addr)
{
    if (auto loc = locate(addr))
        tags_.touch(loc->set, loc->way);
}

void
Cache::markDirty(Addr addr)
{
    auto loc = locate(addr);
    CC_ASSERT(loc, "markDirty on absent line 0x", std::hex, addr);
    Line &l = tags_.line(loc->set, loc->way);
    l.dirty = true;
    l.state = Mesi::Modified;
}

bool
Cache::isDirty(Addr addr) const
{
    auto loc = locate(addr);
    return loc && tags_.line(loc->set, loc->way).dirty;
}

void
Cache::clearDirty(Addr addr)
{
    if (auto loc = locate(addr))
        tags_.line(loc->set, loc->way).dirty = false;
}

const Block *
Cache::dirtyPeek(Addr addr) const
{
    auto loc = locate(addr);
    if (!loc || !tags_.line(loc->set, loc->way).dirty)
        return nullptr;
    return &data_[dataIndex(loc->set, loc->way)];
}

const Block *
Cache::peek(Addr addr) const
{
    auto loc = locate(addr);
    if (!loc)
        return nullptr;
    return &data_[dataIndex(loc->set, loc->way)];
}

bool
Cache::poke(Addr addr, const Block &data)
{
    auto loc = locate(addr);
    if (!loc)
        return false;
    data_[dataIndex(loc->set, loc->way)] = data;
    return true;
}

Addr
Cache::addrOf(std::size_t set, std::size_t way) const
{
    const Line &l = tags_.line(set, way);
    return ((l.tag << geom_.setIndexBits()) | set)
        << geom_.blockOffsetBits();
}

void
Cache::forEachLine(
    const std::function<void(Addr, Mesi, bool, const Block &)> &fn) const
{
    for (std::size_t set = 0; set < geom_.numSets(); ++set) {
        for (std::size_t way = 0; way < params_.geometry.ways; ++way) {
            const Line &l = tags_.line(set, way);
            if (!l.valid())
                continue;
            fn(addrOf(set, way), l.state, l.dirty,
               data_[dataIndex(set, way)]);
        }
    }
}

std::optional<geometry::BlockPlace>
Cache::placeOf(Addr addr) const
{
    auto loc = locate(addr);
    if (!loc)
        return std::nullopt;
    return geom_.place(loc->set, loc->way);
}

} // namespace ccache::cache
