#include "cache/tag_array.hh"

#include "common/logging.hh"

namespace ccache::cache {

TagArray::TagArray(std::size_t sets, std::size_t ways)
    : sets_(sets), ways_(ways), lines_(sets * ways)
{
    CC_ASSERT(sets > 0 && ways > 0, "degenerate tag array");
}

Lookup
TagArray::lookup(std::size_t set, Addr tag) const
{
    CC_ASSERT(set < sets_, "set ", set, " out of range");
    for (std::size_t w = 0; w < ways_; ++w) {
        const Line &l = lines_[index(set, w)];
        if (l.valid() && l.tag == tag)
            return {true, w};
    }
    return {false, 0};
}

void
TagArray::touch(std::size_t set, std::size_t way)
{
    lines_[index(set, way)].lastUse = ++useClock_;
}

std::optional<std::size_t>
TagArray::victim(std::size_t set) const
{
    CC_ASSERT(set < sets_, "set ", set, " out of range");
    std::optional<std::size_t> best;
    std::uint64_t best_use = ~std::uint64_t{0};
    for (std::size_t w = 0; w < ways_; ++w) {
        const Line &l = lines_[index(set, w)];
        if (!l.valid())
            return w;
        if (!l.pinned && l.lastUse < best_use) {
            best_use = l.lastUse;
            best = w;
        }
    }
    return best;
}

Line &
TagArray::line(std::size_t set, std::size_t way)
{
    CC_ASSERT(set < sets_ && way < ways_, "line (", set, ",", way,
              ") out of range");
    return lines_[index(set, way)];
}

const Line &
TagArray::line(std::size_t set, std::size_t way) const
{
    CC_ASSERT(set < sets_ && way < ways_, "line (", set, ",", way,
              ") out of range");
    return lines_[index(set, way)];
}

std::size_t
TagArray::validLines() const
{
    std::size_t n = 0;
    for (const auto &l : lines_)
        n += l.valid() ? 1 : 0;
    return n;
}

} // namespace ccache::cache
