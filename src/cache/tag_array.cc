#include "cache/tag_array.hh"

#include "common/logging.hh"

namespace ccache::cache {

TagArray::TagArray(std::size_t sets, std::size_t ways)
    : sets_(sets), ways_(ways),
      lines_(static_cast<Line *>(std::calloc(sets * ways, sizeof(Line))))
{
    CC_ASSERT(sets > 0 && ways > 0, "degenerate tag array");
    if (!lines_)
        CC_FATAL("tag array allocation failed (", sets, "x", ways, ")");
}

std::optional<std::size_t>
TagArray::victim(std::size_t set) const
{
    CC_ASSERT(set < sets_, "set ", set, " out of range");
    std::optional<std::size_t> best;
    std::uint64_t best_use = ~std::uint64_t{0};
    for (std::size_t w = 0; w < ways_; ++w) {
        const Line &l = lines_[index(set, w)];
        if (!l.valid())
            return w;
        if (!l.pinned && l.lastUse < best_use) {
            best_use = l.lastUse;
            best = w;
        }
    }
    return best;
}

std::size_t
TagArray::validLines() const
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < sets_ * ways_; ++i)
        n += lines_[i].valid() ? 1 : 0;
    return n;
}

} // namespace ccache::cache
