/**
 * @file
 * Three-level inclusive cache hierarchy with directory MESI coherence
 * over a ring NoC, modeled after Table IV (SandyBridge-like, Figure 1a).
 *
 * Eight cores each own a private L1-D and L2; a shared L3 is distributed
 * into per-core NUCA slices on the ring. Transactions execute atomically
 * (gem5-classic style): each access walks the hierarchy, performs all
 * coherence actions, moves real data, and returns its total latency while
 * charging the energy model per event.
 *
 * Compute Cache hooks: fetchToLevel() stages operands at a chosen level
 * (writing back or invalidating private copies as Section IV-E requires),
 * peek/poke give the CC controller in-place data access, and the page ->
 * slice map realizes the paper's "pages map to the NUCA slice closest to
 * the accessing core" assumption.
 */

#ifndef CCACHE_CACHE_HIERARCHY_HH
#define CCACHE_CACHE_HIERARCHY_HH

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "cache/directory.hh"
#include "common/event_trace.hh"
#include "common/stats.hh"
#include "energy/energy_model.hh"
#include "mem/memory.hh"
#include "noc/ring.hh"

namespace ccache::verify {
class CoherenceChecker;
class ProgressWatchdog;
} // namespace ccache::verify

namespace ccache::cache {

/** Configuration of the full hierarchy. */
struct HierarchyParams
{
    unsigned cores = 8;

    CacheParams l1{geometry::CacheGeometryParams::l1d(), CacheLevel::L1, 5};
    CacheParams l2{geometry::CacheGeometryParams::l2(), CacheLevel::L2, 11};
    CacheParams l3{geometry::CacheGeometryParams::l3Slice(), CacheLevel::L3,
                   11};

    /** Queuing delay added to every L3 slice access (Table IV). */
    Cycles l3QueueDelay = 4;

    mem::MemoryParams memory;
    noc::RingParams ring;
};

/** Where an access was served from. */
enum class ServedBy { L1, L2, L3, Memory };

const char *toString(ServedBy s);

/** Timing outcome of one block transaction. */
struct AccessResult
{
    Cycles latency = 0;
    ServedBy servedBy = ServedBy::L1;
};

/** The full memory system. */
class Hierarchy
{
  public:
    Hierarchy(const HierarchyParams &params, energy::EnergyModel *energy,
              StatRegistry *stats);

    const HierarchyParams &params() const { return params_; }
    unsigned cores() const { return params_.cores; }

    Cache &l1(CoreId core) { return *l1_[core]; }
    Cache &l2(CoreId core) { return *l2_[core]; }
    Cache &l3Slice(unsigned slice) { return *l3_[slice]; }
    Directory &directory(unsigned slice) { return *dir_[slice]; }
    mem::Memory &memory() { return memory_; }
    noc::Ring &ring() { return ring_; }

    /** NUCA page placement (first touch binds a page to the accessing
     *  core's slice; mapPage overrides). @{ */
    void mapPage(Addr addr, unsigned slice);
    unsigned sliceFor(CoreId core, Addr addr);
    /** @} */

    /** Home slice of @p addr's page, without binding an untouched page
     *  (side-effect-free sliceFor, for auditors). */
    std::optional<unsigned> homeSliceIfMapped(Addr addr) const;

    /**
     * Runtime verification hooks (DESIGN.md §9), both detachable with
     * nullptr. The checker audits coherence invariants after every
     * read/write/fetch transaction and after flushAll; the watchdog is
     * notified at each transaction start and forwarded to the ring and
     * the directories so their progress counts against its ceilings.
     * Disabled (the default), each hook costs one branch. @{
     */
    void setChecker(verify::CoherenceChecker *checker)
    {
        checker_ = checker;
    }
    void setWatchdog(verify::ProgressWatchdog *watchdog);
    /** @} */

    /** Attach (or detach with nullptr) a timeline event sink. Reads
     *  served beyond L1 become cache-category events; the sink is also
     *  forwarded to the ring. */
    void setTraceSink(EventTrace *trace)
    {
        trace_ = trace;
        ring_.setTraceSink(trace);
    }

    /**
     * Coherent block read: data lands in the core's L1 (unless
     * @p fill_to limits the fill depth) and is returned via @p out.
     */
    AccessResult read(CoreId core, Addr addr, Block *out = nullptr,
                      CacheLevel fill_to = CacheLevel::L1);

    /**
     * Coherent block write (request-for-ownership + full-block store).
     * With @p data null, only the ownership/dirty transition happens
     * (used for partial-line stores after a read-for-ownership).
     */
    AccessResult write(CoreId core, Addr addr, const Block *data = nullptr,
                       CacheLevel fill_to = CacheLevel::L1);

    /** Byte-granular convenience wrappers (split across blocks). @{ */
    Cycles loadBytes(CoreId core, Addr addr, void *out, std::size_t len);
    Cycles storeBytes(CoreId core, Addr addr, const void *data,
                      std::size_t len);
    /** @} */

    /**
     * Stage @p addr at @p level for an in-place CC operation
     * (Section IV-E): private copies above the level are written back
     * (and invalidated if @p exclusive); the block is fetched from below
     * if absent. With @p for_overwrite, an L3 miss allocates the line
     * without reading memory — the Figure 6 optimization for operands
     * that will be overwritten entirely.
     *
     * @return total latency of the staging.
     */
    Cycles fetchToLevel(CoreId core, Addr addr, CacheLevel level,
                        bool exclusive, bool for_overwrite = false);

    /** The cache that holds @p addr at @p level for @p core. */
    Cache &cacheAt(CacheLevel level, CoreId core, Addr addr);

    /** Highest (fastest) level at which ALL operands are present for
     *  @p core; L3 if any operand is uncached (Section IV-E policy). */
    CacheLevel chooseLevel(CoreId core, const std::vector<Addr> &operands);

    /**
     * Authoritative current value of a block (highest dirty copy wins),
     * without timing or energy side effects. For checking and loaders.
     */
    Block debugRead(Addr addr);

    /** Functional back-door write to memory AND all cached copies
     *  (workload setup). */
    void debugWrite(Addr addr, const Block &data);

    /** Drop every cached block (between benchmark phases). Dirty data is
     *  flushed to memory. */
    void flushAll();

  private:
    /** Pre-hook bodies of the public transaction entry points. @{ */
    AccessResult readImpl(CoreId core, Addr addr, Block *out,
                          CacheLevel fill_to);
    AccessResult writeImpl(CoreId core, Addr addr, const Block *data,
                           CacheLevel fill_to);
    Cycles fetchToLevelImpl(CoreId core, Addr addr, CacheLevel level,
                            bool exclusive, bool for_overwrite);
    /** @} */

    /** Ring stop of a core (cores and slices share stops). */
    unsigned stopOf(CoreId core) const { return core % params_.ring.nodes; }

    /** Write @p victim back from L1 into L2 (inclusion guarantees a
     *  resident line). */
    void l1Writeback(CoreId core, const Eviction &victim);

    /** Handle an L2 eviction: invalidate the L1 copy, write dirty data to
     *  the home L3 slice, update the directory. Returns extra latency. */
    Cycles l2Eviction(CoreId core, const Eviction &victim);

    /** Handle an L3 slice eviction: back-invalidate all private copies,
     *  write dirty data to memory. */
    void l3Eviction(unsigned slice, const Eviction &victim);

    /** Pull the newest private copy of @p addr held by @p owner into the
     *  home slice; downgrades (read) or invalidates (exclusive) the
     *  owner's copies. Returns added latency. */
    Cycles recallFromOwner(CoreId requester, CoreId owner, Addr addr,
                           unsigned slice, bool invalidate_owner);

    /** Invalidate every private copy except @p keeper's. */
    Cycles invalidateSharers(Addr addr, unsigned slice, CoreId keeper);

    /** Fill path L3 -> L2 -> L1 after a slice grant. */
    Cycles fillUpward(CoreId core, Addr addr, const Block &data, Mesi state,
                      CacheLevel fill_to);

    /** Ensure the home slice holds @p addr; fetch from memory if not.
     *  Returns added latency. */
    Cycles ensureInL3(unsigned slice, Addr addr, bool for_overwrite);

    /** Record one served-beyond-L1 access on @p core's timeline track. */
    void traceAccess(const char *name, CoreId core, Addr addr,
                     const AccessResult &res);

    HierarchyParams params_;
    energy::EnergyModel *energy_;
    StatRegistry *stats_;
    EventTrace *trace_ = nullptr;
    verify::CoherenceChecker *checker_ = nullptr;
    verify::ProgressWatchdog *watchdog_ = nullptr;

    std::vector<std::unique_ptr<Cache>> l1_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::vector<std::unique_ptr<Cache>> l3_;
    std::vector<std::unique_ptr<Directory>> dir_;
    mem::Memory memory_;
    noc::Ring ring_;
    std::unordered_map<Addr, unsigned> pageSlice_;
    /** One-entry memo over pageSlice_: accesses stream through a page
     *  (64 blocks), so the last-page hit rate is high enough to skip
     *  most hash probes on the sliceFor / homeSliceIfMapped hot paths
     *  (DESIGN.md §13). Only mapped pages are memoized; invalidated by
     *  mapPage. Mutable: homeSliceIfMapped is logically const. @{ */
    mutable Addr lastPage_ = ~Addr{0};
    mutable unsigned lastSlice_ = 0;
    /** @} */

    /** Counters pre-registered under "hier." so the transaction hot
     *  paths increment through stable pointers instead of resolving
     *  dotted names per access (same pattern as Cache). Null without a
     *  registry. @{ */
    StatCounter *l1HitsStat_ = nullptr;
    StatCounter *l1MissesStat_ = nullptr;
    StatCounter *l2HitsStat_ = nullptr;
    StatCounter *l2MissesStat_ = nullptr;
    StatCounter *l3HitsStat_ = nullptr;
    StatCounter *l3MissesStat_ = nullptr;
    StatCounter *memReadsStat_ = nullptr;
    StatCounter *allocNoFetchStat_ = nullptr;
    StatCounter *l2WritebacksStat_ = nullptr;
    StatCounter *l3WritebacksStat_ = nullptr;
    StatCounter *ownerWritebacksStat_ = nullptr;
    StatCounter *sharerInvalidationsStat_ = nullptr;
    StatCounter *upgradesStat_ = nullptr;
    StatCounter *l1WriteHitsStat_ = nullptr;
    /** @} */
};

} // namespace ccache::cache

#endif // CCACHE_CACHE_HIERARCHY_HH
