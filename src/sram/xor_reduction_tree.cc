#include "sram/xor_reduction_tree.hh"

#include <bit>

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::sram {

XorReductionTree::XorReductionTree(std::size_t width) : width_(width)
{
    CC_ASSERT(width > 0, "reduction tree needs input bits");
}

bool
XorReductionTree::reduceAll(const BitVector &input) const
{
    CC_ASSERT(input.size() == width_, "input width ", input.size(),
              " != tree width ", width_);
    return (input.popcount() & 1) != 0;
}

std::vector<bool>
XorReductionTree::reduceWords(const BitVector &input,
                              std::size_t word_bits) const
{
    CC_ASSERT(input.size() == width_, "input width mismatch");
    CC_ASSERT(word_bits == 64 || word_bits == 128 || word_bits == 256,
              "clmul word width must be 64/128/256, got ", word_bits);
    CC_ASSERT(width_ % word_bits == 0, "row width ", width_,
              " not a multiple of word width ", word_bits);

    // word_bits is a multiple of 64, so each reduction word covers whole
    // packed words of the input and the parity is a popcount reduction.
    const auto &words = input.words();
    const std::size_t packed_per = word_bits / 64;
    std::vector<bool> parities;
    parities.reserve(width_ / word_bits);
    for (std::size_t w = 0; w < width_ / word_bits; ++w) {
        unsigned ones = 0;
        for (std::size_t j = 0; j < packed_per; ++j)
            ones += std::popcount(words[w * packed_per + j]);
        parities.push_back((ones & 1) != 0);
    }
    return parities;
}

std::size_t
XorReductionTree::depth(std::size_t word_bits)
{
    return log2Ceil(word_bits);
}

} // namespace ccache::sram
