/**
 * @file
 * Sense amplifier models: differential (baseline read) and single-ended
 * (bit-line compute), including a sense-margin robustness analysis used to
 * reproduce the Monte-Carlo-style stability claims of Jeloka et al.
 *
 * The compute path re-configures each differential sense amplifier into
 * two single-ended amplifiers so that BL and BLB can be observed
 * independently (Section IV-B).
 */

#ifndef CCACHE_SRAM_SENSE_AMP_HH
#define CCACHE_SRAM_SENSE_AMP_HH

#include <cstddef>
#include <vector>

#include "common/bitvector.hh"
#include "common/rng.hh"
#include "sram/bitcell_array.hh"

namespace ccache::sram {

/** Operating mode of the sense-amplifier column periphery. */
enum class SenseMode {
    Differential,  ///< BL vs BLB, baseline read
    SingleEnded,   ///< BL (or BLB) vs Vref, compute sensing
};

/** Column periphery: a bank of sense amplifiers for one sub-array. */
class SenseAmpArray
{
  public:
    explicit SenseAmpArray(std::size_t columns, double vref = 0.5);

    std::size_t columns() const { return columns_; }
    double vref() const { return vref_; }

    /** Differential sense of every column: bit = (BL > BLB). */
    BitVector senseDifferential(const BitlineLevels &levels) const;

    /** Single-ended sense of BL against Vref (yields AND for 2 rows). */
    BitVector senseBL(const BitlineLevels &levels) const;

    /** Single-ended sense of BLB against Vref (yields NOR for 2 rows). */
    BitVector senseBLB(const BitlineLevels &levels) const;

    /**
     * Sense margin of a single-ended observation: the smallest distance
     * between any column's level and Vref. A sense fails when amplifier
     * offset exceeds this margin.
     */
    double senseMargin(const std::vector<double> &levels) const;

    /**
     * Monte-Carlo failure-probability estimate: draw @p trials Gaussian
     * amplifier offsets with standard deviation @p offset_sigma and count
     * how many exceed @p margin. Jeloka et al. report more than six-sigma
     * robustness; tests assert zero failures at realistic sigma.
     */
    static double monteCarloFailureRate(double margin, double offset_sigma,
                                        std::size_t trials, Rng &rng);

  private:
    std::size_t columns_;
    double vref_;
};

} // namespace ccache::sram

#endif // CCACHE_SRAM_SENSE_AMP_HH
