#include "sram/subarray.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/logging.hh"

namespace ccache::sram {

namespace {

/** Number of distinct BitlineOp values, for the op-count array. */
constexpr std::size_t kNumOps =
    static_cast<std::size_t>(BitlineOp::CmpStep) + 1;

std::size_t
opIndex(BitlineOp op)
{
    return static_cast<std::size_t>(op);
}

/** -1 = follow the environment, 0/1 = forced by a test. */
std::atomic<int> g_scalar_override{-1};

bool
scalarBitlineEnv()
{
    const char *env = std::getenv("CCACHE_SCALAR_BITLINE");
    return env && env[0] == '1';
}

} // namespace

bool
SubArray::scalarBitline()
{
    int forced = g_scalar_override.load(std::memory_order_relaxed);
    if (forced >= 0)
        return forced != 0;
    static const bool from_env = scalarBitlineEnv();
    return from_env;
}

void
SubArray::forceScalarBitline(std::optional<bool> on)
{
    g_scalar_override.store(on ? (*on ? 1 : 0) : -1,
                            std::memory_order_relaxed);
}

SubArray::SubArray(const SubArrayParams &params)
    : params_(params), cells_(params.rows, params.cols),
      senseAmps_(params.cols), xorTree_(8 * kBlockSize),
      opCounts_(kNumOps, 0)
{
    params_.validate();
}

std::pair<std::size_t, std::size_t>
SubArray::columnRange(std::size_t p) const
{
    std::size_t width = 8 * kBlockSize;
    return {p * width, (p + 1) * width};
}

BitVector
SubArray::extractPartition(const BitVector &row_bits, std::size_t p) const
{
    auto [lo, hi] = columnRange(p);
    BitVector out(hi - lo);
    if (!scalarBitline()) {
        // Partitions are whole 64-bit words (the block width is 512 bits
        // and cols is a multiple of it), so the extraction is a word copy.
        const auto &src = row_bits.words();
        auto &dst = out.words();
        std::copy(src.begin() + lo / 64, src.begin() + lo / 64 + dst.size(),
                  dst.begin());
        return out;
    }
    for (std::size_t c = lo; c < hi; ++c)
        out.set(c - lo, row_bits.get(c));
    return out;
}

void
SubArray::checkLoc(const BlockLoc &loc) const
{
    CC_ASSERT(loc.partition < partitions(), "partition ", loc.partition,
              " out of range ", partitions());
    CC_ASSERT(loc.row < params_.rows, "row ", loc.row, " out of range ",
              params_.rows);
}

void
SubArray::checkSamePartition(const BlockLoc &a, const BlockLoc &b) const
{
    checkLoc(a);
    checkLoc(b);
    CC_ASSERT(a.partition == b.partition,
              "in-place operands must share a block partition (",
              a.partition, " vs ", b.partition, ")");
}

void
SubArray::attachFaults(fault::FaultInjector *injector,
                       std::uint64_t base_id)
{
    faults_ = injector;
    faultBaseId_ = base_id;
}

BitVector
SubArray::senseBlock(const BlockLoc &loc)
{
    BitVector bits;
    if (scalarBitline()) {
        auto levels = cells_.activate({loc.row}, params_.wordlineUnderdrive);
        auto full = senseAmps_.senseDifferential(levels);
        bits = extractPartition(full, loc.partition);
    } else {
        // A single-row differential sense observes exactly the stored bits
        // (BL/BLB sit at 1.0 vs 0.4) and one active row can never disturb,
        // so the sense is a word copy of the packed row (DESIGN.md §13).
        bits = extractPartition(cells_.row(loc.row), loc.partition);
    }

    // Single-row sensing sees full margin: only cell defects and
    // in-flight soft errors can corrupt the observed bits.
    lastSenseFault_ = fault::FaultEvent{};
    if (faults_ && faults_->enabled()) {
        Addr cell_key = loc.row * partitions() + loc.partition;
        fault::FaultEvent stuck =
            faults_->stuckAtFault(faultBaseId_, cell_key);
        fault::FaultInjector::corrupt(bits, stuck);
        fault::FaultEvent transient =
            faults_->drawOperandFault(faultBaseId_);
        fault::FaultInjector::corrupt(bits, transient);
        lastSenseFault_ = transient.none() ? stuck : transient;
    }
    return bits;
}

void
SubArray::storeBlock(const BlockLoc &loc, const BitVector &bits)
{
    CC_ASSERT(bits.size() == 8 * kBlockSize, "block bit width mismatch");
    auto [lo, hi] = columnRange(loc.partition);
    if (!scalarBitline()) {
        cells_.writeWordsThroughBitlines(loc.row, lo / 64, bits);
        return;
    }
    BitVector row = cells_.readRow(loc.row);
    for (std::size_t c = lo; c < hi; ++c)
        row.set(c, bits.get(c - lo));
    cells_.writeThroughBitlines(loc.row, row);
}

Block
SubArray::read(const BlockLoc &loc, OpCost *cost)
{
    checkLoc(loc);
    ++opCounts_[opIndex(BitlineOp::Read)];
    if (cost) {
        cost->delay = params_.opDelay(BitlineOp::Read);
        cost->energy = params_.opEnergy(BitlineOp::Read);
    }
    return bitsToBlock(senseBlock(loc));
}

void
SubArray::write(const BlockLoc &loc, const Block &data, OpCost *cost)
{
    checkLoc(loc);
    ++opCounts_[opIndex(BitlineOp::Write)];
    if (cost) {
        cost->delay = params_.opDelay(BitlineOp::Write);
        cost->energy = params_.opEnergy(BitlineOp::Write);
    }
    storeBlock(loc, blockToBits(data));
}

SubArray::TwoRowSense
SubArray::activatePair(const BlockLoc &a, const BlockLoc &b)
{
    checkSamePartition(a, b);
    CC_ASSERT(a.row != b.row, "in-place op needs two distinct rows");
    TwoRowSense sense;
    if (scalarBitline()) {
        auto levels = cells_.activate({a.row, b.row},
                                      params_.wordlineUnderdrive);
        sense.andBits = extractPartition(senseAmps_.senseBL(levels),
                                         a.partition);
        sense.norBits = extractPartition(senseAmps_.senseBLB(levels),
                                         a.partition);
    } else {
        pairRows_[0] = a.row;
        pairRows_[1] = b.row;
        auto digital =
            cells_.activateWords(pairRows_, params_.wordlineUnderdrive);
        sense.andBits = extractPartition(digital.andBits, a.partition);
        sense.norBits = extractPartition(digital.norBits, a.partition);
    }

    // Dual-row activation halves the worst-case sense margin: an
    // injected margin failure flips the weakest column's observation on
    // both the BL and BLB senses.
    lastMarginFailed_ = false;
    if (faults_ && faults_->enabled() &&
        faults_->drawMarginFailure(faultBaseId_)) {
        lastMarginFailed_ = true;
        std::size_t bit = faults_->drawBelow(sense.andBits.size());
        sense.andBits.set(bit, !sense.andBits.get(bit));
        sense.norBits.set(bit, !sense.norBits.get(bit));
    }
    return sense;
}

OpCost
SubArray::logicalOp(BitlineOp op, const BlockLoc &a, const BlockLoc &b,
                    const BlockLoc &dst)
{
    checkSamePartition(a, b);
    checkSamePartition(a, dst);
    ++opCounts_[opIndex(op)];

    auto sense = activatePair(a, b);
    BitVector result(8 * kBlockSize);
    switch (op) {
      case BitlineOp::And:
        result = sense.andBits;
        break;
      case BitlineOp::Nor:
        result = sense.norBits;
        break;
      case BitlineOp::Or:
        // OR = NOT(NOR): the sense output is inverted before the
        // write-back driver.
        result = ~sense.norBits;
        break;
      case BitlineOp::Xor:
        // XOR = NOR(AND, NOR): neither both-ones nor both-zeros.
        result = ~(sense.andBits | sense.norBits);
        break;
      default:
        CC_PANIC("not a two-operand logical op: ", toString(op));
    }
    storeBlock(dst, result);
    return {params_.opDelay(op), params_.opEnergy(op)};
}

OpCost
SubArray::opAnd(const BlockLoc &a, const BlockLoc &b, const BlockLoc &dst)
{
    return logicalOp(BitlineOp::And, a, b, dst);
}

OpCost
SubArray::opOr(const BlockLoc &a, const BlockLoc &b, const BlockLoc &dst)
{
    return logicalOp(BitlineOp::Or, a, b, dst);
}

OpCost
SubArray::opXor(const BlockLoc &a, const BlockLoc &b, const BlockLoc &dst)
{
    return logicalOp(BitlineOp::Xor, a, b, dst);
}

OpCost
SubArray::opNor(const BlockLoc &a, const BlockLoc &b, const BlockLoc &dst)
{
    return logicalOp(BitlineOp::Nor, a, b, dst);
}

OpCost
SubArray::opNot(const BlockLoc &src, const BlockLoc &dst)
{
    checkSamePartition(src, dst);
    ++opCounts_[opIndex(BitlineOp::Not)];

    // Single-row activation; BLB carries the complement of the stored data.
    BitVector result;
    if (scalarBitline()) {
        auto levels = cells_.activate({src.row}, params_.wordlineUnderdrive);
        result = extractPartition(senseAmps_.senseBLB(levels),
                                  src.partition);
    } else {
        result = ~extractPartition(cells_.row(src.row), src.partition);
    }
    storeBlock(dst, result);
    return {params_.opDelay(BitlineOp::Not),
            params_.opEnergy(BitlineOp::Not)};
}

OpCost
SubArray::opCopy(const BlockLoc &src, const BlockLoc &dst)
{
    checkSamePartition(src, dst);
    CC_ASSERT(src.row != dst.row, "copy needs distinct rows");
    ++opCounts_[opIndex(BitlineOp::Copy)];

    // Figure 4: the sense amplifiers read the source and their outputs are
    // fed straight back onto the bit-lines while the destination word-line
    // is write-enabled. The data never leaves the sub-array.
    BitVector sensed = senseBlock(src);
    storeBlock(dst, sensed);
    return {params_.opDelay(BitlineOp::Copy),
            params_.opEnergy(BitlineOp::Copy)};
}

OpCost
SubArray::opBuz(const BlockLoc &loc)
{
    checkLoc(loc);
    ++opCounts_[opIndex(BitlineOp::Buz)];

    // Resetting the input data latch before the write drives zeros.
    storeBlock(loc, BitVector(8 * kBlockSize));
    return {params_.opDelay(BitlineOp::Buz),
            params_.opEnergy(BitlineOp::Buz)};
}

CmpResult
SubArray::opCmp(const BlockLoc &a, const BlockLoc &b)
{
    checkSamePartition(a, b);
    ++opCounts_[opIndex(BitlineOp::Cmp)];

    // Bit-wise XOR computed on the bit-lines; per-word equality is the
    // wired-NOR of the 64 XOR outputs of that word.
    auto sense = activatePair(a, b);
    BitVector xorBits = ~(sense.andBits | sense.norBits);

    CmpResult result;
    if (!scalarBitline()) {
        // Each 64-bit block word is exactly one packed word of the 512-bit
        // partition, so the wired-NOR per word is a zero test.
        const auto &xor_w = xorBits.words();
        for (std::size_t w = 0; w < kWordsPerBlock; ++w) {
            if (xor_w[w] == 0)
                result.wordEqualMask |= std::uint64_t{1} << w;
        }
    } else {
        for (std::size_t w = 0; w < kWordsPerBlock; ++w) {
            bool any_diff = false;
            for (std::size_t bit = 0; bit < 64; ++bit)
                any_diff |= xorBits.get(w * 64 + bit);
            if (!any_diff)
                result.wordEqualMask |= std::uint64_t{1} << w;
        }
    }
    result.allEqual =
        result.wordEqualMask == (std::uint64_t{1} << kWordsPerBlock) - 1;
    result.cost = {params_.opDelay(BitlineOp::Cmp),
                   params_.opEnergy(BitlineOp::Cmp)};
    return result;
}

CmpResult
SubArray::opSearch(const BlockLoc &key, const BlockLoc &data)
{
    checkSamePartition(key, data);
    ++opCounts_[opIndex(BitlineOp::Search)];

    CmpResult result = opCmp(key, data);
    // opCmp above already counted itself; attribute the activity to search
    // instead so op counts stay meaningful.
    --opCounts_[opIndex(BitlineOp::Cmp)];
    result.cost = {params_.opDelay(BitlineOp::Search),
                   params_.opEnergy(BitlineOp::Search)};
    return result;
}

ClmulResult
SubArray::opClmul(const BlockLoc &a, const BlockLoc &b,
                  std::size_t word_bits)
{
    checkSamePartition(a, b);
    ++opCounts_[opIndex(BitlineOp::Clmul)];

    auto sense = activatePair(a, b);
    ClmulResult result;
    result.parities = xorTree_.reduceWords(sense.andBits, word_bits);
    result.cost = {params_.opDelay(BitlineOp::Clmul),
                   params_.opEnergy(BitlineOp::Clmul)};
    return result;
}

void
SubArray::checkBitSerial(const BitSerialOperand &o, std::size_t width) const
{
    CC_ASSERT(width >= 1 && width <= 32, "bit-serial width ", width,
              " out of the 1..32 range");
    CC_ASSERT(o.partition < partitions(), "partition ", o.partition,
              " out of range ", partitions());
    CC_ASSERT(o.row0 + width <= params_.rows, "bit-slice rows ", o.row0,
              "..", o.row0 + width, " exceed sub-array height ",
              params_.rows);
}

void
SubArray::chargeStep(BitlineOp op, OpCost *cost)
{
    ++opCounts_[opIndex(op)];
    cost->delay += params_.opDelay(op);
    cost->energy += params_.opEnergy(op);
}

OpCost
SubArray::opBitSerialAdd(const BitSerialOperand &a, const BitSerialOperand &b,
                         const BitSerialOperand &dst, std::size_t width)
{
    checkBitSerial(a, width);
    checkBitSerial(b, width);
    checkBitSerial(dst, width);
    CC_ASSERT(a.partition == b.partition && a.partition == dst.partition,
              "bit-serial operands must share a block partition");
    // Exact aliasing (dst == a or dst == b) is safe -- slice k is
    // consumed before it is overwritten -- but a partially-overlapping
    // destination would clobber not-yet-read source slices.
    auto aligned_or_disjoint = [&](const BitSerialOperand &s) {
        return dst.row0 == s.row0 ||
            dst.row0 + width <= s.row0 || s.row0 + width <= dst.row0;
    };
    CC_ASSERT(aligned_or_disjoint(a) && aligned_or_disjoint(b),
              "bit-serial destination partially overlaps a source");

    OpCost cost;
    carryLatch_ = BitVector(8 * kBlockSize);
    for (std::size_t k = 0; k < width; ++k) {
        // One dual-row activation senses AND on BL and NOR on BLB; the
        // enhanced sense amp derives XOR, folds in the carry latch and
        // drives the sum back while latching the next carry
        // (sum = a^b^c, c' = ab | c(a^b)).
        auto sense = activatePair(sliceLoc(a, k), sliceLoc(b, k));
        BitVector x = ~(sense.andBits | sense.norBits);
        BitVector sum = x ^ carryLatch_;
        carryLatch_ = sense.andBits | (x & carryLatch_);
        storeBlock(sliceLoc(dst, k), sum);
        chargeStep(BitlineOp::AddStep, &cost);
    }
    return cost;
}

OpCost
SubArray::opBitSerialSub(const BitSerialOperand &a, const BitSerialOperand &b,
                         const BitSerialOperand &dst, std::size_t width)
{
    checkBitSerial(a, width);
    checkBitSerial(b, width);
    checkBitSerial(dst, width);
    CC_ASSERT(a.partition == b.partition && a.partition == dst.partition,
              "bit-serial operands must share a block partition");
    auto aligned_or_disjoint = [&](const BitSerialOperand &s) {
        return dst.row0 == s.row0 ||
            dst.row0 + width <= s.row0 || s.row0 + width <= dst.row0;
    };
    CC_ASSERT(aligned_or_disjoint(a) && aligned_or_disjoint(b),
              "bit-serial destination partially overlaps a source");

    OpCost cost;
    carryLatch_ = BitVector(8 * kBlockSize);  // borrow latch
    for (std::size_t k = 0; k < width; ++k) {
        // diff = a^b^borrow; borrow' = (~a & b) | (~(a^b) & borrow).
        // ~a & b is not directly sensed by the pair activation, but
        // b & (a^b) equals it, so one extra single-row sense of the b
        // slice recovers the borrow term (costed by SubStep).
        auto sense = activatePair(sliceLoc(a, k), sliceLoc(b, k));
        BitVector x = ~(sense.andBits | sense.norBits);
        BitVector bbits = senseBlock(sliceLoc(b, k));
        BitVector diff = x ^ carryLatch_;
        carryLatch_ = (bbits & x) | (~x & carryLatch_);
        storeBlock(sliceLoc(dst, k), diff);
        chargeStep(BitlineOp::SubStep, &cost);
    }
    return cost;
}

OpCost
SubArray::opBitSerialMul(const BitSerialOperand &a, const BitSerialOperand &b,
                         const BitSerialOperand &dst, std::size_t width)
{
    checkBitSerial(a, width);
    checkBitSerial(b, width);
    checkBitSerial(dst, width);
    CC_ASSERT(a.partition == b.partition && a.partition == dst.partition,
              "bit-serial operands must share a block partition");
    // The accumulator is read-modify-written per partial product, so it
    // cannot overlay either source.
    auto overlaps = [&](const BitSerialOperand &s) {
        return dst.row0 < s.row0 + width && s.row0 < dst.row0 + width;
    };
    CC_ASSERT(!overlaps(a) && !overlaps(b),
              "bit-serial mul accumulator must not alias a source");

    OpCost cost;
    // Zero the accumulator slices through the reset data latch.
    for (std::size_t k = 0; k < width; ++k) {
        storeBlock(sliceLoc(dst, k), BitVector(8 * kBlockSize));
        chargeStep(BitlineOp::Buz, &cost);
    }

    // Shift-and-add: partial product j is (a & b_j) << j, accumulated
    // bit-serially into the dst slices; bits at or above width truncate
    // (mod 2^width, matching two's-complement wraparound).
    for (std::size_t j = 0; j < width; ++j) {
        carryLatch_ = BitVector(8 * kBlockSize);
        for (std::size_t k = 0; k + j < width; ++k) {
            // Dual-row activation of (a_k, b_j) senses the partial-
            // product bit on BL; the accumulator slice is sensed
            // single-row and the full-adder result written back.
            auto sense = activatePair(sliceLoc(a, k), sliceLoc(b, j));
            BitVector pp = sense.andBits;
            BitVector acc = senseBlock(sliceLoc(dst, j + k));
            chargeStep(BitlineOp::Read, &cost);
            BitVector x = acc ^ pp;
            BitVector sum = x ^ carryLatch_;
            carryLatch_ = (acc & pp) | (x & carryLatch_);
            storeBlock(sliceLoc(dst, j + k), sum);
            chargeStep(BitlineOp::AddStep, &cost);
        }
    }
    return cost;
}

BitSerialCmpResult
SubArray::opBitSerialCompare(const BitSerialOperand &a,
                             const BitSerialOperand &b, std::size_t width,
                             bool is_signed)
{
    checkBitSerial(a, width);
    checkBitSerial(b, width);
    CC_ASSERT(a.partition == b.partition,
              "bit-serial operands must share a block partition");

    BitSerialCmpResult res;
    res.lt = BitVector(8 * kBlockSize);
    res.gt = BitVector(8 * kBlockSize);
    BitVector decided(8 * kBlockSize);

    // MSB-first: the first differing bit decides each lane. The pair
    // activation yields a^b; a single-row sense of the a slice splits
    // the difference into a>b (a=1) and a<b (a=0). For signed compares
    // the sign-bit slice decides with the roles swapped (a negative,
    // b non-negative means a < b).
    for (std::size_t k = width; k-- > 0;) {
        auto sense = activatePair(sliceLoc(a, k), sliceLoc(b, k));
        BitVector x = ~(sense.andBits | sense.norBits);
        BitVector abits = senseBlock(sliceLoc(a, k));
        BitVector fresh = ~decided & x;
        bool sign_slice = is_signed && k == width - 1;
        if (sign_slice) {
            res.lt |= fresh & abits;
            res.gt |= fresh & ~abits;
        } else {
            res.gt |= fresh & abits;
            res.lt |= fresh & ~abits;
        }
        decided |= x;
        chargeStep(BitlineOp::CmpStep, &res.cost);
    }
    res.eq = ~decided;
    return res;
}

SubArray::RawSense
SubArray::rawActivate(const std::vector<std::size_t> &rows)
{
    double underdrive = params_.wordlineUnderdrive;
    // Beyond the demonstrated safe activation count the bias against write
    // no longer holds; model that as losing the underdrive protection.
    if (rows.size() > params_.maxSafeActiveRows)
        underdrive = 1.0;

    RawSense sense;
    if (scalarBitline()) {
        auto levels = cells_.activate(rows, underdrive);
        sense.andResult = senseAmps_.senseBL(levels);
        sense.norResult = senseAmps_.senseBLB(levels);
        double margin_bl = senseAmps_.senseMargin(levels.bl);
        double margin_blb = senseAmps_.senseMargin(levels.blb);
        sense.margin = margin_bl < margin_blb ? margin_bl : margin_blb;
    } else {
        auto digital =
            cells_.activateWords(rows, underdrive, /*track_margin=*/true);
        sense.andResult = std::move(digital.andBits);
        sense.norResult = std::move(digital.norBits);
        sense.margin = digital.margin;
    }

    // An injected margin failure collapses the observed margin and
    // corrupts the weakest column, like amplifier offset noise would.
    lastMarginFailed_ = false;
    if (faults_ && faults_->enabled() && rows.size() > 1 &&
        faults_->drawMarginFailure(faultBaseId_)) {
        lastMarginFailed_ = true;
        sense.margin = 0.0;
        std::size_t bit = faults_->drawBelow(sense.andResult.size());
        sense.andResult.set(bit, !sense.andResult.get(bit));
        sense.norResult.set(bit, !sense.norResult.get(bit));
    }
    return sense;
}

std::uint64_t
SubArray::opCount(BitlineOp op) const
{
    return opCounts_[opIndex(op)];
}

} // namespace ccache::sram
