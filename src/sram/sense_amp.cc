#include "sram/sense_amp.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ccache::sram {

SenseAmpArray::SenseAmpArray(std::size_t columns, double vref)
    : columns_(columns), vref_(vref)
{
    if (columns == 0)
        CC_FATAL("sense-amp array needs columns");
    if (vref <= 0.0 || vref >= 1.0)
        CC_FATAL("Vref must be a VDD fraction, got ", vref);
}

BitVector
SenseAmpArray::senseDifferential(const BitlineLevels &levels) const
{
    CC_ASSERT(levels.bl.size() == columns_, "level width mismatch");
    BitVector out(columns_);
    for (std::size_t c = 0; c < columns_; ++c)
        out.set(c, levels.bl[c] > levels.blb[c]);
    return out;
}

BitVector
SenseAmpArray::senseBL(const BitlineLevels &levels) const
{
    CC_ASSERT(levels.bl.size() == columns_, "level width mismatch");
    BitVector out(columns_);
    for (std::size_t c = 0; c < columns_; ++c)
        out.set(c, levels.bl[c] > vref_);
    return out;
}

BitVector
SenseAmpArray::senseBLB(const BitlineLevels &levels) const
{
    CC_ASSERT(levels.blb.size() == columns_, "level width mismatch");
    BitVector out(columns_);
    for (std::size_t c = 0; c < columns_; ++c)
        out.set(c, levels.blb[c] > vref_);
    return out;
}

double
SenseAmpArray::senseMargin(const std::vector<double> &levels) const
{
    double margin = 1.0;
    for (double v : levels)
        margin = std::min(margin, std::abs(v - vref_));
    return margin;
}

double
SenseAmpArray::monteCarloFailureRate(double margin, double offset_sigma,
                                     std::size_t trials, Rng &rng)
{
    CC_ASSERT(trials > 0, "need at least one trial");
    std::size_t failures = 0;
    for (std::size_t i = 0; i < trials; ++i) {
        // Box-Muller transform for a Gaussian offset sample.
        double u1 = std::max(rng.uniform(), 1e-12);
        double u2 = rng.uniform();
        double gauss = std::sqrt(-2.0 * std::log(u1)) *
            std::cos(2.0 * M_PI * u2);
        if (std::abs(gauss * offset_sigma) >= margin)
            ++failures;
    }
    return static_cast<double>(failures) / static_cast<double>(trials);
}

} // namespace ccache::sram
