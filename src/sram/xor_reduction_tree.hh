/**
 * @file
 * XOR-reduction tree appended to each compute sub-array (Section IV-B).
 *
 * The carryless-multiply (clmul) operation performs an in-place AND of two
 * rows and then XOR-reduces the resulting bits at single/double/quad-word
 * granularity. This models that reduction tree.
 */

#ifndef CCACHE_SRAM_XOR_REDUCTION_TREE_HH
#define CCACHE_SRAM_XOR_REDUCTION_TREE_HH

#include <cstddef>
#include <vector>

#include "common/bitvector.hh"

namespace ccache::sram {

/** Combinational XOR-reduction over configurable word widths. */
class XorReductionTree
{
  public:
    /** @param width number of input bits (the sub-array row width). */
    explicit XorReductionTree(std::size_t width);

    std::size_t width() const { return width_; }

    /** Parity of all @p width input bits. */
    bool reduceAll(const BitVector &input) const;

    /**
     * Per-word parities: the input is split into consecutive words of
     * @p word_bits (64, 128 or 256 per the cc_clmulX ISA) and each word
     * is XOR-reduced to a single bit.
     *
     * @return one parity bit per word, word 0 first.
     */
    std::vector<bool> reduceWords(const BitVector &input,
                                  std::size_t word_bits) const;

    /** Logic depth of the tree in XOR2 levels (for timing analysis). */
    static std::size_t depth(std::size_t word_bits);

  private:
    std::size_t width_;
};

} // namespace ccache::sram

#endif // CCACHE_SRAM_XOR_REDUCTION_TREE_HH
