/**
 * @file
 * Timing/energy/geometry parameters of a compute-capable SRAM sub-array.
 *
 * The delay and energy multipliers transcribe Section VI-C of the paper:
 * a 64-byte and/or/xor in-place operation takes 3x a single sub-array
 * access (other CC ops 2x); cmp/search/clmul cost 1.5x, copy/buz/not 2x
 * and the remaining logical ops 2.5x the baseline sub-array access energy.
 */

#ifndef CCACHE_SRAM_SUBARRAY_PARAMS_HH
#define CCACHE_SRAM_SUBARRAY_PARAMS_HH

#include <cstddef>

#include "common/types.hh"

namespace ccache::sram {

/** In-place operations a compute sub-array supports (Section IV-B). */
enum class BitlineOp {
    Read,      ///< baseline differential read
    Write,     ///< baseline write
    And,       ///< sense BL with two word-lines active
    Nor,       ///< sense BLB with two word-lines active
    Or,        ///< complement of NOR (inverting sense output)
    Xor,       ///< NOR of BL and BLB sense results
    Not,       ///< sense BLB with one word-line active
    Copy,      ///< coalesced read-write, source fed back to bit-lines
    Buz,       ///< zero a row by writing with reset data latch
    Cmp,       ///< word-granular equality via wired-NOR of XOR bits
    Search,    ///< iterative cmp of a replicated key against data rows
    Clmul,     ///< AND followed by XOR-reduction tree
    AddStep,   ///< one bit-plane of a bit-serial add (dual-row activation
               ///< + carry-latch update + sum write-back)
    SubStep,   ///< one bit-plane of a bit-serial subtract (adds a
               ///< single-row sense for the borrow term)
    CmpStep,   ///< one bit-plane of a bit-serial magnitude compare
               ///< (updates the lt/gt latches, writes nothing)
};

const char *toString(BitlineOp op);

/** True for ops that activate two word-lines simultaneously. */
bool isTwoRowOp(BitlineOp op);

/** True for ops that write a result row back into the array. */
bool writesResultRow(BitlineOp op);

/** Static configuration of one sub-array. */
struct SubArrayParams
{
    /** Word-lines (rows). The paper's optimal L3/L2 sub-arrays are
     *  512x512 and 128x512 bits. */
    std::size_t rows = 512;

    /** Bit-lines (columns). Must be a multiple of 8 * kBlockSize. */
    std::size_t cols = 512;

    /** Cycles for one baseline read/write sub-array access. */
    Cycles accessDelay = 2;

    /** Delay multiplier for and/or/xor in-place ops (Section VI-C: 3x). */
    double logicDelayFactor = 3.0;

    /** Delay multiplier for the remaining CC ops (2x). */
    double otherDelayFactor = 2.0;

    /** Baseline sub-array access energy in pJ (excl. H-tree). */
    EnergyPJ accessEnergy = 50.0;

    /** Energy multipliers per Section VI-C. @{ */
    double cmpEnergyFactor = 1.5;   ///< cmp / search / clmul
    double copyEnergyFactor = 2.0;  ///< copy / buz / not
    double logicEnergyFactor = 2.5; ///< and / or / xor (and nor)
    /** @} */

    /** Word-line underdrive applied during multi-row activation, as a
     *  fraction of nominal word-line voltage. Below ~0.8 the bias against
     *  write prevents read disturb (Jeloka et al. measured robust
     *  operation with up to 64 rows active). */
    double wordlineUnderdrive = 0.7;

    /** Maximum simultaneously-active word-lines that remain disturb-free
     *  at the configured underdrive (64 demonstrated on silicon). */
    unsigned maxSafeActiveRows = 64;

    /** Number of 64-byte cache blocks stored per row. */
    std::size_t blocksPerRow() const { return cols / (8 * kBlockSize); }

    /** Number of block partitions (column groups sharing bit-lines). */
    std::size_t blockPartitions() const { return blocksPerRow(); }

    /** Total data capacity in bytes. */
    std::size_t capacityBytes() const { return rows * cols / 8; }

    /** Delay of @p op in cycles. */
    Cycles opDelay(BitlineOp op) const;

    /** Energy of @p op over one full row, in pJ (array component only). */
    EnergyPJ opEnergy(BitlineOp op) const;

    /** Throws FatalError if the configuration is inconsistent. */
    void validate() const;
};

} // namespace ccache::sram

#endif // CCACHE_SRAM_SUBARRAY_PARAMS_HH
