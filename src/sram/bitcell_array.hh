/**
 * @file
 * Behavioural model of a 6T SRAM bit-cell array with multi-row activation.
 *
 * The array stores real bits and models the analog bit-line discharge that
 * bit-line computing relies on: all bit-lines precharge to VDD; activating
 * word-lines connects the selected cells, and any cell storing '0' pulls
 * its bit-line (BL) low while any cell storing '1' pulls the complement
 * bit-line (BLB) low. Sensing BL against a reference yields AND of the
 * activated rows; sensing BLB yields NOR (paper Figure 2).
 *
 * The model also reproduces the read-disturb failure mode: multi-row
 * activation without sufficient word-line underdrive can flip cells that
 * store '1' on a discharged bit-line (Section II-B).
 */

#ifndef CCACHE_SRAM_BITCELL_ARRAY_HH
#define CCACHE_SRAM_BITCELL_ARRAY_HH

#include <cstdint>
#include <vector>

#include "common/bitvector.hh"

namespace ccache::sram {

/** Analog bit-line levels after an activation, one pair per column. */
struct BitlineLevels
{
    /** Voltage on BL per column, as a fraction of VDD. */
    std::vector<double> bl;

    /** Voltage on BLB per column, as a fraction of VDD. */
    std::vector<double> blb;
};

/** Dense bit storage plus the activation/discharge circuit model. */
class BitcellArray
{
  public:
    BitcellArray(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    bool get(std::size_t row, std::size_t col) const;
    void set(std::size_t row, std::size_t col, bool value);

    /** Overwrite an entire row. @p data must have cols() bits. */
    void writeRow(std::size_t row, const BitVector &data);

    /** Copy of an entire row's contents. */
    BitVector readRow(std::size_t row) const;

    /**
     * Packed-row accessor: the row's backing bit vector, without copying.
     * Bit `c` of the row is bit `c % 64` of `row(r).words()[c / 64]`; this
     * is the representation the vectorized bit-line path operates on
     * (DESIGN.md §13).
     */
    const BitVector &row(std::size_t r) const;

    /**
     * Overwrite words `[word_lo, word_lo + data.words().size())` of
     * @p row through the write port, word-at-a-time. @p data must be a
     * whole number of 64-bit words (a block partition always is).
     */
    void writeWordsThroughBitlines(std::size_t row, std::size_t word_lo,
                                   const BitVector &data);

    /**
     * Activate a set of word-lines simultaneously and return the resulting
     * analog bit-line levels.
     *
     * @param active_rows word-lines to raise (1 for a normal read,
     *                    2 for an in-place compute, up to 64 shown safe
     *                    on silicon).
     * @param underdrive  word-line voltage as a fraction of nominal; the
     *                    bias against write that prevents disturb. Values
     *                    above kDisturbThreshold with more than one active
     *                    row corrupt cells, as a real array would.
     * @return bit-line levels for sensing.
     */
    BitlineLevels activate(const std::vector<std::size_t> &active_rows,
                           double underdrive);

    /**
     * Digital word-packed equivalent of activate() + single-ended sensing
     * at Vref = 0.5, the only reference the sub-array sense amplifiers use.
     */
    struct DigitalSense
    {
        /** Per column: every activated cell stores '1' (the BL sense). */
        BitVector andBits;

        /** Per column: no activated cell stores '1' (the BLB sense). */
        BitVector norBits;

        /** Smallest |level - 0.5| over both bit-lines, or -1.0 when margin
         *  tracking was not requested. */
        double margin = -1.0;
    };

    /**
     * Vectorized activation: computes the AND/NOR senses word-at-a-time
     * over the packed 64-bit row words, applies the same read-disturb
     * corruption as activate(), and (optionally) the sense margin.
     *
     * Bit-exact to activate() followed by SenseAmpArray::senseBL /
     * senseBLB / senseMargin at Vref = 0.5: with kPullStrength = 0.6 a
     * bit-line sits at 1.0 (no pulling cell), 0.4 (exactly one) or 0.0
     * (two or more), so the threshold comparison against 0.5 reduces to
     * "no pulling cell" and the margin to 0.1 iff some column has exactly
     * one puller on either line, else 0.5.
     */
    DigitalSense activateWords(const std::vector<std::size_t> &active_rows,
                               double underdrive,
                               bool track_margin = false);

    /**
     * Drive values directly onto the bit-lines and write into @p row
     * (the write port used by copy's sense-amp feedback path and by
     * normal writes).
     */
    void writeThroughBitlines(std::size_t row, const BitVector &data);

    /** Word-line underdrive above which multi-row activation disturbs. */
    static constexpr double kDisturbThreshold = 0.85;

    /** Per-cell pull-down strength (fraction of VDD per pulling cell). */
    static constexpr double kPullStrength = 0.6;

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<BitVector> cells_;
};

} // namespace ccache::sram

#endif // CCACHE_SRAM_BITCELL_ARRAY_HH
