#include "sram/bitcell_array.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ccache::sram {

BitcellArray::BitcellArray(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), cells_(rows, BitVector(cols))
{
    CC_ASSERT(rows > 0 && cols > 0, "empty bit-cell array");
}

bool
BitcellArray::get(std::size_t row, std::size_t col) const
{
    CC_ASSERT(row < rows_ && col < cols_, "cell (", row, ",", col,
              ") out of range");
    return cells_[row].get(col);
}

void
BitcellArray::set(std::size_t row, std::size_t col, bool value)
{
    CC_ASSERT(row < rows_ && col < cols_, "cell (", row, ",", col,
              ") out of range");
    cells_[row].set(col, value);
}

void
BitcellArray::writeRow(std::size_t row, const BitVector &data)
{
    CC_ASSERT(row < rows_, "row ", row, " out of range");
    CC_ASSERT(data.size() == cols_, "row data width ", data.size(),
              " != ", cols_);
    cells_[row] = data;
}

BitVector
BitcellArray::readRow(std::size_t row) const
{
    CC_ASSERT(row < rows_, "row ", row, " out of range");
    return cells_[row];
}

const BitVector &
BitcellArray::row(std::size_t r) const
{
    CC_ASSERT(r < rows_, "row ", r, " out of range");
    return cells_[r];
}

void
BitcellArray::writeWordsThroughBitlines(std::size_t row, std::size_t word_lo,
                                        const BitVector &data)
{
    CC_ASSERT(row < rows_, "row ", row, " out of range");
    CC_ASSERT(data.size() % 64 == 0, "word write needs whole words");
    const auto &src = data.words();
    auto &dst = cells_[row].words();
    CC_ASSERT(word_lo + src.size() <= dst.size(), "word span (", word_lo,
              " + ", src.size(), ") beyond row width");
    std::copy(src.begin(), src.end(), dst.begin() + word_lo);
}

BitcellArray::DigitalSense
BitcellArray::activateWords(const std::vector<std::size_t> &active_rows,
                            double underdrive, bool track_margin)
{
    CC_ASSERT(!active_rows.empty(), "activation needs at least one row");
    for (auto r : active_rows)
        CC_ASSERT(r < rows_, "row ", r, " out of range");

    DigitalSense sense;
    sense.andBits = BitVector(cols_);
    sense.andBits.setAll(true);
    sense.norBits = BitVector(cols_);
    sense.norBits.setAll(true);
    auto &and_w = sense.andBits.words();
    auto &nor_w = sense.norBits.words();
    const std::size_t nwords = and_w.size();

    // Saturating 2-bit per-column pull counters, used for the margin: a
    // column pulled by exactly one cell sits at 0.4, margin 0.1; every
    // other level (1.0 or clamped 0.0) is a full 0.5 from Vref.
    std::vector<std::uint64_t> pulled_once;
    std::vector<std::uint64_t> pulled_twice;
    if (track_margin) {
        pulled_once.assign(2 * nwords, 0);
        pulled_twice.assign(2 * nwords, 0);
    }

    for (auto r : active_rows) {
        const auto &row_w = cells_[r].words();
        for (std::size_t w = 0; w < nwords; ++w) {
            const std::uint64_t ones = row_w[w];
            const std::uint64_t zeros = ~ones;
            // Cells storing '0' discharge BL (AND sense); cells storing
            // '1' discharge BLB (NOR sense).
            and_w[w] &= ones;
            nor_w[w] &= zeros;
            if (track_margin) {
                pulled_twice[w] |= pulled_once[w] & zeros;
                pulled_once[w] |= zeros;
                pulled_twice[nwords + w] |= pulled_once[nwords + w] & ones;
                pulled_once[nwords + w] |= ones;
            }
        }
    }

    if (track_margin) {
        // Tail bits beyond cols_ are garbage in the complement-based
        // counters; mask them with the (trimmed) all-ones NOR initial
        // pattern mirrored by a fresh all-ones vector.
        BitVector mask(cols_);
        mask.setAll(true);
        const auto &mask_w = mask.words();
        bool any_single = false;
        for (std::size_t w = 0; w < nwords && !any_single; ++w) {
            std::uint64_t single =
                ((pulled_once[w] & ~pulled_twice[w]) |
                 (pulled_once[nwords + w] & ~pulled_twice[nwords + w])) &
                mask_w[w];
            any_single = single != 0;
        }
        sense.margin = any_single ? kPullStrength - 0.5 : 0.5;
    }

    // Read-disturb, word-wide: bl < 0.5 iff at least one activated cell
    // stores '0' in that column, i.e. the complement of the AND sense;
    // every activated row collapses to the AND of the activated rows.
    if (active_rows.size() > 1 && underdrive > kDisturbThreshold) {
        for (auto r : active_rows) {
            auto &row_w = cells_[r].words();
            for (std::size_t w = 0; w < nwords; ++w)
                row_w[w] &= and_w[w];
        }
    }

    return sense;
}

BitlineLevels
BitcellArray::activate(const std::vector<std::size_t> &active_rows,
                       double underdrive)
{
    CC_ASSERT(!active_rows.empty(), "activation needs at least one row");
    for (auto r : active_rows)
        CC_ASSERT(r < rows_, "row ", r, " out of range");

    BitlineLevels levels;
    levels.bl.assign(cols_, 1.0);
    levels.blb.assign(cols_, 1.0);

    for (std::size_t col = 0; col < cols_; ++col) {
        unsigned zeros = 0;
        unsigned ones = 0;
        for (auto r : active_rows) {
            if (cells_[r].get(col))
                ++ones;
            else
                ++zeros;
        }
        // Cells storing '0' discharge BL; cells storing '1' discharge BLB.
        levels.bl[col] = std::max(0.0, 1.0 - kPullStrength * zeros);
        levels.blb[col] = std::max(0.0, 1.0 - kPullStrength * ones);
    }

    // Read-disturb model: with more than one row active and insufficient
    // word-line underdrive, a cell storing '1' whose BL has been discharged
    // by a '0' in the other activated row gets written toward '0'. This is
    // exactly the corruption the lowered word-line voltage prevents.
    if (active_rows.size() > 1 && underdrive > kDisturbThreshold) {
        for (std::size_t col = 0; col < cols_; ++col) {
            if (levels.bl[col] < 0.5) {
                for (auto r : active_rows)
                    cells_[r].set(col, false);
            }
        }
    }

    return levels;
}

void
BitcellArray::writeThroughBitlines(std::size_t row, const BitVector &data)
{
    writeRow(row, data);
}

} // namespace ccache::sram
