#include "sram/bitcell_array.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ccache::sram {

BitcellArray::BitcellArray(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), cells_(rows, BitVector(cols))
{
    CC_ASSERT(rows > 0 && cols > 0, "empty bit-cell array");
}

bool
BitcellArray::get(std::size_t row, std::size_t col) const
{
    CC_ASSERT(row < rows_ && col < cols_, "cell (", row, ",", col,
              ") out of range");
    return cells_[row].get(col);
}

void
BitcellArray::set(std::size_t row, std::size_t col, bool value)
{
    CC_ASSERT(row < rows_ && col < cols_, "cell (", row, ",", col,
              ") out of range");
    cells_[row].set(col, value);
}

void
BitcellArray::writeRow(std::size_t row, const BitVector &data)
{
    CC_ASSERT(row < rows_, "row ", row, " out of range");
    CC_ASSERT(data.size() == cols_, "row data width ", data.size(),
              " != ", cols_);
    cells_[row] = data;
}

BitVector
BitcellArray::readRow(std::size_t row) const
{
    CC_ASSERT(row < rows_, "row ", row, " out of range");
    return cells_[row];
}

BitlineLevels
BitcellArray::activate(const std::vector<std::size_t> &active_rows,
                       double underdrive)
{
    CC_ASSERT(!active_rows.empty(), "activation needs at least one row");
    for (auto r : active_rows)
        CC_ASSERT(r < rows_, "row ", r, " out of range");

    BitlineLevels levels;
    levels.bl.assign(cols_, 1.0);
    levels.blb.assign(cols_, 1.0);

    for (std::size_t col = 0; col < cols_; ++col) {
        unsigned zeros = 0;
        unsigned ones = 0;
        for (auto r : active_rows) {
            if (cells_[r].get(col))
                ++ones;
            else
                ++zeros;
        }
        // Cells storing '0' discharge BL; cells storing '1' discharge BLB.
        levels.bl[col] = std::max(0.0, 1.0 - kPullStrength * zeros);
        levels.blb[col] = std::max(0.0, 1.0 - kPullStrength * ones);
    }

    // Read-disturb model: with more than one row active and insufficient
    // word-line underdrive, a cell storing '1' whose BL has been discharged
    // by a '0' in the other activated row gets written toward '0'. This is
    // exactly the corruption the lowered word-line voltage prevents.
    if (active_rows.size() > 1 && underdrive > kDisturbThreshold) {
        for (std::size_t col = 0; col < cols_; ++col) {
            if (levels.bl[col] < 0.5) {
                for (auto r : active_rows)
                    cells_[r].set(col, false);
            }
        }
    }

    return levels;
}

void
BitcellArray::writeThroughBitlines(std::size_t row, const BitVector &data)
{
    writeRow(row, data);
}

} // namespace ccache::sram
