/**
 * @file
 * Compute-capable SRAM sub-array (paper Sections II-B and IV-B).
 *
 * A SubArray assembles the bit-cell array, a second word-line decoder (so
 * two rows can be activated at once), re-configurable sense amplifiers and
 * the XOR-reduction tree into the unit the Compute Cache controller issues
 * operations to.
 *
 * Blocks within the sub-array are addressed as (partition, row): a block
 * partition is the group of blocks sharing one set of bit-lines, and
 * in-place operations are legal only between blocks of the same partition
 * (operand locality, Section IV-C).
 *
 * Every operation both computes the functional result through the bit-line
 * circuit semantics and returns its delay/energy cost, so tests can check
 * the circuit-level definitions against reference software implementations.
 */

#ifndef CCACHE_SRAM_SUBARRAY_HH
#define CCACHE_SRAM_SUBARRAY_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/block.hh"
#include "common/stats.hh"
#include "fault/fault_injector.hh"
#include "sram/bitcell_array.hh"
#include "sram/sense_amp.hh"
#include "sram/subarray_params.hh"
#include "sram/xor_reduction_tree.hh"

namespace ccache::sram {

/** Location of one 64-byte block inside a sub-array. */
struct BlockLoc
{
    std::size_t partition;  ///< block partition (column group)
    std::size_t row;        ///< word-line index

    bool operator==(const BlockLoc &) const = default;
};

/** Cost of one sub-array operation. */
struct OpCost
{
    Cycles delay = 0;
    EnergyPJ energy = 0.0;
};

/** Result of a comparison-style operation. */
struct CmpResult
{
    /** Bit i set iff 64-bit word i of the two operands are equal. */
    std::uint64_t wordEqualMask = 0;

    /** True iff the entire blocks are equal. */
    bool allEqual = false;

    OpCost cost;
};

/** Result of a clmul operation. */
struct ClmulResult
{
    /** One parity bit per word of the configured granularity. */
    std::vector<bool> parities;

    OpCost cost;
};

/**
 * One bit-serial operand: @p width consecutive bit-slice rows starting at
 * @p row0 within @p partition. Bit-line (lane) l of slice row k holds bit
 * k of lane l's value, so a 512-column partition computes 512 lanes per
 * row activation (the Neural Cache transposed layout).
 */
struct BitSerialOperand
{
    std::size_t partition;
    std::size_t row0;
};

/** Result of a bit-serial compare: one predicate bit per lane. */
struct BitSerialCmpResult
{
    BitVector lt;   ///< lane i set iff a[i] < b[i]
    BitVector gt;   ///< lane i set iff a[i] > b[i]
    BitVector eq;   ///< lane i set iff a[i] == b[i]
    OpCost cost;
};

/** One compute-capable sub-array. */
class SubArray
{
  public:
    explicit SubArray(const SubArrayParams &params);

    const SubArrayParams &params() const { return params_; }
    std::size_t partitions() const { return params_.blockPartitions(); }
    std::size_t rowsPerPartition() const { return params_.rows; }

    /** Baseline accesses. @{ */
    Block read(const BlockLoc &loc, OpCost *cost = nullptr);
    void write(const BlockLoc &loc, const Block &data,
               OpCost *cost = nullptr);
    /** @} */

    /** In-place two-operand logical ops; result written to @p dst.
     *  All three locations must share a partition. @{ */
    OpCost opAnd(const BlockLoc &a, const BlockLoc &b, const BlockLoc &dst);
    OpCost opOr(const BlockLoc &a, const BlockLoc &b, const BlockLoc &dst);
    OpCost opXor(const BlockLoc &a, const BlockLoc &b, const BlockLoc &dst);
    OpCost opNor(const BlockLoc &a, const BlockLoc &b, const BlockLoc &dst);
    /** @} */

    /** In-place NOT: @p dst = ~@p src (single-row BLB sense). */
    OpCost opNot(const BlockLoc &src, const BlockLoc &dst);

    /** In-place copy via sense-amp feedback (Figure 4); never latches the
     *  source outside the sub-array. */
    OpCost opCopy(const BlockLoc &src, const BlockLoc &dst);

    /** In-place zeroing via reset data latch. */
    OpCost opBuz(const BlockLoc &loc);

    /** Word-granular equality via wired-NOR of XOR bits. */
    CmpResult opCmp(const BlockLoc &a, const BlockLoc &b);

    /** Search is an iterative cmp of a key block against a data block;
     *  identical circuit activity to cmp but tracked separately. */
    CmpResult opSearch(const BlockLoc &key, const BlockLoc &data);

    /** Carryless multiply: AND then XOR-reduce at @p word_bits. */
    ClmulResult opClmul(const BlockLoc &a, const BlockLoc &b,
                        std::size_t word_bits);

    /**
     * Bit-serial arithmetic over the transposed layout (Neural Cache,
     * arXiv 1805.03718): operands are @p width bit-slice rows in one
     * partition, one lane per bit-line. Each bit-plane step is a
     * dual-row activation whose AND/NOR senses feed the per-column
     * carry latch in the sense amplifiers; the sum bit is written back
     * in the same step. All results are mod 2^width (two's-complement
     * wraparound), so signed and unsigned add/sub/mul coincide. @{
     */

    /** dst = a + b (mod 2^width). dst may alias a or b. */
    OpCost opBitSerialAdd(const BitSerialOperand &a,
                          const BitSerialOperand &b,
                          const BitSerialOperand &dst, std::size_t width);

    /** dst = a - b (mod 2^width) via the borrow latch. */
    OpCost opBitSerialSub(const BitSerialOperand &a,
                          const BitSerialOperand &b,
                          const BitSerialOperand &dst, std::size_t width);

    /** dst = a * b (mod 2^width), shift-and-add over partial products.
     *  dst rows must be disjoint from both source row ranges. */
    OpCost opBitSerialMul(const BitSerialOperand &a,
                          const BitSerialOperand &b,
                          const BitSerialOperand &dst, std::size_t width);

    /** Per-lane lt/gt/eq masks, MSB-first. @p is_signed treats the MSB
     *  slice as a two's-complement sign bit. */
    BitSerialCmpResult opBitSerialCompare(const BitSerialOperand &a,
                                          const BitSerialOperand &b,
                                          std::size_t width,
                                          bool is_signed);
    /** @} */

    /**
     * Raw multi-row activation exposed for robustness studies: activates
     * @p rows word-lines at @p underdrive and returns the sensed AND/NOR.
     * Exceeding SubArrayParams::maxSafeActiveRows, or using a weak
     * underdrive, corrupts data exactly like silicon would.
     */
    struct RawSense
    {
        BitVector andResult;
        BitVector norResult;
        double margin;
    };
    RawSense rawActivate(const std::vector<std::size_t> &rows);

    /** Count of executed ops by type, for stats and tests. */
    std::uint64_t opCount(BitlineOp op) const;

    /**
     * Fault-injection hook (robustness studies): when attached, every
     * single-row sense passes through the injector's stuck-at and
     * transient fault models, and every dual-row activation may suffer
     * a sensing-margin failure that corrupts the sensed AND/NOR bits.
     * @p base_id identifies this sub-array in the injector's
     * per-sub-array rate scaling. @{
     */
    void attachFaults(fault::FaultInjector *injector,
                      std::uint64_t base_id = 0);
    const fault::FaultInjector *faults() const { return faults_; }

    /** True iff the last dual-row activation had a margin failure. */
    bool lastMarginFailed() const { return lastMarginFailed_; }

    /**
     * Scalar-reference gate (DESIGN.md §13): by default every op runs the
     * vectorized word-at-a-time bit-line evaluation; setting the
     * environment variable `CCACHE_SCALAR_BITLINE=1` (or calling
     * forceScalarBitline) selects the per-bit analog scalar path instead.
     * The two paths are bit-exact — including fault injection and RNG
     * draw order — and the differential tests hold them to that. @{
     */
    static bool scalarBitline();

    /** Programmatic override for in-process differential tests:
     *  true/false force a path, nullopt restores the environment gate. */
    static void forceScalarBitline(std::optional<bool> on);
    /** @} */

    /** Fault injected into the last single-row sense, if any. */
    const fault::FaultEvent &lastSenseFault() const
    {
        return lastSenseFault_;
    }
    /** @} */

  private:
    /** Column range covered by partition @p p. */
    std::pair<std::size_t, std::size_t> columnRange(std::size_t p) const;

    /** Extract partition-@p p columns of a full-row bit vector. */
    BitVector extractPartition(const BitVector &row_bits,
                               std::size_t p) const;

    /** Read block bits through an (optionally charged) activation. */
    BitVector senseBlock(const BlockLoc &loc);

    /** Write block bits into the cells of @p loc. */
    void storeBlock(const BlockLoc &loc, const BitVector &bits);

    /** Shared implementation of the two-operand logical ops. */
    OpCost logicalOp(BitlineOp op, const BlockLoc &a, const BlockLoc &b,
                     const BlockLoc &dst);

    /** Compute the (BL, BLB) senses for two activated blocks. */
    struct TwoRowSense
    {
        BitVector andBits;
        BitVector norBits;
    };
    TwoRowSense activatePair(const BlockLoc &a, const BlockLoc &b);

    void checkLoc(const BlockLoc &loc) const;
    void checkSamePartition(const BlockLoc &a, const BlockLoc &b) const;

    /** Bounds/partition checks for a bit-serial operand. */
    void checkBitSerial(const BitSerialOperand &o, std::size_t width) const;

    /** Slice row @p k of a bit-serial operand as a block location. */
    static BlockLoc sliceLoc(const BitSerialOperand &o, std::size_t k)
    {
        return {o.partition, o.row0 + k};
    }

    /** Charge one bit-serial step of kind @p op into @p cost. */
    void chargeStep(BitlineOp op, OpCost *cost);

    SubArrayParams params_;
    BitcellArray cells_;
    SenseAmpArray senseAmps_;
    XorReductionTree xorTree_;
    std::vector<std::uint64_t> opCounts_;

    /** Scratch row list reused by activatePair (no per-op allocation). */
    std::vector<std::size_t> pairRows_ = {0, 0};

    /** Per-column carry/borrow latch in the sense amplifiers, reset at
     *  the start of every bit-serial sequence. */
    BitVector carryLatch_;

    fault::FaultInjector *faults_ = nullptr;
    std::uint64_t faultBaseId_ = 0;
    bool lastMarginFailed_ = false;
    fault::FaultEvent lastSenseFault_;
};

} // namespace ccache::sram

#endif // CCACHE_SRAM_SUBARRAY_HH
