#include "sram/subarray_params.hh"

#include <cmath>

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::sram {

const char *
toString(BitlineOp op)
{
    switch (op) {
      case BitlineOp::Read: return "read";
      case BitlineOp::Write: return "write";
      case BitlineOp::And: return "and";
      case BitlineOp::Nor: return "nor";
      case BitlineOp::Or: return "or";
      case BitlineOp::Xor: return "xor";
      case BitlineOp::Not: return "not";
      case BitlineOp::Copy: return "copy";
      case BitlineOp::Buz: return "buz";
      case BitlineOp::Cmp: return "cmp";
      case BitlineOp::Search: return "search";
      case BitlineOp::Clmul: return "clmul";
      case BitlineOp::AddStep: return "add_step";
      case BitlineOp::SubStep: return "sub_step";
      case BitlineOp::CmpStep: return "cmp_step";
    }
    return "?";
}

bool
isTwoRowOp(BitlineOp op)
{
    switch (op) {
      case BitlineOp::And:
      case BitlineOp::Nor:
      case BitlineOp::Or:
      case BitlineOp::Xor:
      case BitlineOp::Cmp:
      case BitlineOp::Search:
      case BitlineOp::Clmul:
      case BitlineOp::AddStep:
      case BitlineOp::SubStep:
      case BitlineOp::CmpStep:
        return true;
      default:
        return false;
    }
}

bool
writesResultRow(BitlineOp op)
{
    switch (op) {
      case BitlineOp::Write:
      case BitlineOp::And:
      case BitlineOp::Nor:
      case BitlineOp::Or:
      case BitlineOp::Xor:
      case BitlineOp::Not:
      case BitlineOp::Copy:
      case BitlineOp::Buz:
      case BitlineOp::AddStep:
      case BitlineOp::SubStep:
        return true;
      default:
        return false;
    }
}

Cycles
SubArrayParams::opDelay(BitlineOp op) const
{
    double factor;
    switch (op) {
      case BitlineOp::Read:
      case BitlineOp::Write:
        factor = 1.0;
        break;
      case BitlineOp::And:
      case BitlineOp::Nor:
      case BitlineOp::Or:
      case BitlineOp::Xor:
      case BitlineOp::AddStep:
        factor = logicDelayFactor;
        break;
      case BitlineOp::SubStep:
      case BitlineOp::CmpStep:
        // One dual-row activation plus the extra single-row sense that
        // recovers an individual operand for the borrow / lt-gt terms.
        factor = logicDelayFactor + 1.0;
        break;
      default:
        factor = otherDelayFactor;
        break;
    }
    return static_cast<Cycles>(
        std::ceil(static_cast<double>(accessDelay) * factor));
}

EnergyPJ
SubArrayParams::opEnergy(BitlineOp op) const
{
    switch (op) {
      case BitlineOp::Read:
      case BitlineOp::Write:
        return accessEnergy;
      case BitlineOp::Cmp:
      case BitlineOp::Search:
      case BitlineOp::Clmul:
        return accessEnergy * cmpEnergyFactor;
      case BitlineOp::Copy:
      case BitlineOp::Buz:
      case BitlineOp::Not:
        return accessEnergy * copyEnergyFactor;
      case BitlineOp::And:
      case BitlineOp::Nor:
      case BitlineOp::Or:
      case BitlineOp::Xor:
      case BitlineOp::AddStep:
        return accessEnergy * logicEnergyFactor;
      case BitlineOp::SubStep:
      case BitlineOp::CmpStep:
        // Logic-class activation plus one extra single-row sense.
        return accessEnergy * (logicEnergyFactor + 1.0);
    }
    return accessEnergy;
}

void
SubArrayParams::validate() const
{
    if (rows == 0 || cols == 0)
        CC_FATAL("sub-array must have nonzero dimensions");
    if (!isPowerOfTwo(rows) || !isPowerOfTwo(cols))
        CC_FATAL("sub-array dimensions must be powers of two: ",
                 rows, "x", cols);
    if (cols % (8 * kBlockSize) != 0)
        CC_FATAL("sub-array row width ", cols,
                 " must hold whole 64-byte blocks");
    if (wordlineUnderdrive <= 0.0 || wordlineUnderdrive > 1.0)
        CC_FATAL("word-line underdrive must be in (0, 1]: ",
                 wordlineUnderdrive);
    if (accessDelay == 0)
        CC_FATAL("sub-array access delay must be nonzero");
}

} // namespace ccache::sram
