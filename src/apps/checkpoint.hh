/**
 * @file
 * In-memory copy-on-write checkpointing (Section VI-B, Figures 10-11).
 *
 * Every checkpoint interval (100k application instructions in the paper)
 * the first write to a page triggers a 4 KB copy into the shadow region.
 * Shadow pages share their source's page offset, so checkpoint copies
 * have perfect operand locality and the Compute Cache executes them
 * entirely in-place (the paper reduces the 30% Base_32 overhead to 6%).
 */

#ifndef CCACHE_APPS_CHECKPOINT_HH
#define CCACHE_APPS_CHECKPOINT_HH

#include "apps/app_common.hh"
#include "workload/splash_trace.hh"

namespace ccache::apps {

/** Checkpointing configuration. */
struct CheckpointConfig
{
    std::uint64_t intervalInstructions = 100000;  ///< Section VI-B
    std::size_t intervals = 40;

    /** Application IPC for the compute phase of each interval. */
    double appIpc = 2.0;

    Addr heapBase = 0x1000'0000;
    Addr shadowBase = 0x5000'0000;

    std::uint64_t seed = 0x5b1a5b;
};

/** Result of a checkpointing run. */
struct CheckpointResult
{
    AppRunResult app;

    /** Cycles of pure application compute (the no-checkpoint run). */
    Cycles baseCycles = 0;

    /** Cycles added by checkpoint copies. */
    Cycles checkpointCycles = 0;

    /** Total dirty pages copied. */
    std::uint64_t pagesCopied = 0;

    /** Figure 10 metric: checkpoint overhead over no-checkpointing. */
    double overheadPct() const
    {
        return baseCycles == 0
            ? 0.0
            : 100.0 * static_cast<double>(checkpointCycles) /
                static_cast<double>(baseCycles);
    }
};

/** The checkpointing harness for one SPLASH-2-like workload. */
class Checkpoint
{
  public:
    Checkpoint(workload::SplashApp app,
               const CheckpointConfig &config = CheckpointConfig{});

    /**
     * Run @p intervals checkpoint intervals on @p sys. With
     * @p checkpointing false this produces the no_chkpt baseline of
     * Figure 11.
     */
    CheckpointResult run(sim::System &sys, Engine engine,
                         bool checkpointing = true);

  private:
    workload::SplashApp app_;
    CheckpointConfig config_;
};

} // namespace ccache::apps

#endif // CCACHE_APPS_CHECKPOINT_HH
