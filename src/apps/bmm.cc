#include "apps/bmm.hh"

#include <bit>
#include <cstring>

#include "common/bit_util.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace ccache::apps {

BitMatrix
BitMatrix::transposed() const
{
    BitMatrix t(n_);
    for (std::size_t i = 0; i < n_; ++i)
        for (std::size_t j = 0; j < n_; ++j)
            t.set(j, i, get(i, j));
    return t;
}

BitMatrix
BitMatrix::multiply(const BitMatrix &a, const BitMatrix &b)
{
    CC_ASSERT(a.size() == b.size(), "dimension mismatch");
    std::size_t n = a.size();
    BitMatrix bt = b.transposed();
    BitMatrix c(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            // c[i][j] = parity(a_row_i & b_col_j) over GF(2).
            BitVector prod = a.row(i) & bt.row(j);
            c.set(i, j, (prod.popcount() & 1) != 0);
        }
    }
    return c;
}

Bmm::Bmm(const BmmConfig &config)
    : config_(config), a_(config.n), b_(config.n), bt_(config.n),
      expected_(config.n), computed_(config.n)
{
    CC_ASSERT(config.n == 64 || config.n == 128 || config.n == 256,
              "matrix dimension must match a clmul width (64/128/256)");
    Rng rng(config.seed);
    for (std::size_t i = 0; i < config.n; ++i) {
        for (std::size_t j = 0; j < config.n; ++j) {
            a_.set(i, j, rng.chance(0.5));
            b_.set(i, j, rng.chance(0.5));
        }
    }
    bt_ = b_.transposed();
    expected_ = BitMatrix::multiply(a_, b_);
}

AppRunResult
Bmm::runBaseline(sim::System &sys, Engine engine)
{
    auto &hier = sys.hierarchy();
    auto &em = sys.energy();
    sim::CoreCostModel cost(sys.config().core);
    std::uint64_t extra_instrs = 0;

    std::size_t n = config_.n;
    std::size_t rb = rowBytes();

    // Load A and B-transpose row-major into simulated memory.
    for (std::size_t i = 0; i < n; ++i) {
        auto arow = a_.row(i).toBytes();
        auto btrow = bt_.row(i).toBytes();
        sys.load(config_.aBase + i * rb, arow.data(), rb);
        sys.load(config_.btBase + i * rb, btrow.data(), rb);
    }

    std::size_t vec = engine == Engine::Base32 ? 32 : 8;
    computed_ = BitMatrix(n);

    // Blocked CLMUL baseline: row i stays in registers while the inner
    // loop streams the columns (which stay hot in L1 by reuse).
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t off = 0; off < rb; off += vec) {
            Cycles lat =
                hier.loadBytes(0, config_.aBase + i * rb + off, nullptr,
                               vec);
            cost.addMemAccess(lat);
        }
        for (std::size_t j = 0; j < n; ++j) {
            for (std::size_t off = 0; off < rb; off += vec) {
                Cycles lat = hier.loadBytes(
                    0, config_.btBase + j * rb + off, nullptr, vec);
                cost.addMemAccess(lat);
            }
            // AND + POPCNT per 64-bit word, then parity combine + store
            // of the output bit (batched per word in practice).
            std::size_t words = rb / 8;
            cost.addInstrs(2 * words + 3);
            extra_instrs += 2 * words + 3;

            BitVector prod = a_.row(i) & bt_.row(j);
            computed_.set(i, j, (prod.popcount() & 1) != 0);
        }
        // Write the finished output row.
        auto crow = computed_.row(i).toBytes();
        Cycles lat = hier.storeBytes(0, config_.cBase + i * rb,
                                     crow.data(), rb);
        cost.addMemAccess(lat);
    }

    em.chargeInstructions(extra_instrs);
    if (engine == Engine::Base32)
        em.chargeVectorInstructions(0);

    CC_ASSERT(computed_ == expected_, "baseline BMM result wrong");

    AppRunResult res;
    res.cycles = cost.cycles();
    res.instructions = cost.instructions();
    sys.advance(0, res.cycles);
    res.dynamic = em.dynamic();
    res.totals = sys.totals();
    res.checksum = 0;
    for (std::size_t i = 0; i < n; ++i)
        res.checksum ^= computed_.row(i).popcount() * (i + 1);
    return res;
}

AppRunResult
Bmm::runCc(sim::System &sys)
{
    auto &hier = sys.hierarchy();
    auto &em = sys.energy();
    sim::CoreCostModel cost(sys.config().core);
    std::uint64_t extra_instrs = 0;
    Cycles cc_cycles = 0;

    std::size_t n = config_.n;
    std::size_t rb = rowBytes();
    std::size_t rpb = rowsPerBlock();
    std::size_t total_blocks = n / rpb;   // blocks per matrix
    std::size_t bits_per_op = rpb;        // parities per block op

    for (std::size_t i = 0; i < n; ++i) {
        auto arow = a_.row(i).toBytes();
        auto btrow = bt_.row(i).toBytes();
        sys.load(config_.aBase + i * rb, arow.data(), rb);
        sys.load(config_.btBase + i * rb, btrow.data(), rb);
    }

    sys.cc().mutableParams().forceLevel = config_.ccLevel;
    computed_ = BitMatrix(n);

    // Issue one replicated clmul per (BT block, lane rotation, A page):
    // the controller replicates the rotated BT block into each partition
    // holding A data and streams the packed parities into the scratch.
    std::size_t a_bytes = n * rb;
    std::size_t page_chunk = std::min<std::size_t>(a_bytes, kPageSize);
    std::size_t blocks_per_chunk = page_chunk / kBlockSize;

    std::size_t scratch_idx = 0;
    struct Issue
    {
        std::size_t cb, rot;
        Addr chunk;         ///< A offset
        Addr dest;
    };
    std::vector<Issue> issues;
    std::vector<cc::CcInstruction> instrs;

    for (std::size_t cb = 0; cb < total_blocks; ++cb) {
        for (std::size_t rot = 0; rot < rpb; ++rot) {
            // Build the lane-rotated BT block in the scratch region: one
            // block read, a shuffle, one block write on the core.
            Block rotated{};
            for (std::size_t lane = 0; lane < rpb; ++lane) {
                std::size_t src_row = cb * rpb + (lane + rot) % rpb;
                auto bytes = bt_.row(src_row).toBytes();
                std::memcpy(rotated.data() + lane * rb, bytes.data(), rb);
            }
            Addr rot_addr = config_.scratchBase + 0x8000 +
                ((cb * rpb + rot) % 64) * kBlockSize;
            Cycles lat = hier.loadBytes(
                0, config_.btBase + cb * kBlockSize, nullptr, kBlockSize);
            cost.addMemAccess(lat);
            lat = hier.storeBytes(0, rot_addr, rotated.data(),
                                  kBlockSize);
            cost.addMemAccess(lat);
            cost.addInstrs(8);
            extra_instrs += 8;

            for (Addr chunk = 0; chunk < a_bytes; chunk += page_chunk) {
                Addr dest = config_.scratchBase +
                    (scratch_idx++ % 64) * kBlockSize;
                issues.push_back({cb, rot, chunk, dest});
                instrs.push_back(cc::CcInstruction::clmulReplicated(
                    config_.aBase + chunk, rot_addr, dest, page_chunk,
                    n));

                // Streams are bounded by the instruction table depth;
                // flush periodically.
                if (instrs.size() == 8) {
                    Cycles stream_lat = 0;
                    sys.cc().executeStream(0, instrs, &stream_lat);
                    cc_cycles += stream_lat;

                    // Unpack each instruction's packed parities.
                    for (const auto &iss : issues) {
                        std::size_t bits =
                            blocks_per_chunk * bits_per_op;
                        std::vector<std::uint8_t> packed(bits / 8);
                        Cycles l2 = hier.loadBytes(0, iss.dest,
                                                   packed.data(),
                                                   packed.size());
                        cost.addMemAccess(l2);
                        cost.addInstrs(bits / 8);
                        extra_instrs += bits / 8;

                        std::size_t chunk_block = iss.chunk / kBlockSize;
                        for (std::size_t b = 0; b < bits; ++b) {
                            bool v = (packed[b / 8] >> (b % 8)) & 1;
                            std::size_t op = b / bits_per_op;
                            std::size_t lane = b % bits_per_op;
                            std::size_t row =
                                (chunk_block + op) * rpb + lane;
                            std::size_t col = iss.cb * rpb +
                                (lane + iss.rot) % rpb;
                            computed_.set(row, col, v);
                        }
                    }
                    instrs.clear();
                    issues.clear();
                }
            }
        }
    }
    CC_ASSERT(instrs.empty(), "stream flush misses the tail");

    // Write the product back as the application's output.
    for (std::size_t i = 0; i < n; ++i) {
        auto crow = computed_.row(i).toBytes();
        Cycles lat = hier.storeBytes(0, config_.cBase + i * rb,
                                     crow.data(), rb);
        cost.addMemAccess(lat);
    }

    em.chargeInstructions(extra_instrs);

    CC_ASSERT(computed_ == expected_, "CC BMM result wrong");

    AppRunResult res;
    res.cycles = cost.cycles() + cc_cycles;
    res.instructions = cost.instructions() +
        sys.stats().value("cc.instructions");
    sys.advance(0, res.cycles);
    res.dynamic = em.dynamic();
    res.totals = sys.totals();
    res.checksum = 0;
    for (std::size_t i = 0; i < n; ++i)
        res.checksum ^= computed_.row(i).popcount() * (i + 1);
    return res;
}

AppRunResult
Bmm::run(sim::System &sys, Engine engine)
{
    return engine == Engine::Cc ? runCc(sys) : runBaseline(sys, engine);
}

} // namespace ccache::apps
