#include "apps/wordcount.hh"

#include <algorithm>
#include <cstring>

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::apps {

namespace {

/** FNV-1a, for layout-independent checksums. */
std::uint64_t
hashString(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** A word padded to one 64-byte CAM entry. */
Block
entryOf(const std::string &word)
{
    Block b{};
    std::memcpy(b.data(), word.data(),
                std::min(word.size(), kBlockSize - 1));
    return b;
}

/** Coherent 64-bit read (the freshest copy may be dirty in a cache). */
std::uint64_t
coherentWord(ccache::cache::Hierarchy &hier, Addr addr)
{
    Block b = hier.debugRead(addr & ~static_cast<Addr>(kBlockSize - 1));
    return blockWord(b, (addr % kBlockSize) / 8);
}

/** Bucket index from the first two letters (26 x 26 alphabet CAM). */
std::size_t
bucketOf(const std::string &word)
{
    auto letter = [](char c) {
        return static_cast<std::size_t>(c - 'a') % 26;
    };
    std::size_t first = letter(word[0]);
    std::size_t second = word.size() > 1 ? letter(word[1]) : 0;
    return first * 26 + second;
}

} // namespace

WordCount::WordCount(const WordCountConfig &config) : config_(config)
{
    workload::TextGen gen(config.text);
    corpus_ = gen.corpus(config.corpusBytes);

    // Tokenize once on the host; both engines charge the parse cost.
    std::size_t pos = 0;
    while (pos < corpus_.size()) {
        std::size_t end = corpus_.find(' ', pos);
        if (end == std::string::npos)
            end = corpus_.size();
        if (end > pos) {
            words_.push_back(corpus_.substr(pos, end - pos));
            ++reference_[words_.back()];
        }
        pos = end + 1;
    }
}

std::uint64_t
WordCount::checksumOf(const std::map<std::string, std::uint64_t> &counts)
{
    std::uint64_t sum = 0;
    for (const auto &[word, count] : counts)
        sum ^= hashString(word) * count;
    return sum;
}

AppRunResult
WordCount::runBaseline(sim::System &sys, Engine engine)
{
    auto &hier = sys.hierarchy();
    auto &em = sys.energy();
    sim::CoreCostModel cost(sys.config().core);
    std::uint64_t extra_instrs = 0;

    sys.load(config_.corpusBase, corpus_.data(), corpus_.size());

    // Sorted dictionary of 64-byte entries. Counts live in a stable
    // side array indexed by insertion id (real implementations reach the
    // count through a pointer stored with the entry), so sorted-insert
    // shifts do not move counts.
    std::vector<std::string> dict;
    std::vector<std::size_t> count_slot;   // parallel to dict
    std::size_t next_slot = 0;
    dict.reserve(4096);
    count_slot.reserve(4096);

    std::size_t vec = engine == Engine::Base32 ? 32 : 8;
    Addr corpus_pos = config_.corpusBase;

    for (const auto &word : words_) {
        // Stream the text through the core (one load per vector chunk).
        for (std::size_t off = 0; off < word.size() + 1; off += vec) {
            Cycles lat = hier.loadBytes(0, corpus_pos + off, nullptr, vec);
            cost.addMemAccess(lat);
        }
        corpus_pos += word.size() + 1;
        cost.addInstrs(word.size());  // tokenizing / hashing the word
        extra_instrs += word.size();

        // Binary search over the sorted dictionary.
        std::size_t lo = 0, hi = dict.size();
        while (lo < hi) {
            std::size_t mid = (lo + hi) / 2;
            Addr entry = config_.dictBase + mid * kBlockSize;
            // Load the candidate entry and compare. Successive probes
            // form a dependent chain: no memory-level parallelism.
            for (std::size_t off = 0; off < kBlockSize; off += vec) {
                Cycles lat = hier.loadBytes(0, entry + off, nullptr, vec);
                if (off == 0)
                    cost.addDependentMemAccess(lat);
                else
                    cost.addMemAccess(lat);
            }
            cost.addInstrs(5);  // compare + index update
            // The probe's direction branch is data-dependent and
            // mispredicts ~half the time — a known cost of binary search
            // that the branch-free CAM probe avoids.
            cost.addBranches(1, 0.5);
            extra_instrs += 6;
            if (dict[mid] < word)
                lo = mid + 1;
            else if (dict[mid] > word)
                hi = mid;
            else {
                lo = hi = mid;
                break;
            }
        }

        bool found = lo < dict.size() && dict[lo] == word;
        if (!found) {
            // Insert keeping sorted order: the entries after the insert
            // point shift by one (bounded model: one bucket-sized move).
            dict.insert(dict.begin() + lo, word);
            count_slot.insert(count_slot.begin() + lo, next_slot++);
            std::size_t move = std::min<std::size_t>(
                config_.bucketEntries, dict.size() - lo);
            for (std::size_t m = 0; m < move; ++m) {
                Addr from = config_.dictBase + (lo + m) * kBlockSize;
                Block entry = entryOf(dict[lo + m]);
                Cycles lat = hier.storeBytes(0, from, entry.data(),
                                             kBlockSize);
                cost.addMemAccess(lat);
            }
            cost.addInstrs(8);
            extra_instrs += 8;
        }

        // Count update through the entry's stable slot.
        Addr count_addr = config_.countsBase + count_slot[lo] * 8;
        std::uint64_t count = coherentWord(hier, count_addr);
        Cycles lat = hier.loadBytes(0, count_addr, nullptr, 8);
        cost.addMemAccess(lat);
        std::uint64_t next = count + 1;
        lat = hier.storeBytes(0, count_addr, &next, 8);
        cost.addMemAccess(lat);
        cost.addInstrs(2);
        extra_instrs += 2;
    }

    em.chargeInstructions(extra_instrs);

    // Gather results from simulated memory.
    std::map<std::string, std::uint64_t> counts;
    sys.hierarchy().flushAll();
    for (std::size_t i = 0; i < dict.size(); ++i) {
        counts[dict[i]] = hier.memory().readWord(
            config_.countsBase + count_slot[i] * 8);
    }

    AppRunResult res;
    res.cycles = cost.cycles();
    res.instructions = cost.instructions();
    sys.advance(0, res.cycles);
    res.dynamic = em.dynamic();
    res.totals = sys.totals();
    res.checksum = checksumOf(counts);
    return res;
}

AppRunResult
WordCount::runCc(sim::System &sys)
{
    auto &hier = sys.hierarchy();
    auto &em = sys.energy();
    sim::CoreCostModel cost(sys.config().core);
    std::uint64_t extra_instrs = 0;
    Cycles cc_cycles = 0;

    sys.load(config_.corpusBase, corpus_.data(), corpus_.size());

    // The dictionary is large, so searches run in L3 (Section VI-B).
    sys.cc().mutableParams().forceLevel = CacheLevel::L3;

    // Alphabet-indexed CAM: 26x26 buckets of bucketEntries 64-byte slots.
    const std::size_t buckets = 26 * 26;
    const std::size_t bucket_bytes = config_.bucketEntries * kBlockSize;
    std::vector<std::vector<std::string>> bucket_words(buckets);
    // Overflow chains append whole buckets at the end of the region.
    std::vector<std::vector<std::size_t>> chains(buckets);
    std::size_t next_overflow = buckets;
    for (std::size_t b = 0; b < buckets; ++b)
        chains[b].push_back(b);

    auto slot_addr = [&](std::size_t chain_bucket, std::size_t slot) {
        return config_.dictBase + chain_bucket * bucket_bytes +
            slot * kBlockSize;
    };

    Addr corpus_pos = config_.corpusBase;
    for (const auto &word : words_) {
        for (std::size_t off = 0; off < word.size() + 1; off += 32) {
            Cycles lat = hier.loadBytes(0, corpus_pos + off, nullptr, 32);
            cost.addMemAccess(lat);
        }
        corpus_pos += word.size() + 1;
        cost.addInstrs(word.size());
        extra_instrs += word.size();

        std::size_t b = bucketOf(word);
        Block key = entryOf(word);

        // Write the search key once (64 bytes) with a non-temporal
        // store straight to L3, where the searches will run — avoiding a
        // dirty-key recall on every instruction.
        Cycles lat = hier.write(0, config_.keyBase, &key,
                                CacheLevel::L3).latency;
        cost.addMemAccess(lat);

        // CAM-search the bucket chain with cc_search; each 1 KB bucket
        // is two 512-byte search instructions pipelined as a stream.
        auto &chain = chains[b];
        auto &entries = bucket_words[b];

        // Search only the occupied prefix of the chain: the software
        // tracks each bucket's fill level, so empty slots are skipped.
        std::vector<cc::CcInstruction> searches;
        std::vector<std::size_t> base_slots;
        std::size_t occupied = entries.size();
        for (std::size_t ci = 0; ci < chain.size() && occupied > 0;
             ++ci) {
            std::size_t cb = chain[ci];
            std::size_t in_bucket =
                std::min(occupied, config_.bucketEntries);
            occupied -= in_bucket;
            for (std::size_t first = 0; first < in_bucket;
                 first += cc::kMaxCmpBytes / kBlockSize) {
                std::size_t nblocks = std::min<std::size_t>(
                    cc::kMaxCmpBytes / kBlockSize, in_bucket - first);
                searches.push_back(cc::CcInstruction::search(
                    slot_addr(cb, first), config_.keyBase,
                    nblocks * kBlockSize));
                base_slots.push_back(ci * config_.bucketEntries + first);
            }
        }
        Cycles search_lat = 0;
        auto rs = sys.cc().executeStream(0, searches, &search_lat);
        cc_cycles += search_lat;

        // Mask instruction per search reports match/mismatch per entry:
        // a slot matches when all eight of its word-equality bits are
        // set. The mask result drives the application's control flow.
        std::int64_t found_at = -1;
        for (std::size_t si = 0; si < rs.size(); ++si) {
            std::size_t blocks_in = searches[si].size / kBlockSize;
            for (std::size_t blk = 0; blk < blocks_in; ++blk) {
                std::uint64_t bits = (rs[si].result >> (blk * 8)) & 0xff;
                if (bits == 0xff) {
                    found_at = static_cast<std::int64_t>(base_slots[si] +
                                                         blk);
                    break;
                }
            }
            if (found_at >= 0)
                break;
        }
        cost.addInstrs(rs.size());
        extra_instrs += rs.size();

        // The CAM search must agree with the host-side truth.
        bool host_found = false;
        for (std::size_t w = 0; w < entries.size(); ++w)
            host_found |= entries[w] == word;
        CC_ASSERT(host_found == (found_at >= 0),
                  "CAM search diverged from reference for '", word, "'");

        std::size_t slot;
        if (found_at >= 0) {
            slot = static_cast<std::size_t>(found_at);
        } else {
            // Append; grow the chain with an overflow bucket when full.
            if (entries.size() ==
                chain.size() * config_.bucketEntries) {
                chain.push_back(next_overflow++);
            }
            slot = entries.size();
            entries.push_back(word);
            std::size_t cb = chain[slot / config_.bucketEntries];
            Addr dst = slot_addr(cb, slot % config_.bucketEntries);
            lat = hier.storeBytes(0, dst, key.data(), kBlockSize);
            cost.addMemAccess(lat);
            cost.addInstrs(4);
            extra_instrs += 4;
        }

        // Count update (counts array indexed by (bucket, slot)).
        Addr count_addr = config_.countsBase +
            (b * 4096 + slot) * 8;
        std::uint64_t count = coherentWord(hier, count_addr);
        lat = hier.loadBytes(0, count_addr, nullptr, 8);
        cost.addMemAccess(lat);
        std::uint64_t next = count + 1;
        lat = hier.storeBytes(0, count_addr, &next, 8);
        cost.addMemAccess(lat);
        cost.addInstrs(2);
        extra_instrs += 2;
    }

    em.chargeInstructions(extra_instrs);

    std::map<std::string, std::uint64_t> counts;
    sys.hierarchy().flushAll();
    for (std::size_t b = 0; b < buckets; ++b) {
        for (std::size_t w = 0; w < bucket_words[b].size(); ++w) {
            counts[bucket_words[b][w]] = hier.memory().readWord(
                config_.countsBase + (b * 4096 + w) * 8);
        }
    }

    AppRunResult res;
    res.cycles = cost.cycles() + cc_cycles;
    res.instructions = cost.instructions() +
        sys.stats().value("cc.instructions");
    sys.advance(0, res.cycles);
    res.dynamic = em.dynamic();
    res.totals = sys.totals();
    res.checksum = checksumOf(counts);
    return res;
}

AppRunResult
WordCount::run(sim::System &sys, Engine engine)
{
    return engine == Engine::Cc ? runCc(sys) : runBaseline(sys, engine);
}

} // namespace ccache::apps
