#include "apps/stringmatch.hh"

#include <cstring>

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::apps {

Block
StringMatch::encrypt(const std::string &word)
{
    // Keyed xor-rotate transform: deterministic, collision-free enough
    // for distinct short words, and clearly core-side work.
    Block out{};
    std::uint64_t state = 0x5bd1e995u;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        unsigned char c = i < word.size() ? word[i] : 0;
        state = (state ^ (c + 0x9e37u)) * 0x100000001b3ULL;
        state = (state << 13) | (state >> 51);
        out[i] = static_cast<std::uint8_t>(state >> 24);
    }
    return out;
}

StringMatch::StringMatch(const StringMatchConfig &config) : config_(config)
{
    workload::TextGen gen(config.text);
    std::string corpus = gen.corpus(config.textBytes);

    std::size_t pos = 0;
    while (pos < corpus.size()) {
        std::size_t end = corpus.find(' ', pos);
        if (end == std::string::npos)
            end = corpus.size();
        if (end > pos)
            words_.push_back(corpus.substr(pos, end - pos));
        pos = end + 1;
    }

    // Keys: frequent vocabulary words, so matches occur.
    for (std::size_t k = 0; k < config.numKeys; ++k)
        keyWords_.push_back(gen.word(k * 3));

    refMatches_.assign(config.numKeys, 0);
    for (const auto &w : words_) {
        for (std::size_t k = 0; k < keyWords_.size(); ++k)
            refMatches_[k] += w == keyWords_[k] ? 1 : 0;
    }
}

AppRunResult
StringMatch::run(sim::System &sys, Engine engine)
{
    auto &hier = sys.hierarchy();
    auto &em = sys.energy();
    sim::CoreCostModel cost(sys.config().core);
    std::uint64_t extra_instrs = 0;
    Cycles cc_cycles = 0;

    const std::size_t batch_bytes = config_.batchWords * kBlockSize;
    CC_ASSERT(batch_bytes <= cc::kMaxCmpBytes,
              "batch exceeds one cc_search");

    // Encrypted keys are staged once and stay hot.
    std::vector<Block> keys;
    for (std::size_t k = 0; k < keyWords_.size(); ++k) {
        keys.push_back(encrypt(keyWords_[k]));
        Cycles lat = hier.storeBytes(0, config_.keysBase + k * kBlockSize,
                                     keys.back().data(), kBlockSize);
        cost.addMemAccess(lat);
        cost.addInstrs(2 * kBlockSize);  // encrypting the key
        extra_instrs += 2 * kBlockSize;
    }

    std::vector<std::uint64_t> matches(keyWords_.size(), 0);

    std::size_t vec = engine == Engine::Base32 ? 32 : 8;
    std::size_t batch_fill = 0;

    auto flush_batch = [&](std::size_t words_in_batch) {
        if (words_in_batch == 0)
            return;
        if (engine == Engine::Cc) {
            // cc_search in L1 per key over the whole batch; the searches
            // for different keys are independent and stream together.
            sys.cc().mutableParams().forceLevel = CacheLevel::L1;
            std::vector<cc::CcInstruction> searches;
            for (std::size_t k = 0; k < keys.size(); ++k) {
                searches.push_back(cc::CcInstruction::search(
                    config_.batchBase, config_.keysBase + k * kBlockSize,
                    batch_bytes));
            }
            Cycles lat = 0;
            auto rs = sys.cc().executeStream(0, searches, &lat);
            cc_cycles += lat;
            for (std::size_t k = 0; k < rs.size(); ++k) {
                for (std::size_t blk = 0; blk < words_in_batch; ++blk) {
                    std::uint64_t bits =
                        (rs[k].result >> (blk * 8)) & 0xff;
                    matches[k] += bits == 0xff ? 1 : 0;
                }
                cost.addInstrs(1);  // mask instruction
                extra_instrs += 1;
            }
        } else {
            // Baseline: compare every batched word against every key.
            for (std::size_t blk = 0; blk < words_in_batch; ++blk) {
                for (std::size_t k = 0; k < keys.size(); ++k) {
                    bool equal = true;
                    for (std::size_t off = 0; off < kBlockSize;
                         off += vec) {
                        std::vector<std::uint8_t> wbuf(vec), kbuf(vec);
                        Cycles lat = hier.loadBytes(
                            0, config_.batchBase + blk * kBlockSize + off,
                            wbuf.data(), vec);
                        cost.addMemAccess(lat);
                        lat = hier.loadBytes(
                            0, config_.keysBase + k * kBlockSize + off,
                            kbuf.data(), vec);
                        cost.addMemAccess(lat);
                        cost.addInstrs(2);
                        extra_instrs += 2;
                        equal &= wbuf == kbuf;
                    }
                    matches[k] += equal ? 1 : 0;
                }
            }
        }
    };

    for (std::size_t w = 0; w < words_.size(); ++w) {
        // Encrypt the word on the core and store it into the batch.
        Block enc = encrypt(words_[w]);
        cost.addInstrs(2 * kBlockSize);
        extra_instrs += 2 * kBlockSize;
        Cycles lat = hier.storeBytes(
            0, config_.batchBase + batch_fill * kBlockSize, enc.data(),
            kBlockSize);
        cost.addMemAccess(lat);

        if (++batch_fill == config_.batchWords) {
            flush_batch(batch_fill);
            batch_fill = 0;
        }
    }
    flush_batch(batch_fill);

    em.chargeInstructions(extra_instrs);

    // Functional check against the host reference.
    std::uint64_t checksum = 0;
    for (std::size_t k = 0; k < matches.size(); ++k) {
        CC_ASSERT(matches[k] == refMatches_[k], "key ", k, " matched ",
                  matches[k], " times, expected ", refMatches_[k]);
        checksum = checksum * 1000003 + matches[k];
    }

    AppRunResult res;
    res.cycles = cost.cycles() + cc_cycles;
    res.instructions = cost.instructions() +
        sys.stats().value("cc.instructions");
    sys.advance(0, res.cycles);
    res.dynamic = em.dynamic();
    res.totals = sys.totals();
    res.checksum = checksum;
    return res;
}

} // namespace ccache::apps
