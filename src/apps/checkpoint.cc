#include "apps/checkpoint.hh"

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::apps {

Checkpoint::Checkpoint(workload::SplashApp app,
                       const CheckpointConfig &config)
    : app_(app), config_(config)
{
}

CheckpointResult
Checkpoint::run(sim::System &sys, Engine engine, bool checkpointing)
{
    auto &hier = sys.hierarchy();
    auto &em = sys.energy();
    workload::SplashTrace trace(app_, config_.heapBase, config_.seed);

    CheckpointResult result;
    Rng content_rng(config_.seed ^ 0xfeed);

    for (std::size_t interval = 0; interval < config_.intervals;
         ++interval) {
        auto activity = trace.nextInterval(config_.intervalInstructions);

        // ---- Application compute phase ------------------------------
        Cycles compute = static_cast<Cycles>(
            static_cast<double>(config_.intervalInstructions) /
            config_.appIpc);
        result.baseCycles += compute;
        em.chargeInstructions(config_.intervalInstructions);
        // The application's own cache traffic (mostly L1 hits).
        em.chargeCacheOp(CacheLevel::L1, energy::CacheOp::Read,
                         activity.memAccesses);

        // The interval's writes leave dirty data in the caches, which is
        // exactly what the checkpoint copies must observe.
        for (Addr page : activity.dirtiedPages) {
            Block data;
            for (auto &byte : data)
                byte = static_cast<std::uint8_t>(content_rng.below(256));
            hier.write(0, page, &data);
        }

        if (!checkpointing)
            continue;

        // ---- Copy-on-write checkpoint phase -------------------------
        for (Addr page : activity.dirtiedPages) {
            Addr shadow = config_.shadowBase + (page - config_.heapBase);
            CC_ASSERT((page & (kPageSize - 1)) ==
                          (shadow & (kPageSize - 1)),
                      "shadow must preserve the page offset");
            sim::KernelResult copy;
            switch (engine) {
              case Engine::Base:
                copy = sys.scalar().copy(0, page, shadow, kPageSize);
                break;
              case Engine::Base32:
                copy = sys.simd32().copy(0, page, shadow, kPageSize);
                break;
              case Engine::Cc:
                sys.cc().mutableParams().forceLevel = CacheLevel::L3;
                copy = sys.ccEngine().copy(0, page, shadow, kPageSize);
                break;
            }
            result.checkpointCycles += copy.cycles;
            ++result.pagesCopied;

            // Spot-check the copy.
            CC_ASSERT(hier.debugRead(shadow) == hier.debugRead(page),
                      "checkpoint copy corrupted page 0x", std::hex,
                      page);
        }
    }

    result.app.cycles = result.baseCycles + result.checkpointCycles;
    result.app.instructions =
        config_.intervals * config_.intervalInstructions;
    sys.advance(0, result.app.cycles);
    result.app.dynamic = em.dynamic();
    result.app.totals = sys.totals();
    result.app.checksum = result.pagesCopied;
    return result;
}

} // namespace ccache::apps
