/**
 * @file
 * WordCount (Section VI-B): builds a dictionary of unique words and their
 * frequencies from a text corpus.
 *
 * The baseline binary-searches a sorted dictionary per word; the Compute
 * Cache version models the dictionary as an alphabet-indexed CAM (first
 * two letters select a 1 KB bucket of 64-byte entries) probed with
 * cc_search in the L3 cache, plus the mask instructions that report
 * match position (the paper reports 87% fewer instructions and a 2x
 * speedup from this restructuring).
 */

#ifndef CCACHE_APPS_WORDCOUNT_HH
#define CCACHE_APPS_WORDCOUNT_HH

#include <map>
#include <string>

#include "apps/app_common.hh"
#include "workload/text_gen.hh"

namespace ccache::apps {

/** WordCount configuration. */
struct WordCountConfig
{
    std::size_t corpusBytes = 64 * 1024;
    workload::TextGenParams text;

    /** CAM bucket size in 64-byte entries (1 KB buckets per the paper). */
    std::size_t bucketEntries = 16;

    /** Simulated-memory layout bases. @{ */
    Addr corpusBase = 0x0100'0000;
    Addr dictBase = 0x0800'0000;
    Addr countsBase = 0x0c00'0000;
    Addr keyBase = 0x0080'0000;
    /** @} */
};

/** The application. */
class WordCount
{
  public:
    explicit WordCount(const WordCountConfig &config = WordCountConfig{});

    /** Run on @p sys with @p engine; returns metrics + checksum. */
    AppRunResult run(sim::System &sys, Engine engine);

    /** Reference word counts (host-side), for verification. */
    const std::map<std::string, std::uint64_t> &reference() const
    {
        return reference_;
    }

    /** Layout-independent checksum of a word->count multiset. */
    static std::uint64_t
    checksumOf(const std::map<std::string, std::uint64_t> &counts);

  private:
    AppRunResult runBaseline(sim::System &sys, Engine engine);
    AppRunResult runCc(sim::System &sys);

    WordCountConfig config_;
    std::string corpus_;
    std::vector<std::string> words_;
    std::map<std::string, std::uint64_t> reference_;
};

} // namespace ccache::apps

#endif // CCACHE_APPS_WORDCOUNT_HH
