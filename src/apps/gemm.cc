#include "apps/gemm.hh"

#include <cstring>

#include "cc/bitserial.hh"
#include "cc/transpose.hh"
#include "common/bit_util.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace ccache::apps {

QuantGemm::QuantGemm(const QuantGemmConfig &config)
    : config_(config), a_(config.m * config.k), b_(config.k * config.n),
      expected_(config.m * config.n), computed_(config.m * config.n)
{
    CC_ASSERT(config.n >= 1 && config.n % (8 * kBlockSize) == 0,
              "columns must fill whole 64-byte slice blocks");
    CC_ASSERT(cc::sliceBytes(config.n) <= cc::kSliceStride,
              "column count exceeds one slice row");
    Rng rng(config.seed);
    for (auto &v : a_)
        v = static_cast<std::int8_t>(rng.below(256));
    for (auto &v : b_)
        v = static_cast<std::int8_t>(rng.below(256));

    // int8 x int8 inner products of depth k stay far below 2^31, so the
    // mod-2^32 bit-serial accumulation is exact int32 arithmetic.
    for (std::size_t i = 0; i < config.m; ++i) {
        for (std::size_t j = 0; j < config.n; ++j) {
            std::int32_t sum = 0;
            for (std::size_t kk = 0; kk < config.k; ++kk)
                sum += std::int32_t{a_[i * config.k + kk]} *
                    std::int32_t{b_[kk * config.n + j]};
            expected_[i * config.n + j] = sum;
        }
    }
}

std::uint64_t
QuantGemm::checksum() const
{
    std::uint64_t sum = 0;
    for (std::size_t idx = 0; idx < computed_.size(); ++idx)
        sum ^= static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(computed_[idx])) *
            (idx + 1);
    return sum;
}

AppRunResult
QuantGemm::runBaseline(sim::System &sys, Engine engine)
{
    auto &hier = sys.hierarchy();
    auto &em = sys.energy();
    sim::CoreCostModel cost(sys.config().core);
    std::uint64_t extra_instrs = 0;

    std::size_t m = config_.m, k = config_.k, n = config_.n;

    sys.load(config_.aBase, a_.data(), a_.size());
    sys.load(config_.bBase, b_.data(), b_.size());

    std::size_t vec = engine == Engine::Base32 ? 32 : 8;
    std::fill(computed_.begin(), computed_.end(), 0);

    // Row-of-A-stationary loop: A[i][kk] stays in a register while the
    // inner loop streams B row kk and accumulates the int32 output row.
    for (std::size_t i = 0; i < m; ++i) {
        Cycles lat = hier.loadBytes(0, config_.aBase + i * k, nullptr, k);
        cost.addMemAccess(lat);
        for (std::size_t kk = 0; kk < k; ++kk) {
            std::int32_t av = a_[i * k + kk];
            for (std::size_t off = 0; off < n; off += vec) {
                lat = hier.loadBytes(
                    0, config_.bBase + kk * n + off, nullptr, vec);
                cost.addMemAccess(lat);
                // Widening multiply + accumulate per vec int8 lanes:
                // two ops per lane scalar, two per 8-lane group SIMD.
                std::size_t ops =
                    engine == Engine::Base32 ? 2 * (vec / 8) : 2 * vec;
                cost.addInstrs(ops);
                extra_instrs += ops;
            }
            for (std::size_t j = 0; j < n; ++j)
                computed_[i * n + j] += av * std::int32_t{b_[kk * n + j]};
        }
        Cycles slat =
            hier.storeBytes(0, config_.cBase + i * 4 * n,
                            computed_.data() + i * n, 4 * n);
        cost.addMemAccess(slat);
    }

    em.chargeInstructions(extra_instrs);
    if (engine == Engine::Base32)
        em.chargeVectorInstructions(0);

    CC_ASSERT(computed_ == expected_, "baseline GEMM result wrong");

    AppRunResult res;
    res.cycles = cost.cycles();
    res.instructions = cost.instructions();
    sys.advance(0, res.cycles);
    res.dynamic = em.dynamic();
    res.totals = sys.totals();
    res.checksum = checksum();
    return res;
}

AppRunResult
QuantGemm::runCc(sim::System &sys)
{
    auto &hier = sys.hierarchy();
    auto &em = sys.energy();
    sim::CoreCostModel cost(sys.config().core);
    std::uint64_t extra_instrs = 0;
    Cycles cc_cycles = 0;

    std::size_t m = config_.m, k = config_.k, n = config_.n;
    constexpr std::size_t w = QuantGemmConfig::kAccBits;
    std::size_t sb = cc::sliceBytes(n);

    sys.load(config_.aBase, a_.data(), a_.size());
    sys.load(config_.bBase, b_.data(), b_.size());

    sys.cc().mutableParams().forceLevel = config_.ccLevel;
    cc::TransposeManager trans(hier, &em, &sys.stats());
    std::fill(computed_.begin(), computed_.end(), 0);

    // Stage every B row into transposed form once: sign-extend the int8
    // row to packed int32 lanes on the core, then bit-transpose it into
    // its slice stack. The stacks stay cache-resident for all m rows of
    // A, which is where the transposition cost amortizes.
    std::vector<std::int32_t> row32(n);
    for (std::size_t kk = 0; kk < k; ++kk) {
        Cycles lat =
            hier.loadBytes(0, config_.bBase + kk * n, nullptr, n);
        cost.addMemAccess(lat);
        for (std::size_t j = 0; j < n; ++j)
            row32[j] = std::int32_t{b_[kk * n + j]};
        cost.addInstrs(n / 4);  // vectorized sign extension
        extra_instrs += n / 4;
        lat = hier.storeBytes(0, config_.b32Base, row32.data(), 4 * n);
        cost.addMemAccess(lat);
        cost.addMemAccess(
            trans.transpose(0, config_.b32Base, bStack(kk), n, w));
    }

    std::vector<cc::CcInstruction> instrs;
    auto flush = [&] {
        if (instrs.empty())
            return;
        Cycles stream_lat = 0;
        sys.cc().executeStream(0, instrs, &stream_lat);
        cc_cycles += stream_lat;
        instrs.clear();
    };

    std::vector<std::int32_t> out(n);
    for (std::size_t i = 0; i < m; ++i) {
        Cycles lat = hier.loadBytes(0, config_.aBase + i * k, nullptr, k);
        cost.addMemAccess(lat);
        for (std::size_t kk = 0; kk < k; ++kk) {
            // The broadcast rewrites the scalar stack, so the stream
            // consuming the previous value must drain first.
            flush();
            std::uint32_t av = static_cast<std::uint32_t>(
                std::int32_t{a_[i * k + kk]});
            cost.addMemAccess(
                trans.broadcast(0, av, config_.aBcastBase, n, w));
            if (kk == 0) {
                instrs.push_back(cc::CcInstruction::mul(
                    config_.aBcastBase, bStack(kk), config_.accBase, sb,
                    w));
            } else {
                instrs.push_back(cc::CcInstruction::mul(
                    config_.aBcastBase, bStack(kk), config_.tmpBase, sb,
                    w));
                instrs.push_back(cc::CcInstruction::add(
                    config_.accBase, config_.tmpBase, config_.accBase,
                    sb, w));
            }
            if (instrs.size() >= 8)
                flush();
        }
        flush();

        // Gather the accumulator back to packed form and emit row i.
        cost.addMemAccess(trans.untranspose(
            0, config_.accBase, config_.cBase + i * 4 * n, n, w));
        Cycles l2 = hier.loadBytes(0, config_.cBase + i * 4 * n,
                                   out.data(), 4 * n);
        cost.addMemAccess(l2);
        std::memcpy(computed_.data() + i * n, out.data(), 4 * n);
    }

    em.chargeInstructions(extra_instrs);

    CC_ASSERT(computed_ == expected_, "CC GEMM result wrong");

    AppRunResult res;
    res.cycles = cost.cycles() + cc_cycles;
    res.instructions = cost.instructions() +
        sys.stats().value("cc.instructions");
    sys.advance(0, res.cycles);
    res.dynamic = em.dynamic();
    res.totals = sys.totals();
    res.checksum = checksum();
    return res;
}

AppRunResult
QuantGemm::run(sim::System &sys, Engine engine)
{
    return engine == Engine::Cc ? runCc(sys) : runBaseline(sys, engine);
}

} // namespace ccache::apps
