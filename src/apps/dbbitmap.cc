#include "apps/dbbitmap.hh"

#include <algorithm>
#include <bit>

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::apps {

DbBitmap::DbBitmap(const DbBitmapConfig &config)
    : config_(config), index_(config.index)
{
    Rng rng(config.querySeed);
    for (std::size_t q = 0; q < config.numQueries; ++q) {
        BitmapQuery query;
        if (rng.chance(0.7)) {
            query.kind = BitmapQuery::Kind::RangeOr;
            std::size_t span = 2 + rng.below(config.maxRangeBins - 1);
            span = std::min(span, index_.bins());
            query.loBin = rng.below(index_.bins() - span + 1);
            query.hiBin = query.loBin + span - 1;
        } else {
            query.kind = BitmapQuery::Kind::JoinAnd;
            query.loBin = rng.below(index_.bins());
            query.hiBin = rng.below(index_.bins());
        }
        queries_.push_back(query);
    }
}

Addr
DbBitmap::binAddr(std::size_t b) const
{
    // Bins are page-aligned so any two bins (and the result buffer)
    // trivially satisfy operand locality (Section IV-C).
    std::size_t padded = alignUp(index_.binBytes(), kPageSize);
    return config_.binsBase + b * padded;
}

AppRunResult
DbBitmap::run(sim::System &sys, Engine engine)
{
    return runParallel(sys, engine, 1);
}

AppRunResult
DbBitmap::runParallel(sim::System &sys, Engine engine, unsigned cores)
{
    auto &em = sys.energy();
    CC_ASSERT(cores >= 1 && cores <= sys.hierarchy().cores(),
              "bad core count ", cores);

    // Load the index into simulated memory.
    std::size_t bin_bytes = index_.binBytes();
    for (std::size_t b = 0; b < index_.bins(); ++b) {
        auto bytes = index_.bin(b).toBytes();
        bytes.resize(bin_bytes, 0);
        sys.load(binAddr(b), bytes.data(), bytes.size());
    }

    std::vector<Cycles> core_cycles(cores, 0);
    Cycles total_cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t checksum = 0;

    std::size_t result_stride = alignUp(bin_bytes, kPageSize);
    for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
        const auto &query = queries_[qi];
        CoreId core = static_cast<CoreId>(qi % cores);
        Addr result_base = config_.resultBase + core * result_stride;
        Cycles query_cycles = 0;

        // Result accumulates into the result buffer: first a copy of the
        // first operand bin, then OR/AND with the remaining bins.
        if (engine == Engine::Cc) {
            sys.cc().mutableParams().forceLevel = CacheLevel::L3;
            auto copy_res = sys.ccEngine().copy(core,
                                                binAddr(query.loBin),
                                                result_base, bin_bytes);
            query_cycles += copy_res.cycles;
            instructions += copy_res.instructions;

            auto apply_bin = [&](std::size_t b, bool is_and) {
                // 2 KB chunks, all independent: one stream per bin.
                std::vector<cc::CcInstruction> chunk_ops;
                for (std::size_t off = 0; off < bin_bytes;
                     off += config_.chunkBytes) {
                    std::size_t len = std::min(config_.chunkBytes,
                                               bin_bytes - off);
                    Addr a = result_base + off;
                    Addr src = binAddr(b) + off;
                    chunk_ops.push_back(
                        is_and ? cc::CcInstruction::logicalAnd(a, src, a,
                                                               len)
                               : cc::CcInstruction::logicalOr(a, src, a,
                                                              len));
                }
                Cycles lat = 0;
                auto rs = sys.cc().executeStream(core, chunk_ops, &lat);
                query_cycles += lat;
                instructions += rs.size();
            };

            if (query.kind == BitmapQuery::Kind::RangeOr) {
                for (std::size_t b = query.loBin + 1; b <= query.hiBin;
                     ++b) {
                    apply_bin(b, false);
                }
            } else {
                apply_bin(query.hiBin, true);
            }
        } else {
            auto &eng = engine == Engine::Base32 ? sys.simd32()
                                                 : sys.scalar();
            auto copy_res = eng.copy(core, binAddr(query.loBin),
                                     result_base, bin_bytes);
            query_cycles += copy_res.cycles;
            instructions += copy_res.instructions;

            auto apply_bin = [&](std::size_t b, bool is_and) {
                auto r = is_and
                    ? eng.logicalAnd(core, result_base, binAddr(b),
                                     result_base, bin_bytes)
                    : eng.logicalOr(core, result_base, binAddr(b),
                                    result_base, bin_bytes);
                query_cycles += r.cycles;
                instructions += r.instructions;
            };

            if (query.kind == BitmapQuery::Kind::RangeOr) {
                for (std::size_t b = query.loBin + 1; b <= query.hiBin;
                     ++b) {
                    apply_bin(b, false);
                }
            } else {
                apply_bin(query.hiBin, true);
            }
        }

        // Result-scan phase common to both versions (FastBit converts
        // the answer bitmap into row ids before returning): stream the
        // result words and extract the set bits.
        {
            sim::CoreCostModel scan_cost(sys.config().core);
            std::size_t set_bits = 0;
            for (std::size_t off = 0; off < bin_bytes; off += 32) {
                std::uint8_t buf[32];
                Cycles lat = sys.hierarchy().loadBytes(
                    core, result_base + off, buf,
                    std::min<std::size_t>(32, bin_bytes - off));
                scan_cost.addMemAccess(lat);
                scan_cost.addInstrs(2);  // popcount + branch
                for (std::size_t i = 0;
                     i < std::min<std::size_t>(32, bin_bytes - off); ++i)
                    set_bits += std::popcount(unsigned{buf[i]});
            }
            // Row-id extraction: ~1 instruction per 4 hits (SIMD
            // expansion of bit positions).
            scan_cost.addInstrs(set_bits / 4);
            em.chargeInstructions(bin_bytes / 32 * 2 + set_bits / 4);
            instructions += bin_bytes / 32 * 2 + set_bits / 4;
            query_cycles += scan_cost.cycles();
        }

        // Verify the query result against the reference evaluation.
        BitVector expect = query.kind == BitmapQuery::Kind::RangeOr
            ? index_.rangeQueryReference(query.loBin, query.hiBin)
            : index_.andReference(query.loBin, query.hiBin);
        auto got_bytes = sys.dump(result_base, bin_bytes);
        BitVector got = BitVector::fromBytes(got_bytes.data(),
                                             got_bytes.size());
        auto expect_bytes = expect.toBytes();
        expect_bytes.resize(bin_bytes, 0);
        BitVector expect_padded = BitVector::fromBytes(
            expect_bytes.data(), expect_bytes.size());
        CC_ASSERT(got == expect_padded, "query result mismatch");

        checksum = checksum * 1000003 + got.popcount();
        total_cycles += query_cycles;
        core_cycles[core] += query_cycles;
    }

    em.chargeInstructions(queries_.size() * 20);  // query planning
    instructions += queries_.size() * 20;

    avgQueryCycles_ = static_cast<double>(total_cycles) /
        static_cast<double>(queries_.size());

    AppRunResult res;
    // Wall-clock is the slowest core; single-core degenerates to the sum.
    res.cycles = *std::max_element(core_cycles.begin(),
                                   core_cycles.end());
    res.instructions = instructions;
    for (unsigned c = 0; c < cores; ++c)
        sys.advance(c, core_cycles[c]);
    res.dynamic = em.dynamic();
    res.totals = sys.totals();
    res.checksum = checksum;
    return res;
}

} // namespace ccache::apps
