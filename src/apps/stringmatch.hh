/**
 * @file
 * StringMatch (Section VI-B): reads words from a text, encrypts them and
 * compares them against a list of encrypted keys.
 *
 * Encryption cannot be offloaded to the cache, so the encrypted words
 * live in the L1 cache and the Compute Cache version batches them and
 * probes each batch with cc_search in L1, where a single instruction
 * compares one encrypted key against many encrypted words (the paper
 * reports a 32% instruction reduction and 1.5x speedup).
 */

#ifndef CCACHE_APPS_STRINGMATCH_HH
#define CCACHE_APPS_STRINGMATCH_HH

#include <string>
#include <vector>

#include "apps/app_common.hh"
#include "workload/text_gen.hh"

namespace ccache::apps {

/** StringMatch configuration. */
struct StringMatchConfig
{
    std::size_t textBytes = 64 * 1024;
    workload::TextGenParams text;

    /** Encrypted keys to match against (drawn from the vocabulary so
     *  matches actually occur). */
    std::size_t numKeys = 8;

    /** Words per encrypted batch (512 bytes = one cc_search). */
    std::size_t batchWords = 8;

    Addr textBase = 0x0100'0000;
    Addr batchBase = 0x0040'0000;
    Addr keysBase = 0x0042'0000;
};

/** The application. */
class StringMatch
{
  public:
    explicit StringMatch(
        const StringMatchConfig &config = StringMatchConfig{});

    AppRunResult run(sim::System &sys, Engine engine);

    /** Host-side reference: matches per key. */
    const std::vector<std::uint64_t> &referenceMatches() const
    {
        return refMatches_;
    }

    /** The toy keyed transform standing in for encryption. */
    static Block encrypt(const std::string &word);

  private:
    StringMatchConfig config_;
    std::vector<std::string> words_;
    std::vector<std::string> keyWords_;
    std::vector<std::uint64_t> refMatches_;
};

} // namespace ccache::apps

#endif // CCACHE_APPS_STRINGMATCH_HH
