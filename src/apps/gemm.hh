/**
 * @file
 * Quantized GEMM on the bit-serial Compute Cache ISA (the Neural Cache
 * workload, arXiv 1805.03718): C = A x B with 8-bit signed weights and
 * activations accumulated into 32-bit lanes.
 *
 * The Compute Cache version keeps B resident in transposed (bit-slice)
 * form -- one 32-bit slice stack per B row, all n columns as parallel
 * lanes -- and runs the inner product as bit-serial multiply-accumulate:
 * for every (i, kk) the scalar A[i][kk] is broadcast into a slice stack,
 * cc_mul forms the partial products for all n columns at once, and
 * cc_add folds them into the accumulator stack. One untranspose per
 * output row returns C to the packed int32 form. The baseline streams B
 * through the core with scalar (or 32-byte SIMD) multiply-accumulates.
 */

#ifndef CCACHE_APPS_GEMM_HH
#define CCACHE_APPS_GEMM_HH

#include <cstdint>
#include <vector>

#include "apps/app_common.hh"

namespace ccache::apps {

/** Quantized-GEMM configuration. */
struct QuantGemmConfig
{
    std::size_t m = 4;    ///< output rows
    std::size_t k = 16;   ///< inner dimension
    /** Columns = bit-serial lanes; a multiple of 512 keeps the slice
     *  rows whole 64-byte blocks. */
    std::size_t n = 512;

    std::uint64_t seed = 0x9e3779b9;

    /** Packed (normal-form) storage. @{ */
    Addr aBase = 0x0400'0000;    ///< int8 A, row-major m x k
    Addr bBase = 0x0410'0000;    ///< int8 B, row-major k x n
    Addr cBase = 0x0420'0000;    ///< int32 C, row-major m x n
    Addr b32Base = 0x0430'0000;  ///< int32 staging row for transposition
    /** @} */

    /** Transposed slice stacks (page-aligned; each stack spans
     *  laneBits * kSliceStride of address space). @{ */
    Addr bSlicesBase = 0x0500'0000;  ///< k stacks of B rows
    Addr aBcastBase = 0x0700'0000;   ///< broadcast scalar stack
    Addr tmpBase = 0x0740'0000;      ///< cc_mul partial products
    Addr accBase = 0x0780'0000;      ///< accumulator stack
    /** @} */

    /** Accumulator lane width (fixed by the int8 x int8 -> int32
     *  quantization scheme). */
    static constexpr std::size_t kAccBits = 32;

    CacheLevel ccLevel = CacheLevel::L3;
};

/** The application. */
class QuantGemm
{
  public:
    explicit QuantGemm(const QuantGemmConfig &config = QuantGemmConfig{});

    AppRunResult run(sim::System &sys, Engine engine);

    const std::vector<std::int8_t> &a() const { return a_; }
    const std::vector<std::int8_t> &b() const { return b_; }
    const std::vector<std::int32_t> &expected() const { return expected_; }

    /** The product computed by the last run. */
    const std::vector<std::int32_t> &computed() const { return computed_; }

  private:
    AppRunResult runBaseline(sim::System &sys, Engine engine);
    AppRunResult runCc(sim::System &sys);

    /** Address of B row @p kk's slice stack. */
    Addr bStack(std::size_t kk) const
    {
        return config_.bSlicesBase +
            kk * QuantGemmConfig::kAccBits * cc::kSliceStride;
    }

    std::uint64_t checksum() const;

    QuantGemmConfig config_;
    std::vector<std::int8_t> a_;   ///< m x k
    std::vector<std::int8_t> b_;   ///< k x n
    std::vector<std::int32_t> expected_;
    std::vector<std::int32_t> computed_;
};

} // namespace ccache::apps

#endif // CCACHE_APPS_GEMM_HH
