/**
 * @file
 * Shared vocabulary for the re-designed applications of Section VI-B.
 */

#ifndef CCACHE_APPS_APP_COMMON_HH
#define CCACHE_APPS_APP_COMMON_HH

#include <cstdint>
#include <string>

#include "energy/energy_model.hh"
#include "sim/system.hh"

namespace ccache::apps {

/** Which machine runs the application. */
enum class Engine {
    Base,    ///< scalar core, 8-byte operations
    Base32,  ///< 32-byte SIMD (the paper's Base_32)
    Cc,      ///< Compute Cache
};

const char *toString(Engine e);

/** Outcome of one application run. */
struct AppRunResult
{
    Cycles cycles = 0;
    std::uint64_t instructions = 0;

    /** Dynamic energy breakdown at the end of the run. */
    energy::EnergyBreakdown dynamic;

    /** Static + dynamic totals at the end of the run. */
    energy::EnergyTotals totals;

    /** Application-defined functional checksum: identical across engines
     *  when the computation is correct. */
    std::uint64_t checksum = 0;
};

inline const char *
toString(Engine e)
{
    switch (e) {
      case Engine::Base: return "Base";
      case Engine::Base32: return "Base_32";
      case Engine::Cc: return "CC";
    }
    return "?";
}

} // namespace ccache::apps

#endif // CCACHE_APPS_APP_COMMON_HH
