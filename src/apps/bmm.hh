/**
 * @file
 * Bit-matrix multiplication over GF(2) (Section VI-B): C = A x B with
 * 256x256-bit matrices, the primitive behind error-correcting codes,
 * cryptography, bioinformatics and FFT bit-reversal.
 *
 * The optimized baseline mirrors the paper's blocked x86-CLMUL
 * implementation (AND + parity per row/column pair, matrix rows hot in
 * L1). The Compute Cache version keeps both matrices resident in the
 * cache and issues cc_clmul256 operations whose second operand — one
 * column-pair block of B-transpose — is replicated across partitions by
 * the controller exactly like a search key, with parities packed densely
 * into the result by the controller's shift register (paper reports a
 * 3.2x speedup and 98% instruction reduction).
 */

#ifndef CCACHE_APPS_BMM_HH
#define CCACHE_APPS_BMM_HH

#include <vector>

#include "apps/app_common.hh"
#include "common/bitvector.hh"

namespace ccache::apps {

/** BMM configuration. */
struct BmmConfig
{
    /** Matrix dimension in bits; must be a multiple of 512 so that rows
     *  pack into whole 64-byte blocks. The paper models 256 x 256. */
    std::size_t n = 256;

    std::uint64_t seed = 0xb1731;

    Addr aBase = 0x0400'0000;
    Addr btBase = 0x0500'0000;
    Addr cBase = 0x0600'0000;
    Addr scratchBase = 0x0700'0000;

    /** Cache level for the CC version (L1 per Section VI-B: the matrix
     *  reuse makes BMM L1-resident). */
    CacheLevel ccLevel = CacheLevel::L1;
};

/** A dense square bit matrix. */
class BitMatrix
{
  public:
    explicit BitMatrix(std::size_t n) : n_(n), rows_(n, BitVector(n)) {}

    std::size_t size() const { return n_; }
    BitVector &row(std::size_t i) { return rows_[i]; }
    const BitVector &row(std::size_t i) const { return rows_[i]; }

    bool get(std::size_t i, std::size_t j) const
    {
        return rows_[i].get(j);
    }
    void set(std::size_t i, std::size_t j, bool v) { rows_[i].set(j, v); }

    /** Transpose. */
    BitMatrix transposed() const;

    /** GF(2) product (reference implementation). */
    static BitMatrix multiply(const BitMatrix &a, const BitMatrix &b);

    bool operator==(const BitMatrix &other) const = default;

  private:
    std::size_t n_;
    std::vector<BitVector> rows_;
};

/** The application. */
class Bmm
{
  public:
    explicit Bmm(const BmmConfig &config = BmmConfig{});

    AppRunResult run(sim::System &sys, Engine engine);

    const BitMatrix &a() const { return a_; }
    const BitMatrix &b() const { return b_; }
    const BitMatrix &expected() const { return expected_; }

    /** The product matrix computed by the last run. */
    const BitMatrix &computed() const { return computed_; }

  private:
    AppRunResult runBaseline(sim::System &sys, Engine engine);
    AppRunResult runCc(sim::System &sys);

    /** Bytes per matrix row (n bits). */
    std::size_t rowBytes() const { return config_.n / 8; }

    /** Matrix rows per 64-byte block. */
    std::size_t rowsPerBlock() const { return kBlockSize / rowBytes(); }

    BmmConfig config_;
    BitMatrix a_;
    BitMatrix b_;
    BitMatrix bt_;
    BitMatrix expected_;
    BitMatrix computed_;
};

} // namespace ccache::apps

#endif // CCACHE_APPS_BMM_HH
