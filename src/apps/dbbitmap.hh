/**
 * @file
 * DB-BitMap (Section VI-B): bitmap-index query processing in the style
 * of FastBit over the STAR dataset.
 *
 * Queries OR (range) or AND (conjunction) large uncompressed bitmap
 * bins. The Compute Cache version issues cc_or / cc_and operations in
 * 2 KB chunks; the many chunk operations of one query are independent
 * and execute in parallel across sub-arrays (the paper reports a 1.6x
 * speedup and 43% instruction reduction).
 */

#ifndef CCACHE_APPS_DBBITMAP_HH
#define CCACHE_APPS_DBBITMAP_HH

#include <vector>

#include "apps/app_common.hh"
#include "workload/bitmap_gen.hh"

namespace ccache::apps {

/** One query of the mix. */
struct BitmapQuery
{
    enum class Kind { RangeOr, JoinAnd } kind = Kind::RangeOr;
    std::size_t loBin = 0;
    std::size_t hiBin = 0;   ///< inclusive; for JoinAnd: the second bin
};

/** DB-BitMap configuration. */
struct DbBitmapConfig
{
    workload::BitmapGenParams index;
    std::size_t numQueries = 12;
    std::size_t maxRangeBins = 6;
    std::uint64_t querySeed = 0xdb01;

    Addr binsBase = 0x2000'0000;
    Addr resultBase = 0x3000'0000;

    /** CC chunk size per operation (2 KB per Section VI-B). */
    std::size_t chunkBytes = 2048;
};

/** The application. */
class DbBitmap
{
  public:
    explicit DbBitmap(const DbBitmapConfig &config = DbBitmapConfig{});

    AppRunResult run(sim::System &sys, Engine engine);

    /**
     * Multi-core variant: queries distribute round-robin over @p cores,
     * each with a private result buffer, and the reported cycles are the
     * makespan of the slowest core. Independent queries over the shared
     * (read-only) index parallelize across NUCA slices.
     */
    AppRunResult runParallel(sim::System &sys, Engine engine,
                             unsigned cores);

    /** Average cycles per query of the last run. */
    double avgQueryCycles() const { return avgQueryCycles_; }

    const std::vector<BitmapQuery> &queries() const { return queries_; }

  private:
    Addr binAddr(std::size_t b) const;

    DbBitmapConfig config_;
    workload::BitmapIndex index_;
    std::vector<BitmapQuery> queries_;
    double avgQueryCycles_ = 0.0;
};

} // namespace ccache::apps

#endif // CCACHE_APPS_DBBITMAP_HH
