/**
 * @file
 * Reusable O(1) Zipf sampler (Walker/Vose alias table).
 *
 * Zipfian skew shows up in every serving-scale workload this repo
 * models: word frequency in the text corpora (text_gen), tenant
 * popularity, and the multi-million-key traffic model that drives the
 * fleet bench (DESIGN.md §15). The naive inverse-CDF sampler is
 * O(log N) per draw and was fine at vocabulary sizes of a few
 * thousand; a fleet run drawing keys from millions of ranks needs the
 * alias method: O(N) build, O(1) per draw (one bounded integer + one
 * uniform double from the caller's Rng).
 *
 * Determinism: the table is a pure function of (size, exponent) — no
 * RNG is consumed at construction — and a draw consumes exactly one
 * Rng::below plus one Rng::uniform, so sampling streams are
 * reproducible wherever they are replayed (DESIGN.md §8).
 */

#ifndef CCACHE_WORKLOAD_ZIPF_HH
#define CCACHE_WORKLOAD_ZIPF_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace ccache::workload {

/**
 * Zipf(s) over ranks 0..n-1: P(rank r) proportional to 1/(r+1)^s.
 * Rank 0 is the hottest key.
 */
class ZipfSampler
{
  public:
    /** Build the alias table for @p n ranks at exponent @p s. */
    ZipfSampler(std::size_t n, double s);

    std::size_t size() const { return prob_.size(); }
    double exponent() const { return exponent_; }

    /** Probability mass of @p rank (host-side reference for tests). */
    double pmf(std::size_t rank) const;

    /** Draw one rank in O(1): one below(n) + one uniform() from @p rng. */
    std::size_t sample(Rng &rng) const
    {
        std::size_t column = static_cast<std::size_t>(rng.below(prob_.size()));
        return rng.uniform() < prob_[column] ? column : alias_[column];
    }

  private:
    double exponent_;
    double norm_ = 0.0;          ///< sum of 1/(r+1)^s (pmf denominator)
    /** Alias table: accept column with prob_[c], else take alias_[c]. */
    std::vector<double> prob_;
    std::vector<std::uint32_t> alias_;
};

} // namespace ccache::workload

#endif // CCACHE_WORKLOAD_ZIPF_HH
