/**
 * @file
 * Deterministic Zipfian text generator.
 *
 * Stands in for the 10 MB / 50 MB text corpora the paper feeds WordCount
 * and StringMatch (Section VI-B). Real English word frequency is roughly
 * Zipf(1.0); the generator draws words from a synthetic vocabulary with
 * that distribution so dictionary size and hit locality match the shape
 * of a real corpus. The rank draw itself is the shared O(1) alias-table
 * sampler (workload/zipf.hh); TextGen only owns the vocabulary.
 */

#ifndef CCACHE_WORKLOAD_TEXT_GEN_HH
#define CCACHE_WORKLOAD_TEXT_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "workload/zipf.hh"

namespace ccache::workload {

/** Configuration of the synthetic corpus. */
struct TextGenParams
{
    std::size_t vocabulary = 8000;  ///< distinct words
    double zipfExponent = 1.0;
    std::size_t minWordLen = 3;
    std::size_t maxWordLen = 12;
    std::uint64_t seed = 0x7e87c0ffee;
};

/** Zipf-distributed word sampler with a fixed synthetic vocabulary. */
class TextGen
{
  public:
    explicit TextGen(const TextGenParams &params);

    /** The i-th vocabulary word (rank order: 0 is the most frequent). */
    const std::string &word(std::size_t rank) const
    {
        return vocab_[rank];
    }

    std::size_t vocabularySize() const { return vocab_.size(); }

    /** Draw the next word according to the Zipf distribution. */
    const std::string &nextWord();

    /** Generate roughly @p bytes of space-separated text. */
    std::string corpus(std::size_t bytes);

  private:
    TextGenParams params_;
    Rng rng_;
    std::vector<std::string> vocab_;
    ZipfSampler zipf_;
};

} // namespace ccache::workload

#endif // CCACHE_WORKLOAD_TEXT_GEN_HH
