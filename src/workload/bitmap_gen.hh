/**
 * @file
 * Synthetic bitmap-index generator for DB-BitMap (Section VI-B).
 *
 * Stands in for the FastBit index built over the STAR physics dataset:
 * a bitmap index has one bin (bit vector) per attribute value range, one
 * bit per row, with bin densities following the attribute's value
 * distribution. Range and join queries OR/AND multiple large bins.
 */

#ifndef CCACHE_WORKLOAD_BITMAP_GEN_HH
#define CCACHE_WORKLOAD_BITMAP_GEN_HH

#include <cstdint>
#include <vector>

#include "common/bitvector.hh"
#include "common/rng.hh"

namespace ccache::workload {

/** Parameters of the synthetic index. */
struct BitmapGenParams
{
    /** Rows in the indexed table. The default gives 256 KB bins —
     *  "several 100 KBs each" per Section VI-B. */
    std::size_t rows = 1 << 21;
    std::size_t bins = 32;        ///< bins (distinct value ranges)

    /** Skew of row-to-bin assignment: bin b receives a share
     *  proportional to 1/(b+1)^skew. */
    double skew = 0.5;

    std::uint64_t seed = 0xb17b175;
};

/** A generated index: one equality bin per value range. */
class BitmapIndex
{
  public:
    explicit BitmapIndex(const BitmapGenParams &params);

    std::size_t rows() const { return params_.rows; }
    std::size_t bins() const { return bins_.size(); }

    const BitVector &bin(std::size_t b) const { return bins_[b]; }

    /** Bytes per bin (rows / 8, padded to 64-bit words). */
    std::size_t binBytes() const;

    /** Reference evaluation of a range query: OR of bins [lo, hi]. */
    BitVector rangeQueryReference(std::size_t lo, std::size_t hi) const;

    /** Reference AND of two bins (join-style predicate). */
    BitVector andReference(std::size_t a, std::size_t b) const;

  private:
    BitmapGenParams params_;
    std::vector<BitVector> bins_;
};

} // namespace ccache::workload

#endif // CCACHE_WORKLOAD_BITMAP_GEN_HH
