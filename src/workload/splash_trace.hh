/**
 * @file
 * Synthetic SPLASH-2 write-footprint traces for the checkpointing study
 * (Section VI-B / Figures 10-11).
 *
 * The checkpointing overhead depends only on how many distinct pages an
 * application dirties per checkpoint interval (100k instructions in the
 * paper) and how its writes spread over its resident set. Each trace
 * reproduces a benchmark's published memory character: resident-set
 * size, write fraction, and page-reuse locality.
 */

#ifndef CCACHE_WORKLOAD_SPLASH_TRACE_HH
#define CCACHE_WORKLOAD_SPLASH_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace ccache::workload {

/** The six SPLASH-2 benchmarks of Figure 10. */
enum class SplashApp { Fmm, Radix, Cholesky, Barnes, Raytrace, Radiosity };

const char *toString(SplashApp app);

/** All six, in the paper's plotting order. */
std::vector<SplashApp> allSplashApps();

/** Memory character of one benchmark (shapes calibrated to published
 *  SPLASH-2 characterization data). */
struct SplashProfile
{
    std::size_t residentPages;     ///< touched working set, 4 KB pages
    double writeFraction;          ///< writes / memory accesses
    double pageLocality;           ///< probability a write reuses a
                                   ///< recently-dirtied page
    double memOpsPerInstr;         ///< memory accesses per instruction

    /** Mean distinct pages receiving their FIRST write per 100k-instr
     *  checkpoint interval — the copy-on-write rate that drives
     *  Figures 10-11. */
    double dirtyPagesPer100k;
};

SplashProfile profileFor(SplashApp app);

/** One simulated interval's worth of activity. */
struct IntervalActivity
{
    /** Distinct pages dirtied during the interval (these must be
     *  copy-on-write checkpointed before their first write). */
    std::vector<Addr> dirtiedPages;

    /** Total memory accesses issued. */
    std::uint64_t memAccesses = 0;
};

/** Trace generator: deterministic per (app, seed). */
class SplashTrace
{
  public:
    SplashTrace(SplashApp app, Addr heap_base = 0x10000000,
                std::uint64_t seed = 0x5b1a5b);

    SplashApp app() const { return app_; }
    const SplashProfile &profile() const { return profile_; }
    Addr heapBase() const { return heapBase_; }

    /** Generate the next checkpoint interval (@p instructions long). */
    IntervalActivity nextInterval(std::uint64_t instructions);

    /** Record counts emitted by writeTrace(). */
    struct TraceCounts
    {
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
    };

    /**
     * Emit @p intervals checkpoint intervals in the sim/trace.hh text
     * format (`R`/`W` records for @p core, block-aligned addresses),
     * so synthetic SPLASH footprints round-trip through the sampled
     * trace frontend (`parseTrace` -> profiler -> sampled run). Each
     * interval writes its dirtied pages first (the COW first-writes),
     * then spreads the remaining accesses as locality-weighted reads
     * over the resident set. Deterministic: consumes only this
     * generator's RNG stream.
     */
    TraceCounts writeTrace(std::ostream &os, std::size_t intervals,
                           std::uint64_t instructions_per_interval,
                           CoreId core = 0);

  private:
    SplashApp app_;
    SplashProfile profile_;
    Addr heapBase_;
    Rng rng_;
    std::vector<std::size_t> recentPages_;  ///< locality window
};

} // namespace ccache::workload

#endif // CCACHE_WORKLOAD_SPLASH_TRACE_HH
