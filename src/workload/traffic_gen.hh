/**
 * @file
 * Synthetic multi-tenant open-loop traffic generator for the serving
 * layer (DESIGN.md §11, §15).
 *
 * Each tenant is an independent Poisson arrival process with its own
 * op mix and size distribution; the generator performs a deterministic
 * k-way merge of the per-tenant streams (ties broken by tenant index)
 * so the emitted request list is a pure function of the parameters and
 * seed — the serving determinism contract (§8) starts here. Arrivals
 * are open-loop: the offered load never adapts to the server, which is
 * what makes saturation and shed-load measurements meaningful.
 *
 * Fleet-scale extensions (DESIGN.md §15):
 *
 *  - Zipfian keys: with TrafficParams::zipfKeys set, every request
 *    draws a key from a multi-million-rank Zipf(keyExponent) space
 *    through the O(1) alias sampler (workload/zipf.hh). Keys model
 *    content addressing: the serving layer folds them into the golden
 *    operand pattern, so hot keys carry hot data. Key draws use a
 *    dedicated per-tenant RNG stream, so enabling keys never shifts
 *    the arrival/size/op sequence.
 *  - Hot-spot phases: a tenant's arrival rate may step at fixed cycle
 *    boundaries (RatePhase), modelling a traffic surge onto one tenant
 *    — the signal the fleet's hot-spot detector rebalances on.
 *  - Fan-out: a tenant may mark a fraction of its requests as spanning
 *    fanoutLegs shards; the router splits them into scatter/gather
 *    legs with a fan-in barrier.
 */

#ifndef CCACHE_WORKLOAD_TRAFFIC_GEN_HH
#define CCACHE_WORKLOAD_TRAFFIC_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cc/isa.hh"
#include "common/types.hh"

namespace ccache::workload {

/** One tenant's offered-traffic profile. */
struct TenantTraffic
{
    std::string name = "tenant";

    /** Poisson arrival rate, requests per 1000 cycles. */
    double requestsPerKilocycle = 0.5;

    /**
     * Relative op-mix weights over the batch-friendly Table II subset.
     * Zero-weight ops never occur. @{
     */
    double weightAnd = 1.0;
    double weightOr = 1.0;
    double weightXor = 1.0;
    double weightCopy = 1.0;
    double weightSearch = 1.0;
    double weightCmp = 0.0;
    double weightBuz = 0.0;
    double weightNot = 0.0;
    /** @} */

    /** Log-uniform request size range in bytes, rounded to 64-byte
     *  blocks. Sizes beyond the per-op ISA limit (512 B for cc_cmp,
     *  16 KB otherwise) are legal: the server chunks such requests
     *  into multiple instructions that batch into the wave. @{ */
    std::size_t minBytes = 256;
    std::size_t maxBytes = 4096;
    /** @} */

    /**
     * Fraction of requests whose operands are deliberately scattered
     * across unrelated pages — they lose in-place operand locality and
     * exercise the controller's near-place fallback inside a wave.
     */
    double scatterFraction = 0.0;

    /** Stepwise arrival-rate schedule: at cycle `at` the tenant's rate
     *  becomes requestsPerKilocycle * multiplier (phases sorted by
     *  `at`; an empty list keeps the flat rate). Hot-spot surges are
     *  one phase up, one phase back down. */
    struct RatePhase
    {
        Cycles at = 0;
        double multiplier = 1.0;
    };
    std::vector<RatePhase> phases;

    /** Fraction of requests that span shards: each becomes fanoutLegs
     *  scatter/gather legs on distinct shards (DESIGN.md §15). @{ */
    double fanoutFraction = 0.0;
    unsigned fanoutLegs = 2;
    /** @} */
};

/** Aggregate traffic description. */
struct TrafficParams
{
    std::vector<TenantTraffic> tenants;
    std::size_t totalRequests = 1000;   ///< across all tenants
    std::uint64_t seed = 0x5e47ed7aff1cULL;

    /** Zipfian key space: > 0 draws every request's key from
     *  Zipf(keyExponent) over this many ranks (0 = unkeyed). @{ */
    std::size_t zipfKeys = 0;
    double keyExponent = 0.99;
    /** @} */
};

/** One generated request before placement (no addresses yet). */
struct RequestSpec
{
    Cycles arrival = 0;
    unsigned tenant = 0;
    cc::CcOpcode op = cc::CcOpcode::And;
    std::size_t bytes = 256;
    bool scattered = false;

    /** Zipf-drawn content key (0 when the key space is disabled); the
     *  serving layer folds it into the golden operand pattern. */
    std::uint64_t key = 0;

    /** Shards this request spans: 1 = ordinary single-shard request,
     *  > 1 = split into that many scatter/gather legs (§15). */
    unsigned fanout = 1;
};

/** Generate @p params.totalRequests specs sorted by (arrival, tenant). */
std::vector<RequestSpec> generateTraffic(const TrafficParams &params);

} // namespace ccache::workload

#endif // CCACHE_WORKLOAD_TRAFFIC_GEN_HH
