#include "workload/bitmap_gen.hh"

#include <cmath>

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::workload {

BitmapIndex::BitmapIndex(const BitmapGenParams &params) : params_(params)
{
    CC_ASSERT(params.bins > 0 && params.rows > 0, "degenerate index");

    Rng rng(params.seed);
    bins_.assign(params.bins, BitVector(params.rows));

    // Row -> bin assignment with Zipf-ish skew: equality-encoded bitmap
    // index means each row sets exactly one bin's bit.
    std::vector<double> cdf(params.bins);
    double sum = 0.0;
    for (std::size_t b = 0; b < params.bins; ++b) {
        sum += 1.0 / std::pow(static_cast<double>(b + 1), params.skew);
        cdf[b] = sum;
    }
    for (auto &v : cdf)
        v /= sum;

    for (std::size_t row = 0; row < params.rows; ++row) {
        double u = rng.uniform();
        std::size_t b = 0;
        while (b + 1 < params.bins && cdf[b] < u)
            ++b;
        bins_[b].set(row, true);
    }
}

std::size_t
BitmapIndex::binBytes() const
{
    return divCeil(params_.rows, 64) * 8;
}

BitVector
BitmapIndex::rangeQueryReference(std::size_t lo, std::size_t hi) const
{
    CC_ASSERT(lo <= hi && hi < bins_.size(), "bad bin range ", lo, "-",
              hi);
    BitVector acc(params_.rows);
    for (std::size_t b = lo; b <= hi; ++b)
        acc |= bins_[b];
    return acc;
}

BitVector
BitmapIndex::andReference(std::size_t a, std::size_t b) const
{
    CC_ASSERT(a < bins_.size() && b < bins_.size(), "bad bins");
    return bins_[a] & bins_[b];
}

} // namespace ccache::workload
