#include "workload/bitmap_gen.hh"

#include <algorithm>
#include <cmath>

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::workload {

BitmapIndex::BitmapIndex(const BitmapGenParams &params) : params_(params)
{
    CC_ASSERT(params.bins > 0 && params.rows > 0, "degenerate index");

    Rng rng(params.seed);
    bins_.assign(params.bins, BitVector(params.rows));

    // Row -> bin assignment with Zipf-ish skew: equality-encoded bitmap
    // index means each row sets exactly one bin's bit.
    std::vector<double> cdf(params.bins);
    double sum = 0.0;
    for (std::size_t b = 0; b < params.bins; ++b) {
        sum += 1.0 / std::pow(static_cast<double>(b + 1), params.skew);
        cdf[b] = sum;
    }
    for (auto &v : cdf)
        v /= sum;

    // Rows are processed in 64-row chunks: each chunk accumulates one
    // word per bin on the stack and stores each touched word once,
    // instead of a read-modify-write into an ~8 MB working set per row.
    // Draw order (one uniform per row, ascending) and the chosen bins
    // are unchanged, so the index is bit-identical to the naive loop.
    std::vector<std::uint64_t> chunk(params.bins);
    for (std::size_t base = 0; base < params.rows; base += 64) {
        std::size_t n = std::min<std::size_t>(64, params.rows - base);
        std::fill(chunk.begin(), chunk.end(), 0);
        for (std::size_t i = 0; i < n; ++i) {
            double u = rng.uniform();
            // First bin with cdf >= u == count of entries < u (cdf is
            // sorted), clamped to the last bin. The branchless count
            // vectorizes; a binary search mispredicts every level on
            // uniform input.
            std::size_t b = 0;
            for (double v : cdf)
                b += v < u ? 1 : 0;
            if (b >= params.bins)
                b = params.bins - 1;
            chunk[b] |= std::uint64_t{1} << i;
        }
        for (std::size_t b = 0; b < params.bins; ++b) {
            if (chunk[b])
                bins_[b].words()[base / 64] |= chunk[b];
        }
    }
}

std::size_t
BitmapIndex::binBytes() const
{
    return divCeil(params_.rows, 64) * 8;
}

BitVector
BitmapIndex::rangeQueryReference(std::size_t lo, std::size_t hi) const
{
    CC_ASSERT(lo <= hi && hi < bins_.size(), "bad bin range ", lo, "-",
              hi);
    BitVector acc(params_.rows);
    for (std::size_t b = lo; b <= hi; ++b)
        acc |= bins_[b];
    return acc;
}

BitVector
BitmapIndex::andReference(std::size_t a, std::size_t b) const
{
    CC_ASSERT(a < bins_.size() && b < bins_.size(), "bad bins");
    return bins_[a] & bins_[b];
}

} // namespace ccache::workload
