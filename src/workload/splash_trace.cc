#include "workload/splash_trace.hh"

#include <algorithm>
#include <ostream>
#include <set>

#include "common/logging.hh"

namespace ccache::workload {

const char *
toString(SplashApp app)
{
    switch (app) {
      case SplashApp::Fmm: return "fmm";
      case SplashApp::Radix: return "radix";
      case SplashApp::Cholesky: return "cholesky";
      case SplashApp::Barnes: return "barnes";
      case SplashApp::Raytrace: return "raytrace";
      case SplashApp::Radiosity: return "radiosity";
    }
    return "?";
}

std::vector<SplashApp>
allSplashApps()
{
    return {SplashApp::Fmm, SplashApp::Radix, SplashApp::Cholesky,
            SplashApp::Barnes, SplashApp::Raytrace, SplashApp::Radiosity};
}

SplashProfile
profileFor(SplashApp app)
{
    // Shapes follow the published SPLASH-2 characterization (Woo et al.):
    // radix is a write-heavy streaming sort (large dirty footprint per
    // interval); raytrace/radiosity write little and reuse pages heavily;
    // fmm/barnes/cholesky sit in between.
    switch (app) {
      case SplashApp::Fmm:
        return {1024, 0.22, 0.80, 0.30, 1.5};
      case SplashApp::Radix:
        return {2048, 0.45, 0.35, 0.36, 3.5};
      case SplashApp::Cholesky:
        return {1536, 0.30, 0.60, 0.32, 2.2};
      case SplashApp::Barnes:
        return {1024, 0.25, 0.70, 0.31, 1.8};
      case SplashApp::Raytrace:
        return {1280, 0.12, 0.85, 0.33, 0.8};
      case SplashApp::Radiosity:
        return {1152, 0.15, 0.82, 0.30, 1.0};
    }
    CC_PANIC("unknown app");
}

SplashTrace::SplashTrace(SplashApp app, Addr heap_base, std::uint64_t seed)
    : app_(app), profile_(profileFor(app)), heapBase_(heap_base),
      rng_(seed ^ (static_cast<std::uint64_t>(app) << 32))
{
}

IntervalActivity
SplashTrace::nextInterval(std::uint64_t instructions)
{
    IntervalActivity act;
    act.memAccesses = static_cast<std::uint64_t>(
        static_cast<double>(instructions) * profile_.memOpsPerInstr);

    // Distinct first-write pages this interval: the calibrated COW rate,
    // scaled to the interval length, with bounded jitter (+/- 50%).
    double mean = profile_.dirtyPagesPer100k *
        static_cast<double>(instructions) / 100000.0;
    double jitter = 0.5 + rng_.uniform();
    auto target = static_cast<std::size_t>(mean * jitter + 0.5);
    target = std::min(target, profile_.residentPages);

    std::set<std::size_t> dirtied;
    constexpr std::size_t kWindow = 32;
    while (dirtied.size() < target) {
        std::size_t page;
        if (!recentPages_.empty() && rng_.chance(profile_.pageLocality)) {
            // Reuse of a recently-hot page: often already checkpointed,
            // so it only sometimes contributes a new dirty page.
            page = recentPages_[rng_.below(recentPages_.size())];
        } else {
            page = rng_.below(profile_.residentPages);
        }
        recentPages_.push_back(page);
        if (recentPages_.size() > kWindow)
            recentPages_.erase(recentPages_.begin());
        dirtied.insert(page);
    }

    act.dirtiedPages.reserve(dirtied.size());
    for (std::size_t p : dirtied)
        act.dirtiedPages.push_back(heapBase_ + p * kPageSize);
    return act;
}

SplashTrace::TraceCounts
SplashTrace::writeTrace(std::ostream &os, std::size_t intervals,
                        std::uint64_t instructions_per_interval,
                        CoreId core)
{
    constexpr std::size_t kBlocksPerPage = kPageSize / kBlockSize;
    TraceCounts counts;
    os << "# synthetic SPLASH-2 trace: " << toString(app_) << "\n";
    for (std::size_t iv = 0; iv < intervals; ++iv) {
        IntervalActivity act = nextInterval(instructions_per_interval);

        // COW first-writes: one store into each freshly-dirtied page.
        for (Addr page : act.dirtiedPages) {
            Addr addr = page + rng_.below(kBlocksPerPage) * kBlockSize;
            os << "W " << core << " 0x" << std::hex << addr << std::dec
               << "\n";
            ++counts.writes;
        }

        // The rest of the interval's accesses: locality-weighted reads
        // over the resident set (block-aligned).
        std::uint64_t remaining =
            act.memAccesses > act.dirtiedPages.size()
                ? act.memAccesses - act.dirtiedPages.size()
                : 0;
        for (std::uint64_t r = 0; r < remaining; ++r) {
            std::size_t page = rng_.below(profile_.residentPages);
            Addr addr = heapBase_ + page * kPageSize +
                rng_.below(kBlocksPerPage) * kBlockSize;
            os << "R " << core << " 0x" << std::hex << addr << std::dec
               << "\n";
            ++counts.reads;
        }
    }
    return counts;
}

} // namespace ccache::workload
