#include "workload/zipf.hh"

#include <cmath>

#include "common/logging.hh"

namespace ccache::workload {

ZipfSampler::ZipfSampler(std::size_t n, double s) : exponent_(s)
{
    CC_ASSERT(n > 0, "zipf sampler needs at least one rank");
    CC_ASSERT(n <= 0xffffffffULL, "zipf alias table is 32-bit indexed");
    CC_ASSERT(s >= 0.0, "zipf exponent must be non-negative");

    // Unnormalized pmf and its sum. One pass, no RNG.
    std::vector<double> weight(n);
    for (std::size_t r = 0; r < n; ++r) {
        weight[r] = 1.0 / std::pow(static_cast<double>(r + 1), s);
        norm_ += weight[r];
    }

    // Vose's alias method: split the scaled pmf into n columns of
    // average height 1; every column keeps its own mass up to prob_[c]
    // and borrows the remainder from exactly one donor (alias_[c]).
    prob_.assign(n, 1.0);
    alias_.resize(n);
    for (std::size_t r = 0; r < n; ++r)
        alias_[r] = static_cast<std::uint32_t>(r);

    std::vector<double> scaled(n);
    for (std::size_t r = 0; r < n; ++r)
        scaled[r] = weight[r] * static_cast<double>(n) / norm_;

    // Worklists of under-full and over-full columns. Zipf weights are
    // monotonically decreasing, so filling the lists in rank order
    // keeps construction deterministic.
    std::vector<std::uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t r = 0; r < n; ++r) {
        if (scaled[r] < 1.0)
            small.push_back(static_cast<std::uint32_t>(r));
        else
            large.push_back(static_cast<std::uint32_t>(r));
    }

    while (!small.empty() && !large.empty()) {
        std::uint32_t s_col = small.back();
        small.pop_back();
        std::uint32_t l_col = large.back();
        large.pop_back();
        prob_[s_col] = scaled[s_col];
        alias_[s_col] = l_col;
        scaled[l_col] = (scaled[l_col] + scaled[s_col]) - 1.0;
        if (scaled[l_col] < 1.0)
            small.push_back(l_col);
        else
            large.push_back(l_col);
    }
    // Leftovers are exactly-full columns up to FP rounding.
    for (std::uint32_t c : large)
        prob_[c] = 1.0;
    for (std::uint32_t c : small)
        prob_[c] = 1.0;
}

double
ZipfSampler::pmf(std::size_t rank) const
{
    CC_ASSERT(rank < prob_.size(), "zipf pmf rank out of range");
    return 1.0 /
           (std::pow(static_cast<double>(rank + 1), exponent_) * norm_);
}

} // namespace ccache::workload
