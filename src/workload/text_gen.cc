#include "workload/text_gen.hh"

#include <set>

#include "common/logging.hh"

namespace ccache::workload {

TextGen::TextGen(const TextGenParams &params)
    : params_(params), rng_(params.seed),
      zipf_(params.vocabulary, params.zipfExponent)
{
    CC_ASSERT(params.vocabulary > 0, "empty vocabulary");
    CC_ASSERT(params.minWordLen >= 1 &&
                  params.minWordLen <= params.maxWordLen,
              "bad word length range");

    // Unique synthetic words: lowercase letters, Zipf-rank ordered.
    std::set<std::string> seen;
    vocab_.reserve(params.vocabulary);
    while (vocab_.size() < params.vocabulary) {
        std::size_t len = params.minWordLen +
            rng_.below(params.maxWordLen - params.minWordLen + 1);
        std::string w(len, 'a');
        for (auto &c : w)
            c = static_cast<char>('a' + rng_.below(26));
        if (seen.insert(w).second)
            vocab_.push_back(std::move(w));
    }
}

const std::string &
TextGen::nextWord()
{
    return vocab_[zipf_.sample(rng_)];
}

std::string
TextGen::corpus(std::size_t bytes)
{
    std::string out;
    out.reserve(bytes + 16);
    while (out.size() < bytes) {
        out += nextWord();
        out += ' ';
    }
    out.resize(bytes);
    return out;
}

} // namespace ccache::workload
